// axf-lint — static verification front door for the approximate-circuit
// stack.  Lints gate-level netlists (structural invariants, unreachable
// logic, duplicate cones, provably constant gates) and statically
// verifies their compiled programs (dataflow discipline, schedule claims,
// fusion semantics) without evaluating a single vector.
//
// Modes (combinable):
//   axf-lint --library adder|multiplier --width N [--full]
//       Lint + compile-verify every netlist of the generated structural
//       families (--full adds the CGP-evolved designs).
//   axf-lint --cache DIR
//       Audit a characterization-cache directory: every netlist payload
//       must decode and pass the linter.
//   axf-lint --audit-checkpoint FILE [--expect-digest HEX]
//       Validate a campaign checkpoint ("AXFK"): magic, container version,
//       CRC-32, size framing — and digest equality when --expect-digest is
//       given.  Nonzero exit on any mismatch.
//   axf-lint FILE...
//       Lint serialized netlist files (the Netlist::serialize format).
//
// Flags: --werror (warnings fail), --quiet (findings only), --no-verify
// (skip program verification), --stats (print per-netlist compiled-plan
// statistics: backend, block width, instructions, runs, fusion), --json
// (with --stats: machine-readable axf-lint-stats.v1 JSON on stdout instead
// of text rows — schema documented in the README), --max-diag N.
//
// Exit status: 0 clean, 1 error-severity findings (or warnings under
// --werror) or a failed checkpoint audit, 2 usage/io failure, 75 when
// interrupted (SIGINT/SIGTERM cancels the library build cooperatively).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <optional>
#include <string>
#include <vector>

#include "src/cache/characterization_cache.hpp"
#include "src/circuit/batch_sim.hpp"
#include "src/circuit/netlist.hpp"
#include "src/durable/checkpoint.hpp"
#include "src/gen/library.hpp"
#include "src/util/bytes.hpp"
#include "src/util/cancellation.hpp"
#include "src/verify/verify.hpp"

namespace {

using axf::circuit::CompiledNetlist;
using axf::circuit::Netlist;
using axf::verify::Diagnostics;

struct CliOptions {
    std::string library;        // "adder" | "multiplier" | ""
    int width = 8;
    bool full = false;          // include CGP designs, not just structural families
    std::string cacheDirectory;
    std::vector<std::string> auditCheckpoints;
    std::optional<std::uint64_t> expectDigest;
    std::vector<std::string> files;
    bool werror = false;
    bool quiet = false;
    bool verifyPrograms = true;
    bool showStats = false;
    bool json = false;  // with --stats: axf-lint-stats.v1 JSON on stdout
    std::size_t maxDiagnostics = 64;
};

/// One --stats row, buffered so --json can emit the whole document at the
/// end (text mode prints rows as they are produced).
struct StatsRow {
    std::string subject;
    CompiledNetlist::Stats stats;
    std::size_t lintErrors = 0;
    std::size_t lintWarnings = 0;
};

struct Tally {
    std::size_t netlists = 0;
    std::size_t programs = 0;
    std::size_t errors = 0;
    std::size_t warnings = 0;
    std::vector<StatsRow> statsRows;
};

void appendJsonString(std::string& out, const std::string& s) {
    out += '"';
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}

/// The `axf-lint-stats.v1` document (schema in README): per-netlist
/// compiled-plan statistics + lint counts, then the run summary.
void printStatsJson(const Tally& tally) {
    std::string out = "{\"schema\":\"axf-lint-stats.v1\",\"netlists\":[";
    bool first = true;
    for (const StatsRow& row : tally.statsRows) {
        if (!first) out += ',';
        first = false;
        out += "{\"name\":";
        appendJsonString(out, row.subject);
        char buf[512];
        std::snprintf(buf, sizeof buf,
                      ",\"backend\":\"%s\",\"block_words\":%zu,\"instructions\":%zu,"
                      "\"runs\":%zu,\"longest_run\":%zu,\"chained_runs\":%zu,"
                      "\"fused_ops\":%zu,\"gates_folded\":%zu,\"specialized\":%s,"
                      "\"lint_errors\":%zu,\"lint_warnings\":%zu}",
                      row.stats.backend, row.stats.blockWords, row.stats.instructions,
                      row.stats.runs, row.stats.longestRun, row.stats.chainedRuns,
                      row.stats.fusedOps, row.stats.gatesFused,
                      row.stats.specialized ? "true" : "false", row.lintErrors,
                      row.lintWarnings);
        out += buf;
    }
    char summary[192];
    std::snprintf(summary, sizeof summary,
                  "],\"summary\":{\"netlists\":%zu,\"programs\":%zu,\"errors\":%zu,"
                  "\"warnings\":%zu}}\n",
                  tally.netlists, tally.programs, tally.errors, tally.warnings);
    out += summary;
    std::fputs(out.c_str(), stdout);
}

void printDiagnostics(const std::string& subject, const Diagnostics& diags,
                      const CliOptions& cli) {
    for (const auto& d : diags.all()) {
        if (cli.quiet && d.severity == axf::verify::Severity::Info) continue;
        std::fprintf(stderr, "%s: %s [%s %s]", subject.c_str(), d.message.c_str(),
                     axf::verify::ruleId(d.rule), axf::verify::severityName(d.severity));
        if (d.where != axf::verify::kNoLocation) std::fprintf(stderr, " @%u", d.where);
        std::fprintf(stderr, "\n");
    }
    if (diags.truncated())
        std::fprintf(stderr, "%s: ... further findings suppressed\n", subject.c_str());
}

void checkNetlist(const std::string& subject, const Netlist& netlist, const CliOptions& cli,
                  Tally& tally) {
    axf::verify::LintOptions lintOptions;
    lintOptions.maxDiagnostics = cli.maxDiagnostics;
    const Diagnostics lint = axf::verify::lintNetlist(netlist, lintOptions);
    ++tally.netlists;
    tally.errors += lint.errorCount();
    tally.warnings += lint.warningCount();
    printDiagnostics(subject, lint, cli);

    if ((!cli.verifyPrograms && !cli.showStats) || lint.hasErrors()) return;
    const CompiledNetlist compiled = CompiledNetlist::compile(netlist);
    if (cli.showStats) {
        const CompiledNetlist::Stats s = compiled.stats();
        if (cli.json) {
            tally.statsRows.push_back(
                StatsRow{subject, s, lint.errorCount(), lint.warningCount()});
        } else {
            std::printf(
                "%s: backend=%s W=%zu instrs=%zu runs=%zu longest=%zu chained=%zu fused=%zu "
                "gates-folded=%zu%s\n",
                subject.c_str(), s.backend, s.blockWords, s.instructions, s.runs, s.longestRun,
                s.chainedRuns, s.fusedOps, s.gatesFused, s.specialized ? " specialized" : "");
        }
    }
    if (!cli.verifyPrograms) return;
    axf::verify::VerifyOptions verifyOptions;
    verifyOptions.maxDiagnostics = cli.maxDiagnostics;
    const Diagnostics prog = axf::verify::verifyProgram(compiled, &netlist, verifyOptions);
    ++tally.programs;
    tally.errors += prog.errorCount();
    tally.warnings += prog.warningCount();
    printDiagnostics(subject + " [compiled]", prog, cli);
}

int auditCheckpointFile(const std::string& path, const CliOptions& cli, Tally& tally) {
    const axf::durable::CheckpointAudit audit =
        axf::durable::auditCheckpoint(path, cli.expectDigest);
    if (audit.ok) {
        if (!cli.quiet)
            std::printf("%s: ok (version %u, digest %016llx, %llu payload bytes)\n",
                        path.c_str(), audit.version,
                        static_cast<unsigned long long>(audit.digest),
                        static_cast<unsigned long long>(audit.payloadBytes));
    } else {
        std::fprintf(stderr, "%s: %s\n", path.c_str(), audit.message.c_str());
        ++tally.errors;
    }
    return 0;
}

int lintLibrary(const CliOptions& cli, Tally& tally) {
    axf::gen::LibraryConfig config;
    config.op = cli.library == "adder" ? axf::circuit::ArithOp::Adder
                                       : axf::circuit::ArithOp::Multiplier;
    config.width = cli.width;
    config.structuralOnly = !cli.full;
    config.cancel = &axf::util::signalToken();
    const axf::gen::AcLibrary library = cli.full ? axf::gen::buildLibrary(config)
                                                 : axf::gen::buildStructuralFamilies(config);
    for (const auto& entry : library)
        checkNetlist(entry.name.empty() ? entry.origin : entry.name, entry.netlist, cli, tally);
    if (!cli.quiet)
        std::fprintf(stderr, "axf-lint: %zu %s-library netlists checked\n", library.size(),
                     cli.library.c_str());
    return 0;
}

int lintCacheDirectory(const CliOptions& cli, Tally& tally) {
    axf::cache::CharacterizationCache::Options options;
    options.directory = cli.cacheDirectory;
    axf::cache::CharacterizationCache cache(options);
    std::size_t blobs = 0;
    cache.forEachEntry([&](const axf::cache::CacheKey& key,
                           const std::vector<std::uint8_t>& payload) {
        if (key.kind != static_cast<std::uint32_t>(axf::cache::PayloadKind::Blob)) return;
        // Netlist blobs are hash-prefixed (see putNetlist); anything that
        // does not decode as one is some other blob family — not ours to
        // judge.
        axf::util::ByteReader reader(payload);
        std::uint64_t storedHash = 0;
        if (!reader.u64(storedHash)) return;
        std::optional<Netlist> net = Netlist::deserialize(reader);
        if (!net) return;
        ++blobs;
        char subject[64];
        std::snprintf(subject, sizeof subject, "cache blob %016llx",
                      static_cast<unsigned long long>(key.structuralHash));
        if (net->structuralHash() != storedHash) {
            std::fprintf(stderr, "%s: embedded hash disagrees with the payload\n", subject);
            ++tally.errors;
        }
        checkNetlist(subject, *net, cli, tally);
    });
    if (!cli.quiet)
        std::fprintf(stderr, "axf-lint: %zu cached netlist blob(s) checked in %s\n", blobs,
                     cli.cacheDirectory.c_str());
    return 0;
}

int lintFile(const std::string& path, const CliOptions& cli, Tally& tally) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "axf-lint: cannot open %s\n", path.c_str());
        return 2;
    }
    const std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                          std::istreambuf_iterator<char>());
    axf::util::ByteReader reader(bytes);
    std::optional<Netlist> net = Netlist::deserialize(reader);
    if (!net) {
        std::fprintf(stderr, "%s: not a serialized netlist (or invariant-breaking)\n",
                     path.c_str());
        ++tally.errors;
        return 0;
    }
    checkNetlist(path, *net, cli, tally);
    return 0;
}

int usage() {
    std::fprintf(stderr,
                 "usage: axf-lint [--library adder|multiplier] [--width N] [--full]\n"
                 "                [--cache DIR] [--audit-checkpoint FILE]\n"
                 "                [--expect-digest HEX] [--werror] [--quiet]\n"
                 "                [--no-verify] [--stats] [--json] [--max-diag N] [FILE...]\n");
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    CliOptions cli;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
        if (arg == "--library") {
            const char* v = next();
            if (v == nullptr || (std::strcmp(v, "adder") != 0 && std::strcmp(v, "multiplier") != 0))
                return usage();
            cli.library = v;
        } else if (arg == "--width") {
            const char* v = next();
            if (v == nullptr || std::atoi(v) <= 0) return usage();
            cli.width = std::atoi(v);
        } else if (arg == "--full") {
            cli.full = true;
        } else if (arg == "--cache") {
            const char* v = next();
            if (v == nullptr) return usage();
            cli.cacheDirectory = v;
        } else if (arg == "--audit-checkpoint") {
            const char* v = next();
            if (v == nullptr) return usage();
            cli.auditCheckpoints.push_back(v);
        } else if (arg == "--expect-digest") {
            const char* v = next();
            if (v == nullptr) return usage();
            char* end = nullptr;
            const unsigned long long digest = std::strtoull(v, &end, 16);
            if (end == v || *end != '\0') return usage();
            cli.expectDigest = static_cast<std::uint64_t>(digest);
        } else if (arg == "--werror") {
            cli.werror = true;
        } else if (arg == "--quiet") {
            cli.quiet = true;
        } else if (arg == "--no-verify") {
            cli.verifyPrograms = false;
        } else if (arg == "--stats") {
            cli.showStats = true;
        } else if (arg == "--json") {
            // --json implies --stats: the document IS the stats output.
            cli.json = true;
            cli.showStats = true;
        } else if (arg == "--max-diag") {
            const char* v = next();
            if (v == nullptr || std::atoi(v) <= 0) return usage();
            cli.maxDiagnostics = static_cast<std::size_t>(std::atoi(v));
        } else if (arg == "--help" || arg == "-h") {
            return usage();
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            cli.files.push_back(arg);
        }
    }
    if (cli.library.empty() && cli.cacheDirectory.empty() && cli.auditCheckpoints.empty() &&
        cli.files.empty())
        return usage();

    Tally tally;
    try {
        if (!cli.library.empty()) lintLibrary(cli, tally);
        if (!cli.cacheDirectory.empty()) lintCacheDirectory(cli, tally);
        for (const std::string& file : cli.auditCheckpoints)
            auditCheckpointFile(file, cli, tally);
        for (const std::string& file : cli.files) {
            const int rc = lintFile(file, cli, tally);
            if (rc != 0) return rc;
        }
    } catch (const axf::util::OperationCancelled&) {
        std::fprintf(stderr, "axf-lint: interrupted\n");
        return axf::util::kCancelledExitCode;
    }

    if (cli.json) printStatsJson(tally);
    if (!cli.quiet)
        std::fprintf(stderr, "axf-lint: %zu netlist(s), %zu program(s): %zu error(s), %zu warning(s)\n",
                     tally.netlists, tally.programs, tally.errors, tally.warnings);
    if (tally.errors != 0) return 1;
    if (cli.werror && tally.warnings != 0) return 1;
    return 0;
}
