// axf-campaign — durable DSE campaign driver.
//
// Runs the AutoAx-FPGA exploration of the Sobel accelerator (a cheap,
// self-contained menu: exact ripple + LOA/ETA 16-bit adders, no library
// build required) with the full durability substrate wired up:
//
//   - scenario search checkpoints in --out DIR (epoch-boundary snapshots,
//     resumed automatically on rerun, bit-identical at any thread count);
//   - SIGINT/SIGTERM request a cooperative stop: the running epoch
//     finishes, a final checkpoint is flushed, and the process exits with
//     the distinct status 75 (util::kCancelledExitCode);
//   - a watchdog (AXF_WATCHDOG_SECONDS) that logs workers stalled past the
//     deadline;
//   - --digest-file writes a hex digest of the final Result so an
//     interrupted-then-resumed campaign can be diffed against an
//     uninterrupted reference run without storing full archives.
//
// Usage:
//   axf-campaign [--out DIR] [--digest-file PATH] [--metrics-file PATH]
//                [--iterations N] [--train N] [--islands N] [--threads N]
//                [--seed HEX] [--epoch-ms N] [--checkpoint-interval N]
//                [--quiet]
//
// --epoch-ms throttles every search epoch (sleep), giving CI a generous
// window to deliver a mid-flight signal deterministically.
//
// Observability: --metrics-file PATH (or AXF_METRICS_FILE) dumps the
// metrics registry as JSON — rewritten atomically at every search epoch
// and once more on completion (including cancellation), so a poller
// always sees a consistent snapshot.  AXF_TRACE=trace.json additionally
// records a Chrome-trace timeline loadable in Perfetto.
//
// Exit status: 0 campaign complete, 2 usage/setup failure, 75 interrupted
// (checkpoints valid and resumable).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/autoax/dse.hpp"
#include "src/autoax/sobel.hpp"
#include "src/error/error_metrics.hpp"
#include "src/gen/adders.hpp"
#include "src/obs/metrics.hpp"
#include "src/synth/fpga.hpp"
#include "src/util/cancellation.hpp"
#include "src/util/io.hpp"
#include "src/util/watchdog.hpp"

using namespace axf;

namespace {

struct CliOptions {
    std::string outDirectory = ".axf_campaign";
    std::string digestFile;
    std::string metricsFile;
    int iterations = 600;
    int trainConfigs = 60;
    int islands = 3;
    std::size_t threads = 0;
    std::uint64_t seed = 0x40A7;
    int epochMs = 0;
    int checkpointInterval = 1;
    bool quiet = false;
};

autoax::Component makeComponent(const char* label, circuit::Netlist netlist) {
    autoax::Component c;
    c.name = std::string(label) + " (" + netlist.name() + ")";
    c.signature = gen::adderSignature(16);
    c.error = error::analyzeError(netlist, c.signature);
    c.fpga = synth::FpgaFlow().implement(netlist);
    c.netlist = std::move(netlist);
    return c;
}

/// FNV-1a over every result-defining field of the flow Result — the
/// fingerprint CI diffs between an interrupted+resumed campaign and an
/// uninterrupted reference.
std::uint64_t resultDigest(const autoax::AutoAxFpgaFlow::Result& result) {
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xFF;
            h *= 1099511628211ull;
        }
    };
    const auto mixDouble = [&mix](double v) {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        mix(bits);
    };
    const auto mixConfig = [&](const autoax::EvaluatedConfig& e) {
        for (int c : e.config.choice) mix(static_cast<std::uint64_t>(c));
        mixDouble(e.ssim);
        mixDouble(e.cost.lutCount);
        mixDouble(e.cost.powerMw);
        mixDouble(e.cost.latencyNs);
    };
    mix(result.trainingSet.size());
    for (const autoax::EvaluatedConfig& e : result.trainingSet) mixConfig(e);
    for (const autoax::AutoAxFpgaFlow::ScenarioResult& s : result.scenarios) {
        mix(static_cast<std::uint64_t>(s.param));
        mix(s.estimatorQueries);
        mix(s.autoax.size());
        for (const autoax::EvaluatedConfig& e : s.autoax) mixConfig(e);
        mix(s.random.size());
        for (const autoax::EvaluatedConfig& e : s.random) mixConfig(e);
    }
    mix(result.totalRealEvaluations);
    return h;
}

int usage() {
    std::fprintf(stderr,
                 "usage: axf-campaign [--out DIR] [--digest-file PATH] [--metrics-file PATH]\n"
                 "                    [--iterations N] [--train N] [--islands N] [--threads N]\n"
                 "                    [--seed HEX] [--epoch-ms N] [--checkpoint-interval N]\n"
                 "                    [--quiet]\n");
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    CliOptions cli;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
        const auto nextInt = [&](int& out, int minimum) {
            const char* v = next();
            if (v == nullptr || std::atoi(v) < minimum) return false;
            out = std::atoi(v);
            return true;
        };
        if (arg == "--out") {
            const char* v = next();
            if (v == nullptr) return usage();
            cli.outDirectory = v;
        } else if (arg == "--digest-file") {
            const char* v = next();
            if (v == nullptr) return usage();
            cli.digestFile = v;
        } else if (arg == "--metrics-file") {
            const char* v = next();
            if (v == nullptr) return usage();
            cli.metricsFile = v;
        } else if (arg == "--iterations") {
            if (!nextInt(cli.iterations, 1)) return usage();
        } else if (arg == "--train") {
            if (!nextInt(cli.trainConfigs, 1)) return usage();
        } else if (arg == "--islands") {
            if (!nextInt(cli.islands, 1)) return usage();
        } else if (arg == "--threads") {
            int threads = 0;
            if (!nextInt(threads, 0)) return usage();
            cli.threads = static_cast<std::size_t>(threads);
        } else if (arg == "--seed") {
            const char* v = next();
            if (v == nullptr) return usage();
            char* end = nullptr;
            cli.seed = std::strtoull(v, &end, 16);
            if (end == v || *end != '\0') return usage();
        } else if (arg == "--epoch-ms") {
            if (!nextInt(cli.epochMs, 0)) return usage();
        } else if (arg == "--checkpoint-interval") {
            if (!nextInt(cli.checkpointInterval, 1)) return usage();
        } else if (arg == "--quiet") {
            cli.quiet = true;
        } else {
            return usage();
        }
    }

    // Install the signal handlers before any long-running work so an early
    // SIGTERM still cancels cooperatively instead of killing mid-write.
    const util::CancellationToken& stop = util::signalToken();

    util::Watchdog::Options watchdogOptions;
    watchdogOptions.deadlineSeconds = util::watchdogDeadlineFromEnv();
    watchdogOptions.label = "axf-campaign";
    util::Watchdog watchdog(watchdogOptions);

    if (!cli.quiet)
        std::printf("axf-campaign: building the Sobel adder menu (exact + LOA/ETA)...\n");
    std::vector<autoax::Component> menu;
    menu.push_back(makeComponent("exact ripple", gen::rippleCarryAdder(16)));
    for (int k : {4, 6, 8, 10}) menu.push_back(makeComponent("LOA", gen::loaAdder(16, k)));
    for (int k : {6, 8}) menu.push_back(makeComponent("ETA", gen::etaAdder(16, k)));
    const autoax::SobelAccelerator sobel(std::move(menu));
    watchdog.pulse();

    autoax::AutoAxFpgaFlow::Config cfg;
    cfg.trainConfigs = cli.trainConfigs;
    cfg.hillIterations = cli.iterations;
    cfg.imageSize = 64;
    cfg.sceneCount = 1;
    cfg.seed = cli.seed;
    cfg.threads = cli.threads;
    cfg.islands = cli.islands;
    cfg.searchBatch = 4;
    cfg.migrationInterval = 8;
    cfg.islandStrategies = {search::Strategy::HillClimb, search::Strategy::Anneal,
                            search::Strategy::Genetic};
    cfg.checkpointDirectory = cli.outDirectory;
    cfg.checkpointInterval = cli.checkpointInterval;
    cfg.cancel = &stop;
    // --metrics-file wins over the AXF_METRICS_FILE env (the env still
    // arms an at-exit dump inside the obs layer when the flag is absent).
    if (cli.metricsFile.empty())
        if (const char* env = std::getenv("AXF_METRICS_FILE"); env != nullptr && *env != '\0')
            cli.metricsFile = env;
    cfg.onSearchEpoch = [&](core::FpgaParam param, int done) {
        watchdog.pulse();
        // Periodic dump at every epoch boundary: atomic replace, so a
        // poller (CI, a dashboard tail) never reads a torn file.
        if (!cli.metricsFile.empty()) obs::writeMetricsFile(cli.metricsFile);
        if (!cli.quiet)
            std::printf("axf-campaign: scenario %s at generation %d\n",
                        core::fpgaParamName(param), done);
        if (cli.epochMs > 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(cli.epochMs));
    };

    if (!cli.quiet)
        std::printf("axf-campaign: exploring %d iterations over %d islands "
                    "(checkpoints in %s)\n",
                    cli.iterations, cli.islands, cli.outDirectory.c_str());
    try {
        const autoax::AutoAxFpgaFlow::Result result = autoax::AutoAxFpgaFlow(cfg).run(sobel);
        const std::uint64_t digest = resultDigest(result);
        char digestHex[32];
        std::snprintf(digestHex, sizeof digestHex, "%016llx",
                      static_cast<unsigned long long>(digest));
        if (!cli.quiet)
            for (const autoax::AutoAxFpgaFlow::ScenarioResult& s : result.scenarios)
                std::printf("axf-campaign: scenario %s: %zu archive designs, "
                            "%zu real evaluations\n",
                            core::fpgaParamName(s.param), s.autoax.size(), s.realEvaluations);
        std::printf("axf-campaign: complete, %zu real evaluations, result digest %s\n",
                    result.totalRealEvaluations, digestHex);
        if (!cli.digestFile.empty()) {
            const std::string line = std::string(digestHex) + "\n";
            if (!util::atomicWriteFile(cli.digestFile, line.data(), line.size())) {
                std::fprintf(stderr, "axf-campaign: cannot write %s\n", cli.digestFile.c_str());
                return 2;
            }
        }
    } catch (const util::OperationCancelled& cancelled) {
        // The search flushed a final epoch-boundary checkpoint before
        // throwing; rerunning the same command resumes from it.
        if (!cli.metricsFile.empty()) obs::writeMetricsFile(cli.metricsFile);
        std::fprintf(stderr,
                     "axf-campaign: interrupted (%s); checkpoints in %s are valid — "
                     "rerun to resume\n",
                     cancelled.what(), cli.outDirectory.c_str());
        return util::kCancelledExitCode;
    }
    if (!cli.metricsFile.empty() && !obs::writeMetricsFile(cli.metricsFile)) {
        std::fprintf(stderr, "axf-campaign: cannot write %s\n", cli.metricsFile.c_str());
        return 2;
    }
    return 0;
}
