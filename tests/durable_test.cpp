// Durability substrate: the AXFK checkpoint container (round-trip,
// corruption detection, audit), IslandSearch checkpoint/resume determinism
// (a run killed at any epoch and resumed — at any thread count — is
// bit-identical to an uninterrupted run), cooperative cancellation
// (a tripped token flushes a resumable snapshot before raising), and the
// flow-level torture: a multi-island mixed-strategy AutoAxFpgaFlow DSE
// killed at a chosen scenario/epoch resumes to the uninterrupted Result,
// including under the portable kernel backend.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/autoax/dse.hpp"
#include "src/autoax/sobel.hpp"
#include "src/circuit/kernels.hpp"
#include "src/durable/checkpoint.hpp"
#include "src/error/error_metrics.hpp"
#include "src/gen/adders.hpp"
#include "src/search/island_search.hpp"
#include "src/search/toy_problem.hpp"
#include "src/synth/fpga.hpp"
#include "src/util/cancellation.hpp"
#include "src/util/thread_pool.hpp"

namespace axf {
namespace {

/// Per-test scratch directory under the system temp root.
class DurableTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = (std::filesystem::temp_directory_path() /
                ("axf_durable_test_" +
                 std::string(::testing::UnitTest::GetInstance()->current_test_info()->name())))
                   .string();
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::string path(const char* name) const { return dir_ + "/" + name; }

    std::string dir_;
};

/// The exception tests throw from epoch hooks to simulate a hard kill at
/// a chosen boundary (distinct from OperationCancelled on purpose: a kill
/// is not a cooperative stop).
struct KillSignal {
    int done = 0;
};

// --- AXFK container ------------------------------------------------------

TEST_F(DurableTest, CheckpointRoundTripsAndAudits) {
    const std::vector<std::uint8_t> payload = {1, 2, 3, 250, 251, 252};
    const std::uint64_t digest = 0xDEADBEEFCAFEF00Dull;
    ASSERT_TRUE(durable::writeCheckpoint(path("a.axfk"), digest, payload));

    const auto loaded = durable::loadCheckpoint(path("a.axfk"));
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->digest, digest);
    EXPECT_EQ(loaded->payload, payload);

    const durable::CheckpointAudit audit = durable::auditCheckpoint(path("a.axfk"), digest);
    EXPECT_TRUE(audit.ok) << audit.message;
    EXPECT_EQ(audit.version, durable::kCheckpointVersion);
    EXPECT_EQ(audit.digest, digest);
    EXPECT_EQ(audit.payloadBytes, payload.size());

    // Audit with the wrong expected digest fails without throwing.
    const durable::CheckpointAudit bad = durable::auditCheckpoint(path("a.axfk"), digest + 1);
    EXPECT_FALSE(bad.ok);
}

TEST_F(DurableTest, MissingCheckpointIsNulloptNotError) {
    EXPECT_FALSE(durable::loadCheckpoint(path("nope.axfk")).has_value());
    EXPECT_FALSE(durable::auditCheckpoint(path("nope.axfk")).ok);
}

TEST_F(DurableTest, EveryCorruptionClassIsDetected) {
    const std::vector<std::uint8_t> payload(200, 0x5A);
    ASSERT_TRUE(durable::writeCheckpoint(path("c.axfk"), 7, payload));

    const auto corrupt = [&](const char* name, std::uintmax_t offset, char byte) {
        std::filesystem::copy_file(path("c.axfk"), path(name));
        std::fstream f(path(name), std::ios::binary | std::ios::in | std::ios::out);
        f.seekp(static_cast<std::streamoff>(offset));
        f.put(byte);
    };
    corrupt("magic.axfk", 0, 'X');          // wrong magic
    corrupt("version.axfk", 4, '\x7F');     // unknown version
    corrupt("payload.axfk", 40, '\x00');    // payload bit rot (was 0x5A)
    corrupt("digest.axfk", 13, '\x01');     // digest byte — covered by the CRC
    std::filesystem::copy_file(path("c.axfk"), path("trunc.axfk"));
    std::filesystem::resize_file(path("trunc.axfk"),
                                 std::filesystem::file_size(path("c.axfk")) / 2);

    for (const char* name :
         {"magic.axfk", "version.axfk", "payload.axfk", "digest.axfk", "trunc.axfk"}) {
        EXPECT_FALSE(durable::auditCheckpoint(path(name)).ok) << name;
        EXPECT_THROW(durable::loadCheckpoint(path(name)), durable::CheckpointError) << name;
    }
}

// --- IslandSearch checkpoint/resume --------------------------------------

using TestToyProblem = search::ToyProblem<6, 10>;
using ToySearch = search::IslandSearch<TestToyProblem>;

ToySearch::Options toyOptions() {
    ToySearch::Options o;
    o.islands = 4;
    o.generations = 48;
    o.batch = 3;
    o.seedsPerIsland = 5;
    o.migrationInterval = 8;
    o.migrants = 3;
    o.archiveCap = 32;
    o.seed = 0xD0C;
    o.islandStrategies = {search::Strategy::HillClimb, search::Strategy::Anneal,
                          search::Strategy::Genetic};
    return o;
}

void expectSameResult(const ToySearch::Result& a, const ToySearch::Result& b) {
    EXPECT_EQ(a.evaluations, b.evaluations);
    EXPECT_EQ(a.islandEvaluations, b.islandEvaluations);
    ASSERT_EQ(a.archive.size(), b.archive.size());
    for (std::size_t i = 0; i < a.archive.size(); ++i) {
        EXPECT_EQ(a.archive[i].genome, b.archive[i].genome) << "entry " << i;
        EXPECT_EQ(a.archive[i].objectives, b.archive[i].objectives) << "entry " << i;
    }
    // The RNG streams are part of the contract too: callers continue
    // drawing from them (the DSE random baseline).
    ASSERT_EQ(a.islandRngs.size(), b.islandRngs.size());
    for (std::size_t i = 0; i < a.islandRngs.size(); ++i)
        EXPECT_TRUE(a.islandRngs[i] == b.islandRngs[i]) << "island " << i;
}

TEST_F(DurableTest, KillAtEveryEpochResumesBitIdentical) {
    const TestToyProblem problem;
    const ToySearch::Result reference = ToySearch(problem, toyOptions()).run();

    // 48 generations at interval 8 = 6 epoch boundaries; kill at each one
    // in turn, resume at a different thread count, expect the reference.
    util::ThreadPool narrow(2);
    for (int killEpoch = 1; killEpoch <= 6; ++killEpoch) {
        ToySearch::Options o = toyOptions();
        o.checkpointPath = path("toy.axfk");
        o.onEpoch = [&](int done) {
            if (done >= killEpoch * 8) throw KillSignal{done};
        };
        std::filesystem::remove(o.checkpointPath);
        bool killed = false;
        try {
            ToySearch(problem, o).run();
        } catch (const KillSignal&) {
            killed = true;
        }
        // The final boundary's snapshot is written before the hook runs, so
        // even a kill at the last epoch leaves a complete checkpoint.
        ASSERT_TRUE(killed) << "kill epoch " << killEpoch;
        ASSERT_TRUE(durable::auditCheckpoint(o.checkpointPath).ok);

        SCOPED_TRACE("kill epoch " + std::to_string(killEpoch));
        ToySearch::Options resumeOptions = toyOptions();
        resumeOptions.checkpointPath = o.checkpointPath;
        resumeOptions.threads = killEpoch % 2 == 0 ? 1 : 0;
        resumeOptions.pool = killEpoch % 2 == 0 ? nullptr : &narrow;
        const ToySearch search(problem, resumeOptions);
        expectSameResult(reference, search.runOrResume());
    }
}

TEST_F(DurableTest, CancellationFlushesAResumableSnapshot) {
    const TestToyProblem problem;
    const ToySearch::Result reference = ToySearch(problem, toyOptions()).run();

    util::CancellationToken cancel;
    ToySearch::Options o = toyOptions();
    o.checkpointPath = path("cancelled.axfk");
    o.cancel = &cancel;
    o.onEpoch = [&](int done) {
        if (done >= 16) cancel.requestStop();
    };
    EXPECT_THROW(ToySearch(problem, o).run(), util::OperationCancelled);

    // The snapshot written on the way out is valid and carries this
    // configuration's digest...
    const ToySearch search(problem, toyOptions());
    ASSERT_TRUE(durable::auditCheckpoint(o.checkpointPath, search.checkpointDigest()).ok);

    // ...and a resume without the token finishes to the reference bits.
    ToySearch::Options resumeOptions = toyOptions();
    resumeOptions.checkpointPath = o.checkpointPath;
    expectSameResult(reference, ToySearch(problem, resumeOptions).runOrResume());
}

TEST_F(DurableTest, PreTrippedTokenStopsBeforeAnyEpoch) {
    const TestToyProblem problem;
    util::CancellationToken cancel;
    cancel.requestStop();
    ToySearch::Options o = toyOptions();
    o.checkpointPath = path("early.axfk");
    o.cancel = &cancel;
    EXPECT_THROW(ToySearch(problem, o).run(), util::OperationCancelled);
    // Even the immediate stop leaves a resumable generation-0 snapshot.
    ASSERT_TRUE(durable::auditCheckpoint(o.checkpointPath).ok);
    ToySearch::Options resumeOptions = toyOptions();
    resumeOptions.checkpointPath = o.checkpointPath;
    expectSameResult(ToySearch(problem, toyOptions()).run(),
                     ToySearch(problem, resumeOptions).runOrResume());
}

TEST_F(DurableTest, CompletedCheckpointFastForwards) {
    const TestToyProblem problem;
    ToySearch::Options o = toyOptions();
    o.checkpointPath = path("complete.axfk");
    const ToySearch search(problem, o);
    const ToySearch::Result reference = search.run();
    // The final snapshot is always written; a rerun does zero generations
    // (no new evaluations beyond the recorded ones) and returns the bits.
    expectSameResult(reference, search.runOrResume());
}

TEST_F(DurableTest, ForeignCheckpointIsRejectedLoudly) {
    const TestToyProblem problem;
    ToySearch::Options o = toyOptions();
    o.checkpointPath = path("mine.axfk");
    ToySearch(problem, o).run();

    // Same file, different result-affecting configuration -> digest
    // mismatch, loud error (never a silent fresh start).
    ToySearch::Options other = toyOptions();
    other.checkpointPath = o.checkpointPath;
    other.seed ^= 1;
    EXPECT_THROW(ToySearch(problem, other).resume(other.checkpointPath),
                 durable::CheckpointError);
    EXPECT_THROW(ToySearch(problem, other).runOrResume(), durable::CheckpointError);

    // A valid container with a mangled payload is also loud.
    ASSERT_TRUE(durable::writeCheckpoint(o.checkpointPath,
                                         ToySearch(problem, o).checkpointDigest(),
                                         {1, 2, 3}));
    EXPECT_THROW(ToySearch(problem, o).resume(o.checkpointPath), durable::CheckpointError);
}

/// A Problem without genome-serialization hooks: the checkpoint API must
/// be rejected at construction, not fail mysteriously later.
struct OpaqueToyProblem {
    using Genome = TestToyProblem::Genome;
    TestToyProblem inner;

    std::size_t objectiveCount() const { return inner.objectiveCount(); }
    Genome random(util::Rng& rng) const { return inner.random(rng); }
    Genome mutate(const Genome& g, util::Rng& rng) const { return inner.mutate(g, rng); }
    Genome crossover(const Genome& a, const Genome& b, util::Rng& rng) const {
        return inner.crossover(a, b, rng);
    }
    void evaluate(std::span<const Genome> batch, std::span<search::Objectives> out) const {
        inner.evaluate(batch, out);
    }
};

TEST_F(DurableTest, NonCheckpointableProblemRejectsCheckpointPath) {
    static_assert(!search::CheckpointableProblem<OpaqueToyProblem>);
    const OpaqueToyProblem problem;
    search::IslandSearch<OpaqueToyProblem>::Options o;
    o.checkpointPath = path("nope.axfk");
    EXPECT_THROW(search::IslandSearch<OpaqueToyProblem>(problem, o),
                 std::invalid_argument);
}

// --- flow-level torture: AutoAxFpgaFlow kill/resume ----------------------

autoax::Component makeComponent(circuit::Netlist netlist) {
    autoax::Component c;
    c.name = netlist.name();
    c.signature = gen::adderSignature(16);
    c.error = error::analyzeError(netlist, c.signature);
    c.fpga = synth::FpgaFlow().implement(netlist);
    c.netlist = std::move(netlist);
    return c;
}

const autoax::SobelAccelerator& sobel() {
    static const autoax::SobelAccelerator kSobel([] {
        std::vector<autoax::Component> menu;
        menu.push_back(makeComponent(gen::rippleCarryAdder(16)));
        for (int k : {4, 8, 10}) menu.push_back(makeComponent(gen::loaAdder(16, k)));
        return menu;
    }());
    return kSobel;
}

autoax::AutoAxFpgaFlow::Config flowConfig() {
    autoax::AutoAxFpgaFlow::Config cfg;
    cfg.trainConfigs = 16;
    cfg.hillIterations = 240;
    cfg.archiveSeed = 8;
    cfg.archiveCap = 40;
    cfg.imageSize = 32;
    cfg.sceneCount = 1;
    cfg.islands = 3;
    cfg.searchBatch = 4;
    cfg.migrationInterval = 8;  // 240/(3*4) = 20 generations: epochs at 8, 16, 20
    cfg.islandStrategies = {search::Strategy::HillClimb, search::Strategy::Anneal,
                            search::Strategy::Genetic};
    return cfg;
}

void expectSameFlowResult(const autoax::AutoAxFpgaFlow::Result& a,
                          const autoax::AutoAxFpgaFlow::Result& b) {
    EXPECT_EQ(a.totalRealEvaluations, b.totalRealEvaluations);
    ASSERT_EQ(a.trainingSet.size(), b.trainingSet.size());
    for (std::size_t i = 0; i < a.trainingSet.size(); ++i) {
        EXPECT_EQ(a.trainingSet[i].config, b.trainingSet[i].config);
        EXPECT_EQ(a.trainingSet[i].ssim, b.trainingSet[i].ssim);
    }
    ASSERT_EQ(a.scenarios.size(), b.scenarios.size());
    for (std::size_t s = 0; s < a.scenarios.size(); ++s) {
        const auto& x = a.scenarios[s];
        const auto& y = b.scenarios[s];
        EXPECT_EQ(x.param, y.param);
        EXPECT_EQ(x.estimatorQueries, y.estimatorQueries);
        EXPECT_EQ(x.realEvaluations, y.realEvaluations);
        ASSERT_EQ(x.autoax.size(), y.autoax.size());
        for (std::size_t i = 0; i < x.autoax.size(); ++i) {
            EXPECT_EQ(x.autoax[i].config, y.autoax[i].config);
            EXPECT_EQ(x.autoax[i].ssim, y.autoax[i].ssim);
            EXPECT_EQ(x.autoax[i].cost.lutCount, y.autoax[i].cost.lutCount);
        }
        ASSERT_EQ(x.random.size(), y.random.size());
        for (std::size_t i = 0; i < x.random.size(); ++i) {
            EXPECT_EQ(x.random[i].config, y.random[i].config);
            EXPECT_EQ(x.random[i].ssim, y.random[i].ssim);
        }
    }
}

TEST_F(DurableTest, FlowKilledAtRandomEpochResumesBitIdentical) {
    const autoax::AutoAxFpgaFlow::Result reference =
        autoax::AutoAxFpgaFlow(flowConfig()).run(sobel());
    ASSERT_EQ(reference.scenarios.size(), 3u);

    // Kill points spread over scenarios and epochs, including the very
    // first boundary of the first scenario and the final boundary of the
    // last; resume runs alternate the worker cap.
    struct KillPoint {
        core::FpgaParam param;
        int done;
    };
    const std::vector<KillPoint> kills = {{core::FpgaParam::Latency, 8},
                                          {core::FpgaParam::Latency, 20},
                                          {core::FpgaParam::Power, 16},
                                          {core::FpgaParam::Area, 8},
                                          {core::FpgaParam::Area, 20}};
    for (std::size_t k = 0; k < kills.size(); ++k) {
        SCOPED_TRACE("kill point " + std::to_string(k));
        const std::string checkpointDir = path("flow") + std::to_string(k);
        autoax::AutoAxFpgaFlow::Config killed = flowConfig();
        killed.checkpointDirectory = checkpointDir;
        killed.onSearchEpoch = [&, k](core::FpgaParam param, int done) {
            if (param == kills[k].param && done >= kills[k].done) throw KillSignal{done};
        };
        bool interrupted = false;
        try {
            autoax::AutoAxFpgaFlow(killed).run(sobel());
        } catch (const KillSignal&) {
            interrupted = true;
        }
        ASSERT_TRUE(interrupted) << "kill point " << k;

        autoax::AutoAxFpgaFlow::Config resumed = flowConfig();
        resumed.checkpointDirectory = checkpointDir;
        resumed.threads = k % 2 == 0 ? 1 : 0;
        expectSameFlowResult(reference, autoax::AutoAxFpgaFlow(resumed).run(sobel()));
    }
}

TEST_F(DurableTest, FlowResumeBitIdenticalUnderPortableBackend) {
    // Interrupt under the auto-detected backend, resume under the portable
    // kernels: gate-level simulation is bit-exact across backends, so the
    // resumed Result must still match the reference bits.
    const autoax::AutoAxFpgaFlow::Result reference =
        autoax::AutoAxFpgaFlow(flowConfig()).run(sobel());

    autoax::AutoAxFpgaFlow::Config killed = flowConfig();
    killed.checkpointDirectory = path("flow_portable");
    killed.onSearchEpoch = [](core::FpgaParam param, int done) {
        if (param == core::FpgaParam::Power && done >= 8) throw KillSignal{done};
    };
    EXPECT_THROW(autoax::AutoAxFpgaFlow(killed).run(sobel()), KillSignal);

    const circuit::kernels::Backend* portable = circuit::kernels::backendByName("portable");
    ASSERT_NE(portable, nullptr);
    circuit::kernels::ScopedBackendOverride scoped(portable);
    autoax::AutoAxFpgaFlow::Config resumed = flowConfig();
    resumed.checkpointDirectory = killed.checkpointDirectory;
    expectSameFlowResult(reference, autoax::AutoAxFpgaFlow(resumed).run(sobel()));
}

TEST_F(DurableTest, FlowCancellationExitsWithValidCheckpoints) {
    util::CancellationToken cancel;
    autoax::AutoAxFpgaFlow::Config cfg = flowConfig();
    cfg.checkpointDirectory = path("flow_cancel");
    cfg.cancel = &cancel;
    cfg.onSearchEpoch = [&](core::FpgaParam, int done) {
        if (done >= 16) cancel.requestStop();
    };
    EXPECT_THROW(autoax::AutoAxFpgaFlow(cfg).run(sobel()), util::OperationCancelled);
    // The scenario that was cancelled left an epoch-boundary snapshot.
    ASSERT_TRUE(
        durable::auditCheckpoint(cfg.checkpointDirectory + "/scenario_latency.axfk").ok);

    autoax::AutoAxFpgaFlow::Config resumed = flowConfig();
    resumed.checkpointDirectory = cfg.checkpointDirectory;
    expectSameFlowResult(autoax::AutoAxFpgaFlow(flowConfig()).run(sobel()),
                         autoax::AutoAxFpgaFlow(resumed).run(sobel()));
}

}  // namespace
}  // namespace axf
