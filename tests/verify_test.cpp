// Static verifier (src/verify): clean runs over generator netlists and
// their compiled programs across backends, mutation-based negative tests
// asserting every corruption class is rejected with its specific rule id,
// ternary abstract-interpretation soundness against the exhaustive fault
// engine, the AXF_VERIFY self-check hook, and cache verify-on-load.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include "src/cache/characterization_cache.hpp"
#include "src/circuit/arith.hpp"
#include "src/circuit/batch_sim.hpp"
#include "src/circuit/kernels.hpp"
#include "src/circuit/netlist.hpp"
#include "src/circuit/transform.hpp"
#include "src/fault/fault.hpp"
#include "src/gen/adders.hpp"
#include "src/gen/multipliers.hpp"
#include "src/util/bytes.hpp"
#include "src/verify/absint.hpp"
#include "src/verify/diagnostics.hpp"
#include "src/verify/verify.hpp"

namespace axf::verify {
namespace {

using circuit::CompiledNetlist;
using circuit::GateKind;
using circuit::Netlist;
using circuit::Node;
using circuit::NodeId;
using circuit::kInvalidNode;
using circuit::kernels::Instr;
using circuit::kernels::OpCode;

std::vector<Netlist> sampleNetlists() {
    std::vector<Netlist> nets;
    nets.push_back(gen::rippleCarryAdder(8));
    nets.push_back(gen::koggeStoneAdder(6));
    nets.push_back(gen::loaAdder(8, 3));
    nets.push_back(gen::gearAdder(8, 4, 2));
    nets.push_back(gen::approxCellAdder(8, 4, gen::ApproxFaKind::PassA));
    nets.push_back(gen::wallaceMultiplier(6));
    nets.push_back(gen::truncatedMultiplier(6, 3));
    nets.push_back(gen::drumMultiplier(8, 4));
    nets.push_back(gen::mitchellMultiplier(6));
    return nets;
}

/// Mutable copy of a compiled program for mutation tests.
struct ProgramCopy {
    std::vector<Instr> instructions;
    std::vector<CompiledNetlist::Run> runs;
    std::vector<std::uint32_t> inputSlots;
    std::vector<std::uint32_t> outputSlots;
    std::vector<std::pair<std::uint32_t, bool>> constants;
    std::vector<NodeId> slotNodes;
    std::size_t slotCount = 0;

    explicit ProgramCopy(const CompiledNetlist& c)
        : instructions(c.instructions().begin(), c.instructions().end()),
          runs(c.runs().begin(), c.runs().end()),
          inputSlots(c.inputSlots().begin(), c.inputSlots().end()),
          outputSlots(c.outputSlots().begin(), c.outputSlots().end()),
          constants(c.constantSlots().begin(), c.constantSlots().end()),
          slotNodes(c.slotNodes().begin(), c.slotNodes().end()),
          slotCount(c.slotCount()) {}

    ProgramView view() const {
        ProgramView v;
        v.instructions = instructions;
        v.runs = runs;
        v.inputSlots = inputSlots;
        v.outputSlots = outputSlots;
        v.constants = constants;
        v.slotNodes = slotNodes;
        v.slotCount = slotCount;
        return v;
    }
};

// ---------------------------------------------------------------------------
// Clean runs
// ---------------------------------------------------------------------------

TEST(VerifyLint, GeneratorNetlistsAreClean) {
    for (const Netlist& net : sampleNetlists()) {
        // Raw generator output may contain dead scaffolding (unused prefix
        // nodes etc.) — warning material, never structural errors.
        const Diagnostics raw = lintNetlist(net);
        EXPECT_EQ(raw.errorCount(), 0u) << net.name() << ": " << raw.summary();
        // The simplified form (what the library pipeline ships) must be
        // warning-clean too; dangling inputs stay Info (truncation-style
        // approximations keep their interface).
        const Diagnostics clean = lintNetlist(circuit::simplify(net));
        EXPECT_EQ(clean.errorCount(), 0u) << net.name() << ": " << clean.summary();
        EXPECT_EQ(clean.warningCount(), 0u) << net.name() << ": " << clean.summary();
    }
}

TEST(VerifyProgram, CompiledProgramsAreCleanAcrossBackends) {
    for (const circuit::kernels::Backend* backend : circuit::kernels::availableBackends()) {
        for (const Netlist& net : sampleNetlists()) {
            CompiledNetlist::Options options;
            options.backend = backend;
            const CompiledNetlist compiled = CompiledNetlist::compile(net, options);
            const Diagnostics d = verifyProgram(compiled, &net);
            EXPECT_EQ(d.errorCount(), 0u)
                << net.name() << " on " << backend->name << ": " << d.summary();
        }
    }
}

TEST(VerifyProgram, UnprunedCompileIsClean) {
    const Netlist net = gen::wallaceMultiplier(4);
    CompiledNetlist::Options options;
    options.pruneDead = false;
    const CompiledNetlist compiled = CompiledNetlist::compile(net, options);
    const Diagnostics d = verifyProgram(compiled, &net);
    EXPECT_EQ(d.errorCount(), 0u) << d.summary();
}

TEST(VerifyProgram, SpecializedProgramIsClean) {
    const Netlist net = gen::rippleCarryAdder(16);
    CompiledNetlist compiled = CompiledNetlist::compile(net);
    compiled.specialize();
    const Diagnostics d = verifyProgram(compiled, &net);
    EXPECT_EQ(d.errorCount(), 0u) << d.summary();
}

// ---------------------------------------------------------------------------
// Netlist mutation negatives (raw-span front door: the builder cannot
// construct corrupt IR, serialized/ingested streams can)
// ---------------------------------------------------------------------------

struct RawNetlist {
    std::vector<Node> nodes;
    std::vector<NodeId> inputs;
    std::vector<NodeId> outputs;

    explicit RawNetlist(const Netlist& net)
        : nodes(net.nodes().begin(), net.nodes().end()),
          inputs(net.inputs().begin(), net.inputs().end()),
          outputs(net.outputs().begin(), net.outputs().end()) {}

    Diagnostics lint(const LintOptions& options = {}) const {
        return lintNetlist(nodes, inputs, outputs, options);
    }
};

RawNetlist validRaw() {
    RawNetlist raw(gen::rippleCarryAdder(4));
    EXPECT_FALSE(raw.lint().hasErrors());
    return raw;
}

NodeId firstGate(const RawNetlist& raw) {
    for (NodeId i = 0; i < raw.nodes.size(); ++i)
        if (circuit::fanInCount(raw.nodes[i].kind) >= 2) return i;
    ADD_FAILURE() << "no 2-input gate found";
    return 0;
}

TEST(VerifyLintMutation, MissingOperandIsArity) {
    RawNetlist raw = validRaw();
    raw.nodes[firstGate(raw)].b = kInvalidNode;
    const Diagnostics d = raw.lint();
    EXPECT_TRUE(d.hasErrors());
    EXPECT_TRUE(d.has(Rule::NetArity)) << d.summary();
}

TEST(VerifyLintMutation, UnknownKindIsArity) {
    RawNetlist raw = validRaw();
    raw.nodes[firstGate(raw)].kind = static_cast<GateKind>(0xEE);
    EXPECT_TRUE(raw.lint().has(Rule::NetArity));
}

TEST(VerifyLintMutation, ForwardReferenceIsCycle) {
    RawNetlist raw = validRaw();
    const NodeId g = firstGate(raw);
    raw.nodes[g].a = static_cast<NodeId>(raw.nodes.size() - 1);  // forward edge
    ASSERT_GT(raw.nodes.size() - 1, g);
    EXPECT_TRUE(raw.lint().has(Rule::NetOperandRange));
}

TEST(VerifyLintMutation, OutOfRangeOperand) {
    RawNetlist raw = validRaw();
    raw.nodes[firstGate(raw)].a = static_cast<NodeId>(raw.nodes.size() + 7);
    EXPECT_TRUE(raw.lint().has(Rule::NetOperandRange));
}

TEST(VerifyLintMutation, CorruptInputList) {
    RawNetlist raw = validRaw();
    std::swap(raw.inputs[0], raw.inputs[1]);
    EXPECT_TRUE(raw.lint().has(Rule::NetInputList));
    RawNetlist shorter = validRaw();
    shorter.inputs.pop_back();
    EXPECT_TRUE(shorter.lint().has(Rule::NetInputList));
}

TEST(VerifyLintMutation, OutOfRangeOutput) {
    RawNetlist raw = validRaw();
    raw.outputs.back() = static_cast<NodeId>(raw.nodes.size());
    EXPECT_TRUE(raw.lint().has(Rule::NetOutputRange));
}

TEST(VerifyLintMutation, NoOutputsWarns) {
    RawNetlist raw = validRaw();
    raw.outputs.clear();
    const Diagnostics d = raw.lint();
    EXPECT_FALSE(d.hasErrors());
    EXPECT_TRUE(d.has(Rule::NetNoOutputs));
}

TEST(VerifyLintMutation, UnreachableGateWarns) {
    // A gate consuming two inputs that no output references.
    Netlist net("unreachable");
    const NodeId a = net.addInput();
    const NodeId b = net.addInput();
    net.addGate(GateKind::And, a, b);  // dead
    net.markOutput(net.addGate(GateKind::Xor, a, b));
    const Diagnostics d = lintNetlist(net);
    EXPECT_FALSE(d.hasErrors());
    EXPECT_TRUE(d.has(Rule::NetUnreachable)) << d.summary();

    LintOptions muted;
    muted.warnUnreachable = false;
    EXPECT_FALSE(lintNetlist(net, muted).has(Rule::NetUnreachable));
}

TEST(VerifyLintMutation, DuplicateStructureWarns) {
    Netlist net("dup");
    const NodeId a = net.addInput();
    const NodeId b = net.addInput();
    const NodeId x = net.addGate(GateKind::And, a, b);
    const NodeId y = net.addGate(GateKind::And, a, b);  // identical cone
    net.markOutput(net.addGate(GateKind::Or, x, y));
    const Diagnostics d = lintNetlist(net);
    EXPECT_FALSE(d.hasErrors());
    EXPECT_TRUE(d.has(Rule::NetDuplicateStructure)) << d.summary();
}

TEST(VerifyLintMutation, ConstFoldableConeWarns) {
    Netlist net("fold");
    const NodeId a = net.addInput();
    const NodeId zero = net.addConst(false);
    const NodeId dead = net.addGate(GateKind::And, a, zero);  // provably 0
    net.markOutput(net.addGate(GateKind::Or, dead, a));
    const Diagnostics d = lintNetlist(net);
    EXPECT_FALSE(d.hasErrors());
    EXPECT_TRUE(d.has(Rule::NetConstFoldable)) << d.summary();
}

TEST(VerifyLintMutation, DanglingInputIsInfo) {
    Netlist net("dangling");
    const NodeId a = net.addInput();
    net.addInput();  // never consumed
    net.markOutput(net.addGate(GateKind::Not, a));
    const Diagnostics d = lintNetlist(net);
    EXPECT_FALSE(d.hasErrors());
    EXPECT_EQ(d.warningCount(), 0u);
    EXPECT_TRUE(d.has(Rule::NetDanglingInput)) << d.summary();
}

// ---------------------------------------------------------------------------
// Program mutation negatives
// ---------------------------------------------------------------------------

TEST(VerifyProgramMutation, OperandSlotOutOfRange) {
    ProgramCopy p(CompiledNetlist::compile(gen::rippleCarryAdder(4)));
    p.instructions.front().a = static_cast<std::uint32_t>(p.slotCount + 3);
    EXPECT_TRUE(verifyProgram(p.view()).has(Rule::ProgSlotRange));
}

TEST(VerifyProgramMutation, UseBeforeDefinition) {
    ProgramCopy p(CompiledNetlist::compile(gen::rippleCarryAdder(4)));
    // First instruction reads the last instruction's destination.
    p.instructions.front().a = p.instructions.back().dst;
    EXPECT_TRUE(verifyProgram(p.view()).has(Rule::ProgUseBeforeDef));
}

TEST(VerifyProgramMutation, PlaneClobberIsRedefinition) {
    ProgramCopy p(CompiledNetlist::compile(gen::rippleCarryAdder(4)));
    // Last instruction overwrites the first one's (still live) plane.
    p.instructions.back().dst = p.instructions.front().dst;
    EXPECT_TRUE(verifyProgram(p.view()).has(Rule::ProgRedefinition));
}

TEST(VerifyProgramMutation, InputPlaneClobberIsRedefinition) {
    ProgramCopy p(CompiledNetlist::compile(gen::rippleCarryAdder(4)));
    p.instructions.front().dst = p.inputSlots.front();
    EXPECT_TRUE(verifyProgram(p.view()).has(Rule::ProgRedefinition));
}

TEST(VerifyProgramMutation, BrokenRunPartition) {
    ProgramCopy p(CompiledNetlist::compile(gen::rippleCarryAdder(4)));
    ASSERT_FALSE(p.runs.empty());
    p.runs.front().end += 1;  // overlaps the next run
    EXPECT_TRUE(verifyProgram(p.view()).has(Rule::ProgRunShape));

    ProgramCopy q(CompiledNetlist::compile(gen::rippleCarryAdder(4)));
    q.runs.pop_back();  // stream no longer covered
    EXPECT_TRUE(verifyProgram(q.view()).has(Rule::ProgRunShape));
}

TEST(VerifyProgramMutation, FalseChainClaim) {
    ProgramCopy p(CompiledNetlist::compile(gen::rippleCarryAdder(8)));
    bool mutated = false;
    for (CompiledNetlist::Run& run : p.runs) {
        if (run.end - run.begin < 2) continue;
        if (run.chained) {
            // Break one link: operand a of the second instruction no
            // longer reads its predecessor's destination.
            Instr& ins = p.instructions[run.begin + 1];
            for (const std::uint32_t s : p.inputSlots) {
                if (s != p.instructions[run.begin].dst) {
                    ins.a = s;
                    mutated = true;
                    break;
                }
            }
        } else {
            run.chained = true;  // claim a chain that does not exist
            // Claim only holds if links accidentally line up; ensure not.
            bool links = true;
            for (std::uint32_t i = run.begin + 1; i < run.end; ++i)
                links = links && p.instructions[i].a == p.instructions[i - 1].dst;
            if (links) {
                run.chained = false;
                continue;
            }
            mutated = true;
        }
        if (mutated) break;
    }
    ASSERT_TRUE(mutated) << "no multi-instruction run to corrupt";
    EXPECT_TRUE(verifyProgram(p.view()).has(Rule::ProgChainClaim));
}

TEST(VerifyProgramMutation, BadFusionSemantics) {
    const Netlist net = gen::wallaceMultiplier(6);
    ProgramCopy p(CompiledNetlist::compile(net));
    // Swap one whole run's opcode for a same-fan-in sibling: the run
    // partition stays legal, only the computed function changes — exactly
    // what the truth-table re-derivation must catch.
    bool mutated = false;
    for (CompiledNetlist::Run& run : p.runs) {
        OpCode replacement;
        switch (run.op) {
            case OpCode::And: replacement = OpCode::Or; break;
            case OpCode::Or: replacement = OpCode::And; break;
            case OpCode::Xor: replacement = OpCode::Xnor; break;
            case OpCode::Xor3: replacement = OpCode::Maj; break;
            case OpCode::Maj: replacement = OpCode::Xor3; break;
            case OpCode::And3: replacement = OpCode::Or3; break;
            case OpCode::Or3: replacement = OpCode::And3; break;
            default: continue;
        }
        run.op = replacement;
        for (std::uint32_t i = run.begin; i < run.end; ++i)
            p.instructions[i].op = replacement;
        mutated = true;
        break;
    }
    ASSERT_TRUE(mutated) << "no swappable run found";
    const Diagnostics d = verifyProgram(p.view(), &net);
    EXPECT_TRUE(d.has(Rule::ProgFusionSemantics)) << d.summary();

    // The untouched program proves clean under the same check.
    const CompiledNetlist clean = CompiledNetlist::compile(net);
    EXPECT_EQ(verifyProgram(clean, &net).errorCount(), 0u);
}

TEST(VerifyProgramMutation, OutputPlaneNeverWritten) {
    ProgramCopy p(CompiledNetlist::compile(gen::rippleCarryAdder(4)));
    p.slotCount += 1;
    p.slotNodes.push_back(kInvalidNode);
    p.outputSlots.back() = static_cast<std::uint32_t>(p.slotCount - 1);
    EXPECT_TRUE(verifyProgram(p.view()).has(Rule::ProgOutputUndefined));
}

TEST(VerifyProgramMutation, DuplicateInputSlotIsInterface) {
    ProgramCopy p(CompiledNetlist::compile(gen::rippleCarryAdder(4)));
    ASSERT_GE(p.inputSlots.size(), 2u);
    p.inputSlots[1] = p.inputSlots[0];
    EXPECT_TRUE(verifyProgram(p.view()).has(Rule::ProgInterface));
}

// ---------------------------------------------------------------------------
// Abstract interpretation
// ---------------------------------------------------------------------------

TEST(VerifyAbsInt, TernaryTransferFunctions) {
    using K = OpCode;
    const Ternary Z = Ternary::Zero, O = Ternary::One, X = Ternary::X;
    EXPECT_EQ(ternaryOpEval(K::And, Z, X, X), Z);  // 0 dominates AND
    EXPECT_EQ(ternaryOpEval(K::Or, O, X, X), O);   // 1 dominates OR
    EXPECT_EQ(ternaryOpEval(K::Xor, X, Z, X), X);
    EXPECT_EQ(ternaryOpEval(K::Xor, O, O, X), Z);
    EXPECT_EQ(ternaryOpEval(K::Mux, O, X, Z), O);    // select 0 -> a
    EXPECT_EQ(ternaryOpEval(K::Mux, X, O, O), O);    // select 1 -> b
    EXPECT_EQ(ternaryOpEval(K::Maj, Z, Z, X), Z);    // two zeros decide
    EXPECT_EQ(ternaryOpEval(K::And3, X, X, Z), Z);
    EXPECT_EQ(ternaryOpEval(K::Or3, X, O, X), O);
    EXPECT_EQ(ternaryOpEval(K::Xor3, O, O, X), X);
    EXPECT_EQ(ternaryGateEval(GateKind::Nand, Ternary::Zero, Ternary::X, Ternary::X),
              Ternary::One);
    EXPECT_EQ(ternaryGateEval(GateKind::Const1, Ternary::X, Ternary::X, Ternary::X),
              Ternary::One);
}

TEST(VerifyAbsInt, ConstantPropagationThroughNetlist) {
    Netlist net("prop");
    const NodeId a = net.addInput();
    const NodeId one = net.addConst(true);
    const NodeId orGate = net.addGate(GateKind::Or, a, one);    // always 1
    const NodeId andGate = net.addGate(GateKind::And, a, orGate);  // == a -> X
    net.markOutput(andGate);
    const std::vector<Ternary> v = absEvalNetlist(net);
    EXPECT_EQ(v[orGate], Ternary::One);
    EXPECT_EQ(v[andGate], Ternary::X);

    const Ternary pinned[] = {Ternary::One};
    const std::vector<Ternary> w = absEvalNetlist(net, pinned);
    EXPECT_EQ(w[andGate], Ternary::One);
}

TEST(VerifyAbsInt, ProgramAndNetlistDomainsAgreeOnOutputs) {
    for (const Netlist& net : sampleNetlists()) {
        const std::vector<Ternary> nodeVals = absEvalNetlist(net);
        const CompiledNetlist compiled = CompiledNetlist::compile(net);
        const std::vector<Ternary> slotVals = absEvalProgram(compiled);
        const auto outSlots = compiled.outputSlots();
        for (std::size_t o = 0; o < outSlots.size(); ++o) {
            // Both domains use maximally precise per-op transfer functions
            // and fused opcodes compose the same gate functions, so the
            // abstract output values must agree exactly.
            EXPECT_EQ(static_cast<int>(slotVals[outSlots[o]]),
                      static_cast<int>(nodeVals[net.outputs()[o]]))
                << net.name() << " output " << o;
        }
    }
}

TEST(VerifyAbsInt, CannotDeviateIsSoundAgainstExhaustiveCampaign) {
    // Truncated structures have provably constant / disconnected planes:
    // the static proof must be non-trivial AND every proven site must show
    // zero deviation in the exhaustive ground-truth campaign.
    const Netlist net = gen::truncatedMultiplier(5, 3);
    const circuit::ArithSignature sig{circuit::ArithOp::Multiplier, 5, 5};

    const CompiledNetlist compiled = CompiledNetlist::compile(net);
    const fault::SiteEnumeration en = fault::enumerateFaultSites(compiled);
    std::vector<StuckSite> stuck(en.sites.size());
    for (std::size_t f = 0; f < en.sites.size(); ++f)
        stuck[f] = {en.sites[f].slot, en.sites[f].afterInstr, en.sites[f].stuckTo};
    const std::vector<bool> proven = cannotDeviate(compiled, stuck);
    const std::size_t provenCount =
        static_cast<std::size_t>(std::count(proven.begin(), proven.end(), true));
    EXPECT_GT(provenCount, 0u) << "static skip list is trivial";
    EXPECT_LT(provenCount, proven.size()) << "everything proven safe cannot be right";

    fault::CampaignConfig config;
    config.staticSkip = false;  // ground truth: evaluate every site
    const fault::ResilienceReport report = fault::analyzeResilience(net, sig, config);
    ASSERT_TRUE(report.exhaustive);
    ASSERT_EQ(report.faults.size(), proven.size());
    for (std::size_t f = 0; f < proven.size(); ++f)
        if (proven[f])
            EXPECT_EQ(report.faults[f].deviatedVectors, 0u)
                << "statically 'safe' site deviated: slot " << en.sites[f].slot;
}

TEST(VerifyAbsInt, StaticSkipKeepsReportsBitIdentical) {
    const struct {
        Netlist net;
        circuit::ArithSignature sig;
    } cases[] = {
        {gen::truncatedMultiplier(5, 3), {circuit::ArithOp::Multiplier, 5, 5}},
        {gen::loaAdder(6, 3), {circuit::ArithOp::Adder, 6, 6}},
    };
    for (const auto& c : cases) {
        fault::CampaignConfig on, off;
        on.staticSkip = true;
        off.staticSkip = false;
        const fault::ResilienceReport a = fault::analyzeResilience(c.net, c.sig, on);
        const fault::ResilienceReport b = fault::analyzeResilience(c.net, c.sig, off);
        util::ByteWriter wa, wb;
        a.serialize(wa);
        b.serialize(wb);
        EXPECT_EQ(wa.take(), wb.take()) << c.net.name();
    }
}

TEST(VerifyAbsInt, StaticSkipBitIdenticalWhenSampled) {
    // 9x9 exceeds the default exhaustive limit -> sampled lane-group path.
    const Netlist net = gen::truncatedMultiplier(9, 5);
    const circuit::ArithSignature sig{circuit::ArithOp::Multiplier, 9, 9};
    fault::CampaignConfig on, off;
    on.analysis.sampleCount = 1 << 10;
    off.analysis.sampleCount = 1 << 10;
    on.staticSkip = true;
    off.staticSkip = false;
    const fault::ResilienceReport a = fault::analyzeResilience(net, sig, on);
    const fault::ResilienceReport b = fault::analyzeResilience(net, sig, off);
    ASSERT_FALSE(a.exhaustive);
    util::ByteWriter wa, wb;
    a.serialize(wa);
    b.serialize(wb);
    EXPECT_EQ(wa.take(), wb.take());
}

// ---------------------------------------------------------------------------
// AXF_VERIFY hook + cache verify-on-load
// ---------------------------------------------------------------------------

TEST(VerifyHook, SelfChecksPassOnRealPrograms) {
    ScopedVerifyOverride enabled(true);
    ASSERT_TRUE(verifyEnabled());
    for (const Netlist& net : sampleNetlists()) {
        EXPECT_NO_THROW({
            const CompiledNetlist compiled = CompiledNetlist::compile(net);
            (void)compiled;
            const Netlist simplified = circuit::simplify(net);
            (void)circuit::lowerToTwoInput(simplified);
        }) << net.name();
    }
}

TEST(VerifyHook, OverrideRestores) {
    {
        ScopedVerifyOverride enabled(true);
        EXPECT_TRUE(verifyEnabled());
        {
            ScopedVerifyOverride disabled(false);
            EXPECT_FALSE(verifyEnabled());
        }
        EXPECT_TRUE(verifyEnabled());
    }
}

TEST(VerifyHook, ThrowIfErrorsCarriesRuleId) {
    Diagnostics d;
    d.add(Rule::ProgChainClaim, 3, "broken");
    try {
        throwIfErrors(d, "test");
        FAIL() << "expected logic_error";
    } catch (const std::logic_error& e) {
        EXPECT_NE(std::string(e.what()).find("CP005"), std::string::npos) << e.what();
    }
}

TEST(VerifyCache, LintOnLoadRejectsCorruptNetlists) {
    cache::CharacterizationCache::Options options;
    options.verifyNetlists = true;
    cache::CharacterizationCache cache(options);

    const Netlist net = gen::rippleCarryAdder(4);
    const std::uint64_t hash = net.structuralHash();
    const cache::CacheKey key = cache::CharacterizationCache::blobKey(hash, "verify-test.v1");

    cache.putNetlist(key, net, hash);
    std::uint64_t outHash = 0;
    const std::optional<Netlist> loaded = cache.findNetlist(key, &outHash);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(outHash, hash);
    EXPECT_EQ(loaded->structuralHash(), hash);

    // Tampered payload: embedded hash disagrees with the rebuilt netlist.
    util::ByteWriter tampered;
    tampered.u64(hash ^ 0xBADF00D);
    net.serialize(tampered);
    cache.putBytes(key, tampered.take());
    EXPECT_FALSE(cache.findNetlist(key).has_value());
    EXPECT_GE(cache.stats().corruptEntriesDropped, 1u);
}

}  // namespace
}  // namespace axf::verify
