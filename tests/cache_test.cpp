// Characterization-cache subsystem: key digests, typed round-trips, disk
// persistence across instances (the multi-process story), corrupt-shard
// recovery, eviction accounting, and the headline guarantee — warm
// `gen::buildLibrary` runs are bit-identical to cold runs at any thread
// count, and much faster.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "src/cache/characterization_cache.hpp"
#include "src/gen/adders.hpp"
#include "src/gen/library.hpp"
#include "src/gen/multipliers.hpp"
#include "src/synth/asic.hpp"
#include "src/synth/fpga.hpp"
#include "src/util/rng.hpp"

namespace axf::cache {
namespace {

using CC = CharacterizationCache;

class CacheTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = (std::filesystem::temp_directory_path() /
                ("axf_cache_test_" +
                 std::string(::testing::UnitTest::GetInstance()->current_test_info()->name())))
                   .string();
        std::filesystem::remove_all(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    CC::Options diskOptions() const {
        CC::Options options;
        options.directory = dir_;
        return options;
    }

    std::string dir_;
};

double seconds(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

void expectReportsBitIdentical(const error::ErrorReport& a, const error::ErrorReport& b) {
    EXPECT_EQ(a.med, b.med);
    EXPECT_EQ(a.meanAbsoluteError, b.meanAbsoluteError);
    EXPECT_EQ(a.worstCaseError, b.worstCaseError);
    EXPECT_EQ(a.meanRelativeError, b.meanRelativeError);
    EXPECT_EQ(a.errorProbability, b.errorProbability);
    EXPECT_EQ(a.meanSquaredError, b.meanSquaredError);
    EXPECT_EQ(a.vectorsEvaluated, b.vectorsEvaluated);
    EXPECT_EQ(a.exhaustive, b.exhaustive);
}

void expectLibrariesBitIdentical(const gen::AcLibrary& a, const gen::AcLibrary& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_EQ(a[i].origin, b[i].origin);
        EXPECT_EQ(a[i].signature, b[i].signature);
        EXPECT_EQ(a[i].netlist.structuralHash(), b[i].netlist.structuralHash());
        util::ByteWriter wa, wb;
        a[i].netlist.serialize(wa);
        b[i].netlist.serialize(wb);
        EXPECT_EQ(wa.bytes(), wb.bytes()) << a[i].name;
        expectReportsBitIdentical(a[i].error, b[i].error);
    }
}

gen::LibraryConfig structuralConfig(cache::CharacterizationCache* cache, int threads) {
    gen::LibraryConfig cfg;
    cfg.op = circuit::ArithOp::Multiplier;
    cfg.width = 8;
    cfg.structuralOnly = true;
    cfg.errorConfig.threads = threads;
    cfg.cache = cache;
    return cfg;
}

TEST_F(CacheTest, ConfigDigestsSeparateResultsButIgnoreThreads) {
    const circuit::ArithSignature sig = gen::multiplierSignature(8);
    error::ErrorAnalysisConfig a;
    error::ErrorAnalysisConfig b = a;
    b.threads = 7;  // result-neutral knob
    EXPECT_EQ(CC::digestOf(a, sig), CC::digestOf(b, sig));

    // For an exhaustive space the sampling knobs are canonicalized away...
    error::ErrorAnalysisConfig sampledKnobs = a;
    sampledKnobs.sampleCount = 1234;
    sampledKnobs.seed = 99;
    EXPECT_EQ(CC::digestOf(a, sig), CC::digestOf(sampledKnobs, sig));

    // ...but on a sampled space they address distinct results.
    error::ErrorAnalysisConfig sampled = a;
    sampled.exhaustiveLimit = 1;
    error::ErrorAnalysisConfig sampledOtherSeed = sampled;
    sampledOtherSeed.seed ^= 0xFFFF;
    EXPECT_NE(CC::digestOf(sampled, sig), CC::digestOf(a, sig));
    EXPECT_NE(CC::digestOf(sampled, sig), CC::digestOf(sampledOtherSeed, sig));

    synth::FpgaFlow::Options fa;
    synth::FpgaFlow::Options fb = fa;
    fb.activitySeed ^= 1;  // result-affecting since the activity-seed fix
    EXPECT_NE(CC::digestOf(fa), CC::digestOf(fb));
}

TEST_F(CacheTest, TypedRoundTripInMemory) {
    CC cache;
    const circuit::Netlist net = gen::truncatedMultiplier(8, 3);
    const circuit::ArithSignature sig = gen::multiplierSignature(8);
    const error::ErrorAnalysisConfig errCfg;
    const std::uint64_t hash = net.structuralHash();

    const CacheKey errorKey = CC::errorKey(hash, sig, errCfg);
    EXPECT_FALSE(cache.findError(errorKey).has_value());
    const error::ErrorReport report = error::analyzeError(net, sig, errCfg);
    cache.putError(errorKey, report);
    const auto hit = cache.findError(errorKey);
    ASSERT_TRUE(hit.has_value());
    expectReportsBitIdentical(report, *hit);

    const synth::AsicFlow asic;
    const CacheKey asicKey = CC::asicKey(hash, asic.options());
    const synth::AsicReport asicReport = asic.synthesize(net);
    cache.putAsic(asicKey, asicReport);
    ASSERT_TRUE(cache.findAsic(asicKey).has_value());
    EXPECT_EQ(cache.findAsic(asicKey)->areaUm2, asicReport.areaUm2);

    const synth::FpgaFlow fpga;
    const CacheKey fpgaKey = CC::fpgaKey(hash, fpga.options());
    const synth::FpgaReport fpgaReport = fpga.implement(net);
    cache.putFpga(fpgaKey, fpgaReport);
    ASSERT_TRUE(cache.findFpga(fpgaKey).has_value());
    EXPECT_EQ(cache.findFpga(fpgaKey)->latencyNs, fpgaReport.latencyNs);

    // A key addressed at one payload kind never serves another.
    EXPECT_THROW((void)cache.findAsic(errorKey), std::logic_error);

    const CacheStats stats = cache.stats();
    EXPECT_EQ(stats.stores, 3u);
    EXPECT_GE(stats.hits, 4u);
    EXPECT_GE(stats.misses, 1u);
}

TEST_F(CacheTest, DiskStorePersistsAcrossInstances) {
    const circuit::Netlist net = gen::loaAdder(8, 3);
    const circuit::ArithSignature sig = gen::adderSignature(8);
    const error::ErrorAnalysisConfig errCfg;
    const CacheKey key = CC::errorKey(net.structuralHash(), sig, errCfg);
    const error::ErrorReport report = error::analyzeError(net, sig, errCfg);
    {
        CC writer(diskOptions());
        writer.putError(key, report);
        writer.flush();
    }
    CC reader(diskOptions());  // fresh instance = new process in practice
    EXPECT_EQ(reader.size(), 1u);
    EXPECT_EQ(reader.stats().diskEntriesLoaded, 1u);
    const auto hit = reader.findError(key);
    ASSERT_TRUE(hit.has_value());
    expectReportsBitIdentical(report, *hit);
}

TEST_F(CacheTest, DestructorFlushesDirtyShards) {
    const CacheKey key = CC::blobKey(0x1234, "test-blob.v1");
    {
        CC writer(diskOptions());
        writer.putBytes(key, {1, 2, 3});
        // no explicit flush
    }
    CC reader(diskOptions());
    const auto hit = reader.findBytes(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST_F(CacheTest, CorruptShardsAreDroppedSilently) {
    std::vector<CacheKey> keys;
    {
        CC writer(diskOptions());
        for (std::uint64_t i = 0; i < 200; ++i) {
            keys.push_back(CC::blobKey(i * 0x9E3779B97F4A7C15ull, "test-blob.v1"));
            writer.putBytes(keys.back(), {static_cast<std::uint8_t>(i)});
        }
        writer.flush();
    }
    // Trash every shard file a different way: garbage bytes, truncation,
    // and flipped payload bits past the header.
    int shard = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
        const std::string path = entry.path().string();
        if (shard % 3 == 0) {
            std::ofstream(path, std::ios::binary | std::ios::trunc) << "not a shard";
        } else if (shard % 3 == 1) {
            std::filesystem::resize_file(path, std::filesystem::file_size(path) / 2);
        } else {
            std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
            f.seekp(24);  // first entry's key bytes
            f.put('\xFF');
        }
        ++shard;
    }
    ASSERT_GT(shard, 0);

    CC reader(diskOptions());
    EXPECT_LT(reader.size(), keys.size());  // something was dropped...
    EXPECT_GT(reader.stats().corruptEntriesDropped, 0u);
    std::size_t misses = 0;
    for (const CacheKey& key : keys)
        if (!reader.findBytes(key).has_value()) ++misses;
    EXPECT_GT(misses, 0u);  // ...and surviving entries still resolve safely

    // The consumer path just recomputes: re-put the missing entries and a
    // flush repairs the store (a bit-flipped key may survive as a junk
    // entry under its mangled address, which is harmless — so assert that
    // every real key resolves, not an exact entry count).
    for (const CacheKey& key : keys)
        if (!reader.findBytes(key).has_value())
            reader.putBytes(key, {static_cast<std::uint8_t>(key.structuralHash)});
    reader.flush();
    CC repaired(diskOptions());
    for (const CacheKey& key : keys) EXPECT_TRUE(repaired.findBytes(key).has_value());
}

TEST_F(CacheTest, SingleBitFlipInPayloadIsSilentlyRecomputed) {
    // The v3 per-entry CRC-32 must catch a single flipped payload bit in an
    // otherwise perfectly well-formed shard — the case the old framing
    // checks (magic, version, sizes) sail straight past.
    const CacheKey key = CC::blobKey(0xB17F11Bull, "test-blob.v1");
    const std::vector<std::uint8_t> payload = {10, 20, 30, 40, 50, 60, 70, 80};
    {
        CC writer(diskOptions());
        writer.putBytes(key, payload);
        writer.flush();
    }
    // Shard layout: 16-byte header (magic u32, version u32, count u64),
    // then per entry: key 28B, payloadSize u32, crc u32, payload — so the
    // sole entry's payload starts at byte 52.
    std::string shardFile;
    for (const auto& entry : std::filesystem::directory_iterator(dir_))
        shardFile = entry.path().string();
    ASSERT_FALSE(shardFile.empty());
    {
        std::fstream f(shardFile, std::ios::binary | std::ios::in | std::ios::out);
        f.seekg(52);
        const int byte = f.get();
        ASSERT_EQ(byte, 10);  // layout check: we are really on the payload
        f.seekp(52);
        f.put(static_cast<char>(byte ^ 0x04));
    }
    CC reader(diskOptions());
    EXPECT_FALSE(reader.findBytes(key).has_value());  // never served corrupt
    EXPECT_EQ(reader.stats().corruptEntriesDropped, 1u);
    // The consumer path recomputes and the flush self-heals the store.
    reader.putBytes(key, payload);
    reader.flush();
    CC repaired(diskOptions());
    const auto hit = repaired.findBytes(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, payload);
}

TEST_F(CacheTest, SingleBitFlipInKeyIsDroppedNotMisfiled) {
    // Pre-v3 a flipped key byte passed the payload checksum and survived
    // as junk under the mangled address; the v3 CRC covers the key bytes,
    // so the entry is dropped outright.
    const CacheKey key = CC::blobKey(0x5EEDF00Dull, "test-blob.v1");
    {
        CC writer(diskOptions());
        writer.putBytes(key, {1, 2, 3});
        writer.flush();
    }
    std::string shardFile;
    for (const auto& entry : std::filesystem::directory_iterator(dir_))
        shardFile = entry.path().string();
    ASSERT_FALSE(shardFile.empty());
    {
        std::fstream f(shardFile, std::ios::binary | std::ios::in | std::ios::out);
        f.seekg(16);  // first byte of the entry's key
        const int byte = f.get();
        f.seekp(16);
        f.put(static_cast<char>(byte ^ 0x01));
    }
    CC reader(diskOptions());
    EXPECT_EQ(reader.size(), 0u);
    EXPECT_EQ(reader.stats().corruptEntriesDropped, 1u);
    EXPECT_FALSE(reader.findBytes(key).has_value());
}

TEST_F(CacheTest, CrashConsistencyTortureNeverServesCorruptEntries) {
    // Crash-consistency torture: many rounds of arbitrary-offset shard
    // damage (truncation to a random length, single-bit flips anywhere —
    // header, keys, framing fields, checksums, payloads) between cache
    // instances.  The contract under fire: a consumer driving the cached
    // helper always gets the correct report — served intact or silently
    // recomputed — and never a deserialized-corrupt one.
    std::vector<circuit::Netlist> nets = {gen::truncatedMultiplier(6, 1),
                                          gen::truncatedMultiplier(6, 2),
                                          gen::truncatedMultiplier(6, 3),
                                          gen::truncatedMultiplier(6, 4),
                                          gen::drumMultiplier(6, 3),
                                          gen::wallaceMultiplier(6)};
    const circuit::ArithSignature sig = gen::multiplierSignature(6);
    const error::ErrorAnalysisConfig errCfg;
    std::vector<error::ErrorReport> golden;
    for (const circuit::Netlist& net : nets)
        golden.push_back(error::analyzeError(net, sig, errCfg));

    {
        CC writer(diskOptions());
        for (std::size_t i = 0; i < nets.size(); ++i)
            analyzeErrorCached(&writer, nets[i].structuralHash(), nets[i], sig, errCfg);
        writer.flush();
    }

    util::Rng rng(0xC0FFEE);
    std::uint64_t dropped = 0;
    for (int round = 0; round < 12; ++round) {
        for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
            const std::uintmax_t size = std::filesystem::file_size(entry.path());
            if (size == 0) continue;
            if (rng.bernoulli(0.3)) {
                std::filesystem::resize_file(entry.path(),
                                             rng.index(static_cast<std::size_t>(size)));
            } else {
                std::fstream f(entry.path(),
                               std::ios::binary | std::ios::in | std::ios::out);
                const auto off =
                    static_cast<std::streamoff>(rng.index(static_cast<std::size_t>(size)));
                f.seekg(off);
                const int byte = f.get();
                f.seekp(off);
                f.put(static_cast<char>(byte ^ (1 << rng.index(8))));
            }
        }
        CC cache(diskOptions());
        for (std::size_t i = 0; i < nets.size(); ++i) {
            const error::ErrorReport r =
                analyzeErrorCached(&cache, nets[i].structuralHash(), nets[i], sig, errCfg);
            expectReportsBitIdentical(golden[i], r);
        }
        dropped += cache.stats().corruptEntriesDropped;
        cache.flush();  // self-heal: the next round starts from a repaired store
    }
    EXPECT_GT(dropped, 0u);  // the damage actually bit, repeatedly

    // After the final repair flush a fresh instance serves every entry.
    CC reader(diskOptions());
    for (std::size_t i = 0; i < nets.size(); ++i) {
        const auto hit = reader.findError(CC::errorKey(nets[i].structuralHash(), sig, errCfg));
        ASSERT_TRUE(hit.has_value());
        expectReportsBitIdentical(golden[i], *hit);
    }
}

TEST_F(CacheTest, StaleSchemaVersionIsIgnored) {
    const CacheKey key = CC::blobKey(0xABCD, "test-blob.v1");
    {
        CC writer(diskOptions());
        writer.putBytes(key, {9, 9, 9});
        writer.flush();
    }
    // Bump the on-disk version field of every shard: a schema change must
    // invalidate the whole store, not misparse it.
    for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
        std::fstream f(entry.path(), std::ios::binary | std::ios::in | std::ios::out);
        f.seekp(4);
        const std::uint32_t bogus = CC::kSchemaVersion + 1;
        f.write(reinterpret_cast<const char*>(&bogus), 4);
    }
    CC reader(diskOptions());
    EXPECT_EQ(reader.size(), 0u);
    EXPECT_FALSE(reader.findBytes(key).has_value());
}

TEST_F(CacheTest, EvictionBoundsResidentEntries) {
    CC::Options options;  // in-memory, tightly capped
    options.maxEntries = 64;
    CC cache(options);
    for (std::uint64_t i = 0; i < 4096; ++i)
        cache.putBytes(CC::blobKey(i * 0x9E3779B97F4A7C15ull, "test-blob.v1"), {1});
    EXPECT_LE(cache.size(), 128u);  // per-stripe FIFO keeps it near the cap
    EXPECT_GT(cache.stats().evictions, 0u);
}

TEST_F(CacheTest, NetlistSerializationRoundTrips) {
    for (const circuit::Netlist& net :
         {gen::carrySelectAdder(8, 2), gen::wallaceMultiplier(6), gen::drumMultiplier(8, 3)}) {
        util::ByteWriter out;
        net.serialize(out);
        util::ByteReader in(out.bytes());
        const std::optional<circuit::Netlist> back = circuit::Netlist::deserialize(in);
        ASSERT_TRUE(back.has_value()) << net.name();
        EXPECT_EQ(back->name(), net.name());
        EXPECT_EQ(back->structuralHash(), net.structuralHash());
        EXPECT_EQ(back->inputCount(), net.inputCount());
        EXPECT_EQ(back->outputCount(), net.outputCount());
        back->validate();

        util::ByteReader truncated(
            std::span<const std::uint8_t>(out.bytes().data(), out.bytes().size() / 2));
        EXPECT_FALSE(circuit::Netlist::deserialize(truncated).has_value());
    }
}

TEST_F(CacheTest, WarmLibraryBuildsAreBitIdenticalAndFast) {
    // Cold build populates the on-disk store...
    const auto t0 = std::chrono::steady_clock::now();
    gen::AcLibrary cold;
    {
        CC cache(diskOptions());
        cold = gen::buildLibrary(structuralConfig(&cache, 0));
        cache.flush();
    }
    const double coldSeconds = seconds(t0);

    // ...a fresh instance (= another process) replays it warm, at both a
    // forced-serial and the pooled thread count.
    CC warmCache(diskOptions());
    const auto t1 = std::chrono::steady_clock::now();
    const gen::AcLibrary warm = gen::buildLibrary(structuralConfig(&warmCache, 0));
    double warmSeconds = seconds(t1);
    expectLibrariesBitIdentical(cold, warm);
    EXPECT_GT(warmCache.stats().hits, 0u);

    const auto t2 = std::chrono::steady_clock::now();
    const gen::AcLibrary warmSerial = gen::buildLibrary(structuralConfig(&warmCache, 1));
    warmSeconds = std::min(warmSeconds, seconds(t2));  // best-of-2 vs scheduler noise
    expectLibrariesBitIdentical(cold, warmSerial);

    // And without any cache the library is the same bits (null injection
    // point == today's behavior).
    const gen::AcLibrary uncached = gen::buildLibrary(structuralConfig(nullptr, 0));
    expectLibrariesBitIdentical(cold, uncached);

    // Headline: warm characterization is >= 5x faster than cold (measured
    // ~10-20x on an idle host).  Wall-clock ratios are noisy when ctest
    // runs oversubscribed, so the default suite asserts a floor a broken
    // cache cannot reach (a non-functioning cache measures ~1x) and the
    // full 5x bar is enforced under AXF_STRICT_PERF=1 (idle-machine runs).
    const double ratio = coldSeconds / warmSeconds;
    std::cout << "[ cache    ] cold " << coldSeconds << " s / warm " << warmSeconds
              << " s = " << ratio << "x\n";
    EXPECT_GT(ratio, 2.0);
    if (const char* strict = std::getenv("AXF_STRICT_PERF"); strict && strict[0] == '1')
        EXPECT_GT(ratio, 5.0);
}

TEST_F(CacheTest, CachedFlowHelpersMatchDirectComputation) {
    CC cache;
    const circuit::Netlist net = gen::etaAdder(8, 4);
    const synth::FpgaFlow fpga;
    const synth::AsicFlow asic;
    const synth::FpgaReport direct = fpga.implement(net);
    const synth::FpgaReport viaCacheMiss = implementCached(&cache, fpga, net);
    const synth::FpgaReport viaCacheHit = implementCached(&cache, fpga, net);
    for (const synth::FpgaReport& r : {viaCacheMiss, viaCacheHit}) {
        EXPECT_EQ(direct.lutCount, r.lutCount);
        EXPECT_EQ(direct.latencyNs, r.latencyNs);
        EXPECT_EQ(direct.powerMw, r.powerMw);
        EXPECT_EQ(direct.synthSeconds, r.synthSeconds);
    }
    const synth::AsicReport asicDirect = asic.synthesize(net);
    const synth::AsicReport asicHit =
        (synthesizeCached(&cache, asic, net), synthesizeCached(&cache, asic, net));
    EXPECT_EQ(asicDirect.areaUm2, asicHit.areaUm2);
    EXPECT_EQ(asicDirect.delayNs, asicHit.delayNs);
    EXPECT_EQ(cache.stats().hits, 2u);
}

}  // namespace
}  // namespace axf::cache
