#include <gtest/gtest.h>

#include "src/error/error_metrics.hpp"
#include "src/gen/adders.hpp"
#include "src/gen/multipliers.hpp"

namespace axf::error {
namespace {

using circuit::ArithSignature;
using circuit::GateKind;
using circuit::Netlist;
using gen::adderSignature;
using gen::multiplierSignature;

/// 2-bit "adder" that always outputs zero — every metric is hand-checkable.
Netlist zeroAdder2() {
    Netlist net("zero2");
    for (int i = 0; i < 4; ++i) net.addInput();
    const circuit::NodeId z = net.addConst(false);
    for (int i = 0; i < 3; ++i) net.markOutput(z);
    return net;
}

TEST(ErrorMetrics, ExactCircuitReportsZero) {
    const ErrorReport r = analyzeError(gen::rippleCarryAdder(4), adderSignature(4));
    EXPECT_TRUE(r.isExact());
    EXPECT_DOUBLE_EQ(r.med, 0.0);
    EXPECT_DOUBLE_EQ(r.worstCaseError, 0.0);
    EXPECT_DOUBLE_EQ(r.errorProbability, 0.0);
    EXPECT_TRUE(r.exhaustive);
    EXPECT_EQ(r.vectorsEvaluated, 256u);
}

TEST(ErrorMetrics, ZeroAdderHandComputed) {
    // Over all 16 operand pairs of a 2-bit adder, sum of (a+b) = 48;
    // mean |err| = 3; max output 6; WCE = 6; only (0,0) is error-free.
    const ErrorReport r = analyzeError(zeroAdder2(), adderSignature(2));
    EXPECT_DOUBLE_EQ(r.meanAbsoluteError, 3.0);
    EXPECT_DOUBLE_EQ(r.med, 0.5);
    EXPECT_DOUBLE_EQ(r.worstCaseError, 6.0);
    EXPECT_DOUBLE_EQ(r.errorProbability, 15.0 / 16.0);
    // Sum of (a+b)^2 over all pairs: value v occurs (4-|v-3|)... times:
    // 0:1, 1:2, 2:3, 3:4, 4:3, 5:2, 6:1 -> sum v^2*count = 184.
    EXPECT_DOUBLE_EQ(r.meanSquaredError, 184.0 / 16.0);
}

TEST(ErrorMetrics, MedNormalizationUsesMaxOutput) {
    const ArithSignature addSig = adderSignature(8);
    EXPECT_EQ(addSig.maxOutput(), 510u);
    const ArithSignature mulSig = multiplierSignature(8);
    EXPECT_EQ(mulSig.maxOutput(), 255u * 255u);
    const ErrorReport r = analyzeError(gen::truncatedMultiplier(8, 3), mulSig);
    EXPECT_NEAR(r.med, r.meanAbsoluteError / 65025.0, 1e-12);
}

TEST(ErrorMetrics, InterfaceMismatchThrows) {
    const Netlist net = gen::rippleCarryAdder(4);
    EXPECT_THROW(analyzeError(net, adderSignature(5)), std::invalid_argument);
    EXPECT_THROW(analyzeError(net, multiplierSignature(4)), std::invalid_argument);
}

TEST(ErrorMetrics, SampledPathAgreesWithExhaustive) {
    // Force the sampled path on an 8-bit operator and compare to the
    // exhaustive ground truth: MED must agree within sampling noise.
    const Netlist net = gen::loaAdder(8, 4);
    const ErrorReport exact = analyzeError(net, adderSignature(8));
    ASSERT_TRUE(exact.exhaustive);
    ErrorAnalysisConfig sampled;
    sampled.exhaustiveLimit = 1;  // never exhaustive
    sampled.sampleCount = 1u << 15;
    const ErrorReport approx = analyzeError(net, adderSignature(8), sampled);
    EXPECT_FALSE(approx.exhaustive);
    EXPECT_EQ(approx.vectorsEvaluated, sampled.sampleCount);
    EXPECT_NEAR(approx.med, exact.med, 0.15 * exact.med + 1e-6);
    EXPECT_NEAR(approx.errorProbability, exact.errorProbability, 0.05);
}

TEST(ErrorMetrics, SampledDeterministicPerSeed) {
    const Netlist net = gen::etaAdder(8, 4);
    ErrorAnalysisConfig cfg;
    cfg.exhaustiveLimit = 1;
    const ErrorReport a = analyzeError(net, adderSignature(8), cfg);
    const ErrorReport b = analyzeError(net, adderSignature(8), cfg);
    EXPECT_DOUBLE_EQ(a.med, b.med);
    cfg.seed ^= 0xFFFF;
    const ErrorReport c = analyzeError(net, adderSignature(8), cfg);
    EXPECT_NE(a.med, c.med);  // different sample, different estimate
}

TEST(ErrorMetrics, SampledReportsAreNeverProvablyExact) {
    // A sampled report with zero observed mismatches must not claim
    // exactness: a mismatch may hide in the unsampled vectors.  This used
    // to mislabel approximate circuits as exact during library dedup.
    const Netlist net = gen::rippleCarryAdder(8);
    ErrorAnalysisConfig sampled;
    sampled.exhaustiveLimit = 1;  // force the sampled path
    sampled.sampleCount = 1u << 10;
    const ErrorReport r = analyzeError(net, adderSignature(8), sampled);
    ASSERT_FALSE(r.exhaustive);
    ASSERT_DOUBLE_EQ(r.errorProbability, 0.0);  // truly exact circuit
    EXPECT_FALSE(r.isExact());
    EXPECT_TRUE(r.observedExact());

    const ErrorReport exhaustive = analyzeError(net, adderSignature(8));
    ASSERT_TRUE(exhaustive.exhaustive);
    EXPECT_TRUE(exhaustive.isExact());
    EXPECT_TRUE(exhaustive.observedExact());
}

TEST(ErrorMetrics, ReportSerializationRoundTripsBitExact) {
    const ErrorReport r = analyzeError(gen::truncatedMultiplier(8, 3), multiplierSignature(8));
    util::ByteWriter out;
    r.serialize(out);
    util::ByteReader in(out.bytes());
    ErrorReport back;
    ASSERT_TRUE(ErrorReport::deserialize(in, back));
    EXPECT_EQ(r.med, back.med);
    EXPECT_EQ(r.meanAbsoluteError, back.meanAbsoluteError);
    EXPECT_EQ(r.worstCaseError, back.worstCaseError);
    EXPECT_EQ(r.meanRelativeError, back.meanRelativeError);
    EXPECT_EQ(r.errorProbability, back.errorProbability);
    EXPECT_EQ(r.meanSquaredError, back.meanSquaredError);
    EXPECT_EQ(r.vectorsEvaluated, back.vectorsEvaluated);
    EXPECT_EQ(r.exhaustive, back.exhaustive);

    // Truncated input is rejected, not misread.
    util::ByteReader truncated(
        std::span<const std::uint8_t>(out.bytes().data(), out.bytes().size() - 1));
    ErrorReport bad;
    EXPECT_FALSE(ErrorReport::deserialize(truncated, bad));
}

TEST(ErrorMetrics, WorstCaseDominatesMean) {
    for (int k : {2, 4, 6}) {
        const ErrorReport r = analyzeError(gen::truncatedAdder(8, k), adderSignature(8));
        EXPECT_GE(r.worstCaseError, r.meanAbsoluteError);
        EXPECT_GE(r.meanSquaredError, r.meanAbsoluteError * r.meanAbsoluteError);
    }
}

TEST(ErrorMetrics, SummaryMentionsKeyNumbers) {
    const ErrorReport r = analyzeError(zeroAdder2(), adderSignature(2));
    const std::string s = r.summary();
    EXPECT_NE(s.find("MED"), std::string::npos);
    EXPECT_NE(s.find("WCE"), std::string::npos);
    EXPECT_NE(s.find("exhaustive"), std::string::npos);
}

/// Field-by-field bit-exact comparison (EXPECT_EQ on doubles is exact).
void expectBitIdentical(const ErrorReport& a, const ErrorReport& b) {
    EXPECT_EQ(a.med, b.med);
    EXPECT_EQ(a.meanAbsoluteError, b.meanAbsoluteError);
    EXPECT_EQ(a.worstCaseError, b.worstCaseError);
    EXPECT_EQ(a.meanRelativeError, b.meanRelativeError);
    EXPECT_EQ(a.errorProbability, b.errorProbability);
    EXPECT_EQ(a.meanSquaredError, b.meanSquaredError);
    EXPECT_EQ(a.vectorsEvaluated, b.vectorsEvaluated);
    EXPECT_EQ(a.exhaustive, b.exhaustive);
}

TEST(ErrorMetrics, ParallelMatchesSerialBitIdentical) {
    // Chunked accumulation merges partial results in chunk order, so the
    // report must not depend on the thread count — exhaustive and sampled,
    // adders and multipliers.
    const std::vector<std::pair<Netlist, ArithSignature>> cases = [] {
        std::vector<std::pair<Netlist, ArithSignature>> cs;
        cs.emplace_back(gen::truncatedMultiplier(8, 4), multiplierSignature(8));
        cs.emplace_back(gen::loaAdder(8, 3), adderSignature(8));
        cs.emplace_back(gen::wallaceMultiplier(8), multiplierSignature(8));
        cs.emplace_back(gen::etaAdder(8, 4), adderSignature(8));
        return cs;
    }();
    for (const auto& [net, sig] : cases) {
        for (const bool sampled : {false, true}) {
            ErrorAnalysisConfig serial;
            if (sampled) {
                serial.exhaustiveLimit = 1;  // force the sampled path
                serial.sampleCount = 1u << 15;
            }
            serial.threads = 1;
            ErrorAnalysisConfig parallel = serial;
            parallel.threads = 0;  // process-wide pool
            ErrorAnalysisConfig capped = serial;
            capped.threads = 2;  // bounded fan-out
            const ErrorReport ref = analyzeError(net, sig, serial);
            expectBitIdentical(analyzeError(net, sig, parallel), ref);
            expectBitIdentical(analyzeError(net, sig, capped), ref);
        }
    }
}

TEST(ErrorMetrics, EngineAgreesWithBaselineInterpreter) {
    // The compiled multi-word engine and the retained one-word reference
    // must agree exactly on the integer-derived metrics and to rounding on
    // the accumulated means (the engine merges per-chunk partial sums).
    for (const auto& [net, sig] :
         {std::pair{gen::truncatedMultiplier(8, 4), multiplierSignature(8)},
          std::pair{gen::gearAdder(8, 2, 2), adderSignature(8)}}) {
        const ErrorReport engine = analyzeError(net, sig);
        const ErrorReport baseline = analyzeErrorBaseline(net, sig);
        EXPECT_EQ(engine.worstCaseError, baseline.worstCaseError);
        EXPECT_EQ(engine.errorProbability, baseline.errorProbability);
        EXPECT_EQ(engine.vectorsEvaluated, baseline.vectorsEvaluated);
        EXPECT_NEAR(engine.med, baseline.med, 1e-15);
        EXPECT_NEAR(engine.meanAbsoluteError, baseline.meanAbsoluteError,
                    1e-9 * (1.0 + baseline.meanAbsoluteError));
        EXPECT_NEAR(engine.meanSquaredError, baseline.meanSquaredError,
                    1e-9 * (1.0 + baseline.meanSquaredError));
    }
}

TEST(ErrorMetrics, PartialLastBlockHandled) {
    // 3+3-bit space = 64 vectors exactly; also try 3+2 = 32 (sub-block).
    Netlist net("odd");
    for (int i = 0; i < 5; ++i) net.addInput();
    const circuit::NodeId z = net.addConst(false);
    for (int i = 0; i < 4; ++i) net.markOutput(z);
    const ArithSignature sig{circuit::ArithOp::Adder, 3, 2};
    // Interface: 3+2 inputs, adder output = widthA+1 = 4.
    const ErrorReport r = analyzeError(net, sig);
    EXPECT_EQ(r.vectorsEvaluated, 32u);
    EXPECT_TRUE(r.exhaustive);
}

}  // namespace
}  // namespace axf::error
