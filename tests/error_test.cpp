#include <gtest/gtest.h>

#include "src/error/error_metrics.hpp"
#include "src/gen/adders.hpp"
#include "src/gen/multipliers.hpp"

namespace axf::error {
namespace {

using circuit::ArithSignature;
using circuit::GateKind;
using circuit::Netlist;
using gen::adderSignature;
using gen::multiplierSignature;

/// 2-bit "adder" that always outputs zero — every metric is hand-checkable.
Netlist zeroAdder2() {
    Netlist net("zero2");
    for (int i = 0; i < 4; ++i) net.addInput();
    const circuit::NodeId z = net.addConst(false);
    for (int i = 0; i < 3; ++i) net.markOutput(z);
    return net;
}

TEST(ErrorMetrics, ExactCircuitReportsZero) {
    const ErrorReport r = analyzeError(gen::rippleCarryAdder(4), adderSignature(4));
    EXPECT_TRUE(r.isExact());
    EXPECT_DOUBLE_EQ(r.med, 0.0);
    EXPECT_DOUBLE_EQ(r.worstCaseError, 0.0);
    EXPECT_DOUBLE_EQ(r.errorProbability, 0.0);
    EXPECT_TRUE(r.exhaustive);
    EXPECT_EQ(r.vectorsEvaluated, 256u);
}

TEST(ErrorMetrics, ZeroAdderHandComputed) {
    // Over all 16 operand pairs of a 2-bit adder, sum of (a+b) = 48;
    // mean |err| = 3; max output 6; WCE = 6; only (0,0) is error-free.
    const ErrorReport r = analyzeError(zeroAdder2(), adderSignature(2));
    EXPECT_DOUBLE_EQ(r.meanAbsoluteError, 3.0);
    EXPECT_DOUBLE_EQ(r.med, 0.5);
    EXPECT_DOUBLE_EQ(r.worstCaseError, 6.0);
    EXPECT_DOUBLE_EQ(r.errorProbability, 15.0 / 16.0);
    // Sum of (a+b)^2 over all pairs: value v occurs (4-|v-3|)... times:
    // 0:1, 1:2, 2:3, 3:4, 4:3, 5:2, 6:1 -> sum v^2*count = 184.
    EXPECT_DOUBLE_EQ(r.meanSquaredError, 184.0 / 16.0);
}

TEST(ErrorMetrics, MedNormalizationUsesMaxOutput) {
    const ArithSignature addSig = adderSignature(8);
    EXPECT_EQ(addSig.maxOutput(), 510u);
    const ArithSignature mulSig = multiplierSignature(8);
    EXPECT_EQ(mulSig.maxOutput(), 255u * 255u);
    const ErrorReport r = analyzeError(gen::truncatedMultiplier(8, 3), mulSig);
    EXPECT_NEAR(r.med, r.meanAbsoluteError / 65025.0, 1e-12);
}

TEST(ErrorMetrics, InterfaceMismatchThrows) {
    const Netlist net = gen::rippleCarryAdder(4);
    EXPECT_THROW(analyzeError(net, adderSignature(5)), std::invalid_argument);
    EXPECT_THROW(analyzeError(net, multiplierSignature(4)), std::invalid_argument);
}

TEST(ErrorMetrics, SampledPathAgreesWithExhaustive) {
    // Force the sampled path on an 8-bit operator and compare to the
    // exhaustive ground truth: MED must agree within sampling noise.
    const Netlist net = gen::loaAdder(8, 4);
    const ErrorReport exact = analyzeError(net, adderSignature(8));
    ASSERT_TRUE(exact.exhaustive);
    ErrorAnalysisConfig sampled;
    sampled.exhaustiveLimit = 1;  // never exhaustive
    sampled.sampleCount = 1u << 15;
    const ErrorReport approx = analyzeError(net, adderSignature(8), sampled);
    EXPECT_FALSE(approx.exhaustive);
    EXPECT_EQ(approx.vectorsEvaluated, sampled.sampleCount);
    EXPECT_NEAR(approx.med, exact.med, 0.15 * exact.med + 1e-6);
    EXPECT_NEAR(approx.errorProbability, exact.errorProbability, 0.05);
}

TEST(ErrorMetrics, SampledDeterministicPerSeed) {
    const Netlist net = gen::etaAdder(8, 4);
    ErrorAnalysisConfig cfg;
    cfg.exhaustiveLimit = 1;
    const ErrorReport a = analyzeError(net, adderSignature(8), cfg);
    const ErrorReport b = analyzeError(net, adderSignature(8), cfg);
    EXPECT_DOUBLE_EQ(a.med, b.med);
    cfg.seed ^= 0xFFFF;
    const ErrorReport c = analyzeError(net, adderSignature(8), cfg);
    EXPECT_NE(a.med, c.med);  // different sample, different estimate
}

TEST(ErrorMetrics, WorstCaseDominatesMean) {
    for (int k : {2, 4, 6}) {
        const ErrorReport r = analyzeError(gen::truncatedAdder(8, k), adderSignature(8));
        EXPECT_GE(r.worstCaseError, r.meanAbsoluteError);
        EXPECT_GE(r.meanSquaredError, r.meanAbsoluteError * r.meanAbsoluteError);
    }
}

TEST(ErrorMetrics, SummaryMentionsKeyNumbers) {
    const ErrorReport r = analyzeError(zeroAdder2(), adderSignature(2));
    const std::string s = r.summary();
    EXPECT_NE(s.find("MED"), std::string::npos);
    EXPECT_NE(s.find("WCE"), std::string::npos);
    EXPECT_NE(s.find("exhaustive"), std::string::npos);
}

TEST(ErrorMetrics, PartialLastBlockHandled) {
    // 3+3-bit space = 64 vectors exactly; also try 3+2 = 32 (sub-block).
    Netlist net("odd");
    for (int i = 0; i < 5; ++i) net.addInput();
    const circuit::NodeId z = net.addConst(false);
    for (int i = 0; i < 4; ++i) net.markOutput(z);
    const ArithSignature sig{circuit::ArithOp::Adder, 3, 2};
    // Interface: 3+2 inputs, adder output = widthA+1 = 4.
    const ErrorReport r = analyzeError(net, sig);
    EXPECT_EQ(r.vectorsEvaluated, 32u);
    EXPECT_TRUE(r.exhaustive);
}

}  // namespace
}  // namespace axf::error
