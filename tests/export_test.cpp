#include <gtest/gtest.h>

#include <sstream>

#include "src/circuit/export.hpp"
#include "src/gen/adders.hpp"

namespace axf::circuit {
namespace {

TEST(Export, VerilogContainsModuleInterface) {
    const Netlist net = gen::rippleCarryAdder(4);
    std::ostringstream os;
    writeVerilog(os, net, "rca4");
    const std::string v = os.str();
    EXPECT_NE(v.find("module rca4"), std::string::npos);
    EXPECT_NE(v.find("input  wire in0"), std::string::npos);
    EXPECT_NE(v.find("input  wire in7"), std::string::npos);
    EXPECT_NE(v.find("output wire out4"), std::string::npos);
    EXPECT_NE(v.find("endmodule"), std::string::npos);
    // Each node should appear as a wire definition.
    EXPECT_NE(v.find("wire n0 = in0;"), std::string::npos);
}

TEST(Export, VerilogEmitsAllGateOperators) {
    Netlist net;
    const NodeId a = net.addInput();
    const NodeId b = net.addInput();
    const NodeId s = net.addInput();
    net.markOutput(net.addGate(GateKind::Maj, a, b, s));
    net.markOutput(net.addGate(GateKind::Mux, a, b, s));
    net.markOutput(net.addGate(GateKind::Xnor, a, b));
    std::ostringstream os;
    writeVerilog(os, net, "mixed");
    const std::string v = os.str();
    EXPECT_NE(v.find("?"), std::string::npos);   // mux
    EXPECT_NE(v.find("~("), std::string::npos);  // xnor
    EXPECT_NE(v.find("&"), std::string::npos);   // maj
}

TEST(Export, DotContainsNodesAndEdges) {
    const Netlist net = gen::loaAdder(3, 1);
    std::ostringstream os;
    writeDot(os, net);
    const std::string d = os.str();
    EXPECT_NE(d.find("digraph"), std::string::npos);
    EXPECT_NE(d.find("->"), std::string::npos);
    EXPECT_NE(d.find("out0"), std::string::npos);
    EXPECT_EQ(d.back(), '\n');
}

}  // namespace
}  // namespace axf::circuit
