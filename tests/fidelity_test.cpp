#include <gtest/gtest.h>

#include "src/core/fidelity.hpp"
#include "src/util/rng.hpp"

namespace axf::core {
namespace {

TEST(Fidelity, PerfectEstimatorIsOne) {
    const std::vector<double> mes = {1.0, 3.0, 2.0, 9.0};
    EXPECT_DOUBLE_EQ(fidelity(mes, mes), 1.0);
    // Any strictly monotone transform also has fidelity 1 (rank metric).
    const std::vector<double> scaled = {10.0, 30.0, 20.0, 90.0};
    EXPECT_DOUBLE_EQ(fidelity(mes, scaled), 1.0);
    const std::vector<double> squared = {1.0, 9.0, 4.0, 81.0};
    EXPECT_DOUBLE_EQ(fidelity(mes, squared), 1.0);
}

TEST(Fidelity, ReversedEstimatorOnlyDiagonalAgrees) {
    const std::vector<double> mes = {1.0, 2.0, 3.0};
    const std::vector<double> est = {3.0, 2.0, 1.0};
    // 9 ordered pairs; only the 3 diagonal pairs agree.
    EXPECT_DOUBLE_EQ(fidelity(mes, est), 3.0 / 9.0);
    EXPECT_DOUBLE_EQ(fidelityOffDiagonal(mes, est), 0.0);
}

TEST(Fidelity, ConstantEstimatorScoresTieStructure) {
    const std::vector<double> mes = {1.0, 2.0, 3.0};
    const std::vector<double> est = {5.0, 5.0, 5.0};
    // Estimated relation is '=' everywhere; measured '=' only on diagonal.
    EXPECT_DOUBLE_EQ(fidelity(mes, est), 3.0 / 9.0);
}

TEST(Fidelity, HandComputedPartialAgreement) {
    // mes: a<b, est: a<b agree; the single swapped pair halves off-diag.
    const std::vector<double> mes = {1.0, 2.0, 3.0};
    const std::vector<double> est = {1.0, 3.0, 2.0};
    // Pairs (ordered, incl. diagonal): 9. Agreeing: diagonal (3) +
    // (0,1),(1,0),(0,2),(2,0) = 4 -> 7/9.
    EXPECT_DOUBLE_EQ(fidelity(mes, est), 7.0 / 9.0);
}

TEST(Fidelity, SymmetricInPairOrder) {
    util::Rng rng(1);
    std::vector<double> mes(20), est(20);
    for (std::size_t i = 0; i < 20; ++i) {
        mes[i] = rng.uniformReal(0, 1);
        est[i] = rng.uniformReal(0, 1);
    }
    // Swapping measured and estimated must not change pairwise agreement.
    EXPECT_DOUBLE_EQ(fidelity(mes, est), fidelity(est, mes));
}

TEST(Fidelity, SizeMismatchThrows) {
    EXPECT_THROW(fidelity(std::vector<double>{1.0}, std::vector<double>{1.0, 2.0}),
                 std::invalid_argument);
}

TEST(Fidelity, EmptyIsZero) {
    EXPECT_DOUBLE_EQ(fidelity(std::vector<double>{}, std::vector<double>{}), 0.0);
}

TEST(Fidelity, NoisierEstimatesScoreLower) {
    util::Rng rng(2);
    std::vector<double> mes(50), mild(50), wild(50);
    for (std::size_t i = 0; i < 50; ++i) {
        mes[i] = static_cast<double>(i);
        mild[i] = mes[i] + rng.gaussian(0.0, 1.0);
        wild[i] = mes[i] + rng.gaussian(0.0, 25.0);
    }
    EXPECT_GT(fidelity(mes, mild), fidelity(mes, wild));
    EXPECT_GT(fidelity(mes, mild), 0.9);
}

TEST(Fidelity, OffDiagonalIsStricter) {
    util::Rng rng(3);
    std::vector<double> mes(30), est(30);
    for (std::size_t i = 0; i < 30; ++i) {
        mes[i] = rng.uniformReal(0, 1);
        est[i] = mes[i] + rng.gaussian(0.0, 0.2);
    }
    EXPECT_GE(fidelity(mes, est), fidelityOffDiagonal(mes, est));
}

}  // namespace
}  // namespace axf::core
