#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/autoax/accelerator.hpp"
#include "src/autoax/dse.hpp"
#include "src/error/error_metrics.hpp"
#include "src/gen/adders.hpp"
#include "src/gen/multipliers.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/synth/fpga.hpp"
#include "src/util/thread_pool.hpp"
#include "src/util/watchdog.hpp"

namespace axf::obs {
namespace {

/// Every test in this file records through the global switch; force it on
/// up front (the suite may run under AXF_METRICS=0 in an overhead-guard
/// job, where recording semantics still must hold once re-enabled).
class ObsTestEnvironment : public ::testing::Environment {
public:
    void SetUp() override { setMetricsEnabled(true); }
};
const auto* const kEnv =
    ::testing::AddGlobalTestEnvironment(new ObsTestEnvironment);

std::string tempPath(const char* name) {
    return ::testing::TempDir() + "/axf_obs_" + name;
}

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

// ---------------------------------------------------------------------------
// Minimal JSON well-formedness checker: enough of RFC 8259 to reject any
// malformed document our writers could plausibly emit (unbalanced
// structure, bad escapes, trailing garbage).  Value-level only; no DOM.

struct JsonCursor {
    const std::string& s;
    std::size_t i = 0;

    void ws() {
        while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    }
    bool eat(char c) {
        ws();
        if (i < s.size() && s[i] == c) {
            ++i;
            return true;
        }
        return false;
    }
    bool string() {
        ws();
        if (i >= s.size() || s[i] != '"') return false;
        ++i;
        while (i < s.size()) {
            const char c = s[i++];
            if (c == '"') return true;
            if (c == '\\') {
                if (i >= s.size()) return false;
                const char e = s[i++];
                if (e == 'u') {
                    for (int k = 0; k < 4; ++k)
                        if (i >= s.size() ||
                            !std::isxdigit(static_cast<unsigned char>(s[i++])))
                            return false;
                } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
                    return false;
                }
            }
        }
        return false;
    }
    bool number() {
        ws();
        const std::size_t start = i;
        if (i < s.size() && s[i] == '-') ++i;
        std::size_t digits = 0;
        while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i, ++digits;
        if (digits == 0) {
            i = start;
            return false;
        }
        if (i < s.size() && s[i] == '.') {
            ++i;
            while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
        }
        if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
            ++i;
            if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
            while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
        }
        return true;
    }
    bool literal(const char* word) {
        ws();
        const std::size_t n = std::string(word).size();
        if (s.compare(i, n, word) == 0) {
            i += n;
            return true;
        }
        return false;
    }
    bool value() {
        ws();
        if (i >= s.size()) return false;
        switch (s[i]) {
        case '{': {
            ++i;
            if (eat('}')) return true;
            do {
                if (!string() || !eat(':') || !value()) return false;
            } while (eat(','));
            return eat('}');
        }
        case '[': {
            ++i;
            if (eat(']')) return true;
            do {
                if (!value()) return false;
            } while (eat(','));
            return eat(']');
        }
        case '"':
            return string();
        default:
            return number() || literal("true") || literal("false") || literal("null");
        }
    }
};

bool isValidJson(const std::string& text) {
    JsonCursor c{text};
    if (!c.value()) return false;
    c.ws();
    return c.i == text.size();
}

/// One complete "X" event pulled out of a Chrome-trace document.
struct TraceEvent {
    std::string name;
    std::string category;
    long tid = -1;
    double ts = -1.0;   // µs
    double dur = -1.0;  // µs
};

/// Extracts the fields this suite asserts on.  The writer emits every
/// event with the same fixed key order starting at `{"name":`, so
/// splitting on event starts is exact for the documents under test.
std::vector<TraceEvent> parseEvents(const std::string& json) {
    std::vector<TraceEvent> events;
    const std::string open = "{\"name\":";
    std::size_t pos = json.find(open);
    while (pos != std::string::npos) {
        const std::size_t next = json.find(open, pos + open.size());
        const std::string chunk =
            json.substr(pos, (next == std::string::npos ? json.size() : next) - pos);
        pos = next;
        const auto field = [&chunk](const char* key) -> std::string {
            const std::string tag = std::string("\"") + key + "\":";
            const std::size_t at = chunk.find(tag);
            if (at == std::string::npos) return {};
            std::size_t v = at + tag.size();
            if (chunk[v] == '"') {
                const std::size_t close = chunk.find('"', v + 1);
                return chunk.substr(v + 1, close - v - 1);
            }
            std::size_t stop = v;
            while (stop < chunk.size() && chunk[stop] != ',' && chunk[stop] != '}') ++stop;
            return chunk.substr(v, stop - v);
        };
        TraceEvent e;
        e.name = field("name");
        e.category = field("cat");
        if (!field("tid").empty()) e.tid = std::stol(field("tid"));
        if (!field("ts").empty()) e.ts = std::stod(field("ts"));
        if (!field("dur").empty()) e.dur = std::stod(field("dur"));
        events.push_back(std::move(e));
    }
    return events;
}

// ---------------------------------------------------------------------------
// Counter / registry

TEST(ObsCounter, ManyThreadsSumExactly) {
    Counter counter;
    constexpr int kThreads = 8;
    constexpr std::uint64_t kPerThread = 20'000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&counter] {
            for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add();
        });
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(ObsCounter, DisabledAddIsDroppedButAddAlwaysCounts) {
    Counter counter;
    setMetricsEnabled(false);
    counter.add(5);        // gated: dropped
    counter.addAlways(3);  // per-instance stats path: always lands
    setMetricsEnabled(true);
    counter.add(2);
    EXPECT_EQ(counter.value(), 5u);
    counter.subAlways(1);
    EXPECT_EQ(counter.value(), 4u);
}

TEST(ObsRegistry, LookupsReturnStableReferences) {
    Registry registry;
    Counter& a = registry.counter("obs_test.stable");
    Counter& b = registry.counter("obs_test.stable");
    EXPECT_EQ(&a, &b);
    Gauge& g1 = registry.gauge("obs_test.gauge");
    Gauge& g2 = registry.gauge("obs_test.gauge");
    EXPECT_EQ(&g1, &g2);
    Histogram& h1 = registry.histogram("obs_test.hist");
    Histogram& h2 = registry.histogram("obs_test.hist");
    EXPECT_EQ(&h1, &h2);
}

TEST(ObsRegistry, SnapshotUnderConcurrentWriters) {
    Registry registry;
    Counter& counter = registry.counter("obs_test.races");
    Histogram& hist = registry.histogram("obs_test.race_hist");
    constexpr int kThreads = 6;
    constexpr int kPerThread = 5'000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&] {
            for (int i = 0; i < kPerThread; ++i) {
                counter.add();
                hist.record(1e-4);
                if (i % 512 == 0) (void)registry.snapshot();  // reader races writers
            }
        });
    for (std::thread& t : threads) t.join();
    const MetricsSnapshot snap = registry.snapshot();
    const Metric* c = snap.find("obs_test.races");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->counter, static_cast<std::uint64_t>(kThreads) * kPerThread);
    const Metric* h = snap.find("obs_test.race_hist");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->histogram.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(ObsRegistry, CollectorsContributeAndMergeByName) {
    Registry registry;
    Counter instanceA;
    Counter instanceB;
    instanceA.addAlways(7);
    instanceB.addAlways(5);
    const std::size_t idA = registry.addCollector(
        [&](MetricsSnapshot& snap) { snap.addCounter("obs_test.instances", instanceA.value()); });
    const std::size_t idB = registry.addCollector(
        [&](MetricsSnapshot& snap) { snap.addCounter("obs_test.instances", instanceB.value()); });
    const MetricsSnapshot both = registry.snapshot();
    const Metric* merged = both.find("obs_test.instances");
    ASSERT_NE(merged, nullptr);
    EXPECT_EQ(merged->counter, 12u);  // same-name contributions sum
    registry.removeCollector(idA);
    const MetricsSnapshot one = registry.snapshot();
    const Metric* after = one.find("obs_test.instances");
    ASSERT_NE(after, nullptr);
    EXPECT_EQ(after->counter, 5u);
    registry.removeCollector(idB);
    const MetricsSnapshot none = registry.snapshot();
    EXPECT_EQ(none.find("obs_test.instances"), nullptr);
}

// ---------------------------------------------------------------------------
// Histogram

TEST(ObsHistogram, BucketEdgesAreInclusiveUpperBounds) {
    const std::vector<double> edges{1.0, 2.0, 5.0};
    Histogram hist{std::span<const double>(edges)};
    for (double v : {0.5, 1.0, 1.5, 2.0, 3.0, 5.0, 7.0}) hist.record(v);
    const HistogramData data = hist.snapshot();
    ASSERT_EQ(data.edges, edges);
    ASSERT_EQ(data.buckets.size(), 4u);  // three edges + overflow
    EXPECT_EQ(data.buckets[0], 2u);      // 0.5, 1.0 (edge value lands inside)
    EXPECT_EQ(data.buckets[1], 2u);      // 1.5, 2.0
    EXPECT_EQ(data.buckets[2], 2u);      // 3.0, 5.0
    EXPECT_EQ(data.buckets[3], 1u);      // 7.0 overflows
    EXPECT_EQ(data.count, 7u);
    EXPECT_DOUBLE_EQ(data.sum, 20.0);
    EXPECT_DOUBLE_EQ(data.min, 0.5);
    EXPECT_DOUBLE_EQ(data.max, 7.0);
}

TEST(ObsHistogram, ConcurrentRecordsLoseNothing) {
    Histogram hist{Histogram::defaultEdges()};
    constexpr int kThreads = 8;
    constexpr int kPerThread = 10'000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&hist, t] {
            for (int i = 0; i < kPerThread; ++i)
                hist.record(1e-5 * static_cast<double>(t + 1));
        });
    for (std::thread& t : threads) t.join();
    const HistogramData data = hist.snapshot();
    EXPECT_EQ(data.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
    std::uint64_t bucketSum = 0;
    for (std::uint64_t b : data.buckets) bucketSum += b;
    EXPECT_EQ(bucketSum, data.count);
    EXPECT_DOUBLE_EQ(data.min, 1e-5);
    EXPECT_DOUBLE_EQ(data.max, 8e-5);
}

TEST(ObsHistogram, ScopedTimerRecordsOneSample) {
    const std::vector<double> edges{0.5, 60.0};
    Histogram hist{std::span<const double>(edges)};
    {
        ScopedTimer timer(hist);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const HistogramData data = hist.snapshot();
    EXPECT_EQ(data.count, 1u);
    EXPECT_GT(data.sum, 0.0);
    EXPECT_LT(data.sum, 60.0);  // sane wall-clock seconds, not ns
}

// ---------------------------------------------------------------------------
// Snapshot merge semantics

TEST(ObsSnapshot, MergeAddsCountersAndHistogramsGaugesOverwrite) {
    MetricsSnapshot a;
    a.addCounter("c", 10);
    a.addGauge("g", 1.5);
    HistogramData ha;
    ha.edges = {1.0};
    ha.buckets = {2, 1};
    ha.count = 3;
    ha.sum = 4.0;
    ha.min = 0.5;
    ha.max = 2.0;
    a.addHistogram("h", ha);

    MetricsSnapshot b;
    b.addCounter("c", 32);
    b.addCounter("only_b", 1);
    b.addGauge("g", 9.0);
    HistogramData hb = ha;
    hb.buckets = {0, 4};
    hb.count = 4;
    hb.sum = 40.0;
    hb.min = 3.0;
    hb.max = 11.0;
    b.addHistogram("h", hb);

    a.merge(b);
    EXPECT_EQ(a.find("c")->counter, 42u);
    EXPECT_EQ(a.find("only_b")->counter, 1u);
    EXPECT_DOUBLE_EQ(a.find("g")->gauge, 9.0);  // last write wins
    const HistogramData& merged = a.find("h")->histogram;
    EXPECT_EQ(merged.count, 7u);
    EXPECT_EQ(merged.buckets[0], 2u);
    EXPECT_EQ(merged.buckets[1], 5u);
    EXPECT_DOUBLE_EQ(merged.sum, 44.0);
    EXPECT_DOUBLE_EQ(merged.min, 0.5);
    EXPECT_DOUBLE_EQ(merged.max, 11.0);
}

TEST(ObsSnapshot, JsonIsValidAndCarriesSchema) {
    Registry registry;
    registry.counter("obs_test.json_counter").add(3);
    registry.gauge("obs_test.json_gauge").set(2.5);
    registry.histogram("obs_test.json_hist").record(0.25);
    const std::string json = registry.snapshot().toJson();
    EXPECT_TRUE(isValidJson(json)) << json;
    EXPECT_NE(json.find("\"schema\":\"axf-metrics.v1\""), std::string::npos);
    EXPECT_NE(json.find("obs_test.json_counter"), std::string::npos);
    EXPECT_NE(json.find("obs_test.json_hist"), std::string::npos);
}

TEST(ObsSnapshot, WriteMetricsFileRoundTrips) {
    Registry::global().counter("obs_test.file_counter").add();
    const std::string path = tempPath("metrics.json");
    ASSERT_TRUE(writeMetricsFile(path));
    const std::string text = slurp(path);
    EXPECT_TRUE(isValidJson(text)) << text;
    EXPECT_NE(text.find("obs_test.file_counter"), std::string::npos);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Tracing

TEST(ObsTrace, SpanPathTracksNesting) {
    EXPECT_EQ(activeSpanPath(), "");
    {
        Span outer("obs_outer");
        EXPECT_EQ(activeSpanPath(), "obs_outer");
        {
            Span inner("obs_inner");
            EXPECT_EQ(activeSpanPath(), "obs_outer > obs_inner");
            const std::string report = stallReport();
            EXPECT_NE(report.find("obs_outer > obs_inner"), std::string::npos);
        }
        EXPECT_EQ(activeSpanPath(), "obs_outer");
    }
    EXPECT_EQ(activeSpanPath(), "");
}

TEST(ObsTrace, FileIsValidJsonWithProperlyNestedSpans) {
    const std::string path = tempPath("trace.json");
    startTracing(path);
    {
        Span outer("obs_trace_outer");
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        {
            Span inner("obs_trace_inner", "detail=1");
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
    }
    ASSERT_EQ(stopTracing(), path);
    const std::string text = slurp(path);
    ASSERT_FALSE(text.empty());
    EXPECT_TRUE(isValidJson(text)) << text;
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);

    const std::vector<TraceEvent> events = parseEvents(text);
    const auto byName = [&events](const std::string& name) -> const TraceEvent* {
        for (const TraceEvent& e : events)
            if (e.name == name) return &e;
        return nullptr;
    };
    const TraceEvent* outer = byName("obs_trace_outer");
    const TraceEvent* inner = byName("obs_trace_inner");
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(outer->tid, inner->tid);
    // Proper nesting: the inner interval sits strictly inside the outer.
    EXPECT_GE(inner->ts, outer->ts);
    EXPECT_LE(inner->ts + inner->dur, outer->ts + outer->dur + 1e-3);
    EXPECT_GT(inner->dur, 0.0);
    EXPECT_GT(outer->dur, inner->dur);
    std::remove(path.c_str());
}

TEST(ObsTrace, StopWithoutSessionReturnsEmpty) { EXPECT_EQ(stopTracing(), ""); }

TEST(ObsTrace, ThreadPoolTasksInheritSubmitterSpan) {
    util::ThreadPool pool(2);
    if (pool.threadCount() == 0) GTEST_SKIP() << "no workers on this host";
    const std::string path = tempPath("trace_pool.json");
    startTracing(path);
    long mainTid = -1;
    {
        Span phase("obs_submit_phase");
        // The submitted task must see the submitter's innermost span.
        pool.submit([] {
            EXPECT_EQ(activeSpanPath(), "obs_submit_phase");
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        });
        pool.wait();
    }
    EXPECT_EQ(currentContext().parent, nullptr);  // no span open any more
    ASSERT_EQ(stopTracing(), path);
    const std::string text = slurp(path);
    EXPECT_TRUE(isValidJson(text)) << text;
    const std::vector<TraceEvent> events = parseEvents(text);
    const TraceEvent* phaseEvent = nullptr;
    const TraceEvent* taskEvent = nullptr;
    for (const TraceEvent& e : events) {
        if (e.name == "obs_submit_phase" && e.category != "task") phaseEvent = &e;
        if (e.name == "obs_submit_phase" && e.category == "task") taskEvent = &e;
    }
    ASSERT_NE(phaseEvent, nullptr);
    ASSERT_NE(taskEvent, nullptr) << text;
    mainTid = phaseEvent->tid;
    EXPECT_NE(taskEvent->tid, mainTid);  // ran on a worker, tagged with the phase
    std::remove(path.c_str());
}

TEST(ObsTrace, BackToBackSessionsDoNotBleedEvents) {
    const std::string first = tempPath("trace_first.json");
    startTracing(first);
    { Span span("obs_session_one"); }
    ASSERT_EQ(stopTracing(), first);

    const std::string second = tempPath("trace_second.json");
    startTracing(second);
    { Span span("obs_session_two"); }
    ASSERT_EQ(stopTracing(), second);

    const std::string text = slurp(second);
    EXPECT_NE(text.find("obs_session_two"), std::string::npos);
    EXPECT_EQ(text.find("obs_session_one"), std::string::npos);
    std::remove(first.c_str());
    std::remove(second.c_str());
}

// ---------------------------------------------------------------------------
// Watchdog integration

TEST(ObsWatchdog, StallReportNamesThreadAndInnermostSpan) {
    util::Watchdog::Options options;
    options.deadlineSeconds = 0.2;
    options.label = "obs-test";
    util::Watchdog watchdog(options);
    ASSERT_TRUE(watchdog.enabled());
    {
        Span stalled("obs_stalled_phase");
        const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
        while (watchdog.stallsLogged() == 0 && std::chrono::steady_clock::now() < deadline)
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ASSERT_GT(watchdog.stallsLogged(), 0);
    const std::string report = watchdog.lastStallReport();
    EXPECT_NE(report.find("obs-test"), std::string::npos);
    EXPECT_NE(report.find("thread"), std::string::npos);
    EXPECT_NE(report.find("obs_stalled_phase"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Determinism: instrumentation must never change result bits

std::uint64_t resultDigest(const autoax::AutoAxFpgaFlow::Result& result) {
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xFF;
            h *= 1099511628211ull;
        }
    };
    const auto mixDouble = [&mix](double v) {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        mix(bits);
    };
    const auto mixConfig = [&](const autoax::EvaluatedConfig& e) {
        for (int c : e.config.choice) mix(static_cast<std::uint64_t>(c));
        mixDouble(e.ssim);
        mixDouble(e.cost.lutCount);
        mixDouble(e.cost.powerMw);
        mixDouble(e.cost.latencyNs);
    };
    mix(result.trainingSet.size());
    for (const autoax::EvaluatedConfig& e : result.trainingSet) mixConfig(e);
    for (const autoax::AutoAxFpgaFlow::ScenarioResult& s : result.scenarios) {
        mix(static_cast<std::uint64_t>(s.param));
        mix(s.estimatorQueries);
        mix(s.autoax.size());
        for (const autoax::EvaluatedConfig& e : s.autoax) mixConfig(e);
        mix(s.random.size());
        for (const autoax::EvaluatedConfig& e : s.random) mixConfig(e);
    }
    mix(result.totalRealEvaluations);
    return h;
}

autoax::Component makeComponent(circuit::Netlist netlist, circuit::ArithSignature sig) {
    autoax::Component c;
    c.name = netlist.name();
    c.signature = sig;
    c.error = error::analyzeError(netlist, sig);
    c.fpga = synth::FpgaFlow().implement(netlist);
    c.netlist = std::move(netlist);
    return c;
}

TEST(ObsDeterminism, InstrumentedFlowIsBitIdenticalToUninstrumented) {
    std::vector<autoax::Component> mults;
    mults.push_back(makeComponent(gen::wallaceMultiplier(8), gen::multiplierSignature(8)));
    for (int t : {3, 5})
        mults.push_back(
            makeComponent(gen::truncatedMultiplier(8, t), gen::multiplierSignature(8)));
    std::vector<autoax::Component> adds;
    adds.push_back(makeComponent(gen::rippleCarryAdder(16), gen::adderSignature(16)));
    adds.push_back(makeComponent(gen::loaAdder(16, 6), gen::adderSignature(16)));
    const autoax::GaussianAccelerator accel(std::move(mults), std::move(adds));

    autoax::AutoAxFpgaFlow::Config cfg;
    cfg.trainConfigs = 10;
    cfg.hillIterations = 60;
    cfg.imageSize = 32;
    cfg.sceneCount = 1;

    // Run A: metrics on + an active trace session (full instrumentation).
    const std::string path = tempPath("trace_determinism.json");
    setMetricsEnabled(true);
    startTracing(path);
    const std::uint64_t instrumented = resultDigest(autoax::AutoAxFpgaFlow(cfg).run(accel));
    ASSERT_EQ(stopTracing(), path);
    EXPECT_TRUE(isValidJson(slurp(path)));
    std::remove(path.c_str());

    // Run B: everything off — the observability layer must be invisible.
    setMetricsEnabled(false);
    const std::uint64_t bare = resultDigest(autoax::AutoAxFpgaFlow(cfg).run(accel));
    setMetricsEnabled(true);

    EXPECT_EQ(instrumented, bare);
}

}  // namespace
}  // namespace axf::obs
