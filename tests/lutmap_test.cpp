#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/circuit/transform.hpp"
#include "src/gen/adders.hpp"
#include "src/gen/multipliers.hpp"
#include "src/synth/lutmap.hpp"

namespace axf::synth {
namespace {

using circuit::GateKind;
using circuit::Netlist;
using circuit::NodeId;

Netlist prepared(const Netlist& net) {
    return circuit::simplify(circuit::lowerToTwoInput(circuit::simplify(net)));
}

/// Structural sanity of a mapping against its netlist.
void checkMappingInvariants(const Netlist& net, const LutMapper::Mapping& mapping, int k) {
    std::set<NodeId> roots;
    for (const LutMapper::Lut& lut : mapping.luts) {
        EXPECT_TRUE(roots.insert(lut.root).second) << "duplicate LUT root";
        EXPECT_LE(static_cast<int>(lut.leaves.size()), k);
        EXPECT_GE(lut.level, 1);
        for (NodeId leaf : lut.leaves) EXPECT_LT(leaf, lut.root);  // topological
    }
    // Every primary output must be driven by a selected LUT, an input, or a
    // constant.
    for (NodeId out : net.outputs()) {
        const GateKind kind = net.node(out).kind;
        if (circuit::fanInCount(kind) == 0) continue;
        EXPECT_TRUE(roots.count(out)) << "output " << out << " not covered";
    }
    // Every LUT leaf that is a gate must itself be a selected LUT root.
    for (const LutMapper::Lut& lut : mapping.luts) {
        for (NodeId leaf : lut.leaves) {
            if (circuit::fanInCount(net.node(leaf).kind) == 0) continue;
            EXPECT_TRUE(roots.count(leaf)) << "dangling internal leaf";
        }
    }
}

TEST(LutMapper, CoversSimpleNetlist) {
    Netlist net;
    const NodeId a = net.addInput();
    const NodeId b = net.addInput();
    const NodeId c = net.addInput();
    const NodeId g1 = net.addGate(GateKind::And, a, b);
    const NodeId g2 = net.addGate(GateKind::Xor, g1, c);
    net.markOutput(g2);
    const LutMapper::Mapping m = LutMapper().map(net);
    // Three inputs, two gates -> a single 3-input LUT.
    EXPECT_EQ(m.lutCount(), 1u);
    EXPECT_EQ(m.depth, 1);
    checkMappingInvariants(net, m, 6);
}

TEST(LutMapper, RejectsThreeInputGates) {
    Netlist net;
    const NodeId a = net.addInput();
    const NodeId b = net.addInput();
    const NodeId c = net.addInput();
    net.markOutput(net.addGate(GateKind::Maj, a, b, c));
    EXPECT_THROW(LutMapper().map(net), std::invalid_argument);
}

class LutMapperOnGenerators : public ::testing::TestWithParam<int> {};

TEST_P(LutMapperOnGenerators, InvariantsAndCompression) {
    const int n = GetParam();
    for (const Netlist& raw : {gen::rippleCarryAdder(n), gen::koggeStoneAdder(n),
                               gen::wallaceMultiplier(n), gen::truncatedMultiplier(n, n / 2)}) {
        const Netlist net = prepared(raw);
        const LutMapper::Mapping m = LutMapper().map(net);
        checkMappingInvariants(net, m, 6);
        // 6-LUT mapping must compress 2-input gates substantially.
        EXPECT_LT(m.lutCount(), net.gateCount()) << raw.name();
        // Depth is bounded below by information flow: ceil(gateDepth / 5)
        // is loose but must hold (a 6-LUT absorbs at most 5 levels of
        // 2-input logic... actually log2-based bound: each LUT level can
        // consume inputs from at most 6 sources).
        EXPECT_GE(m.depth, 1);
        EXPECT_LE(m.depth, net.depth());
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, LutMapperOnGenerators, ::testing::Values(4, 6, 8));

TEST(LutMapper, FourLutMappingUsesMoreLuts) {
    const Netlist net = prepared(gen::wallaceMultiplier(6));
    LutMapper::Options k4;
    k4.lutInputs = 4;
    const std::size_t luts4 = LutMapper(k4).map(net).lutCount();
    const std::size_t luts6 = LutMapper().map(net).lutCount();
    EXPECT_GT(luts4, luts6);
}

TEST(LutMapper, DepthOptimalityOnChain) {
    // A chain of 10 NOT gates fits into ceil(10/..) LUTs; with K=6 a single
    // LUT absorbs any single-input chain, so depth must be 1.
    Netlist net;
    NodeId cur = net.addInput();
    for (int i = 0; i < 10; ++i) cur = net.addGate(GateKind::Not, cur);
    net.markOutput(cur);
    const LutMapper::Mapping m = LutMapper().map(net);
    EXPECT_EQ(m.depth, 1);
    EXPECT_EQ(m.lutCount(), 1u);
}

TEST(LutMapper, WideXorTreeDepth) {
    // 32-input XOR tree: information-theoretic LUT depth >= 2 (6-LUTs).
    Netlist net;
    std::vector<NodeId> level;
    for (int i = 0; i < 32; ++i) level.push_back(net.addInput());
    while (level.size() > 1) {
        std::vector<NodeId> next;
        for (std::size_t i = 0; i + 1 < level.size(); i += 2)
            next.push_back(net.addGate(GateKind::Xor, level[i], level[i + 1]));
        if (level.size() % 2 == 1) next.push_back(level.back());
        level = std::move(next);
    }
    net.markOutput(level[0]);
    const LutMapper::Mapping m = LutMapper().map(net);
    // Information-theoretic bound: ceil(log6(32)) = 2; priority-cut
    // enumeration is near-optimal but not guaranteed exact.
    EXPECT_GE(m.depth, 2);
    EXPECT_LE(m.depth, 3);
    checkMappingInvariants(net, m, 6);
}

TEST(LutMapper, Deterministic) {
    const Netlist net = prepared(gen::wallaceMultiplier(6));
    const LutMapper::Mapping a = LutMapper().map(net);
    const LutMapper::Mapping b = LutMapper().map(net);
    ASSERT_EQ(a.lutCount(), b.lutCount());
    EXPECT_EQ(a.depth, b.depth);
    for (std::size_t i = 0; i < a.luts.size(); ++i) {
        EXPECT_EQ(a.luts[i].root, b.luts[i].root);
        EXPECT_EQ(a.luts[i].leaves, b.luts[i].leaves);
    }
}

}  // namespace
}  // namespace axf::synth
