#include <gtest/gtest.h>

#include <cmath>

#include "src/circuit/simulator.hpp"
#include "src/gen/adders.hpp"
#include "src/gen/multipliers.hpp"
#include "src/synth/asic.hpp"
#include "src/synth/fpga.hpp"
#include "src/synth/synth_time.hpp"
#include "src/util/thread_pool.hpp"

namespace axf::synth {
namespace {

TEST(AsicFlow, ReportsArePositiveAndScale) {
    AsicFlow flow;
    const AsicReport small = flow.synthesize(gen::rippleCarryAdder(4));
    const AsicReport big = flow.synthesize(gen::wallaceMultiplier(8));
    for (const AsicReport& r : {small, big}) {
        EXPECT_GT(r.areaUm2, 0.0);
        EXPECT_GT(r.delayNs, 0.0);
        EXPECT_GT(r.powerMw, 0.0);
        EXPECT_GT(r.cellCount, 0.0);
    }
    EXPECT_GT(big.areaUm2, small.areaUm2);
    EXPECT_GT(big.powerMw, small.powerMw);
    EXPECT_GT(big.delayNs, small.delayNs);
}

TEST(AsicFlow, Deterministic) {
    AsicFlow flow;
    const circuit::Netlist net = gen::truncatedMultiplier(8, 4);
    const AsicReport a = flow.synthesize(net);
    const AsicReport b = flow.synthesize(net);
    EXPECT_DOUBLE_EQ(a.areaUm2, b.areaUm2);
    EXPECT_DOUBLE_EQ(a.delayNs, b.delayNs);
    EXPECT_DOUBLE_EQ(a.powerMw, b.powerMw);
}

TEST(AsicFlow, CellLibraryAsymmetry) {
    // XOR-class cells must be costlier than NAND-class cells — the CMOS
    // asymmetry the paper's ASIC/FPGA divergence rests on.
    EXPECT_GT(AsicFlow::cellSpec(circuit::GateKind::Xor).areaUm2,
              AsicFlow::cellSpec(circuit::GateKind::Nand).areaUm2);
    EXPECT_GT(AsicFlow::cellSpec(circuit::GateKind::Xor).delayNs,
              AsicFlow::cellSpec(circuit::GateKind::Nand).delayNs);
    EXPECT_DOUBLE_EQ(AsicFlow::cellSpec(circuit::GateKind::Input).areaUm2, 0.0);
}

TEST(AsicFlow, SimplificationReducesCost) {
    // A netlist with dead/redundant logic must not cost more than its
    // simplified equivalent (the flow optimizes internally).
    circuit::Netlist net;
    const circuit::NodeId a = net.addInput();
    const circuit::NodeId b = net.addInput();
    const circuit::NodeId g = net.addGate(circuit::GateKind::And, a, b);
    for (int i = 0; i < 10; ++i) net.addGate(circuit::GateKind::Or, a, b);  // dead
    net.markOutput(g);
    AsicFlow flow;
    EXPECT_DOUBLE_EQ(flow.synthesize(net).cellCount, 1.0);
}

TEST(FpgaFlow, ReportsArePlausible) {
    FpgaFlow flow;
    const FpgaReport r = flow.implement(gen::wallaceMultiplier(8));
    EXPECT_GT(r.lutCount, 30.0);
    EXPECT_LT(r.lutCount, 400.0);
    EXPECT_DOUBLE_EQ(r.sliceCount, std::ceil(r.lutCount / 4.0));
    EXPECT_GT(r.latencyNs, 1.0);
    EXPECT_LT(r.latencyNs, 60.0);
    EXPECT_GT(r.powerMw, 0.05);
    EXPECT_GT(r.logicDepth, 2.0);
    EXPECT_GT(r.synthSeconds, 45.0);
}

TEST(FpgaFlow, DeterministicPerCircuit) {
    FpgaFlow flow;
    const circuit::Netlist net = gen::loaAdder(8, 3);
    const FpgaReport a = flow.implement(net);
    const FpgaReport b = flow.implement(net);
    EXPECT_DOUBLE_EQ(a.latencyNs, b.latencyNs);
    EXPECT_DOUBLE_EQ(a.powerMw, b.powerMw);
    EXPECT_DOUBLE_EQ(a.lutCount, b.lutCount);
}

TEST(FpgaFlow, JitterVariesAcrossCircuitsNotWithinOne) {
    // Two structurally different but similar-size adders should (almost
    // surely) receive different routing jitter.
    FpgaFlow flow;
    const FpgaReport a = flow.implement(gen::loaAdder(8, 3));
    const FpgaReport b = flow.implement(gen::etaAdder(8, 3));
    EXPECT_NE(a.latencyNs, b.latencyNs);
}

TEST(FpgaFlow, SeedChangesJitter) {
    const circuit::Netlist net = gen::loaAdder(8, 3);
    FpgaFlow::Options optA;
    FpgaFlow::Options optB;
    optB.seed = optA.seed ^ 0x1234;
    const FpgaReport a = FpgaFlow(optA).implement(net);
    const FpgaReport b = FpgaFlow(optB).implement(net);
    EXPECT_NE(a.latencyNs, b.latencyNs);
    // But mapping-derived quantities are seed-independent.
    EXPECT_DOUBLE_EQ(a.lutCount, b.lutCount);
    EXPECT_DOUBLE_EQ(a.logicDepth, b.logicDepth);
}

TEST(FpgaFlow, ActivitySeedDrivesPowerStimulus) {
    // The power estimate must respond to the configured activity seed
    // (it used to be hardwired to 0xAC7DE regardless of the options).
    const circuit::Netlist net = gen::truncatedMultiplier(8, 4);
    FpgaFlow::Options optA;
    FpgaFlow::Options optB;
    optB.activitySeed = optA.activitySeed ^ 0xBEEF;
    const FpgaReport a = FpgaFlow(optA).implement(net);
    const FpgaReport b = FpgaFlow(optB).implement(net);
    EXPECT_NE(a.powerMw, b.powerMw);
    // Everything outside the activity estimation is untouched.
    EXPECT_DOUBLE_EQ(a.lutCount, b.lutCount);
    EXPECT_DOUBLE_EQ(a.latencyNs, b.latencyNs);
    EXPECT_DOUBLE_EQ(a.logicDepth, b.logicDepth);
    // And the default reproduces the historical hardwired stream.
    EXPECT_EQ(FpgaFlow::Options{}.activitySeed, 0xAC7DEull);
}

TEST(FpgaFlow, ApproximationSavesLuts) {
    FpgaFlow flow;
    const double exact = flow.implement(gen::wallaceMultiplier(8)).lutCount;
    const double trunc = flow.implement(gen::truncatedMultiplier(8, 6)).lutCount;
    EXPECT_LT(trunc, exact);
}

TEST(FpgaFlow, DepthDrivesLatency) {
    FpgaFlow flow;
    const FpgaReport shallow = flow.implement(gen::koggeStoneAdder(16));
    const FpgaReport deep = flow.implement(gen::rippleCarryAdder(16));
    EXPECT_LT(shallow.logicDepth, deep.logicDepth);
    EXPECT_LT(shallow.latencyNs, deep.latencyNs);
}

TEST(FpgaFlow, TechnologyMapExposed) {
    FpgaFlow flow;
    const LutMapper::Mapping m = flow.technologyMap(gen::rippleCarryAdder(8));
    EXPECT_GT(m.lutCount(), 0u);
    EXPECT_EQ(static_cast<double>(m.lutCount()), flow.implement(gen::rippleCarryAdder(8)).lutCount);
}

TEST(Flows, PowerReportsThreadCountInvariant) {
    // The switching-activity estimation is chunk-parallel; the reports it
    // feeds must be the same bits whether the global pool, a serial pool
    // or a many-worker pool runs it.  `implement`/`synthesize` always use
    // the global pool, so pin the comparison by running the estimation
    // both ways on explicit pools and the flows on whatever is ambient.
    const circuit::Netlist net = gen::truncatedMultiplier(8, 4);
    util::ThreadPool one(1);
    util::ThreadPool many(4);
    FpgaFlow fpga;
    AsicFlow asic;
    const FpgaReport f1 = fpga.implement(net);
    const FpgaReport f2 = fpga.implement(net);
    EXPECT_EQ(f1.powerMw, f2.powerMw);
    const AsicReport a1 = asic.synthesize(net);
    const AsicReport a2 = asic.synthesize(net);
    EXPECT_EQ(a1.powerMw, a2.powerMw);
    // The underlying estimator is pool-invariant on the same optimized
    // netlist (the flows' power derives from exactly these rates).
    const std::vector<double> rOne =
        circuit::estimateToggleRates(net, FpgaFlow::Options{}.activitySeed, 24, &one);
    const std::vector<double> rMany =
        circuit::estimateToggleRates(net, FpgaFlow::Options{}.activitySeed, 24, &many);
    ASSERT_EQ(rOne.size(), rMany.size());
    for (std::size_t i = 0; i < rOne.size(); ++i) EXPECT_EQ(rOne[i], rMany[i]);
}

TEST(SynthTime, CalibrationAnchors) {
    // ~115 s per 8x8 multiplier circuit (paper: 6 days / ~450 circuits).
    const double mul8 = vivadoEquivalentSeconds(gen::wallaceMultiplier(8));
    EXPECT_GT(mul8, 90.0);
    EXPECT_LT(mul8, 180.0);
    const double mul16 = vivadoEquivalentSeconds(gen::wallaceMultiplier(16));
    EXPECT_GT(mul16, 300.0);   // several minutes
    EXPECT_LT(mul16, 1200.0);
    EXPECT_GT(mul16, mul8);
}

TEST(SynthTime, UnitConversions) {
    EXPECT_DOUBLE_EQ(secondsToDays(86400.0), 1.0);
    EXPECT_DOUBLE_EQ(secondsToHours(7200.0), 2.0);
}

}  // namespace
}  // namespace axf::synth
