#include <gtest/gtest.h>

#include <vector>

#include "src/circuit/batch_sim.hpp"
#include "src/circuit/simulator.hpp"
#include "src/util/rng.hpp"

namespace axf::circuit {
namespace {

/// Random DAG over the full gate alphabet: every kind is drawn with equal
/// probability, operands reference any earlier node (netlist invariant).
Netlist randomNetlist(int inputs, int gates, int outputs, util::Rng& rng) {
    static constexpr GateKind kAllKinds[] = {
        GateKind::Const0, GateKind::Const1, GateKind::Buf,    GateKind::Not,
        GateKind::And,    GateKind::Or,     GateKind::Xor,    GateKind::Nand,
        GateKind::Nor,    GateKind::Xnor,   GateKind::AndNot, GateKind::OrNot,
        GateKind::Mux,    GateKind::Maj};
    Netlist net("random");
    for (int i = 0; i < inputs; ++i) net.addInput();
    for (int g = 0; g < gates; ++g) {
        const GateKind kind = kAllKinds[rng.index(std::size(kAllKinds))];
        const auto pickNode = [&] {
            return static_cast<NodeId>(rng.index(net.nodeCount()));
        };
        if (kind == GateKind::Const0 || kind == GateKind::Const1) {
            net.addConst(kind == GateKind::Const1);
        } else {
            net.addGate(kind, pickNode(), pickNode(), pickNode());
        }
    }
    for (int o = 0; o < outputs; ++o)
        net.markOutput(static_cast<NodeId>(rng.index(net.nodeCount())));
    return net;
}

/// Exhaustively cross-checks BatchSimulator (blockLanes()-lane blocks at
/// the program's chosen width, pruned compile) against
/// Simulator::evaluateScalar (all-nodes compile) over the full input space
/// of the netlist.
void crossCheckExhaustive(const Netlist& net) {
    const int totalBits = static_cast<int>(net.inputCount());
    ASSERT_LE(totalBits, 12);
    const std::uint64_t space = std::uint64_t{1} << totalBits;

    Simulator scalar(net);
    const CompiledNetlist compiled = CompiledNetlist::compile(net);
    BatchSimulator batch(compiled);
    EXPECT_LE(compiled.slotCount(), net.nodeCount());

    const std::size_t W = batch.blockWords();
    std::vector<CompiledNetlist::Word> in(net.inputCount() * W);
    std::vector<CompiledNetlist::Word> out(net.outputCount() * W);
    for (std::uint64_t base = 0; base < space; base += batch.blockLanes()) {
        fillExhaustiveBlock(in, totalBits, base, W);
        batch.evaluate(in, out);
        const std::uint64_t lanes =
            std::min<std::uint64_t>(batch.blockLanes(), space - base);
        for (std::uint64_t lane = 0; lane < lanes; ++lane) {
            std::uint64_t batchResult = 0;
            for (std::size_t o = 0; o < net.outputCount(); ++o)
                if ((out[o * W + lane / 64] >> (lane % 64)) & 1u)
                    batchResult |= std::uint64_t{1} << o;
            ASSERT_EQ(batchResult, scalar.evaluateScalar(base + lane))
                << "vector " << base + lane;
        }
    }
}

TEST(BatchSimulator, MatchesScalarOnRandomNetlists) {
    util::Rng rng(0xBA7C);
    for (int trial = 0; trial < 20; ++trial) {
        const int inputs = 4 + static_cast<int>(rng.index(7));   // 4..10
        const int gates = 20 + static_cast<int>(rng.index(60));  // plenty of dead logic
        const int outputs = 1 + static_cast<int>(rng.index(8));
        crossCheckExhaustive(randomNetlist(inputs, gates, outputs, rng));
    }
}

TEST(BatchSimulator, EveryGateKindExercised) {
    // One tiny netlist per kind, checked over its full input space, so a
    // wrong lowering of any single gate cannot hide inside a random DAG.
    for (const GateKind kind :
         {GateKind::Buf, GateKind::Not, GateKind::And, GateKind::Or, GateKind::Xor,
          GateKind::Nand, GateKind::Nor, GateKind::Xnor, GateKind::AndNot, GateKind::OrNot,
          GateKind::Mux, GateKind::Maj}) {
        Netlist net(gateKindName(kind));
        const NodeId a = net.addInput();
        const NodeId b = net.addInput();
        const NodeId c = net.addInput();
        net.markOutput(net.addGate(kind, a, fanInCount(kind) >= 2 ? b : kInvalidNode,
                                   fanInCount(kind) >= 3 ? c : kInvalidNode));
        crossCheckExhaustive(net);
    }
}

TEST(BatchSimulator, ConstantsAndDeadInputs) {
    Netlist net("consts");
    net.addInput();  // dead input: interface must survive pruning
    const NodeId one = net.addConst(true);
    const NodeId zero = net.addConst(false);
    net.markOutput(one);
    net.markOutput(zero);
    const CompiledNetlist compiled = CompiledNetlist::compile(net);
    EXPECT_EQ(compiled.inputCount(), 1u);
    EXPECT_EQ(compiled.instructionCount(), 0u);
    crossCheckExhaustive(net);
}

TEST(BatchSimulator, PruningDropsDeadCone) {
    Netlist net("dead");
    const NodeId a = net.addInput();
    const NodeId b = net.addInput();
    const NodeId live = net.addGate(GateKind::And, a, b);
    net.addGate(GateKind::Xor, a, b);  // dead
    net.addGate(GateKind::Or, a, b);   // dead
    net.markOutput(live);
    const CompiledNetlist pruned = CompiledNetlist::compile(net);
    EXPECT_EQ(pruned.instructionCount(), 1u);
    const CompiledNetlist full = CompiledNetlist::compile(net, {.pruneDead = false});
    EXPECT_EQ(full.instructionCount(), 3u);
    EXPECT_TRUE(full.preservesAllNodes());
    crossCheckExhaustive(net);
}

TEST(BatchSimulator, ShapeChecks) {
    Netlist net("shape");
    net.addInput();
    net.markOutput(0);
    const CompiledNetlist compiled = CompiledNetlist::compile(net);
    BatchSimulator sim(compiled);
    std::vector<CompiledNetlist::Word> bad(sim.blockWords() * 2);
    std::vector<CompiledNetlist::Word> out(sim.blockWords());
    EXPECT_THROW(sim.evaluate(bad, out), std::invalid_argument);
    std::vector<CompiledNetlist::Word> in(sim.blockWords());
    std::vector<CompiledNetlist::Word> badOut(sim.blockWords() * 3);
    EXPECT_THROW(sim.evaluate(in, badOut), std::invalid_argument);
}

TEST(FillExhaustiveBlock, W1AndW4AgainstScalarBitReference) {
    // Scalar reference: bit `bit` of lane L must equal bit `bit` of the
    // enumerated index (base + L).  Checked for W=1 (no word-index bits)
    // and W=4 (pattern bits 0..5, word-index bits 6..7, base bits 8+) over
    // every bit class and several bases.
    const auto check = [](auto widthTag, int totalBits, std::uint64_t base) {
        constexpr std::size_t W = decltype(widthTag)::value;
        std::vector<CompiledNetlist::Word> in(static_cast<std::size_t>(totalBits) * W);
        fillExhaustiveBlock<W>(in, totalBits, base);
        for (std::uint64_t lane = 0; lane < W * 64; ++lane) {
            const std::uint64_t index = base + lane;
            for (int bit = 0; bit < totalBits; ++bit) {
                const std::uint64_t got =
                    (in[static_cast<std::size_t>(bit) * W + lane / 64] >> (lane % 64)) & 1u;
                ASSERT_EQ(got, (index >> bit) & 1u)
                    << "W=" << W << " base=" << base << " lane=" << lane << " bit=" << bit;
            }
        }
    };
    for (const std::uint64_t base : {0ull, 256ull, 1536ull, 65280ull}) {
        check(std::integral_constant<std::size_t, 4>{}, 16, base);
        check(std::integral_constant<std::size_t, 4>{}, 10, base);
    }
    for (const std::uint64_t base : {0ull, 64ull, 960ull}) {
        check(std::integral_constant<std::size_t, 1>{}, 10, base);
        check(std::integral_constant<std::size_t, 1>{}, 7, base);
    }
}

TEST(CompiledNetlist, RunW1MatchesWideRunOnRandomNetlists) {
    // W single-word run<1> sweeps must reproduce one W-word wide sweep
    // bitwise, on netlists covering every GateKind (and therefore, after
    // fusion, every kernel opcode).
    util::Rng rng(0x1441);
    for (int trial = 0; trial < 10; ++trial) {
        const Netlist net = randomNetlist(4 + static_cast<int>(rng.index(7)),
                                          20 + static_cast<int>(rng.index(60)),
                                          1 + static_cast<int>(rng.index(8)), rng);
        const CompiledNetlist compiled = CompiledNetlist::compile(net);
        const std::size_t W = compiled.blockWords();
        std::vector<CompiledNetlist::Word> wideIn(net.inputCount() * W);
        for (auto& w : wideIn) w = rng.uniformInt(0, ~std::uint64_t{0});
        std::vector<CompiledNetlist::Word> wideOut(net.outputCount() * W);
        BatchSimulator wide(compiled);  // owns the (aligned) wide workspace
        wide.evaluate(wideIn, wideOut);

        std::vector<CompiledNetlist::Word> ws(compiled.workspaceWords(1), 0);
        compiled.initWorkspace(ws, 1);
        std::vector<CompiledNetlist::Word> in(net.inputCount()), out(net.outputCount());
        for (std::size_t w = 0; w < W; ++w) {
            for (std::size_t i = 0; i < net.inputCount(); ++i) in[i] = wideIn[i * W + w];
            compiled.run<1>(in.data(), out.data(), ws.data());
            for (std::size_t o = 0; o < net.outputCount(); ++o)
                ASSERT_EQ(out[o], wideOut[o * W + w]) << "word " << w << " output " << o;
        }
    }
}

TEST(FillExhaustiveBlock, LaneCarriesItsIndex) {
    constexpr std::size_t W = kernels::kBaseWideWords;
    const int totalBits = 10;
    std::vector<CompiledNetlist::Word> in(static_cast<std::size_t>(totalBits) * W);
    const std::uint64_t base = 512;  // multiple of 256
    fillExhaustiveBlock<W>(in, totalBits, base);
    for (std::uint64_t lane = 0; lane < W * 64; ++lane) {
        std::uint64_t value = 0;
        for (int bit = 0; bit < totalBits; ++bit)
            if ((in[static_cast<std::size_t>(bit) * W + lane / 64] >> (lane % 64)) & 1u)
                value |= std::uint64_t{1} << bit;
        ASSERT_EQ(value, base + lane);
    }
}

}  // namespace
}  // namespace axf::circuit
