// Kernel-backend dispatch and opcode-fusion tests: every backend the CPU
// can execute must produce bit-identical results for raw runs, for whole
// ErrorReports and for a complete AutoAxFpgaFlow::Result; the peephole
// rewrites must preserve semantics gate-for-gate.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/autoax/dse.hpp"
#include "src/autoax/sobel.hpp"
#include "src/circuit/batch_sim.hpp"
#include "src/circuit/kernels.hpp"
#include "src/circuit/simulator.hpp"
#include "src/error/error_metrics.hpp"
#include "src/gen/adders.hpp"
#include "src/gen/multipliers.hpp"
#include "src/synth/fpga.hpp"
#include "src/util/rng.hpp"

namespace axf::circuit {
namespace {

/// Random DAG over the full gate alphabet (mirrors batch_sim_test).
Netlist randomNetlist(int inputs, int gates, int outputs, util::Rng& rng) {
    static constexpr GateKind kAllKinds[] = {
        GateKind::Const0, GateKind::Const1, GateKind::Buf,    GateKind::Not,
        GateKind::And,    GateKind::Or,     GateKind::Xor,    GateKind::Nand,
        GateKind::Nor,    GateKind::Xnor,   GateKind::AndNot, GateKind::OrNot,
        GateKind::Mux,    GateKind::Maj};
    Netlist net("random");
    for (int i = 0; i < inputs; ++i) net.addInput();
    for (int g = 0; g < gates; ++g) {
        const GateKind kind = kAllKinds[rng.index(std::size(kAllKinds))];
        const auto pick = [&] { return static_cast<NodeId>(rng.index(net.nodeCount())); };
        if (kind == GateKind::Const0 || kind == GateKind::Const1)
            net.addConst(kind == GateKind::Const1);
        else
            net.addGate(kind, pick(), pick(), pick());
    }
    for (int o = 0; o < outputs; ++o)
        net.markOutput(static_cast<NodeId>(rng.index(net.nodeCount())));
    return net;
}

/// Exhaustive batch-vs-scalar cross-check of one compiled program.
void crossCheck(const Netlist& net, const CompiledNetlist& compiled) {
    const int totalBits = static_cast<int>(net.inputCount());
    ASSERT_LE(totalBits, 12);
    const std::uint64_t space = std::uint64_t{1} << totalBits;
    Simulator scalar(net);
    BatchSimulator batch(compiled);
    const std::size_t W = batch.blockWords();
    std::vector<CompiledNetlist::Word> in(net.inputCount() * W);
    std::vector<CompiledNetlist::Word> out(net.outputCount() * W);
    for (std::uint64_t base = 0; base < space; base += batch.blockLanes()) {
        fillExhaustiveBlock(in, totalBits, base, W);
        batch.evaluate(in, out);
        const std::uint64_t lanes =
            std::min<std::uint64_t>(batch.blockLanes(), space - base);
        for (std::uint64_t lane = 0; lane < lanes; ++lane) {
            std::uint64_t result = 0;
            for (std::size_t o = 0; o < net.outputCount(); ++o)
                if ((out[o * W + lane / 64] >> (lane % 64)) & 1u)
                    result |= std::uint64_t{1} << o;
            ASSERT_EQ(result, scalar.evaluateScalar(base + lane)) << "vector " << base + lane;
        }
    }
}

TEST(KernelBackends, PortableAlwaysAvailable) {
    const auto backends = kernels::availableBackends();
    ASSERT_FALSE(backends.empty());
    EXPECT_STREQ(backends.front()->name, "portable");
    std::set<std::string> names;
    for (const kernels::Backend* b : backends) names.insert(b->name);
    EXPECT_EQ(names.size(), backends.size()) << "duplicate backend names";
    // The selected backend is one of the available ones.
    names.clear();
    for (const kernels::Backend* b : backends) names.insert(b->name);
    EXPECT_TRUE(names.count(kernels::selectedBackend().name));
}

TEST(KernelBackends, UnknownNameRejected) {
    EXPECT_EQ(kernels::backendByName("bogus"), nullptr);
    EXPECT_NE(kernels::backendByName("portable"), nullptr);
}

TEST(KernelBackends, RunsBitIdenticalAcrossBackends) {
    util::Rng rng(0x5EED);
    for (int trial = 0; trial < 8; ++trial) {
        const Netlist net = randomNetlist(4 + static_cast<int>(rng.index(7)),
                                          30 + static_cast<int>(rng.index(80)),
                                          1 + static_cast<int>(rng.index(8)), rng);
        for (const kernels::Backend* backend : kernels::availableBackends()) {
            CompiledNetlist::Options options;
            options.backend = backend;
            const CompiledNetlist compiled = CompiledNetlist::compile(net, options);
            EXPECT_STREQ(compiled.stats().backend, backend->name);
            crossCheck(net, compiled);  // scalar reference == ground truth
        }
    }
}

TEST(KernelBackends, NarrowPathBitIdenticalAcrossBackends) {
    // run<1> (Simulator / activity estimation path), all nodes preserved.
    util::Rng rng(0xA11);
    const Netlist net = randomNetlist(8, 60, 6, rng);
    CompiledNetlist::Options options;
    options.pruneDead = false;
    const CompiledNetlist reference = CompiledNetlist::compile(net, options);
    std::vector<CompiledNetlist::Word> in(net.inputCount());
    for (std::size_t i = 0; i < in.size(); ++i) in[i] = 0x9E3779B97F4A7C15ull * (i + 1);
    std::vector<CompiledNetlist::Word> refOut(net.outputCount());
    std::vector<CompiledNetlist::Word> refWs(reference.workspaceWords(1), 0);
    reference.initWorkspace(refWs, 1);
    reference.run<1>(in.data(), refOut.data(), refWs.data());
    for (const kernels::Backend* backend : kernels::availableBackends()) {
        CompiledNetlist::Options o = options;
        o.backend = backend;
        const CompiledNetlist compiled = CompiledNetlist::compile(net, o);
        std::vector<CompiledNetlist::Word> out(net.outputCount());
        std::vector<CompiledNetlist::Word> ws(compiled.workspaceWords(1), 0);
        compiled.initWorkspace(ws, 1);
        compiled.run<1>(in.data(), out.data(), ws.data());
        EXPECT_EQ(out, refOut) << backend->name;
        EXPECT_EQ(ws, refWs) << backend->name;  // every node value identical
    }
}

TEST(KernelFusion, RewriteRulesPreserveSemantics) {
    // One targeted netlist per rewrite family, checked exhaustively: a
    // wrong fusion identity cannot hide inside a random DAG.
    using GK = GateKind;
    const auto single = [](GK inner, GK outer) {
        Netlist net(std::string(gateKindName(inner)) + "_into_" + gateKindName(outer));
        const NodeId a = net.addInput();
        const NodeId b = net.addInput();
        const NodeId c = net.addInput();
        const NodeId inv = net.addGate(inner, a, b, c);
        net.markOutput(net.addGate(outer, inv, b, c));
        net.markOutput(net.addGate(outer, b, inv, c));
        if (fanInCount(outer) >= 3) net.markOutput(net.addGate(outer, b, c, inv));
        return net;
    };
    for (const GK outer : {GK::And, GK::Or, GK::Xor, GK::Nand, GK::Nor, GK::Xnor, GK::AndNot,
                           GK::OrNot, GK::Mux, GK::Maj}) {
        const Netlist net = single(GK::Not, outer);
        crossCheck(net, CompiledNetlist::compile(net));
    }
    {
        // Double negation, Buf chains and output-side inversion.
        Netlist net("chains");
        const NodeId a = net.addInput();
        const NodeId b = net.addInput();
        const NodeId n1 = net.addGate(GK::Not, a);
        const NodeId n2 = net.addGate(GK::Not, n1);  // ~~a
        const NodeId buf = net.addGate(GK::Buf, n2);
        const NodeId buf2 = net.addGate(GK::Buf, buf);
        const NodeId g = net.addGate(GK::And, buf2, b);
        net.markOutput(net.addGate(GK::Not, g));  // And -> Nand dual
        const CompiledNetlist compiled = CompiledNetlist::compile(net);
        EXPECT_GT(compiled.stats().fusedOps, 0u);
        EXPECT_LT(compiled.instructionCount(), net.gateCount());
        crossCheck(net, compiled);
    }
    {
        // Full adder + half adder: Xor3 and HalfAdd fusion.
        Netlist net("adder_cell");
        const NodeId a = net.addInput();
        const NodeId b = net.addInput();
        const NodeId cin = net.addInput();
        const NodeId axb = net.addGate(GK::Xor, a, b);
        net.markOutput(net.addGate(GK::Xor, axb, cin));    // sum -> Xor3
        net.markOutput(net.addGate(GK::Maj, a, b, cin));   // carry
        const NodeId hs = net.addGate(GK::Xor, a, cin);    // half-adder pair
        const NodeId hc = net.addGate(GK::And, a, cin);
        net.markOutput(hs);
        net.markOutput(hc);
        const CompiledNetlist compiled = CompiledNetlist::compile(net);
        // 7 gates -> Xor3 + Maj + HalfAdd = 3 instructions.
        EXPECT_EQ(compiled.instructionCount(), 3u);
        crossCheck(net, compiled);
    }
}

TEST(KernelFusion, AndOrTreeWideningPreservesSemantics) {
    using GK = GateKind;
    // An OR-compressor level and an AND-tree level: the single-use inner
    // gate of each pair must widen to one Or3 / And3 instruction.
    Netlist net("compressor");
    const NodeId a = net.addInput();
    const NodeId b = net.addInput();
    const NodeId c = net.addInput();
    const NodeId d = net.addInput();
    const NodeId orInner = net.addGate(GK::Or, a, b);
    net.markOutput(net.addGate(GK::Or, orInner, c));   // -> Or3(a, b, c)
    const NodeId andInner = net.addGate(GK::And, b, c);
    net.markOutput(net.addGate(GK::And, d, andInner)); // -> And3 (inner on b side)
    // A multi-use inner gate must NOT be absorbed: both consumers and the
    // output read it.
    const NodeId shared = net.addGate(GK::Or, c, d);
    net.markOutput(net.addGate(GK::Or, shared, a));
    net.markOutput(shared);
    const CompiledNetlist compiled = CompiledNetlist::compile(net);
    // or-pair -> Or3, and-pair -> And3, shared Or kept + its consumer.
    EXPECT_EQ(compiled.instructionCount(), 4u);
    EXPECT_GE(compiled.stats().fusedOps, 2u);
    crossCheck(net, compiled);
    // Bit-identical across every backend (the new kernel-table entries).
    for (const kernels::Backend* backend : kernels::availableBackends()) {
        CompiledNetlist::Options options;
        options.backend = backend;
        crossCheck(net, CompiledNetlist::compile(net, options));
    }
}

TEST(KernelFusion, GeneratorCircuitsShrink) {
    const Netlist net = gen::wallaceMultiplier(6);  // 12-bit space: exhaustive check
    const CompiledNetlist fused = CompiledNetlist::compile(net);
    CompiledNetlist::Options plain;
    plain.fuseOps = false;
    const CompiledNetlist unfused = CompiledNetlist::compile(net, plain);
    EXPECT_LT(fused.instructionCount(), unfused.instructionCount());
    EXPECT_GT(fused.stats().gatesFused, 0u);
    EXPECT_EQ(unfused.stats().gatesFused, 0u);
    crossCheck(net, fused);
    crossCheck(net, unfused);
}

TEST(KernelFusion, SpecializedPlanBitIdentical) {
    const Netlist net = gen::wallaceMultiplier(16);  // above the auto threshold
    const CompiledNetlist generic = CompiledNetlist::compile(net);
    ASSERT_FALSE(generic.specialized());
    CompiledNetlist forced = CompiledNetlist::compile(net);
    forced.specialize();
    ASSERT_TRUE(forced.specialized());
    BatchSimulator a(generic), b(forced);
    ASSERT_EQ(generic.blockWords(), forced.blockWords());
    const std::size_t W = generic.blockWords();
    std::vector<CompiledNetlist::Word> in(net.inputCount() * W);
    util::Rng rng(0x77);
    for (auto& w : in) w = rng.uniformInt(0, ~std::uint64_t{0});
    std::vector<CompiledNetlist::Word> outA(net.outputCount() * W), outB(outA.size());
    a.evaluate(in, outA);
    b.evaluate(in, outB);
    EXPECT_EQ(outA, outB);
}

TEST(KernelBackends, ErrorReportsBitIdenticalAcrossBackends) {
    const Netlist mul = gen::truncatedMultiplier(8, 4);
    const auto mulSig = gen::multiplierSignature(8);
    const Netlist add = gen::loaAdder(16, 6);
    const auto addSig = gen::adderSignature(16);
    error::ErrorAnalysisConfig sampled;
    sampled.exhaustiveLimit = 1;  // force the sampled path
    sampled.sampleCount = 1u << 12;

    const error::ErrorReport refMul = error::analyzeError(mul, mulSig);
    const error::ErrorReport refAdd = error::analyzeError(add, addSig, sampled);
    for (const kernels::Backend* backend : kernels::availableBackends()) {
        kernels::ScopedBackendOverride override(backend);
        const error::ErrorReport m = error::analyzeError(mul, mulSig);
        const error::ErrorReport s = error::analyzeError(add, addSig, sampled);
        EXPECT_EQ(m.med, refMul.med) << backend->name;
        EXPECT_EQ(m.meanAbsoluteError, refMul.meanAbsoluteError) << backend->name;
        EXPECT_EQ(m.worstCaseError, refMul.worstCaseError) << backend->name;
        EXPECT_EQ(m.meanRelativeError, refMul.meanRelativeError) << backend->name;
        EXPECT_EQ(m.errorProbability, refMul.errorProbability) << backend->name;
        EXPECT_EQ(m.meanSquaredError, refMul.meanSquaredError) << backend->name;
        EXPECT_EQ(m.vectorsEvaluated, refMul.vectorsEvaluated) << backend->name;
        EXPECT_EQ(s.med, refAdd.med) << backend->name;
        EXPECT_EQ(s.meanSquaredError, refAdd.meanSquaredError) << backend->name;
        EXPECT_EQ(s.errorProbability, refAdd.errorProbability) << backend->name;
    }
}

TEST(KernelBackends, FlowResultBitIdenticalAcrossBackends) {
    // A whole AutoAxFpgaFlow::Result (Sobel workload: adder menu only, the
    // cheapest full pipeline), re-run per backend from component
    // characterization up — every quality figure must be the same bits.
    const auto runFlow = [] {
        std::vector<autoax::Component> adders;
        for (auto net : {gen::rippleCarryAdder(16), gen::loaAdder(16, 8)}) {
            autoax::Component c;
            c.name = net.name();
            c.signature = gen::adderSignature(16);
            c.error = error::analyzeError(net, c.signature);
            c.fpga = synth::FpgaFlow().implement(net);
            c.netlist = std::move(net);
            adders.push_back(std::move(c));
        }
        autoax::SobelAccelerator model(std::move(adders));
        autoax::AutoAxFpgaFlow::Config cfg;
        cfg.trainConfigs = 6;
        cfg.hillIterations = 20;
        cfg.archiveSeed = 4;
        cfg.archiveCap = 12;
        cfg.imageSize = 32;
        cfg.sceneCount = 1;
        cfg.threads = 1;
        return autoax::AutoAxFpgaFlow(cfg).run(model);
    };
    const autoax::AutoAxFpgaFlow::Result ref = runFlow();
    for (const kernels::Backend* backend : kernels::availableBackends()) {
        kernels::ScopedBackendOverride override(backend);
        const autoax::AutoAxFpgaFlow::Result r = runFlow();
        EXPECT_EQ(r.totalRealEvaluations, ref.totalRealEvaluations) << backend->name;
        ASSERT_EQ(r.trainingSet.size(), ref.trainingSet.size()) << backend->name;
        for (std::size_t i = 0; i < ref.trainingSet.size(); ++i) {
            EXPECT_EQ(r.trainingSet[i].config, ref.trainingSet[i].config) << backend->name;
            EXPECT_EQ(r.trainingSet[i].ssim, ref.trainingSet[i].ssim) << backend->name;
        }
        ASSERT_EQ(r.scenarios.size(), ref.scenarios.size()) << backend->name;
        for (std::size_t s = 0; s < ref.scenarios.size(); ++s) {
            EXPECT_EQ(r.scenarios[s].realEvaluations, ref.scenarios[s].realEvaluations)
                << backend->name;
            ASSERT_EQ(r.scenarios[s].autoax.size(), ref.scenarios[s].autoax.size())
                << backend->name;
            for (std::size_t p = 0; p < ref.scenarios[s].autoax.size(); ++p) {
                EXPECT_EQ(r.scenarios[s].autoax[p].ssim, ref.scenarios[s].autoax[p].ssim)
                    << backend->name;
                EXPECT_EQ(r.scenarios[s].autoax[p].config, ref.scenarios[s].autoax[p].config)
                    << backend->name;
            }
        }
    }
}

}  // namespace
}  // namespace axf::circuit
