#include <gtest/gtest.h>

#include <set>

#include "src/error/error_metrics.hpp"
#include "src/gen/library.hpp"

namespace axf::gen {
namespace {

LibraryConfig smallConfig(circuit::ArithOp op, int width) {
    LibraryConfig cfg;
    cfg.op = op;
    cfg.width = width;
    cfg.medBudgets = {0.005};
    cfg.cgpGenerations = 30;
    return cfg;
}

TEST(Library, StructuralFamiliesArePopulated) {
    const AcLibrary adders = buildStructuralFamilies(smallConfig(circuit::ArithOp::Adder, 8));
    EXPECT_GT(adders.size(), 30u);
    const AcLibrary mults =
        buildStructuralFamilies(smallConfig(circuit::ArithOp::Multiplier, 8));
    EXPECT_GT(mults.size(), 30u);
}

TEST(Library, EntriesAreConsistent) {
    const LibraryConfig cfg = smallConfig(circuit::ArithOp::Multiplier, 4);
    for (const LibraryCircuit& entry : buildLibrary(cfg)) {
        EXPECT_FALSE(entry.name.empty());
        EXPECT_FALSE(entry.origin.empty());
        EXPECT_EQ(entry.signature.op, circuit::ArithOp::Multiplier);
        EXPECT_EQ(static_cast<int>(entry.netlist.inputCount()), entry.signature.inputWidth());
        EXPECT_EQ(static_cast<int>(entry.netlist.outputCount()), entry.signature.outputWidth());
        entry.netlist.validate();
        // Stored error must match a fresh analysis with the same config.
        const error::ErrorReport fresh =
            error::analyzeError(entry.netlist, entry.signature, cfg.errorConfig);
        EXPECT_DOUBLE_EQ(entry.error.med, fresh.med) << entry.name;
    }
}

TEST(Library, DeduplicatesByStructure) {
    const AcLibrary lib = buildLibrary(smallConfig(circuit::ArithOp::Adder, 4));
    std::set<std::uint64_t> hashes;
    for (const LibraryCircuit& entry : lib) hashes.insert(entry.netlist.structuralHash());
    EXPECT_EQ(hashes.size(), lib.size());
}

TEST(Library, ContainsExactAndApproximateDesigns) {
    const AcLibrary lib = buildLibrary(smallConfig(circuit::ArithOp::Adder, 8));
    bool anyExact = false, anyApprox = false;
    for (const LibraryCircuit& entry : lib) {
        if (entry.error.isExact()) anyExact = true;
        if (entry.error.med > 0.0) anyApprox = true;
    }
    EXPECT_TRUE(anyExact);
    EXPECT_TRUE(anyApprox);
}

TEST(Library, CgpContributesNovelDesigns) {
    LibraryConfig cfg = smallConfig(circuit::ArithOp::Multiplier, 4);
    cfg.cgpGenerations = 60;
    cfg.medBudgets = {0.002, 0.02};
    const AcLibrary lib = buildLibrary(cfg);
    std::size_t cgp = 0;
    for (const LibraryCircuit& entry : lib)
        if (entry.origin == "cgp") ++cgp;
    EXPECT_GT(cgp, 10u);
}

TEST(Library, StructuralOnlySkipsEvolution) {
    LibraryConfig cfg = smallConfig(circuit::ArithOp::Multiplier, 4);
    cfg.structuralOnly = true;
    for (const LibraryCircuit& entry : buildLibrary(cfg)) EXPECT_NE(entry.origin, "cgp");
}

TEST(Library, MaxCircuitsThinningKeepsSpread) {
    LibraryConfig cfg = smallConfig(circuit::ArithOp::Adder, 8);
    cfg.maxCircuits = 20;
    const AcLibrary lib = buildLibrary(cfg);
    EXPECT_EQ(lib.size(), 20u);
    double minMed = 1e9, maxMed = -1.0;
    for (const LibraryCircuit& entry : lib) {
        minMed = std::min(minMed, entry.error.med);
        maxMed = std::max(maxMed, entry.error.med);
    }
    EXPECT_DOUBLE_EQ(minMed, 0.0);  // an exact design survives thinning
    EXPECT_GT(maxMed, 0.0);
}

TEST(Library, DeterministicBuilds) {
    const LibraryConfig cfg = smallConfig(circuit::ArithOp::Multiplier, 4);
    const AcLibrary a = buildLibrary(cfg);
    const AcLibrary b = buildLibrary(cfg);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].netlist.structuralHash(), b[i].netlist.structuralHash());
}

TEST(Library, SignatureHelper) {
    const LibraryConfig cfg = smallConfig(circuit::ArithOp::Multiplier, 8);
    EXPECT_EQ(librarySignature(cfg).toString(), "8x8 multiplier");
}

}  // namespace
}  // namespace axf::gen
