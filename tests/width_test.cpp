// Width-set invariance tests: the block width W in {4, 8, 16} is purely an
// execution-shape knob — raw wide runs, exhaustive block enumeration, whole
// ErrorReports, ResilienceReports and a complete AutoAxFpgaFlow::Result
// must be bit-identical at every width, on every backend the CPU can
// execute, at any thread count.  Also covers the forced-width /
// forced-backend escape hatches (unknown values warn and fall back, they
// never abort) and the Stats surface of the chosen width.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/autoax/dse.hpp"
#include "src/autoax/sobel.hpp"
#include "src/circuit/batch_sim.hpp"
#include "src/circuit/kernels.hpp"
#include "src/error/error_metrics.hpp"
#include "src/fault/fault.hpp"
#include "src/gen/adders.hpp"
#include "src/gen/multipliers.hpp"
#include "src/synth/fpga.hpp"
#include "src/util/bytes.hpp"
#include "src/util/rng.hpp"

namespace axf::circuit {
namespace {

using Word = CompiledNetlist::Word;

/// Random DAG over the full gate alphabet (mirrors batch_sim_test), so
/// after fusion every kernel opcode is exercised at every width.
Netlist randomNetlist(int inputs, int gates, int outputs, util::Rng& rng) {
    static constexpr GateKind kAllKinds[] = {
        GateKind::Const0, GateKind::Const1, GateKind::Buf,    GateKind::Not,
        GateKind::And,    GateKind::Or,     GateKind::Xor,    GateKind::Nand,
        GateKind::Nor,    GateKind::Xnor,   GateKind::AndNot, GateKind::OrNot,
        GateKind::Mux,    GateKind::Maj};
    Netlist net("random");
    for (int i = 0; i < inputs; ++i) net.addInput();
    for (int g = 0; g < gates; ++g) {
        const GateKind kind = kAllKinds[rng.index(std::size(kAllKinds))];
        const auto pick = [&] { return static_cast<NodeId>(rng.index(net.nodeCount())); };
        if (kind == GateKind::Const0 || kind == GateKind::Const1)
            net.addConst(kind == GateKind::Const1);
        else
            net.addGate(kind, pick(), pick(), pick());
    }
    for (int o = 0; o < outputs; ++o)
        net.markOutput(static_cast<NodeId>(rng.index(net.nodeCount())));
    return net;
}

/// Evaluates kMaxWideWords words of lane data per input through a program
/// compiled at width W (kMaxWideWords / W dispatches) and returns the
/// reassembled word-major output planes — the same lanes in the same word
/// positions regardless of W, so results compare bitwise across widths.
std::vector<Word> sweepAtWidth(const Netlist& net, const CompiledNetlist& compiled,
                               const std::vector<Word>& laneData) {
    constexpr std::size_t kTotal = kernels::kMaxWideWords;
    const std::size_t W = compiled.blockWords();
    BatchSimulator sim(compiled);
    std::vector<Word> in(net.inputCount() * W);
    std::vector<Word> out(net.outputCount() * W);
    std::vector<Word> planes(net.outputCount() * kTotal);
    for (std::size_t base = 0; base < kTotal; base += W) {
        for (std::size_t i = 0; i < net.inputCount(); ++i)
            for (std::size_t w = 0; w < W; ++w) in[i * W + w] = laneData[i * kTotal + base + w];
        sim.evaluate(in, out);
        for (std::size_t o = 0; o < net.outputCount(); ++o)
            for (std::size_t w = 0; w < W; ++w) planes[o * kTotal + base + w] = out[o * W + w];
    }
    return planes;
}

TEST(WidthSet, RunsBitIdenticalAcrossWidthsAndBackends) {
    util::Rng rng(0x51DE);
    for (int trial = 0; trial < 6; ++trial) {
        const Netlist net = randomNetlist(4 + static_cast<int>(rng.index(7)),
                                          30 + static_cast<int>(rng.index(80)),
                                          1 + static_cast<int>(rng.index(8)), rng);
        std::vector<Word> laneData(net.inputCount() * kernels::kMaxWideWords);
        for (Word& w : laneData) w = rng.uniformInt(0, ~std::uint64_t{0});
        for (const kernels::Backend* backend : kernels::availableBackends()) {
            CompiledNetlist::Options options;
            options.backend = backend;
            options.blockWords = kernels::kBaseWideWords;
            const std::vector<Word> reference =
                sweepAtWidth(net, CompiledNetlist::compile(net, options), laneData);
            for (const std::size_t words : kernels::kWideWidths) {
                options.blockWords = words;
                const CompiledNetlist compiled = CompiledNetlist::compile(net, options);
                EXPECT_EQ(compiled.blockWords(), words);
                EXPECT_EQ(sweepAtWidth(net, compiled, laneData), reference)
                    << backend->name << " W=" << words;
            }
        }
    }
}

TEST(WidthSet, FillExhaustiveBlockWideAgainstScalarBitReference) {
    // Scalar reference: bit `bit` of lane L equals bit `bit` of the
    // enumerated index (base + L), at W = 8 and W = 16 (the W <= 4 shapes
    // are pinned in batch_sim_test).
    for (const std::size_t W : {std::size_t{8}, std::size_t{16}}) {
        for (const std::uint64_t base : {0ull, 1024ull, 64512ull}) {
            for (const int totalBits : {16, 11}) {
                std::vector<Word> in(static_cast<std::size_t>(totalBits) * W);
                fillExhaustiveBlock(in, totalBits, base, W);
                for (std::uint64_t lane = 0; lane < W * 64; ++lane) {
                    const std::uint64_t index = base + lane;
                    for (int bit = 0; bit < totalBits; ++bit) {
                        const std::uint64_t got =
                            (in[static_cast<std::size_t>(bit) * W + lane / 64] >> (lane % 64)) &
                            1u;
                        ASSERT_EQ(got, (index >> bit) & 1u)
                            << "W=" << W << " base=" << base << " lane=" << lane
                            << " bit=" << bit;
                    }
                }
            }
        }
    }
}

TEST(WidthSet, ErrorReportsBitIdenticalAcrossWidths) {
    const Netlist mul = gen::truncatedMultiplier(8, 4);
    const auto mulSig = gen::multiplierSignature(8);
    const Netlist add = gen::loaAdder(16, 6);
    const auto addSig = gen::adderSignature(16);
    error::ErrorAnalysisConfig sampled;
    sampled.exhaustiveLimit = 1;  // force the sampled path
    sampled.sampleCount = 1u << 12;

    const error::ErrorReport refMul = error::analyzeError(mul, mulSig);
    const error::ErrorReport refAdd = error::analyzeError(add, addSig, sampled);
    for (const std::size_t words : kernels::kWideWidths) {
        kernels::ScopedWidthOverride override(words);
        const error::ErrorReport m = error::analyzeError(mul, mulSig);
        const error::ErrorReport s = error::analyzeError(add, addSig, sampled);
        EXPECT_EQ(m.med, refMul.med) << words;
        EXPECT_EQ(m.meanAbsoluteError, refMul.meanAbsoluteError) << words;
        EXPECT_EQ(m.worstCaseError, refMul.worstCaseError) << words;
        EXPECT_EQ(m.meanRelativeError, refMul.meanRelativeError) << words;
        EXPECT_EQ(m.errorProbability, refMul.errorProbability) << words;
        EXPECT_EQ(m.meanSquaredError, refMul.meanSquaredError) << words;
        EXPECT_EQ(m.vectorsEvaluated, refMul.vectorsEvaluated) << words;
        EXPECT_EQ(s.med, refAdd.med) << words;
        EXPECT_EQ(s.meanSquaredError, refAdd.meanSquaredError) << words;
        EXPECT_EQ(s.errorProbability, refAdd.errorProbability) << words;
    }
}

std::vector<std::uint8_t> serialized(const fault::ResilienceReport& report) {
    util::ByteWriter out;
    report.serialize(out);
    return out.take();
}

TEST(WidthSet, ResilienceReportBitIdenticalAcrossWidthsAndThreads) {
    // The fault campaign accumulates per-256-lane sub-partials precisely so
    // wider blocks reproduce the W = 4 report bit-for-bit — including the
    // sampled path, where a wider block retires blockWords-1 faults per
    // pass instead of 3.  Serialized-report equality pins every byte, and
    // the thread axis pins the width x scheduling interaction.
    const Netlist net = gen::truncatedMultiplier(6, 2);
    const auto sig = gen::multiplierSignature(6);
    for (const bool exhaustive : {true, false}) {
        fault::CampaignConfig config;
        if (!exhaustive) {
            config.analysis.exhaustiveLimit = 1;
            config.analysis.sampleCount = 1u << 9;
        }
        config.analysis.threads = 1;
        const std::vector<std::uint8_t> reference =
            serialized(fault::analyzeResilience(net, sig, config));
        for (const std::size_t words : kernels::kWideWidths) {
            kernels::ScopedWidthOverride override(words);
            for (const int threads : {1, 0, 4}) {
                config.analysis.threads = threads;
                EXPECT_EQ(serialized(fault::analyzeResilience(net, sig, config)), reference)
                    << "W=" << words << " threads=" << threads
                    << " exhaustive=" << exhaustive;
            }
        }
    }
}

TEST(WidthSet, FlowResultBitIdenticalAcrossWidths) {
    // A whole AutoAxFpgaFlow::Result (Sobel workload: adder menu only, the
    // cheapest full pipeline), re-run per width from component
    // characterization up — every quality figure must be the same bits.
    const auto runFlow = [] {
        std::vector<autoax::Component> adders;
        for (auto net : {gen::rippleCarryAdder(16), gen::loaAdder(16, 8)}) {
            autoax::Component c;
            c.name = net.name();
            c.signature = gen::adderSignature(16);
            c.error = error::analyzeError(net, c.signature);
            c.fpga = synth::FpgaFlow().implement(net);
            c.netlist = std::move(net);
            adders.push_back(std::move(c));
        }
        autoax::SobelAccelerator model(std::move(adders));
        autoax::AutoAxFpgaFlow::Config cfg;
        cfg.trainConfigs = 6;
        cfg.hillIterations = 20;
        cfg.archiveSeed = 4;
        cfg.archiveCap = 12;
        cfg.imageSize = 32;
        cfg.sceneCount = 1;
        cfg.threads = 1;
        return autoax::AutoAxFpgaFlow(cfg).run(model);
    };
    const autoax::AutoAxFpgaFlow::Result ref = runFlow();
    for (const std::size_t words : kernels::kWideWidths) {
        kernels::ScopedWidthOverride override(words);
        const autoax::AutoAxFpgaFlow::Result r = runFlow();
        EXPECT_EQ(r.totalRealEvaluations, ref.totalRealEvaluations) << words;
        ASSERT_EQ(r.trainingSet.size(), ref.trainingSet.size()) << words;
        for (std::size_t i = 0; i < ref.trainingSet.size(); ++i) {
            EXPECT_EQ(r.trainingSet[i].config, ref.trainingSet[i].config) << words;
            EXPECT_EQ(r.trainingSet[i].ssim, ref.trainingSet[i].ssim) << words;
        }
        ASSERT_EQ(r.scenarios.size(), ref.scenarios.size()) << words;
        for (std::size_t s = 0; s < ref.scenarios.size(); ++s) {
            EXPECT_EQ(r.scenarios[s].realEvaluations, ref.scenarios[s].realEvaluations) << words;
            ASSERT_EQ(r.scenarios[s].autoax.size(), ref.scenarios[s].autoax.size()) << words;
            for (std::size_t p = 0; p < ref.scenarios[s].autoax.size(); ++p) {
                EXPECT_EQ(r.scenarios[s].autoax[p].ssim, ref.scenarios[s].autoax[p].ssim)
                    << words;
                EXPECT_EQ(r.scenarios[s].autoax[p].config, ref.scenarios[s].autoax[p].config)
                    << words;
            }
        }
    }
}

TEST(WidthSet, StatsSurfaceChosenWidth) {
    const Netlist net = gen::wallaceMultiplier(8);
    for (const std::size_t words : kernels::kWideWidths) {
        CompiledNetlist::Options options;
        options.blockWords = words;
        const CompiledNetlist compiled = CompiledNetlist::compile(net, options);
        EXPECT_EQ(compiled.stats().blockWords, words);
        EXPECT_EQ(compiled.blockWords(), words);
    }
    // ScopedWidthOverride steers the automatic choice; an explicit
    // Options::blockWords still wins over it.
    kernels::ScopedWidthOverride override(8);
    EXPECT_EQ(CompiledNetlist::compile(net).stats().blockWords, 8u);
    CompiledNetlist::Options explicitWords;
    explicitWords.blockWords = 4;
    EXPECT_EQ(CompiledNetlist::compile(net, explicitWords).stats().blockWords, 4u);
}

TEST(WidthSet, ScopedOverrideRejectsForeignWidths) {
    EXPECT_THROW(kernels::ScopedWidthOverride bad(7), std::invalid_argument);
    EXPECT_THROW(kernels::ScopedWidthOverride bad(2), std::invalid_argument);
    kernels::ScopedWidthOverride ok(0);  // 0 = restore automatic choice
    EXPECT_EQ(kernels::widthOverride(), 0u);
}

TEST(ForcedSelection, UnknownBackendWarnsAndFallsBack) {
    testing::internal::CaptureStderr();
    const kernels::Backend* backend = kernels::resolveForcedBackend("bogus");
    const std::string warning = testing::internal::GetCapturedStderr();
    EXPECT_EQ(backend, nullptr);
    EXPECT_NE(warning.find("AXF_FORCE_BACKEND=bogus"), std::string::npos) << warning;
    EXPECT_NE(warning.find("falling back"), std::string::npos) << warning;

    // A known name resolves silently.
    testing::internal::CaptureStderr();
    EXPECT_NE(kernels::resolveForcedBackend("portable"), nullptr);
    EXPECT_TRUE(testing::internal::GetCapturedStderr().empty());
}

TEST(ForcedSelection, UnknownWidthWarnsAndFallsBack) {
    testing::internal::CaptureStderr();
    const std::size_t width = kernels::resolveForcedWidth("7");
    const std::string warning = testing::internal::GetCapturedStderr();
    EXPECT_EQ(width, 0u);
    EXPECT_NE(warning.find("AXF_FORCE_WIDTH=7"), std::string::npos) << warning;
    EXPECT_NE(warning.find("falling back"), std::string::npos) << warning;

    testing::internal::CaptureStderr();
    for (const std::size_t words : kernels::kWideWidths)
        EXPECT_EQ(kernels::resolveForcedWidth(std::to_string(words)), words);
    EXPECT_TRUE(testing::internal::GetCapturedStderr().empty());
}

}  // namespace
}  // namespace axf::circuit
