#include <gtest/gtest.h>

#include <functional>
#include <set>

#include "src/error/error_metrics.hpp"
#include "src/gen/adders.hpp"

namespace axf::gen {
namespace {

using circuit::Netlist;

// ---------------------------------------------------------------------------
// Exact architectures: property sweep over widths x generators.
// ---------------------------------------------------------------------------

struct ExactAdderCase {
    const char* name;
    std::function<Netlist(int)> build;
};

class ExactAdders : public ::testing::TestWithParam<std::tuple<ExactAdderCase, int>> {};

TEST_P(ExactAdders, ComputesExactSumExhaustively) {
    const auto& [gc, width] = GetParam();
    const Netlist net = gc.build(width);
    EXPECT_EQ(static_cast<int>(net.inputCount()), 2 * width);
    EXPECT_EQ(static_cast<int>(net.outputCount()), width + 1);
    net.validate();
    // Exhaustive up to 2^(2w) = 16M vectors is too slow for wide cases;
    // the default config caps exhaustiveness at 2^16 and samples beyond.
    EXPECT_TRUE(error::isFunctionallyExact(net, adderSignature(width))) << net.name();
}

INSTANTIATE_TEST_SUITE_P(
    Architectures, ExactAdders,
    ::testing::Combine(
        ::testing::Values(ExactAdderCase{"rca", [](int n) { return rippleCarryAdder(n); }},
                          ExactAdderCase{"cla", [](int n) { return carryLookaheadAdder(n); }},
                          ExactAdderCase{"csel2", [](int n) { return carrySelectAdder(n, 2); }},
                          ExactAdderCase{"csel3", [](int n) { return carrySelectAdder(n, 3); }},
                          ExactAdderCase{"ks", [](int n) { return koggeStoneAdder(n); }}),
        ::testing::Values(2, 3, 4, 5, 7, 8, 12, 16)),
    [](const auto& info) {
        return std::string(std::get<0>(info.param).name) + "_w" +
               std::to_string(std::get<1>(info.param));
    });

TEST(ExactAddersShape, KoggeStoneIsShallowerThanRipple) {
    EXPECT_LT(koggeStoneAdder(16).depth(), rippleCarryAdder(16).depth());
}

TEST(ExactAddersShape, WidthBoundsChecked) {
    EXPECT_THROW(rippleCarryAdder(1), std::invalid_argument);
    EXPECT_THROW(rippleCarryAdder(31), std::invalid_argument);
    EXPECT_THROW(carryLookaheadAdder(8, 1), std::invalid_argument);
    EXPECT_THROW(carrySelectAdder(8, 0), std::invalid_argument);
    EXPECT_THROW(acaAdder(8, 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Approximate architectures
// ---------------------------------------------------------------------------

TEST(ApproxAdders, ZeroApproximateBitsIsExact) {
    for (const auto& build : {loaAdder, truncatedAdder, etaAdder}) {
        const Netlist net = build(6, 0);
        EXPECT_TRUE(error::isFunctionallyExact(net, adderSignature(6))) << net.name();
    }
}

TEST(ApproxAdders, AcaExactWhenWindowCoversWidth) {
    EXPECT_TRUE(error::isFunctionallyExact(acaAdder(6, 6), adderSignature(6)));
    EXPECT_TRUE(error::isFunctionallyExact(acaAdder(6, 9), adderSignature(6)));
    EXPECT_FALSE(error::isFunctionallyExact(acaAdder(8, 2), adderSignature(8)));
}

class ApproxAdderFamily
    : public ::testing::TestWithParam<std::function<Netlist(int, int)>> {};

TEST_P(ApproxAdderFamily, ErrorGrowsMonotonicallyWithApproximateBits) {
    const auto& build = GetParam();
    const int n = 8;
    double previous = -1.0;
    for (int k = 1; k < n; ++k) {
        const error::ErrorReport report = error::analyzeError(build(n, k), adderSignature(n));
        EXPECT_GE(report.med, previous) << "k=" << k;
        previous = report.med;
    }
    EXPECT_GT(previous, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Families, ApproxAdderFamily,
    ::testing::Values(std::function<Netlist(int, int)>(loaAdder),
                      std::function<Netlist(int, int)>(truncatedAdder),
                      std::function<Netlist(int, int)>(etaAdder)));

TEST(ApproxAdders, LoaKnownSmallCase) {
    // 2-bit LOA with k=1: s0 = a0|b0, upper exact with carry seed a0&b0.
    const Netlist net = loaAdder(2, 1);
    const error::ErrorReport report = error::analyzeError(net, adderSignature(2));
    // Only s0 can be wrong, and only when a0=b0=1 (or = 1 but sum bit 0).
    EXPECT_DOUBLE_EQ(report.worstCaseError, 1.0);
    EXPECT_DOUBLE_EQ(report.errorProbability, 0.25);
}

TEST(ApproxAdders, TruncatedErrorIsBoundedByDroppedBits) {
    const int n = 8, k = 3;
    const error::ErrorReport report = error::analyzeError(truncatedAdder(n, k), adderSignature(n));
    // Worst case: the dropped lower-part carry and sum bits.
    EXPECT_LE(report.worstCaseError, static_cast<double>((1 << (k + 1)) - 1));
}

TEST(ApproxAdders, CellKindsAreDistinctDesignPoints) {
    std::set<std::uint64_t> hashes;
    std::set<double> meds;
    for (ApproxFaKind kind : {ApproxFaKind::PassA, ApproxFaKind::OrSum, ApproxFaKind::XorNoCarry,
                              ApproxFaKind::CarrySkip}) {
        const Netlist net = approxCellAdder(8, 4, kind);
        hashes.insert(net.structuralHash());
        meds.insert(error::analyzeError(net, adderSignature(8)).med);
        EXPECT_EQ(net.outputCount(), 9u);
    }
    EXPECT_EQ(hashes.size(), 4u);
    EXPECT_GE(meds.size(), 3u);  // at least three distinct error levels
}

TEST(ApproxAdders, GearExactWhenWindowCoversWidth) {
    // GeAr(n, R, P) with R + P = n degenerates to one exact sub-adder.
    EXPECT_TRUE(error::isFunctionallyExact(gearAdder(8, 4, 4), adderSignature(8)));
    EXPECT_TRUE(error::isFunctionallyExact(gearAdder(6, 2, 4), adderSignature(6)));
    EXPECT_FALSE(error::isFunctionallyExact(gearAdder(8, 2, 2), adderSignature(8)));
    EXPECT_THROW(gearAdder(8, 0, 2), std::invalid_argument);
    EXPECT_THROW(gearAdder(8, 5, 4), std::invalid_argument);
}

TEST(ApproxAdders, GearMorePredictionBitsReduceError) {
    double previous = 1.0;
    for (int p : {0, 2, 4, 6}) {
        const error::ErrorReport r = error::analyzeError(gearAdder(8, 2, p), adderSignature(8));
        EXPECT_LE(r.med, previous + 1e-12) << "P=" << p;
        previous = r.med;
    }
}

TEST(ApproxAdders, EtaIIExactUpToTwoBlocks) {
    // The first block's generated carry equals the true carry, so up to two
    // blocks ETA-II is exact; from three blocks on, cut chains cause errors.
    EXPECT_TRUE(error::isFunctionallyExact(etaIIAdder(8, 8), adderSignature(8)));
    EXPECT_TRUE(error::isFunctionallyExact(etaIIAdder(8, 4), adderSignature(8)));
    EXPECT_FALSE(error::isFunctionallyExact(etaIIAdder(8, 2), adderSignature(8)));
    EXPECT_THROW(etaIIAdder(8, 0), std::invalid_argument);
}

TEST(ApproxAdders, EtaIISmallerBlocksMoreError) {
    const double med2 = error::analyzeError(etaIIAdder(12, 2), adderSignature(12)).med;
    const double med3 = error::analyzeError(etaIIAdder(12, 3), adderSignature(12)).med;
    const double med6 = error::analyzeError(etaIIAdder(12, 6), adderSignature(12)).med;
    EXPECT_GT(med2, med3);
    EXPECT_GT(med3, med6);
}

TEST(ApproxAdders, FullyApproximateInterfaceStillValid) {
    for (const auto& build : {loaAdder, truncatedAdder, etaAdder}) {
        const Netlist net = build(4, 4);
        EXPECT_EQ(net.outputCount(), 5u);
        net.validate();
    }
    const Netlist cell = approxCellAdder(4, 4, ApproxFaKind::OrSum);
    EXPECT_EQ(cell.outputCount(), 5u);
}

}  // namespace
}  // namespace axf::gen
