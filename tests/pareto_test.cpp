#include <gtest/gtest.h>

#include <set>

#include "src/core/pareto.hpp"
#include "src/util/rng.hpp"

namespace axf::core {
namespace {

std::vector<ParetoPoint> pts(std::initializer_list<std::pair<double, double>> xs) {
    std::vector<ParetoPoint> out;
    std::size_t i = 0;
    for (const auto& [x, y] : xs) out.push_back(ParetoPoint{x, y, i++});
    return out;
}

bool dominates(const ParetoPoint& a, const ParetoPoint& b) {
    return a.x <= b.x && a.y <= b.y && (a.x < b.x || a.y < b.y);
}

TEST(Pareto, HandCase) {
    // (1,5) (2,3) (3,4) (4,1): front = {(1,5),(2,3),(4,1)}.
    const auto points = pts({{1, 5}, {2, 3}, {3, 4}, {4, 1}});
    const std::vector<std::size_t> front = paretoFront(points);
    std::set<std::size_t> indices;
    for (std::size_t pos : front) indices.insert(points[pos].index);
    EXPECT_EQ(indices, (std::set<std::size_t>{0, 1, 3}));
}

TEST(Pareto, DuplicatesAllKept) {
    const auto points = pts({{1, 1}, {1, 1}, {2, 2}});
    const std::vector<std::size_t> front = paretoFront(points);
    EXPECT_EQ(front.size(), 2u);
}

TEST(Pareto, SingleAndEmpty) {
    EXPECT_TRUE(paretoFront({}).empty());
    EXPECT_EQ(paretoFront(pts({{1, 1}})).size(), 1u);
}

TEST(Pareto, FrontMembersAreMutuallyNonDominatedProperty) {
    util::Rng rng(1);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<ParetoPoint> points(60);
        for (std::size_t i = 0; i < points.size(); ++i)
            points[i] = ParetoPoint{rng.uniformReal(0, 1), rng.uniformReal(0, 1), i};
        const std::vector<std::size_t> front = paretoFront(points);
        ASSERT_FALSE(front.empty());
        for (std::size_t a : front) {
            for (std::size_t b : front) {
                if (a == b) continue;
                EXPECT_FALSE(dominates(points[a], points[b]));
            }
        }
        // Completeness: every non-front point is dominated by some front point.
        std::set<std::size_t> inFront(front.begin(), front.end());
        for (std::size_t i = 0; i < points.size(); ++i) {
            if (inFront.count(i)) continue;
            bool dominated = false;
            for (std::size_t f : front) dominated = dominated || dominates(points[f], points[i]);
            EXPECT_TRUE(dominated) << "point " << i << " neither on front nor dominated";
        }
    }
}

TEST(Pareto, SuccessiveFrontsPartitionAndNest) {
    util::Rng rng(2);
    std::vector<ParetoPoint> points(40);
    for (std::size_t i = 0; i < points.size(); ++i)
        points[i] = ParetoPoint{rng.uniformReal(0, 1), rng.uniformReal(0, 1), i};
    const auto fronts = successiveParetoFronts(points, 4);
    ASSERT_GE(fronts.size(), 2u);
    std::set<std::size_t> seen;
    for (const auto& front : fronts) {
        EXPECT_FALSE(front.empty());
        for (std::size_t pos : front) EXPECT_TRUE(seen.insert(pos).second) << "overlap";
    }
    EXPECT_LE(seen.size(), points.size());
    // F1 must equal the plain Pareto front.
    const std::vector<std::size_t> f1 = paretoFront(points);
    EXPECT_EQ(std::set<std::size_t>(fronts[0].begin(), fronts[0].end()),
              std::set<std::size_t>(f1.begin(), f1.end()));
}

TEST(Pareto, SuccessiveFrontsExhaustSmallSets) {
    const auto points = pts({{1, 1}, {2, 2}, {3, 3}});
    const auto fronts = successiveParetoFronts(points, 10);
    EXPECT_EQ(fronts.size(), 3u);  // one point per front, then exhausted
    std::size_t total = 0;
    for (const auto& f : fronts) total += f.size();
    EXPECT_EQ(total, 3u);
}

TEST(Pareto, CoverageByIndex) {
    std::vector<ParetoPoint> reference = {{0, 0, 10}, {0, 0, 11}, {0, 0, 12}, {0, 0, 13}};
    std::vector<ParetoPoint> candidate = {{9, 9, 11}, {9, 9, 13}, {9, 9, 99}};
    EXPECT_DOUBLE_EQ(paretoCoverage(candidate, reference), 0.5);
    EXPECT_DOUBLE_EQ(paretoCoverage({}, reference), 0.0);
    EXPECT_DOUBLE_EQ(paretoCoverage(candidate, {}), 1.0);
}

}  // namespace
}  // namespace axf::core
