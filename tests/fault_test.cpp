// Stuck-at fault-injection engine (src/fault): fault-injected runs vs the
// scalar mutate-the-netlist oracle across every gate kind and backend,
// site enumeration and equivalence collapsing, campaign determinism at any
// thread count and backend, cache integration (cold == warm), report
// serialization, and the resilience objective in both search problems.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <vector>

#include "src/autoax/dse.hpp"
#include "src/autoax/sobel.hpp"
#include "src/cache/characterization_cache.hpp"
#include "src/circuit/batch_sim.hpp"
#include "src/circuit/kernels.hpp"
#include "src/circuit/netlist.hpp"
#include "src/circuit/simulator.hpp"
#include "src/error/error_metrics.hpp"
#include "src/fault/fault.hpp"
#include "src/gen/adders.hpp"
#include "src/gen/cgp.hpp"
#include "src/gen/multipliers.hpp"
#include "src/synth/fpga.hpp"
#include "src/util/bytes.hpp"
#include "src/util/rng.hpp"

namespace axf::fault {
namespace {

using circuit::CompiledNetlist;
using circuit::GateKind;
using circuit::Netlist;
using Word = CompiledNetlist::Word;
// Direct run/runWithFaults calls here use the 4-word base width
// explicitly: run<W> is valid at any width in the set regardless of the
// program's chosen blockWords().  Wider widths are covered by width_test.
constexpr std::size_t kW = circuit::kernels::kBaseWideWords;

/// Aligned caller-owned workspace for direct CompiledNetlist::run /
/// runWithFaults calls (mirrors what BatchSimulator does internally).
struct Scratch {
    explicit Scratch(const CompiledNetlist& c) : storage(c.workspaceWords(kW) + 8, 0) {
        const std::size_t mis = reinterpret_cast<std::uintptr_t>(storage.data()) % 64;
        ws = storage.data() + (mis ? (64 - mis) / sizeof(Word) : 0);
        c.initWorkspace({ws, c.workspaceWords(kW)}, kW);
    }
    std::vector<Word> storage;
    Word* ws = nullptr;
};

/// A netlist exercising every GateKind plus the peephole-fusion triggers
/// (Xor3/And3/Or3 chains, the HalfAdd Xor+And pair, Mux, Maj, constants).
Netlist gateZoo() {
    Netlist net("gate_zoo");
    const auto a = net.addInput(), b = net.addInput(), c = net.addInput(), d = net.addInput();
    const auto k0 = net.addConst(false), k1 = net.addConst(true);
    const auto nNot = net.addGate(GateKind::Not, a);
    const auto nBuf = net.addGate(GateKind::Buf, b);
    const auto nAnd = net.addGate(GateKind::And, a, b);
    const auto nOr = net.addGate(GateKind::Or, c, d);
    const auto nXor = net.addGate(GateKind::Xor, a, c);
    const auto nNand = net.addGate(GateKind::Nand, b, c);
    const auto nNor = net.addGate(GateKind::Nor, a, d);
    const auto nXnor = net.addGate(GateKind::Xnor, b, d);
    const auto nAndNot = net.addGate(GateKind::AndNot, a, c);
    const auto nOrNot = net.addGate(GateKind::OrNot, b, c);
    const auto nMux = net.addGate(GateKind::Mux, nAnd, nOr, nXor);
    const auto nMaj = net.addGate(GateKind::Maj, a, b, c);
    // Fusion bait: single-consumer 2-gate chains and the half-adder pair.
    const auto x3 = net.addGate(GateKind::Xor, net.addGate(GateKind::Xor, a, b), c);
    const auto a3 = net.addGate(GateKind::And, net.addGate(GateKind::And, c, d), a);
    const auto o3 = net.addGate(GateKind::Or, net.addGate(GateKind::Or, a, b), d);
    const auto haS = net.addGate(GateKind::Xor, c, d);
    const auto haC = net.addGate(GateKind::And, c, d);
    const auto g = net.addGate(GateKind::And, nMaj, k1);
    const auto h = net.addGate(GateKind::Or, nMux, k0);
    for (const auto o : {nNot, nBuf, nNand, nNor, nXnor, nAndNot, nOrNot, x3, a3, o3, haS,
                         haC, g, h})
        net.markOutput(o);
    return net;
}

std::vector<Word> runPlain(const CompiledNetlist& c, const std::vector<Word>& in) {
    Scratch s(c);
    std::vector<Word> out(c.outputCount() * kW);
    c.run<kW>(in.data(), out.data(), s.ws);
    return out;
}

std::vector<Word> runFaulty(const CompiledNetlist& c, const std::vector<Word>& in,
                            std::span<const CompiledNetlist::InjectedFault> faults) {
    Scratch s(c);
    std::vector<Word> out(c.outputCount() * kW);
    c.runWithFaults<kW>(in.data(), out.data(), s.ws, faults);
    return out;
}

std::vector<Word> randomInputs(std::size_t inputs, std::uint64_t seed) {
    util::Rng rng(seed);
    std::vector<Word> in(inputs * kW);
    for (Word& w : in) w = rng.uniformInt(0, ~std::uint64_t{0});
    return in;
}

std::vector<std::uint8_t> serialized(const ResilienceReport& report) {
    util::ByteWriter out;
    report.serialize(out);
    return out.take();
}

TEST(FaultInjection, RunWithFaultsMatchesMutatedNetlistOracleAllBackends) {
    // Every fault site, both polarities, full-block mask: the injected run
    // must be bit-identical to compiling a mutated netlist with the node
    // replaced by a constant — per backend, on the same random inputs.
    const std::vector<Netlist> circuits = {gateZoo(), gen::truncatedMultiplier(6, 2)};
    for (const circuit::kernels::Backend* backend : circuit::kernels::availableBackends()) {
        circuit::kernels::ScopedBackendOverride override(backend);
        for (const Netlist& net : circuits) {
            const CompiledNetlist compiled = CompiledNetlist::compile(net);
            const std::vector<Word> in = randomInputs(net.inputCount(), 0xFA017);
            const SiteEnumeration en = enumerateFaultSites(compiled, /*includeInputFaults=*/true,
                                                           /*collapseEquivalent=*/false);
            ASSERT_GT(en.sites.size(), 0u);
            for (const FaultSite& site : en.sites) {
                CompiledNetlist::InjectedFault fault;
                fault.afterInstr = site.afterInstr;
                fault.slot = site.slot;
                fault.stuckTo = site.stuckTo;
                fault.mask.fill(~Word{0});
                const std::vector<Word> got =
                    runFaulty(compiled, in, std::span(&fault, 1));
                const CompiledNetlist oracle =
                    CompiledNetlist::compile(stuckAtNetlist(net, site.node, site.stuckTo));
                const std::vector<Word> want = runPlain(oracle, in);
                ASSERT_EQ(got, want)
                    << net.name() << " node " << site.node << " sa" << site.stuckTo
                    << " backend " << backend->name;
            }
        }
    }
}

TEST(FaultInjection, LaneGroupMaskIsolatesFaultsPerWord) {
    // The sampled campaign's packing: inputs replicated across all four
    // words, three different faults masked to words 1..3, word 0 clean.
    // Each word of the output must match the corresponding oracle.
    const Netlist net = gen::truncatedMultiplier(6, 2);
    const CompiledNetlist compiled = CompiledNetlist::compile(net);
    const SiteEnumeration en = enumerateFaultSites(compiled, true, false);
    ASSERT_GE(en.sites.size(), 3u);
    // Pick three sites spread over the enumeration (input + gate sites).
    const std::array<const FaultSite*, 3> picks = {
        &en.sites[0], &en.sites[en.sites.size() / 2], &en.sites[en.sites.size() - 1]};

    util::Rng rng(0x5EED);
    std::vector<Word> in(net.inputCount() * kW);
    for (std::size_t bit = 0; bit < net.inputCount(); ++bit) {
        const Word r = rng.uniformInt(0, ~std::uint64_t{0});
        for (std::size_t w = 0; w < kW; ++w) in[bit * kW + w] = r;  // replicated
    }

    std::vector<CompiledNetlist::InjectedFault> faults(3);
    for (std::size_t j = 0; j < 3; ++j) {
        faults[j].afterInstr = picks[j]->afterInstr;
        faults[j].slot = picks[j]->slot;
        faults[j].stuckTo = picks[j]->stuckTo;
        faults[j].mask = {};
        faults[j].mask[j + 1] = ~Word{0};
    }
    std::sort(faults.begin(), faults.end(), [](const auto& a, const auto& b) {
        const auto rank = [](std::uint32_t v) {
            return v == CompiledNetlist::kFaultAtInputs ? std::uint64_t{0}
                                                        : std::uint64_t{v} + 1;
        };
        return rank(a.afterInstr) < rank(b.afterInstr);
    });
    const std::vector<Word> packed = runFaulty(compiled, in, faults);
    const std::vector<Word> clean = runPlain(compiled, in);

    for (std::size_t o = 0; o < compiled.outputCount(); ++o)
        EXPECT_EQ(packed[o * kW + 0], clean[o * kW + 0]);  // reference word untouched
    for (std::size_t j = 0; j < 3; ++j) {
        // Map back from the sorted fault list to its word group.
        const std::size_t word = [&] {
            for (std::size_t w = 0; w < 3; ++w)
                if (faults[w].mask[j + 1] != 0) return j + 1;
            return j + 1;
        }();
        const CompiledNetlist::InjectedFault& f = faults[j];
        // Full-mask single-fault run: with replicated inputs every word
        // carries the faulted circuit, so word 0 is the oracle word.
        CompiledNetlist::InjectedFault solo = f;
        solo.mask.fill(~Word{0});
        const std::vector<Word> oracle = runFaulty(compiled, in, std::span(&solo, 1));
        const std::size_t faultWord = [&] {
            for (std::size_t w = 1; w < kW; ++w)
                if (f.mask[w] != 0) return w;
            return std::size_t{0};
        }();
        (void)word;
        for (std::size_t o = 0; o < compiled.outputCount(); ++o)
            EXPECT_EQ(packed[o * kW + faultWord], oracle[o * kW + 0])
                << "output " << o << " fault word " << faultWord;
    }
}

TEST(FaultSites, EnumerationOrderAndCollapsing) {
    const Netlist net = gen::truncatedMultiplier(6, 2);
    const CompiledNetlist compiled = CompiledNetlist::compile(net);
    const SiteEnumeration full = enumerateFaultSites(compiled, true, false);
    const SiteEnumeration collapsed = enumerateFaultSites(compiled, true, true);

    // Collapsing merges equivalent sites but conserves the site mass.
    EXPECT_LE(collapsed.sites.size(), full.sites.size());
    EXPECT_EQ(collapsed.totalSites, full.totalSites);
    std::uint32_t mass = 0;
    for (const FaultSite& s : collapsed.sites) mass += s.collapsed;
    EXPECT_EQ(mass, collapsed.totalSites);
    std::uint32_t fullMass = 0;
    for (const FaultSite& s : full.sites) {
        EXPECT_EQ(s.collapsed, 1u);
        fullMass += s.collapsed;
    }
    EXPECT_EQ(fullMass, full.totalSites);

    // Order contract: input sites first, then ascending producing
    // instruction, stuck-at-0 before stuck-at-1 per plane.
    const auto rank = [](const FaultSite& s) {
        return s.isInput ? std::uint64_t{0} : std::uint64_t{s.afterInstr} + 1;
    };
    for (std::size_t i = 1; i < collapsed.sites.size(); ++i)
        EXPECT_LE(rank(collapsed.sites[i - 1]), rank(collapsed.sites[i])) << i;
    for (std::size_t i = 0; i + 1 < collapsed.sites.size(); i += 2) {
        EXPECT_EQ(collapsed.sites[i].slot, collapsed.sites[i + 1].slot);
        EXPECT_FALSE(collapsed.sites[i].stuckTo);
        EXPECT_TRUE(collapsed.sites[i + 1].stuckTo);
    }

    // Dropping input faults removes exactly the input sites.
    const SiteEnumeration noInputs = enumerateFaultSites(compiled, false, false);
    std::size_t inputSites = 0;
    for (const FaultSite& s : full.sites) inputSites += s.isInput;
    EXPECT_EQ(noInputs.sites.size(), full.sites.size() - inputSites);
    EXPECT_EQ(inputSites, 2u * net.inputCount());
}

TEST(FaultCampaign, ExhaustiveMatchesScalarSimulatorOracle) {
    // Brute-force oracle on a space small enough to sweep twice per site
    // with the scalar simulator: per-fault worst case, error count and
    // deviated-vector count must match exactly; FP means to the last ulp
    // are not required (the campaign's block-partial accumulation is its
    // own canonical order) but must agree to ~1e-12.
    const Netlist net = gen::wallaceMultiplier(4);
    const circuit::ArithSignature sig = gen::multiplierSignature(4);
    CampaignConfig config;
    config.collapseEquivalent = false;
    const ResilienceReport report = analyzeResilience(net, sig, config);
    ASSERT_TRUE(report.exhaustive);
    EXPECT_EQ(report.vectorsPerFault, 256u);

    circuit::Simulator cleanSim(net);
    for (const FaultImpact& impact : report.faults) {
        // Simulator keeps a reference to its netlist: the mutated copy must
        // outlive it (a temporary here is a use-after-scope).
        const Netlist faultyNet = stuckAtNetlist(net, impact.site.node, impact.site.stuckTo);
        circuit::Simulator faultySim(faultyNet);
        std::uint64_t deviated = 0, errs = 0, worst = 0;
        double absSum = 0.0;
        for (std::uint64_t x = 0; x < 256; ++x) {
            const std::uint64_t clean = cleanSim.evaluateScalar(x);
            const std::uint64_t faulty = faultySim.evaluateScalar(x);
            deviated += faulty != clean;
            const std::uint64_t exact = sig.exact(x & 0xF, x >> 4);
            const std::uint64_t diff = faulty > exact ? faulty - exact : exact - faulty;
            errs += diff != 0;
            worst = std::max(worst, diff);
            absSum += static_cast<double>(diff);
        }
        EXPECT_EQ(impact.deviatedVectors, deviated) << "node " << impact.site.node;
        EXPECT_EQ(impact.error.worstCaseError, static_cast<double>(worst));
        EXPECT_EQ(impact.error.errorProbability, static_cast<double>(errs) / 256.0);
        EXPECT_EQ(impact.error.vectorsEvaluated, 256u);
        EXPECT_NEAR(impact.error.meanAbsoluteError, absSum / 256.0,
                    1e-12 * (1.0 + absSum / 256.0));
        EXPECT_DOUBLE_EQ(impact.deviationProbability,
                         static_cast<double>(deviated) / 256.0);
    }
    // The fault-free reference profile of an exact multiplier is clean.
    EXPECT_EQ(report.nominal.errorProbability, 0.0);
    EXPECT_EQ(report.faultCoverage > 0.0, true);
}

TEST(FaultCampaign, CollapsingPreservesAggregateMetrics) {
    const Netlist net = gen::truncatedMultiplier(6, 2);
    const circuit::ArithSignature sig = gen::multiplierSignature(6);
    CampaignConfig on, off;
    on.collapseEquivalent = true;
    off.collapseEquivalent = false;
    const ResilienceReport a = analyzeResilience(net, sig, on);
    const ResilienceReport b = analyzeResilience(net, sig, off);
    EXPECT_EQ(a.totalSites, b.totalSites);
    EXPECT_LE(a.faults.size(), b.faults.size());
    EXPECT_NEAR(a.meanMedUnderFault, b.meanMedUnderFault, 1e-12);
    EXPECT_NEAR(a.faultCoverage, b.faultCoverage, 1e-12);
    EXPECT_EQ(a.worstMedUnderFault, b.worstMedUnderFault);
}

TEST(FaultCampaign, ReportBitIdenticalAtAnyThreadCount) {
    const Netlist net = gen::truncatedMultiplier(6, 2);
    const circuit::ArithSignature sig = gen::multiplierSignature(6);
    for (const bool exhaustive : {true, false}) {
        CampaignConfig config;
        if (!exhaustive) {
            config.analysis.exhaustiveLimit = 1;
            config.analysis.sampleCount = 1u << 10;
        }
        config.analysis.threads = 1;
        const std::vector<std::uint8_t> serial = serialized(analyzeResilience(net, sig, config));
        for (const int threads : {0, 2, 4}) {
            config.analysis.threads = threads;
            EXPECT_EQ(serialized(analyzeResilience(net, sig, config)), serial)
                << "threads=" << threads << " exhaustive=" << exhaustive;
        }
    }
}

TEST(FaultCampaign, ReportBitIdenticalAcrossBackends) {
    const Netlist net = gen::truncatedMultiplier(6, 2);
    const circuit::ArithSignature sig = gen::multiplierSignature(6);
    for (const bool exhaustive : {true, false}) {
        CampaignConfig config;
        if (!exhaustive) {
            config.analysis.exhaustiveLimit = 1;
            config.analysis.sampleCount = 1u << 9;
        }
        const std::vector<std::uint8_t> reference = serialized(analyzeResilience(net, sig, config));
        for (const circuit::kernels::Backend* backend : circuit::kernels::availableBackends()) {
            circuit::kernels::ScopedBackendOverride override(backend);
            EXPECT_EQ(serialized(analyzeResilience(net, sig, config)), reference)
                << backend->name << " exhaustive=" << exhaustive;
        }
    }
}

TEST(FaultCampaign, ColdAndWarmCacheBitIdentical) {
    const std::string dir =
        (std::filesystem::temp_directory_path() / "axf_fault_cache_test").string();
    std::filesystem::remove_all(dir);
    const Netlist net = gen::truncatedMultiplier(6, 2);
    const circuit::ArithSignature sig = gen::multiplierSignature(6);
    const CampaignConfig config;
    const std::vector<std::uint8_t> direct = serialized(analyzeResilience(net, sig, config));

    cache::CharacterizationCache::Options options;
    options.directory = dir;
    {
        cache::CharacterizationCache cold(options);
        EXPECT_EQ(serialized(cache::analyzeResilienceCached(
                      &cold, net.structuralHash(), net, sig, config)),
                  direct);
        EXPECT_EQ(cold.stats().stores, 1u);
        cold.flush();
    }
    cache::CharacterizationCache warm(options);  // fresh instance = new process
    EXPECT_EQ(serialized(cache::analyzeResilienceCached(&warm, net.structuralHash(), net, sig,
                                                        config)),
              direct);
    EXPECT_EQ(warm.stats().hits, 1u);
    EXPECT_EQ(warm.stats().stores, 0u);

    // Null cache degrades to the plain computation.
    EXPECT_EQ(serialized(cache::analyzeResilienceCached(nullptr, net.structuralHash(), net, sig,
                                                        config)),
              direct);
    std::filesystem::remove_all(dir);
}

TEST(FaultCampaign, CacheDigestCanonicalization) {
    using CC = cache::CharacterizationCache;
    const circuit::ArithSignature sig = gen::multiplierSignature(6);
    CampaignConfig a;
    CampaignConfig b = a;
    b.analysis.threads = 7;  // result-neutral
    EXPECT_EQ(CC::digestOf(a, sig), CC::digestOf(b, sig));
    CampaignConfig sampledKnobs = a;
    sampledKnobs.analysis.sampleCount = 1234;  // canonicalized away (exhaustive space)
    EXPECT_EQ(CC::digestOf(a, sig), CC::digestOf(sampledKnobs, sig));
    CampaignConfig sampled = a;
    sampled.analysis.exhaustiveLimit = 1;  // path change = different result
    EXPECT_NE(CC::digestOf(sampled, sig), CC::digestOf(a, sig));
    CampaignConfig noInputs = a;
    noInputs.includeInputFaults = false;  // result-affecting campaign knob
    EXPECT_NE(CC::digestOf(noInputs, sig), CC::digestOf(a, sig));
}

TEST(FaultReport, SerializationRoundTrips) {
    const Netlist net = gen::truncatedMultiplier(6, 2);
    const circuit::ArithSignature sig = gen::multiplierSignature(6);
    const ResilienceReport report = analyzeResilience(net, sig, {});
    ASSERT_GT(report.faults.size(), 0u);
    EXPECT_FALSE(report.summary().empty());

    const std::vector<std::uint8_t> bytes = serialized(report);
    util::ByteReader in(bytes);
    ResilienceReport back;
    ASSERT_TRUE(ResilienceReport::deserialize(in, back));
    EXPECT_EQ(serialized(back), bytes);
    EXPECT_EQ(back.faults.size(), report.faults.size());
    EXPECT_EQ(back.totalSites, report.totalSites);
    EXPECT_EQ(back.meanMedUnderFault, report.meanMedUnderFault);
    EXPECT_EQ(back.criticalFaults, report.criticalFaults);

    util::ByteReader truncated(std::span<const std::uint8_t>(bytes.data(), bytes.size() / 2));
    ResilienceReport bad;
    EXPECT_FALSE(ResilienceReport::deserialize(truncated, bad));
}

TEST(FaultObjective, CgpSearchProblemGrowsThirdObjective) {
    gen::CgpParams params;
    params.inputs = 8;
    params.outputs = 8;
    params.cells = 24;
    const circuit::ArithSignature sig = gen::multiplierSignature(4);
    gen::CgpSearchProblem problem(sig, params);
    EXPECT_EQ(problem.objectiveCount(), 2u);

    CampaignConfig campaign;
    campaign.analysis.sampleCount = 256;
    problem.setResilienceObjective(campaign);
    EXPECT_EQ(problem.objectiveCount(), 3u);

    util::Rng rng(42);
    const std::vector<gen::CgpGenome> batch = {problem.random(rng), problem.random(rng)};
    std::vector<search::Objectives> out(batch.size());
    problem.evaluate(batch, out);
    for (const search::Objectives& o : out) {
        ASSERT_EQ(o.size(), 3u);
        EXPECT_GE(o[2], 0.0);  // mean MED under fault
        EXPECT_TRUE(std::isfinite(o[2]));
    }
}

TEST(FaultObjective, ResilienceAwareDseProducesThreeObjectiveFronts) {
    // End-to-end: component menus -> per-component campaigns -> 3-objective
    // island archives -> re-evaluated fronts, on the cheapest workload.
    std::vector<autoax::Component> adders;
    for (Netlist net : {gen::rippleCarryAdder(16), gen::loaAdder(16, 8)}) {
        autoax::Component c;
        c.name = net.name();
        c.signature = gen::adderSignature(16);
        c.error = error::analyzeError(net, c.signature);
        c.fpga = synth::FpgaFlow().implement(net);
        c.netlist = std::move(net);
        adders.push_back(std::move(c));
    }
    const autoax::SobelAccelerator model(std::move(adders));
    EXPECT_EQ(model.componentMenu(0), &model.adderMenu());
    EXPECT_EQ(model.componentMenu(1), nullptr);

    autoax::AutoAxFpgaFlow::Config cfg;
    cfg.trainConfigs = 6;
    cfg.hillIterations = 20;
    cfg.archiveSeed = 4;
    cfg.archiveCap = 12;
    cfg.imageSize = 32;
    cfg.sceneCount = 1;
    cfg.threads = 1;
    cfg.resilienceObjective = true;
    cfg.faultCampaign.analysis.exhaustiveLimit = 1;  // 16-bit adders: sampled
    cfg.faultCampaign.analysis.sampleCount = 256;
    const autoax::AutoAxFpgaFlow::Result result = autoax::AutoAxFpgaFlow(cfg).run(model);
    ASSERT_EQ(result.scenarios.size(), 3u);
    for (const auto& scenario : result.scenarios)
        EXPECT_GT(scenario.autoax.size(), 0u);

    // Same flow without the objective still works (2-objective archives).
    cfg.resilienceObjective = false;
    const autoax::AutoAxFpgaFlow::Result plain = autoax::AutoAxFpgaFlow(cfg).run(model);
    ASSERT_EQ(plain.scenarios.size(), 3u);
}

}  // namespace
}  // namespace axf::fault
