#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/util/thread_pool.hpp"

namespace axf::util {
namespace {

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyAndSingle) {
    ThreadPool pool(2);
    pool.parallelFor(0, [&](std::size_t) { FAIL(); });
    int calls = 0;
    pool.parallelFor(1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, DeterministicResultSlots) {
    // Each iteration writes only its own slot: results must be independent
    // of scheduling.
    ThreadPool pool(3);
    std::vector<std::uint64_t> out(512, 0);
    pool.parallelFor(out.size(), [&](std::size_t i) { out[i] = i * i; });
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
    ThreadPool pool(4);
    std::atomic<int> total{0};
    pool.parallelFor(8, [&](std::size_t) {
        EXPECT_TRUE(ThreadPool::inWorkerThread() || pool.threadCount() == 0 || true);
        // Nested call must not deadlock; it runs inline on this thread.
        pool.parallelFor(8, [&](std::size_t) { total.fetch_add(1); });
    });
    EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, ParallelForDoesNotStallBehindBusyWorkers) {
    // The caller must wait for iteration completion, not for its queued
    // helper tasks: with every worker busy on long unrelated jobs, a
    // parallelFor whose caller drains all iterations itself should return
    // immediately, not after the workers free up.
    ThreadPool pool(2);
    std::atomic<bool> release{false};
    for (int i = 0; i < 2; ++i)
        pool.submit([&] {
            while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
        });
    std::atomic<int> total{0};
    const auto t0 = std::chrono::steady_clock::now();
    pool.parallelFor(8, [&](std::size_t) { total.fetch_add(1); });
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    release.store(true);
    EXPECT_EQ(total.load(), 8);
    EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 1.0);
}

TEST(ThreadPool, MaxThreadsCapsWorkerFanout) {
    ThreadPool pool(4);
    std::mutex mu;
    std::set<std::thread::id> ids;
    pool.parallelFor(
        200,
        [&](std::size_t) {
            std::lock_guard<std::mutex> lock(mu);
            ids.insert(std::this_thread::get_id());
        },
        /*maxThreads=*/2);
    EXPECT_LE(ids.size(), 2u);  // caller + at most one helper
}

TEST(ThreadPool, ExceptionAbandonsRemainingIterations) {
    ThreadPool pool(2);
    std::atomic<int> executed{0};
    EXPECT_THROW(pool.parallelFor(1000,
                                  [&](std::size_t i) {
                                      if (i == 0) throw std::runtime_error("fail fast");
                                      executed.fetch_add(1);
                                      std::this_thread::sleep_for(std::chrono::milliseconds(1));
                                  }),
                 std::runtime_error);
    EXPECT_LT(executed.load(), 900);  // the loop did not grind to completion
}

TEST(ThreadPool, ExceptionPropagates) {
    ThreadPool pool(2);
    EXPECT_THROW(
        pool.parallelFor(64,
                         [&](std::size_t i) {
                             if (i == 13) throw std::runtime_error("boom");
                         }),
        std::runtime_error);
}

TEST(ThreadPool, SubmitRunsTasks) {
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    std::atomic<int> done{0};
    for (int i = 0; i < 10; ++i)
        pool.submit([&] {
            ran.fetch_add(1);
            done.fetch_add(1);
        });
    while (done.load() < 10) std::this_thread::yield();
    EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPool, GlobalPoolIsUsableAndStable) {
    ThreadPool& a = ThreadPool::global();
    ThreadPool& b = ThreadPool::global();
    EXPECT_EQ(&a, &b);
    // Auto-sized: hardware_concurrency workers, or none on a 1-core host.
    std::atomic<int> total{0};
    a.parallelFor(100, [&](std::size_t) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 100);
}

TEST(ThreadPool, AutoSizedPoolRunsEverything) {
    // Auto-sized pools may have zero workers (1-core host); submit and
    // parallelFor must still execute every task, inline if need be.
    ThreadPool pool(0);
    std::atomic<int> total{0};
    pool.submit([&] { total.fetch_add(1); });
    pool.parallelFor(10, [&](std::size_t) { total.fetch_add(1); });
    while (total.load() < 11) std::this_thread::yield();
    EXPECT_EQ(total.load(), 11);
}

TEST(ThreadPool, SubmittedTaskExceptionRethrownAtWait) {
    // A throw escaping a queued task must not unwind the worker thread
    // (that would std::terminate the process); the first exception is
    // captured and rethrown by the next wait().
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    pool.submit([&] {
        ran.fetch_add(1);
        throw std::runtime_error("first");
    });
    pool.submit([&] { ran.fetch_add(1); });  // pool must keep working
    EXPECT_THROW(pool.wait(), std::runtime_error);
    EXPECT_EQ(ran.load(), 2);
    // The error is consumed: a subsequent wait() is clean, and the pool is
    // still fully functional.
    pool.wait();
    pool.submit([&] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPool, WaitKeepsFirstExceptionOnly) {
    ThreadPool pool(1);  // serialize the queue so "first" is well-defined
    pool.submit([] { throw std::runtime_error("first"); });
    pool.submit([] { throw std::logic_error("second"); });
    try {
        pool.wait();
        FAIL() << "wait() should rethrow";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "first");
    }
}

TEST(ThreadPool, WorkerlessPoolSubmitThrowsSynchronously) {
    // With no workers submit runs inline, so the exception reaches the
    // caller directly and wait() has nothing to report.
    ThreadPool pool(0);
    if (pool.threadCount() == 0) {
        EXPECT_THROW(pool.submit([] { throw std::runtime_error("inline"); }),
                     std::runtime_error);
        pool.wait();  // clean: nothing was captured
    }
}

TEST(ThreadPool, WaitOnIdlePoolReturnsImmediately) {
    ThreadPool pool(2);
    pool.wait();  // no tasks ever submitted
    std::atomic<int> ran{0};
    for (int i = 0; i < 16; ++i) pool.submit([&] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 16);  // wait() observed the full drain
}

TEST(ThreadPool, MainThreadIsNotWorker) { EXPECT_FALSE(ThreadPool::inWorkerThread()); }

TEST(ThreadPool, AxfThreadsEnvPinsDefaultSizing) {
    // AXF_THREADS pins auto-sized pools (benches/CI reproducibility);
    // explicit constructor arguments always win; <= 1 means fully serial.
    const auto withEnv = [](const char* value, auto&& body) {
        const char* prior = getenv("AXF_THREADS");
        const std::string saved = prior != nullptr ? prior : "";
        setenv("AXF_THREADS", value, 1);
        body();
        // Restore rather than unset: CI pins AXF_THREADS for the whole
        // ctest run and later tests must still see it.
        if (prior != nullptr)
            setenv("AXF_THREADS", saved.c_str(), 1);
        else
            unsetenv("AXF_THREADS");
    };
    withEnv("3", [] {
        ThreadPool pool;
        EXPECT_EQ(pool.threadCount(), 3u);
    });
    withEnv("1", [] {
        ThreadPool pool;
        EXPECT_EQ(pool.threadCount(), 0u);  // serial: no workers
    });
    withEnv("0", [] {
        ThreadPool pool;
        EXPECT_EQ(pool.threadCount(), 0u);
    });
    withEnv("2", [] {
        ThreadPool pool(5);  // explicit size beats the override
        EXPECT_EQ(pool.threadCount(), 5u);
    });
    withEnv("not-a-number", [] {
        ThreadPool pool;  // falls back to hardware sizing; must not throw
        std::atomic<int> total{0};
        pool.parallelFor(4, [&](std::size_t) { total.fetch_add(1); });
        EXPECT_EQ(total.load(), 4);
    });
}

TEST(ThreadPoolCancel, ParallelForThrowsWhenTokenTripsMidRun) {
    ThreadPool pool(3);
    CancellationToken cancel;
    std::atomic<int> ran{0};
    bool threw = false;
    try {
        pool.parallelFor(
            10'000,
            [&](std::size_t i) {
                ran.fetch_add(1);
                if (i == 5) cancel.requestStop();
            },
            0, &cancel);
    } catch (const OperationCancelled&) {
        threw = true;
    }
    EXPECT_TRUE(threw);
    // The point of cancellation: a large tail of iterations was skipped.
    EXPECT_LT(ran.load(), 10'000);
}

TEST(ThreadPoolCancel, ParallelForCompletesWhenTokenNeverTrips) {
    ThreadPool pool(3);
    CancellationToken cancel;
    std::atomic<int> ran{0};
    pool.parallelFor(200, [&](std::size_t) { ran.fetch_add(1); }, 0, &cancel);
    EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPoolCancel, TokenTrippedAfterLastClaimDoesNotThrow) {
    // All iterations are claimed and run; tripping the token afterwards
    // must not turn a completed loop into a spurious cancellation.
    ThreadPool pool(2);
    CancellationToken cancel;
    std::atomic<int> ran{0};
    pool.parallelFor(
        50,
        [&](std::size_t) {
            if (ran.fetch_add(1) + 1 == 50) cancel.requestStop();
        },
        0, &cancel);
    EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPoolCancel, BodyExceptionTakesPrecedenceOverCancellation) {
    ThreadPool pool(3);
    CancellationToken cancel;
    bool sawBodyError = false;
    try {
        pool.parallelFor(
            1'000,
            [&](std::size_t i) {
                if (i == 3) {
                    cancel.requestStop();
                    throw std::runtime_error("body failure");
                }
            },
            0, &cancel);
    } catch (const OperationCancelled&) {
        // Losing the body's error behind a generic "cancelled" would hide
        // real bugs from callers that also wire a signal token.
        FAIL() << "cancellation masked the body exception";
    } catch (const std::runtime_error& e) {
        sawBodyError = std::string(e.what()) == "body failure";
    }
    EXPECT_TRUE(sawBodyError);
}

TEST(ThreadPoolCancel, QueuedTasksAreSkippedAtPopAndWaitDrainsPromptly) {
    ThreadPool pool(1);  // single worker serializes the queue
    CancellationToken cancel;
    std::atomic<int> ran{0};
    // First task trips the token while a long backlog sits queued behind
    // it; the backlog must be skipped at pop, not executed.
    pool.submit(
        [&] {
            ran.fetch_add(1);
            cancel.requestStop();
        },
        &cancel);
    for (int i = 0; i < 500; ++i)
        pool.submit(
            [&] {
                ran.fetch_add(1);
                std::this_thread::sleep_for(std::chrono::milliseconds(5));
            },
            &cancel);
    const auto start = std::chrono::steady_clock::now();
    pool.wait();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_EQ(ran.load(), 1);
    // 500 skipped tasks at 5 ms each would be 2.5 s; the drain must be
    // near-instant.  Generous bound for loaded CI machines.
    EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 1000);
    // The pool stays usable for the next (uncancelled) batch.
    std::atomic<int> after{0};
    pool.parallelFor(20, [&](std::size_t) { after.fetch_add(1); });
    EXPECT_EQ(after.load(), 20);
}

}  // namespace
}  // namespace axf::util
