// End-to-end integration: library generation -> ApproxFPGAs methodology ->
// component extraction -> AutoAx-FPGA accelerator search, plus whole-
// pipeline determinism.  Mirrors the paper's Fig. 2 + Fig. 9 pipeline on a
// reduced budget.

#include <gtest/gtest.h>

#include "src/autoax/accelerator.hpp"
#include "src/autoax/dse.hpp"
#include "src/core/flow.hpp"

namespace axf {
namespace {

gen::LibraryConfig libConfig(circuit::ArithOp op, int width) {
    gen::LibraryConfig cfg;
    cfg.op = op;
    cfg.width = width;
    cfg.medBudgets = {0.002, 0.02};
    cfg.cgpGenerations = 40;
    if (width >= 12) {
        cfg.errorConfig.sampleCount = 1u << 13;
    }
    return cfg;
}

TEST(Integration, FullPipelineLibraryToAccelerator) {
    // Stage 1: libraries (with real CGP evolution).
    gen::AcLibrary mulLib = gen::buildLibrary(libConfig(circuit::ArithOp::Multiplier, 8));
    gen::AcLibrary addLib = gen::buildLibrary(libConfig(circuit::ArithOp::Adder, 16));
    ASSERT_GT(mulLib.size(), 50u);
    ASSERT_GT(addLib.size(), 50u);

    // Stage 2: the ApproxFPGAs methodology on both.
    core::ApproxFpgasFlow::Config flowCfg;
    const core::FlowResult mulFlow = core::ApproxFpgasFlow(flowCfg).run(std::move(mulLib));
    const core::FlowResult addFlow = core::ApproxFpgasFlow(flowCfg).run(std::move(addLib));
    EXPECT_GT(mulFlow.speedup(), 1.5);
    EXPECT_GT(mulFlow.meanCoverage(), 0.4);

    // Stage 3: component menus (paper: 9 multipliers, 8 adders).
    std::vector<autoax::Component> mults =
        autoax::componentsFromFlow(mulFlow, core::FpgaParam::Area, 9);
    std::vector<autoax::Component> adders =
        autoax::componentsFromFlow(addFlow, core::FpgaParam::Area, 8);
    ASSERT_GE(mults.size(), 3u);
    ASSERT_GE(adders.size(), 3u);
    // Menus are MED-sorted with an exact design first.  The 8x8 multiplier
    // reports are exhaustive (provably exact); the 16-bit adder space is
    // sampled, so only the observed predicate can hold there.
    EXPECT_TRUE(mults.front().error.isExact());
    EXPECT_TRUE(adders.front().error.observedExact());
    EXPECT_FALSE(adders.front().error.exhaustive);
    for (std::size_t i = 1; i < mults.size(); ++i)
        EXPECT_GE(mults[i].error.med, mults[i - 1].error.med);

    // Stage 4: accelerator search.
    const autoax::GaussianAccelerator accel(std::move(mults), std::move(adders));
    autoax::AutoAxFpgaFlow::Config dseCfg;
    dseCfg.trainConfigs = 25;
    dseCfg.hillIterations = 250;
    dseCfg.archiveCap = 60;
    dseCfg.imageSize = 48;
    dseCfg.sceneCount = 1;
    const autoax::AutoAxFpgaFlow::Result dse = autoax::AutoAxFpgaFlow(dseCfg).run(accel);
    ASSERT_EQ(dse.scenarios.size(), 3u);

    // The discovered front must span a real quality/cost trade-off.
    const auto& area = dse.scenarios[2];
    ASSERT_EQ(area.param, core::FpgaParam::Area);
    double bestSsim = 0.0, worstSsim = 2.0, minArea = 1e18, maxArea = 0.0;
    for (std::size_t pos : autoax::qualityCostFront(area.autoax, area.param)) {
        const autoax::EvaluatedConfig& p = area.autoax[pos];
        bestSsim = std::max(bestSsim, p.ssim);
        worstSsim = std::min(worstSsim, p.ssim);
        minArea = std::min(minArea, p.cost.lutCount);
        maxArea = std::max(maxArea, p.cost.lutCount);
    }
    EXPECT_DOUBLE_EQ(bestSsim, 1.0);  // exact corner reachable
    EXPECT_LT(minArea, maxArea);      // cheaper-but-worse alternatives exist
}

TEST(Integration, MethodologyIsDeterministicEndToEnd) {
    const auto runOnce = [] {
        core::ApproxFpgasFlow::Config cfg;
        cfg.evaluateCoverage = false;
        gen::LibraryConfig lc = libConfig(circuit::ArithOp::Multiplier, 6);
        return core::ApproxFpgasFlow(cfg).run(gen::buildLibrary(lc));
    };
    const core::FlowResult a = runOnce();
    const core::FlowResult b = runOnce();
    EXPECT_EQ(a.circuitsSynthesized, b.circuitsSynthesized);
    EXPECT_DOUBLE_EQ(a.flowSynthSeconds, b.flowSynthSeconds);
    ASSERT_EQ(a.leaderboard.size(), b.leaderboard.size());
    for (std::size_t i = 0; i < a.leaderboard.size(); ++i)
        for (const auto& [param, fidelity] : a.leaderboard[i].fidelityByParam)
            EXPECT_DOUBLE_EQ(fidelity, b.leaderboard[i].fidelityByParam.at(param))
                << a.leaderboard[i].id;
}

TEST(Integration, MeasuredFpgaValuesAreTheFlowArtifacts) {
    // The paper open-sources the measured Pareto circuits; verify the flow's
    // stored reports equal a fresh implementation run (cache coherence).
    core::ApproxFpgasFlow::Config cfg;
    gen::LibraryConfig lc = libConfig(circuit::ArithOp::Adder, 8);
    lc.structuralOnly = true;
    const core::FlowResult result = core::ApproxFpgasFlow(cfg).run(gen::buildLibrary(lc));
    const synth::FpgaFlow fpga;
    for (const core::TargetOutcome& t : result.targets) {
        for (std::size_t idx : t.finalParetoIndices) {
            const core::CharacterizedCircuit& cc = result.dataset.circuits()[idx];
            const synth::FpgaReport fresh = fpga.implement(cc.circuit.netlist);
            EXPECT_DOUBLE_EQ(cc.fpga.lutCount, fresh.lutCount);
            EXPECT_DOUBLE_EQ(cc.fpga.latencyNs, fresh.latencyNs);
        }
    }
}

}  // namespace
}  // namespace axf
