#include <gtest/gtest.h>

#include <set>

#include "src/autoax/accelerator.hpp"
#include "src/autoax/dse.hpp"
#include "src/error/error_metrics.hpp"
#include "src/gen/adders.hpp"
#include "src/gen/multipliers.hpp"
#include "src/synth/fpga.hpp"

namespace axf::autoax {
namespace {

Component makeComponent(circuit::Netlist netlist, circuit::ArithSignature sig) {
    Component c;
    c.name = netlist.name();
    c.signature = sig;
    c.error = error::analyzeError(netlist, sig);
    c.fpga = synth::FpgaFlow().implement(netlist);
    c.netlist = std::move(netlist);
    return c;
}

/// Fixed menus shared by the accelerator tests: index 0 is exact, later
/// indices are increasingly aggressive approximations (MED-sorted).
std::vector<Component> multiplierMenu() {
    std::vector<Component> menu;
    menu.push_back(makeComponent(gen::wallaceMultiplier(8), gen::multiplierSignature(8)));
    for (int t : {3, 5, 7})
        menu.push_back(makeComponent(gen::truncatedMultiplier(8, t), gen::multiplierSignature(8)));
    return menu;
}

std::vector<Component> adderMenu() {
    std::vector<Component> menu;
    menu.push_back(makeComponent(gen::rippleCarryAdder(16), gen::adderSignature(16)));
    for (int k : {4, 8})
        menu.push_back(makeComponent(gen::loaAdder(16, k), gen::adderSignature(16)));
    return menu;
}

const GaussianAccelerator& accelerator() {
    static const GaussianAccelerator kAccel(multiplierMenu(), adderMenu());
    return kAccel;
}

/// All-exact configuration of the shared accelerator.
AcceleratorConfig exactConfig() { return accelerator().configSpace().accurateCorner(); }

TEST(GaussianAccelerator, CachedMultiplierTablesReproduceBehaviour) {
    // Table builds are content-addressed: a second accelerator over the
    // same menus loads the exhaustive 8x8 tables from the cache and must
    // behave identically to the uncached construction.
    cache::CharacterizationCache cache;
    const GaussianAccelerator cold(multiplierMenu(), adderMenu(), &cache);
    EXPECT_GT(cache.stats().stores, 0u);
    const GaussianAccelerator warm(multiplierMenu(), adderMenu(), &cache);
    EXPECT_GT(cache.stats().hits, 0u);

    const img::Image scene = img::syntheticScene(40, 40, 0xAB);
    AcceleratorConfig mixed = exactConfig();
    for (int slot = 0; slot < GaussianAccelerator::kMultiplierSlots; ++slot)
        mixed.choice[GaussianAccelerator::multiplierSlot(slot)] =
            static_cast<int>(static_cast<std::size_t>(slot) % multiplierMenu().size());
    for (int node = 0; node < GaussianAccelerator::kAdderSlots; ++node)
        mixed.choice[GaussianAccelerator::adderSlot(node)] =
            static_cast<int>(static_cast<std::size_t>(node) % adderMenu().size());
    const img::Image reference = accelerator().filter(scene, mixed);
    EXPECT_EQ(cold.filter(scene, mixed).pixels(), reference.pixels());
    EXPECT_EQ(warm.filter(scene, mixed).pixels(), reference.pixels());
}

TEST(GaussianAccelerator, RejectsBadMenus) {
    EXPECT_THROW(GaussianAccelerator({}, adderMenu()), std::invalid_argument);
    // 8-bit adders in the adder menu are the wrong width.
    std::vector<Component> badAdders;
    badAdders.push_back(makeComponent(gen::rippleCarryAdder(8), gen::adderSignature(8)));
    EXPECT_THROW(GaussianAccelerator(multiplierMenu(), std::move(badAdders)),
                 std::invalid_argument);
}

TEST(GaussianAccelerator, ExactConfigMatchesReference) {
    const img::Image scene = img::syntheticScene(48, 48, 0xE);
    const img::Image hw = accelerator().filter(scene, exactConfig());
    const img::Image ref = accelerator().filterExact(scene);
    EXPECT_EQ(hw.pixels(), ref.pixels());
    EXPECT_DOUBLE_EQ(accelerator().quality(exactConfig(), {scene}), 1.0);
}

TEST(GaussianAccelerator, CarryOutputsTruncateLikeTheHardware) {
    // A degenerate multiplier whose table is all-65535 drives every
    // adder-tree level to a 17-bit result (carry-out set).  The behavioural
    // model must truncate operands to the adder's 16-bit interface when
    // feeding the next level — 2 * 65535 -> 131070, truncated to 65534 on
    // re-entry, etc. — ending at min(255, 131063 >> 4) = 255 everywhere.
    circuit::Netlist ones("mul8_allones");
    for (int i = 0; i < 16; ++i) ones.addInput();
    const circuit::NodeId one = ones.addConst(true);
    for (int i = 0; i < 16; ++i) ones.markOutput(one);
    std::vector<Component> mults;
    mults.push_back(makeComponent(std::move(ones), gen::multiplierSignature(8)));
    std::vector<Component> adds;
    adds.push_back(makeComponent(gen::rippleCarryAdder(16), gen::adderSignature(16)));
    const GaussianAccelerator accel(std::move(mults), std::move(adds));

    const img::Image scene = img::syntheticScene(40, 40, 0x21);
    const img::Image out = accel.filter(scene, accel.configSpace().accurateCorner());
    for (std::size_t i = 0; i < out.pixelCount(); ++i)
        ASSERT_EQ(out.pixels()[i], 255) << "pixel " << i;
}

TEST(GaussianAccelerator, ApproximationDegradesQualityMonotonically) {
    const std::vector<img::Image> scenes = {img::syntheticScene(48, 48, 0xF)};
    double previous = 1.1;
    for (int level = 0; level < 4; ++level) {
        AcceleratorConfig config = exactConfig();
        for (int slot = 0; slot < GaussianAccelerator::kMultiplierSlots; ++slot)
            config.choice[GaussianAccelerator::multiplierSlot(slot)] = level;
        const double q = accelerator().quality(config, scenes);
        EXPECT_LE(q, previous + 1e-9) << "level " << level;
        EXPECT_GE(q, 0.0);
        previous = q;
    }
}

TEST(GaussianAccelerator, FilterSmoothsImage) {
    // A Gaussian blur reduces local variance.
    const img::Image scene = img::syntheticScene(48, 48, 0x10);
    const img::Image blurred = accelerator().filterExact(scene);
    double varIn = 0, varOut = 0, meanIn = 0, meanOut = 0;
    for (std::size_t i = 0; i < scene.pixelCount(); ++i) {
        meanIn += scene.pixels()[i];
        meanOut += blurred.pixels()[i];
    }
    meanIn /= static_cast<double>(scene.pixelCount());
    meanOut /= static_cast<double>(scene.pixelCount());
    for (std::size_t i = 0; i < scene.pixelCount(); ++i) {
        varIn += (scene.pixels()[i] - meanIn) * (scene.pixels()[i] - meanIn);
        varOut += (blurred.pixels()[i] - meanOut) * (blurred.pixels()[i] - meanOut);
    }
    EXPECT_LT(varOut, varIn);
    EXPECT_NEAR(meanOut, meanIn, 6.0);  // blur preserves brightness
}

TEST(GaussianAccelerator, ConfigValidation) {
    const img::Image scene = img::syntheticScene(48, 48, 0x11);
    AcceleratorConfig bad = exactConfig();
    bad.choice[GaussianAccelerator::multiplierSlot(0)] = 99;
    EXPECT_THROW(accelerator().filter(scene, bad), std::out_of_range);
    AcceleratorConfig shortConfig;
    shortConfig.choice = {0, 0, 0};
    EXPECT_THROW(accelerator().cost(shortConfig), std::out_of_range);
}

TEST(BatchAdd16, MatchesScalarSimulation) {
    const circuit::Netlist adder = gen::loaAdder(16, 6);
    circuit::Simulator batchSim(adder);
    circuit::Simulator scalarSim(adder);
    util::Rng rng(0x12);
    std::array<std::uint32_t, 64> a{}, b{}, out{};
    for (std::size_t lane = 0; lane < 64; ++lane) {
        a[lane] = static_cast<std::uint32_t>(rng.uniformInt(0, 0xFFFF));
        b[lane] = static_cast<std::uint32_t>(rng.uniformInt(0, 0xFFFF));
    }
    BatchAddScratch scratch;
    batchAdd16(batchSim, std::span<const std::uint32_t>(a),
               std::span<const std::uint32_t>(b), std::span<std::uint32_t>(out), scratch);
    std::array<std::uint32_t, 64> out2{};
    batchAdd16(batchSim, std::span<const std::uint32_t>(a),
               std::span<const std::uint32_t>(b), std::span<std::uint32_t>(out2));
    EXPECT_EQ(out, out2);  // scratch and convenience overloads agree
    // More than 64 lanes cannot be packed into one word sweep: reject
    // instead of silently aliasing lane 64 onto lane 0.
    std::vector<std::uint32_t> big(65, 1), bigOut(65);
    EXPECT_THROW(batchAdd16(batchSim, std::span<const std::uint32_t>(big),
                            std::span<const std::uint32_t>(big),
                            std::span<std::uint32_t>(bigOut)),
                 std::invalid_argument);
    for (std::size_t lane = 0; lane < 64; ++lane) {
        const std::uint64_t packed =
            static_cast<std::uint64_t>(a[lane]) | (static_cast<std::uint64_t>(b[lane]) << 16);
        EXPECT_EQ(out[lane], scalarSim.evaluateScalar(packed)) << "lane " << lane;
    }
}

TEST(AcceleratorCost, AccurateCornerCostsMoreThanCheapCorner) {
    const AcceleratorCost a = accelerator().cost(accelerator().configSpace().accurateCorner());
    const AcceleratorCost c = accelerator().cost(accelerator().configSpace().cheapCorner());
    EXPECT_GT(a.lutCount, c.lutCount);
    EXPECT_GT(a.powerMw, c.powerMw);
    EXPECT_GT(a.synthSeconds, 0.0);
}

TEST(AcceleratorCost, DeterministicPerConfig) {
    AcceleratorConfig config = exactConfig();
    config.choice[GaussianAccelerator::multiplierSlot(3)] = 1;
    config.choice[GaussianAccelerator::adderSlot(5)] = 2;
    const AcceleratorCost a = accelerator().cost(config);
    const AcceleratorCost b = accelerator().cost(config);
    EXPECT_DOUBLE_EQ(a.lutCount, b.lutCount);
    EXPECT_DOUBLE_EQ(a.latencyNs, b.latencyNs);
}

TEST(AcceleratorConfig, HashDiscriminates) {
    AcceleratorConfig a = exactConfig();
    AcceleratorConfig b = exactConfig();
    b.choice[GaussianAccelerator::adderSlot(7)] = 1;
    EXPECT_NE(a.hash(), b.hash());
    EXPECT_EQ(a.hash(), exactConfig().hash());
}

TEST(ConfigSpace, DescribesTheGaussianDatapath) {
    const ConfigSpace& space = accelerator().configSpace();
    ASSERT_EQ(space.groups.size(), 2u);
    EXPECT_EQ(space.groups[0].name, "multiplier");
    EXPECT_EQ(space.groups[0].slots, 9);
    EXPECT_EQ(space.groups[1].name, "adder");
    EXPECT_EQ(space.groups[1].slots, 8);
    EXPECT_EQ(space.slotCount(), 17u);
    EXPECT_EQ(space.menuSizeOf(0), static_cast<int>(accelerator().multiplierMenu().size()));
    EXPECT_EQ(space.menuSizeOf(16), static_cast<int>(accelerator().adderMenu().size()));
    const AcceleratorConfig cheap = space.cheapCorner();
    EXPECT_EQ(cheap.choice[0], static_cast<int>(accelerator().multiplierMenu().size()) - 1);
    EXPECT_EQ(cheap.choice[16], static_cast<int>(accelerator().adderMenu().size()) - 1);
}

TEST(ConfigFeatures, ExactConfigProfile) {
    const std::vector<double> f = accelerator().features(exactConfig());
    ASSERT_EQ(f.size(), 14u);
    EXPECT_DOUBLE_EQ(f[0], 0.0);   // mult MED mass
    EXPECT_DOUBLE_EQ(f[6], 9.0);   // exact multiplier count
    EXPECT_DOUBLE_EQ(f[13], 8.0);  // exact adder count
}

TEST(DesignSpace, SizeFormula) {
    const double size = accelerator().designSpaceSize();
    EXPECT_DOUBLE_EQ(size, std::pow(4.0, 9.0) * std::pow(3.0, 8.0));
}

TEST(QualityCostFront, MembersNonDominated) {
    std::vector<EvaluatedConfig> points(12);
    util::Rng rng(0x13);
    for (auto& p : points) {
        p.ssim = rng.uniformReal(0.3, 1.0);
        p.cost.lutCount = rng.uniformReal(100, 1000);
    }
    const std::vector<std::size_t> front = qualityCostFront(points, core::FpgaParam::Area);
    ASSERT_FALSE(front.empty());
    for (std::size_t a : front) {
        for (std::size_t b : front) {
            if (a == b) continue;
            EXPECT_FALSE(points[b].ssim >= points[a].ssim &&
                             points[b].cost.lutCount <= points[a].cost.lutCount &&
                             (points[b].ssim > points[a].ssim ||
                              points[b].cost.lutCount < points[a].cost.lutCount));
        }
    }
}

TEST(AutoAxFlow, SmallRunProducesAllScenarios) {
    AutoAxFpgaFlow::Config cfg;
    cfg.trainConfigs = 20;
    cfg.hillIterations = 150;
    cfg.archiveSeed = 8;
    cfg.archiveCap = 40;
    cfg.imageSize = 48;
    cfg.sceneCount = 1;
    const AutoAxFpgaFlow::Result result = AutoAxFpgaFlow(cfg).run(accelerator());

    EXPECT_EQ(result.trainingSet.size(), 22u);  // 20 random + 2 corner anchors
    ASSERT_EQ(result.scenarios.size(), 3u);
    EXPECT_GE(result.totalRealEvaluations, result.trainingSet.size());
    for (const auto& s : result.scenarios) {
        EXPECT_FALSE(s.autoax.empty());
        EXPECT_LE(s.autoax.size(), cfg.archiveCap);
        EXPECT_EQ(s.random.size(), s.realEvaluations);
        // Dedup accounting: the archive reuses training entries (at least
        // the two corners), so fresh evaluations stay below its size.
        EXPECT_LE(s.realEvaluations, s.autoax.size());
        EXPECT_GT(s.estimatorQueries, static_cast<std::size_t>(cfg.hillIterations));
        for (const EvaluatedConfig& e : s.autoax) {
            EXPECT_GE(e.ssim, -1.0);
            EXPECT_LE(e.ssim, 1.0);
            EXPECT_GT(e.cost.lutCount, 0.0);
        }
    }
}

TEST(AutoAxFlow, SearchBeatsNothingAtQualityExtreme) {
    // The archive is seeded with the all-accurate corner, so AutoAx must
    // always offer an SSIM = 1.0 design.
    AutoAxFpgaFlow::Config cfg;
    cfg.trainConfigs = 15;
    cfg.hillIterations = 100;
    cfg.imageSize = 48;
    cfg.sceneCount = 1;
    const AutoAxFpgaFlow::Result result = AutoAxFpgaFlow(cfg).run(accelerator());
    for (const auto& s : result.scenarios) {
        double best = 0.0;
        for (const EvaluatedConfig& e : s.autoax) best = std::max(best, e.ssim);
        EXPECT_DOUBLE_EQ(best, 1.0);
    }
}

}  // namespace
}  // namespace axf::autoax
