#include <gtest/gtest.h>

#include <functional>
#include <set>

#include "src/circuit/simulator.hpp"
#include "src/error/error_metrics.hpp"
#include "src/gen/multipliers.hpp"

namespace axf::gen {
namespace {

using circuit::Netlist;

class ExactMultipliers
    : public ::testing::TestWithParam<std::tuple<std::function<Netlist(int)>, int>> {};

TEST_P(ExactMultipliers, ComputesExactProduct) {
    const auto& [build, width] = GetParam();
    const Netlist net = build(width);
    EXPECT_EQ(static_cast<int>(net.inputCount()), 2 * width);
    EXPECT_EQ(static_cast<int>(net.outputCount()), 2 * width);
    net.validate();
    EXPECT_TRUE(error::isFunctionallyExact(net, multiplierSignature(width))) << net.name();
}

INSTANTIATE_TEST_SUITE_P(
    Architectures, ExactMultipliers,
    ::testing::Combine(::testing::Values(std::function<Netlist(int)>(arrayMultiplier),
                                         std::function<Netlist(int)>(wallaceMultiplier)),
                       ::testing::Values(2, 3, 4, 5, 6, 8, 10)));

TEST(Multipliers, WallaceIsShallowerThanArray) {
    EXPECT_LT(wallaceMultiplier(8).depth(), arrayMultiplier(8).depth());
}

TEST(Multipliers, WidthBounds) {
    EXPECT_THROW(arrayMultiplier(1), std::invalid_argument);
    EXPECT_THROW(wallaceMultiplier(17), std::invalid_argument);
    EXPECT_THROW(truncatedMultiplier(4, 9), std::invalid_argument);
    EXPECT_THROW(brokenArrayMultiplier(4, 9, 0), std::invalid_argument);
    EXPECT_THROW(kulkarniMultiplier(6), std::invalid_argument);
    EXPECT_THROW(approxCompressorMultiplier(4, -1), std::invalid_argument);
}

TEST(Multipliers, TruncatedZeroColumnsIsExact) {
    EXPECT_TRUE(error::isFunctionallyExact(truncatedMultiplier(4, 0), multiplierSignature(4)));
    EXPECT_TRUE(
        error::isFunctionallyExact(brokenArrayMultiplier(4, 0, 0), multiplierSignature(4)));
    EXPECT_TRUE(
        error::isFunctionallyExact(approxCompressorMultiplier(4, 0), multiplierSignature(4)));
}

TEST(Multipliers, TruncatedErrorMonotonicInColumns) {
    double previous = -1.0;
    for (int t = 1; t <= 8; ++t) {
        const error::ErrorReport r =
            error::analyzeError(truncatedMultiplier(8, t), multiplierSignature(8));
        EXPECT_GE(r.med, previous) << "t=" << t;
        previous = r.med;
    }
    EXPECT_GT(previous, 0.0);
}

TEST(Multipliers, TruncatedWorstCaseBound) {
    // Dropping columns < t can lose at most sum of those partial products.
    const int t = 4;
    const error::ErrorReport r =
        error::analyzeError(truncatedMultiplier(8, t), multiplierSignature(8));
    double bound = 0.0;
    for (int i = 0; i < 8; ++i)
        for (int j = 0; j < 8; ++j)
            if (i + j < t) bound += static_cast<double>(1u << (i + j));
    EXPECT_LE(r.worstCaseError, bound);
}

TEST(Multipliers, BamErrorGrowsWithBreaks) {
    const error::ErrorReport shallow =
        error::analyzeError(brokenArrayMultiplier(8, 2, 0), multiplierSignature(8));
    const error::ErrorReport deep =
        error::analyzeError(brokenArrayMultiplier(8, 6, 0), multiplierSignature(8));
    EXPECT_LT(shallow.med, deep.med);
    const error::ErrorReport withVertical =
        error::analyzeError(brokenArrayMultiplier(8, 6, 3), multiplierSignature(8));
    EXPECT_LE(deep.med, withVertical.med);
}

TEST(Multipliers, Kulkarni2x2KnownError) {
    // The approximate 2x2 block is exact except 3*3 = 9 -> 7.
    const Netlist net = kulkarniMultiplier(2);
    const error::ErrorReport r = error::analyzeError(net, multiplierSignature(2));
    EXPECT_DOUBLE_EQ(r.errorProbability, 1.0 / 16.0);
    EXPECT_DOUBLE_EQ(r.worstCaseError, 2.0);
    EXPECT_DOUBLE_EQ(r.meanAbsoluteError, 2.0 / 16.0);
}

TEST(Multipliers, KulkarniRecursiveErrorProbabilityGrows) {
    const double ep2 =
        error::analyzeError(kulkarniMultiplier(2), multiplierSignature(2)).errorProbability;
    const double ep4 =
        error::analyzeError(kulkarniMultiplier(4), multiplierSignature(4)).errorProbability;
    const double ep8 =
        error::analyzeError(kulkarniMultiplier(8), multiplierSignature(8)).errorProbability;
    EXPECT_LT(ep2, ep4);
    EXPECT_LT(ep4, ep8);
}

TEST(Multipliers, CompressorColumnsMonotone) {
    double previous = -1.0;
    for (int c = 1; c <= 8; c += 1) {
        const error::ErrorReport r =
            error::analyzeError(approxCompressorMultiplier(8, c), multiplierSignature(8));
        EXPECT_GE(r.med, previous - 1e-12) << "c=" << c;
        previous = r.med;
    }
}

TEST(Multipliers, DrumSmallValuesExact) {
    // Operands that fit in k bits bypass the truncation entirely.
    const circuit::Netlist net = drumMultiplier(8, 4);
    circuit::Simulator sim(net);
    for (std::uint64_t a = 0; a < 16; ++a)
        for (std::uint64_t b = 0; b < 16; ++b)
            EXPECT_EQ(sim.evaluateScalar(a | (b << 8)), a * b) << a << "*" << b;
}

TEST(Multipliers, DrumRelativeErrorShrinksWithK) {
    double previous = 1.0;
    for (int k : {2, 3, 4, 5, 6}) {
        const error::ErrorReport r =
            error::analyzeError(drumMultiplier(8, k), multiplierSignature(8));
        EXPECT_LT(r.meanRelativeError, previous) << "k=" << k;
        previous = r.meanRelativeError;
    }
    // DRUM's selling point: bounded relative error (~2^-k scale).
    EXPECT_LT(previous, 0.02);
    EXPECT_THROW(drumMultiplier(8, 1), std::invalid_argument);
    EXPECT_THROW(drumMultiplier(8, 8), std::invalid_argument);
}

TEST(Multipliers, DrumNearlyUnbiased) {
    // The forced-LSB trick keeps the mean *signed* error small relative to
    // the mean absolute error.
    const circuit::Netlist net = drumMultiplier(8, 4);
    circuit::Simulator sim(net);
    double signedSum = 0.0, absSum = 0.0;
    for (std::uint64_t a = 0; a < 256; a += 3) {
        for (std::uint64_t b = 0; b < 256; b += 3) {
            const double approx = static_cast<double>(sim.evaluateScalar(a | (b << 8)));
            const double exact = static_cast<double>(a * b);
            signedSum += approx - exact;
            absSum += std::abs(approx - exact);
        }
    }
    EXPECT_LT(std::abs(signedSum), 0.25 * absSum);
}

TEST(Multipliers, MitchellPowersOfTwoExact) {
    // Mitchell's log approximation is exact when both mantissas are zero.
    const circuit::Netlist net = mitchellMultiplier(8);
    circuit::Simulator sim(net);
    for (std::uint64_t a : {0ull, 1ull, 2ull, 4ull, 8ull, 16ull, 64ull, 128ull})
        for (std::uint64_t b : {0ull, 1ull, 2ull, 8ull, 32ull, 128ull})
            EXPECT_EQ(sim.evaluateScalar(a | (b << 8)), a * b) << a << "*" << b;
}

TEST(Multipliers, MitchellKnownErrorEnvelope) {
    // Classic result: Mitchell under-estimates, with worst relative error
    // about 1 - 2*(ln 2) ... ~11.1%, and a single-digit-percent mean.
    const error::ErrorReport r =
        error::analyzeError(mitchellMultiplier(8), multiplierSignature(8));
    EXPECT_GT(r.meanRelativeError, 0.005);
    EXPECT_LT(r.meanRelativeError, 0.06);
    const circuit::Netlist net = mitchellMultiplier(8);
    circuit::Simulator sim(net);
    for (std::uint64_t a = 3; a < 256; a += 17) {
        for (std::uint64_t b = 5; b < 256; b += 13) {
            const std::uint64_t approx = sim.evaluateScalar(a | (b << 8));
            EXPECT_LE(approx, a * b) << "Mitchell must never over-estimate";
            EXPECT_GE(static_cast<double>(approx), 0.87 * static_cast<double>(a * b))
                << a << "*" << b;
        }
    }
}

TEST(Multipliers, ApproximationsSaveGatesAfterSimplify) {
    const std::size_t exactGates = wallaceMultiplier(8).gateCount();
    EXPECT_LT(truncatedMultiplier(8, 6).pruned().gateCount() + 0u, exactGates + 200u);
    // The real comparison happens post-simplify inside the flows; here we
    // check the family produces structurally distinct designs.
    std::set<std::uint64_t> hashes;
    for (int t = 0; t <= 8; ++t) hashes.insert(truncatedMultiplier(8, t).structuralHash());
    EXPECT_EQ(hashes.size(), 9u);
}

}  // namespace
}  // namespace axf::gen
