// Sobel accelerator workload: exact-config fidelity, approximation
// behaviour, cost composition, and an end-to-end AutoAx DSE smoke test
// through the same engine as the Gaussian case study.

#include <gtest/gtest.h>

#include "src/autoax/dse.hpp"
#include "src/autoax/sobel.hpp"
#include "src/error/error_metrics.hpp"
#include "src/gen/adders.hpp"
#include "src/synth/fpga.hpp"

namespace axf::autoax {
namespace {

Component makeAdder(circuit::Netlist netlist) {
    Component c;
    c.name = netlist.name();
    c.signature = gen::adderSignature(16);
    c.error = error::analyzeError(netlist, c.signature);
    c.fpga = synth::FpgaFlow().implement(netlist);
    c.netlist = std::move(netlist);
    return c;
}

const SobelAccelerator& sobel() {
    static const SobelAccelerator kSobel = [] {
        std::vector<Component> menu;
        menu.push_back(makeAdder(gen::rippleCarryAdder(16)));
        menu.push_back(makeAdder(gen::loaAdder(16, 5)));
        menu.push_back(makeAdder(gen::loaAdder(16, 9)));
        return SobelAccelerator(std::move(menu));
    }();
    return kSobel;
}

TEST(SobelAccelerator, RejectsBadMenus) {
    EXPECT_THROW(SobelAccelerator({}), std::invalid_argument);
    std::vector<Component> wrongWidth;
    wrongWidth.push_back([] {
        Component c;
        c.signature = gen::adderSignature(8);
        c.netlist = gen::rippleCarryAdder(8);
        return c;
    }());
    EXPECT_THROW(SobelAccelerator(std::move(wrongWidth)), std::invalid_argument);
}

TEST(SobelAccelerator, ConfigSpaceIsThreeAdderSlots) {
    const ConfigSpace& space = sobel().configSpace();
    ASSERT_EQ(space.groups.size(), 1u);
    EXPECT_EQ(space.groups[0].name, "adder");
    EXPECT_EQ(space.groups[0].slots, 3);
    EXPECT_DOUBLE_EQ(sobel().designSpaceSize(), 27.0);
}

TEST(SobelAccelerator, ExactConfigMatchesReference) {
    // With exact adders in every slot the behavioural pipeline (bias,
    // two's-complement subtraction, 16-bit truncation) must collapse to
    // the plain Sobel arithmetic.
    const img::Image scene = img::syntheticScene(48, 48, 0x5E);
    const AcceleratorConfig exact = sobel().configSpace().accurateCorner();
    EXPECT_EQ(sobel().filter(scene, exact).pixels(), sobel().filterExact(scene).pixels());
    EXPECT_DOUBLE_EQ(sobel().quality(exact, {scene}), 1.0);
}

TEST(SobelAccelerator, EdgesDetected) {
    // A vertical step edge must light up its column and stay dark in flat
    // regions.
    img::Image step(32, 32, 0);
    for (int y = 0; y < 32; ++y)
        for (int x = 16; x < 32; ++x) step.set(x, y, 200);
    const img::Image out = sobel().filterExact(step);
    EXPECT_GT(out.at(16, 16), 100);  // on the edge
    EXPECT_EQ(out.at(4, 16), 0);     // flat left region
    EXPECT_EQ(out.at(28, 16), 0);    // flat right region
}

TEST(SobelAccelerator, ApproximationDegradesQuality) {
    const std::vector<img::Image> scenes = {img::syntheticScene(48, 48, 0x5F)};
    const double exact = sobel().quality(sobel().configSpace().accurateCorner(), scenes);
    const double cheap = sobel().quality(sobel().configSpace().cheapCorner(), scenes);
    EXPECT_DOUBLE_EQ(exact, 1.0);
    EXPECT_LT(cheap, exact);
    EXPECT_GT(cheap, 0.0);  // still recognizably the same image
}

TEST(SobelAccelerator, CostComposesAndDiscriminates) {
    const AcceleratorCost accurate = sobel().cost(sobel().configSpace().accurateCorner());
    const AcceleratorCost cheap = sobel().cost(sobel().configSpace().cheapCorner());
    EXPECT_GT(accurate.lutCount, cheap.lutCount);
    EXPECT_GT(accurate.powerMw, cheap.powerMw);
    EXPECT_GT(cheap.lutCount, 0.0);
    // Deterministic per config.
    const AcceleratorCost again = sobel().cost(sobel().configSpace().accurateCorner());
    EXPECT_DOUBLE_EQ(accurate.lutCount, again.lutCount);
}

TEST(SobelAccelerator, FeatureVectorShape) {
    const std::vector<double> f = sobel().features(sobel().configSpace().accurateCorner());
    ASSERT_EQ(f.size(), 7u);
    EXPECT_DOUBLE_EQ(f[0], 0.0);  // MED mass of the exact corner
}

TEST(SobelAccelerator, OversizedTrainingBudgetTerminates) {
    // 27 distinct configs exist; a default-sized training request must cap
    // at the design-space size instead of spinning forever on rejection
    // sampling.
    AutoAxFpgaFlow::Config cfg;
    cfg.trainConfigs = 100;  // > designSpaceSize() == 27
    cfg.hillIterations = 20;
    cfg.archiveSeed = 4;
    cfg.archiveCap = 10;
    cfg.imageSize = 48;
    cfg.sceneCount = 1;
    const AutoAxFpgaFlow::Result result = AutoAxFpgaFlow(cfg).run(sobel());
    EXPECT_LE(result.trainingSet.size(), 27u);
    EXPECT_GE(result.trainingSet.size(), 20u);  // nearly the whole space found
}

TEST(SobelAccelerator, EndToEndDseSmoke) {
    // The full AutoAx flow over the Sobel workload: all three scenarios,
    // corners reachable, dedup accounting intact.  27 configs means the
    // memo carries most of the weight — realEvaluations must stay small.
    AutoAxFpgaFlow::Config cfg;
    cfg.trainConfigs = 10;
    cfg.hillIterations = 60;
    cfg.archiveSeed = 4;
    cfg.archiveCap = 20;
    cfg.imageSize = 48;
    cfg.sceneCount = 1;
    const AutoAxFpgaFlow::Result result = AutoAxFpgaFlow(cfg).run(sobel());
    ASSERT_EQ(result.scenarios.size(), 3u);
    // 27 distinct configs exist in total; the memo must cap total fresh
    // simulations at that.
    EXPECT_LE(result.totalRealEvaluations, 27u);
    for (const auto& s : result.scenarios) {
        EXPECT_FALSE(s.autoax.empty());
        EXPECT_EQ(s.random.size(), s.realEvaluations);
        double best = 0.0;
        for (const EvaluatedConfig& e : s.autoax) best = std::max(best, e.ssim);
        EXPECT_DOUBLE_EQ(best, 1.0);  // exact corner always offered
    }
}

}  // namespace
}  // namespace axf::autoax
