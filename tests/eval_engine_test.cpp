// Batched evaluation engine: batched-vs-scalar equality, memo dedup
// accounting, and the bit-identical-at-any-thread-count guarantee for both
// `EvalEngine::evaluateBatch` and a whole `AutoAxFpgaFlow::Result`.

#include <gtest/gtest.h>

#include "src/autoax/accelerator.hpp"
#include "src/autoax/dse.hpp"
#include "src/autoax/eval_engine.hpp"
#include "src/error/error_metrics.hpp"
#include "src/gen/adders.hpp"
#include "src/gen/multipliers.hpp"
#include "src/img/ssim.hpp"
#include "src/synth/fpga.hpp"
#include "src/util/thread_pool.hpp"

namespace axf::autoax {
namespace {

Component makeComponent(circuit::Netlist netlist, circuit::ArithSignature sig) {
    Component c;
    c.name = netlist.name();
    c.signature = sig;
    c.error = error::analyzeError(netlist, sig);
    c.fpga = synth::FpgaFlow().implement(netlist);
    c.netlist = std::move(netlist);
    return c;
}

const GaussianAccelerator& accelerator() {
    static const GaussianAccelerator kAccel = [] {
        std::vector<Component> mults;
        mults.push_back(makeComponent(gen::wallaceMultiplier(8), gen::multiplierSignature(8)));
        for (int t : {4, 6})
            mults.push_back(
                makeComponent(gen::truncatedMultiplier(8, t), gen::multiplierSignature(8)));
        std::vector<Component> adds;
        adds.push_back(makeComponent(gen::rippleCarryAdder(16), gen::adderSignature(16)));
        adds.push_back(makeComponent(gen::loaAdder(16, 6), gen::adderSignature(16)));
        return GaussianAccelerator(std::move(mults), std::move(adds));
    }();
    return kAccel;
}

std::vector<img::Image> testScenes() {
    return {img::syntheticScene(48, 48, 0xE1), img::syntheticScene(48, 48, 0xE2)};
}

std::vector<AcceleratorConfig> someConfigs(std::size_t n, std::uint64_t seed) {
    util::Rng rng(seed);
    std::vector<AcceleratorConfig> configs;
    for (std::size_t i = 0; i < n; ++i)
        configs.push_back(accelerator().configSpace().randomConfig(rng));
    return configs;
}

TEST(EvalEngine, BatchedEqualsScalarQuality) {
    const std::vector<img::Image> scenes = testScenes();
    EvalEngine engine(accelerator(), scenes);
    const std::vector<AcceleratorConfig> configs = someConfigs(6, 0xB0);
    const std::vector<EvaluatedConfig> batched = engine.evaluateBatch(configs);
    ASSERT_EQ(batched.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        // Bit-identical to the scalar reference path, not merely close.
        EXPECT_EQ(batched[i].ssim, accelerator().quality(configs[i], scenes)) << "config " << i;
        const AcceleratorCost direct = accelerator().cost(configs[i]);
        EXPECT_EQ(batched[i].cost.lutCount, direct.lutCount);
        EXPECT_EQ(batched[i].cost.powerMw, direct.powerMw);
        EXPECT_EQ(batched[i].cost.latencyNs, direct.latencyNs);
    }
}

TEST(EvalEngine, ThreadCountInvariance) {
    // Same batch through a serial engine, the global pool, and an explicit
    // 3-worker pool: every SSIM must be the same bits.
    const std::vector<AcceleratorConfig> configs = someConfigs(8, 0xB1);
    EvalEngine serial(accelerator(), testScenes(), {.threads = 1});
    const std::vector<EvaluatedConfig> serialResults = serial.evaluateBatch(configs);

    util::ThreadPool workers(3);
    EvalEngine pooled(accelerator(), testScenes(), {.pool = &workers});
    const std::vector<EvaluatedConfig> pooledResults = pooled.evaluateBatch(configs);

    ASSERT_EQ(serialResults.size(), pooledResults.size());
    for (std::size_t i = 0; i < serialResults.size(); ++i) {
        EXPECT_EQ(serialResults[i].ssim, pooledResults[i].ssim) << "config " << i;
        EXPECT_EQ(serialResults[i].cost.lutCount, pooledResults[i].cost.lutCount);
    }
}

TEST(EvalEngine, MemoCountsOnlyFreshEvaluations) {
    EvalEngine engine(accelerator(), testScenes());
    std::vector<AcceleratorConfig> configs = someConfigs(4, 0xB2);
    configs.push_back(configs.front());  // in-batch duplicate
    EXPECT_EQ(engine.freshEvaluations(), 0u);
    const std::vector<EvaluatedConfig> first = engine.evaluateBatch(configs);
    ASSERT_EQ(first.size(), 5u);
    EXPECT_EQ(engine.freshEvaluations(), 4u);  // duplicate not paid for
    EXPECT_EQ(first.front().ssim, first.back().ssim);

    // Re-evaluating the same configs is free, and served identically.
    const std::vector<EvaluatedConfig> second = engine.evaluateBatch(configs);
    EXPECT_EQ(engine.freshEvaluations(), 4u);
    for (std::size_t i = 0; i < first.size(); ++i)
        EXPECT_EQ(first[i].ssim, second[i].ssim);
}

TEST(EvalEngine, ExactReferencesComputedOncePerScene) {
    const std::vector<img::Image> scenes = testScenes();
    EvalEngine engine(accelerator(), scenes);
    ASSERT_EQ(engine.exactReferences().size(), scenes.size());
    for (std::size_t s = 0; s < scenes.size(); ++s)
        EXPECT_EQ(engine.exactReferences()[s].pixels(),
                  accelerator().filterExact(scenes[s]).pixels());
}

TEST(SsimReference, CompareMatchesPlainSsim) {
    const img::Image a = img::syntheticScene(52, 44, 0xC0);  // unaligned dims too
    const img::Image b = img::syntheticScene(52, 44, 0xC1);
    const img::SsimReference ref(a);
    EXPECT_EQ(ref.compare(b), img::ssim(a, b));
    EXPECT_EQ(ref.compare(a), 1.0);
}

TEST(AutoAxFlow, ResultBitIdenticalAtAnyThreadCount) {
    AutoAxFpgaFlow::Config cfg;
    cfg.trainConfigs = 12;
    cfg.hillIterations = 80;
    cfg.archiveSeed = 6;
    cfg.archiveCap = 30;
    cfg.imageSize = 48;
    cfg.sceneCount = 2;

    AutoAxFpgaFlow::Config serialCfg = cfg;
    serialCfg.threads = 1;
    const AutoAxFpgaFlow::Result serial = AutoAxFpgaFlow(serialCfg).run(accelerator());

    util::ThreadPool workers(3);
    AutoAxFpgaFlow::Config pooledCfg = cfg;
    pooledCfg.pool = &workers;
    const AutoAxFpgaFlow::Result pooled = AutoAxFpgaFlow(pooledCfg).run(accelerator());

    ASSERT_EQ(serial.trainingSet.size(), pooled.trainingSet.size());
    for (std::size_t i = 0; i < serial.trainingSet.size(); ++i) {
        EXPECT_EQ(serial.trainingSet[i].config, pooled.trainingSet[i].config);
        EXPECT_EQ(serial.trainingSet[i].ssim, pooled.trainingSet[i].ssim);
    }
    ASSERT_EQ(serial.scenarios.size(), pooled.scenarios.size());
    EXPECT_EQ(serial.totalRealEvaluations, pooled.totalRealEvaluations);
    for (std::size_t s = 0; s < serial.scenarios.size(); ++s) {
        const auto& a = serial.scenarios[s];
        const auto& b = pooled.scenarios[s];
        EXPECT_EQ(a.estimatorQueries, b.estimatorQueries);
        EXPECT_EQ(a.realEvaluations, b.realEvaluations);
        ASSERT_EQ(a.autoax.size(), b.autoax.size());
        for (std::size_t i = 0; i < a.autoax.size(); ++i) {
            EXPECT_EQ(a.autoax[i].config, b.autoax[i].config);
            EXPECT_EQ(a.autoax[i].ssim, b.autoax[i].ssim);
            EXPECT_EQ(a.autoax[i].cost.powerMw, b.autoax[i].cost.powerMw);
        }
        ASSERT_EQ(a.random.size(), b.random.size());
        for (std::size_t i = 0; i < a.random.size(); ++i)
            EXPECT_EQ(a.random[i].ssim, b.random[i].ssim);
    }
}

}  // namespace
}  // namespace axf::autoax
