#include <gtest/gtest.h>

#include "src/circuit/features.hpp"
#include "src/gen/adders.hpp"
#include "src/gen/multipliers.hpp"

namespace axf::circuit {
namespace {

TEST(Features, DimensionMatchesNames) {
    EXPECT_EQ(StructuralFeatures::dimension(), StructuralFeatures::names().size());
    StructuralFeatures f;
    EXPECT_EQ(f.toVector().size(), StructuralFeatures::dimension());
}

TEST(Features, CountsOnKnownNetlist) {
    Netlist net;
    const NodeId a = net.addInput();
    const NodeId b = net.addInput();
    const NodeId g1 = net.addGate(GateKind::And, a, b);
    const NodeId g2 = net.addGate(GateKind::Xor, g1, b);
    const NodeId g3 = net.addGate(GateKind::Not, g2);
    net.markOutput(g3);

    const StructuralFeatures f = extractFeatures(net);
    EXPECT_DOUBLE_EQ(f.gateCount, 3.0);
    EXPECT_DOUBLE_EQ(f.inputCount, 2.0);
    EXPECT_DOUBLE_EQ(f.outputCount, 1.0);
    EXPECT_DOUBLE_EQ(f.andClassCount, 1.0);
    EXPECT_DOUBLE_EQ(f.xorClassCount, 1.0);
    EXPECT_DOUBLE_EQ(f.inverterCount, 1.0);
    EXPECT_DOUBLE_EQ(f.depth, 3.0);
    EXPECT_DOUBLE_EQ(f.outputLevelSum, 3.0);
}

TEST(Features, ScaleWithCircuitSize) {
    const StructuralFeatures small = extractFeatures(gen::wallaceMultiplier(4));
    const StructuralFeatures big = extractFeatures(gen::wallaceMultiplier(8));
    EXPECT_GT(big.gateCount, small.gateCount);
    EXPECT_GT(big.depth, small.depth);
    EXPECT_GT(big.xorClassCount, small.xorClassCount);
}

TEST(Features, AdderVsMultiplierProfilesDiffer) {
    const StructuralFeatures add = extractFeatures(gen::rippleCarryAdder(8));
    const StructuralFeatures mul = extractFeatures(gen::wallaceMultiplier(8));
    // Multipliers carry a big AND-plane; ripple adders are XOR/MAJ chains.
    EXPECT_GT(mul.andClassCount / mul.gateCount, add.andClassCount / add.gateCount);
}

TEST(Features, DeterministicForSameNetlist) {
    const Netlist net = gen::loaAdder(8, 3);
    EXPECT_EQ(extractFeatures(net).toVector(), extractFeatures(net).toVector());
}

}  // namespace
}  // namespace axf::circuit
