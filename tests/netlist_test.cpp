#include <gtest/gtest.h>

#include "src/circuit/netlist.hpp"

namespace axf::circuit {
namespace {

Netlist tinyXorNet() {
    Netlist net("xor2");
    const NodeId a = net.addInput();
    const NodeId b = net.addInput();
    net.markOutput(net.addGate(GateKind::Xor, a, b));
    return net;
}

TEST(Netlist, BuilderCounts) {
    const Netlist net = tinyXorNet();
    EXPECT_EQ(net.nodeCount(), 3u);
    EXPECT_EQ(net.gateCount(), 1u);
    EXPECT_EQ(net.inputCount(), 2u);
    EXPECT_EQ(net.outputCount(), 1u);
    EXPECT_EQ(net.name(), "xor2");
    net.validate();
}

TEST(Netlist, FanInCount) {
    EXPECT_EQ(fanInCount(GateKind::Input), 0);
    EXPECT_EQ(fanInCount(GateKind::Const1), 0);
    EXPECT_EQ(fanInCount(GateKind::Not), 1);
    EXPECT_EQ(fanInCount(GateKind::Buf), 1);
    EXPECT_EQ(fanInCount(GateKind::And), 2);
    EXPECT_EQ(fanInCount(GateKind::Mux), 3);
    EXPECT_EQ(fanInCount(GateKind::Maj), 3);
}

TEST(Netlist, GateKindNamesUnique) {
    std::set<std::string> names;
    for (int k = 0; k <= static_cast<int>(GateKind::Maj); ++k)
        names.insert(gateKindName(static_cast<GateKind>(k)));
    EXPECT_EQ(names.size(), static_cast<std::size_t>(GateKind::Maj) + 1);
}

TEST(Netlist, RejectsForwardReferences) {
    Netlist net;
    const NodeId a = net.addInput();
    EXPECT_THROW(net.addGate(GateKind::And, a, 99), std::out_of_range);
    EXPECT_THROW(net.markOutput(42), std::out_of_range);
    EXPECT_THROW(net.addGate(GateKind::Input, a), std::invalid_argument);
}

TEST(Netlist, LevelsAndDepth) {
    Netlist net;
    const NodeId a = net.addInput();
    const NodeId b = net.addInput();
    const NodeId g1 = net.addGate(GateKind::And, a, b);
    const NodeId g2 = net.addGate(GateKind::Xor, g1, a);
    net.markOutput(g2);
    const std::vector<int> level = net.levels();
    EXPECT_EQ(level[a], 0);
    EXPECT_EQ(level[g1], 1);
    EXPECT_EQ(level[g2], 2);
    EXPECT_EQ(net.depth(), 2);
}

TEST(Netlist, Fanouts) {
    Netlist net;
    const NodeId a = net.addInput();
    const NodeId b = net.addInput();
    const NodeId g1 = net.addGate(GateKind::And, a, b);
    net.markOutput(g1);
    net.markOutput(g1);  // double-used output
    const std::vector<int> fo = net.fanouts();
    EXPECT_EQ(fo[a], 1);
    EXPECT_EQ(fo[g1], 2);
}

TEST(Netlist, PrunedDropsDeadLogicKeepsInputs) {
    Netlist net;
    const NodeId a = net.addInput();
    const NodeId b = net.addInput();
    const NodeId live = net.addGate(GateKind::And, a, b);
    net.addGate(GateKind::Or, a, b);  // dead
    net.markOutput(live);
    const Netlist pruned = net.pruned();
    EXPECT_EQ(pruned.gateCount(), 1u);
    EXPECT_EQ(pruned.inputCount(), 2u);  // interface preserved
    EXPECT_EQ(pruned.outputCount(), 1u);
    pruned.validate();
}

TEST(Netlist, PrunedKeepsUnusedInputs) {
    Netlist net;
    net.addInput();  // never used
    const NodeId b = net.addInput();
    net.markOutput(net.addGate(GateKind::Not, b));
    const Netlist pruned = net.pruned();
    EXPECT_EQ(pruned.inputCount(), 2u);
}

TEST(Netlist, StructuralHashDiscriminates) {
    Netlist a = tinyXorNet();
    Netlist b = tinyXorNet();
    EXPECT_EQ(a.structuralHash(), b.structuralHash());
    Netlist c("other");
    const NodeId x = c.addInput();
    const NodeId y = c.addInput();
    c.markOutput(c.addGate(GateKind::And, x, y));
    EXPECT_NE(a.structuralHash(), c.structuralHash());
}

TEST(Netlist, HashSensitiveToOutputOrder) {
    Netlist a, b;
    for (Netlist* net : {&a, &b}) {
        const NodeId x = net->addInput();
        const NodeId y = net->addInput();
        const NodeId g1 = net->addGate(GateKind::And, x, y);
        const NodeId g2 = net->addGate(GateKind::Or, x, y);
        if (net == &a) {
            net->markOutput(g1);
            net->markOutput(g2);
        } else {
            net->markOutput(g2);
            net->markOutput(g1);
        }
    }
    EXPECT_NE(a.structuralHash(), b.structuralHash());
}

}  // namespace
}  // namespace axf::circuit
