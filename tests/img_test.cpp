#include <gtest/gtest.h>

#include "src/img/image.hpp"
#include "src/img/ssim.hpp"
#include "src/util/rng.hpp"

namespace axf::img {
namespace {

TEST(Image, BasicAccessAndClamping) {
    Image im(4, 3, 7);
    EXPECT_EQ(im.width(), 4);
    EXPECT_EQ(im.height(), 3);
    EXPECT_EQ(im.pixelCount(), 12u);
    EXPECT_EQ(im.at(2, 1), 7);
    im.set(2, 1, 200);
    EXPECT_EQ(im.at(2, 1), 200);
    EXPECT_EQ(im.atClamped(-5, 1), im.at(0, 1));
    EXPECT_EQ(im.atClamped(99, 99), im.at(3, 2));
}

TEST(Image, SyntheticSceneDeterministicAndVaried) {
    const Image a = syntheticScene(64, 64, 42);
    const Image b = syntheticScene(64, 64, 42);
    EXPECT_EQ(a.pixels(), b.pixels());
    const Image c = syntheticScene(64, 64, 43);
    EXPECT_NE(a.pixels(), c.pixels());

    // Scene must have real contrast (not flat).
    int minV = 255, maxV = 0;
    for (std::uint8_t p : a.pixels()) {
        minV = std::min<int>(minV, p);
        maxV = std::max<int>(maxV, p);
    }
    EXPECT_GT(maxV - minV, 80);
}

TEST(Psnr, IdenticalImagesCapped) {
    const Image a = syntheticScene(32, 32, 1);
    EXPECT_DOUBLE_EQ(psnr(a, a), 99.0);
}

TEST(Psnr, DecreasesWithNoise) {
    const Image a = syntheticScene(64, 64, 2);
    util::Rng rng(3);
    Image mild = a, strong = a;
    for (std::size_t i = 0; i < a.pixelCount(); ++i) {
        mild.pixels()[i] = static_cast<std::uint8_t>(
            std::clamp<int>(a.pixels()[i] + static_cast<int>(rng.gaussian(0, 2)), 0, 255));
        strong.pixels()[i] = static_cast<std::uint8_t>(
            std::clamp<int>(a.pixels()[i] + static_cast<int>(rng.gaussian(0, 25)), 0, 255));
    }
    EXPECT_GT(psnr(a, mild), psnr(a, strong));
    EXPECT_GT(psnr(a, strong), 10.0);
}

TEST(Ssim, IdenticalIsOne) {
    const Image a = syntheticScene(64, 64, 4);
    EXPECT_DOUBLE_EQ(ssim(a, a), 1.0);
}

TEST(Ssim, BoundedAndMonotoneInDistortion) {
    const Image a = syntheticScene(64, 64, 5);
    util::Rng rng(6);
    Image mild = a, strong = a;
    for (std::size_t i = 0; i < a.pixelCount(); ++i) {
        mild.pixels()[i] = static_cast<std::uint8_t>(
            std::clamp<int>(a.pixels()[i] + static_cast<int>(rng.gaussian(0, 4)), 0, 255));
        strong.pixels()[i] = static_cast<std::uint8_t>(rng.uniformInt(0, 255));
    }
    const double sMild = ssim(a, mild);
    const double sStrong = ssim(a, strong);
    EXPECT_LT(sStrong, sMild);
    EXPECT_LT(sMild, 1.0);
    EXPECT_GE(sMild, 0.5);
    EXPECT_GE(sStrong, -1.0);
    EXPECT_LE(sStrong, 0.6);
}

TEST(Ssim, ConstantShiftPenalizedLessThanStructureLoss) {
    const Image a = syntheticScene(64, 64, 7);
    Image shifted = a;
    for (auto& p : shifted.pixels())
        p = static_cast<std::uint8_t>(std::min(255, p + 8));  // luminance shift
    Image flat(64, 64, 128);  // structure destroyed
    EXPECT_GT(ssim(a, shifted), ssim(a, flat));
}

TEST(Ssim, BorderArtifactsAreScoredOnUnalignedDimensions) {
    // 70 - 8 = 62, 62 % 4 != 0: the stride-4 sweep alone stops at x0 = 60,
    // so columns 68..69 (and rows 68..69) fall outside every window.  The
    // clamped tail windows must pick them up.
    const Image a = syntheticScene(70, 70, 9);
    Image distorted = a;
    for (int y = 0; y < 70; ++y)
        for (int x = 68; x < 70; ++x)
            distorted.set(x, y, static_cast<std::uint8_t>(255 - distorted.at(x, y)));
    EXPECT_LT(ssim(a, distorted), 1.0);

    Image bottomRow = a;
    for (int x = 0; x < 70; ++x)
        bottomRow.set(x, 69, static_cast<std::uint8_t>(255 - bottomRow.at(x, 69)));
    EXPECT_LT(ssim(a, bottomRow), 1.0);
}

TEST(Ssim, AlignedDimensionsMatchPlainStrideSweep) {
    // When (dim - 8) % 4 == 0 the tail window coincides with the last
    // stride position; the score must equal the historical plain sweep.
    const Image a = syntheticScene(64, 64, 10);
    const Image b = syntheticScene(64, 64, 11);
    constexpr int kWindow = 8, kStride = 4;
    constexpr double kC1 = (0.01 * 255.0) * (0.01 * 255.0);
    constexpr double kC2 = (0.03 * 255.0) * (0.03 * 255.0);
    double total = 0.0;
    std::size_t windows = 0;
    for (int y0 = 0; y0 + kWindow <= 64; y0 += kStride) {
        for (int x0 = 0; x0 + kWindow <= 64; x0 += kStride) {
            double sumA = 0, sumB = 0, sumAA = 0, sumBB = 0, sumAB = 0;
            for (int y = y0; y < y0 + kWindow; ++y) {
                for (int x = x0; x < x0 + kWindow; ++x) {
                    const double va = a.at(x, y), vb = b.at(x, y);
                    sumA += va;
                    sumB += vb;
                    sumAA += va * va;
                    sumBB += vb * vb;
                    sumAB += va * vb;
                }
            }
            constexpr double n = kWindow * kWindow;
            const double muA = sumA / n, muB = sumB / n;
            const double varA = sumAA / n - muA * muA, varB = sumBB / n - muB * muB;
            const double cov = sumAB / n - muA * muB;
            total += ((2.0 * muA * muB + kC1) * (2.0 * cov + kC2)) /
                     ((muA * muA + muB * muB + kC1) * (varA + varB + kC2));
            ++windows;
        }
    }
    EXPECT_DOUBLE_EQ(ssim(a, b), total / static_cast<double>(windows));
}

TEST(Ssim, ShapeChecks) {
    const Image a = syntheticScene(32, 32, 8);
    const Image b = syntheticScene(16, 16, 8);
    EXPECT_THROW(ssim(a, b), std::invalid_argument);
    const Image tiny(4, 4, 0);
    EXPECT_THROW(ssim(tiny, tiny), std::invalid_argument);
}

}  // namespace
}  // namespace axf::img
