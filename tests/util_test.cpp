#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <set>
#include <sstream>
#include <thread>

#include "src/util/bytes.hpp"
#include "src/util/crc32.hpp"
#include "src/util/io.hpp"
#include "src/util/rng.hpp"
#include "src/util/stats.hpp"
#include "src/util/table.hpp"
#include "src/util/timer.hpp"
#include "src/util/watchdog.hpp"

namespace axf::util {
namespace {

TEST(Stats, MeanVarianceStddev) {
    const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    EXPECT_DOUBLE_EQ(mean(xs), 5.0);
    EXPECT_DOUBLE_EQ(variance(xs), 4.0);
    EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(Stats, EmptyAndSingleton) {
    EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
    EXPECT_DOUBLE_EQ(variance(std::vector<double>{3.0}), 0.0);
    EXPECT_DOUBLE_EQ(median(std::vector<double>{}), 0.0);
}

TEST(Stats, MedianAndPercentile) {
    EXPECT_DOUBLE_EQ(median({1.0, 3.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({1.0, 2.0, 3.0, 4.0}), 2.5);
    EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 100.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 50.0), 5.0);
    EXPECT_THROW(percentile({1.0}, 101.0), std::invalid_argument);
}

TEST(Stats, PearsonPerfectAndInverse) {
    const std::vector<double> xs = {1, 2, 3, 4, 5};
    const std::vector<double> up = {2, 4, 6, 8, 10};
    const std::vector<double> down = {5, 4, 3, 2, 1};
    EXPECT_NEAR(pearson(xs, up), 1.0, 1e-12);
    EXPECT_NEAR(pearson(xs, down), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSideIsZero) {
    const std::vector<double> xs = {1, 2, 3};
    const std::vector<double> c = {7, 7, 7};
    EXPECT_DOUBLE_EQ(pearson(xs, c), 0.0);
}

TEST(Stats, PearsonSizeMismatchThrows) {
    EXPECT_THROW(pearson(std::vector<double>{1.0}, std::vector<double>{1.0, 2.0}),
                 std::invalid_argument);
}

TEST(Stats, RanksAverageTies) {
    const std::vector<double> ranked = ranks(std::vector<double>{10.0, 20.0, 20.0, 30.0});
    EXPECT_DOUBLE_EQ(ranked[0], 1.0);
    EXPECT_DOUBLE_EQ(ranked[1], 2.5);
    EXPECT_DOUBLE_EQ(ranked[2], 2.5);
    EXPECT_DOUBLE_EQ(ranked[3], 4.0);
}

TEST(Stats, SpearmanMonotonicNonlinear) {
    std::vector<double> xs, ys;
    for (int i = 1; i <= 20; ++i) {
        xs.push_back(i);
        ys.push_back(i * i * i);  // monotone, nonlinear
    }
    EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
}

TEST(Stats, FitLineRecoversCoefficients) {
    std::vector<double> xs, ys;
    for (int i = 0; i < 10; ++i) {
        xs.push_back(i);
        ys.push_back(3.0 + 2.0 * i);
    }
    const LinearFit fit = fitLine(xs, ys);
    EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
    EXPECT_NEAR(fit.slope, 2.0, 1e-9);
}

TEST(Stats, MapeAndBias) {
    const std::vector<double> mes = {100.0, 200.0};
    const std::vector<double> est = {110.0, 180.0};
    EXPECT_NEAR(mape(mes, est), 10.0, 1e-9);           // (10% + 10%) / 2
    EXPECT_NEAR(relativeBias(mes, est), 0.0, 1e-9);    // +10% and -10% cancel
    const std::vector<double> under = {90.0, 180.0};
    EXPECT_NEAR(relativeBias(mes, under), -10.0, 1e-9);
}

TEST(Rng, Deterministic) {
    Rng a(7), b(7);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniformInt(0, 1000), b.uniformInt(0, 1000));
}

TEST(Rng, UniformIntInRange) {
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = rng.uniformInt(5, 9);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 9u);
    }
}

TEST(Rng, IndexEmptyThrows) {
    Rng rng(1);
    EXPECT_THROW(rng.index(0), std::invalid_argument);
}

TEST(Rng, SampleIndicesDistinct) {
    Rng rng(3);
    const std::vector<std::size_t> sample = rng.sampleIndices(50, 20);
    EXPECT_EQ(sample.size(), 20u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 20u);
    for (std::size_t v : sample) EXPECT_LT(v, 50u);
    EXPECT_THROW(rng.sampleIndices(3, 4), std::invalid_argument);
}

TEST(Rng, BernoulliRoughFrequency) {
    Rng rng(4);
    int hits = 0;
    for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(Rng, ForkIndependentStreams) {
    Rng parent(5);
    Rng child = parent.fork();
    // The child stream should not replay the parent's next outputs.
    Rng parentCopy(5);
    parentCopy.fork();
    EXPECT_EQ(parent.uniformInt(0, 1 << 30), parentCopy.uniformInt(0, 1 << 30));
    (void)child;
}

TEST(Table, PrintsAlignedAndCsv) {
    Table t({"a", "b"});
    t.addRow({"1", "hello"});
    t.addRow({"22", "x,y"});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("| a "), std::string::npos);
    std::ostringstream csv;
    t.writeCsv(csv);
    EXPECT_NE(csv.str().find("\"x,y\""), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, RejectsBadShapes) {
    EXPECT_THROW(Table({}), std::invalid_argument);
    Table t({"a"});
    EXPECT_THROW(t.addRow({"1", "2"}), std::invalid_argument);
}

TEST(Table, Formatting) {
    EXPECT_EQ(Table::num(1.23456, 2), "1.23");
    EXPECT_EQ(Table::integer(42), "42");
    EXPECT_EQ(Table::percent(0.715, 1), "71.5%");
}

TEST(Timer, MeasuresElapsed) {
    Timer t;
    volatile double sink = 0.0;
    for (int i = 0; i < 100000; ++i) sink = sink + i;
    EXPECT_GE(t.seconds(), 0.0);
    EXPECT_GE(t.milliseconds(), t.seconds());
}

TEST(Crc32, MatchesTheIeeeCheckValue) {
    // CRC-32/ISO-HDLC check value: crc32("123456789") == 0xCBF43926.
    const char* digits = "123456789";
    EXPECT_EQ(crc32(reinterpret_cast<const unsigned char*>(digits), 9), 0xCBF43926u);
    EXPECT_EQ(crc32(reinterpret_cast<const unsigned char*>(digits), 0), 0u);
}

TEST(Crc32, SeedChainingComposes) {
    // crc32(a ++ b) == crc32(b, seed = crc32(a)) — the property the cache
    // uses to chain key bytes into the payload checksum.
    const unsigned char data[] = {0x10, 0x32, 0x54, 0x76, 0x98, 0xBA, 0xDC, 0xFE, 0x01};
    const std::uint32_t whole = crc32(data, sizeof data);
    for (std::size_t split = 0; split <= sizeof data; ++split) {
        const std::uint32_t head = crc32(data, split);
        EXPECT_EQ(crc32(data + split, sizeof data - split, head), whole) << split;
    }
}

TEST(Rng, SerializeRoundTripContinuesTheExactSequence) {
    Rng rng(0xFEEDFACE);
    for (int i = 0; i < 37; ++i) rng.uniformInt(0, 1u << 30);  // advance off the seed state

    ByteWriter out;
    rng.serialize(out);
    ByteReader in(out.bytes());
    Rng restored(0);  // wrong seed on purpose; deserialize must overwrite
    ASSERT_TRUE(Rng::deserialize(in, restored));
    EXPECT_TRUE(rng == restored);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniformInt(0, 1u << 30), restored.uniformInt(0, 1u << 30));
    EXPECT_TRUE(rng == restored);
}

TEST(Rng, DeserializeRejectsTruncatedState) {
    Rng rng(0x123);
    ByteWriter out;
    rng.serialize(out);
    std::vector<std::uint8_t> bytes = out.bytes();
    bytes.resize(bytes.size() / 2);
    ByteReader in(bytes);
    Rng restored(0);
    EXPECT_FALSE(Rng::deserialize(in, restored));
}

class AtomicIoTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = (std::filesystem::temp_directory_path() / "axf_util_io_test").string();
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }
    std::string dir_;
};

TEST_F(AtomicIoTest, WriteThenReadBack) {
    const std::vector<unsigned char> data = {1, 2, 3, 0, 255};
    const std::string path = dir_ + "/a.bin";
    const AtomicWriteResult r = atomicWriteFile(path, data);
    EXPECT_TRUE(static_cast<bool>(r));
    EXPECT_EQ(r.attempts, 1);
    const auto back = readFileBytes(path);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, data);
    // No stray temp files left behind.
    std::size_t files = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
        (void)entry;
        ++files;
    }
    EXPECT_EQ(files, 1u);
}

TEST_F(AtomicIoTest, ReplaceIsAllOrNothing) {
    const std::string path = dir_ + "/a.bin";
    ASSERT_TRUE(atomicWriteFile(path, std::vector<unsigned char>(100, 0xAA)));
    ASSERT_TRUE(atomicWriteFile(path, std::vector<unsigned char>(3, 0xBB)));
    const auto back = readFileBytes(path);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, std::vector<unsigned char>(3, 0xBB));
}

TEST_F(AtomicIoTest, MissingDirectoryFailsAfterBoundedRetries) {
    AtomicWriteOptions options;
    options.retries = 2;
    options.backoffMs = 1;
    const std::vector<unsigned char> data = {1};
    const AtomicWriteResult r =
        atomicWriteFile(dir_ + "/no/such/dir/a.bin", data.data(), data.size(), options);
    EXPECT_FALSE(static_cast<bool>(r));
    EXPECT_FALSE(readFileBytes(dir_ + "/no/such/dir/a.bin").has_value());
}

TEST(WatchdogTest, DisabledByDefaultAndQuietWhenPulsed) {
    Watchdog idle({});  // deadline 0: disabled
    EXPECT_FALSE(idle.enabled());
    idle.pulse();
    EXPECT_EQ(idle.stallsLogged(), 0);
}

TEST(WatchdogTest, LogsStallsPastTheDeadline) {
    Watchdog::Options options;
    options.deadlineSeconds = 0.05;
    options.label = "util-test";
    Watchdog dog(options);
    EXPECT_TRUE(dog.enabled());
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (dog.stallsLogged() == 0 && std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_GE(dog.stallsLogged(), 1);
}

}  // namespace
}  // namespace axf::util
