#include <gtest/gtest.h>

#include "src/circuit/simulator.hpp"
#include "src/circuit/transform.hpp"
#include "src/gen/adders.hpp"
#include "src/gen/multipliers.hpp"
#include "src/util/rng.hpp"

namespace axf::circuit {
namespace {

/// Property check: two netlists with identical interfaces compute the same
/// function on `blocks` random 64-lane blocks.
void expectEquivalent(const Netlist& a, const Netlist& b, std::uint64_t seed, int blocks = 8) {
    ASSERT_EQ(a.inputCount(), b.inputCount());
    ASSERT_EQ(a.outputCount(), b.outputCount());
    Simulator sa(a), sb(b);
    util::Rng rng(seed);
    std::vector<Simulator::Word> in(a.inputCount());
    std::vector<Simulator::Word> outA(a.outputCount()), outB(b.outputCount());
    for (int blk = 0; blk < blocks; ++blk) {
        for (auto& w : in) w = rng.uniformInt(0, ~std::uint64_t{0});
        sa.evaluate(in, outA);
        sb.evaluate(in, outB);
        for (std::size_t o = 0; o < outA.size(); ++o)
            ASSERT_EQ(outA[o], outB[o]) << "output " << o << " differs in block " << blk;
    }
}

TEST(Simplify, ConstantFolding) {
    Netlist net;
    const NodeId a = net.addInput();
    const NodeId zero = net.addConst(false);
    const NodeId one = net.addConst(true);
    net.markOutput(net.addGate(GateKind::And, a, zero));  // -> 0
    net.markOutput(net.addGate(GateKind::And, a, one));   // -> a
    net.markOutput(net.addGate(GateKind::Xor, a, one));   // -> ~a
    net.markOutput(net.addGate(GateKind::Or, a, one));    // -> 1
    const Netlist simple = simplify(net);
    // One Not gate should be the only logic left.
    EXPECT_EQ(simple.gateCount(), 1u);
    expectEquivalent(net, simple, 0x51);
}

TEST(Simplify, IdentityFolding) {
    Netlist net;
    const NodeId a = net.addInput();
    net.markOutput(net.addGate(GateKind::Xor, a, a));   // -> 0
    net.markOutput(net.addGate(GateKind::And, a, a));   // -> a
    net.markOutput(net.addGate(GateKind::Xnor, a, a));  // -> 1
    const Netlist simple = simplify(net);
    EXPECT_EQ(simple.gateCount(), 0u);
    expectEquivalent(net, simple, 0x52);
}

TEST(Simplify, DoubleInversion) {
    Netlist net;
    const NodeId a = net.addInput();
    net.markOutput(net.addGate(GateKind::Not, net.addGate(GateKind::Not, a)));
    const Netlist simple = simplify(net);
    EXPECT_EQ(simple.gateCount(), 0u);
    expectEquivalent(net, simple, 0x53);
}

TEST(Simplify, CommonSubexpressionElimination) {
    Netlist net;
    const NodeId a = net.addInput();
    const NodeId b = net.addInput();
    net.markOutput(net.addGate(GateKind::And, a, b));
    net.markOutput(net.addGate(GateKind::And, b, a));  // commutative duplicate
    const Netlist simple = simplify(net);
    EXPECT_EQ(simple.gateCount(), 1u);
    expectEquivalent(net, simple, 0x54);
}

TEST(Simplify, MuxRules) {
    Netlist net;
    const NodeId a = net.addInput();
    const NodeId b = net.addInput();
    const NodeId s = net.addInput();
    const NodeId zero = net.addConst(false);
    const NodeId one = net.addConst(true);
    net.markOutput(net.addGate(GateKind::Mux, a, b, zero));  // -> a
    net.markOutput(net.addGate(GateKind::Mux, a, b, one));   // -> b
    net.markOutput(net.addGate(GateKind::Mux, zero, one, s));  // -> s
    net.markOutput(net.addGate(GateKind::Mux, one, zero, s));  // -> ~s
    const Netlist simple = simplify(net);
    EXPECT_LE(simple.gateCount(), 1u);
    expectEquivalent(net, simple, 0x55);
}

TEST(Simplify, MajRules) {
    Netlist net;
    const NodeId a = net.addInput();
    const NodeId b = net.addInput();
    const NodeId zero = net.addConst(false);
    const NodeId one = net.addConst(true);
    net.markOutput(net.addGate(GateKind::Maj, a, b, zero));  // -> and
    net.markOutput(net.addGate(GateKind::Maj, a, b, one));   // -> or
    net.markOutput(net.addGate(GateKind::Maj, a, a, b));     // -> a
    const Netlist simple = simplify(net);
    EXPECT_EQ(simple.gateCount(), 2u);
    expectEquivalent(net, simple, 0x56);
}

class SimplifyEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(SimplifyEquivalence, PreservesArithmeticFunctions) {
    // Property sweep over real generator outputs.
    const int n = GetParam();
    for (const Netlist& net :
         {gen::rippleCarryAdder(n), gen::koggeStoneAdder(n), gen::carrySelectAdder(n, 2),
          gen::loaAdder(n, n / 2), gen::acaAdder(n, 2)}) {
        const Netlist simple = simplify(net);
        expectEquivalent(net, simple, 0x60 + static_cast<std::uint64_t>(n));
        EXPECT_LE(simple.gateCount(), net.gateCount());
        simple.validate();
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, SimplifyEquivalence, ::testing::Values(2, 3, 4, 6, 8, 12));

TEST(LowerToTwoInput, RemovesWideGatesPreservingFunction) {
    for (const Netlist& net : {gen::carrySelectAdder(6, 2), gen::wallaceMultiplier(4),
                               gen::arrayMultiplier(4)}) {
        const Netlist lowered = lowerToTwoInput(net);
        for (const Node& node : lowered.nodes())
            EXPECT_LE(fanInCount(node.kind), 2) << gateKindName(node.kind);
        expectEquivalent(net, lowered, 0x70);
        lowered.validate();
    }
}

TEST(Simplify, Idempotent) {
    const Netlist net = gen::wallaceMultiplier(4);
    const Netlist once = simplify(net);
    const Netlist twice = simplify(once);
    EXPECT_EQ(once.structuralHash(), twice.structuralHash());
}

}  // namespace
}  // namespace axf::circuit
