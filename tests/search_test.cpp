// src/search subsystem: ParetoArchive property tests (2 and 3 objectives,
// cap thinning, epsilon coarsening), IslandSearch determinism (bit-equal
// at any thread count, every strategy), the serial-equivalence test
// pinning `islands = 1` to the pre-refactor AutoAx archive algorithm, and
// the CGP adapter proving the engine is workload-agnostic.

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "src/autoax/accelerator.hpp"
#include "src/autoax/dse.hpp"
#include "src/autoax/search_problem.hpp"
#include "src/gen/adders.hpp"
#include "src/gen/cgp.hpp"
#include "src/gen/multipliers.hpp"
#include "src/img/image.hpp"
#include "src/search/island_search.hpp"
#include "src/search/pareto_archive.hpp"
#include "src/search/toy_problem.hpp"
#include "src/synth/fpga.hpp"
#include "src/util/select.hpp"
#include "src/util/thread_pool.hpp"

namespace axf::search {
namespace {

// --- ParetoArchive -----------------------------------------------------

using IntArchive = ParetoArchive<int>;

TEST(ParetoArchive, TwoObjectiveInsertAndDominate) {
    IntArchive archive;
    EXPECT_TRUE(archive.insert(1, {1.0, 5.0}));
    EXPECT_FALSE(archive.insert(1, {0.0, 0.0}));   // duplicate genome
    EXPECT_FALSE(archive.insert(2, {2.0, 6.0}));   // dominated
    EXPECT_TRUE(archive.insert(3, {1.0, 5.0}));    // equal objectives coexist (legacy)
    EXPECT_TRUE(archive.insert(4, {2.0, 4.0}));    // trade-off coexists
    EXPECT_EQ(archive.size(), 3u);
    EXPECT_TRUE(archive.insert(5, {0.5, 3.0}));    // dominates all three -> erases them
    ASSERT_EQ(archive.size(), 1u);
    EXPECT_EQ(archive[0].genome, 5);
}

TEST(ParetoArchive, ThreeObjectiveInvariantUnderRandomInserts) {
    util::Rng rng(0x3D);
    IntArchive archive(/*cap=*/0);
    for (int i = 0; i < 400; ++i)
        archive.insert(i, {rng.uniformReal(0, 1), rng.uniformReal(0, 1),
                           rng.uniformReal(0, 1)});
    ASSERT_FALSE(archive.empty());
    // Mutual non-domination is the archive invariant.
    for (const auto& a : archive.entries())
        for (const auto& b : archive.entries()) {
            if (a.genome == b.genome) continue;
            EXPECT_FALSE(dominates(a.objectives, b.objectives))
                << a.genome << " dominates " << b.genome;
        }
}

TEST(ParetoArchive, CapThinningKeepsExtremesAlongLastAxis) {
    IntArchive archive(/*cap=*/4);
    // A clean 2-objective staircase front: no erasures, cap does the work.
    for (int i = 0; i < 16; ++i)
        archive.insert(i, {static_cast<double>(16 - i), static_cast<double>(i)});
    EXPECT_EQ(archive.size(), 4u);
    double lo = 1e30, hi = -1e30;
    for (const auto& e : archive.entries()) {
        lo = std::min(lo, e.objectives[1]);
        hi = std::max(hi, e.objectives[1]);
    }
    EXPECT_EQ(lo, 0.0);   // cheapest extreme survives
    EXPECT_EQ(hi, 15.0);  // most expensive (highest quality) extreme survives
}

TEST(ParetoArchive, EpsilonDominanceCoarsens) {
    IntArchive exact(/*cap=*/0, /*epsilon=*/0.0);
    IntArchive coarse(/*cap=*/0, /*epsilon=*/0.1);
    int id = 0;
    for (double x = 0.0; x <= 1.0; x += 0.01) {
        exact.insert(id, {x, 1.0 - x});
        coarse.insert(id, {x, 1.0 - x});
        ++id;
    }
    EXPECT_GT(exact.size(), coarse.size());
    EXPECT_GE(coarse.size(), 1u);
}

// --- IslandSearch over a cheap synthetic problem -----------------------

/// The shared reference Problem (6 slots over a 0..9 menu): objective 0
/// is distance to the all-nines target, objective 1 the element sum —
/// the true front is the staircase between all-zeros and all-nines.
using TestToyProblem = ToyProblem<6, 10>;
using ToySearch = IslandSearch<TestToyProblem>;

ToySearch::Options toyOptions() {
    ToySearch::Options o;
    o.islands = 4;
    o.generations = 40;
    o.batch = 3;
    o.seedsPerIsland = 5;
    o.migrationInterval = 8;
    o.migrants = 3;
    o.archiveCap = 32;
    o.seed = 0x15A;
    o.islandStrategies = {Strategy::HillClimb, Strategy::Anneal, Strategy::Genetic};
    return o;
}

void expectSameResult(const ToySearch::Result& a, const ToySearch::Result& b) {
    EXPECT_EQ(a.evaluations, b.evaluations);
    EXPECT_EQ(a.islandEvaluations, b.islandEvaluations);
    ASSERT_EQ(a.archive.size(), b.archive.size());
    for (std::size_t i = 0; i < a.archive.size(); ++i) {
        EXPECT_EQ(a.archive[i].genome, b.archive[i].genome) << "entry " << i;
        EXPECT_EQ(a.archive[i].objectives, b.archive[i].objectives) << "entry " << i;
    }
}

TEST(IslandSearch, BitIdenticalAtAnyThreadCount) {
    const TestToyProblem problem;
    ToySearch::Options serial = toyOptions();
    serial.threads = 1;
    const ToySearch::Result serialResult = IslandSearch(problem, serial).run();

    util::ThreadPool workers(3);
    ToySearch::Options pooled = toyOptions();
    pooled.pool = &workers;
    const ToySearch::Result pooledResult = IslandSearch(problem, pooled).run();
    expectSameResult(serialResult, pooledResult);

    util::ThreadPool many(7);
    ToySearch::Options wide = toyOptions();
    wide.pool = &many;
    expectSameResult(serialResult, IslandSearch(problem, wide).run());
}

TEST(IslandSearch, EveryStrategyProducesNonDominatedArchive) {
    const TestToyProblem problem;
    for (Strategy strategy : {Strategy::HillClimb, Strategy::Anneal, Strategy::Genetic}) {
        ToySearch::Options o = toyOptions();
        o.islandStrategies.clear();
        o.strategy = strategy;
        const ToySearch::Result result = IslandSearch(problem, o).run();
        ASSERT_FALSE(result.archive.empty()) << strategyName(strategy);
        for (const auto& a : result.archive.entries())
            for (const auto& b : result.archive.entries())
                if (!(a.genome == b.genome))
                    EXPECT_FALSE(dominates(a.objectives, b.objectives)) << strategyName(strategy);
        // The extremes are easy to reach on this toy: the search must find
        // the all-zeros cost extreme or something near it.
        double cheapest = 1e30;
        for (const auto& e : result.archive.entries())
            cheapest = std::min(cheapest, e.objectives[1]);
        EXPECT_LE(cheapest, 9.0) << strategyName(strategy);
    }
}

TEST(IslandSearch, EvaluationAccountingIsExact) {
    const TestToyProblem problem;
    ToySearch::Options o = toyOptions();
    o.islandStrategies.clear();
    const ToySearch::Result result = IslandSearch(problem, o).run();
    // Per island: seedsPerIsland + generations * batch.
    const std::size_t perIsland =
        static_cast<std::size_t>(o.seedsPerIsland + o.generations * o.batch);
    EXPECT_EQ(result.islandEvaluations.size(), static_cast<std::size_t>(o.islands));
    for (std::size_t e : result.islandEvaluations) EXPECT_EQ(e, perIsland);
    EXPECT_EQ(result.evaluations, perIsland * static_cast<std::size_t>(o.islands));
}

TEST(IslandSearch, SeededEntriesReachEveryIsland) {
    const TestToyProblem problem;
    ToySearch::Options o = toyOptions();
    o.generations = 0;
    o.seedsPerIsland = 0;
    // One unbeatable seed entry: with no search generations the merged
    // archive must still surface it (it entered every island).
    std::vector<ToySearch::Entry> seeded;
    seeded.push_back({std::vector<int>(TestToyProblem::kLen, 9), Objectives{0.0, 54.0}});
    const ToySearch::Result result = IslandSearch(problem, o).run(seeded);
    ASSERT_EQ(result.archive.size(), 1u);
    EXPECT_EQ(result.archive[0].genome, std::vector<int>(TestToyProblem::kLen, 9));
}

}  // namespace
}  // namespace axf::search

// --- serial equivalence: islands=1 == the pre-refactor DSE -------------

namespace axf::autoax {
namespace {

Component makeComponent(circuit::Netlist netlist, circuit::ArithSignature sig) {
    Component c;
    c.name = netlist.name();
    c.signature = sig;
    c.error = error::analyzeError(netlist, sig);
    c.fpga = synth::FpgaFlow().implement(netlist);
    c.netlist = std::move(netlist);
    return c;
}

const GaussianAccelerator& accelerator() {
    static const GaussianAccelerator kAccel = [] {
        std::vector<Component> mults;
        mults.push_back(makeComponent(gen::wallaceMultiplier(8), gen::multiplierSignature(8)));
        for (int t : {4, 6})
            mults.push_back(
                makeComponent(gen::truncatedMultiplier(8, t), gen::multiplierSignature(8)));
        std::vector<Component> adds;
        adds.push_back(makeComponent(gen::rippleCarryAdder(16), gen::adderSignature(16)));
        adds.push_back(makeComponent(gen::loaAdder(16, 6), gen::adderSignature(16)));
        return GaussianAccelerator(std::move(mults), std::move(adds));
    }();
    return kAccel;
}

/// VERBATIM copy of the pre-refactor (PR 3/4) archive machinery: the
/// legacy reference `AutoAxFpgaFlow::run` below is pinned against the
/// engine-backed flow, so any drift in the `islands = 1` path shows up as
/// a bit-level diff here.
struct LegacyArchiveEntry {
    AcceleratorConfig config;
    double estSsim = 0.0;
    double estCost = 0.0;
};

AcceleratorConfig legacyMutate(const ConfigSpace& space, AcceleratorConfig c, util::Rng& rng) {
    const int moves = 1 + static_cast<int>(rng.index(2));
    for (int i = 0; i < moves; ++i) {
        const std::size_t slot = rng.index(c.choice.size());
        c.choice[slot] =
            static_cast<int>(rng.index(static_cast<std::size_t>(space.menuSizeOf(slot))));
    }
    return c;
}

bool legacyArchiveInsert(std::vector<LegacyArchiveEntry>& archive, LegacyArchiveEntry entry,
                         std::size_t cap) {
    for (const LegacyArchiveEntry& e : archive) {
        if (e.config == entry.config) return false;
        if (e.estSsim >= entry.estSsim && e.estCost <= entry.estCost &&
            (e.estSsim > entry.estSsim || e.estCost < entry.estCost))
            return false;
    }
    std::erase_if(archive, [&](const LegacyArchiveEntry& e) {
        return entry.estSsim >= e.estSsim && entry.estCost <= e.estCost &&
               (entry.estSsim > e.estSsim || entry.estCost < e.estCost);
    });
    archive.push_back(std::move(entry));
    if (archive.size() > cap && cap > 0) {
        std::sort(archive.begin(), archive.end(),
                  [](const LegacyArchiveEntry& a, const LegacyArchiveEntry& b) {
                      return a.estCost < b.estCost;
                  });
        util::thinUniform(archive, cap);
    }
    return true;
}

AutoAxFpgaFlow::Result legacyRun(const AcceleratorModel& model,
                                 const AutoAxFpgaFlow::Config& config) {
    util::Rng rng(config.seed);
    const ConfigSpace& space = model.configSpace();
    AutoAxFpgaFlow::Result result;
    result.designSpaceSize = space.designSpaceSize();

    std::vector<img::Image> scenes;
    for (int s = 0; s < config.sceneCount; ++s)
        scenes.push_back(img::syntheticScene(config.imageSize, config.imageSize,
                                             config.seed + static_cast<std::uint64_t>(s)));
    EvalEngine engine(model, std::move(scenes), {.threads = config.threads});

    std::size_t trainTarget = static_cast<std::size_t>(config.trainConfigs);
    if (space.designSpaceSize() < static_cast<double>(trainTarget))
        trainTarget = static_cast<std::size_t>(space.designSpaceSize());
    std::unordered_set<std::uint64_t> seen;
    std::vector<AcceleratorConfig> trainConfigs;
    std::size_t attempts = 0;
    const std::size_t maxAttempts = 64 * trainTarget + 1024;
    while (trainConfigs.size() < trainTarget && attempts++ < maxAttempts) {
        AcceleratorConfig c = space.randomConfig(rng);
        if (!seen.insert(c.hash()).second) continue;
        trainConfigs.push_back(std::move(c));
    }
    for (AcceleratorConfig corner : {space.accurateCorner(), space.cheapCorner()})
        if (seen.insert(corner.hash()).second) trainConfigs.push_back(std::move(corner));
    result.trainingSet = engine.evaluateBatch(trainConfigs);
    const AcceleratorEstimators estimators =
        AcceleratorEstimators::train(model, result.trainingSet);

    for (core::FpgaParam param : core::kAllFpgaParams) {
        AutoAxFpgaFlow::ScenarioResult scenario;
        scenario.param = param;
        util::Rng searchRng = rng.fork();

        std::vector<LegacyArchiveEntry> archive;
        const auto estimated = [&](AcceleratorConfig c) {
            ++scenario.estimatorQueries;
            LegacyArchiveEntry e;
            e.estSsim = estimators.estimateSsim(model, c);
            e.estCost = estimators.estimateCost(model, c, param);
            e.config = std::move(c);
            return e;
        };
        for (int i = 0; i < config.archiveSeed; ++i)
            legacyArchiveInsert(archive, estimated(space.randomConfig(searchRng)),
                                config.archiveCap);
        for (const EvaluatedConfig& t : result.trainingSet)
            legacyArchiveInsert(archive,
                                LegacyArchiveEntry{t.config, t.ssim, costParamOf(t.cost, param)},
                                config.archiveCap);

        for (int it = 0; it < config.hillIterations; ++it) {
            const LegacyArchiveEntry& parent = archive[searchRng.index(archive.size())];
            legacyArchiveInsert(archive, estimated(legacyMutate(space, parent.config, searchRng)),
                                config.archiveCap);
        }

        std::vector<AcceleratorConfig> archiveConfigs;
        archiveConfigs.reserve(archive.size());
        for (const LegacyArchiveEntry& e : archive) archiveConfigs.push_back(e.config);
        const std::size_t freshBefore = engine.freshEvaluations();
        scenario.autoax = engine.evaluateBatch(archiveConfigs);
        scenario.realEvaluations = engine.freshEvaluations() - freshBefore;

        std::vector<AcceleratorConfig> randomConfigs;
        std::unordered_set<std::uint64_t> drawn;
        std::size_t drawAttempts = 0;
        const std::size_t maxDrawAttempts = 64 * scenario.realEvaluations + 1024;
        while (randomConfigs.size() < scenario.realEvaluations &&
               drawAttempts++ < maxDrawAttempts) {
            AcceleratorConfig c = space.randomConfig(searchRng);
            if (engine.isMemoized(c) || !drawn.insert(c.hash()).second) continue;
            randomConfigs.push_back(std::move(c));
        }
        while (randomConfigs.size() < scenario.realEvaluations)
            randomConfigs.push_back(space.randomConfig(searchRng));
        scenario.random = engine.evaluateBatch(randomConfigs);

        result.scenarios.push_back(std::move(scenario));
    }
    result.totalRealEvaluations = engine.freshEvaluations();
    return result;
}

void expectSameFlowResult(const AutoAxFpgaFlow::Result& a, const AutoAxFpgaFlow::Result& b) {
    ASSERT_EQ(a.trainingSet.size(), b.trainingSet.size());
    for (std::size_t i = 0; i < a.trainingSet.size(); ++i) {
        EXPECT_EQ(a.trainingSet[i].config, b.trainingSet[i].config);
        EXPECT_EQ(a.trainingSet[i].ssim, b.trainingSet[i].ssim);
    }
    EXPECT_EQ(a.totalRealEvaluations, b.totalRealEvaluations);
    ASSERT_EQ(a.scenarios.size(), b.scenarios.size());
    for (std::size_t s = 0; s < a.scenarios.size(); ++s) {
        const auto& x = a.scenarios[s];
        const auto& y = b.scenarios[s];
        EXPECT_EQ(x.estimatorQueries, y.estimatorQueries) << "scenario " << s;
        EXPECT_EQ(x.realEvaluations, y.realEvaluations) << "scenario " << s;
        ASSERT_EQ(x.autoax.size(), y.autoax.size()) << "scenario " << s;
        for (std::size_t i = 0; i < x.autoax.size(); ++i) {
            EXPECT_EQ(x.autoax[i].config, y.autoax[i].config) << s << "/" << i;
            EXPECT_EQ(x.autoax[i].ssim, y.autoax[i].ssim) << s << "/" << i;
            EXPECT_EQ(x.autoax[i].cost.lutCount, y.autoax[i].cost.lutCount);
            EXPECT_EQ(x.autoax[i].cost.powerMw, y.autoax[i].cost.powerMw);
            EXPECT_EQ(x.autoax[i].cost.latencyNs, y.autoax[i].cost.latencyNs);
        }
        ASSERT_EQ(x.random.size(), y.random.size()) << "scenario " << s;
        for (std::size_t i = 0; i < x.random.size(); ++i) {
            EXPECT_EQ(x.random[i].config, y.random[i].config) << s << "/" << i;
            EXPECT_EQ(x.random[i].ssim, y.random[i].ssim) << s << "/" << i;
        }
    }
}

AutoAxFpgaFlow::Config smallFlowConfig() {
    AutoAxFpgaFlow::Config cfg;
    cfg.trainConfigs = 12;
    cfg.hillIterations = 80;
    cfg.archiveSeed = 6;
    cfg.archiveCap = 30;
    cfg.imageSize = 48;
    cfg.sceneCount = 2;
    return cfg;
}

TEST(IslandDse, SingleIslandPinsPreRefactorArchive) {
    AutoAxFpgaFlow::Config cfg = smallFlowConfig();
    cfg.threads = 1;
    // Defaults: islands = 1, searchBatch = 1, HillClimb — the legacy path.
    const AutoAxFpgaFlow::Result engine = AutoAxFpgaFlow(cfg).run(accelerator());
    const AutoAxFpgaFlow::Result legacy = legacyRun(accelerator(), cfg);
    expectSameFlowResult(legacy, engine);
}

TEST(IslandDse, MultiIslandResultBitIdenticalAtAnyThreadCount) {
    AutoAxFpgaFlow::Config cfg = smallFlowConfig();
    cfg.islands = 3;
    cfg.searchBatch = 4;
    cfg.migrationInterval = 4;
    cfg.islandStrategies = {search::Strategy::HillClimb, search::Strategy::Anneal,
                            search::Strategy::Genetic};

    AutoAxFpgaFlow::Config serialCfg = cfg;
    serialCfg.threads = 1;
    const AutoAxFpgaFlow::Result serial = AutoAxFpgaFlow(serialCfg).run(accelerator());

    util::ThreadPool workers(3);
    AutoAxFpgaFlow::Config pooledCfg = cfg;
    pooledCfg.pool = &workers;
    const AutoAxFpgaFlow::Result pooled = AutoAxFpgaFlow(pooledCfg).run(accelerator());

    expectSameFlowResult(serial, pooled);
}

TEST(IslandDse, IslandCountChangesSearchButStaysValid) {
    // 1 island vs 4 islands legitimately explore differently, but both
    // must satisfy the flow invariants (the equal-budget baseline above
    // all) — and the 4-island run must not degenerate.
    AutoAxFpgaFlow::Config cfg = smallFlowConfig();
    cfg.islands = 4;
    cfg.searchBatch = 2;
    const AutoAxFpgaFlow::Result result = AutoAxFpgaFlow(cfg).run(accelerator());
    ASSERT_EQ(result.scenarios.size(), 3u);
    for (const auto& s : result.scenarios) {
        EXPECT_FALSE(s.autoax.empty());
        EXPECT_LE(s.autoax.size(), cfg.archiveCap);
        EXPECT_EQ(s.random.size(), s.realEvaluations);
        EXPECT_GT(s.estimatorQueries, static_cast<std::size_t>(cfg.hillIterations));
    }
}

}  // namespace
}  // namespace axf::autoax

// --- the CGP workload through the same engine --------------------------

namespace axf::gen {
namespace {

TEST(CgpSearchProblem, IslandSearchFindsErrorSizeTradeoffs) {
    const circuit::Netlist seedNet = rippleCarryAdder(4);
    const circuit::ArithSignature sig = adderSignature(4);
    util::Rng genomeRng(0xC6);
    const CgpGenome seedGenome = CgpGenome::seedFromNetlist(seedNet, 8, genomeRng);
    const CgpSearchProblem problem(sig, seedGenome.params());

    // The exact seed circuit enters every island as shared knowledge.
    using Search = search::IslandSearch<CgpSearchProblem>;
    std::vector<Search::Entry> seeded;
    seeded.push_back(
        {seedGenome, search::Objectives{0.0, static_cast<double>(seedGenome.activeCells())}});

    Search::Options options;
    options.islands = 2;
    options.generations = 25;
    options.batch = 2;
    options.seedsPerIsland = 0;
    options.migrationInterval = 5;
    options.archiveCap = 24;
    options.seed = 0xC6;
    options.islandStrategies = {search::Strategy::HillClimb, search::Strategy::Genetic};

    Search::Options serialOptions = options;
    serialOptions.threads = 1;
    const Search::Result serial = Search(problem, serialOptions).run(seeded);

    util::ThreadPool workers(3);
    options.pool = &workers;
    const Search::Result pooled = Search(problem, options).run(seeded);

    // Same bits at any thread count — for a completely different workload
    // than the accelerator DSE.
    ASSERT_EQ(serial.archive.size(), pooled.archive.size());
    for (std::size_t i = 0; i < serial.archive.size(); ++i) {
        EXPECT_EQ(serial.archive[i].genome, pooled.archive[i].genome);
        EXPECT_EQ(serial.archive[i].objectives, pooled.archive[i].objectives);
    }

    // The archive is a real error/size trade-off family: mutually
    // non-dominated, and the exact seed survives as the MED = 0 extreme
    // (nothing can dominate it without being exact AND smaller).
    ASSERT_FALSE(serial.archive.empty());
    double bestMed = 1e30;
    for (const auto& e : serial.archive.entries()) bestMed = std::min(bestMed, e.objectives[0]);
    EXPECT_EQ(bestMed, 0.0);
    for (const auto& a : serial.archive.entries())
        for (const auto& b : serial.archive.entries())
            if (!(a.genome == b.genome))
                EXPECT_FALSE(search::dominates(a.objectives, b.objectives));
}

TEST(CgpGenome, CrossoverRequiresMatchingGeometry) {
    util::Rng rng(0x11);
    CgpParams small;
    small.inputs = 4;
    small.outputs = 2;
    small.cells = 10;
    CgpParams big = small;
    big.cells = 20;
    const CgpGenome a(small, rng);
    const CgpGenome b(big, rng);
    EXPECT_THROW(CgpGenome::crossover(a, b, rng), std::invalid_argument);

    const CgpGenome c(small, rng);
    const CgpGenome child = CgpGenome::crossover(a, c, rng);
    // Every gene of the child comes from one of its parents.
    const circuit::Netlist decoded = child.decode();
    EXPECT_EQ(decoded.inputCount(), 4u);
    EXPECT_EQ(decoded.outputCount(), 2u);
}

}  // namespace
}  // namespace axf::gen
