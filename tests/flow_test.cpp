#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "src/core/flow.hpp"
#include "src/core/release.hpp"

namespace axf::core {
namespace {

/// Small but real library shared by the flow tests (structural only; no
/// evolution, so this stays fast and deterministic).
gen::AcLibrary smallLibrary() {
    gen::LibraryConfig cfg;
    cfg.op = circuit::ArithOp::Multiplier;
    cfg.width = 8;  // ~90 structural designs: big enough that the flow
    cfg.structuralOnly = true;  // must not synthesize the whole library
    return gen::buildLibrary(cfg);
}

/// One shared flow run reused by the read-only assertions below.
const FlowResult& sharedResult() {
    static const FlowResult kResult = [] {
        ApproxFpgasFlow::Config cfg;
        cfg.trainFraction = 0.15;  // small library: keep the subset meaningful
        return ApproxFpgasFlow(cfg).run(smallLibrary());
    }();
    return kResult;
}

class FlowTest : public ::testing::Test {
protected:
    static const FlowResult& result() { return sharedResult(); }
};

TEST_F(FlowTest, LeaderboardCoversAllModelsAndParams) {
    EXPECT_EQ(result().leaderboard.size(), 18u);
    for (const ModelScore& s : result().leaderboard) {
        ASSERT_EQ(s.fidelityByParam.size(), 3u);
        for (const auto& [param, fidelity] : s.fidelityByParam) {
            EXPECT_GE(fidelity, 0.0);
            EXPECT_LE(fidelity, 1.0);
        }
    }
}

TEST_F(FlowTest, AccountingIsConsistent) {
    const FlowResult& r = result();
    EXPECT_GT(r.exhaustiveSynthSeconds, r.flowSynthSeconds);
    EXPECT_GT(r.speedup(), 1.0);
    std::size_t measured = 0;
    for (const CharacterizedCircuit& cc : r.dataset.circuits())
        if (cc.fpgaMeasured) ++measured;
    EXPECT_EQ(measured, r.circuitsSynthesized);
    EXPECT_LT(measured, r.dataset.size());  // flow must not synthesize everything
}

TEST_F(FlowTest, TargetsCoverAllThreeParams) {
    const FlowResult& r = result();
    ASSERT_EQ(r.targets.size(), 3u);
    std::set<FpgaParam> params;
    for (const TargetOutcome& t : r.targets) params.insert(t.param);
    EXPECT_EQ(params.size(), 3u);
}

TEST_F(FlowTest, PseudoParetoCircuitsWereSynthesized) {
    const FlowResult& r = result();
    for (const TargetOutcome& t : r.targets) {
        EXPECT_EQ(t.selectedModels.size(), 3u);
        EXPECT_FALSE(t.pseudoParetoIndices.empty());
        for (std::size_t idx : t.pseudoParetoIndices)
            EXPECT_TRUE(r.dataset.circuits()[idx].fpgaMeasured);
        // Re-synthesized circuits are a subset of the pseudo-Pareto set.
        for (std::size_t idx : t.resynthesized) {
            EXPECT_TRUE(std::binary_search(t.pseudoParetoIndices.begin(),
                                           t.pseudoParetoIndices.end(), idx));
        }
    }
}

TEST_F(FlowTest, FinalFrontIsNonDominatedAmongMeasured) {
    const FlowResult& r = result();
    for (const TargetOutcome& t : r.targets) {
        ASSERT_FALSE(t.finalParetoIndices.empty());
        for (std::size_t a : t.finalParetoIndices) {
            const CharacterizedCircuit& ca = r.dataset.circuits()[a];
            EXPECT_TRUE(ca.fpgaMeasured);
            for (std::size_t b = 0; b < r.dataset.size(); ++b) {
                const CharacterizedCircuit& cb = r.dataset.circuits()[b];
                if (!cb.fpgaMeasured || a == b) continue;
                const double qa = ca.circuit.error.med, qb = cb.circuit.error.med;
                const double pa = fpgaParamOf(ca.fpga, t.param), pb = fpgaParamOf(cb.fpga, t.param);
                EXPECT_FALSE(qb <= qa && pb <= pa && (qb < qa || pb < pa))
                    << "front member " << a << " dominated by " << b;
            }
        }
    }
}

TEST_F(FlowTest, CoverageBounded) {
    for (const TargetOutcome& t : result().targets) {
        EXPECT_GE(t.coverageOfTrueFront, 0.0);
        EXPECT_LE(t.coverageOfTrueFront, 1.0);
        // The methodology exists to find most of the true front.
        EXPECT_GT(t.coverageOfTrueFront, 0.3);
    }
    EXPECT_GT(result().meanCoverage(), 0.4);
}

TEST_F(FlowTest, DeterministicAcrossRuns) {
    ApproxFpgasFlow::Config cfg;
    cfg.trainFraction = 0.15;
    const FlowResult again = ApproxFpgasFlow(cfg).run(smallLibrary());
    EXPECT_EQ(again.circuitsSynthesized, result().circuitsSynthesized);
    for (std::size_t t = 0; t < again.targets.size(); ++t) {
        EXPECT_EQ(again.targets[t].finalParetoIndices, result().targets[t].finalParetoIndices);
        EXPECT_EQ(again.targets[t].selectedModels, result().targets[t].selectedModels);
    }
}

TEST(FlowConfig, ModelFilterRestrictsLeaderboard) {
    ApproxFpgasFlow::Config cfg;
    cfg.trainFraction = 0.15;
    cfg.modelIds = {"ML11", "ML4", "ML14"};
    cfg.topModels = 2;
    cfg.evaluateCoverage = false;
    const FlowResult r = ApproxFpgasFlow(cfg).run(smallLibrary());
    EXPECT_EQ(r.leaderboard.size(), 3u);
    for (const TargetOutcome& t : r.targets) EXPECT_EQ(t.selectedModels.size(), 2u);
}

TEST(Dataset, CharacterizeFillsFeaturesAndAsic) {
    const CircuitDataset ds = CircuitDataset::characterize(smallLibrary());
    ASSERT_GT(ds.size(), 0u);
    const ml::AsicColumns cols = CircuitDataset::asicColumns();
    for (const CharacterizedCircuit& cc : ds.circuits()) {
        ASSERT_EQ(cc.features.size(), CircuitDataset::featureDimension());
        EXPECT_DOUBLE_EQ(cc.features[cols.area], cc.asic.areaUm2);
        EXPECT_DOUBLE_EQ(cc.features[cols.delay], cc.asic.delayNs);
        EXPECT_DOUBLE_EQ(cc.features[cols.power], cc.asic.powerMw);
        EXPECT_FALSE(cc.fpgaMeasured);
    }
}

TEST(Dataset, MeasuredTargetsThrowsOnUnmeasured) {
    const CircuitDataset ds = CircuitDataset::characterize(smallLibrary());
    EXPECT_THROW(ds.measuredTargets({0}, FpgaParam::Area), std::logic_error);
}

TEST(FlowConfig, HyperparameterTuningRecordsVariants) {
    ApproxFpgasFlow::Config cfg;
    cfg.trainFraction = 0.15;
    cfg.modelIds = {"ML14", "ML16"};  // small grids keep this test fast
    cfg.topModels = 2;
    cfg.tuneHyperparameters = true;
    cfg.evaluateCoverage = false;
    const FlowResult r = ApproxFpgasFlow(cfg).run(smallLibrary());
    ASSERT_EQ(r.leaderboard.size(), 2u);
    for (const ModelScore& s : r.leaderboard) {
        for (FpgaParam param : kAllFpgaParams) {
            ASSERT_TRUE(s.variantByParam.count(param));
            EXPECT_NE(s.variantByParam.at(param), "");
            EXPECT_NE(s.variantByParam.at(param), "default");  // a grid choice was made
        }
    }
}

TEST(Release, WritesVerilogCAndIndex) {
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "axf_release_test";
    std::filesystem::remove_all(dir);
    const std::size_t released = releaseLibrary(sharedResult(), dir);
    EXPECT_GT(released, 0u);
    ASSERT_TRUE(std::filesystem::exists(dir / "index.csv"));

    // Every index row has a matching .v and .c artifact with sane content.
    std::ifstream csv(dir / "index.csv");
    std::string header, firstRow;
    std::getline(csv, header);
    ASSERT_TRUE(static_cast<bool>(std::getline(csv, firstRow)));
    const std::string name = firstRow.substr(0, firstRow.find(','));
    ASSERT_TRUE(std::filesystem::exists(dir / (name + ".v")));
    ASSERT_TRUE(std::filesystem::exists(dir / (name + ".c")));

    std::stringstream v, c;
    v << std::ifstream(dir / (name + ".v")).rdbuf();
    c << std::ifstream(dir / (name + ".c")).rdbuf();
    EXPECT_NE(v.str().find("module " + name), std::string::npos);
    EXPECT_NE(v.str().find("endmodule"), std::string::npos);
    EXPECT_NE(c.str().find("uint64_t " + name + "(uint64_t a, uint64_t b)"), std::string::npos);
    EXPECT_NE(c.str().find("return out;"), std::string::npos);
    std::filesystem::remove_all(dir);
}

TEST(Dataset, ParamHelpers) {
    synth::FpgaReport report;
    report.latencyNs = 1.0;
    report.powerMw = 2.0;
    report.lutCount = 3.0;
    EXPECT_DOUBLE_EQ(fpgaParamOf(report, FpgaParam::Latency), 1.0);
    EXPECT_DOUBLE_EQ(fpgaParamOf(report, FpgaParam::Power), 2.0);
    EXPECT_DOUBLE_EQ(fpgaParamOf(report, FpgaParam::Area), 3.0);
    EXPECT_STREQ(fpgaParamName(FpgaParam::Power), "power");
}

}  // namespace
}  // namespace axf::core
