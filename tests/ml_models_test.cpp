#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/ml/models.hpp"
#include "src/ml/registry.hpp"
#include "src/ml/tuning.hpp"
#include "src/util/rng.hpp"
#include "src/util/stats.hpp"

namespace axf::ml {
namespace {

/// Synthetic regression task: nonlinear signal with three extra columns
/// that act like the appended ASIC metrics (noisy views of the target).
struct Task {
    Matrix xTrain, xTest;
    Vector yTrain, yTest;
    static constexpr std::size_t kDims = 6;

    static Task make(std::uint64_t seed) {
        util::Rng rng(seed);
        const std::size_t n = 240;
        Matrix x(n, kDims);
        Vector y(n);
        for (std::size_t r = 0; r < n; ++r) {
            for (std::size_t c = 0; c < 3; ++c) x.at(r, c) = rng.uniformReal(0.0, 10.0);
            const double t = 3.0 * x.at(r, 0) + 0.4 * x.at(r, 1) * x.at(r, 1) +
                             2.0 * std::sqrt(x.at(r, 2) + 1.0) + rng.gaussian(0.0, 0.8);
            x.at(r, 3) = 0.8 * t + rng.gaussian(0.0, 2.0);
            x.at(r, 4) = 0.5 * t + rng.gaussian(0.0, 4.0);
            x.at(r, 5) = 1.2 * t + rng.gaussian(0.0, 1.0);
            y[r] = t;
        }
        Task task;
        const std::size_t split = 180;
        task.xTrain = Matrix(split, kDims);
        task.yTrain.resize(split);
        task.xTest = Matrix(n - split, kDims);
        task.yTest.resize(n - split);
        for (std::size_t r = 0; r < split; ++r) {
            for (std::size_t c = 0; c < kDims; ++c) task.xTrain.at(r, c) = x.at(r, c);
            task.yTrain[r] = y[r];
        }
        for (std::size_t r = split; r < n; ++r) {
            for (std::size_t c = 0; c < kDims; ++c) task.xTest.at(r - split, c) = x.at(r, c);
            task.yTest[r - split] = y[r];
        }
        return task;
    }
};

class AllTableOneModels : public ::testing::TestWithParam<std::string> {};

TEST_P(AllTableOneModels, LearnsMonotonicSignal) {
    const Task task = Task::make(0x7A5);
    const std::vector<ModelSpec> specs = tableOneModels(AsicColumns{3, 4, 5});
    const ModelSpec& spec = findModel(specs, GetParam());
    RegressorPtr model = spec.make();
    model->fit(task.xTrain, task.yTrain);
    const Vector pred = model->predictAll(task.xTest);
    // Every Table-I model must at least preserve ranking strongly on this
    // easy, well-correlated task (fidelity is rank-based in the paper).
    EXPECT_GT(util::spearman(task.yTest, pred), 0.75) << spec.name;
}

TEST_P(AllTableOneModels, DeterministicAcrossFits) {
    const Task task = Task::make(0x7A6);
    const std::vector<ModelSpec> specs = tableOneModels(AsicColumns{3, 4, 5});
    const ModelSpec& spec = findModel(specs, GetParam());
    RegressorPtr m1 = spec.make();
    RegressorPtr m2 = spec.make();
    m1->fit(task.xTrain, task.yTrain);
    m2->fit(task.xTrain, task.yTrain);
    for (std::size_t r = 0; r < 20; ++r)
        EXPECT_DOUBLE_EQ(m1->predict(task.xTest.row(r)), m2->predict(task.xTest.row(r)))
            << spec.name;
}

INSTANTIATE_TEST_SUITE_P(Registry, AllTableOneModels,
                         ::testing::Values("ML1", "ML2", "ML3", "ML4", "ML5", "ML6", "ML7", "ML8",
                                           "ML9", "ML10", "ML11", "ML12", "ML13", "ML14", "ML15",
                                           "ML16", "ML17", "ML18"),
                         [](const auto& info) { return info.param; });

TEST(Registry, HasEighteenModelsInPaperOrder) {
    const std::vector<ModelSpec> specs = tableOneModels(AsicColumns{3, 4, 5});
    ASSERT_EQ(specs.size(), 18u);
    EXPECT_EQ(specs[0].id, "ML1");
    EXPECT_EQ(specs[10].id, "ML11");
    EXPECT_EQ(specs[10].name, "Bayesian Ridge");
    EXPECT_EQ(specs[17].name, "Decision Tree");
    EXPECT_THROW(findModel(specs, "ML19"), std::out_of_range);
}

TEST(RidgeRegression, RecoversExactLinearModel) {
    Matrix x = Matrix::fromRows({{1, 0}, {0, 1}, {1, 1}, {2, 1}, {1, 3}});
    Vector y(5);
    for (std::size_t r = 0; r < 5; ++r) y[r] = 2.0 * x.at(r, 0) - 3.0 * x.at(r, 1) + 5.0;
    RidgeRegression ridge(1e-9);
    ridge.fit(x, y);
    EXPECT_NEAR(ridge.predict(std::vector<double>{4.0, 2.0}), 2.0 * 4 - 3.0 * 2 + 5, 1e-5);
}

TEST(RidgeRegression, RegularizationShrinksWeights) {
    const Task task = Task::make(1);
    RidgeRegression weak(1e-6), strong(1e5);
    weak.fit(task.xTrain, task.yTrain);
    strong.fit(task.xTrain, task.yTrain);
    double weakNorm = 0, strongNorm = 0;
    for (std::size_t c = 0; c + 1 < weak.weights().size(); ++c) {
        weakNorm += std::abs(weak.weights()[c]);
        strongNorm += std::abs(strong.weights()[c]);
    }
    EXPECT_LT(strongNorm, weakNorm);
}

TEST(SingleFeatureRegression, UsesOnlyItsColumn) {
    Matrix x = Matrix::fromRows({{100, 1}, {200, 2}, {300, 3}});
    const Vector y = {10.0, 20.0, 30.0};
    SingleFeatureRegression model(1);  // second column
    model.fit(x, y);
    // Prediction must ignore column 0 entirely.
    EXPECT_NEAR(model.predict(std::vector<double>{-999.0, 4.0}), 40.0, 1e-9);
}

TEST(LassoRegression, ProducesSparseSolution) {
    // y depends only on feature 0; lasso should zero out the pure-noise
    // feature 1 at sufficient regularization.
    util::Rng rng(2);
    Matrix x(60, 2);
    Vector y(60);
    for (std::size_t r = 0; r < 60; ++r) {
        x.at(r, 0) = rng.uniformReal(-1, 1);
        x.at(r, 1) = rng.uniformReal(-1, 1);
        y[r] = 3.0 * x.at(r, 0);
    }
    LassoRegression lasso(0.5);
    lasso.fit(x, y);
    const double onSignal = lasso.predict(std::vector<double>{1.0, 0.0});
    const double onNoise = lasso.predict(std::vector<double>{0.0, 1.0});
    const double base = lasso.predict(std::vector<double>{0.0, 0.0});
    EXPECT_GT(std::abs(onSignal - base), 1.0);
    EXPECT_LT(std::abs(onNoise - base), 0.2);
}

TEST(KnnRegressor, ExactMatchReturnsTrainTarget) {
    Matrix x = Matrix::fromRows({{0, 0}, {1, 1}, {2, 2}});
    KnnRegressor knn(2);
    knn.fit(x, {5.0, 6.0, 7.0});
    EXPECT_DOUBLE_EQ(knn.predict(std::vector<double>{1.0, 1.0}), 6.0);
}

TEST(DecisionTree, FitsStepFunctionExactly) {
    Matrix x(20, 1);
    Vector y(20);
    for (std::size_t r = 0; r < 20; ++r) {
        x.at(r, 0) = static_cast<double>(r);
        y[r] = r < 10 ? 1.0 : 9.0;
    }
    DecisionTree tree;
    tree.fit(x, y);
    EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{3.0}), 1.0);
    EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{15.0}), 9.0);
}

TEST(DecisionTree, RespectsDepthLimit) {
    const Task task = Task::make(3);
    DecisionTree::Params p;
    p.maxDepth = 1;  // a stump: at most 3 nodes
    DecisionTree stump(p);
    stump.fit(task.xTrain, task.yTrain);
    std::set<double> outputs;
    for (std::size_t r = 0; r < task.xTest.rows(); ++r)
        outputs.insert(stump.predict(task.xTest.row(r)));
    EXPECT_LE(outputs.size(), 2u);
}

TEST(GaussianProcess, VarianceShrinksNearTrainingData) {
    Matrix x = Matrix::fromRows({{0.0}, {1.0}, {2.0}});
    GaussianProcess gp(0.01, 1.0);
    gp.fit(x, {1.0, 2.0, 3.0});
    const double nearVar = gp.predictVariance(std::vector<double>{1.0});
    const double farVar = gp.predictVariance(std::vector<double>{10.0});
    EXPECT_LT(nearVar, farVar);
    EXPECT_GE(nearVar, 0.0);
}

TEST(KernelRidge, InterpolatesSmoothFunction) {
    Matrix x(30, 1);
    Vector y(30);
    for (std::size_t r = 0; r < 30; ++r) {
        x.at(r, 0) = static_cast<double>(r) / 5.0;
        y[r] = std::sin(x.at(r, 0));
    }
    KernelRidge kr(1e-4, 2.0);
    kr.fit(x, y);
    EXPECT_NEAR(kr.predict(std::vector<double>{1.55}), std::sin(1.55), 0.05);
}

TEST(ScaledRegressor, InvariantToFeatureScaling) {
    // KNN is scale-sensitive; wrapped in ScaledRegressor, multiplying one
    // feature by 1000 must not change the neighbourhood structure.
    const Task task = Task::make(4);
    Matrix scaledTrain = task.xTrain;
    Matrix scaledTest = task.xTest;
    for (std::size_t r = 0; r < scaledTrain.rows(); ++r) scaledTrain.at(r, 0) *= 1000.0;
    for (std::size_t r = 0; r < scaledTest.rows(); ++r) scaledTest.at(r, 0) *= 1000.0;

    ScaledRegressor a{std::make_unique<KnnRegressor>(3)};
    ScaledRegressor b{std::make_unique<KnnRegressor>(3)};
    a.fit(task.xTrain, task.yTrain);
    b.fit(scaledTrain, task.yTrain);
    for (std::size_t r = 0; r < 10; ++r)
        EXPECT_NEAR(a.predict(task.xTest.row(r)), b.predict(scaledTest.row(r)), 1e-6);
}

TEST(SymbolicRegression, DiscoversSimpleLaw) {
    util::Rng rng(5);
    Matrix x(80, 2);
    Vector y(80);
    for (std::size_t r = 0; r < 80; ++r) {
        x.at(r, 0) = rng.uniformReal(0.0, 5.0);
        x.at(r, 1) = rng.uniformReal(0.0, 5.0);
        y[r] = 2.0 * x.at(r, 0) + x.at(r, 1);
    }
    SymbolicRegression sr;
    sr.fit(x, y);
    EXPECT_FALSE(sr.expression().empty());
    Vector pred(80);
    for (std::size_t r = 0; r < 80; ++r) pred[r] = sr.predict(x.row(r));
    EXPECT_GT(util::pearson(y, pred), 0.95);
}

TEST(EnsembleModels, BoostingOutperformsSingleStump) {
    const Task task = Task::make(6);
    DecisionTree::Params sp;
    sp.maxDepth = 2;
    DecisionTree shallow(sp);
    shallow.fit(task.xTrain, task.yTrain);
    GradientBoosting boosted;
    boosted.fit(task.xTrain, task.yTrain);

    double sseShallow = 0, sseBoosted = 0;
    for (std::size_t r = 0; r < task.xTest.rows(); ++r) {
        const double ds = shallow.predict(task.xTest.row(r)) - task.yTest[r];
        const double db = boosted.predict(task.xTest.row(r)) - task.yTest[r];
        sseShallow += ds * ds;
        sseBoosted += db * db;
    }
    EXPECT_LT(sseBoosted, sseShallow);
}

TEST(Tuning, GridsExistForAllModels) {
    const AsicColumns asic{3, 4, 5};
    for (int i = 1; i <= 18; ++i) {
        const std::string id = "ML" + std::to_string(i);
        const std::vector<ModelVariant> grid = hyperparameterGrid(id, asic);
        ASSERT_FALSE(grid.empty()) << id;
        for (const ModelVariant& v : grid) {
            EXPECT_FALSE(v.description.empty());
            EXPECT_TRUE(static_cast<bool>(v.make));
        }
        // ML1-ML3 are knob-free; everything else has a real grid.
        if (i > 3) {
            EXPECT_GE(grid.size(), 2u) << id;
        }
    }
    EXPECT_THROW(hyperparameterGrid("ML99", asic), std::out_of_range);
}

TEST(Tuning, PicksBestVariantByValidationScore) {
    const Task task = Task::make(0x71);
    const AsicColumns asic{3, 4, 5};
    // Score = negative validation MSE, so higher is better.
    const auto score = [](const Vector& mes, const Vector& est) {
        double sse = 0.0;
        for (std::size_t i = 0; i < mes.size(); ++i)
            sse += (mes[i] - est[i]) * (mes[i] - est[i]);
        return -sse;
    };
    const TunedModel tuned = tuneModel("ML14", asic, task.xTrain, task.yTrain, task.xTest,
                                       task.yTest, score);
    ASSERT_TRUE(static_cast<bool>(tuned.make));
    EXPECT_FALSE(tuned.variantDescription.empty());

    // The tuned variant must score at least as well as every grid entry.
    for (ModelVariant& v : hyperparameterGrid("ML14", asic)) {
        RegressorPtr model = v.make();
        model->fit(task.xTrain, task.yTrain);
        EXPECT_GE(tuned.validationScore + 1e-12,
                  score(task.yTest, model->predictAll(task.xTest)))
            << v.description;
    }
}

TEST(Tuning, TunedModelIsUsableAfterwards) {
    const Task task = Task::make(0x72);
    const AsicColumns asic{3, 4, 5};
    const auto score = [](const Vector& mes, const Vector& est) {
        return util::pearson(mes, est);
    };
    const TunedModel tuned =
        tuneModel("ML16", asic, task.xTrain, task.yTrain, task.xTest, task.yTest, score);
    RegressorPtr model = tuned.make();
    model->fit(task.xTrain, task.yTrain);
    EXPECT_GT(util::spearman(task.yTest, model->predictAll(task.xTest)), 0.75);
}

TEST(Mlp, LearnsLinearMapClosely) {
    util::Rng rng(8);
    Matrix x(100, 2);
    Vector y(100);
    for (std::size_t r = 0; r < 100; ++r) {
        x.at(r, 0) = rng.uniformReal(-1, 1);
        x.at(r, 1) = rng.uniformReal(-1, 1);
        y[r] = x.at(r, 0) - 2.0 * x.at(r, 1);
    }
    MlpRegressor mlp;
    mlp.fit(x, y);
    double sse = 0.0;
    for (std::size_t r = 0; r < 100; ++r) {
        const double d = mlp.predict(x.row(r)) - y[r];
        sse += d * d;
    }
    EXPECT_LT(sse / 100.0, 0.05);
}

}  // namespace
}  // namespace axf::ml
