#include <gtest/gtest.h>

#include "src/ml/linalg.hpp"

namespace axf::ml {
namespace {

TEST(Matrix, BasicAccessorsAndIdentity) {
    Matrix m(2, 3, 1.5);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_DOUBLE_EQ(m.at(1, 2), 1.5);
    m.at(0, 1) = 7.0;
    EXPECT_DOUBLE_EQ(m.row(0)[1], 7.0);

    const Matrix id = Matrix::identity(3);
    EXPECT_DOUBLE_EQ(id.at(1, 1), 1.0);
    EXPECT_DOUBLE_EQ(id.at(0, 2), 0.0);
}

TEST(Matrix, FromRowsAndRagged) {
    const Matrix m = Matrix::fromRows({{1, 2}, {3, 4}, {5, 6}});
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_DOUBLE_EQ(m.at(2, 1), 6.0);
    EXPECT_THROW(Matrix::fromRows({{1, 2}, {3}}), std::invalid_argument);
    EXPECT_TRUE(Matrix::fromRows({}).empty());
}

TEST(Matrix, Transpose) {
    const Matrix m = Matrix::fromRows({{1, 2, 3}, {4, 5, 6}});
    const Matrix t = m.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_DOUBLE_EQ(t.at(2, 1), 6.0);
}

TEST(Matrix, MultiplyMatrixAndVector) {
    const Matrix a = Matrix::fromRows({{1, 2}, {3, 4}});
    const Matrix b = Matrix::fromRows({{5, 6}, {7, 8}});
    const Matrix c = a * b;
    EXPECT_DOUBLE_EQ(c.at(0, 0), 19.0);
    EXPECT_DOUBLE_EQ(c.at(1, 1), 50.0);

    const Vector v = a * Vector{1.0, 1.0};
    EXPECT_DOUBLE_EQ(v[0], 3.0);
    EXPECT_DOUBLE_EQ(v[1], 7.0);
    EXPECT_THROW(a * Vector{1.0}, std::invalid_argument);
}

TEST(Matrix, GramAndTransposeTimes) {
    const Matrix a = Matrix::fromRows({{1, 2}, {3, 4}, {5, 6}});
    const Matrix g = a.gram();  // A^T A
    EXPECT_DOUBLE_EQ(g.at(0, 0), 35.0);
    EXPECT_DOUBLE_EQ(g.at(0, 1), 44.0);
    EXPECT_DOUBLE_EQ(g.at(1, 0), 44.0);
    EXPECT_DOUBLE_EQ(g.at(1, 1), 56.0);
    const Vector aty = a.transposeTimes({1.0, 1.0, 1.0});
    EXPECT_DOUBLE_EQ(aty[0], 9.0);
    EXPECT_DOUBLE_EQ(aty[1], 12.0);
}

TEST(Solve, SpdSystem) {
    // A = [[4,1],[1,3]], b = [1,2] -> x = [1/11, 7/11]
    Matrix a = Matrix::fromRows({{4, 1}, {1, 3}});
    const Vector x = solveSpd(a, {1.0, 2.0});
    EXPECT_NEAR(x[0], 1.0 / 11.0, 1e-12);
    EXPECT_NEAR(x[1], 7.0 / 11.0, 1e-12);
}

TEST(Solve, NonSpdFallsBackToGaussian) {
    // Indefinite but invertible.
    Matrix a = Matrix::fromRows({{0, 1}, {1, 0}});
    const Vector x = solveSpd(a, {2.0, 3.0});
    EXPECT_NEAR(x[0], 3.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Solve, GaussianWithPivoting) {
    Matrix a = Matrix::fromRows({{1e-14, 1.0}, {1.0, 1.0}});
    const Vector x = solveLinear(a, {1.0, 2.0});
    EXPECT_NEAR(x[0], 1.0, 1e-6);
    EXPECT_NEAR(x[1], 1.0, 1e-6);
}

TEST(Solve, SingularThrows) {
    Matrix a = Matrix::fromRows({{1, 2}, {2, 4}});
    EXPECT_THROW(solveLinear(a, {1.0, 2.0}), std::runtime_error);
}

TEST(Solve, ShapeMismatchThrows) {
    Matrix a = Matrix::fromRows({{1, 2}, {3, 4}});
    EXPECT_THROW(solveLinear(a, {1.0}), std::invalid_argument);
    EXPECT_THROW(solveSpd(Matrix(2, 3), {1.0, 2.0}), std::invalid_argument);
}

TEST(Solve, RandomSpdRoundTrip) {
    // Property: for X^T X + I (SPD by construction), solve then multiply
    // back recovers b.
    const Matrix x = Matrix::fromRows({{1, 2, 0.5}, {0.3, 1, 2}, {2, 0.1, 1}, {1, 1, 1}});
    Matrix a = x.gram();
    for (std::size_t i = 0; i < a.rows(); ++i) a.at(i, i) += 1.0;
    const Vector b = {1.0, -2.0, 0.5};
    const Vector sol = solveSpd(a, b);
    const Vector back = a * sol;
    for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(back[i], b[i], 1e-9);
}

TEST(VectorOps, DotAndDistance) {
    const Vector a = {1.0, 2.0, 3.0};
    const Vector b = {4.0, 5.0, 6.0};
    EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
    EXPECT_DOUBLE_EQ(squaredDistance(a, b), 27.0);
}

}  // namespace
}  // namespace axf::ml
