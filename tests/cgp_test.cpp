#include <gtest/gtest.h>

#include "src/circuit/simulator.hpp"
#include "src/gen/adders.hpp"
#include "src/gen/cgp.hpp"
#include "src/gen/multipliers.hpp"
#include "src/util/rng.hpp"

namespace axf::gen {
namespace {

using circuit::Netlist;
using circuit::Simulator;

TEST(CgpGenome, RandomGenomeDecodesToValidNetlist) {
    util::Rng rng(1);
    CgpParams params;
    params.inputs = 6;
    params.outputs = 4;
    params.cells = 40;
    const CgpGenome genome(params, rng);
    const Netlist net = genome.decode();
    net.validate();
    EXPECT_EQ(net.inputCount(), 6u);
    EXPECT_EQ(net.outputCount(), 4u);
    EXPECT_LE(static_cast<int>(net.gateCount()), params.cells);
    EXPECT_EQ(genome.activeCells(), static_cast<int>(net.gateCount()));
}

TEST(CgpGenome, RejectsEmptyGeometry) {
    util::Rng rng(1);
    CgpParams params;  // all zero
    EXPECT_THROW(CgpGenome(params, rng), std::invalid_argument);
}

TEST(CgpGenome, SeedRoundTripPreservesFunction) {
    util::Rng rng(2);
    const Netlist seed = rippleCarryAdder(4);
    const CgpGenome genome = CgpGenome::seedFromNetlist(seed, 10, rng);
    const Netlist decoded = genome.decode();
    ASSERT_EQ(decoded.inputCount(), seed.inputCount());
    ASSERT_EQ(decoded.outputCount(), seed.outputCount());
    Simulator ss(seed), sd(decoded);
    for (std::uint64_t v = 0; v < 256; ++v)
        EXPECT_EQ(ss.evaluateScalar(v), sd.evaluateScalar(v)) << "input " << v;
}

TEST(CgpGenome, SeedRoundTripWithMuxMajLowering) {
    // Carry-select adders contain Mux; the seed path must lower them.
    util::Rng rng(3);
    const Netlist seed = carrySelectAdder(4, 2);
    const CgpGenome genome = CgpGenome::seedFromNetlist(seed, 8, rng);
    const Netlist decoded = genome.decode();
    Simulator ss(seed), sd(decoded);
    for (std::uint64_t v = 0; v < 256; ++v) EXPECT_EQ(ss.evaluateScalar(v), sd.evaluateScalar(v));
}

TEST(CgpGenome, MutationKeepsGenomeDecodable) {
    util::Rng rng(4);
    CgpGenome genome = CgpGenome::seedFromNetlist(wallaceMultiplier(4), 16, rng);
    for (int step = 0; step < 200; ++step) {
        genome.mutate(3, rng);
        const Netlist net = genome.decode();
        net.validate();
        EXPECT_EQ(net.inputCount(), 8u);
        EXPECT_EQ(net.outputCount(), 8u);
    }
}

TEST(CgpGenome, DeterministicWithSeed) {
    const auto build = [] {
        util::Rng rng(7);
        CgpGenome genome = CgpGenome::seedFromNetlist(rippleCarryAdder(4), 12, rng);
        genome.mutate(20, rng);
        return genome.decode().structuralHash();
    };
    EXPECT_EQ(build(), build());
}

TEST(CgpEvolver, HarvestsWithinBudgetAndImproves) {
    CgpEvolver::Options options;
    options.medBudget = 0.01;
    options.generations = 60;
    options.seed = 11;
    CgpEvolver evolver(multiplierSignature(4), options);
    const std::vector<CgpHarvest> harvest = evolver.run(wallaceMultiplier(4));
    ASSERT_GE(harvest.size(), 2u);  // the seed plus at least one improvement
    for (const CgpHarvest& h : harvest) {
        EXPECT_EQ(h.netlist.inputCount(), 8u);
        EXPECT_EQ(h.netlist.outputCount(), 8u);
        // Reported errors are reporting-grade (exhaustive for 4x4).
        EXPECT_TRUE(h.error.exhaustive);
    }
    // Evolution minimizes size: the last harvest is no bigger than the seed.
    EXPECT_LE(harvest.back().netlist.gateCount(), harvest.front().netlist.gateCount());
    // Harvested circuits are structurally distinct.
    std::set<std::uint64_t> hashes;
    for (const CgpHarvest& h : harvest) hashes.insert(h.netlist.structuralHash());
    EXPECT_EQ(hashes.size(), harvest.size());
}

TEST(CgpEvolver, ZeroBudgetKeepsExactness) {
    CgpEvolver::Options options;
    options.medBudget = 0.0;
    options.generations = 40;
    options.seed = 12;
    // Fitness on the exhaustive space so "exact" really means exact.
    options.fitnessConfig.exhaustiveLimit = 1u << 16;
    CgpEvolver evolver(adderSignature(4), options);
    for (const CgpHarvest& h : evolver.run(rippleCarryAdder(4)))
        EXPECT_TRUE(h.error.isExact()) << h.netlist.gateCount();
}

TEST(CgpEvolver, DeterministicRuns) {
    CgpEvolver::Options options;
    options.medBudget = 0.02;
    options.generations = 30;
    options.seed = 13;
    CgpEvolver evolver(multiplierSignature(4), options);
    const auto a = evolver.run(arrayMultiplier(4));
    const auto b = evolver.run(arrayMultiplier(4));
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].netlist.structuralHash(), b[i].netlist.structuralHash());
}

TEST(CgpParams, DefaultFunctionSetTwoInputOnly) {
    for (circuit::GateKind kind : CgpParams::defaultFunctionSet())
        EXPECT_LE(circuit::fanInCount(kind), 2);
}

}  // namespace
}  // namespace axf::gen
