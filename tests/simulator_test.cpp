#include <gtest/gtest.h>

#include "src/circuit/simulator.hpp"
#include "src/util/rng.hpp"
#include "src/util/thread_pool.hpp"

#include <set>

namespace axf::circuit {
namespace {

/// Truth-table fixture: builds a single-gate netlist and checks all input
/// combinations against the expected function.
struct GateCase {
    GateKind kind;
    int arity;
    // expected output for input bits (a, b, c) packed as bit0=a, bit1=b, bit2=c
    std::function<bool(bool, bool, bool)> fn;
};

class GateTruthTable : public ::testing::TestWithParam<GateCase> {};

TEST_P(GateTruthTable, MatchesExpectedFunction) {
    const GateCase& gc = GetParam();
    Netlist net;
    const NodeId a = net.addInput();
    const NodeId b = net.addInput();
    const NodeId c = net.addInput();
    net.markOutput(net.addGate(gc.kind, a, gc.arity >= 2 ? b : kInvalidNode,
                               gc.arity >= 3 ? c : kInvalidNode));
    Simulator sim(net);
    for (std::uint64_t in = 0; in < 8; ++in) {
        const bool av = in & 1, bv = in & 2, cv = in & 4;
        if (gc.arity < 2 && bv) continue;
        if (gc.arity < 3 && cv) continue;
        EXPECT_EQ(sim.evaluateScalar(in) & 1, gc.fn(av, bv, cv) ? 1u : 0u)
            << gateKindName(gc.kind) << " on input " << in;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllGateKinds, GateTruthTable,
    ::testing::Values(
        GateCase{GateKind::Buf, 1, [](bool a, bool, bool) { return a; }},
        GateCase{GateKind::Not, 1, [](bool a, bool, bool) { return !a; }},
        GateCase{GateKind::And, 2, [](bool a, bool b, bool) { return a && b; }},
        GateCase{GateKind::Or, 2, [](bool a, bool b, bool) { return a || b; }},
        GateCase{GateKind::Xor, 2, [](bool a, bool b, bool) { return a != b; }},
        GateCase{GateKind::Nand, 2, [](bool a, bool b, bool) { return !(a && b); }},
        GateCase{GateKind::Nor, 2, [](bool a, bool b, bool) { return !(a || b); }},
        GateCase{GateKind::Xnor, 2, [](bool a, bool b, bool) { return a == b; }},
        GateCase{GateKind::AndNot, 2, [](bool a, bool b, bool) { return a && !b; }},
        GateCase{GateKind::OrNot, 2, [](bool a, bool b, bool) { return a || !b; }},
        GateCase{GateKind::Mux, 3, [](bool a, bool b, bool c) { return c ? b : a; }},
        GateCase{GateKind::Maj, 3,
                 [](bool a, bool b, bool c) { return (a && b) || (a && c) || (b && c); }}),
    [](const ::testing::TestParamInfo<GateCase>& info) {
        return gateKindName(info.param.kind);
    });

TEST(Simulator, Constants) {
    Netlist net;
    net.addInput();
    net.markOutput(net.addConst(false));
    net.markOutput(net.addConst(true));
    Simulator sim(net);
    EXPECT_EQ(sim.evaluateScalar(0), 0b10u);
}

TEST(Simulator, LanesAreIndependent) {
    // One AND gate; drive each lane with a different combination.
    Netlist net;
    const NodeId a = net.addInput();
    const NodeId b = net.addInput();
    net.markOutput(net.addGate(GateKind::And, a, b));
    Simulator sim(net);
    const Simulator::Word wa = 0b0101;
    const Simulator::Word wb = 0b0011;
    std::vector<Simulator::Word> in = {wa, wb}, out(1);
    sim.evaluate(in, out);
    EXPECT_EQ(out[0] & 0xF, 0b0001u);
}

TEST(Simulator, ShapeChecks) {
    Netlist net;
    net.addInput();
    net.markOutput(0);
    Simulator sim(net);
    std::vector<Simulator::Word> bad(2), out(1);
    EXPECT_THROW(sim.evaluate(bad, out), std::invalid_argument);
    std::vector<Simulator::Word> in(1), badOut(2);
    EXPECT_THROW(sim.evaluate(in, badOut), std::invalid_argument);
}

TEST(Simulator, NodeValuesExposed) {
    Netlist net;
    const NodeId a = net.addInput();
    const NodeId g = net.addGate(GateKind::Not, a);
    net.markOutput(g);
    Simulator sim(net);
    std::vector<Simulator::Word> in = {0xFF}, out(1);
    sim.evaluate(in, out);
    EXPECT_EQ(sim.nodeValues()[a], 0xFFull);
    EXPECT_EQ(sim.nodeValues()[g], ~0xFFull);
}

TEST(ActivityCounter, ConstantNodesNeverToggle) {
    Netlist net;
    const NodeId a = net.addInput();
    const NodeId c = net.addConst(true);
    net.markOutput(net.addGate(GateKind::And, a, c));
    ActivityCounter counter(net);
    util::Rng rng(9);
    std::vector<Simulator::Word> block(1);
    for (int i = 0; i < 16; ++i) {
        block[0] = rng.uniformInt(0, ~std::uint64_t{0});
        counter.accumulate(block);
    }
    const std::vector<double> rates = counter.toggleRates();
    EXPECT_DOUBLE_EQ(rates[c], 0.0);
    EXPECT_NEAR(rates[a], 0.5, 0.08);  // random input toggles ~half the time
    EXPECT_EQ(counter.blocksSeen(), 16u);
}

TEST(ActivityCounter, NeedsTwoBlocks) {
    Netlist net;
    net.addInput();
    net.markOutput(0);
    ActivityCounter counter(net);
    EXPECT_EQ(counter.toggleRates()[0], 0.0);
}

TEST(EstimateToggleRates, MatchesSerialActivityCounter) {
    // The chunk-parallel estimator must equal an ActivityCounter fed the
    // same addressable per-block stimuli, bit for bit.
    Netlist net;
    const NodeId a = net.addInput();
    const NodeId b = net.addInput();
    net.markOutput(net.addGate(GateKind::Xor, a, b));
    net.markOutput(net.addGate(GateKind::And, a, b));

    constexpr std::uint64_t kSeed = 0xAC71;
    constexpr int kBlocks = 24;
    ActivityCounter counter(net);
    std::vector<Simulator::Word> block(net.inputCount());
    for (int i = 0; i < kBlocks; ++i) {
        fillActivityBlock(kSeed, static_cast<std::uint64_t>(i), block);
        counter.accumulate(block);
    }
    const std::vector<double> serial = counter.toggleRates();
    const std::vector<double> estimated = estimateToggleRates(net, kSeed, kBlocks);
    ASSERT_EQ(serial.size(), estimated.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], estimated[i]) << "node " << i;
}

TEST(EstimateToggleRates, ThreadCountInvariant) {
    const Netlist net = [] {
        Netlist n;
        const NodeId a = n.addInput();
        const NodeId b = n.addInput();
        const NodeId c = n.addInput();
        n.markOutput(n.addGate(GateKind::Maj, a, b, c));
        n.markOutput(n.addGate(GateKind::Xor, a, c));
        return n;
    }();
    // 41 blocks -> 40 transitions -> 5 chunks: enough to exercise the
    // cross-chunk predecessor re-evaluation on both pools.
    util::ThreadPool serial(1);
    util::ThreadPool parallel(4);
    const std::vector<double> one = estimateToggleRates(net, 0x7AB, 41, &serial);
    const std::vector<double> many = estimateToggleRates(net, 0x7AB, 41, &parallel);
    ASSERT_EQ(one.size(), many.size());
    for (std::size_t i = 0; i < one.size(); ++i) EXPECT_EQ(one[i], many[i]) << "node " << i;
}

TEST(EstimateToggleRates, FewerThanTwoBlocksIsAllZero) {
    Netlist net;
    net.addInput();
    net.markOutput(0);
    for (int blocks : {0, 1})
        for (double r : estimateToggleRates(net, 1, blocks)) EXPECT_EQ(r, 0.0);
}

}  // namespace
}  // namespace axf::circuit
