// Fig. 8 — End-to-end evaluation of the Pareto-optimal FPGA-ACs obtained by
// the ApproxFPGAs methodology on the 8-/16-bit adder and 8x8/16x16
// multiplier libraries.  Reports, per library and FPGA parameter, the
// pseudo-Pareto sizes, the re-synthesis counts, the final front, and the
// coverage of the true front (paper: ~71% average at ~10x speedup).

#include <iostream>

#include "bench/bench_common.hpp"
#include "src/core/flow.hpp"
#include "src/synth/synth_time.hpp"
#include "src/util/table.hpp"

using namespace axf;

static int benchMain() {
    const bench::Scale scale = bench::scaleFromEnv();
    util::printBanner(std::cout, "Fig. 8 | Pareto-optimal FPGA-ACs via ApproxFPGAs");

    struct Lib {
        circuit::ArithOp op;
        int width;
    };
    const std::vector<Lib> libs = {{circuit::ArithOp::Adder, 8},
                                   {circuit::ArithOp::Adder, 16},
                                   {circuit::ArithOp::Multiplier, 8},
                                   {circuit::ArithOp::Multiplier, 16}};

    util::Table table({"library", "circuits", "synthesized", "speedup", "param", "pseudo-front",
                       "final front", "coverage"});
    double coverageAcc = 0.0;
    int coverageCount = 0;
    double speedupAcc = 0.0;
    for (const Lib& lib : libs) {
        gen::AcLibrary library = gen::buildLibrary(bench::libraryConfig(lib.op, lib.width, scale));
        const std::size_t librarySize = library.size();
        core::ApproxFpgasFlow::Config cfg;
        const core::FlowResult result = core::ApproxFpgasFlow(cfg).run(std::move(library));
        speedupAcc += result.speedup();

        const std::string name = circuit::ArithSignature{lib.op, lib.width, lib.width}.toString();
        for (const core::TargetOutcome& t : result.targets) {
            coverageAcc += t.coverageOfTrueFront;
            ++coverageCount;
            table.addRow({name, util::Table::integer(static_cast<long long>(librarySize)),
                          util::Table::integer(static_cast<long long>(result.circuitsSynthesized)),
                          util::Table::num(result.speedup(), 1) + "x",
                          core::fpgaParamName(t.param),
                          util::Table::integer(static_cast<long long>(t.pseudoParetoIndices.size())),
                          util::Table::integer(static_cast<long long>(t.finalParetoIndices.size())),
                          util::Table::percent(t.coverageOfTrueFront)});
        }
    }
    table.print(std::cout);
    std::cout << "\naverage coverage of the true Pareto fronts: "
              << util::Table::percent(coverageAcc / static_cast<double>(coverageCount))
              << " (paper: ~71%)\n"
              << "average exploration-time speedup:           "
              << util::Table::num(speedupAcc / static_cast<double>(libs.size()), 1)
              << "x (paper: ~10x; grows with library size)\n";
    return 0;
}

int main() { return axf::bench::guardedMain(benchMain); }
