// Fig. 7 — Constructing multiple pseudo-Pareto fronts (F1, F1+F2, F1+F2+F3)
// for FPGA latency on the 8x8 multiplier library, per estimator model.
// Reports, for each model and front count: how many circuits must be
// re-synthesized and what fraction of the true Pareto front is recovered.
// (Paper: Bayesian ridge needs ~79 re-syntheses where regression w.r.t.
// ASIC latency needs ~164; the union over models works best.)

#include <iostream>
#include <unordered_set>

#include "bench/bench_common.hpp"
#include "src/core/flow.hpp"
#include "src/util/table.hpp"

using namespace axf;

static int benchMain() {
    const bench::Scale scale = bench::scaleFromEnv();
    util::printBanner(std::cout,
                      "Fig. 7 | Multiple pseudo-Pareto fronts, 8x8 multipliers, FPGA latency");

    gen::AcLibrary library =
        gen::buildLibrary(bench::libraryConfig(circuit::ArithOp::Multiplier, 8, scale));
    const std::size_t n = library.size();
    std::cout << "library size: " << n << " circuits\n";

    core::CircuitDataset ds = core::CircuitDataset::characterize(
        std::move(library), synth::AsicFlow(), bench::sharedCache());
    synth::FpgaFlow fpga;
    for (core::CharacterizedCircuit& cc : ds.circuits()) {
        cc.fpga = fpga.implement(cc.circuit.netlist);  // ground truth for evaluation
        cc.fpgaMeasured = true;
    }

    // Training subset (10%), as in the methodology.
    util::Rng rng(0xF17);
    const std::vector<std::size_t> subset =
        rng.sampleIndices(n, std::max<std::size_t>(12, n / 10));
    std::unordered_set<std::size_t> subsetSet(subset.begin(), subset.end());

    const ml::Matrix xTrain = ds.featureMatrix(subset);
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    const ml::Matrix xAll = ds.featureMatrix(all);
    const core::FpgaParam param = core::FpgaParam::Latency;

    // True Pareto front (MED vs measured latency).
    std::vector<core::ParetoPoint> truth(n);
    for (std::size_t i = 0; i < n; ++i)
        truth[i] = {ds.circuits()[i].circuit.error.med, ds.circuits()[i].fpga.latencyNs, i};
    std::unordered_set<std::size_t> trueFront;
    for (std::size_t pos : core::paretoFront(truth)) trueFront.insert(truth[pos].index);
    std::cout << "true Pareto front: " << trueFront.size() << " circuits\n\n";

    const std::vector<ml::ModelSpec> specs =
        ml::tableOneModels(core::CircuitDataset::asicColumns());

    util::Table table({"model", "fronts", "re-synthesized", "true-front coverage"});
    std::unordered_set<std::size_t> unionAcrossModels;
    const std::vector<std::string> ids = {"ML11", "ML4", "ML10", "ML2"};
    for (const std::string& id : ids) {
        ml::RegressorPtr model = ml::findModel(specs, id).make();
        model->fit(xTrain, ds.measuredTargets(subset, param));
        const ml::Vector est = model->predictAll(xAll);
        std::vector<core::ParetoPoint> points(n);
        for (std::size_t i = 0; i < n; ++i)
            points[i] = {ds.circuits()[i].circuit.error.med, est[i], i};
        const auto fronts = core::successiveParetoFronts(points, 3);

        std::unordered_set<std::size_t> selected;
        for (int k = 1; k <= 3; ++k) {
            if (static_cast<std::size_t>(k) <= fronts.size())
                for (std::size_t pos : fronts[static_cast<std::size_t>(k - 1)])
                    selected.insert(points[pos].index);
            // Circuits needing *new* synthesis (the training subset is free).
            std::size_t resynth = 0, hit = 0;
            for (std::size_t idx : selected)
                if (!subsetSet.count(idx)) ++resynth;
            for (std::size_t idx : trueFront)
                if (selected.count(idx) || subsetSet.count(idx)) ++hit;
            table.addRow({id, std::to_string(k),
                          util::Table::integer(static_cast<long long>(resynth)),
                          util::Table::percent(static_cast<double>(hit) /
                                               static_cast<double>(trueFront.size()))});
            if (k == 3 && id != "ML2")
                for (std::size_t idx : selected) unionAcrossModels.insert(idx);
        }
    }
    table.print(std::cout);

    std::size_t unionResynth = 0, unionHit = 0;
    for (std::size_t idx : unionAcrossModels)
        if (!subsetSet.count(idx)) ++unionResynth;
    for (std::size_t idx : trueFront)
        if (unionAcrossModels.count(idx) || subsetSet.count(idx)) ++unionHit;
    std::cout << "\nunion of the top-3 ML models (3 fronts each): re-synthesized = "
              << unionResynth << ", coverage = "
              << util::Table::percent(static_cast<double>(unionHit) /
                                      static_cast<double>(trueFront.size()))
              << "\ntotal circuits synthesized by the flow = " << subset.size() + unionResynth
              << " of " << n << " ("
              << util::Table::num(static_cast<double>(n) /
                                      static_cast<double>(subset.size() + unionResynth),
                                  1)
              << "x fewer than exhaustive; paper: ~9.9x on 4,494 circuits)\n";
    return 0;
}

int main() { return axf::bench::guardedMain(benchMain); }
