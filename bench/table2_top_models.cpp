// Table II — Top-3 ML models per FPGA parameter by validation fidelity,
// plus the best "regression w.r.t. the corresponding ASIC parameter"
// baseline (the paper's extra row: ML2 for latency, ML1 for power, ML3 for
// area).

#include <algorithm>
#include <iostream>

#include "bench/bench_common.hpp"
#include "src/core/flow.hpp"
#include "src/util/table.hpp"

using namespace axf;

static int benchMain() {
    const bench::Scale scale = bench::scaleFromEnv();
    util::printBanner(std::cout, "Table II | Top-3 models per FPGA parameter (8x8 multipliers)");

    core::ApproxFpgasFlow::Config cfg;
    cfg.evaluateCoverage = false;
    const core::FlowResult result = core::ApproxFpgasFlow(cfg).run(
        gen::buildLibrary(bench::libraryConfig(circuit::ArithOp::Multiplier, 8, scale)));

    for (core::FpgaParam param : core::kAllFpgaParams) {
        std::vector<const core::ModelScore*> ranked;
        for (const core::ModelScore& s : result.leaderboard) ranked.push_back(&s);
        std::sort(ranked.begin(), ranked.end(),
                  [&](const core::ModelScore* a, const core::ModelScore* b) {
                      return a->fidelityByParam.at(param) > b->fidelityByParam.at(param);
                  });

        util::Table table({"rank", "model", "fidelity"});
        for (int i = 0; i < 3 && i < static_cast<int>(ranked.size()); ++i)
            table.addRow({std::to_string(i + 1),
                          ranked[static_cast<std::size_t>(i)]->id + " (" +
                              ranked[static_cast<std::size_t>(i)]->name + ")",
                          util::Table::percent(
                              ranked[static_cast<std::size_t>(i)]->fidelityByParam.at(param))});

        // The ASIC-regression baseline row, as in the paper's Table II.
        const char* baselineId = param == core::FpgaParam::Latency ? "ML2"
                                 : param == core::FpgaParam::Power ? "ML1"
                                                                   : "ML3";
        for (const core::ModelScore& s : result.leaderboard) {
            if (s.id == baselineId)
                table.addRow({"ASIC-reg", s.id + " (" + s.name + ")",
                              util::Table::percent(s.fidelityByParam.at(param))});
        }
        std::cout << "\nFPGA " << core::fpgaParamName(param) << ":\n";
        table.print(std::cout);
    }
    std::cout << "\n(paper Table II: ML11/ML4/ML10 ~87-90% latency, ML11/ML13/ML4 ~89-91% power,\n"
                 " ML4/ML13/ML11 ~86-89% area; ASIC-regression rows 84-90%)\n";
    return 0;
}

int main() { return axf::bench::guardedMain(benchMain); }
