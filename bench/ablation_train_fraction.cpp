// Ablation (beyond the paper, DESIGN.md section 5): sensitivity of the
// methodology to the size of the synthesized training subset.  The paper
// fixes 10%; this sweep shows the exploration-time/coverage trade-off that
// choice sits on.

#include <iostream>

#include "bench/bench_common.hpp"
#include "src/core/flow.hpp"
#include "src/util/table.hpp"

using namespace axf;

static int benchMain() {
    const bench::Scale scale = bench::scaleFromEnv();
    util::printBanner(std::cout,
                      "Ablation | training-subset fraction vs speedup & Pareto coverage");

    gen::AcLibrary library =
        gen::buildLibrary(bench::libraryConfig(circuit::ArithOp::Multiplier, 8, scale));
    std::cout << "8x8 multiplier library: " << library.size() << " circuits\n\n";

    util::Table table({"train fraction", "synthesized", "speedup", "mean coverage"});
    for (double fraction : {0.05, 0.10, 0.15, 0.25, 0.40}) {
        core::ApproxFpgasFlow::Config cfg;
        cfg.trainFraction = fraction;
        const core::FlowResult result = core::ApproxFpgasFlow(cfg).run(library);
        table.addRow({util::Table::percent(fraction, 0),
                      util::Table::integer(static_cast<long long>(result.circuitsSynthesized)),
                      util::Table::num(result.speedup(), 1) + "x",
                      util::Table::percent(result.meanCoverage())});
    }
    table.print(std::cout);
    std::cout << "\n(the paper's 10% sits at the knee: smaller subsets trade coverage for\n"
                 " speed, larger ones synthesize more than the pseudo-Pareto step saves)\n";
    return 0;
}

int main() { return axf::bench::guardedMain(benchMain); }
