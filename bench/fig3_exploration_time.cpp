// Fig. 3 — Exploration time: Vivado-equivalent synthesis time of exhaustive
// exploration vs the ApproxFPGAs methodology, per library (8/12/16-bit
// adders and multipliers) and cumulative.  The paper reports 82.4 d
// exhaustive vs 8.2 d ApproxFPGAs (~10x).

#include <iostream>

#include "bench/bench_common.hpp"
#include "src/core/flow.hpp"
#include "src/synth/synth_time.hpp"
#include "src/util/table.hpp"
#include "src/util/timer.hpp"

using namespace axf;

static int benchMain() {
    const bench::Scale scale = bench::scaleFromEnv();
    util::printBanner(std::cout, "Fig. 3 | Exhaustive vs ApproxFPGAs exploration time");

    struct Row {
        circuit::ArithOp op;
        int width;
    };
    const std::vector<Row> rows = {{circuit::ArithOp::Adder, 8},      {circuit::ArithOp::Adder, 12},
                                   {circuit::ArithOp::Adder, 16},     {circuit::ArithOp::Multiplier, 8},
                                   {circuit::ArithOp::Multiplier, 12}, {circuit::ArithOp::Multiplier, 16}};

    util::Table table({"library", "circuits", "exhaustive [h]", "ApproxFPGAs [h]", "speedup",
                       "synthesized"});
    double cumulativeExhaustive = 0.0, cumulativeFlow = 0.0;
    util::Timer wall;
    for (const Row& row : rows) {
        gen::AcLibrary library = gen::buildLibrary(bench::libraryConfig(row.op, row.width, scale));
        const std::size_t librarySize = library.size();

        core::ApproxFpgasFlow::Config cfg;
        cfg.evaluateCoverage = false;  // time accounting only
        cfg.cache = bench::sharedCache();
        const core::FlowResult result = core::ApproxFpgasFlow(cfg).run(std::move(library));

        cumulativeExhaustive += result.exhaustiveSynthSeconds;
        cumulativeFlow += result.flowSynthSeconds;
        table.addRow({circuit::ArithSignature{row.op, row.width, row.width}.toString(),
                      util::Table::integer(static_cast<long long>(librarySize)),
                      util::Table::num(synth::secondsToHours(result.exhaustiveSynthSeconds), 1),
                      util::Table::num(synth::secondsToHours(result.flowSynthSeconds), 1),
                      util::Table::num(result.speedup(), 1) + "x",
                      util::Table::integer(static_cast<long long>(result.circuitsSynthesized))});
    }
    table.print(std::cout);
    std::cout << "\ncumulative exhaustive exploration: "
              << util::Table::num(synth::secondsToDays(cumulativeExhaustive), 1)
              << " days (paper: 82.4 d)\n"
              << "cumulative ApproxFPGAs:            "
              << util::Table::num(synth::secondsToDays(cumulativeFlow), 1)
              << " days (paper: 8.2 d)\n"
              << "overall exploration-time reduction: "
              << util::Table::num(cumulativeExhaustive / cumulativeFlow, 1)
              << "x (paper: ~10x)\n"
              << "[harness wall time: " << util::Table::num(wall.seconds(), 1) << " s]\n";
    bench::printCacheStats(std::cout);
    return 0;
}

int main() { return axf::bench::guardedMain(benchMain); }
