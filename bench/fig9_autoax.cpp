// Fig. 9 — AutoAx-FPGA case study: a Gaussian-filter accelerator assembled
// from 9 Pareto-optimal 8x8 approximate multipliers and 8 Pareto-optimal
// 16-bit approximate adders.  Estimator-guided hill-climbing constructs
// three pseudo-Pareto fronts (latency-SSIM, power-SSIM, area-SSIM) whose
// members are then really evaluated; a random search with the same
// real-evaluation budget is the baseline.  (Paper: design space 4.95e14
// reduced to 368/444/946 synthesized designs; AutoAx-FPGA beats random
// search; the latency estimator is the weakest.)

#include <iostream>

#include "bench/bench_common.hpp"
#include "src/autoax/accelerator.hpp"
#include "src/autoax/dse.hpp"
#include "src/autoax/sobel.hpp"
#include "src/cache/characterization_cache.hpp"
#include "src/fault/fault.hpp"
#include "src/core/flow.hpp"
#include "src/util/table.hpp"
#include "src/util/thread_pool.hpp"
#include "src/util/timer.hpp"

using namespace axf;

namespace {

/// Best (lowest) cost among points whose SSIM meets the threshold.
double bestCostAt(const std::vector<autoax::EvaluatedConfig>& points, core::FpgaParam param,
                  double ssimThreshold) {
    double best = std::numeric_limits<double>::infinity();
    for (const autoax::EvaluatedConfig& p : points)
        if (p.ssim >= ssimThreshold)
            best = std::min(best, autoax::costParamOf(p.cost, param));
    return best;
}

std::string costStr(double v) {
    return std::isfinite(v) ? util::Table::num(v, 2) : std::string("-");
}

/// Full bit-level comparison of two DSE results (the determinism contract
/// of the island search: same island count -> same bits at any thread
/// count).
bool sameResult(const autoax::AutoAxFpgaFlow::Result& a,
                const autoax::AutoAxFpgaFlow::Result& b) {
    if (a.trainingSet.size() != b.trainingSet.size() ||
        a.scenarios.size() != b.scenarios.size() ||
        a.totalRealEvaluations != b.totalRealEvaluations)
        return false;
    for (std::size_t i = 0; i < a.trainingSet.size(); ++i)
        if (a.trainingSet[i].config != b.trainingSet[i].config ||
            a.trainingSet[i].ssim != b.trainingSet[i].ssim)
            return false;
    for (std::size_t s = 0; s < a.scenarios.size(); ++s) {
        const auto& x = a.scenarios[s];
        const auto& y = b.scenarios[s];
        if (x.autoax.size() != y.autoax.size() || x.random.size() != y.random.size() ||
            x.estimatorQueries != y.estimatorQueries)
            return false;
        for (std::size_t i = 0; i < x.autoax.size(); ++i)
            if (x.autoax[i].config != y.autoax[i].config || x.autoax[i].ssim != y.autoax[i].ssim)
                return false;
        for (std::size_t i = 0; i < x.random.size(); ++i)
            if (x.random[i].config != y.random[i].config || x.random[i].ssim != y.random[i].ssim)
                return false;
    }
    return true;
}

}  // namespace

static int benchMain() {
    const bench::Scale scale = bench::scaleFromEnv();
    util::printBanner(std::cout, "Fig. 9 | AutoAx-FPGA: Gaussian filter vs random search");

    // Component menus from two ApproxFPGAs runs (paper: 9 multipliers, 8 adders).
    std::cout << "building FPGA-AC component menus via ApproxFPGAs...\n";
    core::ApproxFpgasFlow::Config flowCfg;
    flowCfg.cache = bench::sharedCache();
    const core::FlowResult mulFlow = core::ApproxFpgasFlow(flowCfg).run(
        gen::buildLibrary(bench::libraryConfig(circuit::ArithOp::Multiplier, 8, scale)));
    const core::FlowResult addFlow = core::ApproxFpgasFlow(flowCfg).run(
        gen::buildLibrary(bench::libraryConfig(circuit::ArithOp::Adder, 16, scale)));

    std::vector<autoax::Component> mults =
        autoax::componentsFromFlow(mulFlow, core::FpgaParam::Area, 9);
    std::vector<autoax::Component> adders =
        autoax::componentsFromFlow(addFlow, core::FpgaParam::Area, 8);
    std::cout << "multiplier menu: " << mults.size() << ", adder menu: " << adders.size() << "\n";

    const autoax::GaussianAccelerator accel(std::move(mults), std::move(adders),
                                            bench::sharedCache());
    std::cout << "design space: " << accel.designSpaceSize()
              << " configurations (paper: 4.95e14)\n\n";

    autoax::AutoAxFpgaFlow::Config cfg;
    cfg.islands = 4;
    cfg.searchBatch = 8;
    cfg.migrationInterval = 8;
    if (scale == bench::Scale::Ci) {
        cfg.trainConfigs = 60;
        cfg.hillIterations = 800;
        cfg.imageSize = 64;
    }

    // Before: the same 4-island search single-threaded — the determinism
    // reference and the wall-clock baseline for the island speedup.
    autoax::AutoAxFpgaFlow::Config serialCfg = cfg;
    serialCfg.threads = 1;
    util::Timer serialTimer;
    const autoax::AutoAxFpgaFlow::Result serialResult =
        autoax::AutoAxFpgaFlow(serialCfg).run(accel);
    const double serialSeconds = serialTimer.seconds();

    // After: same island count over the whole pool (search islands AND
    // the evaluation engine fan out).
    util::Timer dseTimer;
    const autoax::AutoAxFpgaFlow::Result result = autoax::AutoAxFpgaFlow(cfg).run(accel);
    const double dseSeconds = dseTimer.seconds();

    const std::size_t dseEvaluations = result.totalRealEvaluations;
    std::cout << "island search: " << cfg.islands << " islands x batch " << cfg.searchBatch
              << " (" << search::strategyName(cfg.strategy) << "), pool of "
              << util::ThreadPool::global().threadCount() << " workers\n";
    std::cout << "DSE wall clock (1 thread):  " << util::Table::num(serialSeconds, 2) << " s, "
              << serialResult.totalRealEvaluations << " fresh real evaluations -> "
              << util::Table::num(
                     static_cast<double>(serialResult.totalRealEvaluations) / serialSeconds, 1)
              << " configs evaluated/s\n";
    std::cout << "DSE wall clock (parallel):  " << util::Table::num(dseSeconds, 2) << " s, "
              << dseEvaluations << " fresh real evaluations -> "
              << util::Table::num(static_cast<double>(dseEvaluations) / dseSeconds, 1)
              << " configs evaluated/s\n";
    std::cout << "multi-island DSE speedup: " << util::Table::num(serialSeconds / dseSeconds, 2)
              << "x, parallel result bit-identical to serial: "
              << (sameResult(serialResult, result) ? "yes" : "NO (DETERMINISM BUG)") << "\n";

    for (const autoax::AutoAxFpgaFlow::ScenarioResult& s : result.scenarios) {
        util::printBanner(std::cout, std::string("scenario: SSIM vs FPGA ") +
                                         core::fpgaParamName(s.param));
        std::cout << "estimator-guided moves: " << s.estimatorQueries
                  << ", really evaluated designs: " << s.realEvaluations
                  << " (training sample adds " << result.trainingSet.size() << ")\n\n";

        util::Table table({"SSIM >=", "AutoAx-FPGA best " + std::string(core::fpgaParamName(s.param)),
                           "random best", "AutoAx wins?"});
        for (double threshold : {0.90, 0.95, 0.98, 0.995}) {
            const double a = bestCostAt(s.autoax, s.param, threshold);
            const double r = bestCostAt(s.random, s.param, threshold);
            table.addRow({util::Table::num(threshold, 3), costStr(a), costStr(r),
                          a < r ? "yes" : (a == r ? "tie" : "no")});
        }
        table.print(std::cout);

        // Print the real Pareto front the scenario discovered.
        util::Table front({"SSIM", "#LUTs", "power [mW]", "latency [ns]"});
        for (std::size_t pos : autoax::qualityCostFront(s.autoax, s.param)) {
            const autoax::EvaluatedConfig& p = s.autoax[pos];
            front.addRow({util::Table::num(p.ssim, 4), util::Table::num(p.cost.lutCount, 0),
                          util::Table::num(p.cost.powerMw, 2),
                          util::Table::num(p.cost.latencyNs, 2)});
        }
        std::cout << "\ndiscovered SSIM-" << core::fpgaParamName(s.param) << " front ("
                  << front.rowCount() << " designs):\n";
        front.print(std::cout);
    }
    // --- second workload: Sobel through the same engine --------------------
    // New scenario, same methodology: the adder menu transfers to the Sobel
    // edge detector and the identical AutoAxFpgaFlow/EvalEngine machinery
    // explores its (|menu|^3) design space.
    util::printBanner(std::cout, "second workload: Sobel edge detector, same engine");
    const autoax::SobelAccelerator sobel(
        autoax::componentsFromFlow(addFlow, core::FpgaParam::Area, 8));
    autoax::AutoAxFpgaFlow::Config sobelCfg;
    sobelCfg.trainConfigs = scale == bench::Scale::Ci ? 40 : 80;
    sobelCfg.hillIterations = scale == bench::Scale::Ci ? 400 : 1200;
    sobelCfg.imageSize = scale == bench::Scale::Ci ? 64 : 96;
    // A mixed-strategy island fleet on the second workload: same engine,
    // different metaheuristics per island.
    sobelCfg.islands = 3;
    sobelCfg.searchBatch = 4;
    sobelCfg.islandStrategies = {search::Strategy::HillClimb, search::Strategy::Anneal,
                                 search::Strategy::Genetic};
    util::Timer sobelTimer;
    const autoax::AutoAxFpgaFlow::Result sobelResult =
        autoax::AutoAxFpgaFlow(sobelCfg).run(sobel);
    std::cout << "design space: " << sobel.designSpaceSize() << " configurations, DSE "
              << util::Table::num(sobelTimer.seconds(), 2) << " s, "
              << sobelResult.totalRealEvaluations << " fresh real evaluations\n\n";
    util::Table sobelTable({"scenario", "front size", "best SSIM", "cheapest design"});
    for (const auto& s : sobelResult.scenarios) {
        double best = 0.0, cheapest = std::numeric_limits<double>::infinity();
        const std::vector<std::size_t> front = autoax::qualityCostFront(s.autoax, s.param);
        for (std::size_t pos : front) {
            best = std::max(best, s.autoax[pos].ssim);
            cheapest = std::min(cheapest, autoax::costParamOf(s.autoax[pos].cost, s.param));
        }
        sobelTable.addRow({std::string("SSIM vs ") + core::fpgaParamName(s.param),
                           std::to_string(front.size()), util::Table::num(best, 4),
                           util::Table::num(cheapest, 2)});
    }
    sobelTable.print(std::cout);

    // --- resilience-aware DSE: quality x cost x fault-MED fronts -----------
    // The stuck-at campaign engine (src/fault) characterizes each menu
    // component once (content-addressed in the shared cache), and the DSE
    // carries mean error-under-fault as a third archive objective — the
    // fronts below trade SSIM and hardware cost against resilience.
    util::printBanner(std::cout, "resilience-aware DSE: SSIM x cost x fault-MED");
    fault::CampaignConfig campaign;
    campaign.analysis.sampleCount = scale == bench::Scale::Ci ? 1u << 10 : 1u << 12;

    util::Table resTable({"adder", "MED", "fault sites", "coverage", "mean MED under fault"});
    const std::vector<autoax::Component>& menu = sobel.adderMenu();
    std::vector<double> componentFaultMed(menu.size(), 0.0);
    for (std::size_t c = 0; c < menu.size(); ++c) {
        const fault::ResilienceReport rr = cache::analyzeResilienceCached(
            bench::sharedCache(), menu[c].netlist.structuralHash(), menu[c].netlist,
            menu[c].signature, campaign);
        componentFaultMed[c] = rr.meanMedUnderFault;
        resTable.addRow({menu[c].name, util::Table::num(menu[c].error.med, 5),
                         std::to_string(rr.totalSites), util::Table::num(rr.faultCoverage, 3),
                         util::Table::num(rr.meanMedUnderFault, 5)});
    }
    std::cout << "per-component stuck-at campaigns (" << campaign.analysis.sampleCount
              << " vectors/fault, cached):\n";
    resTable.print(std::cout);

    autoax::AutoAxFpgaFlow::Config resCfg = sobelCfg;
    resCfg.resilienceObjective = true;
    resCfg.faultCampaign = campaign;
    resCfg.cache = bench::sharedCache();
    util::Timer resTimer;
    const autoax::AutoAxFpgaFlow::Result resResult = autoax::AutoAxFpgaFlow(resCfg).run(sobel);
    std::cout << "\n3-objective DSE: " << util::Table::num(resTimer.seconds(), 2) << " s, "
              << resResult.totalRealEvaluations << " fresh real evaluations\n";

    const auto slotMeanFaultMed = [&](const autoax::AcceleratorConfig& config) {
        double sum = 0.0;
        for (int choice : config.choice) sum += componentFaultMed[static_cast<std::size_t>(choice)];
        return sum / static_cast<double>(config.choice.size());
    };
    for (const autoax::AutoAxFpgaFlow::ScenarioResult& s : resResult.scenarios) {
        util::Table front({"SSIM", core::fpgaParamName(s.param), "fault MED (slot mean)"});
        for (std::size_t pos : autoax::qualityCostFront(s.autoax, s.param)) {
            const autoax::EvaluatedConfig& p = s.autoax[pos];
            front.addRow({util::Table::num(p.ssim, 4),
                          util::Table::num(autoax::costParamOf(p.cost, s.param), 2),
                          util::Table::num(slotMeanFaultMed(p.config), 5)});
        }
        std::cout << "\nSSIM-" << core::fpgaParamName(s.param)
                  << "-resilience front (" << front.rowCount() << " designs):\n";
        front.print(std::cout);
    }

    bench::printCacheStats(std::cout);
    return 0;
}

int main() { return axf::bench::guardedMain(benchMain); }
