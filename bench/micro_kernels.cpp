// Micro-benchmarks (google-benchmark) of the hot kernels underneath the
// experiment harnesses: bit-parallel netlist simulation (interpreter and
// compiled multi-word engine), exhaustive error analysis (seed baseline vs
// engine, serial vs thread-parallel), LUT technology mapping, full FPGA
// implementation, and SSIM.
//
// Emits BENCH_micro_kernels.json (google-benchmark JSON, items_per_second
// = vectors/sec for the per-vector kernels) unless --benchmark_out= is
// given explicitly, and prints the engine-vs-seed exhaustive-analysis
// speedup at the end so the perf trajectory is visible per PR.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/autoax/accelerator.hpp"
#include "src/autoax/eval_engine.hpp"
#include "src/circuit/batch_sim.hpp"
#include "src/circuit/simulator.hpp"
#include "src/error/error_metrics.hpp"
#include "src/fault/fault.hpp"
#include "src/gen/adders.hpp"
#include "src/gen/multipliers.hpp"
#include "src/img/ssim.hpp"
#include "src/search/island_search.hpp"
#include "src/search/toy_problem.hpp"
#include "src/synth/asic.hpp"
#include "src/synth/fpga.hpp"
#include "src/util/rng.hpp"
#include "src/verify/verify.hpp"

using namespace axf;

static void BM_SimulatorSweep(benchmark::State& state) {
    const circuit::Netlist net = gen::wallaceMultiplier(static_cast<int>(state.range(0)));
    circuit::Simulator sim(net);
    std::vector<std::uint64_t> in(net.inputCount(), 0x0123456789ABCDEFull);
    std::vector<std::uint64_t> out(net.outputCount());
    for (auto _ : state) {
        sim.evaluate(in, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_SimulatorSweep)->Arg(8)->Arg(16);

static void BM_BatchSimulatorSweep(benchmark::State& state) {
    const circuit::Netlist net = gen::wallaceMultiplier(static_cast<int>(state.range(0)));
    const circuit::CompiledNetlist compiled = circuit::CompiledNetlist::compile(net);
    circuit::BatchSimulator sim(compiled);
    const std::size_t W = sim.blockWords();  // the program's auto-chosen width
    std::vector<std::uint64_t> in(net.inputCount() * W, 0x0123456789ABCDEFull);
    std::vector<std::uint64_t> out(net.outputCount() * W);
    for (auto _ : state) {
        sim.evaluate(in, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(sim.blockLanes()));
}
BENCHMARK(BM_BatchSimulatorSweep)->Arg(8)->Arg(16);

/// Exhaustive-sweep throughput per block width: Arg(0) = multiplier bits
/// (8 -> the full 16-bit space cycles, 16 -> sequential blocks of the
/// 32-bit space), Arg(1) = forced blockWords (4 / 8 / 16).  The W=4 rows
/// are the pre-width-set engine shape; the committed baseline pins the
/// W=4-vs-best-W ratio per host.  items_per_second = vectors/sec.
static void BM_SweepWidth(benchmark::State& state) {
    const circuit::Netlist net = gen::wallaceMultiplier(static_cast<int>(state.range(0)));
    const std::size_t words = static_cast<std::size_t>(state.range(1));
    circuit::CompiledNetlist::Options options;
    options.blockWords = words;
    const circuit::CompiledNetlist compiled = circuit::CompiledNetlist::compile(net, options);
    circuit::BatchSimulator sim(compiled);
    const int totalBits = static_cast<int>(net.inputCount());
    const std::uint64_t space = std::uint64_t{1} << totalBits;
    std::vector<std::uint64_t> in(net.inputCount() * words);
    std::vector<std::uint64_t> out(net.outputCount() * words);
    std::uint64_t base = 0;
    for (auto _ : state) {
        circuit::fillExhaustiveBlock(in, totalBits, base, words);
        sim.evaluate(in, out);
        benchmark::DoNotOptimize(out.data());
        base += sim.blockLanes();
        if (base >= space) base = 0;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(sim.blockLanes()));
}
BENCHMARK(BM_SweepWidth)
    ->Args({8, 4})
    ->Args({8, 8})
    ->Args({8, 16})
    ->Args({16, 4})
    ->Args({16, 8})
    ->Args({16, 16});

static void BM_ExhaustiveError8x8_SeedBaseline(benchmark::State& state) {
    const circuit::Netlist net = gen::truncatedMultiplier(8, 4);
    const circuit::ArithSignature sig = gen::multiplierSignature(8);
    for (auto _ : state) {
        const error::ErrorReport r = error::analyzeErrorBaseline(net, sig);
        benchmark::DoNotOptimize(r.med);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 65536);
}
BENCHMARK(BM_ExhaustiveError8x8_SeedBaseline);

static void BM_ExhaustiveError8x8_EngineSerial(benchmark::State& state) {
    const circuit::Netlist net = gen::truncatedMultiplier(8, 4);
    const circuit::ArithSignature sig = gen::multiplierSignature(8);
    error::ErrorAnalysisConfig config;
    config.threads = 1;
    for (auto _ : state) {
        const error::ErrorReport r = error::analyzeError(net, sig, config);
        benchmark::DoNotOptimize(r.med);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 65536);
}
BENCHMARK(BM_ExhaustiveError8x8_EngineSerial);

static void BM_ExhaustiveError8x8_EngineParallel(benchmark::State& state) {
    const circuit::Netlist net = gen::truncatedMultiplier(8, 4);
    const circuit::ArithSignature sig = gen::multiplierSignature(8);
    for (auto _ : state) {
        const error::ErrorReport r = error::analyzeError(net, sig);
        benchmark::DoNotOptimize(r.med);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 65536);
}
BENCHMARK(BM_ExhaustiveError8x8_EngineParallel);

static void BM_SampledError16Bit(benchmark::State& state) {
    const circuit::Netlist net = gen::loaAdder(16, 6);
    const circuit::ArithSignature sig = gen::adderSignature(16);
    error::ErrorAnalysisConfig config;
    config.exhaustiveLimit = 1;  // force the sampled path
    config.sampleCount = 1u << 14;
    for (auto _ : state) {
        const error::ErrorReport r = error::analyzeError(net, sig, config);
        benchmark::DoNotOptimize(r.med);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(config.sampleCount));
}
BENCHMARK(BM_SampledError16Bit);

/// Exhaustive stuck-at campaign over the complete fault list of an 8x8
/// multiplier (Arg(0) = exact Wallace, Arg(t) = truncated-t): the batched
/// engine retires many faults per block pass (at the program's chosen
/// width) by replaying only each fault's downstream cone; the sampled
/// path additionally packs blockWords-1 faults per pass as lane groups.
/// items_per_second = faults retired/sec.
static void BM_FaultSweep(benchmark::State& state) {
    const circuit::Netlist net = state.range(0) == 0
                                     ? gen::wallaceMultiplier(8)
                                     : gen::truncatedMultiplier(8, static_cast<int>(state.range(0)));
    const circuit::ArithSignature sig = gen::multiplierSignature(8);
    fault::CampaignConfig config;
    config.analysis.threads = 1;
    const std::size_t faults =
        fault::enumerateFaultSites(circuit::CompiledNetlist::compile(net),
                                   config.includeInputFaults, config.collapseEquivalent)
            .sites.size();
    for (auto _ : state) {
        const fault::ResilienceReport r = fault::analyzeResilience(net, sig, config);
        benchmark::DoNotOptimize(r.meanMedUnderFault);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(faults));
}
BENCHMARK(BM_FaultSweep)->Arg(0)->Arg(4)->Arg(6);

/// The naive campaign shape the batched sweep replaces: one fault per full
/// sweep — mutate the netlist (stuck-at constant) and run one complete
/// exhaustive analysis over the input space per fault, on the scalar
/// reference analyzer (`analyzeErrorBaseline`, the obvious first
/// formulation).  Same Arg convention as BM_FaultSweep so the two are
/// circuit-matched; capped at 8 faults so the benchmark stays short.
/// items_per_second = faults retired/sec, directly comparable to the
/// same-Arg BM_FaultSweep row.
static void BM_FaultSweepNaive(benchmark::State& state) {
    const circuit::Netlist net = state.range(0) == 0
                                     ? gen::wallaceMultiplier(8)
                                     : gen::truncatedMultiplier(8, static_cast<int>(state.range(0)));
    const circuit::ArithSignature sig = gen::multiplierSignature(8);
    fault::CampaignConfig config;
    const fault::SiteEnumeration sites = fault::enumerateFaultSites(
        circuit::CompiledNetlist::compile(net), config.includeInputFaults,
        config.collapseEquivalent);
    const std::size_t cap = std::min<std::size_t>(sites.sites.size(), 8);
    for (auto _ : state) {
        for (std::size_t i = 0; i < cap; ++i) {
            const fault::FaultSite& s = sites.sites[i];
            benchmark::DoNotOptimize(
                error::analyzeErrorBaseline(fault::stuckAtNetlist(net, s.node, s.stuckTo), sig)
                    .med);
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(cap));
}
BENCHMARK(BM_FaultSweepNaive)->Arg(0)->Arg(4);

/// Static program verification (src/verify): full dataflow/schedule checks
/// plus the fusion-semantics truth-table re-derivation against the source
/// netlist.  Arg(8) = 8x8 Wallace, Arg(16) = 16x16 Wallace (the largest
/// library-shaped program); this is the AXF_VERIFY=1 per-compile overhead
/// and the axf-lint inner loop.  items_per_second = instructions
/// verified/sec.
static void BM_VerifyProgram(benchmark::State& state) {
    const circuit::Netlist net = gen::wallaceMultiplier(static_cast<int>(state.range(0)));
    const circuit::CompiledNetlist compiled = circuit::CompiledNetlist::compile(net);
    for (auto _ : state) {
        const verify::Diagnostics d = verify::verifyProgram(compiled, &net);
        benchmark::DoNotOptimize(d.errorCount());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(compiled.instructionCount()));
}
BENCHMARK(BM_VerifyProgram)->Arg(8)->Arg(16);

static void BM_LutMapping(benchmark::State& state) {
    const circuit::Netlist net = gen::wallaceMultiplier(static_cast<int>(state.range(0)));
    synth::FpgaFlow flow;
    for (auto _ : state) {
        const synth::LutMapper::Mapping m = flow.technologyMap(net);
        benchmark::DoNotOptimize(m.depth);
    }
}
BENCHMARK(BM_LutMapping)->Arg(8)->Arg(16);

static void BM_FpgaImplement(benchmark::State& state) {
    const circuit::Netlist net = gen::wallaceMultiplier(8);
    synth::FpgaFlow flow;
    for (auto _ : state) {
        const synth::FpgaReport r = flow.implement(net);
        benchmark::DoNotOptimize(r.lutCount);
    }
}
BENCHMARK(BM_FpgaImplement);

static void BM_AsicSynthesis(benchmark::State& state) {
    const circuit::Netlist net = gen::wallaceMultiplier(8);
    synth::AsicFlow flow;
    for (auto _ : state) {
        const synth::AsicReport r = flow.synthesize(net);
        benchmark::DoNotOptimize(r.areaUm2);
    }
}
BENCHMARK(BM_AsicSynthesis);

namespace {

/// Small fixed accelerator shared by the autoax kernels (built once; menu
/// characterization is setup cost, not what the kernel times).
const autoax::GaussianAccelerator& benchAccelerator() {
    static const autoax::GaussianAccelerator kAccel = [] {
        const auto make = [](circuit::Netlist net, circuit::ArithSignature sig) {
            autoax::Component c;
            c.name = net.name();
            c.signature = sig;
            c.error = error::analyzeError(net, sig);
            c.fpga = synth::FpgaFlow().implement(net);
            c.netlist = std::move(net);
            return c;
        };
        std::vector<autoax::Component> mults;
        mults.push_back(make(gen::wallaceMultiplier(8), gen::multiplierSignature(8)));
        for (int t : {4, 6})
            mults.push_back(make(gen::truncatedMultiplier(8, t), gen::multiplierSignature(8)));
        std::vector<autoax::Component> adds;
        adds.push_back(make(gen::rippleCarryAdder(16), gen::adderSignature(16)));
        adds.push_back(make(gen::loaAdder(16, 6), gen::adderSignature(16)));
        return autoax::GaussianAccelerator(std::move(mults), std::move(adds));
    }();
    return kAccel;
}

std::vector<autoax::AcceleratorConfig> benchConfigs(std::size_t n) {
    util::Rng rng(0xBC);
    std::vector<autoax::AcceleratorConfig> configs;
    for (std::size_t i = 0; i < n; ++i)
        configs.push_back(benchAccelerator().configSpace().randomConfig(rng));
    return configs;
}

}  // namespace

/// Batched accelerator-quality evaluation (the DSE hot loop): 16 configs x
/// 2 scenes through `EvalEngine::evaluateBatch` — exact references and
/// SSIM window stats hoisted, per-thread workspaces reused, memoization
/// off so every iteration pays the full simulation.  items_per_second =
/// config evaluations/sec.
static void BM_AutoAxQualityBatch(benchmark::State& state) {
    const std::vector<img::Image> scenes = {img::syntheticScene(64, 64, 0xA1),
                                            img::syntheticScene(64, 64, 0xA2)};
    autoax::EvalEngine engine(benchAccelerator(), scenes, {.memoize = false});
    const std::vector<autoax::AcceleratorConfig> configs = benchConfigs(16);
    for (auto _ : state) {
        const std::vector<autoax::EvaluatedConfig> results = engine.evaluateBatch(configs);
        benchmark::DoNotOptimize(results.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(configs.size()));
}
BENCHMARK(BM_AutoAxQualityBatch);

/// The scalar reference path for the same work (one config x scene at a
/// time, exact reference recomputed per call) — the engine speedup is
/// BM_AutoAxQualityBatch / BM_AutoAxQualityScalar per item.
static void BM_AutoAxQualityScalar(benchmark::State& state) {
    const std::vector<img::Image> scenes = {img::syntheticScene(64, 64, 0xA1),
                                            img::syntheticScene(64, 64, 0xA2)};
    const std::vector<autoax::AcceleratorConfig> configs = benchConfigs(16);
    for (auto _ : state) {
        for (const autoax::AcceleratorConfig& c : configs) {
            benchmark::DoNotOptimize(benchAccelerator().quality(c, scenes));
            benchmark::DoNotOptimize(benchAccelerator().cost(c));
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(configs.size()));
}
BENCHMARK(BM_AutoAxQualityScalar);

/// The shared near-free reference Problem (12 slots over a 16-entry
/// menu) times the search engine itself — mutation drafts, archive
/// dominance scans, thinning, migration — rather than any estimator.
/// items_per_second = candidate evaluations/sec of pure engine
/// throughput (the DSE regression gate for search overhead).
using BenchSearchProblem = search::ToyProblem<12, 16>;

/// Single-threaded island-search throughput (4 islands, speculative
/// batches, ring migration, capped archives) — threads are pinned to 1 so
/// the figure isolates engine overhead and stays comparable across hosts.
static void BM_IslandSearch(benchmark::State& state) {
    const BenchSearchProblem problem;
    search::IslandSearch<BenchSearchProblem>::Options options;
    options.islands = 4;
    options.generations = 50;
    options.batch = 4;
    options.seedsPerIsland = 8;
    options.migrationInterval = 8;
    options.migrants = 4;
    options.archiveCap = 64;
    options.seed = 0xBE;
    options.islandStrategies = {search::Strategy::HillClimb, search::Strategy::Anneal,
                                search::Strategy::Genetic};
    options.threads = 1;
    const std::size_t evaluationsPerRun =
        static_cast<std::size_t>(options.islands) *
        static_cast<std::size_t>(options.seedsPerIsland + options.generations * options.batch);
    for (auto _ : state) {
        const auto result = search::IslandSearch(problem, options).run();
        benchmark::DoNotOptimize(result.archive.entries().data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(evaluationsPerRun));
}
BENCHMARK(BM_IslandSearch);

static void BM_Ssim(benchmark::State& state) {
    const img::Image a = img::syntheticScene(128, 128, 1);
    const img::Image b = img::syntheticScene(128, 128, 2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(img::ssim(a, b));
    }
}
BENCHMARK(BM_Ssim);

namespace {

/// Best-of-N wall time of one exhaustive 8x8 analysis, in seconds.
template <typename Fn>
double bestOf(Fn fn, int reps) {
    fn();  // warm up
    double best = 1e30;
    for (int rep = 0; rep < reps; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

void printCompiledStats(const circuit::Netlist& net) {
    const circuit::CompiledNetlist::Stats s = circuit::CompiledNetlist::compile(net).stats();
    std::printf(
        "compiled %-14s backend=%-8s W=%-2zu %3zu gates -> %3zu instrs (%zu fused ops, %zu "
        "gates folded), %zu runs (longest %zu, %zu chained)%s\n",
        net.name().c_str(), s.backend, s.blockWords, net.gateCount(), s.instructions,
        s.fusedOps, s.gatesFused, s.runs, s.longestRun, s.chainedRuns,
        s.specialized ? ", specialized" : "");
}

void printSpeedupSummary() {
    const circuit::Netlist net = gen::truncatedMultiplier(8, 4);
    const circuit::ArithSignature sig = gen::multiplierSignature(8);
    std::printf("\n");
    printCompiledStats(net);
    printCompiledStats(gen::wallaceMultiplier(8));
    printCompiledStats(gen::wallaceMultiplier(16));
    printCompiledStats(gen::rippleCarryAdder(16));
    // Serial engine config: the headline number must isolate the engine
    // gain, comparable across hosts with different core counts (the
    // BM_*_EngineParallel benchmark tracks the threaded figure).
    error::ErrorAnalysisConfig serial;
    serial.threads = 1;
    const double tSeed =
        bestOf([&] { benchmark::DoNotOptimize(error::analyzeErrorBaseline(net, sig).med); }, 9);
    const double tEngine =
        bestOf([&] { benchmark::DoNotOptimize(error::analyzeError(net, sig, serial).med); }, 9);
    const double tParallel =
        bestOf([&] { benchmark::DoNotOptimize(error::analyzeError(net, sig).med); }, 9);
    std::printf(
        "\nexhaustive 8x8 multiplier error analysis: seed %.3f ms (%.3e vec/s), "
        "engine %.3f ms (%.3e vec/s), single-thread speedup %.2fx "
        "(parallel %.3f ms, %.2fx)\n",
        tSeed * 1e3, 65536.0 / tSeed, tEngine * 1e3, 65536.0 / tEngine, tSeed / tEngine,
        tParallel * 1e3, tSeed / tParallel);

    // Fault campaign: the batched sweep vs one-fault-per-full-sweep on the
    // exact 8x8 Wallace multiplier, both normalized to microseconds per
    // fault retired.  Two reference points: the naive scalar formulation
    // (mutate + full analyzeErrorBaseline sweep, what BM_FaultSweepNaive
    // measures) and the stronger per-fault re-analysis through the
    // compiled engine.
    const circuit::Netlist mul8 = gen::wallaceMultiplier(8);
    fault::CampaignConfig campaign;
    campaign.analysis.threads = 1;
    const fault::SiteEnumeration sites = fault::enumerateFaultSites(
        circuit::CompiledNetlist::compile(mul8), campaign.includeInputFaults,
        campaign.collapseEquivalent);
    const double tSweep = bestOf(
        [&] {
            benchmark::DoNotOptimize(
                fault::analyzeResilience(mul8, sig, campaign).meanMedUnderFault);
        },
        3);
    const std::size_t naiveCap = std::min<std::size_t>(sites.sites.size(), 8);
    const double tNaive = bestOf(
        [&] {
            for (std::size_t i = 0; i < naiveCap; ++i)
                benchmark::DoNotOptimize(
                    error::analyzeErrorBaseline(
                        fault::stuckAtNetlist(mul8, sites.sites[i].node, sites.sites[i].stuckTo),
                        sig)
                        .med);
        },
        3);
    const std::size_t engineCap = std::min<std::size_t>(sites.sites.size(), 16);
    const double tEngineNaive = bestOf(
        [&] {
            for (std::size_t i = 0; i < engineCap; ++i)
                benchmark::DoNotOptimize(
                    error::analyzeError(
                        fault::stuckAtNetlist(mul8, sites.sites[i].node, sites.sites[i].stuckTo),
                        sig, serial)
                        .med);
        },
        3);
    const double perFaultSweep = tSweep / static_cast<double>(sites.sites.size());
    const double perFaultNaive = tNaive / static_cast<double>(naiveCap);
    const double perFaultEngine = tEngineNaive / static_cast<double>(engineCap);
    std::printf(
        "exhaustive 8x8 stuck-at campaign: %zu faults in %.3f ms (%.2f us/fault); naive "
        "one-fault-per-sweep %.2f us/fault (batched %.1fx), engine re-analysis %.2f us/fault "
        "(batched %.1fx)\n",
        sites.sites.size(), tSweep * 1e3, perFaultSweep * 1e6, perFaultNaive * 1e6,
        perFaultNaive / perFaultSweep, perFaultEngine * 1e6, perFaultEngine / perFaultSweep);
}

}  // namespace

int main(int argc, char** argv) {
    // Default to machine-readable output so the per-PR perf trajectory is
    // tracked without remembering the flag.
    std::vector<char*> args(argv, argv + argc);
    std::string outFlag = "--benchmark_out=BENCH_micro_kernels.json";
    std::string formatFlag = "--benchmark_out_format=json";
    bool hasOut = false, hasFormat = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) hasOut = true;
        if (std::strncmp(argv[i], "--benchmark_out_format=", 23) == 0) hasFormat = true;
    }
    if (!hasOut) args.push_back(outFlag.data());
    if (!hasFormat) args.push_back(formatFlag.data());
    int argcAdj = static_cast<int>(args.size());
    benchmark::Initialize(&argcAdj, args.data());
    if (benchmark::ReportUnrecognizedArguments(argcAdj, args.data())) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printSpeedupSummary();
    return 0;
}
