// Micro-benchmarks (google-benchmark) of the hot kernels underneath the
// experiment harnesses: bit-parallel netlist simulation, exhaustive error
// analysis, LUT technology mapping, full FPGA implementation, and SSIM.

#include <benchmark/benchmark.h>

#include "src/error/error_metrics.hpp"
#include "src/gen/multipliers.hpp"
#include "src/gen/adders.hpp"
#include "src/img/ssim.hpp"
#include "src/synth/fpga.hpp"
#include "src/synth/asic.hpp"
#include "src/circuit/simulator.hpp"

using namespace axf;

static void BM_SimulatorSweep(benchmark::State& state) {
    const circuit::Netlist net = gen::wallaceMultiplier(static_cast<int>(state.range(0)));
    circuit::Simulator sim(net);
    std::vector<std::uint64_t> in(net.inputCount(), 0x0123456789ABCDEFull);
    std::vector<std::uint64_t> out(net.outputCount());
    for (auto _ : state) {
        sim.evaluate(in, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_SimulatorSweep)->Arg(8)->Arg(16);

static void BM_ExhaustiveError8x8(benchmark::State& state) {
    const circuit::Netlist net = gen::truncatedMultiplier(8, 4);
    const circuit::ArithSignature sig = gen::multiplierSignature(8);
    for (auto _ : state) {
        const error::ErrorReport r = error::analyzeError(net, sig);
        benchmark::DoNotOptimize(r.med);
    }
}
BENCHMARK(BM_ExhaustiveError8x8);

static void BM_LutMapping(benchmark::State& state) {
    const circuit::Netlist net = gen::wallaceMultiplier(static_cast<int>(state.range(0)));
    synth::FpgaFlow flow;
    for (auto _ : state) {
        const synth::LutMapper::Mapping m = flow.technologyMap(net);
        benchmark::DoNotOptimize(m.depth);
    }
}
BENCHMARK(BM_LutMapping)->Arg(8)->Arg(16);

static void BM_FpgaImplement(benchmark::State& state) {
    const circuit::Netlist net = gen::wallaceMultiplier(8);
    synth::FpgaFlow flow;
    for (auto _ : state) {
        const synth::FpgaReport r = flow.implement(net);
        benchmark::DoNotOptimize(r.lutCount);
    }
}
BENCHMARK(BM_FpgaImplement);

static void BM_AsicSynthesis(benchmark::State& state) {
    const circuit::Netlist net = gen::wallaceMultiplier(8);
    synth::AsicFlow flow;
    for (auto _ : state) {
        const synth::AsicReport r = flow.synthesize(net);
        benchmark::DoNotOptimize(r.areaUm2);
    }
}
BENCHMARK(BM_AsicSynthesis);

static void BM_Ssim(benchmark::State& state) {
    const img::Image a = img::syntheticScene(128, 128, 1);
    const img::Image b = img::syntheticScene(128, 128, 2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(img::ssim(a, b));
    }
}
BENCHMARK(BM_Ssim);

BENCHMARK_MAIN();
