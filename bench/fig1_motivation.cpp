// Fig. 1 — Motivational analysis: the Pareto front of approximate 8x8
// multipliers on the FPGA target differs from the ASIC target, and
// hand-crafted FPGA-specific multipliers are not Pareto-optimal against
// the evolutionary library.
//
// Prints (a) the FPGA Pareto front (MED vs #LUTs) with each point's ASIC
// Pareto membership, (b) the ASIC Pareto front (MED vs area), and (c) where
// the structural FPGA-oriented designs (stand-in for SoA [16]) land.

#include <iostream>

#include "bench/bench_common.hpp"
#include "src/circuit/batch_sim.hpp"
#include "src/core/dataset.hpp"
#include "src/core/pareto.hpp"
#include "src/gen/multipliers.hpp"
#include "src/util/table.hpp"

using namespace axf;

static int benchMain() {
    const bench::Scale scale = bench::scaleFromEnv();
    util::printBanner(std::cout, "Fig. 1 | ASIC-ACs vs FPGA-ACs: 8x8 approximate multipliers");

    // Simulation-engine shape for the figure's workhorse circuit, so
    // fusion/dispatch wins (or regressions) are visible in every fig run.
    {
        const circuit::Netlist probe = gen::wallaceMultiplier(8);
        const circuit::CompiledNetlist::Stats s =
            circuit::CompiledNetlist::compile(probe).stats();
        std::cout << "engine: backend=" << s.backend << ", " << probe.gateCount()
                  << " gates -> " << s.instructions << " instrs (" << s.fusedOps
                  << " fused ops), " << s.runs << " runs (" << s.chainedRuns << " chained)"
                  << (s.specialized ? ", specialized" : "") << "\n";
    }

    gen::AcLibrary library = gen::buildLibrary(bench::libraryConfig(circuit::ArithOp::Multiplier, 8, scale));
    std::cout << "library size: " << library.size() << " circuits\n";

    core::CircuitDataset dataset = core::CircuitDataset::characterize(
        std::move(library), synth::AsicFlow(), bench::sharedCache());
    synth::FpgaFlow fpga;
    for (core::CharacterizedCircuit& cc : dataset.circuits()) {
        cc.fpga = fpga.implement(cc.circuit.netlist);
        cc.fpgaMeasured = true;
    }
    const auto& circuits = dataset.circuits();

    // Pareto fronts in (MED, cost) for both targets.
    std::vector<core::ParetoPoint> fpgaPts(circuits.size()), asicPts(circuits.size());
    for (std::size_t i = 0; i < circuits.size(); ++i) {
        fpgaPts[i] = {circuits[i].circuit.error.med, circuits[i].fpga.lutCount, i};
        asicPts[i] = {circuits[i].circuit.error.med, circuits[i].asic.areaUm2, i};
    }
    const std::vector<std::size_t> fpgaFront = core::paretoFront(fpgaPts);
    const std::vector<std::size_t> asicFront = core::paretoFront(asicPts);

    std::vector<bool> onAsic(circuits.size(), false);
    for (std::size_t pos : asicFront) onAsic[asicPts[pos].index] = true;

    util::Table table({"circuit", "origin", "MED", "FPGA #LUTs", "ASIC area", "ASIC-pareto?"});
    std::size_t overlap = 0;
    for (std::size_t pos : fpgaFront) {
        const std::size_t i = fpgaPts[pos].index;
        if (onAsic[i]) ++overlap;
        table.addRow({circuits[i].circuit.name, circuits[i].circuit.origin,
                      util::Table::num(circuits[i].circuit.error.med, 6),
                      util::Table::num(circuits[i].fpga.lutCount, 0),
                      util::Table::num(circuits[i].asic.areaUm2, 1), onAsic[i] ? "yes" : "NO"});
    }
    std::cout << "\nFPGA-AC Pareto front (MED vs #LUTs):\n";
    table.print(std::cout);

    std::vector<bool> onFpga(circuits.size(), false);
    for (std::size_t pos : fpgaFront) onFpga[fpgaPts[pos].index] = true;
    std::size_t asicOnly = 0;
    for (std::size_t pos : asicFront)
        if (!onFpga[asicPts[pos].index]) ++asicOnly;
    std::cout << "\nkey observation (1): |FPGA front| = " << fpgaFront.size()
              << ", |ASIC front| = " << asicFront.size() << ", overlap = " << overlap << "\n  -> "
              << asicOnly << "/" << asicFront.size() << " ("
              << util::Table::percent(static_cast<double>(asicOnly) /
                                      static_cast<double>(asicFront.size()))
              << ") of the ASIC-Pareto-optimal ACs are NOT Pareto-optimal on the FPGA\n";

    // SoA FPGA-specific designs [16] stand-in: the structural OR-compressor
    // and truncation multipliers, checked for domination by the library.
    util::Table soa({"SoA FPGA-AC (stand-in)", "MED", "#LUTs", "dominated by library?"});
    std::size_t dominated = 0, considered = 0;
    for (std::size_t i = 0; i < circuits.size(); ++i) {
        const std::string& origin = circuits[i].circuit.origin;
        if (origin != "cmp" && origin != "kulkarni") continue;
        ++considered;
        bool isDominated = false;
        for (std::size_t j = 0; j < circuits.size(); ++j) {
            if (j == i) continue;
            const bool leqBoth = circuits[j].circuit.error.med <= circuits[i].circuit.error.med &&
                                 circuits[j].fpga.lutCount <= circuits[i].fpga.lutCount;
            const bool ltOne = circuits[j].circuit.error.med < circuits[i].circuit.error.med ||
                               circuits[j].fpga.lutCount < circuits[i].fpga.lutCount;
            if (leqBoth && ltOne) {
                isDominated = true;
                break;
            }
        }
        if (isDominated) ++dominated;
        soa.addRow({circuits[i].circuit.name, util::Table::num(circuits[i].circuit.error.med, 6),
                    util::Table::num(circuits[i].fpga.lutCount, 0), isDominated ? "yes" : "no"});
    }
    std::cout << "\n";
    soa.print(std::cout);
    std::cout << "\nkey observation (3): " << dominated << "/" << considered
              << " hand-crafted FPGA-oriented designs are dominated by the evolutionary library\n";
    return 0;
}

int main() { return axf::bench::guardedMain(benchMain); }
