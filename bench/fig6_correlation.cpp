// Fig. 6 — Correlation of estimated vs measured FPGA parameters for the
// top-3 models on the 16x16 multiplier library.  The paper's scatter plots
// are summarized as Pearson/Spearman correlations and the mean signed
// relative bias (its key finding: latency is under-estimated by ~30% by
// regression-on-ASIC and kernel ridge).

#include <iostream>

#include "bench/bench_common.hpp"
#include "src/core/flow.hpp"
#include "src/util/stats.hpp"
#include "src/util/table.hpp"

using namespace axf;

static int benchMain() {
    const bench::Scale scale = bench::scaleFromEnv();
    util::printBanner(std::cout, "Fig. 6 | Estimated-vs-measured correlation, 16x16 multipliers");

    gen::AcLibrary library =
        gen::buildLibrary(bench::libraryConfig(circuit::ArithOp::Multiplier, 16, scale));
    std::cout << "16x16 multiplier library: " << library.size() << " circuits\n";

    // Measure everything once (ground truth for the scatter), train on a
    // 10% subset like the methodology does.
    core::CircuitDataset ds = core::CircuitDataset::characterize(
        std::move(library), synth::AsicFlow(), bench::sharedCache());
    synth::FpgaFlow fpga;
    for (core::CharacterizedCircuit& cc : ds.circuits()) {
        cc.fpga = cache::implementCached(bench::sharedCache(), fpga, cc.circuit.netlist);
        cc.fpgaMeasured = true;
    }
    util::Rng rng(0xF16);
    const std::vector<std::size_t> subset = rng.sampleIndices(
        ds.size(), std::max<std::size_t>(12, ds.size() / 10));
    std::vector<std::size_t> rest;
    {
        std::vector<bool> inSubset(ds.size(), false);
        for (std::size_t i : subset) inSubset[i] = true;
        for (std::size_t i = 0; i < ds.size(); ++i)
            if (!inSubset[i]) rest.push_back(i);
    }

    const std::vector<ml::ModelSpec> specs =
        ml::tableOneModels(core::CircuitDataset::asicColumns());
    const ml::Matrix xTrain = ds.featureMatrix(subset);
    const ml::Matrix xTest = ds.featureMatrix(rest);

    // Paper's Fig. 6 model line-up: Bayesian ridge, PLS, kernel ridge, plus
    // the regression-w.r.t.-ASIC baseline for each parameter.
    for (core::FpgaParam param : core::kAllFpgaParams) {
        const char* baselineId = param == core::FpgaParam::Latency ? "ML2"
                                 : param == core::FpgaParam::Power ? "ML1"
                                                                   : "ML3";
        util::Table table({"model", "pearson", "spearman", "bias"});
        for (const std::string& id : {std::string("ML11"), std::string("ML4"),
                                      std::string("ML10"), std::string(baselineId)}) {
            ml::RegressorPtr model = ml::findModel(specs, id).make();
            model->fit(xTrain, ds.measuredTargets(subset, param));
            const ml::Vector est = model->predictAll(xTest);
            const ml::Vector mes = ds.measuredTargets(rest, param);
            table.addRow({id, util::Table::num(util::pearson(mes, est), 3),
                          util::Table::num(util::spearman(mes, est), 3),
                          util::Table::num(util::relativeBias(mes, est), 1) + "%"});
        }
        std::cout << "\nFPGA " << core::fpgaParamName(param) << " (" << rest.size()
                  << " held-out circuits):\n";
        table.print(std::cout);
    }
    std::cout << "\n(paper: Bayesian ridge and PLS usable standalone for all three parameters;\n"
                 " latency estimates carry the largest bias)\n";
    bench::printCacheStats(std::cout);
    return 0;
}

int main() { return axf::bench::guardedMain(benchMain); }
