// Table I + Fig. 5 — Fidelity of all 18 statistical/ML models for the three
// FPGA parameters (latency, power, area), evaluated on the validation
// subset of the 8x8 multiplier library.  Also reproduces the paper's
// cross-bit-width generalization observation (same-width ~88% vs
// cross-width ~53% average fidelity).

#include <iostream>

#include "bench/bench_common.hpp"
#include "src/core/fidelity.hpp"
#include "src/core/flow.hpp"
#include "src/util/table.hpp"

using namespace axf;

namespace {

/// Characterizes a library and synthesizes a fraction of it.
core::CircuitDataset measuredDataset(gen::AcLibrary library, double fraction,
                                     std::uint64_t seed) {
    core::CircuitDataset ds = core::CircuitDataset::characterize(
        std::move(library), synth::AsicFlow(), bench::sharedCache());
    util::Rng rng(seed);
    synth::FpgaFlow fpga;
    std::vector<std::size_t> subset = rng.sampleIndices(
        ds.size(), std::max<std::size_t>(10, static_cast<std::size_t>(
                                                 fraction * static_cast<double>(ds.size()))));
    for (std::size_t idx : subset) {
        ds.circuits()[idx].fpga = cache::implementCached(bench::sharedCache(), fpga,
                                                         ds.circuits()[idx].circuit.netlist);
        ds.circuits()[idx].fpgaMeasured = true;
    }
    return ds;
}

std::vector<std::size_t> measuredIndices(const core::CircuitDataset& ds) {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < ds.size(); ++i)
        if (ds.circuits()[i].fpgaMeasured) out.push_back(i);
    return out;
}

}  // namespace

static int benchMain() {
    const bench::Scale scale = bench::scaleFromEnv();
    util::printBanner(std::cout, "Table I | The 18 statistical/ML models");
    const std::vector<ml::ModelSpec> specs =
        ml::tableOneModels(core::CircuitDataset::asicColumns());
    util::Table tableOne({"id", "model"});
    for (const ml::ModelSpec& spec : specs) tableOne.addRow({spec.id, spec.name});
    tableOne.print(std::cout);

    util::printBanner(std::cout, "Fig. 5 | Fidelity of the 18 models x {latency, power, area}");
    gen::AcLibrary library =
        gen::buildLibrary(bench::libraryConfig(circuit::ArithOp::Multiplier, 8, scale));
    std::cout << "8x8 multiplier library: " << library.size()
              << " circuits; 10% synthesized, 80/20 train/validation split\n\n";

    core::ApproxFpgasFlow::Config cfg;
    cfg.evaluateCoverage = false;
    cfg.cache = bench::sharedCache();
    const core::FlowResult result = core::ApproxFpgasFlow(cfg).run(std::move(library));

    util::Table fid({"model", "name", "latency", "power", "area"});
    for (const core::ModelScore& s : result.leaderboard)
        fid.addRow({s.id, s.name,
                    util::Table::percent(s.fidelityByParam.at(core::FpgaParam::Latency)),
                    util::Table::percent(s.fidelityByParam.at(core::FpgaParam::Power)),
                    util::Table::percent(s.fidelityByParam.at(core::FpgaParam::Area))});
    fid.print(std::cout);

    // --- cross-bit-width generalization ------------------------------------
    util::printBanner(std::cout,
                      "Fig. 5 follow-up | Generalization across bit-widths (paper: 88% -> 53%)");
    core::CircuitDataset ds8 = measuredDataset(
        gen::buildLibrary(bench::libraryConfig(circuit::ArithOp::Multiplier, 8, scale)), 0.35, 11);
    core::CircuitDataset ds12 = measuredDataset(
        gen::buildLibrary(bench::libraryConfig(circuit::ArithOp::Multiplier, 12, scale)), 0.35, 12);

    const std::vector<std::size_t> m8 = measuredIndices(ds8);
    const std::vector<std::size_t> m12 = measuredIndices(ds12);
    const std::size_t split8 = m8.size() * 4 / 5;
    const std::vector<std::size_t> train8(m8.begin(), m8.begin() + static_cast<std::ptrdiff_t>(split8));
    const std::vector<std::size_t> val8(m8.begin() + static_cast<std::ptrdiff_t>(split8), m8.end());

    util::Table gen({"model", "same-width (8->8)", "cross-width (8->12)"});
    double sameAcc = 0.0, crossAcc = 0.0;
    const std::vector<std::string> ids = {"ML4", "ML5", "ML10", "ML11", "ML13", "ML18"};
    for (const std::string& id : ids) {
        double same = 0.0, cross = 0.0;
        for (core::FpgaParam param : core::kAllFpgaParams) {
            ml::RegressorPtr model = ml::findModel(specs, id).make();
            model->fit(ds8.featureMatrix(train8), ds8.measuredTargets(train8, param));
            same += core::fidelity(ds8.measuredTargets(val8, param),
                                   model->predictAll(ds8.featureMatrix(val8)));
            cross += core::fidelity(ds12.measuredTargets(m12, param),
                                    model->predictAll(ds12.featureMatrix(m12)));
        }
        same /= 3.0;
        cross /= 3.0;
        sameAcc += same;
        crossAcc += cross;
        gen.addRow({id, util::Table::percent(same), util::Table::percent(cross)});
    }
    gen.print(std::cout);
    std::cout << "\naverage same-width fidelity:  "
              << util::Table::percent(sameAcc / static_cast<double>(ids.size()))
              << " (paper: ~88%)\naverage cross-width fidelity: "
              << util::Table::percent(crossAcc / static_cast<double>(ids.size()))
              << " (paper: ~53%)\n";
    bench::printCacheStats(std::cout);
    return 0;
}

int main() { return axf::bench::guardedMain(benchMain); }
