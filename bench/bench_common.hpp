#pragma once

// Shared configuration of the experiment harnesses.  Every bench prints the
// rows/series of one table or figure of the DAC'20 ApproxFPGAs paper.
//
// Scale: benches default to proportionally smaller CGP libraries than the
// paper's corpus so the whole suite runs in minutes.  Set AXF_SCALE=paper
// to grow the libraries toward paper scale (slower), or AXF_SCALE=ci for
// the smallest smoke configuration.

#include <cstdlib>
#include <string>

#include "src/gen/library.hpp"

namespace axf::bench {

enum class Scale { Ci, Default, Paper };

inline Scale scaleFromEnv() {
    const char* env = std::getenv("AXF_SCALE");
    if (env == nullptr) return Scale::Default;
    const std::string v(env);
    if (v == "ci") return Scale::Ci;
    if (v == "paper") return Scale::Paper;
    return Scale::Default;
}

/// Library-generation policy for one operator/width at the chosen scale.
inline gen::LibraryConfig libraryConfig(circuit::ArithOp op, int width, Scale scale) {
    gen::LibraryConfig cfg;
    cfg.op = op;
    cfg.width = width;
    cfg.seed = 0xA90F5 + static_cast<std::uint64_t>(width) * 7 +
               (op == circuit::ArithOp::Multiplier ? 1 : 0);
    switch (scale) {
        case Scale::Ci:
            cfg.medBudgets = {0.001, 0.01};
            cfg.cgpGenerations = 60;
            break;
        case Scale::Default:
            cfg.medBudgets = {0.0005, 0.001, 0.002, 0.005, 0.01, 0.03};
            cfg.cgpGenerations = width >= 16 ? 90 : 150;
            break;
        case Scale::Paper:
            cfg.medBudgets = {0.0002, 0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05};
            cfg.cgpGenerations = width >= 16 ? 220 : 450;
            break;
    }
    // Wide operators: sampled error analysis keeps reports comparable.
    if (width >= 12) {
        cfg.errorConfig.exhaustiveLimit = 1u << 16;
        cfg.errorConfig.sampleCount = 1u << 15;
    }
    return cfg;
}

}  // namespace axf::bench
