#pragma once

// Shared configuration of the experiment harnesses.  Every bench prints the
// rows/series of one table or figure of the DAC'20 ApproxFPGAs paper.
//
// Scale: benches default to proportionally smaller CGP libraries than the
// paper's corpus so the whole suite runs in minutes.  Set AXF_SCALE=paper
// to grow the libraries toward paper scale (slower), or AXF_SCALE=ci for
// the smallest smoke configuration.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "src/cache/characterization_cache.hpp"
#include "src/gen/library.hpp"
#include "src/util/cancellation.hpp"

namespace axf::bench {

/// The process-wide SIGINT/SIGTERM cancellation token (installs the
/// handlers on first use).  Library builds configured via `libraryConfig`
/// check it, so ^C on a bench stops at the next characterization batch
/// instead of being killed mid-write.
inline const util::CancellationToken* signalCancel() { return &util::signalToken(); }

/// Bench main wrapper: installs the signal token up front and converts a
/// cooperative cancellation into the distinct exit status 75
/// (`util::kCancelledExitCode`), so harnesses can tell "interrupted" from
/// "crashed".  Usage: `int main() { return bench::guardedMain(benchMain); }`.
inline int guardedMain(int (*body)()) {
    signalCancel();
    try {
        return body();
    } catch (const util::OperationCancelled& cancelled) {
        std::fprintf(stderr, "bench interrupted: %s\n", cancelled.what());
        return util::kCancelledExitCode;
    }
}

enum class Scale { Ci, Default, Paper };

inline Scale scaleFromEnv() {
    const char* env = std::getenv("AXF_SCALE");
    if (env == nullptr) return Scale::Default;
    const std::string v(env);
    if (v == "ci") return Scale::Ci;
    if (v == "paper") return Scale::Paper;
    return Scale::Default;
}

/// Process-wide characterization cache shared by every bench stage.
///
/// `AXF_CACHE_DIR` selects the backing store:
///   - unset        -> `.axf_cache` in the working directory (persistent, so
///                     repeated bench runs and multi-process fleets share
///                     one characterization corpus);
///   - a path       -> that directory;
///   - `mem`        -> in-memory only (no files written);
///   - `off`/`none`/`0`/empty -> disabled (every run recomputes).
///
/// Cached results are bit-identical to recomputation, so bench output never
/// depends on the cache state — only wall time does.
inline cache::CharacterizationCache* sharedCache() {
    static const std::unique_ptr<cache::CharacterizationCache> instance = [] {
        const char* env = std::getenv("AXF_CACHE_DIR");
        std::string dir = env == nullptr ? ".axf_cache" : env;
        if (dir.empty() || dir == "off" || dir == "none" || dir == "0")
            return std::unique_ptr<cache::CharacterizationCache>();
        cache::CharacterizationCache::Options options;
        if (dir != "mem") options.directory = dir;
        return std::make_unique<cache::CharacterizationCache>(options);
    }();
    return instance.get();
}

/// Flushes the shared cache and prints its hit/miss/evict counters (the
/// benches call this once at the end of their report).
inline void printCacheStats(std::ostream& os) {
    cache::CharacterizationCache* cache = sharedCache();
    if (cache == nullptr) {
        os << "[characterization cache: off]\n";
        return;
    }
    cache->flush();
    os << "[characterization cache: " << cache->stats().summary();
    if (!cache->directory().empty()) os << "; store: " << cache->directory();
    os << "]\n";
}

/// Library-generation policy for one operator/width at the chosen scale.
/// The returned config routes characterization through `sharedCache()`.
inline gen::LibraryConfig libraryConfig(circuit::ArithOp op, int width, Scale scale) {
    gen::LibraryConfig cfg;
    cfg.op = op;
    cfg.width = width;
    cfg.seed = 0xA90F5 + static_cast<std::uint64_t>(width) * 7 +
               (op == circuit::ArithOp::Multiplier ? 1 : 0);
    switch (scale) {
        case Scale::Ci:
            cfg.medBudgets = {0.001, 0.01};
            cfg.cgpGenerations = 60;
            break;
        case Scale::Default:
            cfg.medBudgets = {0.0005, 0.001, 0.002, 0.005, 0.01, 0.03};
            cfg.cgpGenerations = width >= 16 ? 90 : 150;
            break;
        case Scale::Paper:
            cfg.medBudgets = {0.0002, 0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05};
            cfg.cgpGenerations = width >= 16 ? 220 : 450;
            break;
    }
    // Wide operators: sampled error analysis keeps reports comparable.
    if (width >= 12) {
        cfg.errorConfig.exhaustiveLimit = 1u << 16;
        cfg.errorConfig.sampleCount = 1u << 15;
    }
    cfg.cache = sharedCache();
    cfg.cancel = signalCancel();
    return cfg;
}

}  // namespace axf::bench
