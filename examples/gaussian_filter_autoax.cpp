// AutoAx-FPGA end to end on a small budget: builds FPGA-AC component menus
// with the ApproxFPGAs flow, assembles the Gaussian-filter accelerator,
// trains QoR/cost estimators, searches, and prints the discovered
// SSIM-vs-power trade-off against a random-search baseline.

#include <iostream>

#include "src/autoax/accelerator.hpp"
#include "src/autoax/dse.hpp"
#include "src/core/flow.hpp"
#include "src/util/table.hpp"

int main() {
    using namespace axf;

    // Small component-library runs (see bench/fig9_autoax for full scale).
    const auto makeLibrary = [](circuit::ArithOp op, int width) {
        gen::LibraryConfig cfg;
        cfg.op = op;
        cfg.width = width;
        cfg.medBudgets = {0.001, 0.01};
        cfg.cgpGenerations = 80;
        if (width >= 12) {
            cfg.errorConfig.exhaustiveLimit = 1u << 16;
            cfg.errorConfig.sampleCount = 1u << 14;
        }
        return gen::buildLibrary(cfg);
    };
    core::ApproxFpgasFlow::Config flowCfg;
    const core::FlowResult mulFlow =
        core::ApproxFpgasFlow(flowCfg).run(makeLibrary(circuit::ArithOp::Multiplier, 8));
    const core::FlowResult addFlow =
        core::ApproxFpgasFlow(flowCfg).run(makeLibrary(circuit::ArithOp::Adder, 16));

    const autoax::GaussianAccelerator accel(
        autoax::componentsFromFlow(mulFlow, core::FpgaParam::Power, 9),
        autoax::componentsFromFlow(addFlow, core::FpgaParam::Power, 8));
    std::cout << "accelerator design space: " << accel.designSpaceSize() << " configurations\n";

    autoax::AutoAxFpgaFlow::Config cfg;
    cfg.trainConfigs = 80;
    cfg.hillIterations = 1200;
    cfg.imageSize = 64;
    const autoax::AutoAxFpgaFlow::Result result = autoax::AutoAxFpgaFlow(cfg).run(accel);

    for (const auto& scenario : result.scenarios) {
        if (scenario.param != core::FpgaParam::Power) continue;
        util::Table table({"method", "designs evaluated", "best power @ SSIM>=0.95 [mW]"});
        const auto best = [&](const std::vector<autoax::EvaluatedConfig>& pts) {
            double b = std::numeric_limits<double>::infinity();
            for (const auto& p : pts)
                if (p.ssim >= 0.95) b = std::min(b, p.cost.powerMw);
            return b;
        };
        table.addRow({"AutoAx-FPGA", std::to_string(scenario.autoax.size()),
                      util::Table::num(best(scenario.autoax), 3)});
        table.addRow({"random search", std::to_string(scenario.random.size()),
                      util::Table::num(best(scenario.random), 3)});
        table.print(std::cout);

        std::cout << "\nSSIM-power front discovered by AutoAx-FPGA:\n";
        for (std::size_t pos : autoax::qualityCostFront(scenario.autoax, scenario.param)) {
            const autoax::EvaluatedConfig& p = scenario.autoax[pos];
            std::cout << "  SSIM " << util::Table::num(p.ssim, 4) << "  power "
                      << util::Table::num(p.cost.powerMw, 3) << " mW  area "
                      << util::Table::num(p.cost.lutCount, 0) << " LUTs\n";
        }
    }
    return 0;
}
