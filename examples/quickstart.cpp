// Quickstart: generate an approximate multiplier, quantify its error, and
// compare its ASIC and FPGA implementation costs — the library's three
// core capabilities in ~40 lines.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <iostream>

#include "src/error/error_metrics.hpp"
#include "src/gen/multipliers.hpp"
#include "src/synth/asic.hpp"
#include "src/synth/fpga.hpp"

int main() {
    using namespace axf;

    // 1. Generate circuits: an exact 8x8 Wallace multiplier and a truncated
    //    approximation that drops the 5 least-significant product columns.
    const circuit::Netlist exact = gen::wallaceMultiplier(8);
    const circuit::Netlist approx = gen::truncatedMultiplier(8, 5);
    const circuit::ArithSignature sig = gen::multiplierSignature(8);

    // 2. Quantify the error exhaustively (all 65,536 operand pairs).
    const error::ErrorReport report = error::analyzeError(approx, sig);
    std::cout << "truncated 8x8 multiplier error: " << report.summary() << "\n";

    // 3. Implement both for the ASIC and FPGA targets.
    const synth::AsicFlow asic;
    const synth::FpgaFlow fpga;
    for (const auto* net : {&exact, &approx}) {
        const synth::AsicReport a = asic.synthesize(*net);
        const synth::FpgaReport f = fpga.implement(*net);
        std::cout << net->name() << ":\n"
                  << "  ASIC: " << a.areaUm2 << " um^2, " << a.delayNs << " ns, " << a.powerMw
                  << " mW\n"
                  << "  FPGA: " << f.lutCount << " LUTs, " << f.latencyNs << " ns, " << f.powerMw
                  << " mW (depth " << f.logicDepth << ")\n";
    }

    // 4. The headline effect: savings differ between the two targets.
    const double asicSaving = 1.0 - asic.synthesize(approx).areaUm2 / asic.synthesize(exact).areaUm2;
    const double fpgaSaving = 1.0 - fpga.implement(approx).lutCount / fpga.implement(exact).lutCount;
    std::cout << "area savings from the approximation: ASIC " << asicSaving * 100.0
              << "%, FPGA " << fpgaSaving * 100.0 << "% — asymmetric gains, which is why\n"
              << "ASIC-Pareto-optimal circuits are re-ranked for FPGAs (see the ApproxFPGAs flow).\n";
    return 0;
}
