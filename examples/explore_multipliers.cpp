// Runs the full ApproxFPGAs methodology on a library of approximate 8x8
// multipliers and writes the resulting Pareto-optimal FPGA-AC library to
// CSV (the artifact the paper open-sources).
//
// Usage: ./build/examples/explore_multipliers [out.csv]

#include <fstream>
#include <iostream>

#include "src/core/flow.hpp"
#include "src/synth/synth_time.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
    using namespace axf;
    const std::string outPath = argc > 1 ? argv[1] : "fpga_acs_mul8.csv";

    // A compact library: classic structural families plus CGP-evolved
    // designs around four error budgets.
    gen::LibraryConfig libCfg;
    libCfg.op = circuit::ArithOp::Multiplier;
    libCfg.width = 8;
    libCfg.medBudgets = {0.0005, 0.002, 0.01, 0.03};
    libCfg.cgpGenerations = 120;
    gen::AcLibrary library = gen::buildLibrary(libCfg);
    std::cout << "library: " << library.size() << " approximate 8x8 multipliers\n";

    core::ApproxFpgasFlow::Config cfg;
    const core::FlowResult result = core::ApproxFpgasFlow(cfg).run(std::move(library));

    std::cout << "synthesized " << result.circuitsSynthesized << " circuits ("
              << util::Table::num(result.speedup(), 1) << "x fewer Vivado-equivalent hours than "
              << "exhaustive: " << synth::secondsToHours(result.flowSynthSeconds) << " vs "
              << synth::secondsToHours(result.exhaustiveSynthSeconds) << ")\n";
    for (const core::TargetOutcome& t : result.targets)
        std::cout << "  " << core::fpgaParamName(t.param) << ": selected models "
                  << t.selectedModels[0] << "/" << t.selectedModels[1] << "/"
                  << t.selectedModels[2] << ", final front " << t.finalParetoIndices.size()
                  << " circuits, true-front coverage "
                  << util::Table::percent(t.coverageOfTrueFront) << "\n";

    // Export the union of the per-parameter final fronts.
    util::Table csv({"name", "origin", "med", "wce", "ep", "luts", "latency_ns", "power_mw"});
    std::vector<bool> exported(result.dataset.size(), false);
    for (const core::TargetOutcome& t : result.targets) {
        for (std::size_t idx : t.finalParetoIndices) {
            if (exported[idx]) continue;
            exported[idx] = true;
            const core::CharacterizedCircuit& cc = result.dataset.circuits()[idx];
            csv.addRow({cc.circuit.name, cc.circuit.origin,
                        util::Table::num(cc.circuit.error.med, 8),
                        util::Table::num(cc.circuit.error.worstCaseError, 0),
                        util::Table::num(cc.circuit.error.errorProbability, 4),
                        util::Table::num(cc.fpga.lutCount, 0),
                        util::Table::num(cc.fpga.latencyNs, 3),
                        util::Table::num(cc.fpga.powerMw, 4)});
        }
    }
    std::ofstream out(outPath);
    csv.writeCsv(out);
    std::cout << "wrote " << csv.rowCount() << " Pareto-optimal FPGA-ACs to " << outPath << "\n";
    return 0;
}
