// Second application scenario: a Sobel edge-detection accelerator that
// reuses the 16-bit approximate adders from the FPGA-AC library for its
// gradient accumulation (Sobel's x2 weights are shifts, so adders dominate
// the datapath).  Shows how library components transfer across kernels.

#include <cmath>
#include <iostream>
#include <vector>

#include "src/autoax/accelerator.hpp"
#include "src/gen/adders.hpp"
#include "src/img/ssim.hpp"
#include "src/synth/fpga.hpp"
#include "src/util/table.hpp"

using namespace axf;

namespace {

/// Sobel gradient magnitude (|gx| + |gy| approximation) where the six
/// row/column accumulations run through the supplied 16-bit adder netlist.
img::Image sobel(const img::Image& input, const circuit::Netlist& adder) {
    circuit::Simulator sim(adder);
    img::Image output(input.width(), input.height());
    const std::size_t total = input.pixelCount();
    constexpr std::uint32_t kBias = 1u << 12;  // keeps operands non-negative

    std::array<std::uint32_t, 64> ax{}, bx{}, gx{}, ay{}, by{}, gy{}, mag{};
    autoax::BatchAddScratch scratch;  // reused across blocks: no per-call allocation
    for (std::size_t base = 0; base < total; base += 64) {
        const std::size_t lanes = std::min<std::size_t>(64, total - base);
        for (std::size_t lane = 0; lane < lanes; ++lane) {
            const std::size_t pixel = base + lane;
            const int x = static_cast<int>(pixel % static_cast<std::size_t>(input.width()));
            const int y = static_cast<int>(pixel / static_cast<std::size_t>(input.width()));
            const auto p = [&](int dx, int dy) {
                return static_cast<std::uint32_t>(input.atClamped(x + dx, y + dy));
            };
            // gx = (p(1,-1)+2p(1,0)+p(1,1)) - (p(-1,-1)+2p(-1,0)+p(-1,1))
            ax[lane] = p(1, -1) + 2 * p(1, 0) + p(1, 1) + kBias;
            bx[lane] = p(-1, -1) + 2 * p(-1, 0) + p(-1, 1);
            ay[lane] = p(-1, 1) + 2 * p(0, 1) + p(1, 1) + kBias;
            by[lane] = p(-1, -1) + 2 * p(0, -1) + p(1, -1);
            // Two's-complement subtraction via the approximate adder:
            // a + (~b) + 1, folded into the bias term.
            bx[lane] = (~bx[lane] + 1) & 0xFFFF;
            by[lane] = (~by[lane] + 1) & 0xFFFF;
        }
        const auto span = [&](std::array<std::uint32_t, 64>& arr) {
            return std::span<std::uint32_t>(arr.data(), lanes);
        };
        const auto cspan = [&](const std::array<std::uint32_t, 64>& arr) {
            return std::span<const std::uint32_t>(arr.data(), lanes);
        };
        autoax::batchAdd16(sim, cspan(ax), cspan(bx), span(gx), scratch);
        autoax::batchAdd16(sim, cspan(ay), cspan(by), span(gy), scratch);
        for (std::size_t lane = 0; lane < lanes; ++lane) {
            const int dx = static_cast<int>(gx[lane] & 0xFFFF) - static_cast<int>(kBias);
            const int dy = static_cast<int>(gy[lane] & 0xFFFF) - static_cast<int>(kBias);
            mag[lane] = static_cast<std::uint32_t>(std::min(255, (std::abs(dx) + std::abs(dy)) / 4));
        }
        for (std::size_t lane = 0; lane < lanes; ++lane) {
            const std::size_t pixel = base + lane;
            output.set(static_cast<int>(pixel % static_cast<std::size_t>(input.width())),
                       static_cast<int>(pixel / static_cast<std::size_t>(input.width())),
                       static_cast<std::uint8_t>(mag[lane]));
        }
    }
    return output;
}

}  // namespace

int main() {
    const img::Image scene = img::syntheticScene(96, 96, 0x50BE1);
    const synth::FpgaFlow fpga;

    // Candidate 16-bit adders: the exact baseline plus LOA/ETA/truncated
    // approximations of increasing aggressiveness.
    struct Candidate {
        const char* label;
        circuit::Netlist netlist;
    };
    std::vector<Candidate> candidates;
    candidates.push_back({"exact ripple", gen::rippleCarryAdder(16)});
    for (int k : {4, 6, 8, 10})
        candidates.push_back({"LOA", gen::loaAdder(16, k)});
    for (int k : {6, 8})
        candidates.push_back({"ETA", gen::etaAdder(16, k)});

    const img::Image reference = sobel(scene, candidates.front().netlist);

    util::Table table({"adder", "gates", "#LUTs", "power [mW]", "SSIM", "PSNR [dB]"});
    for (const Candidate& c : candidates) {
        const synth::FpgaReport report = fpga.implement(c.netlist);
        const img::Image out = sobel(scene, c.netlist);
        table.addRow({std::string(c.label) + " (" + c.netlist.name() + ")",
                      std::to_string(c.netlist.gateCount()),
                      util::Table::num(report.lutCount, 0), util::Table::num(report.powerMw, 3),
                      util::Table::num(img::ssim(reference, out), 4),
                      util::Table::num(img::psnr(reference, out), 1)});
    }
    std::cout << "Sobel edge detector, 96x96 synthetic scene; gradient adders swapped for\n"
                 "approximate 16-bit FPGA-ACs from the library:\n\n";
    table.print(std::cout);
    std::cout << "\nLOA with a deep approximate lower part trades visible-but-small SSIM loss\n"
                 "for LUT and power savings — the same trade the Gaussian case study automates.\n";
    return 0;
}
