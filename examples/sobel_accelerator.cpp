// Second application scenario: the Sobel edge-detection accelerator
// (`autoax::SobelAccelerator`, promoted from this example into the library
// as a first-class workload) reuses 16-bit approximate adders for its
// gradient and magnitude additions (Sobel's x2 weights are shifts, so
// adders dominate the datapath).  Shows how library components transfer
// across kernels, and runs the same batched evaluation engine and AutoAx
// DSE the Gaussian case study uses.

#include <iostream>
#include <vector>

#include "src/autoax/dse.hpp"
#include "src/autoax/sobel.hpp"
#include "src/error/error_metrics.hpp"
#include "src/gen/adders.hpp"
#include "src/synth/fpga.hpp"
#include "src/util/table.hpp"

using namespace axf;

namespace {

autoax::Component makeComponent(const char* label, circuit::Netlist netlist) {
    autoax::Component c;
    c.name = std::string(label) + " (" + netlist.name() + ")";
    c.signature = gen::adderSignature(16);
    c.error = error::analyzeError(netlist, c.signature);
    c.fpga = synth::FpgaFlow().implement(netlist);
    c.netlist = std::move(netlist);
    return c;
}

}  // namespace

int main() {
    // Candidate 16-bit adders: the exact baseline plus LOA/ETA
    // approximations of increasing aggressiveness (MED-sorted by
    // construction: the exact ripple adder first).
    std::vector<autoax::Component> menu;
    menu.push_back(makeComponent("exact ripple", gen::rippleCarryAdder(16)));
    for (int k : {4, 6, 8, 10}) menu.push_back(makeComponent("LOA", gen::loaAdder(16, k)));
    for (int k : {6, 8}) menu.push_back(makeComponent("ETA", gen::etaAdder(16, k)));

    const autoax::SobelAccelerator sobel(menu);
    std::cout << "Sobel accelerator design space: " << sobel.designSpaceSize()
              << " configurations (3 adder slots x " << menu.size() << " menu entries)\n\n";

    // Uniform sweeps (all three slots pick the same adder) against the
    // exact reference, evaluated through the batched engine.
    const std::vector<img::Image> scenes = {img::syntheticScene(96, 96, 0x50BE1)};
    autoax::EvalEngine engine(sobel, scenes);

    std::vector<autoax::AcceleratorConfig> uniform;
    for (std::size_t i = 0; i < menu.size(); ++i) {
        autoax::AcceleratorConfig c;
        c.choice.assign(autoax::SobelAccelerator::kAdderSlots, static_cast<int>(i));
        uniform.push_back(std::move(c));
    }
    const std::vector<autoax::EvaluatedConfig> evaluated = engine.evaluateBatch(uniform);

    util::Table table({"adder", "gates", "#LUTs", "power [mW]", "SSIM"});
    for (std::size_t i = 0; i < menu.size(); ++i) {
        table.addRow({menu[i].name, std::to_string(menu[i].netlist.gateCount()),
                      util::Table::num(evaluated[i].cost.lutCount, 0),
                      util::Table::num(evaluated[i].cost.powerMw, 3),
                      util::Table::num(evaluated[i].ssim, 4)});
    }
    std::cout << "uniform slot assignments, 96x96 synthetic scene:\n\n";
    table.print(std::cout);

    // Mixed assignments are where the DSE earns its keep: a small AutoAx
    // run over the Sobel design space, same engine and methodology as the
    // Gaussian case study.
    autoax::AutoAxFpgaFlow::Config cfg;
    cfg.trainConfigs = 60;
    cfg.hillIterations = 600;
    cfg.imageSize = 64;
    cfg.sceneCount = 1;
    const autoax::AutoAxFpgaFlow::Result result = autoax::AutoAxFpgaFlow(cfg).run(sobel);
    for (const auto& scenario : result.scenarios) {
        if (scenario.param != core::FpgaParam::Power) continue;
        std::cout << "\nSSIM-power front discovered by AutoAx (really evaluated "
                  << scenario.realEvaluations << " fresh designs):\n";
        for (std::size_t pos : autoax::qualityCostFront(scenario.autoax, scenario.param)) {
            const autoax::EvaluatedConfig& p = scenario.autoax[pos];
            std::cout << "  SSIM " << util::Table::num(p.ssim, 4) << "  power "
                      << util::Table::num(p.cost.powerMw, 3) << " mW  slots ["
                      << p.config.choice[0] << " " << p.config.choice[1] << " "
                      << p.config.choice[2] << "]\n";
        }
    }
    std::cout << "\nLOA with a deep approximate lower part trades visible-but-small SSIM loss\n"
                 "for LUT and power savings — the same trade the Gaussian case study automates.\n";
    return 0;
}
