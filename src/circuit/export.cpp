#include "src/circuit/export.hpp"

#include <ostream>

namespace axf::circuit {

namespace {

std::string wire(NodeId id) { return "n" + std::to_string(id); }

std::string gateExpr(const Node& n) {
    const std::string a = wire(n.a);
    const std::string b = wire(n.b);
    const std::string c = wire(n.c);
    switch (n.kind) {
        case GateKind::Buf: return a;
        case GateKind::Not: return "~" + a;
        case GateKind::And: return a + " & " + b;
        case GateKind::Or: return a + " | " + b;
        case GateKind::Xor: return a + " ^ " + b;
        case GateKind::Nand: return "~(" + a + " & " + b + ")";
        case GateKind::Nor: return "~(" + a + " | " + b + ")";
        case GateKind::Xnor: return "~(" + a + " ^ " + b + ")";
        case GateKind::AndNot: return a + " & ~" + b;
        case GateKind::OrNot: return a + " | ~" + b;
        case GateKind::Mux: return c + " ? " + b + " : " + a;
        case GateKind::Maj:
            return "(" + a + " & " + b + ") | (" + a + " & " + c + ") | (" + b + " & " + c + ")";
        default: return "1'b0";
    }
}

}  // namespace

void writeVerilog(std::ostream& os, const Netlist& netlist, const std::string& moduleName) {
    os << "module " << moduleName << " (\n";
    for (std::size_t i = 0; i < netlist.inputCount(); ++i)
        os << "  input  wire in" << i << ",\n";
    for (std::size_t i = 0; i < netlist.outputCount(); ++i)
        os << "  output wire out" << i << (i + 1 == netlist.outputCount() ? "\n" : ",\n");
    os << ");\n";

    std::size_t nextInput = 0;
    for (std::size_t i = 0; i < netlist.nodeCount(); ++i) {
        const Node& n = netlist.node(static_cast<NodeId>(i));
        os << "  wire " << wire(static_cast<NodeId>(i)) << " = ";
        switch (n.kind) {
            case GateKind::Input: os << "in" << nextInput++; break;
            case GateKind::Const0: os << "1'b0"; break;
            case GateKind::Const1: os << "1'b1"; break;
            default: os << gateExpr(n); break;
        }
        os << ";\n";
    }
    const std::span<const NodeId> outs = netlist.outputs();
    for (std::size_t i = 0; i < outs.size(); ++i)
        os << "  assign out" << i << " = " << wire(outs[i]) << ";\n";
    os << "endmodule\n";
}

void writeBehavioralC(std::ostream& os, const Netlist& netlist, const std::string& name,
                      int splitA) {
    os << "// Auto-generated behavioural model of " << netlist.name() << "\n"
       << "#include <stdint.h>\n\n"
       << "uint64_t " << name << "(uint64_t a, uint64_t b) {\n";
    std::size_t nextInput = 0;
    for (std::size_t i = 0; i < netlist.nodeCount(); ++i) {
        const Node& n = netlist.node(static_cast<NodeId>(i));
        os << "  const uint64_t " << wire(static_cast<NodeId>(i)) << " = ";
        switch (n.kind) {
            case GateKind::Input: {
                const std::size_t pos = nextInput++;
                if (static_cast<int>(pos) < splitA)
                    os << "(a >> " << pos << ") & 1u";
                else
                    os << "(b >> " << (pos - static_cast<std::size_t>(splitA)) << ") & 1u";
                break;
            }
            case GateKind::Const0: os << "0u"; break;
            case GateKind::Const1: os << "1u"; break;
            default: os << "1u & (" << gateExpr(n) << ")"; break;
        }
        os << ";\n";
    }
    os << "  uint64_t out = 0u;\n";
    const std::span<const NodeId> outs = netlist.outputs();
    for (std::size_t i = 0; i < outs.size(); ++i)
        os << "  out |= " << wire(outs[i]) << " << " << i << ";\n";
    os << "  return out;\n}\n";
}

void writeDot(std::ostream& os, const Netlist& netlist) {
    os << "digraph \"" << netlist.name() << "\" {\n  rankdir=LR;\n";
    for (std::size_t i = 0; i < netlist.nodeCount(); ++i) {
        const Node& n = netlist.node(static_cast<NodeId>(i));
        os << "  n" << i << " [label=\"" << gateKindName(n.kind) << ":" << i << "\"";
        if (n.kind == GateKind::Input) os << " shape=box";
        os << "];\n";
        const int arity = fanInCount(n.kind);
        if (arity >= 1) os << "  n" << n.a << " -> n" << i << ";\n";
        if (arity >= 2) os << "  n" << n.b << " -> n" << i << ";\n";
        if (arity >= 3) os << "  n" << n.c << " -> n" << i << ";\n";
    }
    for (std::size_t i = 0; i < netlist.outputCount(); ++i) {
        os << "  out" << i << " [shape=diamond];\n";
        os << "  n" << netlist.outputs()[i] << " -> out" << i << ";\n";
    }
    os << "}\n";
}

}  // namespace axf::circuit
