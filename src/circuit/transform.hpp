#pragma once

#include "src/circuit/netlist.hpp"

namespace axf::circuit {

/// Logic optimization applied by both synthesis flows before technology
/// mapping (the equivalent of the `opt` stage of a synthesis tool):
///  - constant propagation (x&0 -> 0, x^1 -> ~x, mux with const select, ...)
///  - identity folding (x&x -> x, x^x -> 0, buf chains, double inversion)
///  - common-subexpression elimination (structural hashing)
///  - dead-node pruning (primary inputs are always preserved)
///
/// Returns a functionally equivalent netlist with the same interface order.
Netlist simplify(const Netlist& netlist);

/// Rewrites three-input gates (Mux, Maj) into two-input gates so the result
/// fits the CGP cell alphabet:
///   maj(a,b,c) = (a & b) | (c & (a ^ b))
///   mux(a,b,s) = (s & b) | (a & ~s)
Netlist lowerToTwoInput(const Netlist& netlist);

}  // namespace axf::circuit
