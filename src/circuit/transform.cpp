#include "src/circuit/transform.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "src/verify/verify.hpp"

namespace axf::circuit {

namespace {

/// Packs a gate shape into a CSE key.
struct GateKey {
    GateKind kind;
    NodeId a, b, c;
    bool operator==(const GateKey&) const = default;
};

struct GateKeyHash {
    std::size_t operator()(const GateKey& k) const {
        std::uint64_t h = 1469598103934665603ull;
        const auto mix = [&h](std::uint64_t v) {
            h ^= v;
            h *= 1099511628211ull;
        };
        mix(static_cast<std::uint64_t>(k.kind));
        mix(k.a);
        mix(k.b);
        mix(k.c);
        return static_cast<std::size_t>(h);
    }
};

class Simplifier {
public:
    explicit Simplifier(const Netlist& src) : src_(src) {}

    Netlist run() {
        map_.assign(src_.nodeCount(), kInvalidNode);
        for (std::size_t i = 0; i < src_.nodeCount(); ++i) {
            const Node& n = src_.node(static_cast<NodeId>(i));
            map_[i] = rewrite(n);
        }
        for (NodeId out : src_.outputs()) dst_.markOutput(map_[out]);
        dst_.setName(src_.name());
        return dst_.pruned();
    }

private:
    const Netlist& src_;
    Netlist dst_;
    std::vector<NodeId> map_;
    std::unordered_map<GateKey, NodeId, GateKeyHash> cse_;
    NodeId const0_ = kInvalidNode;
    NodeId const1_ = kInvalidNode;

    NodeId constant(bool v) {
        NodeId& slot = v ? const1_ : const0_;
        if (slot == kInvalidNode) slot = dst_.addConst(v);
        return slot;
    }

    bool isConst(NodeId id, bool v) const {
        const GateKind k = dst_.node(id).kind;
        return v ? k == GateKind::Const1 : k == GateKind::Const0;
    }
    bool isAnyConst(NodeId id) const { return isConst(id, false) || isConst(id, true); }
    bool constValue(NodeId id) const { return isConst(id, true); }

    /// ~x with double-inversion folding.
    NodeId invert(NodeId x) {
        if (isAnyConst(x)) return constant(!constValue(x));
        const Node& n = dst_.node(x);
        if (n.kind == GateKind::Not) return n.a;
        return emit(GateKind::Not, x);
    }

    NodeId emit(GateKind kind, NodeId a, NodeId b = kInvalidNode, NodeId c = kInvalidNode) {
        // Canonicalize commutative operand order for CSE.
        switch (kind) {
            case GateKind::And:
            case GateKind::Or:
            case GateKind::Xor:
            case GateKind::Nand:
            case GateKind::Nor:
            case GateKind::Xnor:
                if (a > b) std::swap(a, b);
                break;
            case GateKind::Maj: {
                NodeId v[3] = {a, b, c};
                std::sort(std::begin(v), std::end(v));
                a = v[0];
                b = v[1];
                c = v[2];
                break;
            }
            default: break;
        }
        const GateKey key{kind, a, b, c};
        if (const auto it = cse_.find(key); it != cse_.end()) return it->second;
        const NodeId id = dst_.addGate(kind, a, b, c);
        cse_.emplace(key, id);
        return id;
    }

    NodeId rewrite(const Node& n) {
        switch (n.kind) {
            case GateKind::Input: return dst_.addInput();
            case GateKind::Const0: return constant(false);
            case GateKind::Const1: return constant(true);
            case GateKind::Buf: return map_[n.a];
            case GateKind::Not: return invert(map_[n.a]);
            case GateKind::And: return rewriteAnd(map_[n.a], map_[n.b]);
            case GateKind::Or: return rewriteOr(map_[n.a], map_[n.b]);
            case GateKind::Xor: return rewriteXor(map_[n.a], map_[n.b]);
            case GateKind::Nand: return invert(rewriteAnd(map_[n.a], map_[n.b]));
            case GateKind::Nor: return invert(rewriteOr(map_[n.a], map_[n.b]));
            case GateKind::Xnor: return invert(rewriteXor(map_[n.a], map_[n.b]));
            case GateKind::AndNot: return rewriteAnd(map_[n.a], invert(map_[n.b]));
            case GateKind::OrNot: return rewriteOr(map_[n.a], invert(map_[n.b]));
            case GateKind::Mux: return rewriteMux(map_[n.a], map_[n.b], map_[n.c]);
            case GateKind::Maj: return rewriteMaj(map_[n.a], map_[n.b], map_[n.c]);
        }
        return constant(false);
    }

    NodeId rewriteAnd(NodeId a, NodeId b) {
        if (isConst(a, false) || isConst(b, false)) return constant(false);
        if (isConst(a, true)) return b;
        if (isConst(b, true)) return a;
        if (a == b) return a;
        return emit(GateKind::And, a, b);
    }

    NodeId rewriteOr(NodeId a, NodeId b) {
        if (isConst(a, true) || isConst(b, true)) return constant(true);
        if (isConst(a, false)) return b;
        if (isConst(b, false)) return a;
        if (a == b) return a;
        return emit(GateKind::Or, a, b);
    }

    NodeId rewriteXor(NodeId a, NodeId b) {
        if (isConst(a, false)) return b;
        if (isConst(b, false)) return a;
        if (isConst(a, true)) return invert(b);
        if (isConst(b, true)) return invert(a);
        if (a == b) return constant(false);
        return emit(GateKind::Xor, a, b);
    }

    NodeId rewriteMux(NodeId a, NodeId b, NodeId sel) {
        if (isConst(sel, false)) return a;
        if (isConst(sel, true)) return b;
        if (a == b) return a;
        if (isConst(a, false) && isConst(b, true)) return sel;
        if (isConst(a, true) && isConst(b, false)) return invert(sel);
        if (isConst(a, false)) return rewriteAnd(sel, b);
        if (isConst(b, true)) return rewriteOr(a, sel);
        if (isConst(a, true)) return rewriteOr(invert(sel), b);
        if (isConst(b, false)) return rewriteAnd(a, invert(sel));
        return emit(GateKind::Mux, a, b, sel);
    }

    NodeId rewriteMaj(NodeId a, NodeId b, NodeId c) {
        if (a == b) return a;
        if (a == c) return a;
        if (b == c) return b;
        if (isConst(a, false)) return rewriteAnd(b, c);
        if (isConst(a, true)) return rewriteOr(b, c);
        if (isConst(b, false)) return rewriteAnd(a, c);
        if (isConst(b, true)) return rewriteOr(a, c);
        if (isConst(c, false)) return rewriteAnd(a, b);
        if (isConst(c, true)) return rewriteOr(a, b);
        return emit(GateKind::Maj, a, b, c);
    }
};

}  // namespace

namespace {

/// AXF_VERIFY debug gate: transforms self-lint their result (structural
/// errors only; warnings like const-foldable gates are expected mid-flow).
Netlist lintChecked(Netlist netlist, const char* what) {
    if (verify::verifyEnabled())
        verify::throwIfErrors(verify::lintNetlist(netlist), what);
    return netlist;
}

}  // namespace

Netlist simplify(const Netlist& netlist) {
    return lintChecked(Simplifier(netlist).run(), "simplify self-lint");
}

Netlist lowerToTwoInput(const Netlist& netlist) {
    Netlist dst(netlist.name());
    std::vector<NodeId> map(netlist.nodeCount(), kInvalidNode);
    for (std::size_t i = 0; i < netlist.nodeCount(); ++i) {
        const Node& n = netlist.node(static_cast<NodeId>(i));
        switch (n.kind) {
            case GateKind::Input: map[i] = dst.addInput(); break;
            case GateKind::Const0: map[i] = dst.addConst(false); break;
            case GateKind::Const1: map[i] = dst.addConst(true); break;
            case GateKind::Maj: {
                const NodeId ab = dst.addGate(GateKind::And, map[n.a], map[n.b]);
                const NodeId axb = dst.addGate(GateKind::Xor, map[n.a], map[n.b]);
                const NodeId t = dst.addGate(GateKind::And, map[n.c], axb);
                map[i] = dst.addGate(GateKind::Or, ab, t);
                break;
            }
            case GateKind::Mux: {
                const NodeId t1 = dst.addGate(GateKind::And, map[n.c], map[n.b]);
                const NodeId t2 = dst.addGate(GateKind::AndNot, map[n.a], map[n.c]);
                map[i] = dst.addGate(GateKind::Or, t1, t2);
                break;
            }
            default:
                if (fanInCount(n.kind) == 1)
                    map[i] = dst.addGate(n.kind, map[n.a]);
                else
                    map[i] = dst.addGate(n.kind, map[n.a], map[n.b]);
                break;
        }
    }
    for (NodeId out : netlist.outputs()) dst.markOutput(map[out]);
    return lintChecked(std::move(dst), "lowerToTwoInput self-lint");
}

}  // namespace axf::circuit
