// Backend and width selection: runtime CPU detection, the
// AXF_FORCE_BACKEND / AXF_FORCE_WIDTH escape hatches, and the test
// override hooks.  Detection runs once per process; every CompiledNetlist
// snapshot-resolves its kernel plan against the backend (and block width)
// selected at compile() time.

#include "src/circuit/kernels.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace axf::circuit::kernels {

namespace {

bool cpuSupports(const Backend* backend) {
    if (backend == nullptr) return false;
    const std::string_view name = backend->name;
#if defined(__x86_64__) || defined(__i386__)
    if (name == "avx512")
        return __builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw") &&
               __builtin_cpu_supports("avx512vl") && __builtin_cpu_supports("avx512dq");
    if (name == "avx2") return __builtin_cpu_supports("avx2");
#endif
    // portable always runs; neon is only compiled in when the target
    // baseline (aarch64) guarantees it.
    return name == "portable" || name == "neon";
}

const Backend* detect() {
    if (const char* force = std::getenv("AXF_FORCE_BACKEND"); force != nullptr && *force != '\0')
        if (const Backend* backend = resolveForcedBackend(force)) return backend;
    for (const Backend* backend : {avx512Backend(), avx2Backend(), neonBackend()})
        if (cpuSupports(backend)) return backend;
    return portableBackend();
}

std::atomic<const Backend*> gOverride{nullptr};
std::atomic<std::size_t> gWidthOverride{0};

}  // namespace

const Backend* resolveForcedBackend(std::string_view value) {
    if (const Backend* backend = backendByName(value)) return backend;
    std::fprintf(stderr,
                 "axf: AXF_FORCE_BACKEND=%.*s: unknown or unsupported on this CPU "
                 "(known: portable, avx2, avx512, neon); falling back to auto-detection\n",
                 static_cast<int>(value.size()), value.data());
    return nullptr;
}

std::size_t resolveForcedWidth(std::string_view value) {
    if (value == "4") return 4;
    if (value == "8") return 8;
    if (value == "16") return 16;
    std::fprintf(stderr,
                 "axf: AXF_FORCE_WIDTH=%.*s: not a supported block width "
                 "(known: 4, 8, 16); falling back to the automatic chooser\n",
                 static_cast<int>(value.size()), value.data());
    return 0;
}

std::size_t forcedWidth() {
    static const std::size_t width = [] {
        const char* force = std::getenv("AXF_FORCE_WIDTH");
        return (force != nullptr && *force != '\0') ? resolveForcedWidth(force) : std::size_t{0};
    }();
    return width;
}

std::size_t widthOverride() { return gWidthOverride.load(std::memory_order_acquire); }

ScopedWidthOverride::ScopedWidthOverride(std::size_t words) {
    if (words != 0 && !isWideWidth(words))
        throw std::invalid_argument("ScopedWidthOverride: width must be 0, 4, 8 or 16");
    previous_ = gWidthOverride.exchange(words, std::memory_order_acq_rel);
}

ScopedWidthOverride::~ScopedWidthOverride() {
    gWidthOverride.store(previous_, std::memory_order_release);
}

const char* opCodeName(OpCode op) {
    switch (op) {
        case OpCode::Buf: return "Buf";
        case OpCode::Not: return "Not";
        case OpCode::And: return "And";
        case OpCode::Or: return "Or";
        case OpCode::Xor: return "Xor";
        case OpCode::Nand: return "Nand";
        case OpCode::Nor: return "Nor";
        case OpCode::Xnor: return "Xnor";
        case OpCode::AndNot: return "AndNot";
        case OpCode::OrNot: return "OrNot";
        case OpCode::Mux: return "Mux";
        case OpCode::Maj: return "Maj";
        case OpCode::Xor3: return "Xor3";
        case OpCode::MuxNotA: return "MuxNotA";
        case OpCode::MuxNotB: return "MuxNotB";
        case OpCode::HalfAdd: return "HalfAdd";
        case OpCode::And3: return "And3";
        case OpCode::Or3: return "Or3";
    }
    return "?";
}

const Backend& selectedBackend() {
    if (const Backend* forced = gOverride.load(std::memory_order_acquire)) return *forced;
    static const Backend* chosen = detect();
    return *chosen;
}

const Backend* backendByName(std::string_view name) {
    for (const Backend* backend :
         {portableBackend(), avx2Backend(), avx512Backend(), neonBackend()})
        if (backend != nullptr && name == backend->name)
            return cpuSupports(backend) ? backend : nullptr;
    return nullptr;
}

std::vector<const Backend*> availableBackends() {
    std::vector<const Backend*> backends;
    for (const Backend* backend :
         {portableBackend(), avx2Backend(), avx512Backend(), neonBackend()})
        if (cpuSupports(backend)) backends.push_back(backend);
    return backends;
}

ScopedBackendOverride::ScopedBackendOverride(const Backend* backend)
    : previous_(gOverride.exchange(backend, std::memory_order_acq_rel)) {}

ScopedBackendOverride::~ScopedBackendOverride() {
    gOverride.store(previous_, std::memory_order_release);
}

}  // namespace axf::circuit::kernels
