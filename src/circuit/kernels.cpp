// Backend selection: runtime CPU detection, the AXF_FORCE_BACKEND escape
// hatch, and the test override hook.  Detection runs once per process;
// every CompiledNetlist snapshot-resolves its kernel plan against the
// backend selected at compile() time.

#include "src/circuit/kernels.hpp"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace axf::circuit::kernels {

namespace {

bool cpuSupports(const Backend* backend) {
    if (backend == nullptr) return false;
    const std::string_view name = backend->name;
#if defined(__x86_64__) || defined(__i386__)
    if (name == "avx512")
        return __builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw") &&
               __builtin_cpu_supports("avx512vl") && __builtin_cpu_supports("avx512dq");
    if (name == "avx2") return __builtin_cpu_supports("avx2");
#endif
    // portable always runs; neon is only compiled in when the target
    // baseline (aarch64) guarantees it.
    return name == "portable" || name == "neon";
}

const Backend* detect() {
    if (const char* force = std::getenv("AXF_FORCE_BACKEND"); force != nullptr && *force != '\0') {
        const Backend* backend = backendByName(force);
        if (backend == nullptr)
            throw std::runtime_error(
                std::string("AXF_FORCE_BACKEND=") + force +
                ": unknown or unsupported on this CPU (known: portable, avx2, avx512, neon)");
        return backend;
    }
    for (const Backend* backend : {avx512Backend(), avx2Backend(), neonBackend()})
        if (cpuSupports(backend)) return backend;
    return portableBackend();
}

std::atomic<const Backend*> gOverride{nullptr};

}  // namespace

const char* opCodeName(OpCode op) {
    switch (op) {
        case OpCode::Buf: return "Buf";
        case OpCode::Not: return "Not";
        case OpCode::And: return "And";
        case OpCode::Or: return "Or";
        case OpCode::Xor: return "Xor";
        case OpCode::Nand: return "Nand";
        case OpCode::Nor: return "Nor";
        case OpCode::Xnor: return "Xnor";
        case OpCode::AndNot: return "AndNot";
        case OpCode::OrNot: return "OrNot";
        case OpCode::Mux: return "Mux";
        case OpCode::Maj: return "Maj";
        case OpCode::Xor3: return "Xor3";
        case OpCode::MuxNotA: return "MuxNotA";
        case OpCode::MuxNotB: return "MuxNotB";
        case OpCode::HalfAdd: return "HalfAdd";
        case OpCode::And3: return "And3";
        case OpCode::Or3: return "Or3";
    }
    return "?";
}

const Backend& selectedBackend() {
    if (const Backend* forced = gOverride.load(std::memory_order_acquire)) return *forced;
    static const Backend* chosen = detect();
    return *chosen;
}

const Backend* backendByName(std::string_view name) {
    for (const Backend* backend :
         {portableBackend(), avx2Backend(), avx512Backend(), neonBackend()})
        if (backend != nullptr && name == backend->name)
            return cpuSupports(backend) ? backend : nullptr;
    return nullptr;
}

std::vector<const Backend*> availableBackends() {
    std::vector<const Backend*> backends;
    for (const Backend* backend :
         {portableBackend(), avx2Backend(), avx512Backend(), neonBackend()})
        if (cpuSupports(backend)) backends.push_back(backend);
    return backends;
}

ScopedBackendOverride::ScopedBackendOverride(const Backend* backend)
    : previous_(gOverride.exchange(backend, std::memory_order_acq_rel)) {}

ScopedBackendOverride::~ScopedBackendOverride() {
    gOverride.store(previous_, std::memory_order_release);
}

}  // namespace axf::circuit::kernels
