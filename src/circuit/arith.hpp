#pragma once

#include <cstdint>
#include <string>

namespace axf::circuit {

/// Arithmetic operator class of a library circuit.
enum class ArithOp : std::uint8_t { Adder, Multiplier };

const char* arithOpName(ArithOp op);

/// Unsigned arithmetic interface of a circuit: a `widthA` x `widthB`
/// operator whose outputs encode an `outputWidth`-bit result (LSB-first on
/// the netlist interface, operand A bits first, then operand B bits).
struct ArithSignature {
    ArithOp op = ArithOp::Adder;
    int widthA = 8;
    int widthB = 8;

    int outputWidth() const { return op == ArithOp::Adder ? widthA + 1 : widthA + widthB; }
    int inputWidth() const { return widthA + widthB; }

    /// Golden (exact) result for the operand pair.
    std::uint64_t exact(std::uint64_t a, std::uint64_t b) const {
        return op == ArithOp::Adder ? a + b : a * b;
    }

    /// Largest representable output value (MED normalization per the paper).
    std::uint64_t maxOutput() const {
        const std::uint64_t maxA = (std::uint64_t{1} << widthA) - 1;
        const std::uint64_t maxB = (std::uint64_t{1} << widthB) - 1;
        return exact(maxA, maxB);
    }

    std::string toString() const;

    friend bool operator==(const ArithSignature&, const ArithSignature&) = default;
};

inline const char* arithOpName(ArithOp op) {
    return op == ArithOp::Adder ? "adder" : "multiplier";
}

inline std::string ArithSignature::toString() const {
    if (op == ArithOp::Adder) return std::to_string(widthA) + "-bit adder";
    return std::to_string(widthA) + "x" + std::to_string(widthB) + " multiplier";
}

}  // namespace axf::circuit
