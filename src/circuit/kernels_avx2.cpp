// AVX2 backend: the generic kernels compiled for x86-64-v3 (256-bit ymm
// bitwise ops), so a binary built WITHOUT -march=native — or built on an
// AVX-512 host and run on an AVX2-only one — still gets full-width vector
// kernels via runtime dispatch.  CMake compiles this TU with
// -march=x86-64-v3 when the compiler supports it; the guard below keeps
// the TU empty otherwise.  Nothing here executes unless
// __builtin_cpu_supports("avx2") said yes.

#include "src/circuit/kernels.hpp"

#if defined(__AVX2__) && !defined(__AVX512F__)

namespace axf::circuit::kernels {
namespace avx2_impl {

#include "src/circuit/kernels_generic.inc"

constexpr Backend kBackend = {"avx2", kGenericWideTables, kGenericNarrow, kGenericNarrowChained};

}  // namespace avx2_impl

const Backend* avx2Backend() { return &avx2_impl::kBackend; }

}  // namespace axf::circuit::kernels

#else

namespace axf::circuit::kernels {
const Backend* avx2Backend() { return nullptr; }
}  // namespace axf::circuit::kernels

#endif
