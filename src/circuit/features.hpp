#pragma once

#include <string>
#include <vector>

#include "src/circuit/netlist.hpp"

namespace axf::circuit {

/// Structural feature vector extracted from a netlist's "hardware
/// description".  These are the ML inputs of the ApproxFPGAs methodology
/// (the paper trains its estimators on the circuit description; ASIC-side
/// metrics are appended by the core layer).
struct StructuralFeatures {
    // Size features
    double gateCount = 0.0;
    double nodeCount = 0.0;
    double inputCount = 0.0;
    double outputCount = 0.0;

    // Gate-class histogram (fractions of gateCount to stay scale-free,
    // plus raw XOR-class count since parity logic dominates LUT packing)
    double andClassCount = 0.0;   ///< and/nand/andnot
    double orClassCount = 0.0;    ///< or/nor/ornot
    double xorClassCount = 0.0;   ///< xor/xnor
    double inverterCount = 0.0;   ///< not/buf
    double muxMajCount = 0.0;     ///< mux/maj

    // Topology features
    double depth = 0.0;
    double meanLevel = 0.0;       ///< average logic level over gates
    double meanFanout = 0.0;
    double maxFanout = 0.0;
    double outputLevelSum = 0.0;  ///< sum of output levels (carry-chain weight)
    double wideGateLevels = 0.0;  ///< #levels containing >= 4 gates

    /// Flattens into the dense vector consumed by the ML substrate.
    std::vector<double> toVector() const;

    /// Names aligned with `toVector`, for reports and symbolic regression.
    static const std::vector<std::string>& names();
    static std::size_t dimension();
};

StructuralFeatures extractFeatures(const Netlist& netlist);

}  // namespace axf::circuit
