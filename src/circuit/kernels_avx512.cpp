// AVX-512 backend.  Each block width maps to its natural register shape —
// W = 4 (256 lanes) runs on ymm via AVX-512VL, W = 8 (512 lanes) on one
// zmm, W = 16 (1024 lanes) on a zmm pair — so the W = 8 family is the
// first to retire a full 512-bit register per logic op.  The win over AVX2
// at every width is vpternlogq: every 3-input or inverted gate (Mux, Maj,
// Xor3, Nand, Nor, Xnor, OrNot, MuxNot*) is exactly ONE logic instruction
// whose truth-table immediate is computed at compile time from the shared
// OpCode semantics (width-invariant: the same immediate serves every
// register shape).  The bit-plane decoders use AVX-512BW masked
// broadcast-adds (the plane word itself is the write mask), tiled in
// 256-lane groups so the accumulator set stays within the register file at
// every width.
//
// CMake compiles this TU with -march=x86-64-v4; nothing in it executes
// unless runtime detection confirmed avx512{f,bw,vl,dq}.

#include "src/circuit/kernels.hpp"

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512VL__) && \
    defined(__AVX512DQ__)

#include <immintrin.h>

namespace axf::circuit::kernels {
namespace avx512_impl {

#include "src/circuit/kernels_generic.inc"

/// vpternlogq immediate: result bit = imm[(A << 2) | (B << 1) | C] for
/// operand order ternarylogic(a, b, c, imm) — exactly the layout of the
/// shared `opTruthTable`, so the immediate IS the truth table.  No
/// hand-written immediates exist to drift from the opcode semantics.
template <OpCode Op>
constexpr int ternImm() {
    return opTruthTable(Op);
}

/// One workspace slot in the natural register shape of width W.
template <std::size_t W>
struct SlotVec;

template <>
struct SlotVec<4> {
    using T = __m256i;
    static T load(const Word* p) { return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)); }
    static void store(Word* p, T v) { _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v); }
    static T and_(T a, T b) { return _mm256_and_si256(a, b); }
    static T or_(T a, T b) { return _mm256_or_si256(a, b); }
    static T xor_(T a, T b) { return _mm256_xor_si256(a, b); }
    static T andnot(T a, T b) { return _mm256_andnot_si256(b, a); }  // a & ~b
    template <int Imm>
    static T tern(T a, T b, T c) {
        return _mm256_ternarylogic_epi64(a, b, c, Imm);
    }
};

template <>
struct SlotVec<8> {
    using T = __m512i;
    static T load(const Word* p) { return _mm512_loadu_si512(p); }
    static void store(Word* p, T v) { _mm512_storeu_si512(p, v); }
    static T and_(T a, T b) { return _mm512_and_si512(a, b); }
    static T or_(T a, T b) { return _mm512_or_si512(a, b); }
    static T xor_(T a, T b) { return _mm512_xor_si512(a, b); }
    static T andnot(T a, T b) { return _mm512_andnot_si512(b, a); }  // a & ~b
    template <int Imm>
    static T tern(T a, T b, T c) {
        return _mm512_ternarylogic_epi64(a, b, c, Imm);
    }
};

template <>
struct SlotVec<16> {
    struct T {
        __m512i lo, hi;
    };
    static T load(const Word* p) { return {_mm512_loadu_si512(p), _mm512_loadu_si512(p + 8)}; }
    static void store(Word* p, T v) {
        _mm512_storeu_si512(p, v.lo);
        _mm512_storeu_si512(p + 8, v.hi);
    }
    static T and_(T a, T b) {
        return {_mm512_and_si512(a.lo, b.lo), _mm512_and_si512(a.hi, b.hi)};
    }
    static T or_(T a, T b) { return {_mm512_or_si512(a.lo, b.lo), _mm512_or_si512(a.hi, b.hi)}; }
    static T xor_(T a, T b) {
        return {_mm512_xor_si512(a.lo, b.lo), _mm512_xor_si512(a.hi, b.hi)};
    }
    static T andnot(T a, T b) {
        return {_mm512_andnot_si512(b.lo, a.lo), _mm512_andnot_si512(b.hi, a.hi)};
    }
    template <int Imm>
    static T tern(T a, T b, T c) {
        return {_mm512_ternarylogic_epi64(a.lo, b.lo, c.lo, Imm),
                _mm512_ternarylogic_epi64(a.hi, b.hi, c.hi, Imm)};
    }
};

/// Single-result opcode on one W-word slot: plain ops where one
/// instruction per register suffices, vpternlogq everywhere else.
template <std::size_t W, OpCode Op>
inline typename SlotVec<W>::T applyWide(typename SlotVec<W>::T a, typename SlotVec<W>::T b,
                                        typename SlotVec<W>::T c) {
    using V = SlotVec<W>;
    if constexpr (Op == OpCode::Buf) return a;
    if constexpr (Op == OpCode::And) return V::and_(a, b);
    if constexpr (Op == OpCode::Or) return V::or_(a, b);
    if constexpr (Op == OpCode::Xor) return V::xor_(a, b);
    if constexpr (Op == OpCode::AndNot) return V::andnot(a, b);
    if constexpr (Op == OpCode::Not) return V::template tern<ternImm<Op>()>(a, a, a);
    if constexpr (Op == OpCode::Nand || Op == OpCode::Nor || Op == OpCode::Xnor ||
                  Op == OpCode::OrNot)
        return V::template tern<ternImm<Op>()>(a, b, b);  // imm ignores C
    if constexpr (opFanIn(Op) == 3) return V::template tern<ternImm<Op>()>(a, b, c);
}

template <std::size_t W, OpCode Op, int N>
void runWide(const Instr* instrs, std::uint32_t count, Word* ws) {
    using V = SlotVec<W>;
    const auto ptr = [ws](std::uint32_t s) { return ws + static_cast<std::size_t>(s) * W; };
    const std::uint32_t n = N >= 0 ? static_cast<std::uint32_t>(N) : count;
    for (std::uint32_t i = 0; i < n; ++i) {
        const Instr& ins = instrs[i];
        const typename V::T a = V::load(ptr(ins.a));
        if constexpr (Op == OpCode::HalfAdd) {
            const typename V::T b = V::load(ptr(ins.b));
            V::store(ptr(ins.c), V::and_(a, b));
            V::store(ptr(ins.dst), V::xor_(a, b));
        } else {
            typename V::T b = a, c = a;
            if constexpr (opFanIn(Op) >= 2) b = V::load(ptr(ins.b));
            if constexpr (opFanIn(Op) >= 3) c = V::load(ptr(ins.c));
            V::store(ptr(ins.dst), applyWide<W, Op>(a, b, c));
        }
    }
}

/// Chained run: instruction i > 0 consumes instruction i-1's destination
/// as operand `a` from a register (see KernelFn in kernels.hpp).
template <std::size_t W, OpCode Op>
void chainWide(const Instr* instrs, std::uint32_t count, Word* ws) {
    using V = SlotVec<W>;
    const auto ptr = [ws](std::uint32_t s) { return ws + static_cast<std::size_t>(s) * W; };
    typename V::T prev = V::load(ptr(instrs[0].a));
    for (std::uint32_t i = 0; i < count; ++i) {
        const Instr& ins = instrs[i];
        const typename V::T a = prev;
        if constexpr (Op == OpCode::HalfAdd) {
            const typename V::T b = V::load(ptr(ins.b));
            V::store(ptr(ins.c), V::and_(a, b));
            prev = V::xor_(a, b);
        } else {
            typename V::T b = a, c = a;
            if constexpr (opFanIn(Op) >= 2) b = V::load(ptr(ins.b));
            if constexpr (opFanIn(Op) >= 3) c = V::load(ptr(ins.c));
            prev = applyWide<W, Op>(a, b, c);
        }
        V::store(ptr(ins.dst), prev);
    }
}

#define AXF_KERNEL_ROW(W, N)                                                                   \
    {&runWide<W, OpCode::Buf, N>,     &runWide<W, OpCode::Not, N>,                             \
     &runWide<W, OpCode::And, N>,     &runWide<W, OpCode::Or, N>,                              \
     &runWide<W, OpCode::Xor, N>,     &runWide<W, OpCode::Nand, N>,                            \
     &runWide<W, OpCode::Nor, N>,     &runWide<W, OpCode::Xnor, N>,                            \
     &runWide<W, OpCode::AndNot, N>,  &runWide<W, OpCode::OrNot, N>,                           \
     &runWide<W, OpCode::Mux, N>,     &runWide<W, OpCode::Maj, N>,                             \
     &runWide<W, OpCode::Xor3, N>,    &runWide<W, OpCode::MuxNotA, N>,                         \
     &runWide<W, OpCode::MuxNotB, N>, &runWide<W, OpCode::HalfAdd, N>,                         \
     &runWide<W, OpCode::And3, N>,    &runWide<W, OpCode::Or3, N>}

#define AXF_CHAIN_ROW(W)                                                                       \
    {&chainWide<W, OpCode::Buf>,     &chainWide<W, OpCode::Not>,                               \
     &chainWide<W, OpCode::And>,     &chainWide<W, OpCode::Or>,                                \
     &chainWide<W, OpCode::Xor>,     &chainWide<W, OpCode::Nand>,                              \
     &chainWide<W, OpCode::Nor>,     &chainWide<W, OpCode::Xnor>,                              \
     &chainWide<W, OpCode::AndNot>,  &chainWide<W, OpCode::OrNot>,                             \
     &chainWide<W, OpCode::Mux>,     &chainWide<W, OpCode::Maj>,                               \
     &chainWide<W, OpCode::Xor3>,    &chainWide<W, OpCode::MuxNotA>,                           \
     &chainWide<W, OpCode::MuxNotB>, &chainWide<W, OpCode::HalfAdd>,                           \
     &chainWide<W, OpCode::And3>,    &chainWide<W, OpCode::Or3>}

template <std::size_t W>
constexpr std::array<std::array<KernelFn, kMaxUnroll>, kOpCount> makeUnrolled() {
    constexpr std::array<std::array<KernelFn, kOpCount>, kMaxUnroll> byCount = {
        {AXF_KERNEL_ROW(W, 1), AXF_KERNEL_ROW(W, 2), AXF_KERNEL_ROW(W, 3),
         AXF_KERNEL_ROW(W, 4)}};
    static_assert(kMaxUnroll == 4, "extend the unrolled-kernel rows");
    std::array<std::array<KernelFn, kMaxUnroll>, kOpCount> t{};
    for (std::size_t op = 0; op < kOpCount; ++op)
        for (std::size_t n = 0; n < kMaxUnroll; ++n) t[op][n] = byCount[n][op];
    return t;
}

/// One masked broadcast-add per (bit, 32-lane group): twice the lanes per
/// add of the 32-bit decode, valid for bits <= 16.  Tiled in 256-lane
/// (4-word) groups so wider widths reuse the same 8-accumulator inner
/// kernel instead of demanding W/4 times the registers.
template <std::size_t W>
void decode16Avx512(const Word* planes, std::size_t bits, std::uint16_t* out) {
    constexpr std::size_t kTileWords = 4;
    for (std::size_t base = 0; base < W; base += kTileWords) {
        constexpr std::size_t kGroups = kTileWords * 64 / 32;
        __m512i acc[kGroups];
        for (auto& g : acc) g = _mm512_setzero_si512();
        for (std::size_t bit = 0; bit < bits; ++bit) {
            const __m512i weight = _mm512_set1_epi16(static_cast<short>(1u << bit));
            const Word* words = planes + bit * W + base;
            for (std::size_t g = 0; g < kGroups; ++g) {
                const __mmask32 m =
                    static_cast<__mmask32>(words[(g * 32) / 64] >> ((g * 32) % 64));
                acc[g] = _mm512_mask_add_epi16(acc[g], m, acc[g], weight);
            }
        }
        std::uint16_t* o = out + base * 64;
        for (std::size_t g = 0; g < kGroups; ++g)
            _mm512_storeu_si512(reinterpret_cast<__m512i*>(o + g * 32), acc[g]);
    }
}

template <std::size_t W>
void decode32Avx512(const Word* planes, std::size_t bits, std::uint32_t* out) {
    constexpr std::size_t kTileWords = 4;
    for (std::size_t base = 0; base < W; base += kTileWords) {
        constexpr std::size_t kGroups = kTileWords * 64 / 16;
        __m512i acc[kGroups];
        for (auto& g : acc) g = _mm512_setzero_si512();
        for (std::size_t bit = 0; bit < bits; ++bit) {
            const __m512i weight = _mm512_set1_epi32(1u << bit);
            const Word* words = planes + bit * W + base;
            for (std::size_t g = 0; g < kGroups; ++g) {
                const __mmask16 m =
                    static_cast<__mmask16>(words[(g * 16) / 64] >> ((g * 16) % 64));
                acc[g] = _mm512_mask_add_epi32(acc[g], m, acc[g], weight);
            }
        }
        std::uint32_t* o = out + base * 64;
        for (std::size_t g = 0; g < kGroups; ++g)
            _mm512_storeu_si512(reinterpret_cast<__m512i*>(o + g * 16), acc[g]);
    }
}

template <std::size_t W>
constexpr WidthTables makeWidthTables() {
    return WidthTables{AXF_KERNEL_ROW(W, -1), makeUnrolled<W>(), AXF_CHAIN_ROW(W),
                       &decode16Avx512<W>, &decode32Avx512<W>};
}

#undef AXF_KERNEL_ROW
#undef AXF_CHAIN_ROW

constexpr std::array<WidthTables, kWidthCount> kWideTables = {
    makeWidthTables<4>(), makeWidthTables<8>(), makeWidthTables<16>()};

static_assert(tablesComplete(kWideTables),
              "avx512 kernel table rows do not cover every opcode");

constexpr Backend kBackend = {"avx512", kWideTables, kGenericNarrow, kGenericNarrowChained};

}  // namespace avx512_impl

const Backend* avx512Backend() { return &avx512_impl::kBackend; }

}  // namespace axf::circuit::kernels

#else

namespace axf::circuit::kernels {
const Backend* avx512Backend() { return nullptr; }
}  // namespace axf::circuit::kernels

#endif
