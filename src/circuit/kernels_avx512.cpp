// AVX-512 backend.  Slots are 256-bit (kWideWords = 4), so the wide
// kernels run on ymm with the AVX-512VL instruction set — the win over
// AVX2 is vpternlogq: every 3-input or inverted gate (Mux, Maj, Xor3,
// Nand, Nor, Xnor, OrNot, MuxNot*) is exactly ONE logic instruction whose
// truth-table immediate is computed at compile time from the shared OpCode
// semantics.  The bit-plane decoders use AVX-512BW masked broadcast-adds
// (the plane word itself is the write mask).
//
// CMake compiles this TU with -march=x86-64-v4; nothing in it executes
// unless runtime detection confirmed avx512{f,bw,vl,dq}.

#include "src/circuit/kernels.hpp"

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512VL__) && \
    defined(__AVX512DQ__)

#include <immintrin.h>

namespace axf::circuit::kernels {
namespace avx512_impl {

#include "src/circuit/kernels_generic.inc"

/// vpternlogq immediate: result bit = imm[(A << 2) | (B << 1) | C] for
/// operand order ternarylogic(a, b, c, imm) — exactly the layout of the
/// shared `opTruthTable`, so the immediate IS the truth table.  No
/// hand-written immediates exist to drift from the opcode semantics.
template <OpCode Op>
constexpr int ternImm() {
    return opTruthTable(Op);
}

/// Single-result opcode on 256-bit lanes: plain ops where one instruction
/// suffices, vpternlogq everywhere else.
template <OpCode Op>
inline __m256i applyWide(__m256i a, __m256i b, __m256i c) {
    if constexpr (Op == OpCode::Buf) return a;
    if constexpr (Op == OpCode::And) return _mm256_and_si256(a, b);
    if constexpr (Op == OpCode::Or) return _mm256_or_si256(a, b);
    if constexpr (Op == OpCode::Xor) return _mm256_xor_si256(a, b);
    if constexpr (Op == OpCode::AndNot) return _mm256_andnot_si256(b, a);  // ~b & a
    if constexpr (Op == OpCode::Not) return _mm256_ternarylogic_epi64(a, a, a, ternImm<Op>());
    if constexpr (Op == OpCode::Nand || Op == OpCode::Nor || Op == OpCode::Xnor ||
                  Op == OpCode::OrNot)
        return _mm256_ternarylogic_epi64(a, b, b, ternImm<Op>());  // imm ignores C
    if constexpr (opFanIn(Op) == 3) return _mm256_ternarylogic_epi64(a, b, c, ternImm<Op>());
}

template <OpCode Op, int N>
void runWide(const Instr* instrs, std::uint32_t count, Word* ws) {
    const auto ptr = [ws](std::uint32_t s) {
        return reinterpret_cast<__m256i*>(ws + static_cast<std::size_t>(s) * kWideWords);
    };
    const std::uint32_t n = N >= 0 ? static_cast<std::uint32_t>(N) : count;
    for (std::uint32_t i = 0; i < n; ++i) {
        const Instr& ins = instrs[i];
        const __m256i a = _mm256_loadu_si256(ptr(ins.a));
        if constexpr (Op == OpCode::HalfAdd) {
            const __m256i b = _mm256_loadu_si256(ptr(ins.b));
            _mm256_storeu_si256(ptr(ins.c), _mm256_and_si256(a, b));
            _mm256_storeu_si256(ptr(ins.dst), _mm256_xor_si256(a, b));
        } else {
            __m256i b = a, c = a;
            if constexpr (opFanIn(Op) >= 2) b = _mm256_loadu_si256(ptr(ins.b));
            if constexpr (opFanIn(Op) >= 3) c = _mm256_loadu_si256(ptr(ins.c));
            _mm256_storeu_si256(ptr(ins.dst), applyWide<Op>(a, b, c));
        }
    }
}

/// Chained run: instruction i > 0 consumes instruction i-1's destination
/// as operand `a` from a register (see KernelFn in kernels.hpp).
template <OpCode Op>
void chainWide(const Instr* instrs, std::uint32_t count, Word* ws) {
    const auto ptr = [ws](std::uint32_t s) {
        return reinterpret_cast<__m256i*>(ws + static_cast<std::size_t>(s) * kWideWords);
    };
    __m256i prev = _mm256_loadu_si256(ptr(instrs[0].a));
    for (std::uint32_t i = 0; i < count; ++i) {
        const Instr& ins = instrs[i];
        const __m256i a = prev;
        if constexpr (Op == OpCode::HalfAdd) {
            const __m256i b = _mm256_loadu_si256(ptr(ins.b));
            _mm256_storeu_si256(ptr(ins.c), _mm256_and_si256(a, b));
            prev = _mm256_xor_si256(a, b);
        } else {
            __m256i b = a, c = a;
            if constexpr (opFanIn(Op) >= 2) b = _mm256_loadu_si256(ptr(ins.b));
            if constexpr (opFanIn(Op) >= 3) c = _mm256_loadu_si256(ptr(ins.c));
            prev = applyWide<Op>(a, b, c);
        }
        _mm256_storeu_si256(ptr(ins.dst), prev);
    }
}

#define AXF_KERNEL_ROW(N)                                                                   \
    {&runWide<OpCode::Buf, N>,     &runWide<OpCode::Not, N>,  &runWide<OpCode::And, N>,     \
     &runWide<OpCode::Or, N>,      &runWide<OpCode::Xor, N>,  &runWide<OpCode::Nand, N>,    \
     &runWide<OpCode::Nor, N>,     &runWide<OpCode::Xnor, N>, &runWide<OpCode::AndNot, N>,  \
     &runWide<OpCode::OrNot, N>,   &runWide<OpCode::Mux, N>,  &runWide<OpCode::Maj, N>,     \
     &runWide<OpCode::Xor3, N>,    &runWide<OpCode::MuxNotA, N>,                            \
     &runWide<OpCode::MuxNotB, N>, &runWide<OpCode::HalfAdd, N>,                            \
     &runWide<OpCode::And3, N>,    &runWide<OpCode::Or3, N>}

constexpr std::array<KernelFn, kOpCount> kWideTable = AXF_KERNEL_ROW(-1);

#define AXF_CHAIN_ROW_512                                                                  \
    {&chainWide<OpCode::Buf>,     &chainWide<OpCode::Not>,  &chainWide<OpCode::And>,       \
     &chainWide<OpCode::Or>,      &chainWide<OpCode::Xor>,  &chainWide<OpCode::Nand>,      \
     &chainWide<OpCode::Nor>,     &chainWide<OpCode::Xnor>, &chainWide<OpCode::AndNot>,    \
     &chainWide<OpCode::OrNot>,   &chainWide<OpCode::Mux>,  &chainWide<OpCode::Maj>,       \
     &chainWide<OpCode::Xor3>,    &chainWide<OpCode::MuxNotA>,                             \
     &chainWide<OpCode::MuxNotB>, &chainWide<OpCode::HalfAdd>,                             \
     &chainWide<OpCode::And3>,    &chainWide<OpCode::Or3>}

constexpr std::array<KernelFn, kOpCount> kWideChainTable = AXF_CHAIN_ROW_512;
#undef AXF_CHAIN_ROW_512

constexpr std::array<std::array<KernelFn, kMaxUnroll>, kOpCount> makeUnrolled() {
    constexpr std::array<std::array<KernelFn, kOpCount>, kMaxUnroll> byCount = {
        {AXF_KERNEL_ROW(1), AXF_KERNEL_ROW(2), AXF_KERNEL_ROW(3), AXF_KERNEL_ROW(4)}};
    static_assert(kMaxUnroll == 4, "extend the unrolled-kernel rows");
    std::array<std::array<KernelFn, kMaxUnroll>, kOpCount> t{};
    for (std::size_t op = 0; op < kOpCount; ++op)
        for (std::size_t n = 0; n < kMaxUnroll; ++n) t[op][n] = byCount[n][op];
    return t;
}

#undef AXF_KERNEL_ROW

static_assert(tableComplete(kWideTable) && tableComplete(kWideChainTable) &&
                  tableComplete(makeUnrolled()),
              "avx512 kernel table rows do not cover every opcode");

/// One masked broadcast-add per (bit, 32-lane group): twice the lanes per
/// add of the 32-bit decode, valid for bits <= 16.
void decode16Avx512(const Word* planes, std::size_t bits, std::uint16_t* out) {
    constexpr std::size_t kGroups = kWideLanes / 32;
    __m512i acc[kGroups];
    for (auto& g : acc) g = _mm512_setzero_si512();
    for (std::size_t bit = 0; bit < bits; ++bit) {
        const __m512i weight = _mm512_set1_epi16(static_cast<short>(1u << bit));
        const Word* words = planes + bit * kWideWords;
        for (std::size_t g = 0; g < kGroups; ++g) {
            const __mmask32 m = static_cast<__mmask32>(words[(g * 32) / 64] >> ((g * 32) % 64));
            acc[g] = _mm512_mask_add_epi16(acc[g], m, acc[g], weight);
        }
    }
    for (std::size_t g = 0; g < kGroups; ++g)
        _mm512_storeu_si512(reinterpret_cast<__m512i*>(out + g * 32), acc[g]);
}

void decode32Avx512(const Word* planes, std::size_t bits, std::uint32_t* out) {
    constexpr std::size_t kGroups = kWideLanes / 16;
    __m512i acc[kGroups];
    for (auto& g : acc) g = _mm512_setzero_si512();
    for (std::size_t bit = 0; bit < bits; ++bit) {
        const __m512i weight = _mm512_set1_epi32(1u << bit);
        const Word* words = planes + bit * kWideWords;
        for (std::size_t g = 0; g < kGroups; ++g) {
            const __mmask16 m = static_cast<__mmask16>(words[(g * 16) / 64] >> ((g * 16) % 64));
            acc[g] = _mm512_mask_add_epi32(acc[g], m, acc[g], weight);
        }
    }
    for (std::size_t g = 0; g < kGroups; ++g)
        _mm512_storeu_si512(reinterpret_cast<__m512i*>(out + g * 16), acc[g]);
}

constexpr Backend kBackend = {
    "avx512",        kWideTable,            kGenericNarrow,  makeUnrolled(),
    kWideChainTable, kGenericNarrowChained, &decode16Avx512, &decode32Avx512,
};

}  // namespace avx512_impl

const Backend* avx512Backend() { return &avx512_impl::kBackend; }

}  // namespace axf::circuit::kernels

#else

namespace axf::circuit::kernels {
const Backend* avx512Backend() { return nullptr; }
}  // namespace axf::circuit::kernels

#endif
