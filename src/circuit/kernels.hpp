#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

namespace axf::circuit::kernels {

using Word = std::uint64_t;

/// The compile-time width set: words per slot of the wide configurations.
/// Every backend instantiates its full kernel family (generic, unrolled,
/// chained, decoders) once per width; `CompiledNetlist` picks one width per
/// netlist at compile time (footprint heuristic / AXF_FORCE_WIDTH /
/// ScopedWidthOverride) and can still be run at any of them.  Width is
/// purely an execution-shape knob: results are bit-identical across the
/// whole set, pinned by differential tests against the W = 4 oracle.
inline constexpr std::size_t kWidthCount = 3;
inline constexpr std::array<std::size_t, kWidthCount> kWideWidths = {4, 8, 16};

/// W = 4 (256 lanes): the differential-oracle width and the accumulation
/// granularity wider widths must reproduce (see error::Accumulator users).
inline constexpr std::size_t kBaseWideWords = 4;
inline constexpr std::size_t kBaseWideLanes = kBaseWideWords * 64;

/// W = 16 (1024 lanes): sizing bound for width-agnostic buffers.
inline constexpr std::size_t kMaxWideWords = 16;
inline constexpr std::size_t kMaxWideLanes = kMaxWideWords * 64;

constexpr bool isWideWidth(std::size_t words) {
    return words == 4 || words == 8 || words == 16;
}

/// Index of a width in `kWideWidths` (and in `Backend::wide`).
constexpr std::size_t widthIndex(std::size_t words) {
    return words == 4 ? 0 : words == 8 ? 1 : 2;
}

/// Instruction alphabet of the compiled engine: every logic `GateKind`
/// plus the fused instructions produced by the peephole pass in
/// `CompiledNetlist::compile`.  Fused ops exist so a 2-gate single-use
/// chain costs one dispatch, one destination store and (on AVX-512) a
/// single `vpternlogq` instead of two full workspace round-trips.
enum class OpCode : std::uint8_t {
    Buf,      ///< a
    Not,      ///< ~a
    And,      ///< a & b
    Or,       ///< a | b
    Xor,      ///< a ^ b
    Nand,     ///< ~(a & b)
    Nor,      ///< ~(a | b)
    Xnor,     ///< ~(a ^ b)
    AndNot,   ///< a & ~b
    OrNot,    ///< a | ~b
    Mux,      ///< c ? b : a
    Maj,      ///< majority(a, b, c)
    Xor3,     ///< a ^ b ^ c        (fused full-adder sum)
    MuxNotA,  ///< c ? b : ~a       (fused Not -> Mux data-low)
    MuxNotB,  ///< c ? ~b : a       (fused Not -> Mux data-high)
    HalfAdd,  ///< dst = a ^ b  AND  slot c = a & b  (dual-destination pair)
    And3,     ///< a & b & c        (fused AND-tree level)
    Or3,      ///< a | b | c        (fused OR-compressor level)
};
inline constexpr std::size_t kOpCount = 18;

const char* opCodeName(OpCode op);

/// Operand count of an opcode.  HalfAdd reads a and b; its c field is the
/// second *destination*.  Single source of truth for both the compiler's
/// fusion/scheduling passes and the kernel bodies — a drift between the
/// two would make the compiler emit operands a kernel never reads (or
/// vice versa) with silently wrong results.
constexpr int opFanIn(OpCode op) {
    switch (op) {
        case OpCode::Buf:
        case OpCode::Not: return 1;
        case OpCode::Mux:
        case OpCode::Maj:
        case OpCode::Xor3:
        case OpCode::MuxNotA:
        case OpCode::MuxNotB:
        case OpCode::And3:
        case OpCode::Or3: return 3;
        default: return 2;
    }
}

/// Reference boolean semantics of an opcode's primary result (for HalfAdd
/// that is the *sum*; the carry written to slot `c` is `opCarryEval`).
/// THE single source of truth every executable form must derive from or be
/// checked against: the generic kernel bodies (static_asserted in
/// kernels_generic.inc), the AVX-512 ternlog immediates (computed from
/// `opTruthTable` directly), the `GateKind` lowering (static_asserted in
/// batch_sim.cpp) and the static verifier's fusion-legality check
/// (src/verify re-derives every fused instruction's function from it).
constexpr bool opEval(OpCode op, bool a, bool b, bool c) {
    switch (op) {
        case OpCode::Buf: return a;
        case OpCode::Not: return !a;
        case OpCode::And: return a && b;
        case OpCode::Or: return a || b;
        case OpCode::Xor: return a != b;
        case OpCode::Nand: return !(a && b);
        case OpCode::Nor: return !(a || b);
        case OpCode::Xnor: return a == b;
        case OpCode::AndNot: return a && !b;
        case OpCode::OrNot: return a || !b;
        case OpCode::Mux: return c ? b : a;
        case OpCode::Maj: return (a && b) || (a && c) || (b && c);
        case OpCode::Xor3: return (a != b) != c;
        case OpCode::MuxNotA: return c ? b : !a;
        case OpCode::MuxNotB: return c ? !b : a;
        case OpCode::HalfAdd: return a != b;
        case OpCode::And3: return a && b && c;
        case OpCode::Or3: return a || b || c;
    }
    return false;
}

/// HalfAdd's secondary result, written to the `c` slot.
constexpr bool opCarryEval(bool a, bool b) { return a && b; }

/// 8-entry truth table of the primary result, bit index (a << 2) | (b <<
/// 1) | c — exactly the vpternlogq immediate layout, so the AVX-512
/// backend uses this value as its immediate with no hand-written copy.
constexpr std::uint8_t opTruthTable(OpCode op) {
    std::uint8_t table = 0;
    for (int k = 0; k < 8; ++k)
        if (opEval(op, (k & 4) != 0, (k & 2) != 0, (k & 1) != 0))
            table |= static_cast<std::uint8_t>(1u << k);
    return table;
}

/// One compiled instruction.  Operands are workspace slot indices; for
/// `HalfAdd` the `c` field is the *second destination* (the carry slot),
/// not an operand.
struct Instr {
    OpCode op;
    std::uint32_t dst, a, b, c;
};

/// Evaluates one maximal same-opcode run of `count` instructions against a
/// workspace of (slotCount * W) words.  The instruction pointer addresses
/// the first instruction of the run.
///
/// Chained kernels additionally require (compile guarantees it) that every
/// instruction after the first reads the previous instruction's primary
/// destination as operand `a` — the hot value then rides in a register
/// through the whole run instead of round-tripping through the workspace
/// (the latency killer of ripple-carry-style serial chains).
using KernelFn = void (*)(const Instr* instrs, std::uint32_t count, Word* ws);

/// Decodes `bits` output bit-planes of a wide block (W words per plane,
/// plane-major, where W is the width of the `WidthTables` the function
/// lives in) into one integer per lane (W * 64 lanes).
using Decode16Fn = void (*)(const Word* planes, std::size_t bits, std::uint16_t* out);
using Decode32Fn = void (*)(const Word* planes, std::size_t bits, std::uint32_t* out);

/// Longest run the unrolled ("superblock") kernel variants cover; runs of
/// `n <= kMaxUnroll` instructions dispatch to a fully unrolled template
/// instantiation when the compiled netlist is specialized.
inline constexpr std::uint32_t kMaxUnroll = 4;

/// True when every row of a kernel table is populated.  A brace-init list
/// shorter than `kOpCount` compiles fine (the tail value-initializes to
/// nullptr), so each backend TU static_asserts this over its tables —
/// adding an opcode without extending every row is a build error, not a
/// null-call crash at dispatch time.
constexpr bool tableComplete(const std::array<KernelFn, kOpCount>& table) {
    for (const KernelFn fn : table)
        if (fn == nullptr) return false;
    return true;
}
constexpr bool tableComplete(
    const std::array<std::array<KernelFn, kMaxUnroll>, kOpCount>& table) {
    for (const auto& row : table)
        for (const KernelFn fn : row)
            if (fn == nullptr) return false;
    return true;
}

/// Complete kernel family of one backend at one block width W: the generic
/// per-run kernels, the fully unrolled straight-line variants for runs of
/// 1..kMaxUnroll instructions (indexed [op][count - 1]; nullptr falls back
/// to `run`), the register-chained variants, and the bit-plane decoders.
struct WidthTables {
    std::array<KernelFn, kOpCount> run;
    std::array<std::array<KernelFn, kMaxUnroll>, kOpCount> unrolled;
    std::array<KernelFn, kOpCount> chained;
    Decode16Fn decode16;
    Decode32Fn decode32;
};

/// One ISA backend: a complete kernel table per block width, selected once
/// per process (or forced per compile).  All backends compute bit-identical
/// results at every width — the tables differ only in instruction
/// selection and register shape.
struct Backend {
    const char* name;
    /// Wide kernel families, indexed by `widthIndex(W)` for W in
    /// kWideWidths (4 -> 256, 8 -> 512, 16 -> 1024 lanes per dispatch).
    std::array<WidthTables, kWidthCount> wide;
    /// Generic per-run kernels, W = 1 (64 lanes; `Simulator`, activity).
    std::array<KernelFn, kOpCount> narrow;
    /// Register-chained W = 1 variants.
    std::array<KernelFn, kOpCount> narrowChained;

    const WidthTables& at(std::size_t words) const { return wide[widthIndex(words)]; }
};

/// True when every table of every width row is fully populated.
constexpr bool tablesComplete(const std::array<WidthTables, kWidthCount>& wide) {
    for (const WidthTables& t : wide)
        if (!tableComplete(t.run) || !tableComplete(t.unrolled) || !tableComplete(t.chained) ||
            t.decode16 == nullptr || t.decode32 == nullptr)
            return false;
    return true;
}

/// Backend chosen for this process: the widest ISA the CPU supports
/// (avx512 > avx2 > neon > portable), overridable with AXF_FORCE_BACKEND
/// (values: portable, avx2, avx512, neon).  An unknown value, or one the
/// CPU cannot execute, warns once on stderr and falls back to
/// auto-detection — it never silently picks a default name-match and never
/// aborts the process.  Detection runs once; the reference stays valid for
/// the process lifetime.
const Backend& selectedBackend();

/// Backend by name, or nullptr when unknown or unsupported on this CPU.
const Backend* backendByName(std::string_view name);

/// Every backend executable on this CPU, portable first.
std::vector<const Backend*> availableBackends();

/// RAII test hook: routes `selectedBackend()` to a specific backend so
/// code that compiles netlists internally (analyzeError, the autoax flow)
/// can be exercised per backend in-process.  Not for concurrent use with
/// compilation on other threads.
class ScopedBackendOverride {
public:
    explicit ScopedBackendOverride(const Backend* backend);
    ~ScopedBackendOverride();
    ScopedBackendOverride(const ScopedBackendOverride&) = delete;
    ScopedBackendOverride& operator=(const ScopedBackendOverride&) = delete;

private:
    const Backend* previous_;
};

/// Resolves an AXF_FORCE_BACKEND value: the named backend, or nullptr
/// after a stderr warning when the name is unknown or the CPU cannot
/// execute it (selection then falls back to auto-detection).  Exposed so
/// the warning path is testable without mutating the process environment.
const Backend* resolveForcedBackend(std::string_view value);

/// Resolves an AXF_FORCE_WIDTH value ("4" / "8" / "16"): the block width
/// in words, or 0 after a stderr warning when the value is not a member of
/// the width set (the chooser then falls back to the footprint heuristic).
std::size_t resolveForcedWidth(std::string_view value);

/// Block width forced via AXF_FORCE_WIDTH, or 0 when unset or invalid.
/// Parsed once per process.
std::size_t forcedWidth();

/// Width override currently installed by ScopedWidthOverride (0 = none).
std::size_t widthOverride();

/// RAII test hook: pins the block width every subsequent
/// `CompiledNetlist::compile` chooses, overriding both the footprint
/// heuristic and AXF_FORCE_WIDTH (an explicit `Options::blockWords` still
/// wins).  Pass 0 to restore automatic choice.  Not for concurrent use
/// with compilation on other threads.
class ScopedWidthOverride {
public:
    explicit ScopedWidthOverride(std::size_t words);
    ~ScopedWidthOverride();
    ScopedWidthOverride(const ScopedWidthOverride&) = delete;
    ScopedWidthOverride& operator=(const ScopedWidthOverride&) = delete;

private:
    std::size_t previous_;
};

/// Per-TU backend accessors; nullptr when the ISA is not compiled in.
/// (Runtime support is checked by the selection logic, not here.)
const Backend* portableBackend();
const Backend* avx2Backend();
const Backend* avx512Backend();
const Backend* neonBackend();

}  // namespace axf::circuit::kernels
