#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

namespace axf::circuit::kernels {

using Word = std::uint64_t;

/// Words per slot of the wide (256-lane) configuration.  Mirrored by
/// `CompiledNetlist::kWordsPerBlock` (static_asserted there): the kernel
/// tables are instantiated for exactly this width plus W=1.
inline constexpr std::size_t kWideWords = 4;
inline constexpr std::size_t kWideLanes = kWideWords * 64;

/// Instruction alphabet of the compiled engine: every logic `GateKind`
/// plus the fused instructions produced by the peephole pass in
/// `CompiledNetlist::compile`.  Fused ops exist so a 2-gate single-use
/// chain costs one dispatch, one destination store and (on AVX-512) a
/// single `vpternlogq` instead of two full workspace round-trips.
enum class OpCode : std::uint8_t {
    Buf,      ///< a
    Not,      ///< ~a
    And,      ///< a & b
    Or,       ///< a | b
    Xor,      ///< a ^ b
    Nand,     ///< ~(a & b)
    Nor,      ///< ~(a | b)
    Xnor,     ///< ~(a ^ b)
    AndNot,   ///< a & ~b
    OrNot,    ///< a | ~b
    Mux,      ///< c ? b : a
    Maj,      ///< majority(a, b, c)
    Xor3,     ///< a ^ b ^ c        (fused full-adder sum)
    MuxNotA,  ///< c ? b : ~a       (fused Not -> Mux data-low)
    MuxNotB,  ///< c ? ~b : a       (fused Not -> Mux data-high)
    HalfAdd,  ///< dst = a ^ b  AND  slot c = a & b  (dual-destination pair)
    And3,     ///< a & b & c        (fused AND-tree level)
    Or3,      ///< a | b | c        (fused OR-compressor level)
};
inline constexpr std::size_t kOpCount = 18;

const char* opCodeName(OpCode op);

/// Operand count of an opcode.  HalfAdd reads a and b; its c field is the
/// second *destination*.  Single source of truth for both the compiler's
/// fusion/scheduling passes and the kernel bodies — a drift between the
/// two would make the compiler emit operands a kernel never reads (or
/// vice versa) with silently wrong results.
constexpr int opFanIn(OpCode op) {
    switch (op) {
        case OpCode::Buf:
        case OpCode::Not: return 1;
        case OpCode::Mux:
        case OpCode::Maj:
        case OpCode::Xor3:
        case OpCode::MuxNotA:
        case OpCode::MuxNotB:
        case OpCode::And3:
        case OpCode::Or3: return 3;
        default: return 2;
    }
}

/// Reference boolean semantics of an opcode's primary result (for HalfAdd
/// that is the *sum*; the carry written to slot `c` is `opCarryEval`).
/// THE single source of truth every executable form must derive from or be
/// checked against: the generic kernel bodies (static_asserted in
/// kernels_generic.inc), the AVX-512 ternlog immediates (computed from
/// `opTruthTable` directly), the `GateKind` lowering (static_asserted in
/// batch_sim.cpp) and the static verifier's fusion-legality check
/// (src/verify re-derives every fused instruction's function from it).
constexpr bool opEval(OpCode op, bool a, bool b, bool c) {
    switch (op) {
        case OpCode::Buf: return a;
        case OpCode::Not: return !a;
        case OpCode::And: return a && b;
        case OpCode::Or: return a || b;
        case OpCode::Xor: return a != b;
        case OpCode::Nand: return !(a && b);
        case OpCode::Nor: return !(a || b);
        case OpCode::Xnor: return a == b;
        case OpCode::AndNot: return a && !b;
        case OpCode::OrNot: return a || !b;
        case OpCode::Mux: return c ? b : a;
        case OpCode::Maj: return (a && b) || (a && c) || (b && c);
        case OpCode::Xor3: return (a != b) != c;
        case OpCode::MuxNotA: return c ? b : !a;
        case OpCode::MuxNotB: return c ? !b : a;
        case OpCode::HalfAdd: return a != b;
        case OpCode::And3: return a && b && c;
        case OpCode::Or3: return a || b || c;
    }
    return false;
}

/// HalfAdd's secondary result, written to the `c` slot.
constexpr bool opCarryEval(bool a, bool b) { return a && b; }

/// 8-entry truth table of the primary result, bit index (a << 2) | (b <<
/// 1) | c — exactly the vpternlogq immediate layout, so the AVX-512
/// backend uses this value as its immediate with no hand-written copy.
constexpr std::uint8_t opTruthTable(OpCode op) {
    std::uint8_t table = 0;
    for (int k = 0; k < 8; ++k)
        if (opEval(op, (k & 4) != 0, (k & 2) != 0, (k & 1) != 0))
            table |= static_cast<std::uint8_t>(1u << k);
    return table;
}

/// One compiled instruction.  Operands are workspace slot indices; for
/// `HalfAdd` the `c` field is the *second destination* (the carry slot),
/// not an operand.
struct Instr {
    OpCode op;
    std::uint32_t dst, a, b, c;
};

/// Evaluates one maximal same-opcode run of `count` instructions against a
/// workspace of (slotCount * W) words.  The instruction pointer addresses
/// the first instruction of the run.
///
/// Chained kernels additionally require (compile guarantees it) that every
/// instruction after the first reads the previous instruction's primary
/// destination as operand `a` — the hot value then rides in a register
/// through the whole run instead of round-tripping through the workspace
/// (the latency killer of ripple-carry-style serial chains).
using KernelFn = void (*)(const Instr* instrs, std::uint32_t count, Word* ws);

/// Decodes `bits` output bit-planes of a wide block (kWideWords words per
/// plane, plane-major) into one integer per lane (kWideLanes lanes).
using Decode16Fn = void (*)(const Word* planes, std::size_t bits, std::uint16_t* out);
using Decode32Fn = void (*)(const Word* planes, std::size_t bits, std::uint32_t* out);

/// Longest run the unrolled ("superblock") kernel variants cover; runs of
/// `n <= kMaxUnroll` instructions dispatch to a fully unrolled template
/// instantiation when the compiled netlist is specialized.
inline constexpr std::uint32_t kMaxUnroll = 4;

/// True when every row of a kernel table is populated.  A brace-init list
/// shorter than `kOpCount` compiles fine (the tail value-initializes to
/// nullptr), so each backend TU static_asserts this over its tables —
/// adding an opcode without extending every row is a build error, not a
/// null-call crash at dispatch time.
constexpr bool tableComplete(const std::array<KernelFn, kOpCount>& table) {
    for (const KernelFn fn : table)
        if (fn == nullptr) return false;
    return true;
}
constexpr bool tableComplete(
    const std::array<std::array<KernelFn, kMaxUnroll>, kOpCount>& table) {
    for (const auto& row : table)
        for (const KernelFn fn : row)
            if (fn == nullptr) return false;
    return true;
}

/// One ISA backend: a complete kernel table selected once per process (or
/// forced per compile).  All backends compute bit-identical results — the
/// tables differ only in instruction selection.
struct Backend {
    const char* name;
    /// Generic per-run kernels, W = kWideWords (256 lanes).
    std::array<KernelFn, kOpCount> wide;
    /// Generic per-run kernels, W = 1 (64 lanes; `Simulator`, activity).
    std::array<KernelFn, kOpCount> narrow;
    /// Fully unrolled straight-line variants for runs of 1..kMaxUnroll
    /// instructions, indexed [op][count - 1]; nullptr falls back to `wide`.
    std::array<std::array<KernelFn, kMaxUnroll>, kOpCount> wideUnrolled;
    /// Register-chained variants (see KernelFn) for runs where each
    /// instruction consumes its predecessor's destination.
    std::array<KernelFn, kOpCount> wideChained;
    std::array<KernelFn, kOpCount> narrowChained;
    Decode16Fn decode16;
    Decode32Fn decode32;
};

/// Backend chosen for this process: the widest ISA the CPU supports
/// (avx512 > avx2 > neon > portable), overridable with AXF_FORCE_BACKEND
/// (values: portable, avx2, avx512, neon).  Forcing a backend the CPU
/// cannot execute throws std::runtime_error at first use.  Detection runs
/// once; the reference stays valid for the process lifetime.
const Backend& selectedBackend();

/// Backend by name, or nullptr when unknown or unsupported on this CPU.
const Backend* backendByName(std::string_view name);

/// Every backend executable on this CPU, portable first.
std::vector<const Backend*> availableBackends();

/// RAII test hook: routes `selectedBackend()` to a specific backend so
/// code that compiles netlists internally (analyzeError, the autoax flow)
/// can be exercised per backend in-process.  Not for concurrent use with
/// compilation on other threads.
class ScopedBackendOverride {
public:
    explicit ScopedBackendOverride(const Backend* backend);
    ~ScopedBackendOverride();
    ScopedBackendOverride(const ScopedBackendOverride&) = delete;
    ScopedBackendOverride& operator=(const ScopedBackendOverride&) = delete;

private:
    const Backend* previous_;
};

/// Per-TU backend accessors; nullptr when the ISA is not compiled in.
/// (Runtime support is checked by the selection logic, not here.)
const Backend* portableBackend();
const Backend* avx2Backend();
const Backend* avx512Backend();
const Backend* neonBackend();

}  // namespace axf::circuit::kernels
