#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/util/bytes.hpp"

namespace axf::circuit {

/// Primitive cell alphabet of the gate-level IR.  The set mirrors the
/// function set used by the EvoApproxLib CGP runs (identity, inversion and
/// all two-input monotone/parity functions) plus a three-input multiplexer
/// used by carry-select style generators.
enum class GateKind : std::uint8_t {
    Input,   ///< primary input (no fan-in)
    Const0,  ///< constant logic 0
    Const1,  ///< constant logic 1
    Buf,     ///< a
    Not,     ///< ~a
    And,     ///< a & b
    Or,      ///< a | b
    Xor,     ///< a ^ b
    Nand,    ///< ~(a & b)
    Nor,     ///< ~(a | b)
    Xnor,    ///< ~(a ^ b)
    AndNot,  ///< a & ~b
    OrNot,   ///< a | ~b
    Mux,     ///< c ? b : a   (c is the select)
    Maj,     ///< majority(a, b, c) — the carry function of a full adder
};

/// Number of fan-in operands a gate of the given kind consumes.
constexpr int fanInCount(GateKind kind) {
    switch (kind) {
        case GateKind::Input:
        case GateKind::Const0:
        case GateKind::Const1: return 0;
        case GateKind::Buf:
        case GateKind::Not: return 1;
        case GateKind::Mux:
        case GateKind::Maj: return 3;
        default: return 2;
    }
}

const char* gateKindName(GateKind kind);

/// Reference boolean semantics of a gate.  Input has no defined function
/// (returns `a` by convention so callers can substitute the bound value);
/// constants ignore all operands.  The compiled engine's opcode semantics
/// (`kernels::opEval`) are static_asserted against this in batch_sim.cpp,
/// and the static verifier (src/verify) evaluates gate cones with it when
/// proving fused instructions legal.
constexpr bool gateEval(GateKind kind, bool a, bool b, bool c) {
    switch (kind) {
        case GateKind::Input: return a;
        case GateKind::Const0: return false;
        case GateKind::Const1: return true;
        case GateKind::Buf: return a;
        case GateKind::Not: return !a;
        case GateKind::And: return a && b;
        case GateKind::Or: return a || b;
        case GateKind::Xor: return a != b;
        case GateKind::Nand: return !(a && b);
        case GateKind::Nor: return !(a || b);
        case GateKind::Xnor: return a == b;
        case GateKind::AndNot: return a && !b;
        case GateKind::OrNot: return a || !b;
        case GateKind::Mux: return c ? b : a;
        case GateKind::Maj: return (a && b) || (a && c) || (b && c);
    }
    return false;
}

/// Index of a node inside its owning Netlist.
using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// One gate instance.  Fan-ins always reference nodes with smaller indices,
/// so the node array is a topological order by construction and a single
/// forward sweep evaluates the whole circuit.
struct Node {
    GateKind kind = GateKind::Const0;
    NodeId a = kInvalidNode;
    NodeId b = kInvalidNode;
    NodeId c = kInvalidNode;
};

/// Value-semantic combinational netlist.
///
/// Invariants (checked by `validate`, maintained by the builder methods):
///  - every fan-in of node `i` is a node index `< i` (DAG, topological order);
///  - `inputs()` lists all Input nodes in creation order;
///  - `outputs()` reference existing nodes.
class Netlist {
public:
    Netlist() = default;
    explicit Netlist(std::string name) : name_(std::move(name)) {}

    /// Appends a primary input and returns its id.
    NodeId addInput();

    /// Appends a constant node.
    NodeId addConst(bool value);

    /// Appends a gate; operand ids must already exist.  Unused operands of
    /// narrow gates are ignored (pass anything, kInvalidNode preferred).
    NodeId addGate(GateKind kind, NodeId a, NodeId b = kInvalidNode, NodeId c = kInvalidNode);

    /// Registers a node as the next primary output (outputs are ordered).
    void markOutput(NodeId id);

    // --- observers -------------------------------------------------------
    const std::string& name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    std::size_t nodeCount() const { return nodes_.size(); }
    /// Number of logic gates (excludes inputs and constants).
    std::size_t gateCount() const { return gateCount_; }
    std::size_t inputCount() const { return inputs_.size(); }
    std::size_t outputCount() const { return outputs_.size(); }

    const Node& node(NodeId id) const { return nodes_[id]; }
    std::span<const Node> nodes() const { return nodes_; }
    std::span<const NodeId> inputs() const { return inputs_; }
    std::span<const NodeId> outputs() const { return outputs_; }

    /// Logic level of every node (inputs/constants at level 0).
    std::vector<int> levels() const;
    /// Maximum logic level over the primary outputs (0 for wire-only nets).
    int depth() const;
    /// Fan-out count of every node (references from gates and outputs).
    std::vector<int> fanouts() const;

    /// Throws std::logic_error when a structural invariant is broken.
    void validate() const;

    /// Returns a copy containing only the cone of logic reachable from the
    /// outputs, preserving input and output order.  Inputs are always kept
    /// (an arithmetic circuit keeps its interface even when an operand bit
    /// is ignored by the approximation).
    Netlist pruned() const;

    /// Order-sensitive structural hash (used for library deduplication).
    std::uint64_t structuralHash() const;

    /// Fixed-order binary encoding (name, nodes, outputs) for the
    /// characterization cache.
    void serialize(util::ByteWriter& out) const;
    /// Rebuilds a netlist written by `serialize` through the builder API,
    /// so every structural invariant is re-validated; nullopt on truncated
    /// or invariant-breaking input.
    static std::optional<Netlist> deserialize(util::ByteReader& in);

private:
    std::string name_;
    std::vector<Node> nodes_;
    std::vector<NodeId> inputs_;
    std::vector<NodeId> outputs_;
    std::size_t gateCount_ = 0;

    void checkOperand(NodeId id) const;
};

}  // namespace axf::circuit
