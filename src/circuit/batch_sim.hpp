#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "src/circuit/kernels.hpp"
#include "src/circuit/netlist.hpp"

namespace axf::circuit {

/// A `Netlist` lowered once into a flat instruction stream for repeated
/// evaluation: dead nodes pruned (unless preservation is requested), slots
/// compacted, constants hoisted out of the sweep entirely, and — in the
/// pruned configuration — single-use 2-gate chains peephole-fused into the
/// extended `kernels::OpCode` alphabet (Not absorption into And/Or/Xor/…,
/// associative Xor/And/Or tree levels into `Xor3`/`And3`/`Or3`, Xor+And
/// carry pairs into dual-destination `HalfAdd`, Mux operand-inversion
/// variants).  The compiled form is
/// immutable and sharable — one `CompiledNetlist` can back any number of
/// `BatchSimulator` workspaces (e.g. one per worker thread).
///
/// Evaluation is driven by a kernel *plan*: one pre-resolved function
/// pointer per maximal same-opcode run, snapshot against a
/// `kernels::Backend` (runtime CPU dispatch: AVX-512 / AVX2 / NEON /
/// portable) at compile() time.  Every backend computes bit-identical
/// results; only instruction selection differs.
///
/// Instruction operands are *slot* indices into a workspace of
/// `slotCount() * W` words, where `W` is the number of 64-bit words carried
/// per slot.  `run<W>()` evaluates one block of `W * 64` independent lanes;
/// the per-gate dispatch is amortized over the W words and over whole
/// same-opcode runs.
class CompiledNetlist {
public:
    using Word = std::uint64_t;

    /// Upper bound of the wide width set (see `kernels::kWideWidths`): the
    /// sizing constant for width-agnostic buffers.  Each compiled program
    /// additionally carries a *chosen* block width (`blockWords()`, 4 / 8 /
    /// 16 words = 256 / 512 / 1024 lanes per sweep) picked at compile()
    /// time — from `Options::blockWords`, `kernels::ScopedWidthOverride`,
    /// `AXF_FORCE_WIDTH`, or a workspace-footprint heuristic, in that
    /// priority order — which sizes its `BatchSimulator` workspaces.  The
    /// program remains runnable at every width in the set, and results are
    /// bit-identical across all of them: width is an execution-shape knob,
    /// never a semantic one.
    static constexpr std::size_t kMaxWordsPerBlock = kernels::kMaxWideWords;
    static constexpr std::size_t kMaxLanesPerBlock = kernels::kMaxWideLanes;

    /// Programs at or below this instruction count are specialized
    /// automatically: short runs dispatch to fully unrolled straight-line
    /// kernel instantiations (the "superblock" plan).
    static constexpr std::size_t kAutoSpecializeInstructions = 256;

    struct Options {
        /// Drop gates outside the output cone.  Disable when per-node
        /// values of *every* node are needed (slot == node id then; this
        /// also disables opcode fusion, which would merge nodes away).
        bool pruneDead = true;
        /// Peephole-fuse single-use gate chains (pruned compiles only).
        bool fuseOps = true;
        /// Kernel backend to resolve the plan against; nullptr selects the
        /// process-wide `kernels::selectedBackend()`.
        const kernels::Backend* backend = nullptr;
        /// Block width in words (4 / 8 / 16) for this program's
        /// `BatchSimulator` workspaces; 0 picks automatically (override
        /// hooks, then the footprint heuristic).
        std::size_t blockWords = 0;
    };

    /// Compile-time shape of the program, for observability (printed by
    /// the benches so fusion/dispatch wins stay visible per PR).
    struct Stats {
        std::size_t instructions = 0;  ///< emitted instructions (post-fusion)
        std::size_t runs = 0;          ///< same-opcode dispatch groups
        std::size_t longestRun = 0;    ///< instructions in the largest run
        std::size_t chainedRuns = 0;   ///< runs using register-chained kernels
        std::size_t fusedOps = 0;      ///< peephole rewrites applied
        std::size_t gatesFused = 0;    ///< live gates folded away by fusion
        const char* backend = "";      ///< kernel backend the plan resolves to
        std::size_t blockWords = 0;    ///< chosen block width (words per slot)
        bool specialized = false;      ///< unrolled straight-line plan active
    };

    /// Maximal run of same-opcode instructions: the evaluator dispatches
    /// once per run, not once per gate.  Compile sorts gates of equal
    /// logic level by opcode (legal: every fan-in lives in a lower level)
    /// so structured circuits collapse into a handful of long runs.
    struct Run {
        kernels::OpCode op;
        std::uint32_t begin, end;  ///< [begin, end) into instructions()
        /// Every instruction after the first reads its predecessor's
        /// destination as operand a: dispatches to the chained kernels.
        bool chained = false;
    };

    CompiledNetlist() = default;

    static CompiledNetlist compile(const Netlist& netlist, Options options);
    static CompiledNetlist compile(const Netlist& netlist) {
        return compile(netlist, Options{});
    }

    std::size_t slotCount() const { return slotCount_; }
    std::size_t inputCount() const { return inputSlots_.size(); }
    std::size_t outputCount() const { return outputSlots_.size(); }
    std::size_t instructionCount() const { return instrs_.size(); }
    /// True when compiled with pruneDead=false: slot i holds node i.
    bool preservesAllNodes() const { return allNodes_; }

    /// Read-only views of the lowered program, used by the fault-injection
    /// engine (src/fault) to enumerate fault sites and compute fan-out
    /// cones over workspace slots.
    std::span<const kernels::Instr> instructions() const { return instrs_; }
    std::span<const std::uint32_t> inputSlots() const { return inputSlots_; }
    std::span<const std::uint32_t> outputSlots() const { return outputSlots_; }
    /// Source-netlist node held by each workspace slot (indexed by slot).
    std::span<const NodeId> slotNodes() const { return slotNode_; }
    /// The schedule: maximal same-opcode runs partitioning instructions(),
    /// with the chain claims the plan's kernel selection relies on.  The
    /// static verifier (src/verify) re-checks every claim against the
    /// instruction stream.
    std::span<const Run> runs() const { return runs_; }
    /// Hoisted constant slots and their values (written once by
    /// initWorkspace, never touched by run()).
    std::span<const std::pair<std::uint32_t, bool>> constantSlots() const { return constants_; }
    const kernels::Backend& backend() const { return *backend_; }

    /// Block width chosen for this program (words per slot: 4, 8 or 16)
    /// and its lane count per sweep.  Purely an execution-shape choice:
    /// `run<W>` stays valid — and bit-identical — at every width.
    std::size_t blockWords() const { return blockWords_; }
    std::size_t blockLanes() const { return blockWords_ * 64; }

    Stats stats() const;

    /// Rebuilds the kernel plan with the unrolled short-run ("superblock")
    /// variants.  compile() applies this automatically at or below
    /// kAutoSpecializeInstructions; calling it on larger programs forces
    /// the straight-line plan.  Idempotent; results are bit-identical.
    void specialize();
    bool specialized() const { return specialized_; }

    std::size_t workspaceWords(std::size_t wordsPerSlot) const {
        return slotCount_ * wordsPerSlot;
    }

    /// Writes the constant-node words (done once per workspace; constants
    /// are never re-evaluated inside `run`).
    void initWorkspace(std::span<Word> workspace, std::size_t wordsPerSlot) const;

    /// Evaluates one block of W*64 lanes, W in {1, 4, 8, 16}.  `inputs` is
    /// input-major (`inputCount() * W` words: input i occupies [i*W,
    /// i*W+W)), `outputs` likewise.  `workspace` must hold
    /// `workspaceWords(W)` words, be aligned to `W * sizeof(Word)` bytes
    /// (the kernels use whole-slot vector accesses; `BatchSimulator`
    /// 128-byte-aligns its workspace so every width's slots stay
    /// cache-line-clean) and have been initialized with `initWorkspace`
    /// once.  The input/output buffers carry no alignment requirement.
    template <std::size_t W>
    void run(const Word* inputs, Word* outputs, Word* workspace) const;

    /// A stuck-at override applied during `runWithFaults`: after the write
    /// of instruction `afterInstr` (or after the input block copy when
    /// `afterInstr == kFaultAtInputs`), slot `slot` is forced to the stuck
    /// value on every lane selected by `mask` (only the first W words of
    /// the mask are consulted for a width-W run).
    struct InjectedFault {
        std::uint32_t afterInstr = 0;
        std::uint32_t slot = 0;
        std::array<Word, kMaxWordsPerBlock> mask{};
        bool stuckTo = false;
    };
    /// `afterInstr` sentinel for faults on primary-input slots.
    static constexpr std::uint32_t kFaultAtInputs = 0xFFFFFFFFu;

    /// `run<W>` with stuck-at overrides.  `faults` must be ordered with
    /// input-stage faults first, then ascending `afterInstr` (several
    /// faults may share one instruction).  Fault-free runs dispatch through
    /// the pre-resolved plan exactly like `run`; a run containing a fault
    /// boundary is split into sub-ranges driven through the backend's
    /// generic kernels, which compute bit-identical results on any
    /// contiguous sub-range.  With an empty fault list this is exactly
    /// `run<W>`.
    template <std::size_t W>
    void runWithFaults(const Word* inputs, Word* outputs, Word* workspace,
                       std::span<const InjectedFault> faults) const;

private:
    /// One plan entry per run: kernels pre-resolved against `backend_`,
    /// one per wide width (indexed by `kernels::widthIndex`) plus the
    /// narrow W = 1 variant — so a single compiled program dispatches at
    /// any width without re-planning.
    struct PlannedRun {
        std::array<kernels::KernelFn, kernels::kWidthCount> wide;
        kernels::KernelFn narrow;
        std::uint32_t begin, count;
    };

    void buildPlan();

    std::vector<kernels::Instr> instrs_;
    std::vector<Run> runs_;
    std::vector<PlannedRun> plan_;
    std::vector<std::uint32_t> inputSlots_;
    std::vector<std::uint32_t> outputSlots_;
    std::vector<NodeId> slotNode_;
    std::vector<std::pair<std::uint32_t, bool>> constants_;
    std::size_t slotCount_ = 0;
    std::size_t blockWords_ = kernels::kBaseWideWords;
    std::size_t fusedOps_ = 0;
    std::size_t gatesFused_ = 0;
    const kernels::Backend* backend_ = nullptr;
    bool allNodes_ = false;
    bool specialized_ = false;
};

/// Multi-word evaluator: carries `blockLanes()` (256 / 512 / 1024,
/// following the compiled program's chosen width) independent test vectors
/// per sweep over a shared `CompiledNetlist`.  Owns the workspace, so a
/// single instance is not thread-safe; create one per thread (the compiled
/// netlist itself is immutable and freely shared).
class BatchSimulator {
public:
    using Word = CompiledNetlist::Word;
    static constexpr std::size_t kMaxWordsPerBlock = CompiledNetlist::kMaxWordsPerBlock;
    static constexpr std::size_t kMaxLanesPerBlock = CompiledNetlist::kMaxLanesPerBlock;

    explicit BatchSimulator(const CompiledNetlist& compiled)
        : compiled_(&compiled),
          storage_(compiled.workspaceWords(compiled.blockWords()) + kAlignWords, 0) {
        // 128-byte-align the workspace: slots are up to 128-byte regions
        // (W = 16), and a lesser-aligned base would make wide slots
        // straddle cache lines (split vector loads/stores on every gate).
        std::size_t misalign =
            reinterpret_cast<std::uintptr_t>(storage_.data()) % (kAlignWords * sizeof(Word));
        workspace_ = storage_.data() + (misalign ? kAlignWords - misalign / sizeof(Word) : 0);
        compiled.initWorkspace({workspace_, compiled.workspaceWords(compiled.blockWords())},
                               compiled.blockWords());
    }

    // The aligned view points into storage_: moves keep it valid (the heap
    // buffer does not move), copies would not.
    BatchSimulator(const BatchSimulator&) = delete;
    BatchSimulator& operator=(const BatchSimulator&) = delete;
    BatchSimulator(BatchSimulator&&) = default;
    BatchSimulator& operator=(BatchSimulator&&) = default;

    /// Block shape this workspace is sized for (the compiled program's
    /// chosen width).
    std::size_t blockWords() const { return compiled_->blockWords(); }
    std::size_t blockLanes() const { return compiled_->blockLanes(); }

    /// Evaluates one `blockLanes()`-lane block.  `inputWords` holds
    /// `inputCount() * blockWords()` words input-major; `outputWords`
    /// receives `outputCount() * blockWords()` words output-major.
    void evaluate(std::span<const Word> inputWords, std::span<Word> outputWords);

    /// Rebinds this workspace to a different compiled program, reusing the
    /// existing allocation whenever it is large enough.  This is the
    /// workspace-reuse hook for evaluation loops that sweep many programs
    /// (e.g. one accelerator config after another) with one per-thread
    /// scratch: rebinding to the program already bound is free.
    void rebind(const CompiledNetlist& compiled);

    const CompiledNetlist& compiled() const { return *compiled_; }

private:
    static constexpr std::size_t kAlignWords = 16;  ///< 128 bytes

    const CompiledNetlist* compiled_;
    std::vector<Word> storage_;
    Word* workspace_ = nullptr;  ///< 128-byte-aligned view into storage_
};

/// Lane patterns of the low six bits of an exhaustively enumerated input
/// index: bit k of lane L equals bit k of L.
inline constexpr std::array<CompiledNetlist::Word, 6> kExhaustiveLanePattern = {
    0xAAAAAAAAAAAAAAAAull, 0xCCCCCCCCCCCCCCCCull, 0xF0F0F0F0F0F0F0F0ull,
    0xFF00FF00FF00FF00ull, 0xFFFF0000FFFF0000ull, 0xFFFFFFFF00000000ull};

/// Fills an input-major block (`totalBits * W` words) so that lane L of the
/// block carries input index `base + L`, for W words of 64 lanes each.
/// `base` must be a multiple of `W * 64`.
template <std::size_t W>
inline void fillExhaustiveBlock(std::span<CompiledNetlist::Word> inputWords, int totalBits,
                                std::uint64_t base) {
    using Word = CompiledNetlist::Word;
    for (int bit = 0; bit < totalBits; ++bit) {
        Word* words = inputWords.data() + static_cast<std::size_t>(bit) * W;
        if (bit < 6) {
            for (std::size_t w = 0; w < W; ++w) words[w] = kExhaustiveLanePattern[static_cast<std::size_t>(bit)];
        } else if (static_cast<std::uint64_t>(1) << (bit - 6) < W) {
            // Bits addressing the word index inside the block.
            for (std::size_t w = 0; w < W; ++w)
                words[w] = (w >> (bit - 6)) & 1u ? ~Word{0} : Word{0};
        } else {
            const Word v = (base >> bit) & 1u ? ~Word{0} : Word{0};
            for (std::size_t w = 0; w < W; ++w) words[w] = v;
        }
    }
}

/// Runtime-width overload for call sites driven by a compiled program's
/// `blockWords()`.  Bit-identical to the template at every width.
inline void fillExhaustiveBlock(std::span<CompiledNetlist::Word> inputWords, int totalBits,
                                std::uint64_t base, std::size_t blockWords) {
    using Word = CompiledNetlist::Word;
    for (int bit = 0; bit < totalBits; ++bit) {
        Word* words = inputWords.data() + static_cast<std::size_t>(bit) * blockWords;
        if (bit < 6) {
            for (std::size_t w = 0; w < blockWords; ++w)
                words[w] = kExhaustiveLanePattern[static_cast<std::size_t>(bit)];
        } else if (static_cast<std::uint64_t>(1) << (bit - 6) < blockWords) {
            for (std::size_t w = 0; w < blockWords; ++w)
                words[w] = (w >> (bit - 6)) & 1u ? ~Word{0} : Word{0};
        } else {
            const Word v = (base >> bit) & 1u ? ~Word{0} : Word{0};
            for (std::size_t w = 0; w < blockWords; ++w) words[w] = v;
        }
    }
}

}  // namespace axf::circuit
