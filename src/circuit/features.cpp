#include "src/circuit/features.hpp"

#include <algorithm>
#include <map>

namespace axf::circuit {

std::vector<double> StructuralFeatures::toVector() const {
    return {gateCount,    nodeCount,  inputCount,  outputCount, andClassCount,
            orClassCount, xorClassCount, inverterCount, muxMajCount, depth,
            meanLevel,    meanFanout, maxFanout,   outputLevelSum, wideGateLevels};
}

const std::vector<std::string>& StructuralFeatures::names() {
    static const std::vector<std::string> kNames = {
        "gates",      "nodes",     "inputs",     "outputs",   "and_class",
        "or_class",   "xor_class", "inverters",  "mux_maj",   "depth",
        "mean_level", "mean_fanout", "max_fanout", "out_level_sum", "wide_levels"};
    return kNames;
}

std::size_t StructuralFeatures::dimension() { return names().size(); }

StructuralFeatures extractFeatures(const Netlist& netlist) {
    StructuralFeatures f;
    f.gateCount = static_cast<double>(netlist.gateCount());
    f.nodeCount = static_cast<double>(netlist.nodeCount());
    f.inputCount = static_cast<double>(netlist.inputCount());
    f.outputCount = static_cast<double>(netlist.outputCount());

    const std::vector<int> level = netlist.levels();
    const std::vector<int> fanout = netlist.fanouts();

    double levelSum = 0.0;
    std::size_t gates = 0;
    std::map<int, int> gatesPerLevel;
    for (std::size_t i = 0; i < netlist.nodeCount(); ++i) {
        const Node& n = netlist.node(static_cast<NodeId>(i));
        switch (n.kind) {
            case GateKind::And:
            case GateKind::Nand:
            case GateKind::AndNot: f.andClassCount += 1.0; break;
            case GateKind::Or:
            case GateKind::Nor:
            case GateKind::OrNot: f.orClassCount += 1.0; break;
            case GateKind::Xor:
            case GateKind::Xnor: f.xorClassCount += 1.0; break;
            case GateKind::Not:
            case GateKind::Buf: f.inverterCount += 1.0; break;
            case GateKind::Mux:
            case GateKind::Maj: f.muxMajCount += 1.0; break;
            default: break;
        }
        if (fanInCount(n.kind) > 0) {
            levelSum += level[i];
            ++gates;
            ++gatesPerLevel[level[i]];
        }
    }
    f.depth = netlist.depth();
    f.meanLevel = gates == 0 ? 0.0 : levelSum / static_cast<double>(gates);

    double fanoutSum = 0.0;
    int fanoutMax = 0;
    for (int fo : fanout) {
        fanoutSum += fo;
        fanoutMax = std::max(fanoutMax, fo);
    }
    f.meanFanout =
        netlist.nodeCount() == 0 ? 0.0 : fanoutSum / static_cast<double>(netlist.nodeCount());
    f.maxFanout = fanoutMax;

    for (NodeId out : netlist.outputs()) f.outputLevelSum += level[out];
    for (const auto& [lvl, count] : gatesPerLevel)
        if (count >= 4) f.wideGateLevels += 1.0;
    return f;
}

}  // namespace axf::circuit
