#include "src/circuit/netlist.hpp"

#include <algorithm>
#include <stdexcept>

namespace axf::circuit {

const char* gateKindName(GateKind kind) {
    switch (kind) {
        case GateKind::Input: return "input";
        case GateKind::Const0: return "const0";
        case GateKind::Const1: return "const1";
        case GateKind::Buf: return "buf";
        case GateKind::Not: return "not";
        case GateKind::And: return "and";
        case GateKind::Or: return "or";
        case GateKind::Xor: return "xor";
        case GateKind::Nand: return "nand";
        case GateKind::Nor: return "nor";
        case GateKind::Xnor: return "xnor";
        case GateKind::AndNot: return "andnot";
        case GateKind::OrNot: return "ornot";
        case GateKind::Mux: return "mux";
        case GateKind::Maj: return "maj";
    }
    return "?";
}

void Netlist::checkOperand(NodeId id) const {
    if (id >= nodes_.size()) throw std::out_of_range("Netlist: operand does not exist yet");
}

NodeId Netlist::addInput() {
    const auto id = static_cast<NodeId>(nodes_.size());
    nodes_.push_back(Node{GateKind::Input, kInvalidNode, kInvalidNode, kInvalidNode});
    inputs_.push_back(id);
    return id;
}

NodeId Netlist::addConst(bool value) {
    const auto id = static_cast<NodeId>(nodes_.size());
    nodes_.push_back(Node{value ? GateKind::Const1 : GateKind::Const0, kInvalidNode,
                          kInvalidNode, kInvalidNode});
    return id;
}

NodeId Netlist::addGate(GateKind kind, NodeId a, NodeId b, NodeId c) {
    const int arity = fanInCount(kind);
    if (arity == 0)
        throw std::invalid_argument("Netlist::addGate: use addInput/addConst for sources");
    checkOperand(a);
    if (arity >= 2) checkOperand(b);
    if (arity >= 3) checkOperand(c);
    Node node;
    node.kind = kind;
    node.a = a;
    node.b = arity >= 2 ? b : kInvalidNode;
    node.c = arity >= 3 ? c : kInvalidNode;
    const auto id = static_cast<NodeId>(nodes_.size());
    nodes_.push_back(node);
    ++gateCount_;
    return id;
}

void Netlist::markOutput(NodeId id) {
    checkOperand(id);
    outputs_.push_back(id);
}

std::vector<int> Netlist::levels() const {
    std::vector<int> level(nodes_.size(), 0);
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        const Node& n = nodes_[i];
        const int arity = fanInCount(n.kind);
        int lvl = 0;
        if (arity >= 1) lvl = std::max(lvl, level[n.a] + 1);
        if (arity >= 2) lvl = std::max(lvl, level[n.b] + 1);
        if (arity >= 3) lvl = std::max(lvl, level[n.c] + 1);
        level[i] = lvl;
    }
    return level;
}

int Netlist::depth() const {
    const std::vector<int> level = levels();
    int d = 0;
    for (NodeId out : outputs_) d = std::max(d, level[out]);
    return d;
}

std::vector<int> Netlist::fanouts() const {
    std::vector<int> fo(nodes_.size(), 0);
    for (const Node& n : nodes_) {
        const int arity = fanInCount(n.kind);
        if (arity >= 1) ++fo[n.a];
        if (arity >= 2) ++fo[n.b];
        if (arity >= 3) ++fo[n.c];
    }
    for (NodeId out : outputs_) ++fo[out];
    return fo;
}

void Netlist::validate() const {
    std::size_t inputsSeen = 0;
    std::size_t gatesSeen = 0;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        const Node& n = nodes_[i];
        const int arity = fanInCount(n.kind);
        if (arity >= 1 && n.a >= i) throw std::logic_error("Netlist: fan-in a not topological");
        if (arity >= 2 && n.b >= i) throw std::logic_error("Netlist: fan-in b not topological");
        if (arity >= 3 && n.c >= i) throw std::logic_error("Netlist: fan-in c not topological");
        if (n.kind == GateKind::Input) ++inputsSeen;
        if (arity > 0) ++gatesSeen;
    }
    if (inputsSeen != inputs_.size()) throw std::logic_error("Netlist: input list inconsistent");
    if (gatesSeen != gateCount_) throw std::logic_error("Netlist: gate count inconsistent");
    for (NodeId in : inputs_)
        if (in >= nodes_.size() || nodes_[in].kind != GateKind::Input)
            throw std::logic_error("Netlist: input list references non-input");
    for (NodeId out : outputs_)
        if (out >= nodes_.size()) throw std::logic_error("Netlist: dangling output");
}

Netlist Netlist::pruned() const {
    std::vector<bool> live(nodes_.size(), false);
    for (NodeId out : outputs_) live[out] = true;
    for (std::size_t i = nodes_.size(); i-- > 0;) {
        if (!live[i]) continue;
        const Node& n = nodes_[i];
        const int arity = fanInCount(n.kind);
        if (arity >= 1) live[n.a] = true;
        if (arity >= 2) live[n.b] = true;
        if (arity >= 3) live[n.c] = true;
    }
    // The primary-input interface is preserved even for dead operand bits.
    for (NodeId in : inputs_) live[in] = true;

    std::vector<NodeId> remap(nodes_.size(), kInvalidNode);
    Netlist out(name_);
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (!live[i]) continue;
        const Node& n = nodes_[i];
        switch (fanInCount(n.kind)) {
            case 0:
                remap[i] = n.kind == GateKind::Input ? out.addInput()
                                                     : out.addConst(n.kind == GateKind::Const1);
                break;
            case 1: remap[i] = out.addGate(n.kind, remap[n.a]); break;
            case 2: remap[i] = out.addGate(n.kind, remap[n.a], remap[n.b]); break;
            default: remap[i] = out.addGate(n.kind, remap[n.a], remap[n.b], remap[n.c]); break;
        }
    }
    for (NodeId o : outputs_) out.markOutput(remap[o]);
    return out;
}

void Netlist::serialize(util::ByteWriter& out) const {
    out.u32(static_cast<std::uint32_t>(name_.size()));
    out.raw(name_.data(), name_.size());
    out.u32(static_cast<std::uint32_t>(nodes_.size()));
    for (const Node& node : nodes_) {
        out.u8(static_cast<std::uint8_t>(node.kind));
        const int arity = fanInCount(node.kind);
        if (arity >= 1) out.u32(node.a);
        if (arity >= 2) out.u32(node.b);
        if (arity >= 3) out.u32(node.c);
    }
    out.u32(static_cast<std::uint32_t>(outputs_.size()));
    for (NodeId id : outputs_) out.u32(id);
}

std::optional<Netlist> Netlist::deserialize(util::ByteReader& in) {
    std::uint32_t nameLen = 0;
    if (!in.u32(nameLen) || in.remaining() < nameLen) return std::nullopt;
    std::string name(nameLen, '\0');
    in.raw(name.data(), nameLen);

    Netlist net(std::move(name));
    std::uint32_t nodeCount = 0;
    // Each serialized node occupies at least one byte, so `remaining()`
    // bounds the plausible count — a corrupt length cannot trigger a huge
    // allocation before the rebuild loop fails.
    if (!in.u32(nodeCount) || in.remaining() < nodeCount) return std::nullopt;
    try {
        for (std::uint32_t i = 0; i < nodeCount; ++i) {
            std::uint8_t kindByte = 0;
            if (!in.u8(kindByte) || kindByte > static_cast<std::uint8_t>(GateKind::Maj))
                return std::nullopt;
            const GateKind kind = static_cast<GateKind>(kindByte);
            NodeId a = kInvalidNode, b = kInvalidNode, c = kInvalidNode;
            const int arity = fanInCount(kind);
            if (arity >= 1) in.u32(a);
            if (arity >= 2) in.u32(b);
            if (arity >= 3) in.u32(c);
            if (!in.ok()) return std::nullopt;
            if (kind == GateKind::Input)
                net.addInput();
            else if (kind == GateKind::Const0 || kind == GateKind::Const1)
                net.addConst(kind == GateKind::Const1);
            else
                net.addGate(kind, a, b, c);
        }
        std::uint32_t outputCount = 0;
        if (!in.u32(outputCount) || in.remaining() < outputCount * 4ull) return std::nullopt;
        for (std::uint32_t i = 0; i < outputCount; ++i) {
            NodeId id = kInvalidNode;
            in.u32(id);
            net.markOutput(id);
        }
    } catch (const std::logic_error&) {
        return std::nullopt;  // corrupt operand reference
    }
    return in.ok() ? std::optional<Netlist>(std::move(net)) : std::nullopt;
}

std::uint64_t Netlist::structuralHash() const {
    // FNV-1a over the node stream plus the output list.  Order-sensitive,
    // which is exactly what library deduplication needs: CGP decode emits
    // live nodes in a canonical order, so identical structures collide.
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
    };
    for (const Node& n : nodes_) {
        mix(static_cast<std::uint64_t>(n.kind));
        mix(n.a);
        mix(n.b);
        mix(n.c);
    }
    mix(0xDEADBEEFull);
    for (NodeId out : outputs_) mix(out);
    return h;
}

}  // namespace axf::circuit
