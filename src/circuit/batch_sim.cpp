#include "src/circuit/batch_sim.hpp"

#include <algorithm>
#include <stdexcept>

namespace axf::circuit {

CompiledNetlist CompiledNetlist::compile(const Netlist& netlist, Options options) {
    const std::span<const Node> nodes = netlist.nodes();

    std::vector<bool> live(nodes.size(), !options.pruneDead);
    if (options.pruneDead) {
        for (NodeId out : netlist.outputs()) live[out] = true;
        for (std::size_t i = nodes.size(); i-- > 0;) {
            if (!live[i]) continue;
            const Node& n = nodes[i];
            const int fanIn = fanInCount(n.kind);
            if (fanIn >= 1) live[n.a] = true;
            if (fanIn >= 2) live[n.b] = true;
            if (fanIn >= 3) live[n.c] = true;
        }
        // The arithmetic interface survives approximation: inputs keep
        // their slots even when the logic ignores them.
        for (NodeId in : netlist.inputs()) live[in] = true;
    }

    CompiledNetlist compiled;
    compiled.allNodes_ = !options.pruneDead;

    std::vector<std::uint32_t> slotOf(nodes.size(), 0);
    std::uint32_t nextSlot = 0;
    for (std::size_t i = 0; i < nodes.size(); ++i)
        if (live[i]) slotOf[i] = nextSlot++;
    compiled.slotCount_ = nextSlot;

    // Gate emission order: (logic level, opcode, node id).  Any order that
    // respects levels is topologically valid; grouping equal opcodes turns
    // the per-gate switch into a per-run switch.
    const std::vector<int> levels = netlist.levels();
    std::vector<std::uint32_t> gateNodes;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (!live[i]) continue;
        switch (nodes[i].kind) {
            case GateKind::Input: break;  // loaded from the input block
            case GateKind::Const0: compiled.constants_.emplace_back(slotOf[i], false); break;
            case GateKind::Const1: compiled.constants_.emplace_back(slotOf[i], true); break;
            default: gateNodes.push_back(static_cast<std::uint32_t>(i)); break;
        }
    }
    std::sort(gateNodes.begin(), gateNodes.end(), [&](std::uint32_t x, std::uint32_t y) {
        if (levels[x] != levels[y]) return levels[x] < levels[y];
        if (nodes[x].kind != nodes[y].kind) return nodes[x].kind < nodes[y].kind;
        return x < y;
    });
    compiled.instrs_.reserve(gateNodes.size());
    for (const std::uint32_t i : gateNodes) {
        const Node& n = nodes[i];
        const int fanIn = fanInCount(n.kind);
        Instr ins;
        ins.op = n.kind;
        ins.dst = slotOf[i];
        ins.a = slotOf[n.a];
        ins.b = fanIn >= 2 ? slotOf[n.b] : 0;
        ins.c = fanIn >= 3 ? slotOf[n.c] : 0;
        if (compiled.runs_.empty() || compiled.runs_.back().op != n.kind)
            compiled.runs_.push_back({n.kind, static_cast<std::uint32_t>(compiled.instrs_.size()),
                                      static_cast<std::uint32_t>(compiled.instrs_.size())});
        compiled.instrs_.push_back(ins);
        ++compiled.runs_.back().end;
    }
    compiled.inputSlots_.reserve(netlist.inputCount());
    for (NodeId in : netlist.inputs()) compiled.inputSlots_.push_back(slotOf[in]);
    compiled.outputSlots_.reserve(netlist.outputCount());
    for (NodeId out : netlist.outputs()) compiled.outputSlots_.push_back(slotOf[out]);
    return compiled;
}

void CompiledNetlist::initWorkspace(std::span<Word> workspace, std::size_t wordsPerSlot) const {
    if (workspace.size() < workspaceWords(wordsPerSlot))
        throw std::invalid_argument("CompiledNetlist::initWorkspace: workspace too small");
    for (const auto& [slot, value] : constants_) {
        Word* words = workspace.data() + static_cast<std::size_t>(slot) * wordsPerSlot;
        for (std::size_t w = 0; w < wordsPerSlot; ++w) words[w] = value ? ~Word{0} : Word{0};
    }
}

namespace {

/// One workspace slot as a single SIMD value.  GCC/Clang lower the vector
/// type to the widest available ISA (one zmm op for W=4 under AVX-512);
/// the auto-vectorizer does NOT reliably do this for the equivalent
/// 4-iteration scalar loop.  `may_alias` licenses viewing the Word
/// workspace through the vector type.
template <std::size_t W>
struct SlotVec {
    typedef CompiledNetlist::Word type
        __attribute__((vector_size(W * sizeof(CompiledNetlist::Word)), may_alias, aligned(8)));
};

}  // namespace

template <std::size_t W>
void CompiledNetlist::run(const Word* inputs, Word* outputs, Word* ws) const {
    using V = typename SlotVec<W>::type;
    const auto slot = [ws](std::uint32_t s) {
        return reinterpret_cast<V*>(ws + static_cast<std::size_t>(s) * W);
    };
    const std::uint32_t* inSlots = inputSlots_.data();
    for (std::size_t i = 0; i < inputSlots_.size(); ++i)
        *slot(inSlots[i]) = *reinterpret_cast<const V*>(inputs + i * W);
    const Instr* instrs = instrs_.data();
    for (const Run& run : runs_) {
        // One dispatch per same-opcode run; the run loops are tight
        // two-load/op/store kernels over whole W-word slots.
        switch (run.op) {
#define AXF_RUN(KIND, EXPR)                                                      \
    case GateKind::KIND:                                                         \
        for (std::uint32_t i = run.begin; i < run.end; ++i) {                    \
            const Instr& ins = instrs[i];                                        \
            const V a = *slot(ins.a);                                            \
            const V b [[maybe_unused]] = *slot(ins.b);                           \
            const V c [[maybe_unused]] = *slot(ins.c);                           \
            *slot(ins.dst) = (EXPR);                                             \
        }                                                                        \
        break;
            AXF_RUN(Buf, a)
            AXF_RUN(Not, ~a)
            AXF_RUN(And, a & b)
            AXF_RUN(Or, a | b)
            AXF_RUN(Xor, a ^ b)
            AXF_RUN(Nand, ~(a & b))
            AXF_RUN(Nor, ~(a | b))
            AXF_RUN(Xnor, ~(a ^ b))
            AXF_RUN(AndNot, a & ~b)
            AXF_RUN(OrNot, a | ~b)
            AXF_RUN(Mux, (c & b) | (~c & a))
            AXF_RUN(Maj, (a & b) | (a & c) | (b & c))
#undef AXF_RUN
            case GateKind::Input:
            case GateKind::Const0:
            case GateKind::Const1: break;  // never emitted as instructions
        }
    }
    const std::uint32_t* outSlots = outputSlots_.data();
    for (std::size_t o = 0; o < outputSlots_.size(); ++o)
        *reinterpret_cast<V*>(outputs + o * W) = *slot(outSlots[o]);
}

template void CompiledNetlist::run<1>(const Word*, Word*, Word*) const;
template void CompiledNetlist::run<CompiledNetlist::kWordsPerBlock>(const Word*, Word*,
                                                                    Word*) const;

void BatchSimulator::rebind(const CompiledNetlist& compiled) {
    if (compiled_ == &compiled) return;  // constants already in place
    compiled_ = &compiled;
    const std::size_t needed = compiled.workspaceWords(kWordsPerBlock) + kAlignWords;
    if (storage_.size() < needed) storage_.assign(needed, 0);
    const std::size_t misalign =
        reinterpret_cast<std::uintptr_t>(storage_.data()) % (kAlignWords * sizeof(Word));
    workspace_ = storage_.data() + (misalign ? kAlignWords - misalign / sizeof(Word) : 0);
    compiled.initWorkspace({workspace_, compiled.workspaceWords(kWordsPerBlock)},
                           kWordsPerBlock);
}

void BatchSimulator::evaluate(std::span<const Word> inputWords, std::span<Word> outputWords) {
    if (inputWords.size() != compiled_->inputCount() * kWordsPerBlock)
        throw std::invalid_argument("BatchSimulator: input word count mismatch");
    if (outputWords.size() != compiled_->outputCount() * kWordsPerBlock)
        throw std::invalid_argument("BatchSimulator: output word count mismatch");
    compiled_->run<kWordsPerBlock>(inputWords.data(), outputWords.data(), workspace_);
}

}  // namespace axf::circuit
