#include "src/circuit/batch_sim.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "src/verify/verify.hpp"

namespace axf::circuit {

namespace {

using kernels::Instr;
using kernels::OpCode;

constexpr OpCode toOpCode(GateKind kind) {
    switch (kind) {
        case GateKind::Buf: return OpCode::Buf;
        case GateKind::Not: return OpCode::Not;
        case GateKind::And: return OpCode::And;
        case GateKind::Or: return OpCode::Or;
        case GateKind::Xor: return OpCode::Xor;
        case GateKind::Nand: return OpCode::Nand;
        case GateKind::Nor: return OpCode::Nor;
        case GateKind::Xnor: return OpCode::Xnor;
        case GateKind::AndNot: return OpCode::AndNot;
        case GateKind::OrNot: return OpCode::OrNot;
        case GateKind::Mux: return OpCode::Mux;
        case GateKind::Maj: return OpCode::Maj;
        default: throw std::logic_error("toOpCode: not a logic gate");
    }
}

/// The lowering above is only correct if every logic GateKind and the
/// OpCode it maps to agree on all 8 operand combinations of the shared
/// reference semantics.  Evaluated at compile time so a drift between
/// `gateEval` and `kernels::opEval` is a build error.
constexpr bool gateSemanticsMatchOpcodes() {
    for (int g = static_cast<int>(GateKind::Buf); g <= static_cast<int>(GateKind::Maj); ++g) {
        const GateKind kind = static_cast<GateKind>(g);
        const OpCode op = toOpCode(kind);
        for (int k = 0; k < 8; ++k)
            if (gateEval(kind, (k & 4) != 0, (k & 2) != 0, (k & 1) != 0) !=
                kernels::opEval(op, (k & 4) != 0, (k & 2) != 0, (k & 1) != 0))
                return false;
    }
    return true;
}
static_assert(gateSemanticsMatchOpcodes(),
              "GateKind lowering drifted from the shared opcode semantics");

// Operand counts come from the shared kernels::opFanIn (HalfAdd never
// appears in the pre-emission node table: it is introduced at emission).
using kernels::opFanIn;

/// Complement opcode: dual(op)(a, b) == ~op(a, b), with `swapped` asking
/// for the operands in (b, a) order.  False when no dual exists.
bool dualOf(OpCode op, OpCode& dual, bool& swapped) {
    swapped = false;
    switch (op) {
        case OpCode::Buf: dual = OpCode::Not; return true;
        case OpCode::Not: dual = OpCode::Buf; return true;
        case OpCode::And: dual = OpCode::Nand; return true;
        case OpCode::Nand: dual = OpCode::And; return true;
        case OpCode::Or: dual = OpCode::Nor; return true;
        case OpCode::Nor: dual = OpCode::Or; return true;
        case OpCode::Xor: dual = OpCode::Xnor; return true;
        case OpCode::Xnor: dual = OpCode::Xor; return true;
        // ~(a & ~b) = ~a | b = OrNot(b, a); ~(a | ~b) = ~a & b = AndNot(b, a)
        case OpCode::AndNot: dual = OpCode::OrNot; swapped = true; return true;
        case OpCode::OrNot: dual = OpCode::AndNot; swapped = true; return true;
        default: return false;
    }
}

/// Mutable per-node view of the program during fusion: opcode plus operand
/// *node ids* (slot assignment happens after the pass).
struct NodeOp {
    OpCode op = OpCode::Buf;
    NodeId a = 0, b = 0, c = 0;
    bool gate = false;
};

/// Peephole opcode fusion over the live cone.  Rules (all exact boolean
/// identities, so results stay bit-identical):
///  - Buf read-through: operands reference through copy chains;
///  - output-side inversion: a Not absorbs its single-use producer
///    (And->Nand, Xor->Xnor, AndNot->OrNot, Not->Buf double negation, ...);
///  - Mux select inversion: Mux(a, b, ~x) -> Mux(b, a, x) (always legal);
///  - operand-side inversion: a single-use Not operand folds into the
///    consumer (And->AndNot, Nand->OrNot, both-inverted And->Nor, ...,
///    Mux data operands -> MuxNotA/MuxNotB);
///  - associative-tree widening: Xor/And/Or over a single-use same-kind
///    producer fuses to Xor3/And3/Or3 (full-adder sums, AND trees and
///    OR-compressor levels each cost one instruction per level pair).
/// Every rewrite replaces operands by strictly-lower-level nodes, so the
/// (level, opcode, id) emission order stays topologically valid.
void fusePeephole(const Netlist& netlist, std::vector<NodeOp>& ops,
                  const std::vector<bool>& live, std::size_t& fusedOps) {
    const std::span<const Node> nodes = netlist.nodes();
    std::vector<std::uint32_t> uses(nodes.size(), 0);
    std::vector<bool> isOutput(nodes.size(), false);
    for (NodeId out : netlist.outputs()) {
        ++uses[out];
        isOutput[out] = true;
    }
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (!live[i] || !ops[i].gate) continue;
        const int fan = opFanIn(ops[i].op);
        ++uses[ops[i].a];
        if (fan >= 2) ++uses[ops[i].b];
        if (fan >= 3) ++uses[ops[i].c];
    }

    // True when `edges` references from the current gate are the ONLY
    // remaining references to Not node `t` — absorbing them leaves t dead.
    const auto absorbableNot = [&](NodeId t, std::uint32_t edges) {
        return ops[t].gate && ops[t].op == OpCode::Not && !isOutput[t] && uses[t] == edges;
    };

    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (!live[i] || !ops[i].gate) continue;
        NodeOp& g = ops[i];

        // Buf read-through (any fanout: reading through a copy is free).
        const auto chase = [&](NodeId x) {
            NodeId r = x;
            while (ops[r].gate && ops[r].op == OpCode::Buf) r = ops[r].a;
            if (r != x) {
                --uses[x];
                ++uses[r];
            }
            return r;
        };
        {
            const int fan = opFanIn(g.op);
            g.a = chase(g.a);
            if (fan >= 2) g.b = chase(g.b);
            if (fan >= 3) g.c = chase(g.c);
        }

        // Output-side inversion: this Not is the only consumer of its
        // producer, so the producer flips kind and the Not becomes it.
        if (g.op == OpCode::Not) {
            const NodeId t = g.a;
            OpCode dual;
            bool swapped;
            if (ops[t].gate && !isOutput[t] && uses[t] == 1 &&
                dualOf(ops[t].op, dual, swapped)) {
                const NodeOp p = ops[t];
                const int pf = opFanIn(p.op);
                --uses[t];
                ++uses[p.a];
                if (pf >= 2) ++uses[p.b];
                g.op = dual;
                g.a = (swapped && pf >= 2) ? p.b : p.a;
                if (pf >= 2) g.b = swapped ? p.a : p.b;
                ++fusedOps;
            }
        }

        // Mux select inversion: an inverted select is a data swap.
        if (g.op == OpCode::Mux && ops[g.c].gate && ops[g.c].op == OpCode::Not) {
            const NodeId t = g.c;
            std::swap(g.a, g.b);
            g.c = ops[t].a;
            --uses[t];
            ++uses[g.c];
            ++fusedOps;
        }

        // Operand-side inversion for the two-input alphabet.
        const bool twoInput = g.op == OpCode::And || g.op == OpCode::Or ||
                              g.op == OpCode::Xor || g.op == OpCode::Nand ||
                              g.op == OpCode::Nor || g.op == OpCode::Xnor ||
                              g.op == OpCode::AndNot || g.op == OpCode::OrNot;
        if (twoInput) {
            const NodeId ta = g.a, tb = g.b;
            const bool same = ta == tb;
            const bool invA = absorbableNot(ta, same ? 2u : 1u);
            const bool invB = same ? invA : absorbableNot(tb, 1u);
            if (invA || invB) {
                const NodeId x = invA ? ops[ta].a : ta;  // de-inverted operands
                const NodeId y = invB ? ops[tb].a : tb;
                bool applied = true;
                if (invA && invB) {
                    switch (g.op) {
                        case OpCode::And: g = {OpCode::Nor, x, y, 0, true}; break;
                        case OpCode::Or: g = {OpCode::Nand, x, y, 0, true}; break;
                        case OpCode::Xor: g = {OpCode::Xor, x, y, 0, true}; break;
                        case OpCode::Nand: g = {OpCode::Or, x, y, 0, true}; break;
                        case OpCode::Nor: g = {OpCode::And, x, y, 0, true}; break;
                        case OpCode::Xnor: g = {OpCode::Xnor, x, y, 0, true}; break;
                        case OpCode::AndNot: g = {OpCode::AndNot, y, x, 0, true}; break;
                        case OpCode::OrNot: g = {OpCode::OrNot, y, x, 0, true}; break;
                        default: applied = false; break;
                    }
                } else if (invA) {
                    switch (g.op) {
                        case OpCode::And: g = {OpCode::AndNot, tb, x, 0, true}; break;
                        case OpCode::Or: g = {OpCode::OrNot, tb, x, 0, true}; break;
                        case OpCode::Xor: g = {OpCode::Xnor, x, tb, 0, true}; break;
                        case OpCode::Nand: g = {OpCode::OrNot, x, tb, 0, true}; break;
                        case OpCode::Nor: g = {OpCode::AndNot, x, tb, 0, true}; break;
                        case OpCode::Xnor: g = {OpCode::Xor, x, tb, 0, true}; break;
                        case OpCode::AndNot: g = {OpCode::Nor, x, tb, 0, true}; break;
                        case OpCode::OrNot: g = {OpCode::Nand, x, tb, 0, true}; break;
                        default: applied = false; break;
                    }
                } else {  // invB only
                    switch (g.op) {
                        case OpCode::And: g = {OpCode::AndNot, ta, y, 0, true}; break;
                        case OpCode::Or: g = {OpCode::OrNot, ta, y, 0, true}; break;
                        case OpCode::Xor: g = {OpCode::Xnor, ta, y, 0, true}; break;
                        case OpCode::Nand: g = {OpCode::OrNot, y, ta, 0, true}; break;
                        case OpCode::Nor: g = {OpCode::AndNot, y, ta, 0, true}; break;
                        case OpCode::Xnor: g = {OpCode::Xor, ta, y, 0, true}; break;
                        case OpCode::AndNot: g = {OpCode::And, ta, y, 0, true}; break;
                        case OpCode::OrNot: g = {OpCode::Or, ta, y, 0, true}; break;
                        default: applied = false; break;
                    }
                }
                if (applied) {
                    if (invA) {
                        --uses[ta];
                        ++uses[x];
                        if (same) {  // both edges referenced the same Not
                            --uses[ta];
                            ++uses[x];
                        }
                    }
                    if (invB && !same) {
                        --uses[tb];
                        ++uses[y];
                    }
                    ++fusedOps;
                }
            }
        }

        // Mux data-operand inversion (select handled above).
        if (g.op == OpCode::Mux) {
            if (g.a != g.b && g.a != g.c && absorbableNot(g.a, 1)) {
                const NodeId t = g.a;
                g.op = OpCode::MuxNotA;
                g.a = ops[t].a;
                --uses[t];
                ++uses[g.a];
                ++fusedOps;
            } else if (g.a != g.b && g.b != g.c && absorbableNot(g.b, 1)) {
                const NodeId t = g.b;
                g.op = OpCode::MuxNotB;
                g.b = ops[t].a;
                --uses[t];
                ++uses[g.b];
                ++fusedOps;
            }
        }

        // Associative-tree widening: a 2-input gate over a single-use
        // same-kind producer absorbs it into the 3-input fused form —
        // full-adder sums (Xor -> Xor3), AND-tree levels (And -> And3)
        // and OR-compressor levels (Or -> Or3).
        if (g.op == OpCode::Xor || g.op == OpCode::And || g.op == OpCode::Or) {
            const OpCode wide = g.op == OpCode::Xor   ? OpCode::Xor3
                                : g.op == OpCode::And ? OpCode::And3
                                                      : OpCode::Or3;
            const auto tryWiden = [&](NodeId t, NodeId other) {
                if (!(ops[t].gate && ops[t].op == g.op && !isOutput[t] && uses[t] == 1))
                    return false;
                g.op = wide;
                g.a = ops[t].a;
                g.b = ops[t].b;
                g.c = other;
                --uses[t];
                ++uses[g.a];
                ++uses[g.b];
                ++fusedOps;
                return true;
            };
            if (!tryWiden(g.a, g.b)) tryWiden(g.b, g.a);
        }
    }
}

/// Picks the block width for a freshly compiled program.  Priority:
/// explicit `Options::blockWords`, `kernels::ScopedWidthOverride`,
/// `AXF_FORCE_WIDTH`, then a workspace-footprint heuristic: take the
/// widest width whose workspace still fits the fast cache levels.  Wider
/// blocks amortize per-run dispatch (fn-pointer calls, plan walking,
/// decode/accumulate boundaries) over 2-4x the lanes but multiply the
/// working set by the same factor — so a program whose W = 16 workspace
/// fits comfortably in L1 takes 1024 lanes per sweep, a mid-size one
/// settles for 512 while the W = 8 workspace still fits the L2 slice, and
/// a large one stays at the 256-lane baseline.  The choice never affects
/// results (bit-identical across the width set), only execution shape.
std::size_t chooseBlockWords(std::size_t requested, std::size_t slots) {
    if (requested != 0) {
        if (!kernels::isWideWidth(requested))
            throw std::invalid_argument(
                "CompiledNetlist: Options::blockWords must be 0, 4, 8 or 16");
        return requested;
    }
    if (const std::size_t words = kernels::widthOverride(); words != 0) return words;
    if (const std::size_t words = kernels::forcedWidth(); words != 0) return words;
    constexpr std::size_t kL1Budget = 32u << 10;
    constexpr std::size_t kL2Budget = 768u << 10;
    const auto bytesAt = [slots](std::size_t words) {
        return slots * words * sizeof(CompiledNetlist::Word);
    };
    if (bytesAt(16) <= kL1Budget) return 16;
    if (bytesAt(8) <= kL2Budget) return 8;
    return kernels::kBaseWideWords;
}

}  // namespace

CompiledNetlist CompiledNetlist::compile(const Netlist& netlist, Options options) {
    const std::span<const Node> nodes = netlist.nodes();

    std::vector<bool> live(nodes.size(), !options.pruneDead);
    if (options.pruneDead) {
        for (NodeId out : netlist.outputs()) live[out] = true;
        for (std::size_t i = nodes.size(); i-- > 0;) {
            if (!live[i]) continue;
            const Node& n = nodes[i];
            const int fan = fanInCount(n.kind);
            if (fan >= 1) live[n.a] = true;
            if (fan >= 2) live[n.b] = true;
            if (fan >= 3) live[n.c] = true;
        }
        // The arithmetic interface survives approximation: inputs keep
        // their slots even when the logic ignores them.
        for (NodeId in : netlist.inputs()) live[in] = true;
    }

    CompiledNetlist compiled;
    compiled.allNodes_ = !options.pruneDead;
    compiled.backend_ = options.backend != nullptr ? options.backend
                                                   : &kernels::selectedBackend();

    // Mutable per-node program the peephole pass rewrites in topo order.
    std::vector<NodeOp> ops(nodes.size());
    std::size_t preFusionGates = 0;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (!live[i]) continue;
        const Node& n = nodes[i];
        switch (n.kind) {
            case GateKind::Input:
            case GateKind::Const0:
            case GateKind::Const1: break;
            default: {
                const int fan = fanInCount(n.kind);
                ops[i] = {toOpCode(n.kind), n.a, fan >= 2 ? n.b : n.a,
                          fan >= 3 ? n.c : n.a, true};
                ++preFusionGates;
                break;
            }
        }
    }

    const bool fuse = options.pruneDead && options.fuseOps;
    if (fuse) fusePeephole(netlist, ops, live, compiled.fusedOps_);

    // Final liveness over the rewritten program: fused-away nodes drop out
    // of the cone (identical to `live` when fusion is off).
    std::vector<bool> emit = live;
    if (fuse) {
        emit.assign(nodes.size(), false);
        for (NodeId out : netlist.outputs()) emit[out] = true;
        for (std::size_t i = nodes.size(); i-- > 0;) {
            if (!emit[i] || !ops[i].gate) continue;
            const int fan = opFanIn(ops[i].op);
            emit[ops[i].a] = true;
            if (fan >= 2) emit[ops[i].b] = true;
            if (fan >= 3) emit[ops[i].c] = true;
        }
        for (NodeId in : netlist.inputs()) emit[in] = true;
    }

    // Half-adder pairing: an Xor and an And over the same (post-rewrite)
    // operands collapse into one dual-destination HalfAdd instruction,
    // carried at the pair member with the smaller id (emission order is
    // dependency-driven below, so any carrier is topologically safe).
    std::vector<NodeId> pairSumOf(fuse ? nodes.size() : 0, kInvalidNode);
    std::vector<NodeId> pairCarryOf(fuse ? nodes.size() : 0, kInvalidNode);
    std::vector<bool> pairSkip(nodes.size(), false);
    if (fuse) {
        // Sort-based matching: the k-th Xor of an operand pair (in id
        // order) fuses with that pair's k-th And — deterministic and
        // allocation-light.
        const auto key = [](const NodeOp& g) {
            return (static_cast<std::uint64_t>(std::min(g.a, g.b)) << 32) | std::max(g.a, g.b);
        };
        std::vector<std::pair<std::uint64_t, NodeId>> xors, ands;
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            if (!emit[i] || !ops[i].gate) continue;
            if (ops[i].op == OpCode::Xor)
                xors.emplace_back(key(ops[i]), static_cast<NodeId>(i));
            else if (ops[i].op == OpCode::And)
                ands.emplace_back(key(ops[i]), static_cast<NodeId>(i));
        }
        std::sort(xors.begin(), xors.end());
        std::sort(ands.begin(), ands.end());
        std::size_t xi = 0, ai = 0;
        while (xi < xors.size() && ai < ands.size()) {
            if (xors[xi].first < ands[ai].first) {
                ++xi;
            } else if (ands[ai].first < xors[xi].first) {
                ++ai;
            } else {
                const NodeId sum = xors[xi++].second, carry = ands[ai++].second;
                const NodeId carrier = std::min(sum, carry);
                pairSumOf[carrier] = sum;
                pairCarryOf[carrier] = carry;
                pairSkip[std::max(sum, carry)] = true;
                ++compiled.fusedOps_;
            }
        }
    }

    // Slot assignment over the final live set (pair partners keep their
    // slot: it is the HalfAdd's second destination).
    std::vector<std::uint32_t> slotOf(nodes.size(), 0);
    std::uint32_t nextSlot = 0;
    for (std::size_t i = 0; i < nodes.size(); ++i)
        if (emit[i]) {
            slotOf[i] = nextSlot++;
            compiled.slotNode_.push_back(static_cast<NodeId>(i));
        }
    compiled.slotCount_ = nextSlot;

    // Scheduling: one *item* per emitted instruction (a HalfAdd pair is a
    // single item producing two nodes).
    const auto emittedOp = [&](std::uint32_t i) {
        if (fuse && pairSumOf[i] != kInvalidNode) return OpCode::HalfAdd;
        return ops[i].op;
    };
    std::vector<std::uint32_t> itemNodes;  // carrier node per item, id order
    std::vector<std::uint32_t> itemOf(nodes.size(), 0);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (!emit[i]) continue;
        switch (nodes[i].kind) {
            case GateKind::Input: break;  // loaded from the input block
            case GateKind::Const0: compiled.constants_.emplace_back(slotOf[i], false); break;
            case GateKind::Const1: compiled.constants_.emplace_back(slotOf[i], true); break;
            default:
                if (!pairSkip[i]) {
                    itemOf[i] = static_cast<std::uint32_t>(itemNodes.size());
                    itemNodes.push_back(static_cast<std::uint32_t>(i));
                }
                break;
        }
    }
    // Map every produced node (including pair partners) to its item.
    if (fuse)
        for (const std::uint32_t i : itemNodes)
            if (pairSumOf[i] != kInvalidNode) {
                itemOf[pairSumOf[i]] = itemOf[i];
                itemOf[pairCarryOf[i]] = itemOf[i];
            }

    // Dependency edges in CSR form: item -> consumer items, one entry per
    // operand edge (no per-item allocations; compile sits on the
    // characterization hot path, called once per candidate circuit).
    const std::size_t itemCount = itemNodes.size();
    std::vector<std::uint32_t> deps(itemCount, 0);
    std::vector<std::uint32_t> outDegree(itemCount, 0);
    const auto forEachOperand = [&](std::uint32_t i, auto&& fn) {
        const NodeOp& g = ops[i];
        const int fan = emittedOp(i) == OpCode::HalfAdd ? 2 : opFanIn(g.op);
        fn(g.a);
        if (fan >= 2) fn(g.b);
        if (fan >= 3) fn(g.c);
    };
    for (std::uint32_t item = 0; item < itemCount; ++item) {
        forEachOperand(itemNodes[item], [&](NodeId x) {
            if (ops[x].gate) {  // inputs and constants are always ready
                ++outDegree[itemOf[x]];
                ++deps[item];
            }
        });
    }
    std::vector<std::uint32_t> consumerOffset(itemCount + 1, 0);
    for (std::size_t item = 0; item < itemCount; ++item)
        consumerOffset[item + 1] = consumerOffset[item] + outDegree[item];
    std::vector<std::uint32_t> consumerEdges(consumerOffset[itemCount]);
    {
        std::vector<std::uint32_t> fill(consumerOffset.begin(), consumerOffset.end() - 1);
        for (std::uint32_t item = 0; item < itemCount; ++item)
            forEachOperand(itemNodes[item], [&](NodeId x) {
                if (ops[x].gate) consumerEdges[fill[itemOf[x]]++] = item;
            });
    }

    // Greedy run-maximizing list schedule: repeatedly pick the opcode with
    // the most ready instructions and emit its entire ready *closure* —
    // instructions unlocked by the run join the same run, so dependent
    // same-opcode chains (ripple carries, XOR trees) become one long run
    // with register-forwarded hot slots.  Deterministic: queues fill in
    // item order and the opcode choice is a pure function of queue sizes.
    std::array<std::vector<std::uint32_t>, kernels::kOpCount> ready;
    std::array<std::size_t, kernels::kOpCount> readyHead{};
    for (std::uint32_t item = 0; item < itemCount; ++item)
        if (deps[item] == 0)
            ready[static_cast<std::size_t>(emittedOp(itemNodes[item]))].push_back(item);

    compiled.instrs_.reserve(itemCount);
    const auto emitItem = [&](std::uint32_t item) {
        const std::uint32_t i = itemNodes[item];
        const NodeOp& g = ops[i];
        Instr ins{};
        ins.op = emittedOp(i);
        if (ins.op == OpCode::HalfAdd) {
            ins.dst = slotOf[pairSumOf[i]];
            ins.a = slotOf[g.a];
            ins.b = slotOf[g.b];
            ins.c = slotOf[pairCarryOf[i]];
        } else {
            const int fan = opFanIn(g.op);
            ins.dst = slotOf[i];
            ins.a = slotOf[g.a];
            ins.b = fan >= 2 ? slotOf[g.b] : 0;
            ins.c = fan >= 3 ? slotOf[g.c] : 0;
        }
        compiled.instrs_.push_back(ins);
        ++compiled.runs_.back().end;
        for (std::uint32_t e = consumerOffset[item]; e < consumerOffset[item + 1]; ++e) {
            const std::uint32_t consumer = consumerEdges[e];
            if (--deps[consumer] == 0)
                ready[static_cast<std::size_t>(emittedOp(itemNodes[consumer]))].push_back(
                    consumer);
        }
    };
    std::size_t emitted = 0;
    while (emitted < itemCount) {
        std::size_t best = 0, bestSize = 0;
        for (std::size_t op = 0; op < kernels::kOpCount; ++op) {
            const std::size_t size = ready[op].size() - readyHead[op];
            if (size > bestSize) {
                best = op;
                bestSize = size;
            }
        }
        if (bestSize == 0) throw std::logic_error("CompiledNetlist: scheduler stalled (cycle?)");
        compiled.runs_.push_back({static_cast<OpCode>(best),
                                  static_cast<std::uint32_t>(compiled.instrs_.size()),
                                  static_cast<std::uint32_t>(compiled.instrs_.size())});
        while (readyHead[best] < ready[best].size()) {
            emitItem(ready[best][readyHead[best]++]);
            ++emitted;
        }
    }
    compiled.gatesFused_ = preFusionGates - compiled.instrs_.size();

    // Chain detection: normalize commutative operands so a dependent value
    // rides operand `a`, then mark runs where every instruction consumes
    // its predecessor's destination — those dispatch to register-chained
    // kernels (the workspace store still happens for later consumers, but
    // the serial dependency never waits on a reload).  The scheduler's
    // closure emission lays dependent same-opcode chains out contiguously,
    // so ripple carries and XOR reductions qualify wholesale.
    const auto symmetricAB = [](OpCode op) {
        switch (op) {
            case OpCode::And:
            case OpCode::Or:
            case OpCode::Xor:
            case OpCode::Nand:
            case OpCode::Nor:
            case OpCode::Xnor:
            case OpCode::Maj:
            case OpCode::Xor3:
            case OpCode::And3:
            case OpCode::Or3:
            case OpCode::HalfAdd: return true;
            default: return false;
        }
    };
    for (Run& run : compiled.runs_) {
        bool chained = run.end - run.begin >= 2;
        for (std::uint32_t idx = run.begin + 1; idx < run.end && chained; ++idx) {
            Instr& ins = compiled.instrs_[idx];
            const std::uint32_t prev = compiled.instrs_[idx - 1].dst;
            if (ins.a == prev) continue;
            if (symmetricAB(run.op) && ins.b == prev) {
                std::swap(ins.a, ins.b);
            } else if ((run.op == OpCode::Maj || run.op == OpCode::Xor3 ||
                        run.op == OpCode::And3 || run.op == OpCode::Or3) &&
                       ins.c == prev) {
                std::swap(ins.a, ins.c);
            } else {
                chained = false;
            }
        }
        run.chained = chained;
    }

    compiled.inputSlots_.reserve(netlist.inputCount());
    for (NodeId in : netlist.inputs()) compiled.inputSlots_.push_back(slotOf[in]);
    compiled.outputSlots_.reserve(netlist.outputCount());
    for (NodeId out : netlist.outputs()) compiled.outputSlots_.push_back(slotOf[out]);

    compiled.blockWords_ = chooseBlockWords(options.blockWords, compiled.slotCount_);
    compiled.buildPlan();
    if (compiled.instrs_.size() <= kAutoSpecializeInstructions) compiled.specialize();

    // AXF_VERIFY debug gate: self-verify every compiled program against
    // the source netlist (dataflow discipline, schedule claims, fusion
    // semantics) before handing it out.
    if (verify::verifyEnabled())
        verify::throwIfErrors(verify::verifyProgram(compiled, &netlist),
                              "CompiledNetlist::compile self-verification");
    return compiled;
}

void CompiledNetlist::buildPlan() {
    plan_.clear();
    plan_.reserve(runs_.size());
    const kernels::Backend& backend = *backend_;
    for (const Run& run : runs_) {
        const auto op = static_cast<std::size_t>(run.op);
        const std::uint32_t count = run.end - run.begin;
        PlannedRun planned{};
        for (std::size_t wi = 0; wi < kernels::kWidthCount; ++wi) {
            const kernels::WidthTables& tables = backend.wide[wi];
            kernels::KernelFn fn = tables.run[op];
            if (run.chained && tables.chained[op] != nullptr) {
                fn = tables.chained[op];
            } else if (specialized_ && count <= kernels::kMaxUnroll &&
                       tables.unrolled[op][count - 1] != nullptr) {
                fn = tables.unrolled[op][count - 1];
            }
            planned.wide[wi] = fn;
        }
        planned.narrow = (run.chained && backend.narrowChained[op] != nullptr)
                             ? backend.narrowChained[op]
                             : backend.narrow[op];
        planned.begin = run.begin;
        planned.count = count;
        plan_.push_back(planned);
    }
}

void CompiledNetlist::specialize() {
    if (specialized_) return;
    specialized_ = true;
    buildPlan();
}

CompiledNetlist::Stats CompiledNetlist::stats() const {
    Stats s;
    s.instructions = instrs_.size();
    s.runs = runs_.size();
    for (const Run& run : runs_) {
        s.longestRun = std::max<std::size_t>(s.longestRun, run.end - run.begin);
        s.chainedRuns += run.chained ? 1 : 0;
    }
    s.fusedOps = fusedOps_;
    s.gatesFused = gatesFused_;
    s.backend = backend_ != nullptr ? backend_->name : "";
    s.blockWords = blockWords_;
    s.specialized = specialized_;
    return s;
}

void CompiledNetlist::initWorkspace(std::span<Word> workspace, std::size_t wordsPerSlot) const {
    if (workspace.size() < workspaceWords(wordsPerSlot))
        throw std::invalid_argument("CompiledNetlist::initWorkspace: workspace too small");
    for (const auto& [slot, value] : constants_) {
        Word* words = workspace.data() + static_cast<std::size_t>(slot) * wordsPerSlot;
        for (std::size_t w = 0; w < wordsPerSlot; ++w) words[w] = value ? ~Word{0} : Word{0};
    }
}

template <std::size_t W>
void CompiledNetlist::run(const Word* inputs, Word* outputs, Word* ws) const {
    static_assert(W == 1 || kernels::isWideWidth(W),
                  "kernel tables exist for W = 1 and the wide width set only");
    // The input/output block copies go through memcpy: caller buffers are
    // plain vectors with no alignment contract, and the compiler inlines
    // these to unaligned vector moves anyway.  The workspace itself must
    // satisfy the slot alignment (W * 8 bytes for the wide configurations;
    // BatchSimulator 128-byte-aligns it) because the kernels use whole-slot
    // vector accesses.
    const std::uint32_t* inSlots = inputSlots_.data();
    for (std::size_t i = 0; i < inputSlots_.size(); ++i)
        std::memcpy(ws + static_cast<std::size_t>(inSlots[i]) * W, inputs + i * W,
                    W * sizeof(Word));
    // One pre-resolved kernel call per same-opcode run: the backend was
    // chosen at compile() time, so there is no dispatch left here.
    const kernels::Instr* instrs = instrs_.data();
    for (const PlannedRun& r : plan_) {
        if constexpr (W == 1)
            r.narrow(instrs + r.begin, r.count, ws);
        else
            r.wide[kernels::widthIndex(W)](instrs + r.begin, r.count, ws);
    }
    const std::uint32_t* outSlots = outputSlots_.data();
    for (std::size_t o = 0; o < outputSlots_.size(); ++o)
        std::memcpy(outputs + o * W, ws + static_cast<std::size_t>(outSlots[o]) * W,
                    W * sizeof(Word));
}

template void CompiledNetlist::run<1>(const Word*, Word*, Word*) const;
template void CompiledNetlist::run<4>(const Word*, Word*, Word*) const;
template void CompiledNetlist::run<8>(const Word*, Word*, Word*) const;
template void CompiledNetlist::run<16>(const Word*, Word*, Word*) const;

namespace {

template <std::size_t W>
void applyFault(CompiledNetlist::Word* ws, const CompiledNetlist::InjectedFault& f) {
    CompiledNetlist::Word* p = ws + static_cast<std::size_t>(f.slot) * W;
    for (std::size_t w = 0; w < W; ++w) p[w] = f.stuckTo ? p[w] | f.mask[w] : p[w] & ~f.mask[w];
}

}  // namespace

template <std::size_t W>
void CompiledNetlist::runWithFaults(const Word* inputs, Word* outputs, Word* ws,
                                    std::span<const InjectedFault> faults) const {
    static_assert(W == 1 || kernels::isWideWidth(W),
                  "kernel tables exist for W = 1 and the wide width set only");
    const std::uint32_t* inSlots = inputSlots_.data();
    for (std::size_t i = 0; i < inputSlots_.size(); ++i)
        std::memcpy(ws + static_cast<std::size_t>(inSlots[i]) * W, inputs + i * W,
                    W * sizeof(Word));
    std::size_t fi = 0;
    while (fi < faults.size() && faults[fi].afterInstr == kFaultAtInputs)
        applyFault<W>(ws, faults[fi++]);

    const kernels::Instr* instrs = instrs_.data();
    const kernels::Backend& backend = *backend_;
    const auto dispatch = [&](OpCode op, std::uint32_t begin, std::uint32_t count) {
        if (count == 0) return;
        const auto opIdx = static_cast<std::size_t>(op);
        if constexpr (W == 1)
            backend.narrow[opIdx](instrs + begin, count, ws);
        else
            backend.wide[kernels::widthIndex(W)].run[opIdx](instrs + begin, count, ws);
    };
    for (std::size_t r = 0; r < runs_.size(); ++r) {
        const Run& run = runs_[r];
        if (fi >= faults.size() || faults[fi].afterInstr >= run.end) {
            // No fault boundary inside this run: pre-resolved plan kernel,
            // exactly as run<W>.
            const PlannedRun& p = plan_[r];
            if constexpr (W == 1)
                p.narrow(instrs + p.begin, p.count, ws);
            else
                p.wide[kernels::widthIndex(W)](instrs + p.begin, p.count, ws);
            continue;
        }
        // Split the run at each faulted instruction; the generic kernels
        // accept any contiguous sub-range and compute identical bits.
        std::uint32_t pos = run.begin;
        while (pos < run.end) {
            const std::uint32_t stop =
                (fi < faults.size() && faults[fi].afterInstr < run.end)
                    ? faults[fi].afterInstr + 1
                    : run.end;
            dispatch(run.op, pos, stop - pos);
            pos = stop;
            while (fi < faults.size() && faults[fi].afterInstr == stop - 1)
                applyFault<W>(ws, faults[fi++]);
        }
    }
    const std::uint32_t* outSlots = outputSlots_.data();
    for (std::size_t o = 0; o < outputSlots_.size(); ++o)
        std::memcpy(outputs + o * W, ws + static_cast<std::size_t>(outSlots[o]) * W,
                    W * sizeof(Word));
}

template void CompiledNetlist::runWithFaults<1>(const Word*, Word*, Word*,
                                                std::span<const InjectedFault>) const;
template void CompiledNetlist::runWithFaults<4>(const Word*, Word*, Word*,
                                                std::span<const InjectedFault>) const;
template void CompiledNetlist::runWithFaults<8>(const Word*, Word*, Word*,
                                                std::span<const InjectedFault>) const;
template void CompiledNetlist::runWithFaults<16>(const Word*, Word*, Word*,
                                                 std::span<const InjectedFault>) const;

void BatchSimulator::rebind(const CompiledNetlist& compiled) {
    if (compiled_ == &compiled) return;  // constants already in place
    compiled_ = &compiled;
    const std::size_t words = compiled.blockWords();
    const std::size_t needed = compiled.workspaceWords(words) + kAlignWords;
    if (storage_.size() < needed) storage_.assign(needed, 0);
    const std::size_t misalign =
        reinterpret_cast<std::uintptr_t>(storage_.data()) % (kAlignWords * sizeof(Word));
    workspace_ = storage_.data() + (misalign ? kAlignWords - misalign / sizeof(Word) : 0);
    compiled.initWorkspace({workspace_, compiled.workspaceWords(words)}, words);
}

void BatchSimulator::evaluate(std::span<const Word> inputWords, std::span<Word> outputWords) {
    const std::size_t words = compiled_->blockWords();
    if (inputWords.size() != compiled_->inputCount() * words)
        throw std::invalid_argument("BatchSimulator: input word count mismatch");
    if (outputWords.size() != compiled_->outputCount() * words)
        throw std::invalid_argument("BatchSimulator: output word count mismatch");
    switch (words) {
        case 4: compiled_->run<4>(inputWords.data(), outputWords.data(), workspace_); break;
        case 8: compiled_->run<8>(inputWords.data(), outputWords.data(), workspace_); break;
        default: compiled_->run<16>(inputWords.data(), outputWords.data(), workspace_); break;
    }
}

}  // namespace axf::circuit
