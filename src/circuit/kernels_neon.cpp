// NEON backend (aarch64).  The generic vector-extension kernels lower to
// pairs of 128-bit NEON ops per 256-bit slot; Mux/MuxNot* additionally map
// naturally onto NEON's bit-select (vbslq), which GCC pattern-matches from
// the (c & b) | (~c & a) form.  Present as a named backend so
// AXF_FORCE_BACKEND semantics and the Stats backend field behave the same
// on ARM hosts as on x86; the TU compiles empty elsewhere.

#include "src/circuit/kernels.hpp"

#if defined(__aarch64__) && defined(__ARM_NEON)

namespace axf::circuit::kernels {
namespace neon_impl {

#include "src/circuit/kernels_generic.inc"

constexpr Backend kBackend = {"neon", kGenericWideTables, kGenericNarrow, kGenericNarrowChained};

}  // namespace neon_impl

const Backend* neonBackend() { return &neon_impl::kBackend; }

}  // namespace axf::circuit::kernels

#else

namespace axf::circuit::kernels {
const Backend* neonBackend() { return nullptr; }
}  // namespace axf::circuit::kernels

#endif
