#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/circuit/batch_sim.hpp"
#include "src/circuit/netlist.hpp"

namespace axf::util {
class ThreadPool;
}

namespace axf::circuit {

/// 64-way bit-parallel netlist evaluator.
///
/// One `Word` carries 64 independent test vectors through a single sweep of
/// the node array, which makes exhaustive 8-bit error analysis (65,536
/// vectors = 1,024 sweeps) cheap enough to run inside unit tests.
///
/// Since the compiled-engine refactor this is a thin wrapper over
/// `CompiledNetlist` run at one word per slot, compiled *without* dead-node
/// pruning so `nodeValues()` still exposes every node (the activity-based
/// power models depend on that).  Hot paths that sweep many vectors should
/// prefer `BatchSimulator` (256 lanes per sweep, pruned).
///
/// The evaluator keeps a scratch buffer sized to the netlist, so a single
/// instance is not thread-safe; create one per thread if parallelizing.
class Simulator {
public:
    using Word = std::uint64_t;

    explicit Simulator(const Netlist& netlist);

    /// Evaluates one 64-lane block.  `inputWords[i]` supplies the lanes of
    /// the i-th primary input; `outputWords[i]` receives the lanes of the
    /// i-th primary output.
    void evaluate(std::span<const Word> inputWords, std::span<Word> outputWords);

    /// Scalar convenience: evaluates a single assignment (lane 0).
    /// Bit i of the result is output i.
    std::uint64_t evaluateScalar(std::uint64_t inputBits);

    /// Per-node lane values of the most recent `evaluate` call (one word per
    /// node, in node order).  Valid until the next evaluate.
    std::span<const Word> nodeValues() const { return values_; }

    const Netlist& netlist() const { return netlist_; }

private:
    const Netlist& netlist_;
    CompiledNetlist compiled_;      ///< all nodes preserved: slot == node id
    std::vector<Word> values_;      ///< one-word-per-node workspace
    std::vector<Word> scalarIn_;    ///< reused by evaluateScalar
    std::vector<Word> scalarOut_;
};

/// Per-node toggle counter for the activity-based power models.
///
/// `accumulate` runs a block and counts, per node, in how many of the lane
/// pairs (lane i of the previous block vs lane i of this block) the node
/// value toggled.  Feeding consecutive random blocks approximates the
/// switching activity a synthesis tool derives from default toggle rates.
class ActivityCounter {
public:
    explicit ActivityCounter(const Netlist& netlist);

    void accumulate(std::span<const Simulator::Word> inputWords);

    /// Toggle probability per node in [0, 1]; meaningful after >= 2 blocks.
    std::vector<double> toggleRates() const;
    std::size_t blocksSeen() const { return blocks_; }

    /// Raw per-node toggle counts accumulated so far (ordered-merge hook
    /// for the chunk-parallel estimator and its differential tests).
    std::span<const std::uint64_t> toggleCounts() const { return toggles_; }

private:
    const Netlist& netlist_;
    Simulator simulator_;
    std::vector<Simulator::Word> previous_;
    std::vector<Simulator::Word> outputScratch_;
    std::vector<std::uint64_t> toggles_;
    std::size_t blocks_ = 0;
};

/// Fills the 64-lane stimulus block `b` of the activity-estimation stream
/// derived from `seed`: every lane bit an independent fair coin, the block
/// a pure function of (seed, b).  Addressable blocks are what make the
/// estimation chunk-parallel — any worker can regenerate any block,
/// including a chunk's predecessor, without replaying the whole stream.
void fillActivityBlock(std::uint64_t seed, std::uint64_t b,
                       std::span<Simulator::Word> inputWords);

/// Per-node toggle rates over `blocks` stimulus blocks (see
/// `fillActivityBlock`), estimated thread-parallel with the same
/// chunk-deterministic pattern as `error::analyzeError`: the transition
/// sequence is cut into fixed-size chunks (never derived from the thread
/// count), each chunk re-evaluates its predecessor block and counts its
/// own transitions on a private counter, and the per-chunk counts merge in
/// block order — so the result is bit-identical at any thread count, and
/// identical to feeding the same blocks through one `ActivityCounter`.
///
/// `pool` selects the thread pool (nullptr = the process-global pool); the
/// netlist is compiled once and shared read-only across workers.
std::vector<double> estimateToggleRates(const Netlist& netlist, std::uint64_t seed, int blocks,
                                        util::ThreadPool* pool = nullptr);

}  // namespace axf::circuit
