// Portable backend: the GCC vector-extension kernels compiled under the
// project-wide flags.  With -march=native this is exactly the historical
// CompiledNetlist::run lowering; without it, plain SSE2/baseline codegen.
// Always present and always runnable — the fallback every other backend is
// differentially tested against.

#include "src/circuit/kernels.hpp"

namespace axf::circuit::kernels {
namespace portable_impl {

#include "src/circuit/kernels_generic.inc"

constexpr Backend kBackend = {"portable", kGenericWideTables, kGenericNarrow,
                              kGenericNarrowChained};

}  // namespace portable_impl

const Backend* portableBackend() { return &portable_impl::kBackend; }

}  // namespace axf::circuit::kernels
