#include "src/circuit/simulator.hpp"

#include <stdexcept>

namespace axf::circuit {

Simulator::Simulator(const Netlist& netlist)
    : netlist_(netlist),
      compiled_(CompiledNetlist::compile(netlist, {.pruneDead = false})),
      values_(netlist.nodeCount(), 0) {
    compiled_.initWorkspace(values_, 1);
}

void Simulator::evaluate(std::span<const Word> inputWords, std::span<Word> outputWords) {
    if (inputWords.size() != netlist_.inputCount())
        throw std::invalid_argument("Simulator: input word count mismatch");
    if (outputWords.size() != netlist_.outputCount())
        throw std::invalid_argument("Simulator: output word count mismatch");
    compiled_.run<1>(inputWords.data(), outputWords.data(), values_.data());
}

std::uint64_t Simulator::evaluateScalar(std::uint64_t inputBits) {
    const std::size_t ni = netlist_.inputCount();
    const std::size_t no = netlist_.outputCount();
    if (ni > 64 || no > 64)
        throw std::invalid_argument("Simulator::evaluateScalar: interface wider than 64 bits");
    scalarIn_.resize(ni);
    scalarOut_.resize(no);
    for (std::size_t i = 0; i < ni; ++i)
        scalarIn_[i] = (inputBits >> i) & 1u ? ~Word{0} : Word{0};
    evaluate(scalarIn_, scalarOut_);
    std::uint64_t result = 0;
    for (std::size_t i = 0; i < no; ++i)
        if (scalarOut_[i] & 1u) result |= std::uint64_t{1} << i;
    return result;
}

ActivityCounter::ActivityCounter(const Netlist& netlist)
    : netlist_(netlist),
      simulator_(netlist),
      previous_(netlist.nodeCount(), 0),
      outputScratch_(netlist.outputCount(), 0),
      toggles_(netlist.nodeCount(), 0) {}

void ActivityCounter::accumulate(std::span<const Simulator::Word> inputWords) {
    simulator_.evaluate(inputWords, outputScratch_);
    const std::span<const Simulator::Word> values = simulator_.nodeValues();
    if (blocks_ > 0) {
        for (std::size_t i = 0; i < values.size(); ++i) {
            const Simulator::Word diff = values[i] ^ previous_[i];
            toggles_[i] += static_cast<std::uint64_t>(__builtin_popcountll(diff));
        }
    }
    previous_.assign(values.begin(), values.end());
    ++blocks_;
}

std::vector<double> ActivityCounter::toggleRates() const {
    std::vector<double> rates(toggles_.size(), 0.0);
    if (blocks_ < 2) return rates;
    const double denom = static_cast<double>((blocks_ - 1) * 64);
    for (std::size_t i = 0; i < toggles_.size(); ++i)
        rates[i] = static_cast<double>(toggles_[i]) / denom;
    return rates;
}

}  // namespace axf::circuit
