#include "src/circuit/simulator.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/util/rng.hpp"
#include "src/util/thread_pool.hpp"

namespace axf::circuit {

Simulator::Simulator(const Netlist& netlist)
    : netlist_(netlist),
      compiled_(CompiledNetlist::compile(netlist, {.pruneDead = false})),
      values_(netlist.nodeCount(), 0) {
    compiled_.initWorkspace(values_, 1);
}

void Simulator::evaluate(std::span<const Word> inputWords, std::span<Word> outputWords) {
    if (inputWords.size() != netlist_.inputCount())
        throw std::invalid_argument("Simulator: input word count mismatch");
    if (outputWords.size() != netlist_.outputCount())
        throw std::invalid_argument("Simulator: output word count mismatch");
    compiled_.run<1>(inputWords.data(), outputWords.data(), values_.data());
}

std::uint64_t Simulator::evaluateScalar(std::uint64_t inputBits) {
    const std::size_t ni = netlist_.inputCount();
    const std::size_t no = netlist_.outputCount();
    if (ni > 64 || no > 64)
        throw std::invalid_argument("Simulator::evaluateScalar: interface wider than 64 bits");
    scalarIn_.resize(ni);
    scalarOut_.resize(no);
    for (std::size_t i = 0; i < ni; ++i)
        scalarIn_[i] = (inputBits >> i) & 1u ? ~Word{0} : Word{0};
    evaluate(scalarIn_, scalarOut_);
    std::uint64_t result = 0;
    for (std::size_t i = 0; i < no; ++i)
        if (scalarOut_[i] & 1u) result |= std::uint64_t{1} << i;
    return result;
}

ActivityCounter::ActivityCounter(const Netlist& netlist)
    : netlist_(netlist),
      simulator_(netlist),
      previous_(netlist.nodeCount(), 0),
      outputScratch_(netlist.outputCount(), 0),
      toggles_(netlist.nodeCount(), 0) {}

void ActivityCounter::accumulate(std::span<const Simulator::Word> inputWords) {
    simulator_.evaluate(inputWords, outputScratch_);
    const std::span<const Simulator::Word> values = simulator_.nodeValues();
    if (blocks_ > 0) {
        for (std::size_t i = 0; i < values.size(); ++i) {
            const Simulator::Word diff = values[i] ^ previous_[i];
            toggles_[i] += static_cast<std::uint64_t>(__builtin_popcountll(diff));
        }
    }
    previous_.assign(values.begin(), values.end());
    ++blocks_;
}

std::vector<double> ActivityCounter::toggleRates() const {
    std::vector<double> rates(toggles_.size(), 0.0);
    if (blocks_ < 2) return rates;
    const double denom = static_cast<double>((blocks_ - 1) * 64);
    for (std::size_t i = 0; i < toggles_.size(); ++i)
        rates[i] = static_cast<double>(toggles_[i]) / denom;
    return rates;
}

namespace {

/// Splitmix64 step — decorrelates the per-block stimulus streams.
std::uint64_t mixSeed(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

/// Transitions per chunk.  Fixed (never derived from the thread count) so
/// the chunk decomposition is identical no matter how many workers run it;
/// the default 24-block estimation splits into 3 chunks, enough
/// granularity for the flows' nested use under a parallel library build.
constexpr std::uint64_t kTransitionsPerChunk = 8;

}  // namespace

void fillActivityBlock(std::uint64_t seed, std::uint64_t b,
                       std::span<Simulator::Word> inputWords) {
    // Splitmix64 stream seeded per block: every word an independent draw,
    // and constructing the generator costs nothing (a mt19937-class engine
    // here would dominate small-netlist synthesis with its seeding loop).
    std::uint64_t state = mixSeed(seed + b);
    for (auto& w : inputWords) {
        state += 0x9E3779B97F4A7C15ull;
        std::uint64_t x = state;
        x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
        x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
        w = x ^ (x >> 31);
    }
}

std::vector<double> estimateToggleRates(const Netlist& netlist, std::uint64_t seed, int blocks,
                                        util::ThreadPool* pool) {
    std::vector<double> rates(netlist.nodeCount(), 0.0);
    if (blocks < 2) return rates;

    // Transition t in [1, blocks) toggles block t-1 -> t; chunk c owns the
    // fixed transition range [1 + c*K, 1 + (c+1)*K) and evaluates blocks
    // [first-1, last], so every cross-chunk transition is counted exactly
    // once by the chunk that owns it.
    const std::uint64_t transitions = static_cast<std::uint64_t>(blocks) - 1;
    const std::size_t chunkCount =
        static_cast<std::size_t>((transitions + kTransitionsPerChunk - 1) / kTransitionsPerChunk);

    // Compile once without pruning (slot == node id, like `Simulator`);
    // every chunk gets its own workspace over the shared program.
    const CompiledNetlist compiled = CompiledNetlist::compile(netlist, {.pruneDead = false});
    const std::size_t nodes = netlist.nodeCount();

    std::vector<std::vector<std::uint64_t>> parts(chunkCount);
    const auto runChunk = [&](std::size_t c) {
        const std::uint64_t firstTransition = 1 + static_cast<std::uint64_t>(c) * kTransitionsPerChunk;
        const std::uint64_t lastTransition =
            std::min<std::uint64_t>(transitions, firstTransition + kTransitionsPerChunk - 1);
        std::vector<Simulator::Word> values(nodes, 0), previous(nodes, 0);
        std::vector<Simulator::Word> in(netlist.inputCount());
        std::vector<Simulator::Word> out(netlist.outputCount());
        compiled.initWorkspace(values, 1);
        std::vector<std::uint64_t> toggles(nodes, 0);
        for (std::uint64_t b = firstTransition - 1; b <= lastTransition; ++b) {
            fillActivityBlock(seed, b, in);
            compiled.run<1>(in.data(), out.data(), values.data());
            if (b >= firstTransition)
                for (std::size_t i = 0; i < nodes; ++i)
                    toggles[i] += static_cast<std::uint64_t>(
                        __builtin_popcountll(values[i] ^ previous[i]));
            previous.assign(values.begin(), values.end());
        }
        parts[c] = std::move(toggles);
    };
    (pool != nullptr ? *pool : util::ThreadPool::global()).parallelFor(chunkCount, runChunk);

    // Ordered merge (integer counts: associative, but the order is kept
    // fixed anyway so the pattern matches the FP-sensitive consumers).
    std::vector<std::uint64_t> total(nodes, 0);
    for (const std::vector<std::uint64_t>& part : parts)
        for (std::size_t i = 0; i < nodes; ++i) total[i] += part[i];
    const double denom = static_cast<double>(transitions * 64);
    for (std::size_t i = 0; i < nodes; ++i)
        rates[i] = static_cast<double>(total[i]) / denom;
    return rates;
}

}  // namespace axf::circuit
