#include "src/circuit/simulator.hpp"

#include <stdexcept>

namespace axf::circuit {

Simulator::Simulator(const Netlist& netlist)
    : netlist_(netlist), values_(netlist.nodeCount(), 0) {}

void Simulator::evaluate(std::span<const Word> inputWords, std::span<Word> outputWords) {
    const std::span<const NodeId> inputs = netlist_.inputs();
    if (inputWords.size() != inputs.size())
        throw std::invalid_argument("Simulator: input word count mismatch");
    if (outputWords.size() != netlist_.outputs().size())
        throw std::invalid_argument("Simulator: output word count mismatch");

    const std::span<const Node> nodes = netlist_.nodes();
    std::size_t nextInput = 0;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const Node& n = nodes[i];
        Word v = 0;
        switch (n.kind) {
            case GateKind::Input: v = inputWords[nextInput++]; break;
            case GateKind::Const0: v = 0; break;
            case GateKind::Const1: v = ~Word{0}; break;
            case GateKind::Buf: v = values_[n.a]; break;
            case GateKind::Not: v = ~values_[n.a]; break;
            case GateKind::And: v = values_[n.a] & values_[n.b]; break;
            case GateKind::Or: v = values_[n.a] | values_[n.b]; break;
            case GateKind::Xor: v = values_[n.a] ^ values_[n.b]; break;
            case GateKind::Nand: v = ~(values_[n.a] & values_[n.b]); break;
            case GateKind::Nor: v = ~(values_[n.a] | values_[n.b]); break;
            case GateKind::Xnor: v = ~(values_[n.a] ^ values_[n.b]); break;
            case GateKind::AndNot: v = values_[n.a] & ~values_[n.b]; break;
            case GateKind::OrNot: v = values_[n.a] | ~values_[n.b]; break;
            case GateKind::Mux:
                v = (values_[n.c] & values_[n.b]) | (~values_[n.c] & values_[n.a]);
                break;
            case GateKind::Maj: {
                const Word a = values_[n.a], b = values_[n.b], c = values_[n.c];
                v = (a & b) | (a & c) | (b & c);
                break;
            }
        }
        values_[i] = v;
    }
    const std::span<const NodeId> outs = netlist_.outputs();
    for (std::size_t i = 0; i < outs.size(); ++i) outputWords[i] = values_[outs[i]];
}

std::uint64_t Simulator::evaluateScalar(std::uint64_t inputBits) {
    const std::size_t ni = netlist_.inputCount();
    const std::size_t no = netlist_.outputCount();
    if (ni > 64 || no > 64)
        throw std::invalid_argument("Simulator::evaluateScalar: interface wider than 64 bits");
    std::vector<Word> in(ni), out(no);
    for (std::size_t i = 0; i < ni; ++i)
        in[i] = (inputBits >> i) & 1u ? ~Word{0} : Word{0};
    evaluate(in, out);
    std::uint64_t result = 0;
    for (std::size_t i = 0; i < no; ++i)
        if (out[i] & 1u) result |= std::uint64_t{1} << i;
    return result;
}

ActivityCounter::ActivityCounter(const Netlist& netlist)
    : netlist_(netlist),
      simulator_(netlist),
      previous_(netlist.nodeCount(), 0),
      toggles_(netlist.nodeCount(), 0) {}

void ActivityCounter::accumulate(std::span<const Simulator::Word> inputWords) {
    std::vector<Simulator::Word> outs(netlist_.outputCount());
    simulator_.evaluate(inputWords, outs);
    const std::span<const Simulator::Word> values = simulator_.nodeValues();
    if (blocks_ > 0) {
        for (std::size_t i = 0; i < values.size(); ++i) {
            const Simulator::Word diff = values[i] ^ previous_[i];
            toggles_[i] += static_cast<std::uint64_t>(__builtin_popcountll(diff));
        }
    }
    previous_.assign(values.begin(), values.end());
    ++blocks_;
}

std::vector<double> ActivityCounter::toggleRates() const {
    std::vector<double> rates(toggles_.size(), 0.0);
    if (blocks_ < 2) return rates;
    const double denom = static_cast<double>((blocks_ - 1) * 64);
    for (std::size_t i = 0; i < toggles_.size(); ++i)
        rates[i] = static_cast<double>(toggles_[i]) / denom;
    return rates;
}

}  // namespace axf::circuit
