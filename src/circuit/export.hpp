#pragma once

#include <iosfwd>
#include <string>

#include "src/circuit/netlist.hpp"

namespace axf::circuit {

/// Emits a flat structural Verilog module equivalent to the netlist (the
/// form the paper's RTL library ships in).  Mux/Maj gates are emitted as
/// assign expressions.
void writeVerilog(std::ostream& os, const Netlist& netlist, const std::string& moduleName);

/// Emits a Graphviz DOT rendering for debugging and documentation.
void writeDot(std::ostream& os, const Netlist& netlist);

/// Emits a self-contained C99 behavioural model (the form EvoApproxLib
/// ships): `uint64_t <name>(uint64_t a, uint64_t b)` where operand A is the
/// first `splitA` primary inputs and the result packs output i at bit i.
void writeBehavioralC(std::ostream& os, const Netlist& netlist, const std::string& name,
                      int splitA);

}  // namespace axf::circuit
