#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace axf::verify {

/// Severity of a finding.  `Error` findings mean the IR is illegal to
/// evaluate (undefined behavior or wrong results if run); `Warning` marks
/// legal-but-suspect structure (dead logic, duplicated cones); `Info` is
/// purely observational.
enum class Severity : std::uint8_t { Info, Warning, Error };

const char* severityName(Severity severity);

/// Every check the static verifier performs, one stable id per rule.
/// NL rules apply to the gate-level `Netlist` IR, CP rules to the compiled
/// `CompiledNetlist` instruction stream.  Tests assert on rule ids, so the
/// mapping rule -> condition is part of the API contract.
enum class Rule : std::uint8_t {
    // --- netlist linter ---------------------------------------------------
    NetOperandRange,       ///< NL001 fan-in references node >= own id (cycle) or out of range
    NetArity,              ///< NL002 operand count does not match the GateKind
    NetInputList,          ///< NL003 inputs() disagrees with the Input nodes
    NetOutputRange,        ///< NL004 output references a nonexistent node
    NetNoOutputs,          ///< NL005 netlist drives no outputs
    NetUnreachable,        ///< NL006 gate outside every output cone
    NetDuplicateStructure, ///< NL007 structurally identical cone computed twice
    NetConstFoldable,      ///< NL008 gate provably constant for all inputs
    NetDanglingInput,      ///< NL009 primary input no output depends on
    // --- compiled-program verifier ---------------------------------------
    ProgSlotRange,         ///< CP001 operand/destination slot out of range
    ProgUseBeforeDef,      ///< CP002 operand plane read before any write
    ProgRedefinition,      ///< CP003 write clobbers an already-defined plane
    ProgRunShape,          ///< CP004 runs do not partition the stream / opcode mismatch
    ProgChainClaim,        ///< CP005 chained run whose link reads a foreign slot
    ProgFusionSemantics,   ///< CP006 instruction function != source-gate composition
    ProgOutputUndefined,   ///< CP007 output plane never written
    ProgInterface,         ///< CP008 input/output/constant interface malformed
};

/// Stable short id, e.g. "NL001" / "CP006".
const char* ruleId(Rule rule);
/// Kebab-case rule name, e.g. "net-operand-range".
const char* ruleName(Rule rule);
/// Severity the rule carries unless the reporter overrides it.
Severity defaultSeverity(Rule rule);

/// Location sentinel for findings not tied to one node/instruction.
inline constexpr std::uint32_t kNoLocation = 0xFFFFFFFFu;

/// One finding: which rule fired, where (node id for NL rules, instruction
/// index — or slot/output index where the message says so — for CP rules)
/// and a human-readable explanation.
struct Diagnostic {
    Severity severity = Severity::Error;
    Rule rule = Rule::NetOperandRange;
    std::uint32_t where = kNoLocation;
    std::string message;
};

/// Ordered findings of one verifier invocation.  Reporting is capped (see
/// `setLimit`) so a corrupt megabyte blob cannot generate a megabyte of
/// diagnostics; the error/warning *counts* keep counting past the cap.
class Diagnostics {
public:
    void setLimit(std::size_t maxDiagnostics) { limit_ = maxDiagnostics; }

    void add(Rule rule, std::uint32_t where, std::string message) {
        add(defaultSeverity(rule), rule, where, std::move(message));
    }
    void add(Severity severity, Rule rule, std::uint32_t where, std::string message);

    std::span<const Diagnostic> all() const { return diags_; }
    std::size_t errorCount() const { return errors_; }
    std::size_t warningCount() const { return warnings_; }
    bool hasErrors() const { return errors_ != 0; }
    /// True when findings were dropped by the reporting cap.
    bool truncated() const { return truncated_; }

    /// Count of reported findings for one rule (capped reporting applies).
    std::size_t count(Rule rule) const;
    bool has(Rule rule) const { return count(rule) != 0; }

    /// One-line tally plus the first few findings; the message attached to
    /// the std::logic_error the AXF_VERIFY hook throws.
    std::string summary() const;

private:
    std::vector<Diagnostic> diags_;
    std::size_t limit_ = 64;
    std::size_t errors_ = 0;
    std::size_t warnings_ = 0;
    bool truncated_ = false;
};

}  // namespace axf::verify
