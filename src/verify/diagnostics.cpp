#include "src/verify/diagnostics.hpp"

#include <sstream>

namespace axf::verify {

const char* severityName(Severity severity) {
    switch (severity) {
        case Severity::Info: return "info";
        case Severity::Warning: return "warning";
        case Severity::Error: return "error";
    }
    return "?";
}

const char* ruleId(Rule rule) {
    switch (rule) {
        case Rule::NetOperandRange: return "NL001";
        case Rule::NetArity: return "NL002";
        case Rule::NetInputList: return "NL003";
        case Rule::NetOutputRange: return "NL004";
        case Rule::NetNoOutputs: return "NL005";
        case Rule::NetUnreachable: return "NL006";
        case Rule::NetDuplicateStructure: return "NL007";
        case Rule::NetConstFoldable: return "NL008";
        case Rule::NetDanglingInput: return "NL009";
        case Rule::ProgSlotRange: return "CP001";
        case Rule::ProgUseBeforeDef: return "CP002";
        case Rule::ProgRedefinition: return "CP003";
        case Rule::ProgRunShape: return "CP004";
        case Rule::ProgChainClaim: return "CP005";
        case Rule::ProgFusionSemantics: return "CP006";
        case Rule::ProgOutputUndefined: return "CP007";
        case Rule::ProgInterface: return "CP008";
    }
    return "??";
}

const char* ruleName(Rule rule) {
    switch (rule) {
        case Rule::NetOperandRange: return "net-operand-range";
        case Rule::NetArity: return "net-arity";
        case Rule::NetInputList: return "net-input-list";
        case Rule::NetOutputRange: return "net-output-range";
        case Rule::NetNoOutputs: return "net-no-outputs";
        case Rule::NetUnreachable: return "net-unreachable";
        case Rule::NetDuplicateStructure: return "net-duplicate-structure";
        case Rule::NetConstFoldable: return "net-const-foldable";
        case Rule::NetDanglingInput: return "net-dangling-input";
        case Rule::ProgSlotRange: return "prog-slot-range";
        case Rule::ProgUseBeforeDef: return "prog-use-before-def";
        case Rule::ProgRedefinition: return "prog-redefinition";
        case Rule::ProgRunShape: return "prog-run-shape";
        case Rule::ProgChainClaim: return "prog-chain-claim";
        case Rule::ProgFusionSemantics: return "prog-fusion-semantics";
        case Rule::ProgOutputUndefined: return "prog-output-undefined";
        case Rule::ProgInterface: return "prog-interface";
    }
    return "?";
}

Severity defaultSeverity(Rule rule) {
    switch (rule) {
        case Rule::NetNoOutputs:
        case Rule::NetUnreachable:
        case Rule::NetDuplicateStructure:
        case Rule::NetConstFoldable: return Severity::Warning;
        case Rule::NetDanglingInput: return Severity::Info;
        default: return Severity::Error;
    }
}

void Diagnostics::add(Severity severity, Rule rule, std::uint32_t where, std::string message) {
    if (severity == Severity::Error) ++errors_;
    if (severity == Severity::Warning) ++warnings_;
    if (diags_.size() >= limit_) {
        truncated_ = true;
        return;
    }
    diags_.push_back({severity, rule, where, std::move(message)});
}

std::size_t Diagnostics::count(Rule rule) const {
    std::size_t n = 0;
    for (const Diagnostic& d : diags_)
        if (d.rule == rule) ++n;
    return n;
}

std::string Diagnostics::summary() const {
    std::ostringstream os;
    os << errors_ << " error(s), " << warnings_ << " warning(s)";
    if (truncated_) os << " [truncated]";
    std::size_t shown = 0;
    for (const Diagnostic& d : diags_) {
        if (shown == 4) {
            os << "; ...";
            break;
        }
        os << "; " << ruleId(d.rule) << " " << severityName(d.severity);
        if (d.where != kNoLocation) os << " @" << d.where;
        os << ": " << d.message;
        ++shown;
    }
    return os.str();
}

}  // namespace axf::verify
