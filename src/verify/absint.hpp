#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/circuit/batch_sim.hpp"
#include "src/circuit/netlist.hpp"

namespace axf::verify {

/// Three-valued abstract domain over one wire: provably always 0, provably
/// always 1, or unknown.  `Zero`/`One` are sound facts — they hold on
/// *every* concrete input assignment — so anything derived from them
/// (constant-foldable cones, cannot-deviate fault sites) is a proof, not a
/// heuristic.
enum class Ternary : std::uint8_t { Zero, One, X };

inline Ternary ternaryOf(bool v) { return v ? Ternary::One : Ternary::Zero; }

/// Maximally precise single-gate transfer function: enumerates every
/// concrete operand combination consistent with the abstract operands and
/// joins the results (derived from the shared `gateEval` semantics, so the
/// abstract domain cannot drift from the simulator).
Ternary ternaryGateEval(circuit::GateKind kind, Ternary a, Ternary b, Ternary c);

/// Same over the compiled opcode alphabet (primary result; HalfAdd's carry
/// is `ternaryAnd`).  Derived from `kernels::opEval`.
Ternary ternaryOpEval(circuit::kernels::OpCode op, Ternary a, Ternary b, Ternary c);

/// Abstract constant/X propagation over a raw node stream (must be
/// structurally valid: lint first).  `inputs` assigns abstract values to
/// the primary inputs in interface order; empty means all-X.  Returns one
/// abstract value per node.
std::vector<Ternary> absEvalNodes(std::span<const circuit::Node> nodes,
                                  std::span<const circuit::NodeId> inputIds,
                                  std::span<const Ternary> inputs = {});

std::vector<Ternary> absEvalNetlist(const circuit::Netlist& netlist,
                                    std::span<const Ternary> inputs = {});

/// Abstract propagation over the compiled instruction stream: one abstract
/// value per workspace slot (constants seeded, inputs from `inputs` or X,
/// never-written slots X).
std::vector<Ternary> absEvalProgram(const circuit::CompiledNetlist& compiled,
                                    std::span<const Ternary> inputs = {});

/// One stuck-at fault location in compiled-program coordinates (the
/// abstract mirror of `CompiledNetlist::InjectedFault`): plane `slot` is
/// forced to `stuckTo` after instruction `afterInstr`, or after the input
/// stage when `afterInstr == CompiledNetlist::kFaultAtInputs`.
struct StuckSite {
    std::uint32_t slot = 0;
    std::uint32_t afterInstr = 0;
    bool stuckTo = false;
};

/// For each site, true when NO primary output can deviate from the
/// fault-free circuit under that stuck-at, proven statically:
///  - the faulted plane is already provably constant at the stuck value, or
///  - every output is either outside the fault's structural fan-out cone
///    or provably the same constant in the fault-free and faulted abstract
///    runs.
/// Sound by construction (abstract facts hold on every input), so the
/// fault engine can skip these sites and report zero deviation without
/// evaluating a single vector.
std::vector<bool> cannotDeviate(const circuit::CompiledNetlist& compiled,
                                std::span<const StuckSite> sites);

}  // namespace axf::verify
