#pragma once

#include <cstddef>
#include <span>
#include <utility>

#include "src/circuit/batch_sim.hpp"
#include "src/circuit/netlist.hpp"
#include "src/verify/diagnostics.hpp"

namespace axf::verify {

/// Linter knobs.  Structural errors are always checked; the warnings for
/// legal-but-suspect shapes can be muted individually (e.g. compile with
/// pruneDead=false intentionally keeps unreachable nodes).
struct LintOptions {
    bool warnUnreachable = true;
    bool warnDuplicates = true;
    bool warnConstFoldable = true;
    std::size_t maxDiagnostics = 64;
};

/// Lints a raw node stream against every structural invariant the rest of
/// the stack assumes: fan-in arity per GateKind, def-before-use (which in
/// the indexed array representation *is* acyclicity), the input list
/// contract, output ranges, plus the warning-level passes (unreachable
/// nodes, duplicated cones via per-node structural hashing, provably
/// constant gates via ternary abstract interpretation).
///
/// This span overload is the ingestion front door: it accepts IR no
/// `Netlist` builder would ever produce, which is exactly what untrusted
/// BLIF/ISCAS imports, cache blobs and the mutation tests need.
Diagnostics lintNetlist(std::span<const circuit::Node> nodes,
                        std::span<const circuit::NodeId> inputs,
                        std::span<const circuit::NodeId> outputs,
                        const LintOptions& options = {});

Diagnostics lintNetlist(const circuit::Netlist& netlist, const LintOptions& options = {});

struct VerifyOptions {
    std::size_t maxDiagnostics = 64;
    /// Per-instruction cap on source-cone size for the fusion-semantics
    /// re-derivation; cones beyond it (never produced by the compiler,
    /// only by corrupt input) are reported instead of walked.
    std::size_t maxConeNodes = 256;
};

/// Borrowed view of a compiled program, decoupled from `CompiledNetlist`
/// so corrupted streams can be constructed in tests (the real compiler
/// never produces one).  Spans must outlive the verification call.
struct ProgramView {
    std::span<const circuit::kernels::Instr> instructions;
    std::span<const circuit::CompiledNetlist::Run> runs;
    std::span<const std::uint32_t> inputSlots;
    std::span<const std::uint32_t> outputSlots;
    std::span<const std::pair<std::uint32_t, bool>> constants;
    /// Source node carried by each slot; required for the fusion-semantics
    /// check (empty disables it).
    std::span<const circuit::NodeId> slotNodes;
    std::size_t slotCount = 0;
};

/// Statically re-derives legality of a compiled instruction stream:
/// every operand plane defined before use (CP002) and written exactly once
/// (CP003 — with single assignment, plane lifetimes can never clobber live
/// values), slot ranges (CP001), the schedule's run partition and opcode
/// grouping (CP004), every chained-run link (CP005), interface shape
/// (CP008) and output definedness (CP007).  Given the source netlist, the
/// fusion-semantics pass (CP006) additionally proves each instruction —
/// fused or not — computes exactly the composition of the source gates it
/// replaced: it enumerates all assignments of the operand planes' source
/// nodes and compares `kernels::opEval` against a memoized `gateEval` cone
/// walk, covering Xor3/HalfAdd/MuxNot*/And3/Or3 and, transitively, the
/// ternlog immediates derived from the same tables.
Diagnostics verifyProgram(const ProgramView& program,
                          const circuit::Netlist* source = nullptr,
                          const VerifyOptions& options = {});

Diagnostics verifyProgram(const circuit::CompiledNetlist& compiled,
                          const circuit::Netlist* source = nullptr,
                          const VerifyOptions& options = {});

/// True when the AXF_VERIFY environment hook is on (AXF_VERIFY set to
/// anything but "0"): CompiledNetlist::compile self-verifies its output
/// and the netlist transforms self-lint, throwing std::logic_error on
/// error-severity findings.  Read once per process; tests use
/// ScopedVerifyOverride instead of mutating the environment.
bool verifyEnabled();

/// RAII test hook forcing the AXF_VERIFY gate on or off in-process.
class ScopedVerifyOverride {
public:
    explicit ScopedVerifyOverride(bool enabled);
    ~ScopedVerifyOverride();
    ScopedVerifyOverride(const ScopedVerifyOverride&) = delete;
    ScopedVerifyOverride& operator=(const ScopedVerifyOverride&) = delete;

private:
    int previous_;
};

/// Throws std::logic_error carrying `what` + the diagnostics summary when
/// error-severity findings are present.
void throwIfErrors(const Diagnostics& diagnostics, const char* what);

}  // namespace axf::verify
