#include "src/verify/absint.hpp"

#include <algorithm>

namespace axf::verify {

namespace {

using circuit::CompiledNetlist;
using circuit::GateKind;
using circuit::Node;
using circuit::NodeId;
using circuit::kernels::Instr;
using circuit::kernels::OpCode;
using circuit::kernels::opFanIn;

/// Joins the concrete results of every operand combination consistent with
/// the abstract operands.  `eval` maps a 3-bit concrete assignment (bit 2 =
/// a, bit 1 = b, bit 0 = c — the shared truth-table layout) to a bool.
template <typename Eval>
Ternary joinConsistent(Ternary a, Ternary b, Ternary c, Eval&& eval) {
    bool sawZero = false, sawOne = false;
    const auto consistent = [](Ternary t, bool v) {
        return t == Ternary::X || (t == Ternary::One) == v;
    };
    for (int k = 0; k < 8; ++k) {
        const bool ba = (k & 4) != 0, bb = (k & 2) != 0, bc = (k & 1) != 0;
        if (!consistent(a, ba) || !consistent(b, bb) || !consistent(c, bc)) continue;
        (eval(ba, bb, bc) ? sawOne : sawZero) = true;
        if (sawZero && sawOne) return Ternary::X;
    }
    if (sawOne && !sawZero) return Ternary::One;
    if (sawZero && !sawOne) return Ternary::Zero;
    return Ternary::X;  // unreachable for total eval functions
}

}  // namespace

Ternary ternaryGateEval(GateKind kind, Ternary a, Ternary b, Ternary c) {
    switch (kind) {
        case GateKind::Input: return a;
        case GateKind::Const0: return Ternary::Zero;
        case GateKind::Const1: return Ternary::One;
        default: break;
    }
    const int fan = circuit::fanInCount(kind);
    if (fan < 2) b = Ternary::Zero;  // pin unused operands: fewer combos, same result
    if (fan < 3) c = Ternary::Zero;
    return joinConsistent(a, b, c, [kind](bool ba, bool bb, bool bc) {
        return circuit::gateEval(kind, ba, bb, bc);
    });
}

Ternary ternaryOpEval(OpCode op, Ternary a, Ternary b, Ternary c) {
    const int fan = opFanIn(op);
    if (fan < 2) b = Ternary::Zero;
    if (fan < 3) c = Ternary::Zero;
    return joinConsistent(a, b, c, [op](bool ba, bool bb, bool bc) {
        return circuit::kernels::opEval(op, ba, bb, bc);
    });
}

std::vector<Ternary> absEvalNodes(std::span<const Node> nodes, std::span<const NodeId> inputIds,
                                  std::span<const Ternary> inputs) {
    std::vector<Ternary> values(nodes.size(), Ternary::X);
    for (std::size_t i = 0; i < inputIds.size(); ++i)
        if (inputIds[i] < nodes.size())
            values[inputIds[i]] = i < inputs.size() ? inputs[i] : Ternary::X;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const Node& n = nodes[i];
        switch (n.kind) {
            case GateKind::Input: break;  // seeded above
            case GateKind::Const0: values[i] = Ternary::Zero; break;
            case GateKind::Const1: values[i] = Ternary::One; break;
            default: {
                const int fan = circuit::fanInCount(n.kind);
                const Ternary a = values[n.a];
                const Ternary b = fan >= 2 ? values[n.b] : Ternary::X;
                const Ternary c = fan >= 3 ? values[n.c] : Ternary::X;
                values[i] = ternaryGateEval(n.kind, a, b, c);
                break;
            }
        }
    }
    return values;
}

std::vector<Ternary> absEvalNetlist(const circuit::Netlist& netlist,
                                    std::span<const Ternary> inputs) {
    return absEvalNodes(netlist.nodes(), netlist.inputs(), inputs);
}

namespace {

/// Core of absEvalProgram with an optional stuck-at override applied
/// mid-stream, shared with cannotDeviate's faulted run.
std::vector<Ternary> absRunProgram(const CompiledNetlist& compiled,
                                   std::span<const Ternary> inputs, const StuckSite* fault) {
    std::vector<Ternary> v(compiled.slotCount(), Ternary::X);
    for (const auto& [slot, value] : compiled.constantSlots()) v[slot] = ternaryOf(value);
    const std::span<const std::uint32_t> inSlots = compiled.inputSlots();
    for (std::size_t i = 0; i < inSlots.size(); ++i)
        v[inSlots[i]] = i < inputs.size() ? inputs[i] : Ternary::X;
    if (fault != nullptr && fault->afterInstr == CompiledNetlist::kFaultAtInputs)
        v[fault->slot] = ternaryOf(fault->stuckTo);

    const std::span<const Instr> instrs = compiled.instructions();
    for (std::size_t i = 0; i < instrs.size(); ++i) {
        const Instr& ins = instrs[i];
        if (ins.op == OpCode::HalfAdd) {
            // Dual destination: dst = sum, c = carry.
            v[ins.dst] = ternaryOpEval(OpCode::Xor, v[ins.a], v[ins.b], Ternary::Zero);
            v[ins.c] = ternaryOpEval(OpCode::And, v[ins.a], v[ins.b], Ternary::Zero);
        } else {
            const int fan = opFanIn(ins.op);
            v[ins.dst] = ternaryOpEval(ins.op, v[ins.a], fan >= 2 ? v[ins.b] : Ternary::Zero,
                                       fan >= 3 ? v[ins.c] : Ternary::Zero);
        }
        if (fault != nullptr && fault->afterInstr == i) v[fault->slot] = ternaryOf(fault->stuckTo);
    }
    return v;
}

}  // namespace

std::vector<Ternary> absEvalProgram(const CompiledNetlist& compiled,
                                    std::span<const Ternary> inputs) {
    return absRunProgram(compiled, inputs, nullptr);
}

std::vector<bool> cannotDeviate(const CompiledNetlist& compiled,
                                std::span<const StuckSite> sites) {
    const std::vector<Ternary> base = absRunProgram(compiled, {}, nullptr);
    const std::span<const Instr> instrs = compiled.instructions();
    const std::span<const std::uint32_t> outSlots = compiled.outputSlots();

    std::vector<bool> result(sites.size(), false);
    std::vector<bool> cone(compiled.slotCount(), false);
    for (std::size_t s = 0; s < sites.size(); ++s) {
        const StuckSite& site = sites[s];
        if (site.slot >= compiled.slotCount()) continue;

        // A plane already provably stuck at the stuck value: the override
        // never flips anything, on any input.
        if (base[site.slot] == ternaryOf(site.stuckTo)) {
            result[s] = true;
            continue;
        }

        // Structural fan-out cone of the fault point (same sweep as the
        // fault engine's replay-cone construction).
        std::fill(cone.begin(), cone.end(), false);
        cone[site.slot] = true;
        const std::uint32_t start =
            site.afterInstr == CompiledNetlist::kFaultAtInputs ? 0 : site.afterInstr + 1;
        bool anyOutputInCone = false;
        for (std::uint32_t i = start; i < instrs.size(); ++i) {
            const Instr& ins = instrs[i];
            const int fan = opFanIn(ins.op);
            bool hit = cone[ins.a];
            if (!hit && fan >= 2) hit = cone[ins.b];
            if (!hit && fan >= 3) hit = cone[ins.c];
            if (!hit) continue;
            cone[ins.dst] = true;
            if (ins.op == OpCode::HalfAdd) cone[ins.c] = true;
        }
        for (const std::uint32_t o : outSlots) anyOutputInCone = anyOutputInCone || cone[o];
        if (!anyOutputInCone) {
            result[s] = true;  // fault feeds no output (dead or truncated logic)
            continue;
        }

        // Abstract re-run with the stuck override in place: every output
        // either outside the cone or pinned to the same constant in both
        // runs cannot deviate.
        const std::vector<Ternary> faulted = absRunProgram(compiled, {}, &site);
        bool safe = true;
        for (const std::uint32_t o : outSlots) {
            if (!cone[o]) continue;
            if (base[o] == Ternary::X || faulted[o] != base[o]) {
                safe = false;
                break;
            }
        }
        result[s] = safe;
    }
    return result;
}

}  // namespace axf::verify
