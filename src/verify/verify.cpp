#include "src/verify/verify.hpp"

#include <atomic>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "src/verify/absint.hpp"

namespace axf::verify {

namespace {

using circuit::CompiledNetlist;
using circuit::GateKind;
using circuit::Netlist;
using circuit::Node;
using circuit::NodeId;
using circuit::kInvalidNode;
using circuit::kernels::Instr;
using circuit::kernels::OpCode;
using circuit::kernels::kOpCount;
using circuit::kernels::opFanIn;

std::string describe(const char* what, std::uint32_t id) {
    std::ostringstream os;
    os << what << " " << id;
    return os.str();
}

bool knownKind(GateKind kind) {
    return static_cast<std::uint8_t>(kind) <= static_cast<std::uint8_t>(GateKind::Maj);
}

// ---------------------------------------------------------------------------
// Netlist linter
// ---------------------------------------------------------------------------

/// Structural errors: everything evaluation correctness depends on.  Any
/// error here makes the deeper (reachability / hashing / abstract) passes
/// meaningless, so the caller skips them when this reports errors.
void lintStructure(std::span<const Node> nodes, std::span<const NodeId> inputs,
                   std::span<const NodeId> outputs, Diagnostics& d) {
    for (std::uint32_t i = 0; i < nodes.size(); ++i) {
        const Node& n = nodes[i];
        if (!knownKind(n.kind)) {
            d.add(Rule::NetArity, i,
                  describe("unknown gate kind", static_cast<std::uint32_t>(n.kind)));
            continue;
        }
        const int fan = circuit::fanInCount(n.kind);
        const NodeId operands[3] = {n.a, n.b, n.c};
        for (int k = 0; k < fan; ++k) {
            if (operands[k] == kInvalidNode) {
                d.add(Rule::NetArity, i,
                      std::string(circuit::gateKindName(n.kind)) + " gate missing operand " +
                          std::to_string(k));
            } else if (operands[k] >= nodes.size()) {
                d.add(Rule::NetOperandRange, i,
                      describe("operand references nonexistent node", operands[k]));
            } else if (operands[k] >= i) {
                // In the indexed-array IR a forward (or self) reference is
                // the only possible encoding of a cycle.
                d.add(Rule::NetOperandRange, i,
                      describe("operand breaks topological order (cycle): node", operands[k]));
            }
        }
    }

    // The inputs list must be exactly the Input nodes in creation order —
    // interface order is what binds netlist inputs to arithmetic operand
    // bits everywhere downstream.
    std::vector<NodeId> expected;
    for (std::uint32_t i = 0; i < nodes.size(); ++i)
        if (knownKind(nodes[i].kind) && nodes[i].kind == GateKind::Input)
            expected.push_back(i);
    if (inputs.size() != expected.size()) {
        d.add(Rule::NetInputList, kNoLocation,
              "input list has " + std::to_string(inputs.size()) + " entries, netlist has " +
                  std::to_string(expected.size()) + " Input nodes");
    } else {
        for (std::size_t k = 0; k < expected.size(); ++k) {
            if (inputs[k] != expected[k]) {
                d.add(Rule::NetInputList, expected[k],
                      describe("input list entry disagrees at position",
                               static_cast<std::uint32_t>(k)));
                break;
            }
        }
    }

    for (std::uint32_t k = 0; k < outputs.size(); ++k)
        if (outputs[k] == kInvalidNode || outputs[k] >= nodes.size())
            d.add(Rule::NetOutputRange, k, describe("output references nonexistent node", outputs[k]));
    if (outputs.empty()) d.add(Rule::NetNoOutputs, kNoLocation, "netlist drives no outputs");
}

/// Warning-level passes; only run on structurally clean IR.
void lintDeep(std::span<const Node> nodes, std::span<const NodeId> inputs,
              std::span<const NodeId> outputs, const LintOptions& options, Diagnostics& d) {
    // Backward reachability from the outputs.
    std::vector<bool> reachable(nodes.size(), false);
    std::vector<NodeId> stack(outputs.begin(), outputs.end());
    for (const NodeId o : outputs) reachable[o] = true;
    while (!stack.empty()) {
        const Node& n = nodes[stack.back()];
        stack.pop_back();
        const int fan = circuit::fanInCount(n.kind);
        const NodeId operands[3] = {n.a, n.b, n.c};
        for (int k = 0; k < fan; ++k)
            if (!reachable[operands[k]]) {
                reachable[operands[k]] = true;
                stack.push_back(operands[k]);
            }
    }
    for (std::uint32_t i = 0; i < nodes.size(); ++i) {
        if (reachable[i]) continue;
        switch (nodes[i].kind) {
            case GateKind::Input:
                d.add(Rule::NetDanglingInput, i, "no output depends on this input");
                break;
            case GateKind::Const0:
            case GateKind::Const1: break;  // stray constants are noise, not findings
            default:
                if (options.warnUnreachable)
                    d.add(Rule::NetUnreachable, i, "gate outside every output cone");
                break;
        }
    }

    // Duplicate structure via per-node cone hashing: two gates with equal
    // hashes compute (modulo hash collision) the same function of the same
    // inputs — one of them is redundant area.
    if (options.warnDuplicates) {
        const auto mix = [](std::uint64_t h, std::uint64_t v) {
            h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
            return h;
        };
        std::vector<std::uint64_t> hash(nodes.size());
        std::unordered_map<std::uint64_t, std::uint32_t> first;
        std::uint64_t inputOrdinal = 0;
        for (std::uint32_t i = 0; i < nodes.size(); ++i) {
            const Node& n = nodes[i];
            std::uint64_t h = mix(0x243F6A8885A308D3ull, static_cast<std::uint64_t>(n.kind));
            if (n.kind == GateKind::Input) {
                h = mix(h, inputOrdinal++);
            } else {
                const int fan = circuit::fanInCount(n.kind);
                const NodeId operands[3] = {n.a, n.b, n.c};
                for (int k = 0; k < fan; ++k) h = mix(h, hash[operands[k]]);
            }
            hash[i] = h;
            if (circuit::fanInCount(n.kind) == 0) continue;  // inputs/constants dedup is meaningless
            const auto [it, inserted] = first.try_emplace(h, i);
            if (!inserted)
                d.add(Rule::NetDuplicateStructure, i,
                      describe("cone structurally identical to node", it->second));
        }
    }

    // Provably constant gates: ternary abstract interpretation with all
    // inputs unknown.  A non-X gate value is a sound proof the gate folds.
    if (options.warnConstFoldable) {
        const std::vector<Ternary> abs = absEvalNodes(nodes, inputs);
        for (std::uint32_t i = 0; i < nodes.size(); ++i) {
            if (circuit::fanInCount(nodes[i].kind) == 0) continue;
            if (abs[i] != Ternary::X && reachable[i])
                d.add(Rule::NetConstFoldable, i,
                      abs[i] == Ternary::One ? "gate is provably constant 1"
                                             : "gate is provably constant 0");
        }
    }
}

// ---------------------------------------------------------------------------
// Compiled-program verifier
// ---------------------------------------------------------------------------

/// Memoized evaluation of one source-netlist cone down to a pinned
/// frontier, used to re-derive what a (possibly fused) instruction must
/// compute.  Reaching an unpinned Input or exceeding the node cap fails
/// the proof (recorded, reported by the caller).
class ConeEvaluator {
public:
    ConeEvaluator(const Netlist& source, std::span<const NodeId> pinNodes,
                  const bool* pinValues, std::size_t pinCount, std::size_t cap)
        : source_(source), pinNodes_(pinNodes), pinValues_(pinValues), pinCount_(pinCount),
          cap_(cap) {}

    bool failed() const { return failed_; }
    const char* failure() const { return failure_; }

    bool eval(NodeId id) {
        for (std::size_t p = 0; p < pinCount_; ++p)
            if (pinNodes_[p] == id) return pinValues_[p];
        const auto it = memo_.find(id);
        if (it != memo_.end()) return it->second;
        if (++visited_ > cap_) {
            fail("cone exceeds the node cap");
            return false;
        }
        const Node& n = source_.node(id);
        bool value = false;
        switch (n.kind) {
            case GateKind::Input: fail("cone reaches an unpinned primary input"); break;
            case GateKind::Const0: value = false; break;
            case GateKind::Const1: value = true; break;
            default: {
                const int fan = circuit::fanInCount(n.kind);
                const bool a = eval(n.a);
                const bool b = fan >= 2 && !failed_ ? eval(n.b) : false;
                const bool c = fan >= 3 && !failed_ ? eval(n.c) : false;
                value = circuit::gateEval(n.kind, a, b, c);
                break;
            }
        }
        memo_.emplace(id, value);
        return value;
    }

private:
    void fail(const char* why) {
        failed_ = true;
        if (failure_ == nullptr) failure_ = why;
    }

    const Netlist& source_;
    std::span<const NodeId> pinNodes_;
    const bool* pinValues_;
    std::size_t pinCount_;
    std::size_t cap_;
    std::size_t visited_ = 0;
    bool failed_ = false;
    const char* failure_ = nullptr;
    std::unordered_map<NodeId, bool> memo_;
};

/// Proves instruction `i` computes exactly the composition of source gates
/// it stands for: for every assignment of the operand planes' source
/// nodes, `opEval` of the instruction must equal the `gateEval` cone walk
/// from the destination's source node down to those (pinned) operands.
/// Operand-order normalization (the chain scheduler swaps commutative
/// operands) is transparent here — both sides are functions of *nodes*.
void checkFusionSemantics(const ProgramView& program, const Netlist& source,
                          const VerifyOptions& options, Diagnostics& d) {
    const std::span<const NodeId> slotNodes = program.slotNodes;
    for (std::uint32_t i = 0; i < program.instructions.size(); ++i) {
        const Instr& ins = program.instructions[i];
        const int fan = ins.op == OpCode::HalfAdd ? 2 : opFanIn(ins.op);
        const std::uint32_t operandSlots[3] = {ins.a, ins.b, ins.c};

        const NodeId target = slotNodes[ins.dst];
        const NodeId carryTarget = ins.op == OpCode::HalfAdd ? slotNodes[ins.c] : kInvalidNode;
        bool mappingOk = target < source.nodeCount() &&
                         (ins.op != OpCode::HalfAdd || carryTarget < source.nodeCount());
        NodeId operandNodes[3] = {kInvalidNode, kInvalidNode, kInvalidNode};
        for (int k = 0; k < fan; ++k) {
            operandNodes[k] = slotNodes[operandSlots[k]];
            mappingOk = mappingOk && operandNodes[k] < source.nodeCount();
        }
        if (!mappingOk) {
            d.add(Rule::ProgFusionSemantics, i, "instruction has no source-node mapping");
            continue;
        }

        // Distinct operand nodes form the pinned frontier (an operand node
        // appearing twice pins once and feeds both operand positions).
        NodeId frontier[3];
        std::size_t frontierSize = 0;
        for (int k = 0; k < fan; ++k) {
            bool seen = false;
            for (std::size_t p = 0; p < frontierSize; ++p) seen = seen || frontier[p] == operandNodes[k];
            if (!seen) frontier[frontierSize++] = operandNodes[k];
        }

        for (std::uint32_t mask = 0; mask < (1u << frontierSize); ++mask) {
            bool pinValues[3] = {false, false, false};
            for (std::size_t p = 0; p < frontierSize; ++p) pinValues[p] = (mask >> p) & 1u;
            const auto operandValue = [&](int k) {
                for (std::size_t p = 0; p < frontierSize; ++p)
                    if (frontier[p] == operandNodes[k]) return pinValues[p];
                return false;
            };
            const bool va = operandValue(0);
            const bool vb = fan >= 2 ? operandValue(1) : false;
            const bool vc = fan >= 3 ? operandValue(2) : false;

            ConeEvaluator cone(source, {frontier, frontierSize}, pinValues, frontierSize,
                               options.maxConeNodes);
            const bool expected = cone.eval(target);
            if (cone.failed()) {
                d.add(Rule::ProgFusionSemantics, i, cone.failure());
                break;
            }
            if (circuit::kernels::opEval(ins.op, va, vb, vc) != expected) {
                d.add(Rule::ProgFusionSemantics, i,
                      std::string(circuit::kernels::opCodeName(ins.op)) +
                          " result disagrees with the source gate composition");
                break;
            }
            if (ins.op == OpCode::HalfAdd) {
                const bool expectedCarry = cone.eval(carryTarget);
                if (cone.failed()) {
                    d.add(Rule::ProgFusionSemantics, i, cone.failure());
                    break;
                }
                if (circuit::kernels::opCarryEval(va, vb) != expectedCarry) {
                    d.add(Rule::ProgFusionSemantics, i,
                          "HalfAdd carry disagrees with the source gate composition");
                    break;
                }
            }
        }
    }
}

std::atomic<int> gVerifyOverride{-1};  // -1 follow env, 0 forced off, 1 forced on

}  // namespace

Diagnostics lintNetlist(std::span<const Node> nodes, std::span<const NodeId> inputs,
                        std::span<const NodeId> outputs, const LintOptions& options) {
    Diagnostics d;
    d.setLimit(options.maxDiagnostics);
    lintStructure(nodes, inputs, outputs, d);
    if (!d.hasErrors()) lintDeep(nodes, inputs, outputs, options, d);
    return d;
}

Diagnostics lintNetlist(const Netlist& netlist, const LintOptions& options) {
    return lintNetlist(netlist.nodes(), netlist.inputs(), netlist.outputs(), options);
}

Diagnostics verifyProgram(const ProgramView& program, const Netlist* source,
                          const VerifyOptions& options) {
    Diagnostics d;
    d.setLimit(options.maxDiagnostics);
    const std::size_t slots = program.slotCount;

    // Interface shape (CP008).
    std::vector<std::uint8_t> defined(slots, 0);
    for (std::uint32_t k = 0; k < program.inputSlots.size(); ++k) {
        const std::uint32_t s = program.inputSlots[k];
        if (s >= slots) {
            d.add(Rule::ProgInterface, k, describe("input slot out of range:", s));
        } else if (defined[s] != 0) {
            d.add(Rule::ProgInterface, k, describe("duplicate input slot", s));
        } else {
            defined[s] = 1;
        }
    }
    for (std::uint32_t k = 0; k < program.constants.size(); ++k) {
        const std::uint32_t s = program.constants[k].first;
        if (s >= slots) {
            d.add(Rule::ProgInterface, k, describe("constant slot out of range:", s));
        } else if (defined[s] != 0) {
            d.add(Rule::ProgInterface, k, describe("constant overlaps a defined slot:", s));
        } else {
            defined[s] = 1;
        }
    }
    for (std::uint32_t k = 0; k < program.outputSlots.size(); ++k)
        if (program.outputSlots[k] >= slots)
            d.add(Rule::ProgInterface, k,
                  describe("output slot out of range:", program.outputSlots[k]));
    const bool haveSlotNodes = !program.slotNodes.empty();
    if (haveSlotNodes && program.slotNodes.size() != slots)
        d.add(Rule::ProgInterface, kNoLocation, "slot-to-node map does not cover every slot");
    if (source != nullptr) {
        if (program.inputSlots.size() != source->inputCount())
            d.add(Rule::ProgInterface, kNoLocation, "input count differs from the source netlist");
        if (program.outputSlots.size() != source->outputCount())
            d.add(Rule::ProgInterface, kNoLocation,
                  "output count differs from the source netlist");
        if (haveSlotNodes && program.slotNodes.size() == slots &&
            program.outputSlots.size() == source->outputCount()) {
            for (std::uint32_t k = 0; k < program.outputSlots.size(); ++k) {
                const std::uint32_t s = program.outputSlots[k];
                if (s < slots && program.slotNodes[s] != source->outputs()[k])
                    d.add(Rule::ProgInterface, k,
                          describe("output plane carries the wrong source node:",
                                   program.slotNodes[s]));
            }
        }
    }

    // Dataflow discipline (CP001/CP002/CP003): single assignment plus
    // def-before-use — together they make clobbering a live plane
    // impossible, which is exactly the lifetime claim compile() relies on.
    for (std::uint32_t i = 0; i < program.instructions.size(); ++i) {
        const Instr& ins = program.instructions[i];
        if (static_cast<std::size_t>(ins.op) >= kOpCount) {
            d.add(Rule::ProgSlotRange, i,
                  describe("unknown opcode", static_cast<std::uint32_t>(ins.op)));
            continue;
        }
        const int fan = ins.op == OpCode::HalfAdd ? 2 : opFanIn(ins.op);
        const std::uint32_t operands[3] = {ins.a, ins.b, ins.c};
        for (int k = 0; k < fan; ++k) {
            if (operands[k] >= slots)
                d.add(Rule::ProgSlotRange, i, describe("operand slot out of range:", operands[k]));
            else if (defined[operands[k]] == 0)
                d.add(Rule::ProgUseBeforeDef, i,
                      describe("operand plane read before definition: slot", operands[k]));
        }
        const std::uint32_t dests[2] = {ins.dst, ins.c};
        const int destCount = ins.op == OpCode::HalfAdd ? 2 : 1;
        for (int k = 0; k < destCount; ++k) {
            if (dests[k] >= slots)
                d.add(Rule::ProgSlotRange, i, describe("destination slot out of range:", dests[k]));
            else if (defined[dests[k]] != 0)
                d.add(Rule::ProgRedefinition, i,
                      describe("write clobbers an already-defined plane: slot", dests[k]));
            else
                defined[dests[k]] = 1;
        }
        if (ins.op == OpCode::HalfAdd && ins.dst == ins.c)
            d.add(Rule::ProgRedefinition, i, "HalfAdd carry plane aliases its sum plane");
    }

    for (std::uint32_t k = 0; k < program.outputSlots.size(); ++k) {
        const std::uint32_t s = program.outputSlots[k];
        if (s < slots && defined[s] == 0)
            d.add(Rule::ProgOutputUndefined, k, describe("output plane never written: slot", s));
    }

    // Schedule claims (CP004/CP005): the runs must partition the stream
    // into same-opcode groups, and every chained run's link property must
    // hold (the chained kernels read operand a from a register).
    std::uint32_t expect = 0;
    bool runsCover = true;
    for (std::uint32_t r = 0; r < program.runs.size(); ++r) {
        const CompiledNetlist::Run& run = program.runs[r];
        if (run.begin != expect || run.end <= run.begin ||
            run.end > program.instructions.size()) {
            d.add(Rule::ProgRunShape, r, "run bounds do not partition the instruction stream");
            runsCover = false;
            break;
        }
        for (std::uint32_t i = run.begin; i < run.end; ++i)
            if (program.instructions[i].op != run.op) {
                d.add(Rule::ProgRunShape, r, describe("run opcode disagrees at instruction", i));
                runsCover = false;
            }
        if (run.chained)
            for (std::uint32_t i = run.begin + 1; i < run.end; ++i)
                if (program.instructions[i].a != program.instructions[i - 1].dst)
                    d.add(Rule::ProgChainClaim, r,
                          describe("chain link broken at instruction", i));
        expect = run.end;
    }
    if (runsCover && expect != program.instructions.size())
        d.add(Rule::ProgRunShape, kNoLocation, "runs do not cover the instruction stream");

    // Fusion semantics (CP006) only on structurally clean programs with a
    // source mapping: the cone walk needs trustworthy slot/node indices.
    if (!d.hasErrors() && source != nullptr && haveSlotNodes)
        checkFusionSemantics(program, *source, options, d);
    return d;
}

Diagnostics verifyProgram(const CompiledNetlist& compiled, const Netlist* source,
                          const VerifyOptions& options) {
    ProgramView view;
    view.instructions = compiled.instructions();
    view.runs = compiled.runs();
    view.inputSlots = compiled.inputSlots();
    view.outputSlots = compiled.outputSlots();
    view.constants = compiled.constantSlots();
    view.slotNodes = compiled.slotNodes();
    view.slotCount = compiled.slotCount();
    return verifyProgram(view, source, options);
}

bool verifyEnabled() {
    const int forced = gVerifyOverride.load(std::memory_order_relaxed);
    if (forced >= 0) return forced != 0;
    static const bool fromEnv = [] {
        const char* v = std::getenv("AXF_VERIFY");
        return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
    }();
    return fromEnv;
}

ScopedVerifyOverride::ScopedVerifyOverride(bool enabled)
    : previous_(gVerifyOverride.exchange(enabled ? 1 : 0, std::memory_order_relaxed)) {}

ScopedVerifyOverride::~ScopedVerifyOverride() {
    gVerifyOverride.store(previous_, std::memory_order_relaxed);
}

void throwIfErrors(const Diagnostics& diagnostics, const char* what) {
    if (diagnostics.hasErrors())
        throw std::logic_error(std::string(what) + ": " + diagnostics.summary());
}

}  // namespace axf::verify
