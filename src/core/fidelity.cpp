#include "src/core/fidelity.hpp"

#include <stdexcept>

namespace axf::core {

namespace {

int relation(double a, double b) { return a < b ? -1 : (a > b ? 1 : 0); }

double pairAgreement(std::span<const double> measured, std::span<const double> estimated,
                     bool includeDiagonal) {
    if (measured.size() != estimated.size())
        throw std::invalid_argument("fidelity: size mismatch");
    const std::size_t n = measured.size();
    if (n == 0) return 0.0;
    std::size_t agree = 0;
    std::size_t total = 0;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            if (!includeDiagonal && i == j) continue;
            ++total;
            if (relation(estimated[i], estimated[j]) == relation(measured[i], measured[j]))
                ++agree;
        }
    }
    return static_cast<double>(agree) / static_cast<double>(total);
}

}  // namespace

double fidelity(std::span<const double> measured, std::span<const double> estimated) {
    return pairAgreement(measured, estimated, /*includeDiagonal=*/true);
}

double fidelityOffDiagonal(std::span<const double> measured, std::span<const double> estimated) {
    return pairAgreement(measured, estimated, /*includeDiagonal=*/false);
}

}  // namespace axf::core
