#pragma once

#include <cstddef>
#include <vector>

namespace axf::core {

/// A candidate point in the (quality, cost) plane — both minimized.  For
/// this paper: x = error (MED), y = an FPGA parameter.
struct ParetoPoint {
    double x = 0.0;
    double y = 0.0;
    std::size_t index = 0;  ///< caller's identifier (library index)
};

/// Indices (into `points`) of the non-dominated subset.  A point dominates
/// another when it is <= in both coordinates and < in at least one.
std::vector<std::size_t> paretoFront(const std::vector<ParetoPoint>& points);

/// Peels `count` successive fronts: F1 over all points, F2 over the rest
/// (C \ F1), and so on — the paper's hedge against estimator error.
/// Returns per-front index lists; fewer fronts when points run out.
std::vector<std::vector<std::size_t>> successiveParetoFronts(
    const std::vector<ParetoPoint>& points, int count);

/// Fraction of `referenceFront` members that also appear in `candidate`
/// (the paper's "percentage coverage of the pareto-optimal designs").
/// Membership is by the `index` field.
double paretoCoverage(const std::vector<ParetoPoint>& candidateMembers,
                      const std::vector<ParetoPoint>& referenceFrontMembers);

}  // namespace axf::core
