#include "src/core/pareto.hpp"

#include <algorithm>
#include <limits>
#include <unordered_set>

namespace axf::core {

std::vector<std::size_t> paretoFront(const std::vector<ParetoPoint>& points) {
    // Sort by (x asc, y asc); sweep keeping the running minimum of y.
    std::vector<std::size_t> order(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        if (points[a].x != points[b].x) return points[a].x < points[b].x;
        return points[a].y < points[b].y;
    });

    std::vector<std::size_t> front;
    double bestY = std::numeric_limits<double>::infinity();
    double lastX = std::numeric_limits<double>::quiet_NaN();
    for (std::size_t pos : order) {
        const ParetoPoint& p = points[pos];
        if (p.y < bestY) {
            front.push_back(pos);
            bestY = p.y;
            lastX = p.x;
        } else if (p.y == bestY && p.x == lastX) {
            front.push_back(pos);  // exact ties are mutually non-dominated
        }
    }
    return front;
}

std::vector<std::vector<std::size_t>> successiveParetoFronts(
    const std::vector<ParetoPoint>& points, int count) {
    std::vector<std::vector<std::size_t>> fronts;
    std::vector<ParetoPoint> remaining = points;
    std::vector<std::size_t> remainingPos(points.size());  // position in `points`
    for (std::size_t i = 0; i < points.size(); ++i) remainingPos[i] = i;

    for (int f = 0; f < count && !remaining.empty(); ++f) {
        const std::vector<std::size_t> local = paretoFront(remaining);
        std::vector<std::size_t> global;
        global.reserve(local.size());
        std::unordered_set<std::size_t> removed(local.begin(), local.end());
        for (std::size_t pos : local) global.push_back(remainingPos[pos]);
        fronts.push_back(std::move(global));

        std::vector<ParetoPoint> nextPoints;
        std::vector<std::size_t> nextPos;
        for (std::size_t i = 0; i < remaining.size(); ++i) {
            if (removed.count(i)) continue;
            nextPoints.push_back(remaining[i]);
            nextPos.push_back(remainingPos[i]);
        }
        remaining = std::move(nextPoints);
        remainingPos = std::move(nextPos);
    }
    return fronts;
}

double paretoCoverage(const std::vector<ParetoPoint>& candidateMembers,
                      const std::vector<ParetoPoint>& referenceFrontMembers) {
    if (referenceFrontMembers.empty()) return 1.0;
    std::unordered_set<std::size_t> candidate;
    for (const ParetoPoint& p : candidateMembers) candidate.insert(p.index);
    std::size_t hit = 0;
    for (const ParetoPoint& p : referenceFrontMembers)
        if (candidate.count(p.index)) ++hit;
    return static_cast<double>(hit) / static_cast<double>(referenceFrontMembers.size());
}

}  // namespace axf::core
