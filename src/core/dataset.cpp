#include "src/core/dataset.hpp"

#include <stdexcept>

namespace axf::core {

const char* fpgaParamName(FpgaParam p) {
    switch (p) {
        case FpgaParam::Latency: return "latency";
        case FpgaParam::Power: return "power";
        case FpgaParam::Area: return "area";
    }
    return "?";
}

double fpgaParamOf(const synth::FpgaReport& report, FpgaParam p) {
    switch (p) {
        case FpgaParam::Latency: return report.latencyNs;
        case FpgaParam::Power: return report.powerMw;
        case FpgaParam::Area: return report.lutCount;
    }
    return 0.0;
}

CircuitDataset CircuitDataset::characterize(gen::AcLibrary library,
                                            const synth::AsicFlow& asicFlow,
                                            cache::CharacterizationCache* cache) {
    CircuitDataset ds;
    ds.circuits_.reserve(library.size());
    for (gen::LibraryCircuit& entry : library) {
        CharacterizedCircuit cc;
        cc.asic = cache::synthesizeCached(cache, asicFlow, entry.netlist);
        const circuit::StructuralFeatures sf = circuit::extractFeatures(entry.netlist);
        cc.features = sf.toVector();
        cc.features.push_back(cc.asic.areaUm2);
        cc.features.push_back(cc.asic.delayNs);
        cc.features.push_back(cc.asic.powerMw);
        cc.circuit = std::move(entry);
        ds.circuits_.push_back(std::move(cc));
    }
    return ds;
}

ml::AsicColumns CircuitDataset::asicColumns() {
    const std::size_t base = circuit::StructuralFeatures::dimension();
    return ml::AsicColumns{base, base + 1, base + 2};
}

std::size_t CircuitDataset::featureDimension() {
    return circuit::StructuralFeatures::dimension() + 3;
}

ml::Matrix CircuitDataset::featureMatrix(const std::vector<std::size_t>& indices) const {
    ml::Matrix x(indices.size(), featureDimension());
    for (std::size_t r = 0; r < indices.size(); ++r) {
        const std::vector<double>& f = circuits_[indices[r]].features;
        for (std::size_t c = 0; c < f.size(); ++c) x.at(r, c) = f[c];
    }
    return x;
}

ml::Vector CircuitDataset::measuredTargets(const std::vector<std::size_t>& indices,
                                           FpgaParam param) const {
    ml::Vector y(indices.size());
    for (std::size_t r = 0; r < indices.size(); ++r) {
        const CharacterizedCircuit& cc = circuits_[indices[r]];
        if (!cc.fpgaMeasured)
            throw std::logic_error("measuredTargets: circuit has no FPGA measurement");
        y[r] = fpgaParamOf(cc.fpga, param);
    }
    return y;
}

}  // namespace axf::core
