#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/core/dataset.hpp"
#include "src/core/pareto.hpp"

namespace axf::core {

/// Fidelity scores of one Table-I model on the validation subset.
struct ModelScore {
    std::string id;
    std::string name;
    std::map<FpgaParam, double> fidelityByParam;
    /// Chosen hyperparameter variant per parameter (only when the flow runs
    /// with `tuneHyperparameters`; "default" otherwise).
    std::map<FpgaParam, std::string> variantByParam;
};

/// Per-FPGA-parameter outcome of the methodology.
struct TargetOutcome {
    FpgaParam param = FpgaParam::Latency;
    std::vector<std::string> selectedModels;       ///< top-k ids by fidelity
    std::vector<std::size_t> pseudoParetoIndices;  ///< union over models & fronts
    std::vector<std::size_t> resynthesized;        ///< newly synthesized circuits
    std::vector<std::size_t> finalParetoIndices;   ///< measured-circuit front
    double coverageOfTrueFront = 0.0;  ///< vs. the exhaustive ground truth
};

/// End-to-end result of one ApproxFPGAs run on one library.
struct FlowResult {
    CircuitDataset dataset;  ///< circuits with their measurement flags
    std::vector<ModelScore> leaderboard;  ///< all 18 models x 3 params
    std::vector<TargetOutcome> targets;   ///< one per FPGA parameter

    // Exploration-time accounting (Vivado-equivalent seconds, Fig. 3).
    double exhaustiveSynthSeconds = 0.0;  ///< synthesizing the whole library
    double flowSynthSeconds = 0.0;        ///< subset + pseudo-Pareto re-synthesis
    std::size_t circuitsSynthesized = 0;  ///< unique circuits the flow synthesized

    double speedup() const {
        return flowSynthSeconds > 0.0 ? exhaustiveSynthSeconds / flowSynthSeconds : 0.0;
    }
    double meanCoverage() const;
};

/// The ApproxFPGAs methodology (Fig. 2): synthesize a training subset,
/// learn estimators, score them with the fidelity metric, estimate the
/// whole library, peel multiple pseudo-Pareto fronts, re-synthesize their
/// union, and report the final Pareto-optimal FPGA-ACs.
class ApproxFpgasFlow {
public:
    struct Config {
        double trainFraction = 0.10;   ///< share of the library synthesized up front
        double validationShare = 0.20;  ///< of the subset, held out for fidelity
        int paretoFronts = 3;          ///< successive pseudo-fronts peeled
        int topModels = 3;             ///< models selected per parameter
        std::uint64_t seed = 0x5EED;
        synth::FpgaFlow fpgaFlow{};
        synth::AsicFlow asicFlow{};
        /// Restrict scoring to these model ids (empty = all of Table I).
        std::vector<std::string> modelIds;
        /// Run the paper's "modification of ML parameters" loop (Fig. 2):
        /// per model and parameter, sweep a small hyperparameter grid and
        /// keep the variant with the best validation fidelity.
        bool tuneHyperparameters = false;
        /// Compute ground-truth fronts for coverage reporting (synthesizes
        /// everything once; never counted into flow time).
        bool evaluateCoverage = true;
        /// Optional characterization cache (not owned): ASIC and FPGA
        /// reports are reused across runs and processes.  The *modeled*
        /// Vivado-equivalent seconds are still charged on cache hits —
        /// results (including exploration-time accounting) are identical
        /// with and without the cache; only wall-clock changes.
        cache::CharacterizationCache* cache = nullptr;
    };

    explicit ApproxFpgasFlow(Config config) : config_(std::move(config)) {}

    /// Runs the methodology over a pre-built library.
    FlowResult run(gen::AcLibrary library) const;

    /// Quality axis used for Pareto construction (the paper plots MED).
    static double qualityOf(const CharacterizedCircuit& cc) { return cc.circuit.error.med; }

private:
    Config config_;
};

}  // namespace axf::core
