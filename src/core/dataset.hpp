#pragma once

#include <vector>

#include "src/cache/characterization_cache.hpp"
#include "src/circuit/features.hpp"
#include "src/gen/library.hpp"
#include "src/ml/linalg.hpp"
#include "src/ml/registry.hpp"
#include "src/synth/asic.hpp"
#include "src/synth/fpga.hpp"

namespace axf::core {

/// The three FPGA parameters the methodology estimates.
enum class FpgaParam { Latency, Power, Area };
inline constexpr std::array<FpgaParam, 3> kAllFpgaParams = {FpgaParam::Latency, FpgaParam::Power,
                                                            FpgaParam::Area};
const char* fpgaParamName(FpgaParam p);
double fpgaParamOf(const synth::FpgaReport& report, FpgaParam p);

/// One library circuit with everything the methodology knows about it:
/// its error profile (from the library), the cheap ASIC reference metrics,
/// the ML feature vector, and — once "synthesized" — the FPGA measurements.
struct CharacterizedCircuit {
    gen::LibraryCircuit circuit;
    synth::AsicReport asic;
    std::vector<double> features;  ///< structural features ⊕ ASIC metrics
    bool fpgaMeasured = false;
    synth::FpgaReport fpga;        ///< valid iff fpgaMeasured
};

/// Characterized library plus the feature layout the registry needs.
class CircuitDataset {
public:
    /// Runs ASIC characterization and feature extraction over a library.
    /// (No FPGA synthesis happens here — that is the expensive step the
    /// methodology rations.)  A non-null cache reuses content-addressed
    /// ASIC reports from earlier runs; results are identical either way.
    static CircuitDataset characterize(gen::AcLibrary library,
                                       const synth::AsicFlow& asicFlow = synth::AsicFlow(),
                                       cache::CharacterizationCache* cache = nullptr);

    std::vector<CharacterizedCircuit>& circuits() { return circuits_; }
    const std::vector<CharacterizedCircuit>& circuits() const { return circuits_; }
    std::size_t size() const { return circuits_.size(); }

    /// Column indices of the ASIC metrics inside the feature vectors.
    static ml::AsicColumns asicColumns();
    static std::size_t featureDimension();

    /// Assembles the (X, y) pair over a subset of circuit indices; `y` is
    /// the *measured* FPGA parameter (indices must be measured circuits).
    ml::Matrix featureMatrix(const std::vector<std::size_t>& indices) const;
    ml::Vector measuredTargets(const std::vector<std::size_t>& indices, FpgaParam param) const;

private:
    std::vector<CharacterizedCircuit> circuits_;
};

}  // namespace axf::core
