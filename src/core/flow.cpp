#include "src/core/flow.hpp"

#include <algorithm>
#include <unordered_set>

#include <map>

#include "src/core/fidelity.hpp"
#include "src/ml/tuning.hpp"
#include "src/synth/synth_time.hpp"
#include "src/util/rng.hpp"

namespace axf::core {

double FlowResult::meanCoverage() const {
    if (targets.empty()) return 0.0;
    double acc = 0.0;
    for (const TargetOutcome& t : targets) acc += t.coverageOfTrueFront;
    return acc / static_cast<double>(targets.size());
}

namespace {

/// Synthesizes (or reuses) the FPGA measurement of one circuit and charges
/// its Vivado-equivalent cost to `secondsAccount` when newly synthesized.
/// A characterization-cache hit still charges the modeled seconds: the
/// cache accelerates the simulation infrastructure, not the methodology.
bool measureCircuit(CharacterizedCircuit& cc, const synth::FpgaFlow& flow,
                    cache::CharacterizationCache* cache, double& secondsAccount) {
    if (cc.fpgaMeasured) return false;
    cc.fpga = cache::implementCached(cache, flow, cc.circuit.netlist);
    cc.fpgaMeasured = true;
    secondsAccount += cc.fpga.synthSeconds;
    return true;
}

}  // namespace

FlowResult ApproxFpgasFlow::run(gen::AcLibrary library) const {
    FlowResult result;
    result.dataset =
        CircuitDataset::characterize(std::move(library), config_.asicFlow, config_.cache);
    std::vector<CharacterizedCircuit>& circuits = result.dataset.circuits();
    const std::size_t n = circuits.size();
    util::Rng rng(config_.seed);

    // Exhaustive-exploration cost baseline (Fig. 3 comparison).
    for (const CharacterizedCircuit& cc : circuits)
        result.exhaustiveSynthSeconds += synth::vivadoEquivalentSeconds(cc.circuit.netlist);

    // --- step 1: synthesize the random training subset --------------------
    const std::size_t subsetSize =
        std::max<std::size_t>(8, static_cast<std::size_t>(config_.trainFraction *
                                                          static_cast<double>(n)));
    std::vector<std::size_t> subset = rng.sampleIndices(n, std::min(subsetSize, n));
    for (std::size_t idx : subset)
        measureCircuit(circuits[idx], config_.fpgaFlow, config_.cache, result.flowSynthSeconds);

    // --- step 2: train/validation split -----------------------------------
    const std::size_t valCount = std::max<std::size_t>(
        2, static_cast<std::size_t>(config_.validationShare *
                                    static_cast<double>(subset.size())));
    std::vector<std::size_t> validation(subset.begin(),
                                        subset.begin() + static_cast<std::ptrdiff_t>(
                                                             std::min(valCount, subset.size())));
    std::vector<std::size_t> training(subset.begin() + static_cast<std::ptrdiff_t>(
                                                           std::min(valCount, subset.size())),
                                      subset.end());
    if (training.empty()) training = validation;

    const ml::Matrix xTrain = result.dataset.featureMatrix(training);
    const ml::Matrix xVal = result.dataset.featureMatrix(validation);

    // --- step 3: fidelity leaderboard over the Table-I zoo ----------------
    std::vector<ml::ModelSpec> specs = ml::tableOneModels(CircuitDataset::asicColumns());
    if (!config_.modelIds.empty()) {
        std::vector<ml::ModelSpec> filtered;
        for (const ml::ModelSpec& spec : specs)
            if (std::find(config_.modelIds.begin(), config_.modelIds.end(), spec.id) !=
                config_.modelIds.end())
                filtered.push_back(spec);
        specs = std::move(filtered);
    }

    // Per (model, parameter) factory used later for full-library estimation;
    // with tuning enabled this is the best grid variant, otherwise the
    // Table-I default.
    std::map<std::pair<std::string, FpgaParam>, std::function<ml::RegressorPtr()>> factories;
    const ml::AsicColumns asicColumns = CircuitDataset::asicColumns();
    const auto fidelityScore = [](const ml::Vector& measured, const ml::Vector& estimated) {
        return fidelity(measured, estimated);
    };

    for (const ml::ModelSpec& spec : specs) {
        ModelScore score;
        score.id = spec.id;
        score.name = spec.name;
        for (FpgaParam param : kAllFpgaParams) {
            const ml::Vector yTrain = result.dataset.measuredTargets(training, param);
            const ml::Vector yVal = result.dataset.measuredTargets(validation, param);
            if (config_.tuneHyperparameters) {
                ml::TunedModel tuned = ml::tuneModel(spec.id, asicColumns, xTrain, yTrain, xVal,
                                                     yVal, fidelityScore);
                score.fidelityByParam[param] = tuned.validationScore;
                score.variantByParam[param] = tuned.variantDescription;
                factories[{spec.id, param}] = std::move(tuned.make);
            } else {
                ml::RegressorPtr model = spec.make();
                model->fit(xTrain, yTrain);
                score.fidelityByParam[param] = fidelity(yVal, model->predictAll(xVal));
                score.variantByParam[param] = "default";
                factories[{spec.id, param}] = spec.make;
            }
        }
        result.leaderboard.push_back(std::move(score));
    }

    // --- step 4..6: per-parameter estimation, pseudo-fronts, re-synthesis --
    std::vector<std::size_t> allIndices(n);
    for (std::size_t i = 0; i < n; ++i) allIndices[i] = i;
    const ml::Matrix xAll = result.dataset.featureMatrix(allIndices);
    const ml::Matrix xSubset = result.dataset.featureMatrix(subset);

    for (FpgaParam param : kAllFpgaParams) {
        TargetOutcome outcome;
        outcome.param = param;

        // Top-k models by validation fidelity for this parameter.
        std::vector<const ModelScore*> ranked;
        for (const ModelScore& s : result.leaderboard) ranked.push_back(&s);
        std::sort(ranked.begin(), ranked.end(), [&](const ModelScore* a, const ModelScore* b) {
            return a->fidelityByParam.at(param) > b->fidelityByParam.at(param);
        });
        const int k = std::min<int>(config_.topModels, static_cast<int>(ranked.size()));

        std::unordered_set<std::size_t> unionOfFronts;
        for (int m = 0; m < k; ++m) {
            const ModelScore& chosen = *ranked[static_cast<std::size_t>(m)];
            outcome.selectedModels.push_back(chosen.id);

            // Re-train on the full synthesized subset, estimate everything.
            ml::RegressorPtr model = factories.at({chosen.id, param})();
            model->fit(xSubset, result.dataset.measuredTargets(subset, param));
            const ml::Vector estimates = model->predictAll(xAll);

            // Peel successive pseudo-Pareto fronts in (MED, estimate).
            std::vector<ParetoPoint> points(n);
            for (std::size_t i = 0; i < n; ++i)
                points[i] = ParetoPoint{qualityOf(circuits[i]), estimates[i], i};
            for (const std::vector<std::size_t>& front :
                 successiveParetoFronts(points, config_.paretoFronts))
                for (std::size_t pos : front) unionOfFronts.insert(points[pos].index);
        }

        outcome.pseudoParetoIndices.assign(unionOfFronts.begin(), unionOfFronts.end());
        std::sort(outcome.pseudoParetoIndices.begin(), outcome.pseudoParetoIndices.end());

        // Re-synthesize the pseudo-Pareto circuits to get true numbers.
        for (std::size_t idx : outcome.pseudoParetoIndices)
            if (measureCircuit(circuits[idx], config_.fpgaFlow, config_.cache,
                               result.flowSynthSeconds))
                outcome.resynthesized.push_back(idx);

        result.targets.push_back(std::move(outcome));
    }

    result.circuitsSynthesized = 0;
    for (const CharacterizedCircuit& cc : circuits)
        if (cc.fpgaMeasured) ++result.circuitsSynthesized;

    // --- step 7: final Pareto fronts over measured circuits ---------------
    for (TargetOutcome& outcome : result.targets) {
        std::vector<ParetoPoint> measured;
        for (std::size_t i = 0; i < n; ++i) {
            if (!circuits[i].fpgaMeasured) continue;
            measured.push_back(
                ParetoPoint{qualityOf(circuits[i]), fpgaParamOf(circuits[i].fpga, outcome.param), i});
        }
        for (std::size_t pos : paretoFront(measured))
            outcome.finalParetoIndices.push_back(measured[pos].index);
        std::sort(outcome.finalParetoIndices.begin(), outcome.finalParetoIndices.end());
    }

    // --- evaluation only: coverage against the exhaustive ground truth ----
    if (config_.evaluateCoverage) {
        // Ground-truth measurements (not charged to the flow's time).
        std::vector<synth::FpgaReport> truth(n);
        for (std::size_t i = 0; i < n; ++i)
            truth[i] = circuits[i].fpgaMeasured
                           ? circuits[i].fpga
                           : cache::implementCached(config_.cache, config_.fpgaFlow,
                                                    circuits[i].circuit.netlist);
        for (TargetOutcome& outcome : result.targets) {
            std::vector<ParetoPoint> all(n);
            for (std::size_t i = 0; i < n; ++i)
                all[i] = ParetoPoint{qualityOf(circuits[i]), fpgaParamOf(truth[i], outcome.param), i};
            std::vector<ParetoPoint> trueFront;
            for (std::size_t pos : paretoFront(all)) trueFront.push_back(all[pos]);
            std::vector<ParetoPoint> found;
            for (std::size_t idx : outcome.finalParetoIndices)
                found.push_back(ParetoPoint{0.0, 0.0, idx});
            outcome.coverageOfTrueFront = paretoCoverage(found, trueFront);
        }
    }
    return result;
}

}  // namespace axf::core
