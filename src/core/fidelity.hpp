#pragma once

#include <span>

namespace axf::core {

/// The paper's fidelity metric (Eq. 1-2): the fraction of ordered pairs
/// (x1, x2) of the evaluation set whose *relationship* (<, >, =) between
/// estimated values matches the relationship between measured values.
///
/// All |X|^2 ordered pairs are counted, including the diagonal (which
/// always agrees), exactly as the formula states.  Result is in [0, 1].
double fidelity(std::span<const double> measured, std::span<const double> estimated);

/// Pairwise agreement excluding the trivially matching diagonal — a
/// stricter variant used in tests to cross-check the headline metric.
double fidelityOffDiagonal(std::span<const double> measured, std::span<const double> estimated);

}  // namespace axf::core
