#include "src/core/release.hpp"

#include <fstream>
#include <set>

#include "src/circuit/export.hpp"
#include "src/util/table.hpp"

namespace axf::core {

std::size_t releaseLibrary(const FlowResult& result, const std::filesystem::path& directory) {
    std::filesystem::create_directories(directory);

    std::set<std::size_t> releaseSet;
    for (const TargetOutcome& t : result.targets)
        releaseSet.insert(t.finalParetoIndices.begin(), t.finalParetoIndices.end());

    util::Table index({"name", "origin", "operator", "med", "wce", "error_prob", "fpga_luts",
                       "fpga_latency_ns", "fpga_power_mw", "asic_area_um2", "asic_delay_ns",
                       "asic_power_mw"});
    for (std::size_t idx : releaseSet) {
        const CharacterizedCircuit& cc = result.dataset.circuits()[idx];
        if (!cc.fpgaMeasured) continue;
        const std::string base = cc.circuit.name;
        {
            std::ofstream verilog(directory / (base + ".v"));
            circuit::writeVerilog(verilog, cc.circuit.netlist, base);
        }
        {
            std::ofstream c(directory / (base + ".c"));
            circuit::writeBehavioralC(c, cc.circuit.netlist, base, cc.circuit.signature.widthA);
        }
        index.addRow({base, cc.circuit.origin, cc.circuit.signature.toString(),
                      util::Table::num(cc.circuit.error.med, 8),
                      util::Table::num(cc.circuit.error.worstCaseError, 0),
                      util::Table::num(cc.circuit.error.errorProbability, 5),
                      util::Table::num(cc.fpga.lutCount, 0),
                      util::Table::num(cc.fpga.latencyNs, 3),
                      util::Table::num(cc.fpga.powerMw, 4),
                      util::Table::num(cc.asic.areaUm2, 2),
                      util::Table::num(cc.asic.delayNs, 3),
                      util::Table::num(cc.asic.powerMw, 4)});
    }
    std::ofstream csv(directory / "index.csv");
    index.writeCsv(csv);
    return index.rowCount();
}

}  // namespace axf::core
