#pragma once

#include <filesystem>
#include <string>

#include "src/core/flow.hpp"

namespace axf::core {

/// Writes the open-source artifact the paper publishes: the union of the
/// per-parameter Pareto-optimal FPGA-ACs as structural Verilog (.v) and
/// behavioural C (.c) models plus an index.csv with error and FPGA/ASIC
/// metrics per circuit.  Returns the number of circuits released.
std::size_t releaseLibrary(const FlowResult& result, const std::filesystem::path& directory);

}  // namespace axf::core
