#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/circuit/arith.hpp"
#include "src/circuit/batch_sim.hpp"
#include "src/circuit/netlist.hpp"
#include "src/error/error_metrics.hpp"
#include "src/util/bytes.hpp"

namespace axf::fault {

/// One stuck-at fault location in a compiled program: the output plane of
/// an emitted instruction (including the carry plane of a dual-destination
/// HalfAdd) or a primary-input slot, forced to 0 or 1.  Constants are not
/// fault sites (a stuck constant is either a no-op or another constant,
/// i.e. a different circuit, not a defect model).
struct FaultSite {
    /// Representative node in the *source* netlist whose value the slot
    /// carries: a stuck-at here is exactly a stuck-at on that node's
    /// output (opcode fusion preserves every surviving node's function).
    circuit::NodeId node = circuit::kInvalidNode;
    std::uint32_t slot = 0;
    /// Producing instruction index, or CompiledNetlist::kFaultAtInputs for
    /// primary-input sites.
    std::uint32_t afterInstr = 0;
    bool stuckTo = false;
    bool isInput = false;
    /// Number of pre-collapse sites this site represents (>= 1): stuck-ats
    /// on a single-consumer value and on the Buf copy reading it are the
    /// same fault and are collapsed onto one representative.
    std::uint32_t collapsed = 1;

    void serialize(util::ByteWriter& out) const;
    static bool deserialize(util::ByteReader& in, FaultSite& out);
};

/// Deterministic fault-site enumeration over a compiled program.  Site
/// order is fixed: input slots first (interface order), then instructions
/// in stream order (a HalfAdd contributes its sum plane, then its carry
/// plane), with stuck-at-0 before stuck-at-1 per plane.
struct SiteEnumeration {
    std::vector<FaultSite> sites;
    /// Pre-collapse site count (== sum of `collapsed` over `sites`).
    std::uint32_t totalSites = 0;
};

SiteEnumeration enumerateFaultSites(const circuit::CompiledNetlist& compiled,
                                    bool includeInputFaults = true,
                                    bool collapseEquivalent = true);

/// Campaign configuration.  The embedded `analysis` member carries the
/// shared evaluation contract (`exhaustiveLimit`, `sampleCount`, `seed`,
/// `threads`) with the same semantics as `analyzeError`: spaces within the
/// exhaustive limit are swept completely per fault, larger spaces are
/// sampled (`sampleCount` vectors per fault, seeded deterministically).
struct CampaignConfig {
    error::ErrorAnalysisConfig analysis;
    bool includeInputFaults = true;
    bool collapseEquivalent = true;
    /// Statically prove cannot-deviate sites before evaluating anything
    /// (ternary abstract interpretation over the compiled program, see
    /// src/verify/absint.hpp) and skip them outright: a proven site gets
    /// the nominal error report and zero deviation without simulating a
    /// single vector.  Sound, so results are bit-identical either way —
    /// this only changes what work is spent discovering them.
    bool staticSkip = true;
    /// A fault is *critical* when its error-under-fault MED reaches
    /// `criticalFactor * max(nominal MED, criticalFloor)`.
    double criticalFactor = 4.0;
    double criticalFloor = 1e-3;
    std::size_t maxCritical = 32;
};

/// Per-fault campaign result: the full error report of the faulted circuit
/// plus how often its outputs deviated from the fault-free circuit.
struct FaultImpact {
    FaultSite site;
    error::ErrorReport error;
    std::uint64_t deviatedVectors = 0;
    double deviationProbability = 0.0;

    /// A fault is detected when at least one evaluated vector exposes it.
    bool detected() const { return deviatedVectors != 0; }

    void serialize(util::ByteWriter& out) const;
    static bool deserialize(util::ByteReader& in, FaultImpact& out);
};

/// Full resilience characterization of one circuit.  All aggregate metrics
/// weight each site by its `collapsed` count, so collapsing equivalent
/// sites changes the campaign cost but not the reported statistics.
struct ResilienceReport {
    error::ErrorReport nominal;           ///< fault-free reference
    std::vector<FaultImpact> faults;      ///< enumeration order
    std::uint32_t totalSites = 0;         ///< pre-collapse site count
    std::uint64_t vectorsPerFault = 0;
    bool exhaustive = false;

    double meanMedUnderFault = 0.0;   ///< collapsed-weighted mean fault MED
    double worstMedUnderFault = 0.0;
    std::uint32_t worstFault = 0;     ///< index into `faults`
    /// Collapsed-weighted fraction of sites detected by the evaluated
    /// vector set (a test-coverage style figure of merit).
    double faultCoverage = 0.0;
    /// Indices of critical faults (see CampaignConfig), most severe first.
    std::vector<std::uint32_t> criticalFaults;

    std::string summary() const;

    void serialize(util::ByteWriter& out) const;
    static bool deserialize(util::ByteReader& in, ResilienceReport& out);
};

/// Runs a stuck-at campaign over every enumerated fault site.
///
/// Determinism contract (same as `analyzeError`): results are
/// bit-identical at any `analysis.threads` setting and across kernel
/// backends.  Each fault's metrics are folded from fixed-size per-block
/// partial accumulators merged strictly in block order; the work split
/// over threads is a fixed-size fault partition that never depends on the
/// thread count.
///
/// Exhaustive spaces use per-fault plane-flip replays against a shared
/// fault-free reference sweep: the reference block is simulated once,
/// each fault re-executes only its fan-out cone, and blocks where the
/// fault does not reach an output reuse the nominal partial accumulator
/// outright.  Sampled spaces pack three faults plus the fault-free
/// reference into one 256-lane block (64 lanes each) and compute per-fault
/// deviation in-register against the reference lane group.
ResilienceReport analyzeResilience(const circuit::Netlist& netlist,
                                   const circuit::ArithSignature& sig,
                                   const CampaignConfig& config = {});

/// Scalar oracle helper: a copy of `netlist` with `node`'s output stuck at
/// `value`.  Gate and constant nodes are replaced in place by a constant
/// (ids unchanged); for an Input node the input is kept (the interface
/// must survive) and every consumer is redirected to an inserted constant.
circuit::Netlist stuckAtNetlist(const circuit::Netlist& netlist, circuit::NodeId node,
                                bool value);

}  // namespace axf::fault
