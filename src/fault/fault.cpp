#include "src/fault/fault.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "src/circuit/kernels.hpp"
#include "src/error/accumulator.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/util/rng.hpp"
#include "src/util/thread_pool.hpp"
#include "src/verify/absint.hpp"

namespace axf::fault {

namespace {

using circuit::CompiledNetlist;
using circuit::GateKind;
using circuit::Netlist;
using circuit::NodeId;
using circuit::kernels::OpCode;
using circuit::kernels::opFanIn;
using error::detail::Accumulator;
using error::detail::Workspace;
using error::detail::fillExactExhaustive;
using error::detail::mixSeed;
using Word = CompiledNetlist::Word;

/// Sizing bound for width-agnostic buffers; every task follows the
/// compiled program's *chosen* width (`blockWords()`: 4 / 8 / 16 words =
/// 256 / 512 / 1024 lanes per sweep) at runtime.
constexpr std::size_t kMaxWords = error::detail::kMaxWords;

/// Accumulation granularity (256 lanes) every block width reproduces: the
/// exhaustive campaign merges one *fresh* partial accumulator per
/// kBaseLanes sub-block in ascending order — the canonical accumulation
/// structure the 4-word oracle defines — so reports stay bit-identical
/// across block widths.
constexpr std::size_t kBaseLanes = error::detail::kBaseLanes;
constexpr std::size_t kMaxSubBlocks = kMaxWords * 64 / kBaseLanes;

/// Faults per exhaustive work task.  Fixed (never derived from the thread
/// count), and each fault's block-ordered partials are independent of the
/// partition anyway, which keeps every report bit-identical at any
/// parallelism.  64 faults amortize one shared reference simulation per
/// block to ~1.5% overhead per fault while still splitting the complete
/// fault list of even small circuits across a few workers.
constexpr std::size_t kFaultsPerTask = 64;

/// Lanes per fault group in the sampled lane-group packing: one reference
/// group plus `blockWords() - 1` fault groups per block — three faults
/// ride each simulation at the 4-word width, seven at 8, fifteen at 16.
constexpr std::size_t kGroupLanes = 64;

/// Runtime-width dispatch into the compiled program's templated entry
/// points.  The width is an execution-shape choice only: every branch
/// computes bit-identical results.
void runBlock(const CompiledNetlist& compiled, std::size_t words, const Word* in, Word* out,
              Word* ws) {
    switch (words) {
        case 4: compiled.run<4>(in, out, ws); break;
        case 8: compiled.run<8>(in, out, ws); break;
        default: compiled.run<16>(in, out, ws); break;
    }
}

void runBlockWithFaults(const CompiledNetlist& compiled, std::size_t words, const Word* in,
                        Word* out, Word* ws,
                        std::span<const CompiledNetlist::InjectedFault> faults) {
    switch (words) {
        case 4: compiled.runWithFaults<4>(in, out, ws, faults); break;
        case 8: compiled.runWithFaults<8>(in, out, ws, faults); break;
        default: compiled.runWithFaults<16>(in, out, ws, faults); break;
    }
}

/// Owning 128-byte-aligned workspace for direct CompiledNetlist::run calls
/// (BatchSimulator does not expose its workspace pointer, and the fault
/// replay needs raw slot-plane access).  Sized and aligned for the
/// program's chosen block width (128 bytes covers the widest, W = 16,
/// whole-slot vector accesses).
struct SimScratch {
    explicit SimScratch(const CompiledNetlist& compiled)
        : storage(compiled.workspaceWords(compiled.blockWords()) + kAlignWords, 0) {
        const std::size_t misalign =
            reinterpret_cast<std::uintptr_t>(storage.data()) % (kAlignWords * sizeof(Word));
        ws = storage.data() + (misalign ? kAlignWords - misalign / sizeof(Word) : 0);
        compiled.initWorkspace({ws, compiled.workspaceWords(compiled.blockWords())},
                               compiled.blockWords());
    }
    std::vector<Word> storage;
    Word* ws = nullptr;

private:
    static constexpr std::size_t kAlignWords = 16;  // 128 bytes
};

/// Decodes a full `blockWords`-wide output block and hands the typed lane
/// array to `fn`.
template <typename Fn>
void withDecoded(const std::vector<Word>& out, std::size_t outputs, Workspace& w,
                 std::size_t blockWords, Fn&& fn) {
    if (outputs <= 16) {
        error::detail::decodeOutputsU16(out.data(), outputs, w.approx16.data(), blockWords);
        fn(w.approx16.data());
    } else if (outputs <= 32) {
        error::detail::decodeOutputsU32(out.data(), outputs, w.approx32.data(), blockWords);
        fn(w.approx32.data());
    } else {
        error::detail::decodeOutputsU64(out.data(), outputs, w.approx64.data(), blockWords);
        fn(w.approx64.data());
    }
}

/// Exhaustive-campaign replay plan for one fault site: the fan-out cone as
/// a dense copy of the instructions to re-execute (grouped into same-op
/// runs so replay dispatches one kernel call per run instead of one per
/// instruction), the slots the replay overwrites, and the output planes
/// the fault can reach.
struct SitePlan {
    std::vector<circuit::kernels::Instr> replay;  ///< cone, original order
    struct Run {
        OpCode op;
        std::uint32_t begin;
        std::uint32_t count;
    };
    std::vector<Run> runs;
    std::vector<std::uint32_t> dirtySlots;  ///< fault slot first
    std::vector<std::uint32_t> outPlanes;   ///< output indices, ascending
};

SitePlan buildCone(const CompiledNetlist& compiled, const FaultSite& site,
                   std::vector<bool>& affected) {
    SitePlan plan;
    const std::span<const circuit::kernels::Instr> instrs = compiled.instructions();
    std::fill(affected.begin(), affected.end(), false);
    affected[site.slot] = true;
    plan.dirtySlots.push_back(site.slot);
    const std::uint32_t start = site.isInput ? 0 : site.afterInstr + 1;
    for (std::uint32_t i = start; i < instrs.size(); ++i) {
        const auto& ins = instrs[i];
        const int fan = opFanIn(ins.op);
        bool hit = affected[ins.a];
        if (!hit && fan >= 2) hit = affected[ins.b];
        if (!hit && fan >= 3) hit = affected[ins.c];
        if (!hit) continue;
        // The compiled stream is already grouped into same-opcode runs, so
        // a cone's dense copy inherits long runs almost for free.
        if (plan.runs.empty() || plan.runs.back().op != ins.op)
            plan.runs.push_back({ins.op, static_cast<std::uint32_t>(plan.replay.size()), 0});
        ++plan.runs.back().count;
        plan.replay.push_back(ins);
        if (!affected[ins.dst]) {
            affected[ins.dst] = true;
            plan.dirtySlots.push_back(ins.dst);
        }
        // HalfAdd writes its carry into the c field (second destination).
        if (ins.op == OpCode::HalfAdd && !affected[ins.c]) {
            affected[ins.c] = true;
            plan.dirtySlots.push_back(ins.c);
        }
    }
    const std::span<const std::uint32_t> outs = compiled.outputSlots();
    for (std::uint32_t o = 0; o < outs.size(); ++o)
        if (affected[outs[o]]) plan.outPlanes.push_back(o);
    return plan;
}

/// Exhaustive campaign task: sweeps the whole input space once, simulating
/// the fault-free circuit per block and replaying each fault's cone
/// against it.  Every block's results feed the accumulators as fresh
/// 256-lane sub-partials merged in ascending order — the canonical
/// accumulation structure of the whole campaign, independent of the block
/// width.  Blocks where a fault never reaches an output reuse the nominal
/// sub-partials outright (bit-identical: equal outputs decode to equal
/// values); the same argument makes fresh faulted sub-partials safe for
/// sub-ranges the fault did not deviate in.
///
/// Per-fault work is trimmed three ways, none of which changes a single
/// result bit: the reference workspace is snapshotted once per block so
/// each fault restores only the planes the previous fault dirtied (no
/// save pass); a fault whose stuck value never differs from the node's
/// reference plane in this block is skipped outright (it cannot deviate);
/// and the cone replays through one kernel dispatch per same-opcode run
/// instead of one per instruction.
void runExhaustiveTask(const CompiledNetlist& compiled, const circuit::ArithSignature& sig,
                       std::span<const FaultSite> sites, std::span<const SitePlan> plans,
                       std::span<Accumulator> accs, std::span<std::uint64_t> deviated,
                       Accumulator* nominalOut) {
    SimScratch scratch(compiled);
    Word* const ws = scratch.ws;
    Workspace w;
    const int totalBits = sig.inputWidth();
    const std::size_t outputs = compiled.outputCount();
    const std::size_t words = compiled.blockWords();
    const std::size_t blockLanes = words * 64;
    w.in.resize(static_cast<std::size_t>(totalBits) * words);
    w.out.resize(outputs * words);
    std::vector<Word> refOut(outputs * words);
    std::vector<Word> refWs(compiled.workspaceWords(words));
    const std::span<const std::uint32_t> outSlots = compiled.outputSlots();
    const circuit::kernels::WidthTables& tables = compiled.backend().at(words);

    const auto subLanes = [&](std::size_t lanes, std::size_t sb) {
        return std::min(kBaseLanes, lanes - sb * kBaseLanes);
    };

    const std::uint64_t space = std::uint64_t{1} << totalBits;
    for (std::uint64_t base = 0; base < space; base += blockLanes) {
        const std::size_t lanes =
            static_cast<std::size_t>(std::min<std::uint64_t>(blockLanes, space - base));
        const std::size_t subBlocks = (lanes + kBaseLanes - 1) / kBaseLanes;
        circuit::fillExhaustiveBlock(w.in, totalBits, base, words);
        runBlock(compiled, words, w.in.data(), refOut.data(), ws);
        std::memcpy(refWs.data(), ws, refWs.size() * sizeof(Word));
        fillExactExhaustive(w, sig, base, lanes);
        std::array<Accumulator, kMaxSubBlocks> nominalSub;
        withDecoded(refOut, outputs, w, words, [&](const auto* approx) {
            for (std::size_t sb = 0; sb < subBlocks; ++sb)
                nominalSub[sb].addBlock(approx + sb * kBaseLanes,
                                        w.exact.data() + sb * kBaseLanes, subLanes(lanes, sb));
        });
        if (nominalOut != nullptr)
            for (std::size_t sb = 0; sb < subBlocks; ++sb) nominalOut->merge(nominalSub[sb]);

        // Valid-lane mask for tail blocks (spaces below a full block).
        std::array<Word, kMaxWords> valid{};
        for (std::size_t wd = 0; wd < words; ++wd) {
            const std::size_t lo = wd * 64;
            valid[wd] = lanes >= lo + 64 ? ~Word{0}
                        : lanes > lo     ? (Word{1} << (lanes - lo)) - 1
                                         : 0;
        }

        const SitePlan* prev = nullptr;  // last plan that dirtied ws
        for (std::size_t f = 0; f < sites.size(); ++f) {
            const SitePlan& plan = plans[f];
            // Trigger pre-check against the clean snapshot: a stuck-at
            // that matches the node's value on every valid lane is a
            // no-op in this block.
            const Word* np = refWs.data() + static_cast<std::size_t>(sites[f].slot) * words;
            Word trigger = 0;
            for (std::size_t wd = 0; wd < words; ++wd)
                trigger |= (sites[f].stuckTo ? ~np[wd] : np[wd]) & valid[wd];
            if (trigger == 0) {
                for (std::size_t sb = 0; sb < subBlocks; ++sb) accs[f].merge(nominalSub[sb]);
                continue;
            }

            if (prev != nullptr)
                for (const std::uint32_t s : prev->dirtySlots)
                    std::memcpy(ws + static_cast<std::size_t>(s) * words,
                                refWs.data() + static_cast<std::size_t>(s) * words,
                                words * sizeof(Word));
            prev = &plan;
            Word* fp = ws + static_cast<std::size_t>(sites[f].slot) * words;
            for (std::size_t wd = 0; wd < words; ++wd)
                fp[wd] = sites[f].stuckTo ? ~Word{0} : Word{0};
            for (const SitePlan::Run& run : plan.runs)
                tables.run[static_cast<std::size_t>(run.op)](plan.replay.data() + run.begin,
                                                             run.count, ws);

            std::uint64_t devCount = 0;
            {
                std::array<Word, kMaxWords> dev{};
                for (const std::uint32_t o : plan.outPlanes) {
                    const Word* a = ws + static_cast<std::size_t>(outSlots[o]) * words;
                    const Word* b = refOut.data() + static_cast<std::size_t>(o) * words;
                    for (std::size_t wd = 0; wd < words; ++wd) dev[wd] |= a[wd] ^ b[wd];
                }
                for (std::size_t wd = 0; wd < words; ++wd)
                    devCount += static_cast<std::uint64_t>(
                        __builtin_popcountll(dev[wd] & valid[wd]));
            }
            if (devCount == 0) {
                for (std::size_t sb = 0; sb < subBlocks; ++sb) accs[f].merge(nominalSub[sb]);
            } else {
                std::memcpy(w.out.data(), refOut.data(), refOut.size() * sizeof(Word));
                for (const std::uint32_t o : plan.outPlanes)
                    std::memcpy(w.out.data() + static_cast<std::size_t>(o) * words,
                                ws + static_cast<std::size_t>(outSlots[o]) * words,
                                words * sizeof(Word));
                withDecoded(w.out, outputs, w, words, [&](const auto* approx) {
                    for (std::size_t sb = 0; sb < subBlocks; ++sb) {
                        Accumulator partial;
                        partial.addBlock(approx + sb * kBaseLanes,
                                         w.exact.data() + sb * kBaseLanes, subLanes(lanes, sb));
                        accs[f].merge(partial);
                    }
                });
                deviated[f] += devCount;
            }
        }
    }
}

/// Sampled campaign task: one fault group (up to `blockWords() - 1`
/// faults) riding lane groups 1.. of every block while lane group 0
/// carries the fault-free reference on the same replicated inputs, so
/// per-fault deviation falls out of an in-register lane compare.  The
/// per-batch sample stream is a pure function of (seed, batch index):
/// independent of the grouping, the block width and the thread count.
void runSampledTask(const CompiledNetlist& compiled, const circuit::ArithSignature& sig,
                    std::span<const FaultSite> sites, const error::ErrorAnalysisConfig& cfg,
                    std::span<Accumulator> accs, std::span<std::uint64_t> deviated,
                    Accumulator* nominalOut) {
    SimScratch scratch(compiled);
    Workspace w;
    const int totalBits = sig.inputWidth();
    const std::size_t outputs = compiled.outputCount();
    const std::size_t words = compiled.blockWords();
    w.in.resize(static_cast<std::size_t>(totalBits) * words);
    w.out.resize(outputs * words);

    // Enumeration order is input sites first, then ascending instruction
    // index — exactly the order runWithFaults requires.
    std::vector<CompiledNetlist::InjectedFault> faults(sites.size());
    for (std::size_t j = 0; j < sites.size(); ++j) {
        faults[j].afterInstr = sites[j].afterInstr;
        faults[j].slot = sites[j].slot;
        faults[j].stuckTo = sites[j].stuckTo;
        faults[j].mask = {};
        faults[j].mask[j + 1] = ~Word{0};  // group 0 is the reference
    }

    std::uint64_t remaining = cfg.sampleCount;
    for (std::uint64_t batch = 0; remaining > 0; ++batch) {
        const std::size_t lanes =
            static_cast<std::size_t>(std::min<std::uint64_t>(kGroupLanes, remaining));
        util::Rng rng(mixSeed(cfg.seed + batch));
        for (int bit = 0; bit < totalBits; ++bit) {
            const Word r = rng.uniformInt(0, ~std::uint64_t{0});
            Word* bitWords = w.in.data() + static_cast<std::size_t>(bit) * words;
            for (std::size_t wd = 0; wd < words; ++wd) bitWords[wd] = r;  // replicate per group
        }
        runBlockWithFaults(compiled, words, w.in.data(), w.out.data(), scratch.ws, faults);
        for (std::size_t lane = 0; lane < lanes; ++lane) {
            std::uint64_t a = 0, b = 0;
            for (int bit = 0; bit < sig.widthA; ++bit)
                a |= ((w.in[static_cast<std::size_t>(bit) * words] >> lane) & 1u) << bit;
            for (int bit = 0; bit < sig.widthB; ++bit)
                b |= ((w.in[static_cast<std::size_t>(sig.widthA + bit) * words] >> lane) & 1u)
                     << bit;
            w.exact[lane] = sig.exact(a, b);
        }
        withDecoded(w.out, outputs, w, words, [&](const auto* approx) {
            if (nominalOut != nullptr) {
                Accumulator partial;
                partial.addBlock(approx, w.exact.data(), lanes);
                nominalOut->merge(partial);
            }
            for (std::size_t j = 0; j < sites.size(); ++j) {
                const auto* group = approx + (j + 1) * kGroupLanes;
                Accumulator partial;
                partial.addBlock(group, w.exact.data(), lanes);
                accs[j].merge(partial);
                std::uint64_t dev = 0;
                for (std::size_t lane = 0; lane < lanes; ++lane)
                    dev += group[lane] != approx[lane];
                deviated[j] += dev;
            }
        });
        remaining -= lanes;
    }
}

void checkInterface(const Netlist& netlist, const circuit::ArithSignature& sig) {
    if (static_cast<int>(netlist.inputCount()) != sig.inputWidth())
        throw std::invalid_argument("analyzeResilience: netlist input width != signature");
    if (static_cast<int>(netlist.outputCount()) != sig.outputWidth())
        throw std::invalid_argument("analyzeResilience: netlist output width != signature");
}

}  // namespace

SiteEnumeration enumerateFaultSites(const CompiledNetlist& compiled, bool includeInputFaults,
                                    bool collapseEquivalent) {
    const std::span<const circuit::kernels::Instr> instrs = compiled.instructions();
    const std::span<const NodeId> slotNodes = compiled.slotNodes();
    const std::size_t slots = compiled.slotCount();

    // Instruction-produced planes; input and output roles.
    std::vector<bool> hasProducer(slots, false);
    for (const auto& ins : instrs) {
        hasProducer[ins.dst] = true;
        if (ins.op == OpCode::HalfAdd) hasProducer[ins.c] = true;
    }
    std::vector<bool> isInput(slots, false);
    for (const std::uint32_t s : compiled.inputSlots()) isInput[s] = true;
    std::vector<bool> isOutput(slots, false);
    for (const std::uint32_t s : compiled.outputSlots()) isOutput[s] = true;

    // Equivalence collapsing: a stuck-at on a gate-produced value whose
    // only consumer is a Buf copy is indistinguishable from the same
    // stuck-at on the copy — fold the source onto the copy's plane.
    std::vector<std::uint32_t> foldInto(slots);
    for (std::uint32_t s = 0; s < slots; ++s) foldInto[s] = s;
    if (collapseEquivalent) {
        std::vector<std::uint32_t> consumers(slots, 0);
        for (const auto& ins : instrs) {
            const int fan = opFanIn(ins.op);
            ++consumers[ins.a];
            if (fan >= 2) ++consumers[ins.b];
            if (fan >= 3) ++consumers[ins.c];
        }
        for (const auto& ins : instrs) {
            if (ins.op != OpCode::Buf) continue;
            const std::uint32_t src = ins.a;
            if (hasProducer[src] && !isOutput[src] && consumers[src] == 1)
                foldInto[src] = ins.dst;
        }
    }
    const auto repOf = [&](std::uint32_t s) {
        while (foldInto[s] != s) s = foldInto[s];
        return s;
    };
    std::vector<std::uint32_t> collapsedCount(slots, 1);
    for (std::uint32_t s = 0; s < slots; ++s)
        if (foldInto[s] != s) ++collapsedCount[repOf(s)];

    SiteEnumeration en;
    const auto push = [&](std::uint32_t slot, std::uint32_t afterInstr, bool input) {
        for (const bool v : {false, true}) {
            FaultSite site;
            site.node = slotNodes[slot];
            site.slot = slot;
            site.afterInstr = afterInstr;
            site.stuckTo = v;
            site.isInput = input;
            site.collapsed = collapsedCount[slot];
            en.sites.push_back(site);
            en.totalSites += site.collapsed;
        }
    };
    if (includeInputFaults)
        for (const std::uint32_t s : compiled.inputSlots())
            push(s, CompiledNetlist::kFaultAtInputs, true);
    for (std::uint32_t i = 0; i < instrs.size(); ++i) {
        const auto& ins = instrs[i];
        if (foldInto[ins.dst] == ins.dst) push(ins.dst, i, false);
        if (ins.op == OpCode::HalfAdd && foldInto[ins.c] == ins.c) push(ins.c, i, false);
    }
    return en;
}

Netlist stuckAtNetlist(const Netlist& netlist, NodeId target, bool value) {
    if (target >= netlist.nodeCount())
        throw std::invalid_argument("stuckAtNetlist: node id out of range");
    Netlist out(netlist.name());
    const std::span<const circuit::Node> nodes = netlist.nodes();
    std::vector<NodeId> map(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const circuit::Node& n = nodes[i];
        if (i == target && n.kind != GateKind::Input) {
            map[i] = out.addConst(value);
            continue;
        }
        NodeId id;
        switch (n.kind) {
            case GateKind::Input: id = out.addInput(); break;
            case GateKind::Const0: id = out.addConst(false); break;
            case GateKind::Const1: id = out.addConst(true); break;
            default: {
                const int fan = fanInCount(n.kind);
                id = out.addGate(n.kind, map[n.a], fan >= 2 ? map[n.b] : circuit::kInvalidNode,
                                 fan >= 3 ? map[n.c] : circuit::kInvalidNode);
                break;
            }
        }
        // A stuck Input keeps its interface position but every consumer
        // (and any output tap) reads the inserted constant instead.
        map[i] = i == target ? out.addConst(value) : id;
    }
    for (const NodeId o : netlist.outputs()) out.markOutput(map[o]);
    return out;
}

ResilienceReport analyzeResilience(const Netlist& netlist, const circuit::ArithSignature& sig,
                                   const CampaignConfig& config) {
    obs::Span span("fault_campaign", netlist.name());
    static obs::Histogram& campaignSeconds =
        obs::Registry::global().histogram("fault.campaign_seconds");
    obs::ScopedTimer timer(campaignSeconds);
    checkInterface(netlist, sig);
    const CompiledNetlist compiled = CompiledNetlist::compile(netlist);
    const SiteEnumeration en =
        enumerateFaultSites(compiled, config.includeInputFaults, config.collapseEquivalent);
    const bool exhaustive = config.analysis.isExhaustiveFor(sig);
    const std::size_t faultCount = en.sites.size();

    // Statically proven cannot-deviate sites (ternary abstract
    // interpretation, src/verify) never enter the campaign: their error
    // profile IS the nominal profile.  The per-fault accumulators of the
    // remaining sites are independent of the task partition, so compacting
    // the active list keeps every report bit-identical.
    std::vector<std::uint8_t> skip(faultCount, 0);
    if (config.staticSkip && faultCount != 0) {
        std::vector<verify::StuckSite> stuck(faultCount);
        for (std::size_t f = 0; f < faultCount; ++f)
            stuck[f] = {en.sites[f].slot, en.sites[f].afterInstr, en.sites[f].stuckTo};
        const std::vector<bool> proven = verify::cannotDeviate(compiled, stuck);
        for (std::size_t f = 0; f < faultCount; ++f) skip[f] = proven[f] ? 1 : 0;
    }
    std::vector<FaultSite> activeSites;
    std::vector<std::size_t> activeOf(faultCount, 0);
    activeSites.reserve(faultCount);
    for (std::size_t f = 0; f < faultCount; ++f) {
        if (skip[f] != 0) continue;
        activeOf[f] = activeSites.size();
        activeSites.push_back(en.sites[f]);
    }
    const std::size_t activeCount = activeSites.size();
    // Total sites seen vs. statically proven cannot-deviate: the ratio is
    // the static-skip win the verify layer buys per campaign.
    static obs::Counter& sitesTotal = obs::Registry::global().counter("fault.sites_total");
    static obs::Counter& sitesSkipped =
        obs::Registry::global().counter("fault.sites_static_skipped");
    sitesTotal.add(faultCount);
    sitesSkipped.add(faultCount - activeCount);

    std::vector<Accumulator> accs(activeCount);
    std::vector<std::uint64_t> deviated(activeCount, 0);
    Accumulator nominalAcc;

    std::vector<SitePlan> plans;
    if (exhaustive) {
        plans.reserve(activeCount);
        std::vector<bool> affectedScratch(compiled.slotCount());
        for (const FaultSite& site : activeSites)
            plans.push_back(buildCone(compiled, site, affectedScratch));
    }

    // Sampled tasks pack one fault per lane group: a wider block carries
    // more faults through each simulation pass.
    const std::size_t perTask = exhaustive ? kFaultsPerTask : compiled.blockWords() - 1;
    const std::size_t taskCount = (activeCount + perTask - 1) / perTask;
    const auto runTask = [&](std::size_t t) {
        const std::size_t begin = t * perTask;
        const std::size_t end = std::min(activeCount, begin + perTask);
        const std::size_t n = end - begin;
        Accumulator* nominal = t == 0 ? &nominalAcc : nullptr;
        if (exhaustive)
            runExhaustiveTask(compiled, sig, {activeSites.data() + begin, n},
                              {plans.data() + begin, n}, {accs.data() + begin, n},
                              {deviated.data() + begin, n}, nominal);
        else
            runSampledTask(compiled, sig, {activeSites.data() + begin, n}, config.analysis,
                           {accs.data() + begin, n}, {deviated.data() + begin, n}, nominal);
    };
    if (config.analysis.threads == 1 || taskCount <= 1) {
        for (std::size_t t = 0; t < taskCount; ++t) {
            if (config.analysis.cancel != nullptr && config.analysis.cancel->stopRequested())
                throw util::OperationCancelled("analyzeResilience cancelled");
            runTask(t);
        }
    } else {
        util::ThreadPool::global().parallelFor(
            taskCount, runTask,
            config.analysis.threads > 0 ? static_cast<std::size_t>(config.analysis.threads) : 0,
            config.analysis.cancel);
    }
    if (taskCount == 0) {
        // No active fault sites: still produce the nominal reference profile.
        if (exhaustive)
            runExhaustiveTask(compiled, sig, {}, {}, {}, {}, &nominalAcc);
        else
            runSampledTask(compiled, sig, {}, config.analysis, {}, {}, &nominalAcc);
    }

    ResilienceReport report;
    report.nominal = nominalAcc.report(sig.maxOutput(), exhaustive);
    report.totalSites = en.totalSites;
    report.exhaustive = exhaustive;
    report.vectorsPerFault = exhaustive ? std::uint64_t{1} << sig.inputWidth()
                                        : config.analysis.sampleCount;
    report.faults.reserve(faultCount);
    double weightSum = 0.0, medSum = 0.0, detectedWeight = 0.0;
    for (std::size_t f = 0; f < faultCount; ++f) {
        FaultImpact impact;
        impact.site = en.sites[f];
        if (skip[f] != 0) {
            // Proven cannot-deviate: the faulted circuit IS the nominal
            // circuit on every vector.
            impact.error = report.nominal;
            impact.deviatedVectors = 0;
            impact.deviationProbability = 0.0;
        } else {
            const std::size_t a = activeOf[f];
            impact.error = accs[a].report(sig.maxOutput(), exhaustive);
            impact.deviatedVectors = deviated[a];
            impact.deviationProbability =
                impact.error.vectorsEvaluated == 0
                    ? 0.0
                    : static_cast<double>(deviated[a]) /
                          static_cast<double>(impact.error.vectorsEvaluated);
        }
        const double weight = static_cast<double>(impact.site.collapsed);
        weightSum += weight;
        medSum += weight * impact.error.med;
        if (impact.detected()) detectedWeight += weight;
        if (impact.error.med > report.worstMedUnderFault) {
            report.worstMedUnderFault = impact.error.med;
            report.worstFault = static_cast<std::uint32_t>(f);
        }
        report.faults.push_back(std::move(impact));
    }
    report.meanMedUnderFault = weightSum > 0.0 ? medSum / weightSum : 0.0;
    report.faultCoverage = weightSum > 0.0 ? detectedWeight / weightSum : 0.0;

    const double threshold =
        config.criticalFactor * std::max(report.nominal.med, config.criticalFloor);
    std::vector<std::uint32_t> critical;
    for (std::uint32_t f = 0; f < report.faults.size(); ++f)
        if (report.faults[f].error.med >= threshold) critical.push_back(f);
    std::sort(critical.begin(), critical.end(), [&](std::uint32_t a, std::uint32_t b) {
        const double ma = report.faults[a].error.med, mb = report.faults[b].error.med;
        return ma != mb ? ma > mb : a < b;
    });
    if (critical.size() > config.maxCritical) critical.resize(config.maxCritical);
    report.criticalFaults = std::move(critical);
    return report;
}

void FaultSite::serialize(util::ByteWriter& out) const {
    out.u32(node);
    out.u32(slot);
    out.u32(afterInstr);
    out.boolean(stuckTo);
    out.boolean(isInput);
    out.u32(collapsed);
}

bool FaultSite::deserialize(util::ByteReader& in, FaultSite& out) {
    in.u32(out.node);
    in.u32(out.slot);
    in.u32(out.afterInstr);
    in.boolean(out.stuckTo);
    in.boolean(out.isInput);
    in.u32(out.collapsed);
    return in.ok();
}

void FaultImpact::serialize(util::ByteWriter& out) const {
    site.serialize(out);
    error.serialize(out);
    out.u64(deviatedVectors);
    out.f64(deviationProbability);
}

bool FaultImpact::deserialize(util::ByteReader& in, FaultImpact& out) {
    FaultSite::deserialize(in, out.site);
    error::ErrorReport::deserialize(in, out.error);
    in.u64(out.deviatedVectors);
    in.f64(out.deviationProbability);
    return in.ok();
}

void ResilienceReport::serialize(util::ByteWriter& out) const {
    nominal.serialize(out);
    out.u32(static_cast<std::uint32_t>(faults.size()));
    for (const FaultImpact& f : faults) f.serialize(out);
    out.u32(totalSites);
    out.u64(vectorsPerFault);
    out.boolean(exhaustive);
    out.f64(meanMedUnderFault);
    out.f64(worstMedUnderFault);
    out.u32(worstFault);
    out.f64(faultCoverage);
    out.u32(static_cast<std::uint32_t>(criticalFaults.size()));
    for (const std::uint32_t f : criticalFaults) out.u32(f);
}

bool ResilienceReport::deserialize(util::ByteReader& in, ResilienceReport& out) {
    if (!error::ErrorReport::deserialize(in, out.nominal)) return false;
    std::uint32_t count = 0;
    if (!in.u32(count) || count > in.remaining()) return false;  // >= 1 byte per impact
    out.faults.clear();
    out.faults.reserve(count);
    for (std::uint32_t f = 0; f < count; ++f) {
        FaultImpact impact;
        if (!FaultImpact::deserialize(in, impact)) return false;
        out.faults.push_back(std::move(impact));
    }
    in.u32(out.totalSites);
    in.u64(out.vectorsPerFault);
    in.boolean(out.exhaustive);
    in.f64(out.meanMedUnderFault);
    in.f64(out.worstMedUnderFault);
    in.u32(out.worstFault);
    in.f64(out.faultCoverage);
    std::uint32_t criticalCount = 0;
    if (!in.u32(criticalCount) || criticalCount > in.remaining() / 4) return false;
    out.criticalFaults.assign(criticalCount, 0);
    for (std::uint32_t f = 0; f < criticalCount; ++f) in.u32(out.criticalFaults[f]);
    return in.ok();
}

std::string ResilienceReport::summary() const {
    std::ostringstream os;
    os << "faults=" << faults.size() << "/" << totalSites
       << " coverage=" << faultCoverage * 100.0 << "%"
       << " meanMED=" << meanMedUnderFault * 100.0 << "%"
       << " worstMED=" << worstMedUnderFault * 100.0 << "%"
       << " critical=" << criticalFaults.size()
       << (exhaustive ? " (exhaustive)" : " (sampled)");
    return os.str();
}

}  // namespace axf::fault
