#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace axf::obs {

/// Process-wide metrics kill switch (`AXF_METRICS=0`).  Every recording
/// primitive checks it first, so a disabled registry costs one relaxed
/// load + predictable branch per call — the bench regression gate runs
/// with recording off to pin that.
bool metricsEnabled() noexcept;
/// Programmatic override of the env default (tests, overhead benches).
void setMetricsEnabled(bool enabled) noexcept;

namespace detail {

/// Cache-line-padded counter cell: one per stripe, so concurrent writers
/// on different stripes never share a line.
struct alignas(64) Cell {
    std::atomic<std::uint64_t> value{0};
};

/// Small dense per-thread index used to pick a stripe.  Threads get
/// sequential ids at first use; stripes are a power of two, so the hot
/// path is a thread-local read + mask.
std::size_t stripeIndex() noexcept;

constexpr std::size_t kStripes = 16;  // power of two

}  // namespace detail

/// Monotonic counter with sharded accumulation: `add` touches one striped
/// relaxed atomic (no locks, no cross-thread line sharing on the fast
/// path); `value` sums the stripes.  Usable standalone (per-instance
/// stats, e.g. the characterization cache) or registry-owned (named
/// process metrics).
class Counter {
public:
    void add(std::uint64_t n = 1) noexcept {
        if (!metricsEnabled()) return;
        cells_[detail::stripeIndex()].value.fetch_add(n, std::memory_order_relaxed);
    }
    /// Unconditional add — for per-instance stats (cache hit counts) that
    /// existing tests pin regardless of the process-wide metrics switch.
    void addAlways(std::uint64_t n = 1) noexcept {
        cells_[detail::stripeIndex()].value.fetch_add(n, std::memory_order_relaxed);
    }
    /// Rarely needed: back out a previous add (the cache demotes a decoded
    /// hit to a corrupt miss after the fact).
    void subAlways(std::uint64_t n = 1) noexcept {
        cells_[detail::stripeIndex()].value.fetch_sub(n, std::memory_order_relaxed);
    }

    std::uint64_t value() const noexcept {
        std::uint64_t sum = 0;
        for (const detail::Cell& c : cells_) sum += c.value.load(std::memory_order_relaxed);
        return sum;
    }

private:
    std::array<detail::Cell, detail::kStripes> cells_;
};

/// Last-write-wins instantaneous value (archive sizes, queue depths).
class Gauge {
public:
    void set(double v) noexcept {
        if (!metricsEnabled()) return;
        value_.store(v, std::memory_order_relaxed);
    }
    double value() const noexcept { return value_.load(std::memory_order_relaxed); }

private:
    std::atomic<double> value_{0.0};
};

/// Merged view of one histogram: `buckets[i]` counts samples with
/// `value <= edges[i]`; `buckets.back()` (one past the last edge) is the
/// overflow bucket.
struct HistogramData {
    std::vector<double> edges;          ///< ascending upper bounds
    std::vector<std::uint64_t> buckets; ///< edges.size() + 1 counts
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();

    void merge(const HistogramData& other);
};

/// Fixed-bucket latency/size histogram with the same sharded accumulation
/// as `Counter`: `record` finds the bucket (short linear scan over the
/// immutable edge array) and bumps one striped cell; sum/min/max fold in
/// via relaxed CAS loops on the stripe.  Edges are frozen at construction.
class Histogram {
public:
    /// Default edges: decades from 1 µs to 100 s — wide enough for every
    /// latency this stack records (kernel dispatch to whole campaigns).
    static std::span<const double> defaultEdges();

    explicit Histogram(std::span<const double> edges);

    void record(double v) noexcept;

    const std::vector<double>& edges() const noexcept { return edges_; }
    HistogramData snapshot() const;

private:
    struct alignas(64) Stripe {
        // One slot per bucket (edges + overflow), then running sum.
        std::vector<std::atomic<std::uint64_t>> counts;
        std::atomic<double> sum{0.0};
        std::atomic<double> min{std::numeric_limits<double>::infinity()};
        std::atomic<double> max{-std::numeric_limits<double>::infinity()};
        explicit Stripe(std::size_t buckets) : counts(buckets) {}
    };

    std::vector<double> edges_;
    std::vector<std::unique_ptr<Stripe>> stripes_;
};

enum class MetricKind : std::uint8_t { Counter, Gauge, Histogram };

/// One named metric inside a snapshot.
struct Metric {
    std::string name;
    MetricKind kind = MetricKind::Counter;
    std::uint64_t counter = 0;       ///< MetricKind::Counter
    double gauge = 0.0;              ///< MetricKind::Gauge
    HistogramData histogram;         ///< MetricKind::Histogram
};

/// Point-in-time, name-sorted view of a registry (plus any collector
/// contributions).  Snapshots merge: counters and histograms add,
/// gauges take the other side's value — the semantics a multi-process
/// fleet needs to fold per-node dumps into one.
class MetricsSnapshot {
public:
    void addCounter(std::string name, std::uint64_t value);
    void addGauge(std::string name, double value);
    void addHistogram(std::string name, HistogramData data);

    /// Folds `other` in (counters/histograms add, gauges overwrite).
    void merge(const MetricsSnapshot& other);

    const std::vector<Metric>& metrics() const { return metrics_; }
    const Metric* find(std::string_view name) const;

    /// `{"schema":"axf-metrics.v1","metrics":[...]}` — the stats-endpoint
    /// wire format (documented in the README).
    std::string toJson() const;

private:
    void fold(const Metric& m);

    std::vector<Metric> metrics_;  ///< kept sorted by name
};

/// Named-metric registry.  Lookup (`counter`/`gauge`/`histogram`) takes a
/// mutex but returns a stable reference — call sites resolve once and
/// record lock-free afterwards.  Metrics are never removed, so returned
/// references stay valid for the registry's lifetime (the global registry
/// is immortal).
///
/// Components with per-instance counters (the characterization cache)
/// register a *collector* instead: a callback contributing metric values
/// at snapshot time, merged by name across instances.
class Registry {
public:
    using Collector = std::function<void(MetricsSnapshot&)>;

    Registry() = default;
    Registry(const Registry&) = delete;
    Registry& operator=(const Registry&) = delete;

    /// Process-global registry (constructed on first use, never
    /// destroyed, so worker threads may record during static teardown).
    static Registry& global();

    Counter& counter(std::string_view name);
    Gauge& gauge(std::string_view name);
    /// `edges` is honored on first registration only (fixed buckets).
    Histogram& histogram(std::string_view name, std::span<const double> edges = {});

    std::size_t addCollector(Collector fn);
    void removeCollector(std::size_t id);

    MetricsSnapshot snapshot() const;

private:
    struct Slot {
        MetricKind kind = MetricKind::Counter;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    mutable std::mutex mutex_;
    std::map<std::string, Slot, std::less<>> metrics_;
    std::map<std::size_t, Collector> collectors_;
    std::size_t nextCollector_ = 1;
};

/// Records elapsed wall time (seconds) into a histogram at scope exit.
/// When metrics are disabled at construction it reads no clocks at all —
/// the whole object is two branches.
class ScopedTimer {
public:
    explicit ScopedTimer(Histogram& histogram) noexcept;
    ~ScopedTimer();

    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

private:
    Histogram* histogram_ = nullptr;
    std::uint64_t beginNs_ = 0;
};

/// Serializes `Registry::global().snapshot()` to `path` as JSON via an
/// atomic replace (temp + fsync + rename), so a reader polling the file
/// never observes a torn dump.  Returns false on I/O failure.
bool writeMetricsFile(const std::string& path);

}  // namespace axf::obs
