#include "src/obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "src/util/io.hpp"

namespace axf::obs {

namespace {

std::atomic<bool>& enabledFlag() noexcept {
    // Read the env default exactly once; tests flip the flag around
    // overhead-sensitive sections via setMetricsEnabled.
    static std::atomic<bool> flag{[] {
        // `AXF_METRICS_FILE=out.json` arms a final snapshot dump at exit —
        // the zero-integration way to get metrics out of any binary.
        if (const char* path = std::getenv("AXF_METRICS_FILE"); path != nullptr && *path != '\0') {
            static std::string exitPath;
            exitPath = path;
            std::atexit([] { writeMetricsFile(exitPath); });
        }
        const char* raw = std::getenv("AXF_METRICS");
        return !(raw != nullptr && raw[0] == '0' && raw[1] == '\0');
    }()};
    return flag;
}

/// Append a double as JSON (finite decimal; infinities — empty histogram
/// min/max — degrade to 0 so the output always parses).
void appendJsonNumber(std::ostringstream& os, double v) {
    if (!std::isfinite(v)) v = 0.0;
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    os << buf;
}

void appendJsonString(std::ostringstream& os, std::string_view s) {
    os << '"';
    for (const char c : s) {
        switch (c) {
            case '"': os << "\\\""; break;
            case '\\': os << "\\\\"; break;
            case '\n': os << "\\n"; break;
            case '\t': os << "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    os << buf;
                } else {
                    os << c;
                }
        }
    }
    os << '"';
}

/// Relaxed CAS fold for the non-count histogram aggregates.  Relaxed is
/// enough: snapshots only promise eventually-consistent aggregates, never
/// ordering against other memory.
void atomicAdd(std::atomic<double>& a, double v) noexcept {
    double cur = a.load(std::memory_order_relaxed);
    while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
    }
}

void atomicMin(std::atomic<double>& a, double v) noexcept {
    double cur = a.load(std::memory_order_relaxed);
    while (v < cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

void atomicMax(std::atomic<double>& a, double v) noexcept {
    double cur = a.load(std::memory_order_relaxed);
    while (v > cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

}  // namespace

bool metricsEnabled() noexcept { return enabledFlag().load(std::memory_order_relaxed); }

void setMetricsEnabled(bool enabled) noexcept {
    enabledFlag().store(enabled, std::memory_order_relaxed);
}

namespace detail {

std::size_t stripeIndex() noexcept {
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t id = next.fetch_add(1, std::memory_order_relaxed);
    return id & (kStripes - 1);
}

}  // namespace detail

// --- Histogram --------------------------------------------------------------

std::span<const double> Histogram::defaultEdges() {
    static const double edges[] = {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0};
    return edges;
}

Histogram::Histogram(std::span<const double> edges)
    : edges_(edges.empty() ? std::vector<double>(defaultEdges().begin(), defaultEdges().end())
                           : std::vector<double>(edges.begin(), edges.end())) {
    stripes_.reserve(detail::kStripes);
    for (std::size_t s = 0; s < detail::kStripes; ++s)
        stripes_.push_back(std::make_unique<Stripe>(edges_.size() + 1));
}

void Histogram::record(double v) noexcept {
    if (!metricsEnabled()) return;
    // `le` bucket semantics: the first edge >= v wins; past the last edge
    // the sample lands in the overflow slot.
    std::size_t b = 0;
    while (b < edges_.size() && v > edges_[b]) ++b;
    Stripe& s = *stripes_[detail::stripeIndex()];
    s.counts[b].fetch_add(1, std::memory_order_relaxed);
    atomicAdd(s.sum, v);
    atomicMin(s.min, v);
    atomicMax(s.max, v);
}

HistogramData Histogram::snapshot() const {
    HistogramData d;
    d.edges = edges_;
    d.buckets.assign(edges_.size() + 1, 0);
    for (const auto& stripe : stripes_) {
        for (std::size_t b = 0; b < d.buckets.size(); ++b)
            d.buckets[b] += stripe->counts[b].load(std::memory_order_relaxed);
        d.sum += stripe->sum.load(std::memory_order_relaxed);
        d.min = std::min(d.min, stripe->min.load(std::memory_order_relaxed));
        d.max = std::max(d.max, stripe->max.load(std::memory_order_relaxed));
    }
    for (const std::uint64_t c : d.buckets) d.count += c;
    return d;
}

void HistogramData::merge(const HistogramData& other) {
    if (buckets.empty()) {
        *this = other;
        return;
    }
    if (other.buckets.empty()) return;
    if (edges == other.edges) {
        for (std::size_t b = 0; b < buckets.size(); ++b) buckets[b] += other.buckets[b];
    } else {
        // Mismatched bucketings cannot be folded bucket-wise; keep this
        // side's shape and degrade the other side to its overflow mass so
        // count/sum stay exact.
        buckets.back() += other.count;
    }
    count += other.count;
    sum += other.sum;
    min = std::min(min, other.min);
    max = std::max(max, other.max);
}

// --- MetricsSnapshot --------------------------------------------------------

void MetricsSnapshot::fold(const Metric& m) {
    const auto it = std::lower_bound(
        metrics_.begin(), metrics_.end(), m.name,
        [](const Metric& a, const std::string& name) { return a.name < name; });
    if (it == metrics_.end() || it->name != m.name) {
        metrics_.insert(it, m);
        return;
    }
    if (it->kind != m.kind) return;  // name collision across kinds: first wins
    switch (m.kind) {
        case MetricKind::Counter: it->counter += m.counter; break;
        case MetricKind::Gauge: it->gauge = m.gauge; break;
        case MetricKind::Histogram: it->histogram.merge(m.histogram); break;
    }
}

void MetricsSnapshot::addCounter(std::string name, std::uint64_t value) {
    Metric m;
    m.name = std::move(name);
    m.kind = MetricKind::Counter;
    m.counter = value;
    fold(m);
}

void MetricsSnapshot::addGauge(std::string name, double value) {
    Metric m;
    m.name = std::move(name);
    m.kind = MetricKind::Gauge;
    m.gauge = value;
    fold(m);
}

void MetricsSnapshot::addHistogram(std::string name, HistogramData data) {
    Metric m;
    m.name = std::move(name);
    m.kind = MetricKind::Histogram;
    m.histogram = std::move(data);
    fold(m);
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
    for (const Metric& m : other.metrics_) fold(m);
}

const Metric* MetricsSnapshot::find(std::string_view name) const {
    const auto it = std::lower_bound(
        metrics_.begin(), metrics_.end(), name,
        [](const Metric& a, std::string_view n) { return a.name < n; });
    return it != metrics_.end() && it->name == name ? &*it : nullptr;
}

std::string MetricsSnapshot::toJson() const {
    std::ostringstream os;
    os << "{\"schema\":\"axf-metrics.v1\",\"metrics\":[";
    bool firstMetric = true;
    for (const Metric& m : metrics_) {
        if (!firstMetric) os << ',';
        firstMetric = false;
        os << "{\"name\":";
        appendJsonString(os, m.name);
        switch (m.kind) {
            case MetricKind::Counter:
                os << ",\"kind\":\"counter\",\"value\":" << m.counter;
                break;
            case MetricKind::Gauge:
                os << ",\"kind\":\"gauge\",\"value\":";
                appendJsonNumber(os, m.gauge);
                break;
            case MetricKind::Histogram: {
                const HistogramData& h = m.histogram;
                os << ",\"kind\":\"histogram\",\"count\":" << h.count << ",\"sum\":";
                appendJsonNumber(os, h.sum);
                os << ",\"min\":";
                appendJsonNumber(os, h.count != 0 ? h.min : 0.0);
                os << ",\"max\":";
                appendJsonNumber(os, h.count != 0 ? h.max : 0.0);
                os << ",\"buckets\":[";
                for (std::size_t b = 0; b < h.buckets.size(); ++b) {
                    if (b != 0) os << ',';
                    os << "{\"le\":";
                    if (b < h.edges.size())
                        appendJsonNumber(os, h.edges[b]);
                    else
                        os << "\"inf\"";
                    os << ",\"count\":" << h.buckets[b] << '}';
                }
                os << ']';
                break;
            }
        }
        os << '}';
    }
    os << "]}";
    return os.str();
}

// --- Registry ---------------------------------------------------------------

Registry& Registry::global() {
    // Deliberately leaked: pool workers and cache destructors may record
    // or unregister during static teardown, so the registry must outlive
    // every other static in the process.
    static Registry* instance = new Registry();
    return *instance;
}

Counter& Registry::counter(std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = metrics_.find(name);
    if (it == metrics_.end()) {
        Slot slot;
        slot.kind = MetricKind::Counter;
        slot.counter = std::make_unique<Counter>();
        it = metrics_.emplace(std::string(name), std::move(slot)).first;
    }
    if (it->second.kind != MetricKind::Counter || !it->second.counter)
        throw std::logic_error("obs::Registry: " + std::string(name) + " is not a counter");
    return *it->second.counter;
}

Gauge& Registry::gauge(std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = metrics_.find(name);
    if (it == metrics_.end()) {
        Slot slot;
        slot.kind = MetricKind::Gauge;
        slot.gauge = std::make_unique<Gauge>();
        it = metrics_.emplace(std::string(name), std::move(slot)).first;
    }
    if (it->second.kind != MetricKind::Gauge || !it->second.gauge)
        throw std::logic_error("obs::Registry: " + std::string(name) + " is not a gauge");
    return *it->second.gauge;
}

Histogram& Registry::histogram(std::string_view name, std::span<const double> edges) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = metrics_.find(name);
    if (it == metrics_.end()) {
        Slot slot;
        slot.kind = MetricKind::Histogram;
        slot.histogram = std::make_unique<Histogram>(edges);
        it = metrics_.emplace(std::string(name), std::move(slot)).first;
    }
    if (it->second.kind != MetricKind::Histogram || !it->second.histogram)
        throw std::logic_error("obs::Registry: " + std::string(name) + " is not a histogram");
    return *it->second.histogram;
}

std::size_t Registry::addCollector(Collector fn) {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t id = nextCollector_++;
    collectors_.emplace(id, std::move(fn));
    return id;
}

void Registry::removeCollector(std::size_t id) {
    std::lock_guard<std::mutex> lock(mutex_);
    collectors_.erase(id);
}

MetricsSnapshot Registry::snapshot() const {
    MetricsSnapshot snap;
    std::vector<Collector> collectors;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto& [name, slot] : metrics_) {
            switch (slot.kind) {
                case MetricKind::Counter: snap.addCounter(name, slot.counter->value()); break;
                case MetricKind::Gauge: snap.addGauge(name, slot.gauge->value()); break;
                case MetricKind::Histogram:
                    snap.addHistogram(name, slot.histogram->snapshot());
                    break;
            }
        }
        collectors.reserve(collectors_.size());
        for (const auto& [id, fn] : collectors_) collectors.push_back(fn);
    }
    // Collectors run outside the registry lock: they may consult their own
    // locks (cache stripes) and must never deadlock against a concurrent
    // counter registration.
    for (const Collector& fn : collectors) fn(snap);
    return snap;
}

ScopedTimer::ScopedTimer(Histogram& histogram) noexcept {
    if (!metricsEnabled()) return;  // no clock reads when disabled
    histogram_ = &histogram;
    beginNs_ = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

ScopedTimer::~ScopedTimer() {
    if (histogram_ == nullptr) return;
    const auto endNs = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    histogram_->record(static_cast<double>(endNs - beginNs_) * 1e-9);
}

bool writeMetricsFile(const std::string& path) {
    const std::string json = Registry::global().snapshot().toJson() + "\n";
    return static_cast<bool>(util::atomicWriteFile(path, json.data(), json.size()));
}

}  // namespace axf::obs
