#include "src/obs/trace.hpp"

#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <utility>

#include "src/util/io.hpp"

namespace axf::obs {

namespace {

std::uint64_t nowNs() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/// Per-thread stack of active span names.  Slots hold pointers to
/// static-storage literals in atomics, so the watchdog thread reads them
/// without races or lifetime hazards; a torn interleaving with a
/// concurrent push/pop yields at worst a one-entry-stale — still valid —
/// path, which is fine for a diagnostic.
struct SpanStack {
    static constexpr int kMaxDepth = 24;
    std::array<std::atomic<const char*>, kMaxDepth> names{};
    std::atomic<int> depth{0};
    unsigned tid = 0;
    std::atomic<bool> alive{true};
};

struct TraceEvent {
    const char* name = nullptr;
    const char* category = "axf";
    std::string detail;
    std::uint64_t beginNs = 0;
    std::uint64_t endNs = 0;
};

/// Trace events are buffered per thread behind a per-thread mutex: the
/// owner is the only writer, so its locks are uncontended (~tens of ns at
/// span granularity) except during the final harvest — and TSan sees a
/// clean happens-before edge at that harvest.
struct ThreadBuffer {
    std::mutex mutex;
    std::vector<TraceEvent> events;
    unsigned tid = 0;
};

struct TraceState {
    std::atomic<bool> active{false};
    std::mutex mutex;  ///< guards path/start + the registration lists
    std::string path;
    std::uint64_t startNs = 0;
    std::vector<SpanStack*> stacks;    ///< every thread that ever spanned (immortal)
    std::vector<ThreadBuffer*> buffers;
    std::atomic<unsigned> nextTid{0};
};

TraceState& state() {
    // Deliberately leaked: worker threads may record while other statics
    // are torn down at exit.
    static TraceState* s = new TraceState();
    return *s;
}

/// Thread-local registration handle.  The pointed-to stack/buffer are
/// immortal (registered in the global lists); only the liveness flag
/// flips when the thread exits, so stall reports skip dead threads.
struct ThreadLocalObs {
    SpanStack* stack;
    ThreadBuffer* buffer;

    ThreadLocalObs() {
        TraceState& s = state();
        stack = new SpanStack();
        buffer = new ThreadBuffer();
        const unsigned tid = s.nextTid.fetch_add(1, std::memory_order_relaxed);
        stack->tid = tid;
        buffer->tid = tid;
        std::lock_guard<std::mutex> lock(s.mutex);
        s.stacks.push_back(stack);
        s.buffers.push_back(buffer);
    }
    ~ThreadLocalObs() { stack->alive.store(false, std::memory_order_release); }
};

ThreadLocalObs& threadObs() {
    thread_local ThreadLocalObs obs;
    return obs;
}

void pushSpan(const char* name, bool& pushed) noexcept {
    SpanStack& stack = *threadObs().stack;
    const int d = stack.depth.load(std::memory_order_relaxed);
    if (d >= SpanStack::kMaxDepth) return;
    stack.names[static_cast<std::size_t>(d)].store(name, std::memory_order_release);
    stack.depth.store(d + 1, std::memory_order_release);
    pushed = true;
}

void popSpan() noexcept {
    SpanStack& stack = *threadObs().stack;
    const int d = stack.depth.load(std::memory_order_relaxed);
    if (d > 0) stack.depth.store(d - 1, std::memory_order_release);
}

void recordEvent(const char* name, const char* category, std::string detail,
                 std::uint64_t beginNs, std::uint64_t endNs) {
    ThreadBuffer& buffer = *threadObs().buffer;
    std::lock_guard<std::mutex> lock(buffer.mutex);
    buffer.events.push_back(TraceEvent{name, category, std::move(detail), beginNs, endNs});
}

void appendJsonString(std::ostringstream& os, std::string_view text) {
    os << '"';
    for (const char c : text) {
        switch (c) {
            case '"': os << "\\\""; break;
            case '\\': os << "\\\\"; break;
            case '\n': os << "\\n"; break;
            case '\t': os << "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    os << buf;
                } else {
                    os << c;
                }
        }
    }
    os << '"';
}

/// `AXF_TRACE=file.json` arms a process-lifetime session flushed at exit.
/// The guard runs once, on the first tracing query.
void envInitOnce() {
    static const bool initialized = [] {
        if (const char* p = std::getenv("AXF_TRACE"); p != nullptr && *p != '\0') {
            startTracing(p);
            std::atexit([] { stopTracing(); });
        }
        return true;
    }();
    (void)initialized;
}

}  // namespace

bool tracingEnabled() noexcept {
    envInitOnce();
    return state().active.load(std::memory_order_relaxed);
}

void startTracing(const std::string& path) {
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.path = path;
    s.startNs = nowNs();
    // Drop events from a previous session so two back-to-back sessions
    // never bleed into each other's files.
    for (ThreadBuffer* buffer : s.buffers) {
        std::lock_guard<std::mutex> bufferLock(buffer->mutex);
        buffer->events.clear();
    }
    s.active.store(true, std::memory_order_release);
}

std::string stopTracing() {
    TraceState& s = state();
    // Flip the flag first: spans closing after this point stop recording,
    // so the harvest below observes a (nearly) quiesced buffer set.
    s.active.store(false, std::memory_order_release);
    std::string path;
    std::uint64_t startNs = 0;
    std::vector<ThreadBuffer*> buffers;
    {
        std::lock_guard<std::mutex> lock(s.mutex);
        path = std::exchange(s.path, std::string());
        startNs = s.startNs;
        buffers = s.buffers;
    }
    if (path.empty()) return std::string();

    std::ostringstream os;
    os << "{\"traceEvents\":[";
    bool first = true;
    for (ThreadBuffer* buffer : buffers) {
        std::vector<TraceEvent> events;
        {
            std::lock_guard<std::mutex> bufferLock(buffer->mutex);
            events.swap(buffer->events);
        }
        for (const TraceEvent& e : events) {
            if (!first) os << ',';
            first = false;
            const double tsUs =
                e.beginNs >= startNs ? static_cast<double>(e.beginNs - startNs) / 1000.0 : 0.0;
            const double durUs =
                e.endNs >= e.beginNs ? static_cast<double>(e.endNs - e.beginNs) / 1000.0 : 0.0;
            os << "{\"name\":";
            appendJsonString(os, e.name);
            os << ",\"cat\":\"" << e.category << "\",\"ph\":\"X\",\"pid\":1,\"tid\":"
               << buffer->tid;
            char num[48];
            std::snprintf(num, sizeof num, ",\"ts\":%.3f,\"dur\":%.3f", tsUs, durUs);
            os << num;
            if (!e.detail.empty()) {
                os << ",\"args\":{\"detail\":";
                appendJsonString(os, e.detail);
                os << '}';
            }
            os << '}';
        }
    }
    os << "],\"displayTimeUnit\":\"ms\"}\n";
    const std::string json = os.str();
    if (!util::atomicWriteFile(path, json.data(), json.size())) return std::string();
    return path;
}

// --- Span -------------------------------------------------------------------

Span::Span(const char* name) noexcept : name_(name) {
    pushSpan(name_, pushed_);
    traced_ = tracingEnabled();
    if (traced_) beginNs_ = nowNs();
}

Span::Span(const char* name, std::string detail) : name_(name), detail_(std::move(detail)) {
    pushSpan(name_, pushed_);
    traced_ = tracingEnabled();
    if (traced_) beginNs_ = nowNs();
}

Span::~Span() {
    if (pushed_) popSpan();
    if (traced_ && state().active.load(std::memory_order_relaxed))
        recordEvent(name_, "axf", std::move(detail_), beginNs_, nowNs());
}

// --- stall-report surface ---------------------------------------------------

std::string activeSpanPath() {
    const SpanStack& stack = *threadObs().stack;
    const int depth = stack.depth.load(std::memory_order_acquire);
    std::string path;
    for (int i = 0; i < depth && i < SpanStack::kMaxDepth; ++i) {
        const char* name = stack.names[static_cast<std::size_t>(i)].load(std::memory_order_acquire);
        if (name == nullptr) continue;
        if (!path.empty()) path += " > ";
        path += name;
    }
    return path;
}

std::vector<ThreadSpans> allThreadSpans() {
    TraceState& s = state();
    std::vector<SpanStack*> stacks;
    {
        std::lock_guard<std::mutex> lock(s.mutex);
        stacks = s.stacks;
    }
    std::vector<ThreadSpans> out;
    for (const SpanStack* stack : stacks) {
        if (!stack->alive.load(std::memory_order_acquire)) continue;
        const int depth = stack->depth.load(std::memory_order_acquire);
        if (depth <= 0) continue;
        ThreadSpans t;
        t.tid = stack->tid;
        for (int i = 0; i < depth && i < SpanStack::kMaxDepth; ++i) {
            const char* name =
                stack->names[static_cast<std::size_t>(i)].load(std::memory_order_acquire);
            if (name == nullptr) continue;
            if (!t.path.empty()) t.path += " > ";
            t.path += name;
            t.innermost = name;
        }
        if (t.innermost != nullptr) out.push_back(std::move(t));
    }
    return out;
}

std::string stallReport() {
    std::string report;
    for (const ThreadSpans& t : allThreadSpans()) {
        report += "  thread " + std::to_string(t.tid) + " in " + t.path + "\n";
    }
    return report;
}

// --- ThreadPool task context ------------------------------------------------

TaskContext currentContext() noexcept {
    const SpanStack& stack = *threadObs().stack;
    const int depth = stack.depth.load(std::memory_order_relaxed);
    TaskContext ctx;
    if (depth > 0 && depth <= SpanStack::kMaxDepth)
        ctx.parent = stack.names[static_cast<std::size_t>(depth - 1)].load(
            std::memory_order_relaxed);
    return ctx;
}

ScopedTaskContext::ScopedTaskContext(const TaskContext& ctx) noexcept : name_(ctx.parent) {
    if (name_ == nullptr) return;
    pushSpan(name_, pushed_);
    traced_ = tracingEnabled();
    if (traced_) beginNs_ = nowNs();
}

ScopedTaskContext::~ScopedTaskContext() {
    if (name_ == nullptr) return;
    if (pushed_) popSpan();
    if (traced_ && state().active.load(std::memory_order_relaxed))
        recordEvent(name_, "task", std::string(), beginNs_, nowNs());
}

}  // namespace axf::obs
