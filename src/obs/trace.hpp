#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace axf::obs {

/// Scoped tracing in Chrome trace-event format ("catapult" JSON), plus the
/// per-thread span stacks the watchdog reads to name a stalled worker's
/// current phase.
///
/// Design constraints, in order:
///  - strictly out of band: spans never touch RNG streams, result buffers
///    or merge orders, so every determinism/bit-identity contract of the
///    evaluation + search stack survives instrumentation;
///  - near-zero overhead when disabled: constructing a Span with tracing
///    off is one relaxed atomic load and a thread-local pointer push (the
///    stack stays maintained so stall reports work even without a trace
///    file);
///  - TSan-clean cross-thread reads: the span stacks hold pointers to
///    static-storage string literals in atomic slots, so the watchdog
///    thread can read them mid-push without data races or lifetime
///    hazards.
///
/// `AXF_TRACE=file.json` arms tracing for the whole process (flushed at
/// exit); `startTracing`/`stopTracing` scope it programmatically.  Open
/// the file at https://ui.perfetto.dev (or chrome://tracing).

/// True while a trace session is collecting.  One relaxed load.
bool tracingEnabled() noexcept;

/// Begins collecting into an in-memory session to be written to `path`.
/// Re-entrant start replaces the pending path but keeps collecting.
void startTracing(const std::string& path);

/// Stops collecting, writes the Chrome-trace JSON (atomic replace), and
/// returns the path written (empty when no session was active or the
/// write failed).
std::string stopTracing();

/// RAII trace span.  `name` MUST have static storage duration (string
/// literals): the span stack publishes the pointer to other threads and
/// trace events reference it after the span died.  The optional `detail`
/// is copied into the trace event's args (and may be dynamic).
class Span {
public:
    explicit Span(const char* name) noexcept;
    Span(const char* name, std::string detail);
    ~Span();

    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

private:
    const char* name_;
    std::string detail_;
    std::uint64_t beginNs_ = 0;
    bool pushed_ = false;
    bool traced_ = false;
};

/// Innermost-first " > "-joined span path of the calling thread (empty
/// when no span is active).  Outermost first, e.g.
/// "search_epoch > eval_batch".
std::string activeSpanPath();

/// One thread's active-span state, as read (racily but safely) by the
/// watchdog.
struct ThreadSpans {
    unsigned tid = 0;           ///< obs-assigned dense thread id (== trace tid)
    std::string path;           ///< outermost-first " > "-joined span names
    const char* innermost = nullptr;
};

/// Span state of every thread that ever opened a span and is still alive,
/// skipping threads with no active span.  Best-effort and lock-free on
/// the recording side.
std::vector<ThreadSpans> allThreadSpans();

/// Multi-line stall report for the watchdog: one "  thread N in a > b"
/// line per thread with an active span (empty string when none).
std::string stallReport();

/// Span context captured by ThreadPool::submit so worker tasks nest under
/// the phase that submitted them (both in the trace timeline and in stall
/// reports).
struct TaskContext {
    const char* parent = nullptr;  ///< submitting thread's innermost span name
};

/// Innermost span name of the calling thread (static-storage pointer),
/// packaged for a queued task.
TaskContext currentContext() noexcept;

/// Re-opens the captured context on a worker thread for the duration of a
/// task: pushes the parent span name onto this thread's stack and, when
/// tracing, records a span so the worker's timeline shows which phase it
/// worked for.  No-op for a null context.
class ScopedTaskContext {
public:
    explicit ScopedTaskContext(const TaskContext& ctx) noexcept;
    ~ScopedTaskContext();

    ScopedTaskContext(const ScopedTaskContext&) = delete;
    ScopedTaskContext& operator=(const ScopedTaskContext&) = delete;

private:
    const char* name_;
    std::uint64_t beginNs_ = 0;
    bool pushed_ = false;
    bool traced_ = false;
};

}  // namespace axf::obs
