#include "src/autoax/dse.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "src/core/pareto.hpp"
#include "src/ml/models.hpp"
#include "src/util/rng.hpp"
#include "src/util/select.hpp"

namespace axf::autoax {

double costParamOf(const AcceleratorCost& cost, core::FpgaParam param) {
    switch (param) {
        case core::FpgaParam::Latency: return cost.latencyNs;
        case core::FpgaParam::Power: return cost.powerMw;
        case core::FpgaParam::Area: return cost.lutCount;
    }
    return 0.0;
}

AcceleratorEstimators AcceleratorEstimators::train(const AcceleratorModel& model,
                                                   const std::vector<EvaluatedConfig>& samples) {
    std::vector<ml::Vector> rows;
    ml::Vector ssim, area, power, latency;
    for (const EvaluatedConfig& s : samples) {
        rows.push_back(model.features(s.config));
        ssim.push_back(s.ssim);
        area.push_back(s.cost.lutCount);
        power.push_back(s.cost.powerMw);
        latency.push_back(s.cost.latencyNs);
    }
    const ml::Matrix x = ml::Matrix::fromRows(rows);

    AcceleratorEstimators est;
    // QoR is strongly non-linear in the error mass -> forest; the cost
    // metrics are near-additive -> Bayesian ridge (the paper reuses its
    // best library-level estimators here).
    est.qor_ = std::make_unique<ml::RandomForest>();
    est.qor_->fit(x, ssim);
    est.area_ = std::make_unique<ml::ScaledRegressor>(std::make_unique<ml::BayesianRidge>());
    est.area_->fit(x, area);
    est.power_ = std::make_unique<ml::ScaledRegressor>(std::make_unique<ml::BayesianRidge>());
    est.power_->fit(x, power);
    est.latency_ = std::make_unique<ml::ScaledRegressor>(std::make_unique<ml::BayesianRidge>());
    est.latency_->fit(x, latency);
    return est;
}

double AcceleratorEstimators::estimateSsim(const AcceleratorModel& model,
                                           const AcceleratorConfig& c) const {
    return qor_->predict(model.features(c));
}

double AcceleratorEstimators::estimateCost(const AcceleratorModel& model,
                                           const AcceleratorConfig& c,
                                           core::FpgaParam param) const {
    const std::vector<double> f = model.features(c);
    switch (param) {
        case core::FpgaParam::Latency: return latency_->predict(f);
        case core::FpgaParam::Power: return power_->predict(f);
        case core::FpgaParam::Area: return area_->predict(f);
    }
    return 0.0;
}

std::vector<std::size_t> qualityCostFront(const std::vector<EvaluatedConfig>& points,
                                          core::FpgaParam param) {
    std::vector<core::ParetoPoint> pp(points.size());
    for (std::size_t i = 0; i < points.size(); ++i)
        pp[i] = core::ParetoPoint{1.0 - points[i].ssim, costParamOf(points[i].cost, param), i};
    return core::paretoFront(pp);
}

namespace {

AcceleratorConfig mutate(const ConfigSpace& space, AcceleratorConfig c, util::Rng& rng) {
    const int moves = 1 + static_cast<int>(rng.index(2));
    for (int i = 0; i < moves; ++i) {
        const std::size_t slot = rng.index(c.choice.size());
        c.choice[slot] = static_cast<int>(rng.index(static_cast<std::size_t>(space.menuSizeOf(slot))));
    }
    return c;
}

/// Archive entry during estimator-guided search.
struct ArchiveEntry {
    AcceleratorConfig config;
    double estSsim = 0.0;
    double estCost = 0.0;
};

/// Keeps the archive non-dominated (maximize ssim, minimize cost).
bool archiveInsert(std::vector<ArchiveEntry>& archive, ArchiveEntry entry, std::size_t cap) {
    for (const ArchiveEntry& e : archive) {
        if (e.config == entry.config) return false;  // already archived
        if (e.estSsim >= entry.estSsim && e.estCost <= entry.estCost &&
            (e.estSsim > entry.estSsim || e.estCost < entry.estCost))
            return false;  // dominated
    }
    std::erase_if(archive, [&](const ArchiveEntry& e) {
        return entry.estSsim >= e.estSsim && entry.estCost <= e.estCost &&
               (entry.estSsim > e.estSsim || entry.estCost < e.estCost);
    });
    archive.push_back(std::move(entry));
    if (archive.size() > cap && cap > 0) {
        // Thin uniformly along the cost axis, keeping the extremes (the
        // old `thinned.back() = archive.back()` patch-up could clone an
        // entry the stride had already selected).
        std::sort(archive.begin(), archive.end(),
                  [](const ArchiveEntry& a, const ArchiveEntry& b) { return a.estCost < b.estCost; });
        util::thinUniform(archive, cap);
    }
    return true;
}

}  // namespace

AutoAxFpgaFlow::Result AutoAxFpgaFlow::run(const AcceleratorModel& model) const {
    util::Rng rng(config_.seed);
    const ConfigSpace& space = model.configSpace();
    Result result;
    result.designSpaceSize = space.designSpaceSize();

    // Scenes and their exact references are built exactly once and shared
    // by the training sample, all three scenarios and the baselines.
    std::vector<img::Image> scenes;
    for (int s = 0; s < config_.sceneCount; ++s)
        scenes.push_back(img::syntheticScene(config_.imageSize, config_.imageSize,
                                             config_.seed + static_cast<std::uint64_t>(s)));
    EvalEngine engine(model, std::move(scenes),
                      {.threads = config_.threads, .pool = config_.pool});

    // --- training sample (random approximation assignments) ---------------
    // The distinct-sample target is capped at the design-space size (a
    // small workload — e.g. a Sobel accelerator over a short menu — holds
    // fewer distinct configs than the default trainConfigs), and rejection
    // sampling is attempt-bounded so near-exhausted spaces terminate too.
    std::size_t trainTarget = static_cast<std::size_t>(config_.trainConfigs);
    if (space.designSpaceSize() < static_cast<double>(trainTarget))
        trainTarget = static_cast<std::size_t>(space.designSpaceSize());
    std::unordered_set<std::uint64_t> seen;
    std::vector<AcceleratorConfig> trainConfigs;
    std::size_t attempts = 0;
    const std::size_t maxAttempts = 64 * trainTarget + 1024;
    while (trainConfigs.size() < trainTarget && attempts++ < maxAttempts) {
        AcceleratorConfig c = space.randomConfig(rng);
        if (!seen.insert(c.hash()).second) continue;
        trainConfigs.push_back(std::move(c));
    }
    // Anchor the estimators (and the search archives below) with the two
    // known corners: all-most-accurate (menus are MED-sorted, index 0) and
    // all-cheapest.  Random assignments almost never hit these extremes.
    for (AcceleratorConfig corner : {space.accurateCorner(), space.cheapCorner()})
        if (seen.insert(corner.hash()).second) trainConfigs.push_back(std::move(corner));
    result.trainingSet = engine.evaluateBatch(trainConfigs);
    const AcceleratorEstimators estimators =
        AcceleratorEstimators::train(model, result.trainingSet);

    // --- per-scenario archive hill-climbing --------------------------------
    for (core::FpgaParam param : core::kAllFpgaParams) {
        ScenarioResult scenario;
        scenario.param = param;
        util::Rng searchRng = rng.fork();

        std::vector<ArchiveEntry> archive;
        const auto estimated = [&](AcceleratorConfig c) {
            ++scenario.estimatorQueries;
            ArchiveEntry e;
            e.estSsim = estimators.estimateSsim(model, c);
            e.estCost = estimators.estimateCost(model, c, param);
            e.config = std::move(c);
            return e;
        };
        for (int i = 0; i < config_.archiveSeed; ++i)
            archiveInsert(archive, estimated(space.randomConfig(searchRng)), config_.archiveCap);
        for (const EvaluatedConfig& t : result.trainingSet)  // reuse the free knowledge
            archiveInsert(archive,
                          ArchiveEntry{t.config, t.ssim, costParamOf(t.cost, param)},
                          config_.archiveCap);

        for (int it = 0; it < config_.hillIterations; ++it) {
            const ArchiveEntry& parent = archive[searchRng.index(archive.size())];
            archiveInsert(archive, estimated(mutate(space, parent.config, searchRng)),
                          config_.archiveCap);
        }

        // Re-evaluate the discovered pseudo-Pareto configurations for real
        // — in one batch, and paying only for configs not measured before
        // (the engine memo spans training set and earlier scenarios).
        std::vector<AcceleratorConfig> archiveConfigs;
        archiveConfigs.reserve(archive.size());
        for (const ArchiveEntry& e : archive) archiveConfigs.push_back(e.config);
        const std::size_t freshBefore = engine.freshEvaluations();
        scenario.autoax = engine.evaluateBatch(archiveConfigs);
        scenario.realEvaluations = engine.freshEvaluations() - freshBefore;

        // Equal-budget random baseline: as many *fresh* simulations as the
        // archive re-evaluation cost.  Draws that would be served from the
        // memo (or repeat an earlier draw) don't consume budget, so the
        // baseline is re-drawn until it really pays the same simulation
        // bill; when a small space runs out of unseen configs the
        // attempt-bounded loop stops and plain draws pad the result count.
        std::vector<AcceleratorConfig> randomConfigs;
        std::unordered_set<std::uint64_t> drawn;
        std::size_t drawAttempts = 0;
        const std::size_t maxDrawAttempts = 64 * scenario.realEvaluations + 1024;
        while (randomConfigs.size() < scenario.realEvaluations &&
               drawAttempts++ < maxDrawAttempts) {
            AcceleratorConfig c = space.randomConfig(searchRng);
            if (engine.isMemoized(c) || !drawn.insert(c.hash()).second) continue;
            randomConfigs.push_back(std::move(c));
        }
        while (randomConfigs.size() < scenario.realEvaluations)
            randomConfigs.push_back(space.randomConfig(searchRng));
        scenario.random = engine.evaluateBatch(randomConfigs);

        result.scenarios.push_back(std::move(scenario));
    }
    result.totalRealEvaluations = engine.freshEvaluations();
    return result;
}

}  // namespace axf::autoax
