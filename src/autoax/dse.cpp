#include "src/autoax/dse.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <optional>
#include <unordered_set>

#include "src/autoax/search_problem.hpp"
#include "src/cache/characterization_cache.hpp"
#include "src/core/pareto.hpp"
#include "src/ml/models.hpp"
#include "src/obs/trace.hpp"
#include "src/util/rng.hpp"

namespace axf::autoax {

double costParamOf(const AcceleratorCost& cost, core::FpgaParam param) {
    switch (param) {
        case core::FpgaParam::Latency: return cost.latencyNs;
        case core::FpgaParam::Power: return cost.powerMw;
        case core::FpgaParam::Area: return cost.lutCount;
    }
    return 0.0;
}

AcceleratorEstimators AcceleratorEstimators::train(const AcceleratorModel& model,
                                                   const std::vector<EvaluatedConfig>& samples) {
    std::vector<ml::Vector> rows;
    ml::Vector ssim, area, power, latency;
    for (const EvaluatedConfig& s : samples) {
        rows.push_back(model.features(s.config));
        ssim.push_back(s.ssim);
        area.push_back(s.cost.lutCount);
        power.push_back(s.cost.powerMw);
        latency.push_back(s.cost.latencyNs);
    }
    const ml::Matrix x = ml::Matrix::fromRows(rows);

    AcceleratorEstimators est;
    // QoR is strongly non-linear in the error mass -> forest; the cost
    // metrics are near-additive -> Bayesian ridge (the paper reuses its
    // best library-level estimators here).
    est.qor_ = std::make_unique<ml::RandomForest>();
    est.qor_->fit(x, ssim);
    est.area_ = std::make_unique<ml::ScaledRegressor>(std::make_unique<ml::BayesianRidge>());
    est.area_->fit(x, area);
    est.power_ = std::make_unique<ml::ScaledRegressor>(std::make_unique<ml::BayesianRidge>());
    est.power_->fit(x, power);
    est.latency_ = std::make_unique<ml::ScaledRegressor>(std::make_unique<ml::BayesianRidge>());
    est.latency_->fit(x, latency);
    return est;
}

double AcceleratorEstimators::estimateSsim(const AcceleratorModel& model,
                                           const AcceleratorConfig& c) const {
    return qor_->predict(model.features(c));
}

double AcceleratorEstimators::estimateCost(const AcceleratorModel& model,
                                           const AcceleratorConfig& c,
                                           core::FpgaParam param) const {
    const std::vector<double> f = model.features(c);
    switch (param) {
        case core::FpgaParam::Latency: return latency_->predict(f);
        case core::FpgaParam::Power: return power_->predict(f);
        case core::FpgaParam::Area: return area_->predict(f);
    }
    return 0.0;
}

std::vector<std::size_t> qualityCostFront(const std::vector<EvaluatedConfig>& points,
                                          core::FpgaParam param) {
    std::vector<core::ParetoPoint> pp(points.size());
    for (std::size_t i = 0; i < points.size(); ++i)
        pp[i] = core::ParetoPoint{1.0 - points[i].ssim, costParamOf(points[i].cost, param), i};
    return core::paretoFront(pp);
}

namespace {

/// Equal-budget random baseline: exactly `count` configurations, drawn so
/// the batch pays the same number of FRESH simulations as the archive
/// re-evaluation it is compared against.  Budget invariant: a draw the
/// engine would serve from its memo — or one repeating an earlier draw of
/// this batch — costs nothing fresh, so it consumes one of the
/// `64 * count + 1024` bounded attempts instead of budget; once attempts
/// are exhausted (a small, nearly-memoized design space), plain draws pad
/// the result, so the returned batch always holds `count` configs and
/// never pays more than `count` fresh simulations.
std::vector<AcceleratorConfig> drawEqualBudgetBaseline(const ConfigSpace& space,
                                                       const EvalEngine& engine,
                                                       util::Rng& rng, std::size_t count) {
    std::vector<AcceleratorConfig> configs;
    configs.reserve(count);
    std::unordered_set<std::uint64_t> drawn;
    std::size_t attempts = 0;
    const std::size_t maxAttempts = 64 * count + 1024;
    while (configs.size() < count) {
        AcceleratorConfig c = space.randomConfig(rng);
        if (attempts++ < maxAttempts &&
            (engine.isMemoized(c) || !drawn.insert(c.hash()).second))
            continue;
        configs.push_back(std::move(c));
    }
    return configs;
}

/// File-name slug of a scenario's checkpoint inside `checkpointDirectory`.
const char* paramSlug(core::FpgaParam param) {
    switch (param) {
        case core::FpgaParam::Latency: return "latency";
        case core::FpgaParam::Power: return "power";
        case core::FpgaParam::Area: return "area";
    }
    return "param";
}

}  // namespace

AutoAxFpgaFlow::Result AutoAxFpgaFlow::run(const AcceleratorModel& model) const {
    obs::Span flowSpan("dse_flow");
    util::Rng rng(config_.seed);
    const ConfigSpace& space = model.configSpace();
    Result result;
    result.designSpaceSize = space.designSpaceSize();

    // Scenes and their exact references are built exactly once and shared
    // by the training sample, all three scenarios and the baselines.
    std::vector<img::Image> scenes;
    for (int s = 0; s < config_.sceneCount; ++s)
        scenes.push_back(img::syntheticScene(config_.imageSize, config_.imageSize,
                                             config_.seed + static_cast<std::uint64_t>(s)));
    EvalEngine engine(model, std::move(scenes),
                      {.threads = config_.threads, .pool = config_.pool,
                       .cancel = config_.cancel});
    if (!config_.checkpointDirectory.empty())
        std::filesystem::create_directories(config_.checkpointDirectory);

    // --- training sample (random approximation assignments) ---------------
    // The distinct-sample target is capped at the design-space size (a
    // small workload — e.g. a Sobel accelerator over a short menu — holds
    // fewer distinct configs than the default trainConfigs), and rejection
    // sampling is attempt-bounded so near-exhausted spaces terminate too.
    std::optional<obs::Span> phaseSpan;
    phaseSpan.emplace("train_estimators");
    std::size_t trainTarget = static_cast<std::size_t>(config_.trainConfigs);
    if (space.designSpaceSize() < static_cast<double>(trainTarget))
        trainTarget = static_cast<std::size_t>(space.designSpaceSize());
    std::unordered_set<std::uint64_t> seen;
    std::vector<AcceleratorConfig> trainConfigs;
    std::size_t attempts = 0;
    const std::size_t maxAttempts = 64 * trainTarget + 1024;
    while (trainConfigs.size() < trainTarget && attempts++ < maxAttempts) {
        AcceleratorConfig c = space.randomConfig(rng);
        if (!seen.insert(c.hash()).second) continue;
        trainConfigs.push_back(std::move(c));
    }
    // Anchor the estimators (and the search archives below) with the two
    // known corners: all-most-accurate (menus are MED-sorted, index 0) and
    // all-cheapest.  Random assignments almost never hit these extremes.
    for (AcceleratorConfig corner : {space.accurateCorner(), space.cheapCorner()})
        if (seen.insert(corner.hash()).second) trainConfigs.push_back(std::move(corner));
    result.trainingSet = engine.evaluateBatch(trainConfigs);
    const AcceleratorEstimators estimators =
        AcceleratorEstimators::train(model, result.trainingSet);
    phaseSpan.reset();

    // --- per-component resilience characterization -------------------------
    // Slot-major [slot][choice] table of mean error-under-fault: each menu
    // entry is campaigned exactly once per group (content-addressed in the
    // characterization cache when one is provided), then the group's MED
    // column is shared by all of its slots.
    std::vector<std::vector<double>> resilienceTable;
    if (config_.resilienceObjective) {
        obs::Span resilienceSpan("resilience_table");
        fault::CampaignConfig faultCampaign = config_.faultCampaign;
        if (faultCampaign.analysis.cancel == nullptr)
            faultCampaign.analysis.cancel = config_.cancel;
        for (std::size_t g = 0; g < space.groups.size(); ++g) {
            std::vector<double> med(static_cast<std::size_t>(space.groups[g].menuSize), 0.0);
            if (const std::vector<Component>* menu = model.componentMenu(g))
                for (std::size_t c = 0; c < menu->size() && c < med.size(); ++c) {
                    const Component& comp = (*menu)[c];
                    med[c] = cache::analyzeResilienceCached(
                                 config_.cache, comp.netlist.structuralHash(), comp.netlist,
                                 comp.signature, faultCampaign)
                                 .meanMedUnderFault;
                }
            for (int s = 0; s < space.groups[g].slots; ++s) resilienceTable.push_back(med);
        }
    }

    // --- per-scenario estimator-guided island search -----------------------
    // The search itself runs on the `search::IslandSearch` engine: N
    // islands (1 = the legacy serial archive hill-climb, bit-for-bit)
    // over the `AcceleratorSearchProblem` adapter, ring migration, and a
    // block-ordered merge — deterministic at any thread count.
    using Search = search::IslandSearch<AcceleratorSearchProblem>;
    for (core::FpgaParam param : core::kAllFpgaParams) {
        obs::Span scenarioSpan("scenario_search");
        ScenarioResult scenario;
        scenario.param = param;
        // One draw per scenario (the legacy `rng.fork()`): island 0 keeps
        // this seed, so the flow RNG stream and the single-island search
        // stream both match the pre-engine code exactly.
        const std::uint64_t searchSeed = rng.uniformInt(0, UINT64_MAX);

        AcceleratorSearchProblem problem(model, estimators, param);
        if (config_.resilienceObjective) problem.setResilienceObjective(resilienceTable);
        Search::Options searchOptions;
        searchOptions.islands = config_.islands;
        searchOptions.batch = config_.searchBatch;
        // hillIterations stays the TOTAL estimator-guided move budget: it
        // is split across islands and speculative batches (rounded up).
        const int perGeneration = std::max(1, config_.islands * config_.searchBatch);
        searchOptions.generations =
            (config_.hillIterations + perGeneration - 1) / perGeneration;
        searchOptions.seedsPerIsland = config_.archiveSeed;
        searchOptions.migrationInterval = config_.migrationInterval;
        searchOptions.migrants = config_.migrants;
        searchOptions.archiveCap = config_.archiveCap;
        searchOptions.epsilon = config_.searchEpsilon;
        searchOptions.seed = searchSeed;
        searchOptions.strategy = config_.strategy;
        searchOptions.islandStrategies = config_.islandStrategies;
        searchOptions.threads = config_.threads;
        searchOptions.pool = config_.pool;

        // Durability: each scenario snapshots to its own file, identified
        // by a digest folding the search options (incl. the per-scenario
        // seed) with the scenario parameter, so resuming a latency
        // checkpoint into a power scenario is rejected loudly.
        if (!config_.checkpointDirectory.empty())
            searchOptions.checkpointPath = config_.checkpointDirectory + "/scenario_" +
                                           paramSlug(param) + ".axfk";
        searchOptions.checkpointInterval = config_.checkpointInterval;
        searchOptions.problemDigest =
            0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(param) + 1) +
            (config_.resilienceObjective ? 0xF00Dull : 0);
        searchOptions.cancel = config_.cancel;
        if (config_.onSearchEpoch)
            searchOptions.onEpoch = [hook = config_.onSearchEpoch, param](int done) {
                hook(param, done);
            };

        // The training sample is free knowledge: every island archive is
        // seeded with it (after its private random seeds), real SSIM and
        // cost standing in for estimates exactly as before.
        std::vector<Search::Entry> seeded;
        seeded.reserve(result.trainingSet.size());
        for (const EvaluatedConfig& t : result.trainingSet)
            seeded.push_back({t.config, problem.objectives(
                                            t.ssim, costParamOf(t.cost, param), t.config)});
        const Search search(problem, searchOptions);
        // With checkpointing on, resume whatever the last run left behind
        // (a completed scenario fast-forwards off its final snapshot);
        // fresh runs and checkpoint-less runs are the plain path.
        Search::Result searched = searchOptions.checkpointPath.empty()
                                      ? search.run(seeded)
                                      : search.runOrResume(seeded);
        scenario.estimatorQueries = searched.evaluations;

        // Re-evaluate the discovered pseudo-Pareto configurations for real
        // — in one batch, and paying only for configs not measured before
        // (the engine memo spans training set and earlier scenarios).
        std::vector<AcceleratorConfig> archiveConfigs;
        archiveConfigs.reserve(searched.archive.size());
        for (const Search::Entry& e : searched.archive.entries())
            archiveConfigs.push_back(e.genome);
        const std::size_t freshBefore = engine.freshEvaluations();
        scenario.autoax = engine.evaluateBatch(archiveConfigs);
        scenario.realEvaluations = engine.freshEvaluations() - freshBefore;

        // The baseline continues island 0's RNG stream — with one island
        // that is exactly where the legacy serial search left it.
        util::Rng baselineRng = std::move(searched.islandRngs.front());
        scenario.random = engine.evaluateBatch(drawEqualBudgetBaseline(
            space, engine, baselineRng, scenario.realEvaluations));

        result.scenarios.push_back(std::move(scenario));
    }
    result.totalRealEvaluations = engine.freshEvaluations();
    return result;
}

}  // namespace axf::autoax
