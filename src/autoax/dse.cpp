#include "src/autoax/dse.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "src/core/pareto.hpp"
#include "src/ml/models.hpp"
#include "src/util/rng.hpp"
#include "src/util/select.hpp"

namespace axf::autoax {

double costParamOf(const AcceleratorCost& cost, core::FpgaParam param) {
    switch (param) {
        case core::FpgaParam::Latency: return cost.latencyNs;
        case core::FpgaParam::Power: return cost.powerMw;
        case core::FpgaParam::Area: return cost.lutCount;
    }
    return 0.0;
}

std::vector<double> configFeatures(const GaussianAccelerator& accel,
                                   const AcceleratorConfig& config) {
    const auto& mults = accel.multiplierMenu();
    const auto& adders = accel.adderMenu();
    const std::array<int, 9>& weights = GaussianAccelerator::kernelWeights();

    double multMedSum = 0, multMedMax = 0, multWceSum = 0, multLut = 0, multPow = 0,
           multLatMax = 0, exactMults = 0;
    for (int slot = 0; slot < 9; ++slot) {
        const Component& c =
            mults[static_cast<std::size_t>(config.multiplier[static_cast<std::size_t>(slot)])];
        const double w = static_cast<double>(weights[static_cast<std::size_t>(slot)]) / 16.0;
        multMedSum += c.error.med * w;
        multMedMax = std::max(multMedMax, c.error.med);
        multWceSum += c.error.worstCaseError * w;
        multLut += c.fpga.lutCount;
        multPow += c.fpga.powerMw;
        multLatMax = std::max(multLatMax, c.fpga.latencyNs);
        // Feature semantics: "component showed no error" — 16-bit adder
        // menus carry sampled reports, for which strict `isExact` can
        // never hold, so the estimator feature uses the observed predicate.
        if (c.error.observedExact()) exactMults += 1.0;
    }
    double addMedSum = 0, addMedMax = 0, addWceSum = 0, addLut = 0, addPow = 0, addLatSum = 0,
           exactAdders = 0;
    static constexpr std::array<double, 8> kLevelWeight = {1.0, 1.0, 1.0, 1.0, 0.5, 0.5, 0.25, 0.25};
    for (int node = 0; node < 8; ++node) {
        const Component& c =
            adders[static_cast<std::size_t>(config.adder[static_cast<std::size_t>(node)])];
        const double w = kLevelWeight[static_cast<std::size_t>(node)];
        addMedSum += c.error.med * w;
        addMedMax = std::max(addMedMax, c.error.med);
        addWceSum += c.error.worstCaseError * w;
        addLut += c.fpga.lutCount;
        addPow += c.fpga.powerMw;
        addLatSum += c.fpga.latencyNs;
        if (c.error.observedExact()) exactAdders += 1.0;
    }
    return {multMedSum, multMedMax, std::log1p(multWceSum), multLut, multPow, multLatMax,
            exactMults, addMedSum,  addMedMax, std::log1p(addWceSum), addLut, addPow,
            addLatSum,  exactAdders};
}

AcceleratorEstimators AcceleratorEstimators::train(const GaussianAccelerator& accel,
                                                   const std::vector<EvaluatedConfig>& samples) {
    std::vector<ml::Vector> rows;
    ml::Vector ssim, area, power, latency;
    for (const EvaluatedConfig& s : samples) {
        rows.push_back(configFeatures(accel, s.config));
        ssim.push_back(s.ssim);
        area.push_back(s.cost.lutCount);
        power.push_back(s.cost.powerMw);
        latency.push_back(s.cost.latencyNs);
    }
    const ml::Matrix x = ml::Matrix::fromRows(rows);

    AcceleratorEstimators est;
    // QoR is strongly non-linear in the error mass -> forest; the cost
    // metrics are near-additive -> Bayesian ridge (the paper reuses its
    // best library-level estimators here).
    est.qor_ = std::make_unique<ml::RandomForest>();
    est.qor_->fit(x, ssim);
    est.area_ = std::make_unique<ml::ScaledRegressor>(std::make_unique<ml::BayesianRidge>());
    est.area_->fit(x, area);
    est.power_ = std::make_unique<ml::ScaledRegressor>(std::make_unique<ml::BayesianRidge>());
    est.power_->fit(x, power);
    est.latency_ = std::make_unique<ml::ScaledRegressor>(std::make_unique<ml::BayesianRidge>());
    est.latency_->fit(x, latency);
    return est;
}

double AcceleratorEstimators::estimateSsim(const GaussianAccelerator& accel,
                                           const AcceleratorConfig& c) const {
    return qor_->predict(configFeatures(accel, c));
}

double AcceleratorEstimators::estimateCost(const GaussianAccelerator& accel,
                                           const AcceleratorConfig& c,
                                           core::FpgaParam param) const {
    const std::vector<double> f = configFeatures(accel, c);
    switch (param) {
        case core::FpgaParam::Latency: return latency_->predict(f);
        case core::FpgaParam::Power: return power_->predict(f);
        case core::FpgaParam::Area: return area_->predict(f);
    }
    return 0.0;
}

std::vector<std::size_t> qualityCostFront(const std::vector<EvaluatedConfig>& points,
                                          core::FpgaParam param) {
    std::vector<core::ParetoPoint> pp(points.size());
    for (std::size_t i = 0; i < points.size(); ++i)
        pp[i] = core::ParetoPoint{1.0 - points[i].ssim, costParamOf(points[i].cost, param), i};
    return core::paretoFront(pp);
}

namespace {

AcceleratorConfig randomConfig(const GaussianAccelerator& accel, util::Rng& rng) {
    AcceleratorConfig c;
    for (int& m : c.multiplier) m = static_cast<int>(rng.index(accel.multiplierMenu().size()));
    for (int& a : c.adder) a = static_cast<int>(rng.index(accel.adderMenu().size()));
    return c;
}

AcceleratorConfig mutate(const GaussianAccelerator& accel, AcceleratorConfig c, util::Rng& rng) {
    const int moves = 1 + static_cast<int>(rng.index(2));
    for (int i = 0; i < moves; ++i) {
        if (rng.bernoulli(9.0 / 17.0)) {
            c.multiplier[rng.index(9)] = static_cast<int>(rng.index(accel.multiplierMenu().size()));
        } else {
            c.adder[rng.index(8)] = static_cast<int>(rng.index(accel.adderMenu().size()));
        }
    }
    return c;
}

/// Archive entry during estimator-guided search.
struct ArchiveEntry {
    AcceleratorConfig config;
    double estSsim = 0.0;
    double estCost = 0.0;
};

/// Keeps the archive non-dominated (maximize ssim, minimize cost).
bool archiveInsert(std::vector<ArchiveEntry>& archive, ArchiveEntry entry, std::size_t cap) {
    for (const ArchiveEntry& e : archive) {
        if (e.config == entry.config) return false;  // already archived
        if (e.estSsim >= entry.estSsim && e.estCost <= entry.estCost &&
            (e.estSsim > entry.estSsim || e.estCost < entry.estCost))
            return false;  // dominated
    }
    std::erase_if(archive, [&](const ArchiveEntry& e) {
        return entry.estSsim >= e.estSsim && entry.estCost <= e.estCost &&
               (entry.estSsim > e.estSsim || entry.estCost < e.estCost);
    });
    archive.push_back(std::move(entry));
    if (archive.size() > cap && cap > 0) {
        // Thin uniformly along the cost axis, keeping the extremes (the
        // old `thinned.back() = archive.back()` patch-up could clone an
        // entry the stride had already selected).
        std::sort(archive.begin(), archive.end(),
                  [](const ArchiveEntry& a, const ArchiveEntry& b) { return a.estCost < b.estCost; });
        util::thinUniform(archive, cap);
    }
    return true;
}

}  // namespace

AutoAxFpgaFlow::Result AutoAxFpgaFlow::run(const GaussianAccelerator& accel) const {
    util::Rng rng(config_.seed);
    Result result;
    result.designSpaceSize = accel.designSpaceSize();

    std::vector<img::Image> scenes;
    for (int s = 0; s < config_.sceneCount; ++s)
        scenes.push_back(img::syntheticScene(config_.imageSize, config_.imageSize,
                                             config_.seed + static_cast<std::uint64_t>(s)));

    const auto evaluate = [&](const AcceleratorConfig& c) {
        EvaluatedConfig e;
        e.config = c;
        e.ssim = accel.quality(c, scenes);
        e.cost = accel.cost(c);
        return e;
    };

    // --- training sample (random approximation assignments) ---------------
    std::unordered_set<std::uint64_t> seen;
    while (result.trainingSet.size() < static_cast<std::size_t>(config_.trainConfigs)) {
        const AcceleratorConfig c = randomConfig(accel, rng);
        if (!seen.insert(c.hash()).second) continue;
        result.trainingSet.push_back(evaluate(c));
    }
    // Anchor the estimators (and the search archives below) with the two
    // known corners: all-most-accurate (menus are MED-sorted, index 0) and
    // all-cheapest.  Random assignments almost never hit these extremes.
    AcceleratorConfig accurateCorner{};
    AcceleratorConfig cheapCorner;
    cheapCorner.multiplier.fill(static_cast<int>(accel.multiplierMenu().size()) - 1);
    cheapCorner.adder.fill(static_cast<int>(accel.adderMenu().size()) - 1);
    for (const AcceleratorConfig& corner : {accurateCorner, cheapCorner})
        if (seen.insert(corner.hash()).second) result.trainingSet.push_back(evaluate(corner));
    const AcceleratorEstimators estimators = AcceleratorEstimators::train(accel, result.trainingSet);

    // --- per-scenario archive hill-climbing --------------------------------
    for (core::FpgaParam param : core::kAllFpgaParams) {
        ScenarioResult scenario;
        scenario.param = param;
        util::Rng searchRng = rng.fork();

        std::vector<ArchiveEntry> archive;
        const auto estimated = [&](const AcceleratorConfig& c) {
            ++scenario.estimatorQueries;
            return ArchiveEntry{c, estimators.estimateSsim(accel, c),
                                estimators.estimateCost(accel, c, param)};
        };
        for (int i = 0; i < config_.archiveSeed; ++i)
            archiveInsert(archive, estimated(randomConfig(accel, searchRng)), config_.archiveCap);
        for (const EvaluatedConfig& t : result.trainingSet)  // reuse the free knowledge
            archiveInsert(archive,
                          ArchiveEntry{t.config, t.ssim, costParamOf(t.cost, param)},
                          config_.archiveCap);

        for (int it = 0; it < config_.hillIterations; ++it) {
            const ArchiveEntry& parent = archive[searchRng.index(archive.size())];
            archiveInsert(archive, estimated(mutate(accel, parent.config, searchRng)),
                          config_.archiveCap);
        }

        // Re-evaluate the discovered pseudo-Pareto configurations for real.
        for (const ArchiveEntry& e : archive) scenario.autoax.push_back(evaluate(e.config));
        scenario.realEvaluations = scenario.autoax.size();

        // Equal-budget random baseline.
        for (std::size_t i = 0; i < scenario.realEvaluations; ++i)
            scenario.random.push_back(evaluate(randomConfig(accel, searchRng)));

        result.scenarios.push_back(std::move(scenario));
    }
    return result;
}

}  // namespace axf::autoax
