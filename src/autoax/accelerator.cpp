#include "src/autoax/accelerator.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string_view>

#include "src/circuit/batch_sim.hpp"
#include "src/circuit/simulator.hpp"
#include "src/img/ssim.hpp"
#include "src/util/rng.hpp"
#include "src/util/select.hpp"
#include "src/util/thread_pool.hpp"

namespace axf::autoax {

using circuit::BatchSimulator;
using circuit::CompiledNetlist;
using circuit::Simulator;
using Word = CompiledNetlist::Word;

namespace {

constexpr std::size_t kWords = BatchSimulator::kWordsPerBlock;
constexpr std::size_t kLanes = BatchSimulator::kLanesPerBlock;

/// Wide batchAdd16: up to kLanes operand pairs per sweep on the compiled
/// engine.  `inWords`/`outWords` are caller-owned blocks (32 * kWords and
/// outputCount * kWords words); nothing allocates.
void batchAdd16Wide(BatchSimulator& sim, const std::uint32_t* a, const std::uint32_t* b,
                    std::uint32_t* out, std::size_t lanes, std::span<Word> inWords,
                    std::span<Word> outWords) {
    std::memset(inWords.data(), 0, inWords.size() * sizeof(Word));
    for (std::size_t lane = 0; lane < lanes; ++lane) {
        const Word laneBit = Word{1} << (lane % 64);
        const std::size_t w = lane / 64;
        // Operands truncate to the adder's 16-bit interface.  Inputs can
        // carry 17-bit values (a previous level's carry-out); without the
        // mask, bit 16 of `a` would alias operand B's LSB and bit 16 of
        // `b` would index past the input block.
        std::uint32_t va = a[lane] & 0xFFFFu;
        while (va != 0) {
            const int bit = __builtin_ctz(va);
            inWords[static_cast<std::size_t>(bit) * kWords + w] |= laneBit;
            va &= va - 1;
        }
        std::uint32_t vb = b[lane] & 0xFFFFu;
        while (vb != 0) {
            const int bit = __builtin_ctz(vb);
            inWords[static_cast<std::size_t>(16 + bit) * kWords + w] |= laneBit;
            vb &= vb - 1;
        }
    }
    sim.evaluate(inWords, outWords);
    const std::size_t outputs = sim.compiled().outputCount();
    std::memset(out, 0, lanes * sizeof(std::uint32_t));
    for (std::size_t bit = 0; bit < outputs; ++bit) {
        const std::uint32_t weight = std::uint32_t{1} << bit;
        for (std::size_t w = 0; w * 64 < lanes; ++w) {
            Word word = outWords[bit * kWords + w];
            const std::size_t laneBase = w * 64;
            while (word != 0) {
                const int lane = __builtin_ctzll(word);
                const std::size_t idx = laneBase + static_cast<std::size_t>(lane);
                if (idx < lanes) out[idx] |= weight;
                word &= word - 1;
            }
        }
    }
}

}  // namespace

std::vector<Component> componentsFromFlow(const core::FlowResult& result,
                                          core::FpgaParam param, std::size_t maxComponents) {
    const core::TargetOutcome* outcome = nullptr;
    for (const core::TargetOutcome& t : result.targets)
        if (t.param == param) outcome = &t;
    if (outcome == nullptr) throw std::invalid_argument("componentsFromFlow: param not in result");

    std::vector<Component> menu;
    for (std::size_t idx : outcome->finalParetoIndices) {
        const core::CharacterizedCircuit& cc = result.dataset.circuits()[idx];
        if (!cc.fpgaMeasured) continue;
        Component c;
        c.name = cc.circuit.name;
        c.signature = cc.circuit.signature;
        c.error = cc.circuit.error;
        c.fpga = cc.fpga;
        c.netlist = cc.circuit.netlist;
        menu.push_back(std::move(c));
    }
    std::sort(menu.begin(), menu.end(),
              [](const Component& a, const Component& b) { return a.error.med < b.error.med; });
    // Uniform thinning over the error-sorted menu keeps the spread,
    // including the cheapest (highest-MED) extreme.
    util::thinUniform(menu, maxComponents);
    return menu;
}

std::uint64_t AcceleratorConfig::hash() const {
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](std::uint64_t v) {
        h ^= v + 1;
        h *= 1099511628211ull;
    };
    for (int m : multiplier) mix(static_cast<std::uint64_t>(m));
    for (int a : adder) mix(static_cast<std::uint64_t>(a));
    return h;
}

const std::array<int, 9>& GaussianAccelerator::kernelWeights() {
    static const std::array<int, 9> kWeights = {1, 2, 1, 2, 4, 2, 1, 2, 1};
    return kWeights;
}

GaussianAccelerator::GaussianAccelerator(std::vector<Component> multiplierMenu,
                                         std::vector<Component> adderMenu,
                                         cache::CharacterizationCache* cache)
    : multipliers_(std::move(multiplierMenu)), adders_(std::move(adderMenu)) {
    if (multipliers_.empty() || adders_.empty())
        throw std::invalid_argument("GaussianAccelerator: empty component menu");
    for (const Component& c : multipliers_)
        if (c.signature.op != circuit::ArithOp::Multiplier || c.signature.widthA != 8)
            throw std::invalid_argument("GaussianAccelerator: multiplier menu needs 8x8 mults");
    for (const Component& c : adders_)
        if (c.signature.op != circuit::ArithOp::Adder || c.signature.widthA != 16)
            throw std::invalid_argument("GaussianAccelerator: adder menu needs 16-bit adders");

    // Characterize the menus up front: exhaustive multiplier tables and
    // compiled adder programs, each entry an independent task.
    multTables_.resize(multipliers_.size());
    util::ThreadPool::global().parallelFor(multipliers_.size(), [&](std::size_t i) {
        multTables_[i] = buildTable(multipliers_[i], cache);
    });
    adderCompiled_.resize(adders_.size());
    util::ThreadPool::global().parallelFor(adders_.size(), [&](std::size_t i) {
        adderCompiled_[i] = CompiledNetlist::compile(adders_[i].netlist);
    });
}

std::vector<std::uint16_t> GaussianAccelerator::buildTable(const Component& component,
                                                           cache::CharacterizationCache* cache) {
    // Exhaustive 8x8 behavioural table via 256-lane sweeps; the result is
    // a pure function of the netlist, so it is content-addressed in the
    // characterization cache (little-endian u16 blob, 128 KiB).
    constexpr std::string_view kTableTag = "multtable16.v1";
    const cache::CacheKey key = cache != nullptr
                                    ? cache::CharacterizationCache::blobKey(
                                          component.netlist.structuralHash(), kTableTag)
                                    : cache::CacheKey{};
    if (cache != nullptr) {
        if (const auto bytes = cache->findBytes(key); bytes && bytes->size() == 2u << 16) {
            std::vector<std::uint16_t> table(1u << 16);
            for (std::size_t i = 0; i < table.size(); ++i)
                table[i] = static_cast<std::uint16_t>((*bytes)[2 * i] |
                                                      ((*bytes)[2 * i + 1] << 8));
            return table;
        }
    }
    std::vector<std::uint16_t> table(1u << 16);
    const CompiledNetlist compiled = CompiledNetlist::compile(component.netlist);
    BatchSimulator sim(compiled);
    std::vector<Word> in(16 * kWords), out(compiled.outputCount() * kWords);
    for (std::uint64_t base = 0; base < (1u << 16); base += kLanes) {
        circuit::fillExhaustiveBlock<kWords>(in, 16, base);
        sim.evaluate(in, out);
        for (std::size_t lane = 0; lane < kLanes; ++lane) {
            std::uint32_t value = 0;
            for (std::size_t bit = 0; bit < out.size() / kWords && bit < 16; ++bit)
                value |= static_cast<std::uint32_t>((out[bit * kWords + lane / 64] >>
                                                     (lane % 64)) &
                                                    1u)
                         << bit;
            table[base + lane] = static_cast<std::uint16_t>(value);
        }
    }
    if (cache != nullptr) {
        std::vector<std::uint8_t> bytes(2 * table.size());
        for (std::size_t i = 0; i < table.size(); ++i) {
            bytes[2 * i] = static_cast<std::uint8_t>(table[i] & 0xFF);
            bytes[2 * i + 1] = static_cast<std::uint8_t>(table[i] >> 8);
        }
        cache->putBytes(key, std::move(bytes));
    }
    return table;
}

double GaussianAccelerator::designSpaceSize() const {
    return std::pow(static_cast<double>(multipliers_.size()), 9.0) *
           std::pow(static_cast<double>(adders_.size()), 8.0);
}

void batchAdd16(Simulator& sim, std::span<const std::uint32_t> a,
                std::span<const std::uint32_t> b, std::span<std::uint32_t> out,
                BatchAddScratch& scratch) {
    if (a.size() > 64 || b.size() != a.size() || out.size() != a.size())
        throw std::invalid_argument(
            "batchAdd16: operand/result spans must agree and hold at most 64 lanes");
    scratch.in.assign(32, 0);
    for (std::size_t lane = 0; lane < a.size(); ++lane) {
        for (int bit = 0; bit < 16; ++bit) {
            if ((a[lane] >> bit) & 1u) scratch.in[static_cast<std::size_t>(bit)] |= std::uint64_t{1} << lane;
            if ((b[lane] >> bit) & 1u)
                scratch.in[static_cast<std::size_t>(16 + bit)] |= std::uint64_t{1} << lane;
        }
    }
    scratch.out.resize(sim.netlist().outputCount());
    sim.evaluate(scratch.in, scratch.out);
    for (std::size_t lane = 0; lane < a.size(); ++lane) {
        std::uint32_t v = 0;
        for (std::size_t bit = 0; bit < scratch.out.size(); ++bit)
            v |= static_cast<std::uint32_t>((scratch.out[bit] >> lane) & 1u) << bit;
        out[lane] = v;
    }
}

void batchAdd16(Simulator& sim, std::span<const std::uint32_t> a,
                std::span<const std::uint32_t> b, std::span<std::uint32_t> out) {
    BatchAddScratch scratch;
    batchAdd16(sim, a, b, out, scratch);
}

img::Image GaussianAccelerator::filter(const img::Image& input,
                                       const AcceleratorConfig& config) const {
    for (int m : config.multiplier)
        if (m < 0 || static_cast<std::size_t>(m) >= multipliers_.size())
            throw std::out_of_range("filter: multiplier choice out of range");
    for (int a : config.adder)
        if (a < 0 || static_cast<std::size_t>(a) >= adders_.size())
            throw std::out_of_range("filter: adder choice out of range");

    // One simulator workspace per adder-tree node (each node may use a
    // different component program); every buffer the pixel loop touches is
    // hoisted here — the loop itself performs zero heap allocations.
    std::vector<BatchSimulator> adderSims;
    adderSims.reserve(8);
    std::size_t maxOutputs = 0;
    for (int node = 0; node < 8; ++node) {
        const auto& compiled =
            adderCompiled_[static_cast<std::size_t>(config.adder[static_cast<std::size_t>(node)])];
        maxOutputs = std::max(maxOutputs, compiled.outputCount());
        adderSims.emplace_back(compiled);
    }
    std::vector<Word> inWords(32 * kWords);
    std::vector<Word> outWords(maxOutputs * kWords);

    const std::array<int, 9>& weights = kernelWeights();
    img::Image output(input.width(), input.height());
    const std::size_t total = input.pixelCount();

    std::array<std::array<std::uint32_t, kLanes>, 9> products{};
    std::array<std::uint32_t, kLanes> l1a{}, l1b{}, l1c{}, l1d{}, l2a{}, l2b{}, l3{}, sum{};

    for (std::size_t base = 0; base < total; base += kLanes) {
        const std::size_t lanes = std::min<std::size_t>(kLanes, total - base);
        for (std::size_t lane = 0; lane < lanes; ++lane) {
            const std::size_t pixel = base + lane;
            const int x = static_cast<int>(pixel % static_cast<std::size_t>(input.width()));
            const int y = static_cast<int>(pixel / static_cast<std::size_t>(input.width()));
            int slot = 0;
            for (int dy = -1; dy <= 1; ++dy) {
                for (int dx = -1; dx <= 1; ++dx, ++slot) {
                    const std::uint32_t pix = input.atClamped(x + dx, y + dy);
                    const std::uint32_t coeff = static_cast<std::uint32_t>(
                        weights[static_cast<std::size_t>(slot)]);
                    const std::size_t tableIdx = static_cast<std::size_t>(
                        config.multiplier[static_cast<std::size_t>(slot)]);
                    products[static_cast<std::size_t>(slot)][lane] =
                        multTables_[tableIdx][pix | (coeff << 8)];
                }
            }
        }
        const auto add = [&](int node, const std::array<std::uint32_t, kLanes>& a,
                             const std::array<std::uint32_t, kLanes>& b,
                             std::array<std::uint32_t, kLanes>& out) {
            BatchSimulator& sim = adderSims[static_cast<std::size_t>(node)];
            batchAdd16Wide(sim, a.data(), b.data(), out.data(), lanes, inWords,
                           {outWords.data(), sim.compiled().outputCount() * kWords});
        };
        add(0, products[0], products[1], l1a);
        add(1, products[2], products[3], l1b);
        add(2, products[4], products[5], l1c);
        add(3, products[6], products[7], l1d);
        add(4, l1a, l1b, l2a);
        add(5, l1c, l1d, l2b);
        add(6, l2a, l2b, l3);
        add(7, l3, products[8], sum);

        for (std::size_t lane = 0; lane < lanes; ++lane) {
            const std::size_t pixel = base + lane;
            const int x = static_cast<int>(pixel % static_cast<std::size_t>(input.width()));
            const int y = static_cast<int>(pixel / static_cast<std::size_t>(input.width()));
            const std::uint32_t rounded = std::min<std::uint32_t>(255u, sum[lane] >> 4);
            output.set(x, y, static_cast<std::uint8_t>(rounded));
        }
    }
    return output;
}

img::Image GaussianAccelerator::filterExact(const img::Image& input) const {
    const std::array<int, 9>& weights = kernelWeights();
    img::Image output(input.width(), input.height());
    for (int y = 0; y < input.height(); ++y) {
        for (int x = 0; x < input.width(); ++x) {
            std::uint32_t acc = 0;
            int slot = 0;
            for (int dy = -1; dy <= 1; ++dy)
                for (int dx = -1; dx <= 1; ++dx, ++slot)
                    acc += static_cast<std::uint32_t>(input.atClamped(x + dx, y + dy)) *
                           static_cast<std::uint32_t>(weights[static_cast<std::size_t>(slot)]);
            output.set(x, y, static_cast<std::uint8_t>(std::min<std::uint32_t>(255u, acc >> 4)));
        }
    }
    return output;
}

double GaussianAccelerator::quality(const AcceleratorConfig& config,
                                    const std::vector<img::Image>& scenes) const {
    if (scenes.empty()) throw std::invalid_argument("quality: no scenes");
    double acc = 0.0;
    for (const img::Image& scene : scenes)
        acc += img::ssim(filterExact(scene), filter(scene, config));
    return acc / static_cast<double>(scenes.size());
}

AcceleratorCost GaussianAccelerator::cost(const AcceleratorConfig& config) const {
    AcceleratorCost cost;
    double maxMultLatency = 0.0;
    for (int slot = 0; slot < 9; ++slot) {
        const Component& c =
            multipliers_[static_cast<std::size_t>(config.multiplier[static_cast<std::size_t>(slot)])];
        cost.lutCount += c.fpga.lutCount;
        cost.powerMw += c.fpga.powerMw;
        maxMultLatency = std::max(maxMultLatency, c.fpga.latencyNs);
        cost.synthSeconds += 0.25 * c.fpga.synthSeconds;
    }
    // Adder-tree critical path: the slowest adder of each level in series.
    static constexpr std::array<int, 8> kLevel = {1, 1, 1, 1, 2, 2, 3, 4};
    std::array<double, 5> levelWorst{};
    for (int node = 0; node < 8; ++node) {
        const Component& c =
            adders_[static_cast<std::size_t>(config.adder[static_cast<std::size_t>(node)])];
        cost.lutCount += c.fpga.lutCount;
        cost.powerMw += c.fpga.powerMw;
        cost.synthSeconds += 0.25 * c.fpga.synthSeconds;
        const auto level = static_cast<std::size_t>(kLevel[static_cast<std::size_t>(node)]);
        levelWorst[level] = std::max(levelWorst[level], c.fpga.latencyNs);
    }
    cost.latencyNs = maxMultLatency;
    for (int level = 1; level <= 4; ++level)
        cost.latencyNs += levelWorst[static_cast<std::size_t>(level)];

    // Line-buffer / control glue and P&R variance.
    cost.lutCount += 24.0;
    cost.powerMw += 0.12;
    cost.synthSeconds += 90.0;
    util::Rng jitter(config.hash() ^ 0xACCE1ull);
    cost.lutCount *= 1.0 + jitter.uniformReal(-0.02, 0.02);
    cost.powerMw *= 1.0 + jitter.uniformReal(-0.03, 0.03);
    cost.latencyNs *= 1.0 + jitter.uniformReal(-0.03, 0.03);
    return cost;
}

}  // namespace axf::autoax
