#include "src/autoax/accelerator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/circuit/simulator.hpp"
#include "src/img/ssim.hpp"
#include "src/util/rng.hpp"

namespace axf::autoax {

using circuit::Simulator;

std::vector<Component> componentsFromFlow(const core::FlowResult& result,
                                          core::FpgaParam param, std::size_t maxComponents) {
    const core::TargetOutcome* outcome = nullptr;
    for (const core::TargetOutcome& t : result.targets)
        if (t.param == param) outcome = &t;
    if (outcome == nullptr) throw std::invalid_argument("componentsFromFlow: param not in result");

    std::vector<Component> menu;
    for (std::size_t idx : outcome->finalParetoIndices) {
        const core::CharacterizedCircuit& cc = result.dataset.circuits()[idx];
        if (!cc.fpgaMeasured) continue;
        Component c;
        c.name = cc.circuit.name;
        c.signature = cc.circuit.signature;
        c.error = cc.circuit.error;
        c.fpga = cc.fpga;
        c.netlist = cc.circuit.netlist;
        menu.push_back(std::move(c));
    }
    std::sort(menu.begin(), menu.end(),
              [](const Component& a, const Component& b) { return a.error.med < b.error.med; });
    if (maxComponents != 0 && menu.size() > maxComponents) {
        // Uniform thinning over the error-sorted menu keeps the spread.
        std::vector<Component> thinned;
        const double step = static_cast<double>(menu.size()) / static_cast<double>(maxComponents);
        for (std::size_t i = 0; i < maxComponents; ++i)
            thinned.push_back(std::move(menu[static_cast<std::size_t>(i * step)]));
        menu = std::move(thinned);
    }
    return menu;
}

std::uint64_t AcceleratorConfig::hash() const {
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](std::uint64_t v) {
        h ^= v + 1;
        h *= 1099511628211ull;
    };
    for (int m : multiplier) mix(static_cast<std::uint64_t>(m));
    for (int a : adder) mix(static_cast<std::uint64_t>(a));
    return h;
}

const std::array<int, 9>& GaussianAccelerator::kernelWeights() {
    static const std::array<int, 9> kWeights = {1, 2, 1, 2, 4, 2, 1, 2, 1};
    return kWeights;
}

GaussianAccelerator::GaussianAccelerator(std::vector<Component> multiplierMenu,
                                         std::vector<Component> adderMenu)
    : multipliers_(std::move(multiplierMenu)), adders_(std::move(adderMenu)) {
    if (multipliers_.empty() || adders_.empty())
        throw std::invalid_argument("GaussianAccelerator: empty component menu");
    for (const Component& c : multipliers_)
        if (c.signature.op != circuit::ArithOp::Multiplier || c.signature.widthA != 8)
            throw std::invalid_argument("GaussianAccelerator: multiplier menu needs 8x8 mults");
    for (const Component& c : adders_)
        if (c.signature.op != circuit::ArithOp::Adder || c.signature.widthA != 16)
            throw std::invalid_argument("GaussianAccelerator: adder menu needs 16-bit adders");
    multTables_.reserve(multipliers_.size());
    for (const Component& c : multipliers_) multTables_.push_back(buildTable(c));
}

std::vector<std::uint16_t> GaussianAccelerator::buildTable(const Component& component) const {
    // Exhaustive 8x8 behavioural table via 64-lane sweeps.
    static constexpr std::array<std::uint64_t, 6> kLanePattern = {
        0xAAAAAAAAAAAAAAAAull, 0xCCCCCCCCCCCCCCCCull, 0xF0F0F0F0F0F0F0F0ull,
        0xFF00FF00FF00FF00ull, 0xFFFF0000FFFF0000ull, 0xFFFFFFFF00000000ull};
    std::vector<std::uint16_t> table(1u << 16);
    Simulator sim(component.netlist);
    std::vector<std::uint64_t> in(16), out(component.netlist.outputCount());
    for (std::uint64_t base = 0; base < (1u << 16); base += 64) {
        for (int bit = 0; bit < 16; ++bit)
            in[static_cast<std::size_t>(bit)] =
                bit < 6 ? kLanePattern[static_cast<std::size_t>(bit)]
                        : ((base >> bit) & 1u ? ~std::uint64_t{0} : std::uint64_t{0});
        sim.evaluate(in, out);
        for (int lane = 0; lane < 64; ++lane) {
            std::uint32_t value = 0;
            for (std::size_t bit = 0; bit < out.size() && bit < 16; ++bit)
                value |= static_cast<std::uint32_t>((out[bit] >> lane) & 1u) << bit;
            table[base + static_cast<std::uint64_t>(lane)] = static_cast<std::uint16_t>(value);
        }
    }
    return table;
}

double GaussianAccelerator::designSpaceSize() const {
    return std::pow(static_cast<double>(multipliers_.size()), 9.0) *
           std::pow(static_cast<double>(adders_.size()), 8.0);
}

void batchAdd16(Simulator& sim, std::span<const std::uint32_t> a,
                std::span<const std::uint32_t> b, std::span<std::uint32_t> out) {
    std::vector<std::uint64_t> in(32, 0);
    for (std::size_t lane = 0; lane < a.size(); ++lane) {
        for (int bit = 0; bit < 16; ++bit) {
            if ((a[lane] >> bit) & 1u) in[static_cast<std::size_t>(bit)] |= std::uint64_t{1} << lane;
            if ((b[lane] >> bit) & 1u)
                in[static_cast<std::size_t>(16 + bit)] |= std::uint64_t{1} << lane;
        }
    }
    std::vector<std::uint64_t> outWords(sim.netlist().outputCount());
    sim.evaluate(in, outWords);
    for (std::size_t lane = 0; lane < a.size(); ++lane) {
        std::uint32_t v = 0;
        for (std::size_t bit = 0; bit < outWords.size(); ++bit)
            v |= static_cast<std::uint32_t>((outWords[bit] >> lane) & 1u) << bit;
        out[lane] = v;
    }
}

img::Image GaussianAccelerator::filter(const img::Image& input,
                                       const AcceleratorConfig& config) const {
    for (int m : config.multiplier)
        if (m < 0 || static_cast<std::size_t>(m) >= multipliers_.size())
            throw std::out_of_range("filter: multiplier choice out of range");
    for (int a : config.adder)
        if (a < 0 || static_cast<std::size_t>(a) >= adders_.size())
            throw std::out_of_range("filter: adder choice out of range");

    // One simulator per adder-tree node (each node may use a different
    // component, and simulators carry scratch state).
    std::vector<Simulator> adderSims;
    adderSims.reserve(8);
    for (int node = 0; node < 8; ++node)
        adderSims.emplace_back(adders_[static_cast<std::size_t>(config.adder[static_cast<std::size_t>(node)])].netlist);

    const std::array<int, 9>& weights = kernelWeights();
    img::Image output(input.width(), input.height());
    const std::size_t total = input.pixelCount();

    std::array<std::array<std::uint32_t, 64>, 9> products{};
    std::array<std::uint32_t, 64> l1a{}, l1b{}, l1c{}, l1d{}, l2a{}, l2b{}, l3{}, sum{};

    for (std::size_t base = 0; base < total; base += 64) {
        const std::size_t lanes = std::min<std::size_t>(64, total - base);
        for (std::size_t lane = 0; lane < lanes; ++lane) {
            const std::size_t pixel = base + lane;
            const int x = static_cast<int>(pixel % static_cast<std::size_t>(input.width()));
            const int y = static_cast<int>(pixel / static_cast<std::size_t>(input.width()));
            int slot = 0;
            for (int dy = -1; dy <= 1; ++dy) {
                for (int dx = -1; dx <= 1; ++dx, ++slot) {
                    const std::uint32_t pix = input.atClamped(x + dx, y + dy);
                    const std::uint32_t coeff = static_cast<std::uint32_t>(
                        weights[static_cast<std::size_t>(slot)]);
                    const std::size_t tableIdx = static_cast<std::size_t>(
                        config.multiplier[static_cast<std::size_t>(slot)]);
                    products[static_cast<std::size_t>(slot)][lane] =
                        multTables_[tableIdx][pix | (coeff << 8)];
                }
            }
        }
        const auto lanesSpan = [&](std::array<std::uint32_t, 64>& arr) {
            return std::span<std::uint32_t>(arr.data(), lanes);
        };
        const auto constSpan = [&](const std::array<std::uint32_t, 64>& arr) {
            return std::span<const std::uint32_t>(arr.data(), lanes);
        };
        batchAdd16(adderSims[0], constSpan(products[0]), constSpan(products[1]), lanesSpan(l1a));
        batchAdd16(adderSims[1], constSpan(products[2]), constSpan(products[3]), lanesSpan(l1b));
        batchAdd16(adderSims[2], constSpan(products[4]), constSpan(products[5]), lanesSpan(l1c));
        batchAdd16(adderSims[3], constSpan(products[6]), constSpan(products[7]), lanesSpan(l1d));
        batchAdd16(adderSims[4], constSpan(l1a), constSpan(l1b), lanesSpan(l2a));
        batchAdd16(adderSims[5], constSpan(l1c), constSpan(l1d), lanesSpan(l2b));
        batchAdd16(adderSims[6], constSpan(l2a), constSpan(l2b), lanesSpan(l3));
        batchAdd16(adderSims[7], constSpan(l3), constSpan(products[8]), lanesSpan(sum));

        for (std::size_t lane = 0; lane < lanes; ++lane) {
            const std::size_t pixel = base + lane;
            const int x = static_cast<int>(pixel % static_cast<std::size_t>(input.width()));
            const int y = static_cast<int>(pixel / static_cast<std::size_t>(input.width()));
            const std::uint32_t rounded = std::min<std::uint32_t>(255u, sum[lane] >> 4);
            output.set(x, y, static_cast<std::uint8_t>(rounded));
        }
    }
    return output;
}

img::Image GaussianAccelerator::filterExact(const img::Image& input) const {
    const std::array<int, 9>& weights = kernelWeights();
    img::Image output(input.width(), input.height());
    for (int y = 0; y < input.height(); ++y) {
        for (int x = 0; x < input.width(); ++x) {
            std::uint32_t acc = 0;
            int slot = 0;
            for (int dy = -1; dy <= 1; ++dy)
                for (int dx = -1; dx <= 1; ++dx, ++slot)
                    acc += static_cast<std::uint32_t>(input.atClamped(x + dx, y + dy)) *
                           static_cast<std::uint32_t>(weights[static_cast<std::size_t>(slot)]);
            output.set(x, y, static_cast<std::uint8_t>(std::min<std::uint32_t>(255u, acc >> 4)));
        }
    }
    return output;
}

double GaussianAccelerator::quality(const AcceleratorConfig& config,
                                    const std::vector<img::Image>& scenes) const {
    if (scenes.empty()) throw std::invalid_argument("quality: no scenes");
    double acc = 0.0;
    for (const img::Image& scene : scenes)
        acc += img::ssim(filterExact(scene), filter(scene, config));
    return acc / static_cast<double>(scenes.size());
}

AcceleratorCost GaussianAccelerator::cost(const AcceleratorConfig& config) const {
    AcceleratorCost cost;
    double maxMultLatency = 0.0;
    for (int slot = 0; slot < 9; ++slot) {
        const Component& c =
            multipliers_[static_cast<std::size_t>(config.multiplier[static_cast<std::size_t>(slot)])];
        cost.lutCount += c.fpga.lutCount;
        cost.powerMw += c.fpga.powerMw;
        maxMultLatency = std::max(maxMultLatency, c.fpga.latencyNs);
        cost.synthSeconds += 0.25 * c.fpga.synthSeconds;
    }
    // Adder-tree critical path: the slowest adder of each level in series.
    static constexpr std::array<int, 8> kLevel = {1, 1, 1, 1, 2, 2, 3, 4};
    std::array<double, 5> levelWorst{};
    for (int node = 0; node < 8; ++node) {
        const Component& c =
            adders_[static_cast<std::size_t>(config.adder[static_cast<std::size_t>(node)])];
        cost.lutCount += c.fpga.lutCount;
        cost.powerMw += c.fpga.powerMw;
        cost.synthSeconds += 0.25 * c.fpga.synthSeconds;
        const auto level = static_cast<std::size_t>(kLevel[static_cast<std::size_t>(node)]);
        levelWorst[level] = std::max(levelWorst[level], c.fpga.latencyNs);
    }
    cost.latencyNs = maxMultLatency;
    for (int level = 1; level <= 4; ++level)
        cost.latencyNs += levelWorst[static_cast<std::size_t>(level)];

    // Line-buffer / control glue and P&R variance.
    cost.lutCount += 24.0;
    cost.powerMw += 0.12;
    cost.synthSeconds += 90.0;
    util::Rng jitter(config.hash() ^ 0xACCE1ull);
    cost.lutCount *= 1.0 + jitter.uniformReal(-0.02, 0.02);
    cost.powerMw *= 1.0 + jitter.uniformReal(-0.03, 0.03);
    cost.latencyNs *= 1.0 + jitter.uniformReal(-0.03, 0.03);
    return cost;
}

}  // namespace axf::autoax
