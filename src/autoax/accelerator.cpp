#include "src/autoax/accelerator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string_view>

#include "src/circuit/batch_sim.hpp"
#include "src/util/rng.hpp"
#include "src/util/thread_pool.hpp"

namespace axf::autoax {

using circuit::BatchSimulator;
using circuit::CompiledNetlist;
using Word = CompiledNetlist::Word;

namespace {

/// Pixel-loop tile and buffer sizing: the widest block any bound program
/// can choose.  `batchAdd16Wide` re-tiles internally to each simulator's
/// own width, so the lane arrays stay width-agnostic.
constexpr std::size_t kMaxWords = BatchSimulator::kMaxWordsPerBlock;
constexpr std::size_t kMaxLanes = BatchSimulator::kMaxLanesPerBlock;

}  // namespace

const std::array<int, 9>& GaussianAccelerator::kernelWeights() {
    static const std::array<int, 9> kWeights = {1, 2, 1, 2, 4, 2, 1, 2, 1};
    return kWeights;
}

GaussianAccelerator::GaussianAccelerator(std::vector<Component> multiplierMenu,
                                         std::vector<Component> adderMenu,
                                         cache::CharacterizationCache* cache)
    : multipliers_(std::move(multiplierMenu)), adders_(std::move(adderMenu)) {
    if (multipliers_.empty() || adders_.empty())
        throw std::invalid_argument("GaussianAccelerator: empty component menu");
    for (const Component& c : multipliers_)
        if (c.signature.op != circuit::ArithOp::Multiplier || c.signature.widthA != 8)
            throw std::invalid_argument("GaussianAccelerator: multiplier menu needs 8x8 mults");
    for (const Component& c : adders_)
        if (c.signature.op != circuit::ArithOp::Adder || c.signature.widthA != 16)
            throw std::invalid_argument("GaussianAccelerator: adder menu needs 16-bit adders");
    space_.groups = {
        {"multiplier", kMultiplierSlots, static_cast<int>(multipliers_.size())},
        {"adder", kAdderSlots, static_cast<int>(adders_.size())},
    };

    // Characterize the menus up front: exhaustive multiplier tables and
    // compiled adder programs, each entry an independent task.
    multTables_.resize(multipliers_.size());
    util::ThreadPool::global().parallelFor(multipliers_.size(), [&](std::size_t i) {
        multTables_[i] = buildTable(multipliers_[i], cache);
    });
    adderCompiled_.resize(adders_.size());
    util::ThreadPool::global().parallelFor(adders_.size(), [&](std::size_t i) {
        adderCompiled_[i] = CompiledNetlist::compile(adders_[i].netlist);
    });
}

std::vector<std::uint16_t> GaussianAccelerator::buildTable(const Component& component,
                                                           cache::CharacterizationCache* cache) {
    // Exhaustive 8x8 behavioural table swept at the compiled program's
    // chosen block width; the result is a pure function of the netlist, so
    // it is content-addressed in the characterization cache (little-endian
    // u16 blob, 128 KiB).
    constexpr std::string_view kTableTag = "multtable16.v1";
    const cache::CacheKey key = cache != nullptr
                                    ? cache::CharacterizationCache::blobKey(
                                          component.netlist.structuralHash(), kTableTag)
                                    : cache::CacheKey{};
    if (cache != nullptr) {
        if (const auto bytes = cache->findBytes(key); bytes && bytes->size() == 2u << 16) {
            std::vector<std::uint16_t> table(1u << 16);
            for (std::size_t i = 0; i < table.size(); ++i)
                table[i] = static_cast<std::uint16_t>((*bytes)[2 * i] |
                                                      ((*bytes)[2 * i + 1] << 8));
            return table;
        }
    }
    std::vector<std::uint16_t> table(1u << 16);
    const CompiledNetlist compiled = CompiledNetlist::compile(component.netlist);
    BatchSimulator sim(compiled);
    const std::size_t words = sim.blockWords();
    const std::size_t blockLanes = sim.blockLanes();
    std::vector<Word> in(16 * words), out(compiled.outputCount() * words);
    for (std::uint64_t base = 0; base < (1u << 16); base += blockLanes) {
        circuit::fillExhaustiveBlock(in, 16, base, words);
        sim.evaluate(in, out);
        for (std::size_t lane = 0; lane < blockLanes; ++lane) {
            std::uint32_t value = 0;
            for (std::size_t bit = 0; bit < out.size() / words && bit < 16; ++bit)
                value |= static_cast<std::uint32_t>((out[bit * words + lane / 64] >>
                                                     (lane % 64)) &
                                                    1u)
                         << bit;
            table[base + lane] = static_cast<std::uint16_t>(value);
        }
    }
    if (cache != nullptr) {
        std::vector<std::uint8_t> bytes(2 * table.size());
        for (std::size_t i = 0; i < table.size(); ++i) {
            bytes[2 * i] = static_cast<std::uint8_t>(table[i] & 0xFF);
            bytes[2 * i + 1] = static_cast<std::uint8_t>(table[i] >> 8);
        }
        cache->putBytes(key, std::move(bytes));
    }
    return table;
}

/// Per-thread evaluation scratch: one rebindable simulator workspace per
/// adder-tree node plus the shared input/output word blocks.  Rebinding to
/// the node's program is free when consecutive configs agree on it, so a
/// workspace held across a batch amortizes to zero setup.
struct GaussianAccelerator::WorkspaceImpl : AcceleratorModel::Workspace {
    std::vector<BatchSimulator> sims;  ///< one per adder-tree node, lazily built
    std::vector<Word> inWords;
    std::vector<Word> outWords;
};

std::unique_ptr<AcceleratorModel::Workspace> GaussianAccelerator::makeWorkspace() const {
    auto ws = std::make_unique<WorkspaceImpl>();
    ws->inWords.resize(32 * kMaxWords);
    return ws;
}

img::Image GaussianAccelerator::filter(const img::Image& input, const AcceleratorConfig& config,
                                       Workspace& workspace) const {
    space_.validate(config);
    auto& ws = dynamic_cast<WorkspaceImpl&>(workspace);

    // Bind every adder-tree node's program into the reusable workspace;
    // every buffer the pixel loop touches lives in `ws` or on the stack —
    // the loop itself performs zero heap allocations once warmed up.
    std::size_t maxOutputs = 0;
    for (int node = 0; node < kAdderSlots; ++node) {
        const auto& compiled = adderCompiled_[static_cast<std::size_t>(
            config.choice[adderSlot(node)])];
        maxOutputs = std::max(maxOutputs, compiled.outputCount());
        if (ws.sims.size() <= static_cast<std::size_t>(node))
            ws.sims.emplace_back(compiled);
        else
            ws.sims[static_cast<std::size_t>(node)].rebind(compiled);
    }
    if (ws.outWords.size() < maxOutputs * kMaxWords) ws.outWords.resize(maxOutputs * kMaxWords);

    const std::array<int, 9>& weights = kernelWeights();
    img::Image output(input.width(), input.height());
    const std::size_t total = input.pixelCount();

    std::array<std::array<std::uint32_t, kMaxLanes>, 9> products{};
    std::array<std::uint32_t, kMaxLanes> l1a{}, l1b{}, l1c{}, l1d{}, l2a{}, l2b{}, l3{}, sum{};

    for (std::size_t base = 0; base < total; base += kMaxLanes) {
        const std::size_t lanes = std::min<std::size_t>(kMaxLanes, total - base);
        for (std::size_t lane = 0; lane < lanes; ++lane) {
            const std::size_t pixel = base + lane;
            const int x = static_cast<int>(pixel % static_cast<std::size_t>(input.width()));
            const int y = static_cast<int>(pixel / static_cast<std::size_t>(input.width()));
            int slot = 0;
            for (int dy = -1; dy <= 1; ++dy) {
                for (int dx = -1; dx <= 1; ++dx, ++slot) {
                    const std::uint32_t pix = input.atClamped(x + dx, y + dy);
                    const std::uint32_t coeff = static_cast<std::uint32_t>(
                        weights[static_cast<std::size_t>(slot)]);
                    const std::size_t tableIdx = static_cast<std::size_t>(
                        config.choice[multiplierSlot(slot)]);
                    products[static_cast<std::size_t>(slot)][lane] =
                        multTables_[tableIdx][pix | (coeff << 8)];
                }
            }
        }
        const auto add = [&](int node, const std::array<std::uint32_t, kMaxLanes>& a,
                             const std::array<std::uint32_t, kMaxLanes>& b,
                             std::array<std::uint32_t, kMaxLanes>& out) {
            BatchSimulator& sim = ws.sims[static_cast<std::size_t>(node)];
            batchAdd16Wide(sim, a.data(), b.data(), out.data(), lanes, ws.inWords,
                           ws.outWords);
        };
        add(0, products[0], products[1], l1a);
        add(1, products[2], products[3], l1b);
        add(2, products[4], products[5], l1c);
        add(3, products[6], products[7], l1d);
        add(4, l1a, l1b, l2a);
        add(5, l1c, l1d, l2b);
        add(6, l2a, l2b, l3);
        add(7, l3, products[8], sum);

        for (std::size_t lane = 0; lane < lanes; ++lane) {
            const std::size_t pixel = base + lane;
            const int x = static_cast<int>(pixel % static_cast<std::size_t>(input.width()));
            const int y = static_cast<int>(pixel / static_cast<std::size_t>(input.width()));
            const std::uint32_t rounded = std::min<std::uint32_t>(255u, sum[lane] >> 4);
            output.set(x, y, static_cast<std::uint8_t>(rounded));
        }
    }
    return output;
}

img::Image GaussianAccelerator::filterExact(const img::Image& input) const {
    const std::array<int, 9>& weights = kernelWeights();
    img::Image output(input.width(), input.height());
    for (int y = 0; y < input.height(); ++y) {
        for (int x = 0; x < input.width(); ++x) {
            std::uint32_t acc = 0;
            int slot = 0;
            for (int dy = -1; dy <= 1; ++dy)
                for (int dx = -1; dx <= 1; ++dx, ++slot)
                    acc += static_cast<std::uint32_t>(input.atClamped(x + dx, y + dy)) *
                           static_cast<std::uint32_t>(weights[static_cast<std::size_t>(slot)]);
            output.set(x, y, static_cast<std::uint8_t>(std::min<std::uint32_t>(255u, acc >> 4)));
        }
    }
    return output;
}

AcceleratorCost GaussianAccelerator::cost(const AcceleratorConfig& config) const {
    space_.validate(config);
    AcceleratorCost cost;
    double maxMultLatency = 0.0;
    for (int slot = 0; slot < kMultiplierSlots; ++slot) {
        const Component& c =
            multipliers_[static_cast<std::size_t>(config.choice[multiplierSlot(slot)])];
        cost.lutCount += c.fpga.lutCount;
        cost.powerMw += c.fpga.powerMw;
        maxMultLatency = std::max(maxMultLatency, c.fpga.latencyNs);
        cost.synthSeconds += 0.25 * c.fpga.synthSeconds;
    }
    // Adder-tree critical path: the slowest adder of each level in series.
    static constexpr std::array<int, 8> kLevel = {1, 1, 1, 1, 2, 2, 3, 4};
    std::array<double, 5> levelWorst{};
    for (int node = 0; node < kAdderSlots; ++node) {
        const Component& c = adders_[static_cast<std::size_t>(config.choice[adderSlot(node)])];
        cost.lutCount += c.fpga.lutCount;
        cost.powerMw += c.fpga.powerMw;
        cost.synthSeconds += 0.25 * c.fpga.synthSeconds;
        const auto level = static_cast<std::size_t>(kLevel[static_cast<std::size_t>(node)]);
        levelWorst[level] = std::max(levelWorst[level], c.fpga.latencyNs);
    }
    cost.latencyNs = maxMultLatency;
    for (int level = 1; level <= 4; ++level)
        cost.latencyNs += levelWorst[static_cast<std::size_t>(level)];

    // Line-buffer / control glue and P&R variance.
    cost.lutCount += 24.0;
    cost.powerMw += 0.12;
    cost.synthSeconds += 90.0;
    util::Rng jitter(config.hash() ^ 0xACCE1ull);
    cost.lutCount *= 1.0 + jitter.uniformReal(-0.02, 0.02);
    cost.powerMw *= 1.0 + jitter.uniformReal(-0.03, 0.03);
    cost.latencyNs *= 1.0 + jitter.uniformReal(-0.03, 0.03);
    return cost;
}

std::vector<double> GaussianAccelerator::features(const AcceleratorConfig& config) const {
    space_.validate(config);
    const std::array<int, 9>& weights = kernelWeights();

    double multMedSum = 0, multMedMax = 0, multWceSum = 0, multLut = 0, multPow = 0,
           multLatMax = 0, exactMults = 0;
    for (int slot = 0; slot < kMultiplierSlots; ++slot) {
        const Component& c =
            multipliers_[static_cast<std::size_t>(config.choice[multiplierSlot(slot)])];
        const double w = static_cast<double>(weights[static_cast<std::size_t>(slot)]) / 16.0;
        multMedSum += c.error.med * w;
        multMedMax = std::max(multMedMax, c.error.med);
        multWceSum += c.error.worstCaseError * w;
        multLut += c.fpga.lutCount;
        multPow += c.fpga.powerMw;
        multLatMax = std::max(multLatMax, c.fpga.latencyNs);
        // Feature semantics: "component showed no error" — 16-bit adder
        // menus carry sampled reports, for which strict `isExact` can
        // never hold, so the estimator feature uses the observed predicate.
        if (c.error.observedExact()) exactMults += 1.0;
    }
    double addMedSum = 0, addMedMax = 0, addWceSum = 0, addLut = 0, addPow = 0, addLatSum = 0,
           exactAdders = 0;
    static constexpr std::array<double, 8> kLevelWeight = {1.0, 1.0, 1.0, 1.0, 0.5, 0.5, 0.25, 0.25};
    for (int node = 0; node < kAdderSlots; ++node) {
        const Component& c = adders_[static_cast<std::size_t>(config.choice[adderSlot(node)])];
        const double w = kLevelWeight[static_cast<std::size_t>(node)];
        addMedSum += c.error.med * w;
        addMedMax = std::max(addMedMax, c.error.med);
        addWceSum += c.error.worstCaseError * w;
        addLut += c.fpga.lutCount;
        addPow += c.fpga.powerMw;
        addLatSum += c.fpga.latencyNs;
        if (c.error.observedExact()) exactAdders += 1.0;
    }
    return {multMedSum, multMedMax, std::log1p(multWceSum), multLut, multPow, multLatMax,
            exactMults, addMedSum,  addMedMax, std::log1p(addWceSum), addLut, addPow,
            addLatSum,  exactAdders};
}

}  // namespace axf::autoax
