#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/autoax/model.hpp"
#include "src/circuit/batch_sim.hpp"

namespace axf::autoax {

/// Sobel edge-detection accelerator — the second application scenario of
/// the methodology.  Gradient magnitude `min(255, (|gx| + |gy|) / 4)`
/// where the row/column 1-2-1 accumulations stay exact (Sobel's x2 weights
/// are shifts, so adders dominate the datapath) and the three wide
/// additions run through approximate 16-bit FPGA-AC adders from the
/// library:
///
///   slot 0  gx = colsum(x+1) - colsum(x-1)   (two's-complement add)
///   slot 1  gy = rowsum(y+1) - rowsum(y-1)   (two's-complement add)
///   slot 2  |gx| + |gy|                       (magnitude accumulation)
///
/// Each slot independently picks one entry of a 16-bit adder menu, giving
/// a |menu|^3 design space explored by the same `AutoAxFpgaFlow` /
/// `EvalEngine` machinery as the Gaussian case study.
class SobelAccelerator : public AcceleratorModel {
public:
    static constexpr int kAdderSlots = 3;

    explicit SobelAccelerator(std::vector<Component> adderMenu);

    const std::vector<Component>& adderMenu() const { return adders_; }

    // --- AcceleratorModel --------------------------------------------------
    std::string name() const override { return "sobel3x3"; }
    const ConfigSpace& configSpace() const override { return space_; }
    const std::vector<Component>* componentMenu(std::size_t group) const override {
        return group == 0 ? &adders_ : nullptr;
    }
    using AcceleratorModel::filter;
    img::Image filter(const img::Image& input, const AcceleratorConfig& config,
                      Workspace& workspace) const override;
    img::Image filterExact(const img::Image& input) const override;
    AcceleratorCost cost(const AcceleratorConfig& config) const override;
    std::vector<double> features(const AcceleratorConfig& config) const override;
    std::unique_ptr<Workspace> makeWorkspace() const override;

private:
    struct WorkspaceImpl;

    std::vector<Component> adders_;
    ConfigSpace space_;
    std::vector<circuit::CompiledNetlist> adderCompiled_;
};

}  // namespace axf::autoax
