#pragma once

#include <vector>

#include "src/autoax/accelerator.hpp"
#include "src/ml/regressor.hpp"

namespace axf::autoax {

/// One really-evaluated accelerator configuration (behavioural SSIM plus
/// composed hardware cost) — the unit Fig. 9 plots.
struct EvaluatedConfig {
    AcceleratorConfig config;
    double ssim = 0.0;
    AcceleratorCost cost;
};

/// Feature vector of a configuration for the AutoAx estimators: error-mass
/// and hardware aggregates of the chosen components.
std::vector<double> configFeatures(const GaussianAccelerator& accel,
                                   const AcceleratorConfig& config);

/// QoR and per-parameter hardware-cost estimators trained on a random
/// sample of really-evaluated configurations (the AutoAx recipe).
class AcceleratorEstimators {
public:
    static AcceleratorEstimators train(const GaussianAccelerator& accel,
                                       const std::vector<EvaluatedConfig>& samples);

    double estimateSsim(const GaussianAccelerator& accel, const AcceleratorConfig& c) const;
    double estimateCost(const GaussianAccelerator& accel, const AcceleratorConfig& c,
                        core::FpgaParam param) const;

private:
    ml::RegressorPtr qor_;
    ml::RegressorPtr area_;
    ml::RegressorPtr power_;
    ml::RegressorPtr latency_;
};

/// AutoAx-FPGA: the AutoAx design-space exploration retargeted at FPGA
/// parameters — random training sample, estimator construction, archive
/// hill-climbing per (FPGA parameter, SSIM) scenario, and re-evaluation of
/// the discovered pseudo-Pareto configurations.
class AutoAxFpgaFlow {
public:
    struct Config {
        int trainConfigs = 220;      ///< random configs for estimator training
        int hillIterations = 4000;   ///< estimator-guided search moves
        int archiveSeed = 24;        ///< initial random archive size
        std::size_t archiveCap = 400;
        int imageSize = 96;
        int sceneCount = 2;
        std::uint64_t seed = 0x40A7;
    };

    struct ScenarioResult {
        core::FpgaParam param = core::FpgaParam::Latency;
        std::vector<EvaluatedConfig> autoax;  ///< re-evaluated archive front
        std::vector<EvaluatedConfig> random;  ///< equal-budget random baseline
        std::size_t estimatorQueries = 0;
        std::size_t realEvaluations = 0;
    };

    struct Result {
        double designSpaceSize = 0.0;
        std::vector<EvaluatedConfig> trainingSet;
        std::vector<ScenarioResult> scenarios;  ///< latency-, power-, area-SSIM
    };

    explicit AutoAxFpgaFlow(Config config) : config_(config) {}

    Result run(const GaussianAccelerator& accel) const;

private:
    Config config_;
};

/// Pareto front of evaluated configs (maximize SSIM, minimize the chosen
/// FPGA parameter); returns indices into `points`.
std::vector<std::size_t> qualityCostFront(const std::vector<EvaluatedConfig>& points,
                                          core::FpgaParam param);

double costParamOf(const AcceleratorCost& cost, core::FpgaParam param);

}  // namespace axf::autoax
