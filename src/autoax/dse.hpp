#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/autoax/eval_engine.hpp"
#include "src/autoax/model.hpp"
#include "src/fault/fault.hpp"
#include "src/ml/regressor.hpp"
#include "src/search/island_search.hpp"

namespace axf::util {
class ThreadPool;
}

namespace axf::cache {
class CharacterizationCache;
}

namespace axf::autoax {

/// QoR and per-parameter hardware-cost estimators trained on a random
/// sample of really-evaluated configurations (the AutoAx recipe).  Feature
/// extraction is delegated to the model (`AcceleratorModel::features`), so
/// the estimators work for any workload.
class AcceleratorEstimators {
public:
    static AcceleratorEstimators train(const AcceleratorModel& model,
                                       const std::vector<EvaluatedConfig>& samples);

    double estimateSsim(const AcceleratorModel& model, const AcceleratorConfig& c) const;
    double estimateCost(const AcceleratorModel& model, const AcceleratorConfig& c,
                        core::FpgaParam param) const;

private:
    ml::RegressorPtr qor_;
    ml::RegressorPtr area_;
    ml::RegressorPtr power_;
    ml::RegressorPtr latency_;
};

/// AutoAx-FPGA: the AutoAx design-space exploration retargeted at FPGA
/// parameters — random training sample, estimator construction, archive
/// hill-climbing per (FPGA parameter, SSIM) scenario, and re-evaluation of
/// the discovered pseudo-Pareto configurations.  Runs polymorphically over
/// any `AcceleratorModel`; every real evaluation is routed through one
/// batched `EvalEngine` (scenes and exact references built once, results
/// memoized by config hash, thread-parallel yet bit-identical to serial).
class AutoAxFpgaFlow {
public:
    struct Config {
        int trainConfigs = 220;      ///< random configs for estimator training
        int hillIterations = 4000;   ///< estimator-guided search moves
        int archiveSeed = 24;        ///< initial random archive size
        std::size_t archiveCap = 400;
        int imageSize = 96;
        int sceneCount = 2;
        std::uint64_t seed = 0x40A7;
        /// Worker cap for the evaluation engine AND the island search
        /// (0 = whole pool, 1 = serial); results are identical either way.
        std::size_t threads = 0;
        /// Thread pool override (nullptr = the process-global pool).
        util::ThreadPool* pool = nullptr;

        // --- island-model search (src/search) --------------------------
        /// Search islands per scenario.  1 reproduces the legacy serial
        /// archive hill-climb bit-for-bit (with searchBatch = 1 and the
        /// HillClimb strategy); N > 1 splits hillIterations across N
        /// independently seeded islands that exchange migrants on a ring.
        int islands = 1;
        /// Speculative candidates drafted per island generation (one
        /// estimator batch per generation).  1 = legacy move-by-move.
        int searchBatch = 1;
        /// Generations between ring migrations (0 = never migrate).
        int migrationInterval = 16;
        /// Archive entries offered per migration (0 = none).
        int migrants = 4;
        /// Island strategy; `islandStrategies` (cycled) overrides per
        /// island, e.g. {HillClimb, Anneal, Genetic} for a mixed fleet.
        search::Strategy strategy = search::Strategy::HillClimb;
        std::vector<search::Strategy> islandStrategies;
        /// Epsilon-dominance coarsening of the search archives (0 = the
        /// exact legacy dominance).
        double searchEpsilon = 0.0;

        // --- resilience objective (src/fault) --------------------------
        /// Adds mean error-under-fault as a third archive objective
        /// (quality x cost x resilience fronts).  Each menu component is
        /// characterized once by a stuck-at campaign — cached when
        /// `cache` is set — and a configuration scores the slot-mean of
        /// its chosen components' fault MEDs.
        bool resilienceObjective = false;
        fault::CampaignConfig faultCampaign;
        cache::CharacterizationCache* cache = nullptr;

        // --- durability & cancellation (src/durable) -------------------
        /// Directory for scenario search checkpoints (empty = none).
        /// Each scenario search snapshots to `scenario_<param>.axfk` at
        /// epoch boundaries; a rerun of the flow resumes whatever is on
        /// disk (fast-forwarding completed scenarios — their final
        /// snapshot is always written) and produces a Result bit-identical
        /// to an uninterrupted run.  The deterministic phases (training,
        /// estimators, resilience table) re-run and land in the same
        /// state; with a warm `cache` they are cheap.
        std::string checkpointDirectory;
        int checkpointInterval = 1;  ///< epochs between scenario snapshots
        /// Cooperative cancellation: checked at search epoch boundaries
        /// (final checkpoint flushed first) and inside the evaluation /
        /// characterization fan-outs.  A cancelled run throws
        /// util::OperationCancelled.
        const util::CancellationToken* cancel = nullptr;
        /// Observability hook: (scenario param, generations done) after
        /// every search epoch boundary.  Tests throw from here to
        /// simulate a kill; tools pulse watchdogs / throttle epochs.
        std::function<void(core::FpgaParam, int)> onSearchEpoch;
    };

    struct ScenarioResult {
        core::FpgaParam param = core::FpgaParam::Latency;
        std::vector<EvaluatedConfig> autoax;  ///< re-evaluated archive front
        std::vector<EvaluatedConfig> random;  ///< equal-budget random baseline
        std::size_t estimatorQueries = 0;
        /// Configurations actually simulated for this scenario's archive
        /// (configs already measured — training corners, reused training
        /// entries, earlier scenarios — are deduplicated by
        /// `AcceleratorConfig::hash` and not paid for again).
        std::size_t realEvaluations = 0;
    };

    struct Result {
        double designSpaceSize = 0.0;
        std::vector<EvaluatedConfig> trainingSet;
        std::vector<ScenarioResult> scenarios;  ///< latency-, power-, area-SSIM
        /// Total configurations simulated across training, scenario
        /// re-evaluation and the random baselines (memo hits excluded).
        std::size_t totalRealEvaluations = 0;
    };

    explicit AutoAxFpgaFlow(Config config) : config_(config) {}

    Result run(const AcceleratorModel& model) const;

private:
    Config config_;
};

/// Pareto front of evaluated configs (maximize SSIM, minimize the chosen
/// FPGA parameter); returns indices into `points`.
std::vector<std::size_t> qualityCostFront(const std::vector<EvaluatedConfig>& points,
                                          core::FpgaParam param);

double costParamOf(const AcceleratorCost& cost, core::FpgaParam param);

}  // namespace axf::autoax
