#include "src/autoax/search_problem.hpp"

namespace axf::autoax {

AcceleratorConfig AcceleratorSearchProblem::mutate(const AcceleratorConfig& config,
                                                   util::Rng& rng) const {
    const ConfigSpace& space = model_.configSpace();
    AcceleratorConfig c = config;
    const int moves = 1 + static_cast<int>(rng.index(2));
    for (int i = 0; i < moves; ++i) {
        const std::size_t slot = rng.index(c.choice.size());
        c.choice[slot] =
            static_cast<int>(rng.index(static_cast<std::size_t>(space.menuSizeOf(slot))));
    }
    return c;
}

AcceleratorConfig AcceleratorSearchProblem::crossover(const AcceleratorConfig& a,
                                                      const AcceleratorConfig& b,
                                                      util::Rng& rng) const {
    AcceleratorConfig child = a;
    for (std::size_t slot = 0; slot < child.choice.size(); ++slot)
        if (rng.bernoulli(0.5)) child.choice[slot] = b.choice[slot];
    return child;
}

double AcceleratorSearchProblem::resilienceOf(const AcceleratorConfig& config) const {
    if (resilience_.empty() || config.choice.empty()) return 0.0;
    double sum = 0.0;
    for (std::size_t slot = 0; slot < config.choice.size(); ++slot)
        sum += resilience_[slot][static_cast<std::size_t>(config.choice[slot])];
    return sum / static_cast<double>(config.choice.size());
}

void AcceleratorSearchProblem::evaluate(std::span<const AcceleratorConfig> batch,
                                        std::span<search::Objectives> out) const {
    for (std::size_t i = 0; i < batch.size(); ++i)
        out[i] = objectives(estimators_.estimateSsim(model_, batch[i]),
                            estimators_.estimateCost(model_, batch[i], param_), batch[i]);
}

}  // namespace axf::autoax
