#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "src/autoax/dse.hpp"
#include "src/autoax/model.hpp"
#include "src/core/flow.hpp"
#include "src/search/island_search.hpp"
#include "src/util/bytes.hpp"

namespace axf::autoax {

/// `search::Problem` adapter for one AutoAx scenario: genomes are
/// `AcceleratorConfig`s, objectives are the trained estimators' view of
/// the scenario — `{-estimated SSIM, estimated FPGA-parameter cost}`,
/// both minimized (the SSIM negation is exact in IEEE doubles, so the
/// generalized archive dominance is bit-equivalent to the legacy
/// maximize-SSIM/minimize-cost one).  An optional third objective adds
/// per-configuration fault resilience (`setResilienceObjective`).
/// Estimator prediction is const, RNG-free and thread-safe, so islands
/// may evaluate concurrently.
class AcceleratorSearchProblem {
public:
    using Genome = AcceleratorConfig;

    AcceleratorSearchProblem(const AcceleratorModel& model,
                             const AcceleratorEstimators& estimators, core::FpgaParam param)
        : model_(model), estimators_(estimators), param_(param) {}

    std::size_t objectiveCount() const { return resilience_.empty() ? 2 : 3; }

    /// Enables the resilience objective: `table[slot][choice]` is the mean
    /// error-under-fault (MED) of that slot's menu entry, and a
    /// configuration scores the mean over its slots (minimized).  The
    /// additive composition mirrors the hardware cost model: component
    /// campaigns are cheap and content-addressable where whole-accelerator
    /// campaigns are neither.
    void setResilienceObjective(std::vector<std::vector<double>> table) {
        resilience_ = std::move(table);
    }

    /// Slot-mean fault MED of a configuration (0 when disabled).
    double resilienceOf(const AcceleratorConfig& config) const;

    AcceleratorConfig random(util::Rng& rng) const {
        return model_.configSpace().randomConfig(rng);
    }

    /// 1-2 uniformly chosen slots reassigned to uniformly chosen menu
    /// entries — the legacy DSE move, byte-for-byte.
    AcceleratorConfig mutate(const AcceleratorConfig& config, util::Rng& rng) const;

    /// Uniform slot-wise crossover (each slot drawn from either parent).
    AcceleratorConfig crossover(const AcceleratorConfig& a, const AcceleratorConfig& b,
                                util::Rng& rng) const;

    void evaluate(std::span<const AcceleratorConfig> batch,
                  std::span<search::Objectives> out) const;

    /// Checkpoint hooks (`search::CheckpointableProblem`): a configuration
    /// is exactly its per-slot choice vector.
    void serializeGenome(const AcceleratorConfig& config, util::ByteWriter& out) const {
        out.u32(static_cast<std::uint32_t>(config.choice.size()));
        for (int c : config.choice) out.u32(static_cast<std::uint32_t>(c));
    }

    std::optional<AcceleratorConfig> deserializeGenome(util::ByteReader& in) const {
        std::uint32_t slots = 0;
        if (!in.u32(slots) || slots > kMaxCheckpointSlots) return std::nullopt;
        AcceleratorConfig config;
        config.choice.reserve(slots);
        for (std::uint32_t s = 0; s < slots; ++s) {
            std::uint32_t choice = 0;
            if (!in.u32(choice)) return std::nullopt;
            config.choice.push_back(static_cast<int>(choice));
        }
        return config;
    }

    /// Objective encoding shared with pre-evaluated seed entries (the
    /// training sample enters the archives through this same mapping).
    static search::Objectives objectivesOf(double ssim, double cost) {
        return search::Objectives{-ssim, cost};
    }

    /// Instance encoding: `objectivesOf` plus the resilience objective
    /// when enabled.  Seed entries must use this overload so archive
    /// entries all carry the same objective count.
    search::Objectives objectives(double ssim, double cost,
                                  const AcceleratorConfig& config) const {
        if (resilience_.empty()) return objectivesOf(ssim, cost);
        return search::Objectives{-ssim, cost, resilienceOf(config)};
    }

private:
    /// Slot-count sanity bound for checkpoint decoding — far above any
    /// real accelerator, small enough to reject corrupt length fields.
    static constexpr std::uint32_t kMaxCheckpointSlots = 1u << 20;

    const AcceleratorModel& model_;
    const AcceleratorEstimators& estimators_;
    core::FpgaParam param_;
    std::vector<std::vector<double>> resilience_;  ///< [slot][choice] fault MED
};

}  // namespace axf::autoax
