#include "src/autoax/eval_engine.hpp"

#include <stdexcept>
#include <utility>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/util/thread_pool.hpp"

namespace axf::autoax {

namespace {

// Resolved once; recording afterwards is striped relaxed adds (or one
// branch with metrics disabled), so the hot evaluation path stays clean.
struct EvalMetrics {
    obs::Counter& requested = obs::Registry::global().counter("eval.configs_requested");
    obs::Counter& evaluated = obs::Registry::global().counter("eval.configs_evaluated");
    obs::Counter& memoHits = obs::Registry::global().counter("eval.memo_hits");
    obs::Histogram& batchSeconds = obs::Registry::global().histogram("eval.batch_seconds");
    obs::Histogram& sceneSeconds = obs::Registry::global().histogram("eval.scene_seconds");
};

EvalMetrics& evalMetrics() {
    static EvalMetrics* m = new EvalMetrics();
    return *m;
}

}  // namespace

/// Mutex-guarded free list of model workspaces.  Workers check one out per
/// work item; the list grows to the high-water concurrency and the scratch
/// inside (simulator workspaces, word buffers) is reused for the lifetime
/// of the engine.  Which worker gets which workspace never affects results
/// (workspaces carry no cross-call state visible in outputs), so handing
/// them out in contention order preserves determinism.
class EvalEngine::WorkspacePool {
public:
    explicit WorkspacePool(const AcceleratorModel& model) : model_(model) {}

    std::unique_ptr<AcceleratorModel::Workspace> acquire() {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!free_.empty()) {
                auto ws = std::move(free_.back());
                free_.pop_back();
                return ws;
            }
        }
        return model_.makeWorkspace();
    }

    void release(std::unique_ptr<AcceleratorModel::Workspace> ws) {
        std::lock_guard<std::mutex> lock(mutex_);
        free_.push_back(std::move(ws));
    }

private:
    const AcceleratorModel& model_;
    std::mutex mutex_;
    std::vector<std::unique_ptr<AcceleratorModel::Workspace>> free_;
};

EvalEngine::EvalEngine(const AcceleratorModel& model, std::vector<img::Image> scenes)
    : EvalEngine(model, std::move(scenes), Options{}) {}

EvalEngine::~EvalEngine() = default;

EvalEngine::EvalEngine(const AcceleratorModel& model, std::vector<img::Image> scenes,
                       Options options)
    : model_(model), scenes_(std::move(scenes)), options_(options),
      workspaces_(std::make_unique<WorkspacePool>(model)) {
    if (scenes_.empty()) throw std::invalid_argument("EvalEngine: no scenes");
    // The exact reference (and its SSIM window statistics) is a pure
    // function of the scene: compute both exactly once per engine.
    exact_.reserve(scenes_.size());
    ssimRefs_.reserve(scenes_.size());
    for (const img::Image& scene : scenes_) {
        exact_.push_back(model_.filterExact(scene));
        ssimRefs_.emplace_back(exact_.back());
    }
}

std::vector<EvaluatedConfig> EvalEngine::evaluateBatch(
    std::span<const AcceleratorConfig> configs) {
    obs::Span span("eval_batch");
    obs::ScopedTimer batchTimer(evalMetrics().batchSeconds);
    evalMetrics().requested.add(configs.size());
    // Collect the configs that still need simulation, in first-appearance
    // order (in-batch duplicates and memo hits are served from the memo).
    std::vector<const AcceleratorConfig*> fresh;
    std::vector<std::uint64_t> freshHashes;
    {
        std::unordered_map<std::uint64_t, std::size_t> inBatch;
        for (const AcceleratorConfig& c : configs) {
            const std::uint64_t h = c.hash();
            if (options_.memoize && memo_.contains(h)) continue;
            if (inBatch.emplace(h, fresh.size()).second) {
                fresh.push_back(&c);
                freshHashes.push_back(h);
            }
        }
    }

    // Served from the memo (or an in-batch duplicate): everything we were
    // asked for but do not have to simulate.
    evalMetrics().memoHits.add(configs.size() - fresh.size());
    evalMetrics().evaluated.add(fresh.size());

    // Fan the (config x scene) grid out over the pool.  One work item per
    // pair, indexed so item -> (config, scene) is a fixed function of the
    // batch alone; every result lands in its own slot, so no write order
    // dependence exists and the later scene-order reduction is serial.
    const std::size_t sceneCount = scenes_.size();
    std::vector<double> grid(fresh.size() * sceneCount, 0.0);
    util::ThreadPool& pool =
        options_.pool != nullptr ? *options_.pool : util::ThreadPool::global();
    pool.parallelFor(
        fresh.size() * sceneCount,
        [&](std::size_t item) {
            const std::size_t ci = item / sceneCount;
            const std::size_t si = item % sceneCount;
            obs::ScopedTimer sceneTimer(evalMetrics().sceneSeconds);
            std::unique_ptr<AcceleratorModel::Workspace> ws = workspaces_->acquire();
            const img::Image out = model_.filter(scenes_[si], *fresh[ci], *ws);
            grid[item] = ssimRefs_[si].compare(out);
            workspaces_->release(std::move(ws));
        },
        options_.threads, options_.cancel);

    // Serial, ordered merge: mean over scenes in scene order per config,
    // memo insert in batch order.
    std::unordered_map<std::uint64_t, EvaluatedConfig> batchOnly;  // non-memoized mode
    auto& table = options_.memoize ? memo_ : batchOnly;
    for (std::size_t ci = 0; ci < fresh.size(); ++ci) {
        EvaluatedConfig e;
        e.config = *fresh[ci];
        double acc = 0.0;
        for (std::size_t si = 0; si < sceneCount; ++si) acc += grid[ci * sceneCount + si];
        e.ssim = acc / static_cast<double>(sceneCount);
        e.cost = model_.cost(*fresh[ci]);
        table.emplace(freshHashes[ci], std::move(e));
    }
    fresh_ += fresh.size();

    std::vector<EvaluatedConfig> results;
    results.reserve(configs.size());
    for (const AcceleratorConfig& c : configs) results.push_back(table.at(c.hash()));
    return results;
}

EvaluatedConfig EvalEngine::evaluate(const AcceleratorConfig& config) {
    return evaluateBatch({&config, 1}).front();
}

}  // namespace axf::autoax
