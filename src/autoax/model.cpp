#include "src/autoax/model.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "src/img/ssim.hpp"
#include "src/util/select.hpp"

namespace axf::autoax {

using circuit::BatchSimulator;
using circuit::CompiledNetlist;
using circuit::Simulator;
using Word = CompiledNetlist::Word;


std::vector<Component> componentsFromFlow(const core::FlowResult& result,
                                          core::FpgaParam param, std::size_t maxComponents) {
    const core::TargetOutcome* outcome = nullptr;
    for (const core::TargetOutcome& t : result.targets)
        if (t.param == param) outcome = &t;
    if (outcome == nullptr) throw std::invalid_argument("componentsFromFlow: param not in result");

    std::vector<Component> menu;
    for (std::size_t idx : outcome->finalParetoIndices) {
        const core::CharacterizedCircuit& cc = result.dataset.circuits()[idx];
        if (!cc.fpgaMeasured) continue;
        Component c;
        c.name = cc.circuit.name;
        c.signature = cc.circuit.signature;
        c.error = cc.circuit.error;
        c.fpga = cc.fpga;
        c.netlist = cc.circuit.netlist;
        menu.push_back(std::move(c));
    }
    std::sort(menu.begin(), menu.end(),
              [](const Component& a, const Component& b) { return a.error.med < b.error.med; });
    // Uniform thinning over the error-sorted menu keeps the spread,
    // including the cheapest (highest-MED) extreme.
    util::thinUniform(menu, maxComponents);
    return menu;
}

std::uint64_t AcceleratorConfig::hash() const {
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](std::uint64_t v) {
        h ^= v + 1;
        h *= 1099511628211ull;
    };
    mix(static_cast<std::uint64_t>(choice.size()));
    for (int c : choice) mix(static_cast<std::uint64_t>(c));
    return h;
}

std::size_t ConfigSpace::slotCount() const {
    std::size_t n = 0;
    for (const SlotGroup& g : groups) n += static_cast<std::size_t>(g.slots);
    return n;
}

int ConfigSpace::menuSizeOf(std::size_t slot) const {
    for (const SlotGroup& g : groups) {
        if (slot < static_cast<std::size_t>(g.slots)) return g.menuSize;
        slot -= static_cast<std::size_t>(g.slots);
    }
    throw std::out_of_range("ConfigSpace::menuSizeOf: slot out of range");
}

double ConfigSpace::designSpaceSize() const {
    double size = 1.0;
    for (const SlotGroup& g : groups)
        size *= std::pow(static_cast<double>(g.menuSize), static_cast<double>(g.slots));
    return size;
}

AcceleratorConfig ConfigSpace::accurateCorner() const {
    AcceleratorConfig c;
    c.choice.assign(slotCount(), 0);
    return c;
}

AcceleratorConfig ConfigSpace::cheapCorner() const {
    AcceleratorConfig c;
    c.choice.reserve(slotCount());
    for (const SlotGroup& g : groups)
        c.choice.insert(c.choice.end(), static_cast<std::size_t>(g.slots), g.menuSize - 1);
    return c;
}

AcceleratorConfig ConfigSpace::randomConfig(util::Rng& rng) const {
    AcceleratorConfig c;
    c.choice.reserve(slotCount());
    for (const SlotGroup& g : groups)
        for (int s = 0; s < g.slots; ++s)
            c.choice.push_back(static_cast<int>(rng.index(static_cast<std::size_t>(g.menuSize))));
    return c;
}

void ConfigSpace::validate(const AcceleratorConfig& config) const {
    if (config.choice.size() != slotCount())
        throw std::out_of_range("AcceleratorConfig: slot count mismatch");
    std::size_t slot = 0;
    for (const SlotGroup& g : groups)
        for (int s = 0; s < g.slots; ++s, ++slot)
            if (config.choice[slot] < 0 || config.choice[slot] >= g.menuSize)
                throw std::out_of_range("AcceleratorConfig: " + g.name + " choice out of range");
}

img::Image AcceleratorModel::filter(const img::Image& input,
                                    const AcceleratorConfig& config) const {
    const std::unique_ptr<Workspace> workspace = makeWorkspace();
    return filter(input, config, *workspace);
}

double AcceleratorModel::quality(const AcceleratorConfig& config,
                                 const std::vector<img::Image>& scenes) const {
    if (scenes.empty()) throw std::invalid_argument("quality: no scenes");
    const std::unique_ptr<Workspace> workspace = makeWorkspace();
    double acc = 0.0;
    for (const img::Image& scene : scenes)
        acc += img::ssim(filterExact(scene), filter(scene, config, *workspace));
    return acc / static_cast<double>(scenes.size());
}

void batchAdd16(Simulator& sim, std::span<const std::uint32_t> a,
                std::span<const std::uint32_t> b, std::span<std::uint32_t> out,
                BatchAddScratch& scratch) {
    if (a.size() > 64 || b.size() != a.size() || out.size() != a.size())
        throw std::invalid_argument(
            "batchAdd16: operand/result spans must agree and hold at most 64 lanes");
    scratch.in.assign(32, 0);
    for (std::size_t lane = 0; lane < a.size(); ++lane) {
        for (int bit = 0; bit < 16; ++bit) {
            if ((a[lane] >> bit) & 1u) scratch.in[static_cast<std::size_t>(bit)] |= std::uint64_t{1} << lane;
            if ((b[lane] >> bit) & 1u)
                scratch.in[static_cast<std::size_t>(16 + bit)] |= std::uint64_t{1} << lane;
        }
    }
    scratch.out.resize(sim.netlist().outputCount());
    sim.evaluate(scratch.in, scratch.out);
    for (std::size_t lane = 0; lane < a.size(); ++lane) {
        std::uint32_t v = 0;
        for (std::size_t bit = 0; bit < scratch.out.size(); ++bit)
            v |= static_cast<std::uint32_t>((scratch.out[bit] >> lane) & 1u) << bit;
        out[lane] = v;
    }
}

void batchAdd16(Simulator& sim, std::span<const std::uint32_t> a,
                std::span<const std::uint32_t> b, std::span<std::uint32_t> out) {
    BatchAddScratch scratch;
    batchAdd16(sim, a, b, out, scratch);
}

void batchAdd16Wide(BatchSimulator& sim, const std::uint32_t* a, const std::uint32_t* b,
                    std::uint32_t* out, std::size_t lanes, std::span<Word> inWords,
                    std::span<Word> outWords) {
    // Loop over the simulator's own block width: callers may tile their
    // lane arrays at any granularity (typically kMaxLanesPerBlock), and
    // each bound program carries its own chosen width.  Pure integer
    // bit-sliced evaluation — results are independent of the tiling.
    const std::size_t words = sim.blockWords();
    const std::size_t blockLanes = sim.blockLanes();
    const std::size_t outputs = sim.compiled().outputCount();
    for (std::size_t blockBase = 0; blockBase < lanes; blockBase += blockLanes) {
        const std::size_t blockCount = std::min(blockLanes, lanes - blockBase);
        std::memset(inWords.data(), 0, 32 * words * sizeof(Word));
        for (std::size_t lane = 0; lane < blockCount; ++lane) {
            const Word laneBit = Word{1} << (lane % 64);
            const std::size_t w = lane / 64;
            // Operands truncate to the adder's 16-bit interface.  Inputs can
            // carry 17-bit values (a previous level's carry-out); without the
            // mask, bit 16 of `a` would alias operand B's LSB and bit 16 of
            // `b` would index past the input block.
            std::uint32_t va = a[blockBase + lane] & 0xFFFFu;
            while (va != 0) {
                const int bit = __builtin_ctz(va);
                inWords[static_cast<std::size_t>(bit) * words + w] |= laneBit;
                va &= va - 1;
            }
            std::uint32_t vb = b[blockBase + lane] & 0xFFFFu;
            while (vb != 0) {
                const int bit = __builtin_ctz(vb);
                inWords[static_cast<std::size_t>(16 + bit) * words + w] |= laneBit;
                vb &= vb - 1;
            }
        }
        sim.evaluate(inWords.subspan(0, 32 * words), outWords.subspan(0, outputs * words));
        std::uint32_t* const outBlock = out + blockBase;
        std::memset(outBlock, 0, blockCount * sizeof(std::uint32_t));
        for (std::size_t bit = 0; bit < outputs; ++bit) {
            const std::uint32_t weight = std::uint32_t{1} << bit;
            for (std::size_t w = 0; w * 64 < blockCount; ++w) {
                Word word = outWords[bit * words + w];
                const std::size_t laneBase = w * 64;
                while (word != 0) {
                    const int lane = __builtin_ctzll(word);
                    const std::size_t idx = laneBase + static_cast<std::size_t>(lane);
                    if (idx < blockCount) outBlock[idx] |= weight;
                    word &= word - 1;
                }
            }
        }
    }
}

}  // namespace axf::autoax
