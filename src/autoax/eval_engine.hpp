#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/autoax/model.hpp"
#include "src/img/image.hpp"
#include "src/img/ssim.hpp"

namespace axf::util {
class ThreadPool;
class CancellationToken;
}

namespace axf::autoax {

/// One really-evaluated accelerator configuration (behavioural SSIM plus
/// composed hardware cost) — the unit Fig. 9 plots.
struct EvaluatedConfig {
    AcceleratorConfig config;
    double ssim = 0.0;
    AcceleratorCost cost;
};

/// Batched, thread-parallel, memoizing evaluator of accelerator
/// configurations against a fixed scene set — the shared engine behind the
/// DSE training sample, the archive re-evaluation and the random baseline.
///
/// What it hoists out of the per-evaluation path:
///  - the exact reference image of every scene (computed once per engine,
///    not once per config x scene as the scalar path does);
///  - the reference half of the SSIM window statistics
///    (`img::SsimReference`, once per scene);
///  - one model workspace per worker (compiled-program simulator scratch
///    and word buffers survive across configs via `BatchSimulator::rebind`);
///  - repeat evaluations: results are memoized by `AcceleratorConfig::hash`,
///    so a config already measured (training set, earlier scenario) is
///    never simulated twice.  `freshEvaluations()` counts real work only.
///
/// Determinism: the (config x scene) grid is fanned out with one fixed
/// work item per pair and every per-config reduction (mean over scenes)
/// runs serially in scene order, so `evaluateBatch` is bit-identical to
/// the scalar `AcceleratorModel::quality` path at any thread count.
class EvalEngine {
public:
    struct Options {
        std::size_t threads = 0;        ///< cap on workers (0 = whole pool, 1 = serial)
        util::ThreadPool* pool = nullptr;  ///< nullptr = the process-global pool
        bool memoize = true;            ///< disable for throughput benchmarking
        /// Checked at (config x scene) work-item boundaries; a cancelled
        /// batch throws util::OperationCancelled and produces no results
        /// (the memo keeps completed configs for the retry).
        const util::CancellationToken* cancel = nullptr;
    };

    EvalEngine(const AcceleratorModel& model, std::vector<img::Image> scenes,
               Options options);
    EvalEngine(const AcceleratorModel& model, std::vector<img::Image> scenes);
    ~EvalEngine();

    const AcceleratorModel& model() const { return model_; }
    const std::vector<img::Image>& scenes() const { return scenes_; }
    /// Exact reference outputs, one per scene (shared across every config).
    const std::vector<img::Image>& exactReferences() const { return exact_; }

    /// Evaluates every config against the scene set.  Results arrive in
    /// input order; duplicates (within the batch or against the memo) are
    /// served from the memo without re-simulation.
    std::vector<EvaluatedConfig> evaluateBatch(std::span<const AcceleratorConfig> configs);

    /// Single-config convenience (still batched over scenes).
    EvaluatedConfig evaluate(const AcceleratorConfig& config);

    /// Number of configurations actually simulated so far (memo hits and
    /// in-batch duplicates excluded).
    std::size_t freshEvaluations() const { return fresh_; }

    /// True when the config is already in the memo (evaluating it again
    /// would cost nothing fresh).
    bool isMemoized(const AcceleratorConfig& config) const {
        return memo_.contains(config.hash());
    }

private:
    class WorkspacePool;

    const AcceleratorModel& model_;
    std::vector<img::Image> scenes_;
    std::vector<img::Image> exact_;
    std::vector<img::SsimReference> ssimRefs_;
    Options options_;
    std::unordered_map<std::uint64_t, EvaluatedConfig> memo_;
    std::size_t fresh_ = 0;
    std::unique_ptr<WorkspacePool> workspaces_;
};

}  // namespace axf::autoax
