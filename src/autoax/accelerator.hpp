#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/cache/characterization_cache.hpp"
#include "src/circuit/arith.hpp"
#include "src/circuit/batch_sim.hpp"
#include "src/circuit/netlist.hpp"
#include "src/circuit/simulator.hpp"
#include "src/core/flow.hpp"
#include "src/error/error_metrics.hpp"
#include "src/img/image.hpp"
#include "src/synth/metrics.hpp"

namespace axf::autoax {

/// One Pareto-optimal FPGA-AC offered to the accelerator builder (a menu
/// entry): behavioral netlist plus measured FPGA parameters and error.
struct Component {
    std::string name;
    circuit::ArithSignature signature;
    error::ErrorReport error;
    synth::FpgaReport fpga;
    circuit::Netlist netlist;
};

/// Extracts the final Pareto-optimal circuits of an ApproxFPGAs run as a
/// component menu (capped at `maxComponents`, spread over the error range).
std::vector<Component> componentsFromFlow(const core::FlowResult& result,
                                          core::FpgaParam param, std::size_t maxComponents);

/// Caller-owned scratch for `batchAdd16`: holding it across calls removes
/// every per-call heap allocation from the hot loop.
struct BatchAddScratch {
    std::vector<std::uint64_t> in;
    std::vector<std::uint64_t> out;
};

/// Applies a 16-bit adder netlist (via its simulator) to up to 64 operand
/// pairs bit-parallel.  Shared by the accelerator behavioural models and
/// reusable for custom accelerators (see examples/sobel_accelerator).
void batchAdd16(circuit::Simulator& sim, std::span<const std::uint32_t> a,
                std::span<const std::uint32_t> b, std::span<std::uint32_t> out,
                BatchAddScratch& scratch);

/// Convenience overload with call-local scratch (allocates; prefer the
/// scratch variant in loops).
void batchAdd16(circuit::Simulator& sim, std::span<const std::uint32_t> a,
                std::span<const std::uint32_t> b, std::span<std::uint32_t> out);

/// Configuration of the Gaussian-filter accelerator: a component choice for
/// each of the 9 multiplier slots and each of the 8 adder-tree nodes.
struct AcceleratorConfig {
    std::array<int, 9> multiplier{};  ///< indices into the multiplier menu
    std::array<int, 8> adder{};       ///< indices into the adder menu

    std::uint64_t hash() const;
    friend bool operator==(const AcceleratorConfig&, const AcceleratorConfig&) = default;
};

/// Composed "measured" hardware cost of one configuration — the stand-in
/// for synthesizing the full accelerator with Vivado.  Area and power are
/// additive over component instances (plus glue); latency follows the
/// slowest multiplier and the adder-tree critical path.  A small
/// deterministic per-configuration jitter models P&R variance.
struct AcceleratorCost {
    double lutCount = 0.0;
    double powerMw = 0.0;
    double latencyNs = 0.0;
    double synthSeconds = 0.0;  ///< Vivado-equivalent accelerator synthesis
};

/// 3x3 Gaussian-blur hardware accelerator (kernel [1 2 1; 2 4 2; 1 2 1]/16)
/// built from approximate components.  Evaluates the behavioural model
/// bit-parallel (64 pixels per sweep) and composes hardware costs.
class GaussianAccelerator {
public:
    /// A non-null characterization cache reuses the exhaustive 8x8
    /// multiplier behavioural tables (content-addressed by component
    /// netlist hash) across accelerators, runs and processes.
    GaussianAccelerator(std::vector<Component> multiplierMenu, std::vector<Component> adderMenu,
                        cache::CharacterizationCache* cache = nullptr);

    const std::vector<Component>& multiplierMenu() const { return multipliers_; }
    const std::vector<Component>& adderMenu() const { return adders_; }

    /// Number of distinct configurations (|M|^9 * |A|^8 as a double; the
    /// paper quotes 4.95e14 for its menus).
    double designSpaceSize() const;

    /// Runs the behavioural model over an image.
    img::Image filter(const img::Image& input, const AcceleratorConfig& config) const;

    /// Reference output (all-exact components).
    img::Image filterExact(const img::Image& input) const;

    /// QoR: mean SSIM of the approximate output against the exact output
    /// over the given scenes.
    double quality(const AcceleratorConfig& config, const std::vector<img::Image>& scenes) const;

    AcceleratorCost cost(const AcceleratorConfig& config) const;

    /// The kernel weights in slot order (row-major 3x3).
    static const std::array<int, 9>& kernelWeights();

private:
    std::vector<Component> multipliers_;
    std::vector<Component> adders_;
    std::vector<std::vector<std::uint16_t>> multTables_;  ///< 8x8 -> 16-bit LUTs
    /// Each adder menu entry lowered once; filter() instantiates per-node
    /// `BatchSimulator` workspaces over these shared programs.
    std::vector<circuit::CompiledNetlist> adderCompiled_;

    static std::vector<std::uint16_t> buildTable(const Component& component,
                                                 cache::CharacterizationCache* cache);
};

}  // namespace axf::autoax
