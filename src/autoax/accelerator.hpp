#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/autoax/model.hpp"
#include "src/cache/characterization_cache.hpp"
#include "src/circuit/batch_sim.hpp"

namespace axf::autoax {

/// 3x3 Gaussian-blur hardware accelerator (kernel [1 2 1; 2 4 2; 1 2 1]/16)
/// built from approximate components.  Evaluates the behavioural model
/// bit-parallel (256 pixels per sweep) and composes hardware costs.
///
/// Configuration slots (see `configSpace()`): choices 0..8 pick the
/// multiplier of the 9 kernel taps (row-major), choices 9..16 pick the
/// adder of the 8 adder-tree nodes (4+2+1 reduction levels plus the final
/// center-tap add).
class GaussianAccelerator : public AcceleratorModel {
public:
    static constexpr int kMultiplierSlots = 9;
    static constexpr int kAdderSlots = 8;

    /// A non-null characterization cache reuses the exhaustive 8x8
    /// multiplier behavioural tables (content-addressed by component
    /// netlist hash) across accelerators, runs and processes.
    GaussianAccelerator(std::vector<Component> multiplierMenu, std::vector<Component> adderMenu,
                        cache::CharacterizationCache* cache = nullptr);

    const std::vector<Component>& multiplierMenu() const { return multipliers_; }
    const std::vector<Component>& adderMenu() const { return adders_; }

    /// Global slot index of multiplier tap `slot` (0..8) / adder node
    /// `node` (0..7) in an `AcceleratorConfig`.
    static std::size_t multiplierSlot(int slot) { return static_cast<std::size_t>(slot); }
    static std::size_t adderSlot(int node) {
        return static_cast<std::size_t>(kMultiplierSlots + node);
    }

    // --- AcceleratorModel --------------------------------------------------
    std::string name() const override { return "gaussian3x3"; }
    const ConfigSpace& configSpace() const override { return space_; }
    const std::vector<Component>* componentMenu(std::size_t group) const override {
        return group == 0 ? &multipliers_ : group == 1 ? &adders_ : nullptr;
    }
    using AcceleratorModel::filter;  // the one-shot-scratch convenience
    img::Image filter(const img::Image& input, const AcceleratorConfig& config,
                      Workspace& workspace) const override;
    img::Image filterExact(const img::Image& input) const override;
    AcceleratorCost cost(const AcceleratorConfig& config) const override;
    std::vector<double> features(const AcceleratorConfig& config) const override;
    std::unique_ptr<Workspace> makeWorkspace() const override;

    /// The kernel weights in slot order (row-major 3x3).
    static const std::array<int, 9>& kernelWeights();

private:
    struct WorkspaceImpl;

    std::vector<Component> multipliers_;
    std::vector<Component> adders_;
    ConfigSpace space_;
    std::vector<std::vector<std::uint16_t>> multTables_;  ///< 8x8 -> 16-bit LUTs
    /// Each adder menu entry lowered once; workspaces rebind per-node
    /// `BatchSimulator` scratch over these shared programs.
    std::vector<circuit::CompiledNetlist> adderCompiled_;

    static std::vector<std::uint16_t> buildTable(const Component& component,
                                                 cache::CharacterizationCache* cache);
};

}  // namespace axf::autoax
