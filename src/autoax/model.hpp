#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/circuit/arith.hpp"
#include "src/circuit/batch_sim.hpp"
#include "src/circuit/netlist.hpp"
#include "src/circuit/simulator.hpp"
#include "src/core/dataset.hpp"
#include "src/core/flow.hpp"
#include "src/error/error_metrics.hpp"
#include "src/img/image.hpp"
#include "src/synth/metrics.hpp"

namespace axf::autoax {

/// One Pareto-optimal FPGA-AC offered to an accelerator builder (a menu
/// entry): behavioral netlist plus measured FPGA parameters and error.
struct Component {
    std::string name;
    circuit::ArithSignature signature;
    error::ErrorReport error;
    synth::FpgaReport fpga;
    circuit::Netlist netlist;
};

/// Extracts the final Pareto-optimal circuits of an ApproxFPGAs run as a
/// component menu (capped at `maxComponents`, spread over the error range).
std::vector<Component> componentsFromFlow(const core::FlowResult& result,
                                          core::FpgaParam param, std::size_t maxComponents);

/// Generic accelerator configuration: one menu choice per configurable
/// slot, in the slot order the owning model defines (`ConfigSpace`).
struct AcceleratorConfig {
    std::vector<int> choice;

    std::uint64_t hash() const;
    friend bool operator==(const AcceleratorConfig&, const AcceleratorConfig&) = default;
};

/// Describes the configurable structure of an accelerator model: named
/// groups of slots, each slot drawing from a group-wide component menu.
/// Slot indices are global and run group by group (a Gaussian accelerator
/// is {multiplier x9, adder x8}: slots 0..8 then 9..16).
struct ConfigSpace {
    struct SlotGroup {
        std::string name;  ///< e.g. "multiplier"
        int slots = 0;     ///< slot count in this group
        int menuSize = 0;  ///< choices per slot
    };
    std::vector<SlotGroup> groups;

    std::size_t slotCount() const;
    int menuSizeOf(std::size_t slot) const;
    /// |menu_g|^slots_g over all groups, as a double (overflows 64 bits).
    double designSpaceSize() const;

    /// All-index-0 configuration (menus are MED-sorted: the most accurate).
    AcceleratorConfig accurateCorner() const;
    /// All-last-index configuration (cheapest / most aggressive entries).
    AcceleratorConfig cheapCorner() const;
    /// Uniformly random slot assignment drawn from `rng`.
    AcceleratorConfig randomConfig(util::Rng& rng) const;

    /// Throws std::out_of_range unless every slot choice is in range (and
    /// the choice vector has exactly `slotCount()` entries).
    void validate(const AcceleratorConfig& config) const;
};

/// Composed "measured" hardware cost of one configuration — the stand-in
/// for synthesizing the full accelerator with Vivado.  Area and power are
/// additive over component instances (plus glue); latency follows the
/// datapath critical path.  A small deterministic per-configuration jitter
/// models P&R variance.
struct AcceleratorCost {
    double lutCount = 0.0;
    double powerMw = 0.0;
    double latencyNs = 0.0;
    double synthSeconds = 0.0;  ///< Vivado-equivalent accelerator synthesis
};

/// A hardware-accelerated image-processing workload assembled from
/// approximate components — the pluggable unit the AutoAx DSE, the batched
/// evaluation engine and the fig harnesses operate on.  Implementations
/// describe their configuration space, evaluate the behavioral model
/// (ideally bit-parallel), compose hardware costs, and expose the feature
/// vector their QoR/cost estimators train on.
class AcceleratorModel {
public:
    /// Opaque per-thread evaluation scratch (compiled-program workspaces,
    /// word buffers).  One workspace must never be used from two threads
    /// at once; holding one across `filter` calls removes per-call heap
    /// allocation and simulator re-setup.
    class Workspace {
    public:
        virtual ~Workspace() = default;
    };

    virtual ~AcceleratorModel() = default;

    virtual std::string name() const = 0;
    virtual const ConfigSpace& configSpace() const = 0;

    /// Component menu the slots of ConfigSpace group `group` draw from, or
    /// nullptr when the model has no per-group netlist menu.  Consumers
    /// that characterize individual components (e.g. the resilience-aware
    /// DSE running per-component stuck-at campaigns) need the underlying
    /// netlists, not just menu sizes.
    virtual const std::vector<Component>* componentMenu(std::size_t group) const {
        (void)group;
        return nullptr;
    }

    /// Runs the behavioral model over an image using caller-owned scratch.
    virtual img::Image filter(const img::Image& input, const AcceleratorConfig& config,
                              Workspace& workspace) const = 0;

    /// Reference output (all-exact components).
    virtual img::Image filterExact(const img::Image& input) const = 0;

    virtual AcceleratorCost cost(const AcceleratorConfig& config) const = 0;

    /// Feature vector of a configuration for the AutoAx estimators
    /// (error-mass and hardware aggregates of the chosen components).
    virtual std::vector<double> features(const AcceleratorConfig& config) const = 0;

    virtual std::unique_ptr<Workspace> makeWorkspace() const = 0;

    /// Convenience: filter with one-shot scratch (allocates; prefer a held
    /// workspace in loops).
    img::Image filter(const img::Image& input, const AcceleratorConfig& config) const;

    /// QoR: mean SSIM of the approximate output against the exact output
    /// over the given scenes.  This is the scalar reference path; the
    /// batched `EvalEngine` is bit-identical to it and much faster.
    double quality(const AcceleratorConfig& config, const std::vector<img::Image>& scenes) const;

    double designSpaceSize() const { return configSpace().designSpaceSize(); }
};

/// Caller-owned scratch for `batchAdd16`: holding it across calls removes
/// every per-call heap allocation from the hot loop.
struct BatchAddScratch {
    std::vector<std::uint64_t> in;
    std::vector<std::uint64_t> out;
};

/// Applies a 16-bit adder netlist (via its simulator) to up to 64 operand
/// pairs bit-parallel.  Shared by the accelerator behavioural models and
/// reusable for custom accelerators.
void batchAdd16(circuit::Simulator& sim, std::span<const std::uint32_t> a,
                std::span<const std::uint32_t> b, std::span<std::uint32_t> out,
                BatchAddScratch& scratch);

/// Convenience overload with call-local scratch (allocates; prefer the
/// scratch variant in loops).
void batchAdd16(circuit::Simulator& sim, std::span<const std::uint32_t> a,
                std::span<const std::uint32_t> b, std::span<std::uint32_t> out);

/// Wide batchAdd16: any number of operand pairs on the compiled engine,
/// swept internally in blocks of the simulator's own `blockLanes()` (256 /
/// 512 / 1024 following the bound program's chosen width).  `inWords` /
/// `outWords` are caller-owned blocks of at least 32 * blockWords() and
/// outputCount * blockWords() words — size them with
/// `BatchSimulator::kMaxWordsPerBlock` so rebinding to a wider program
/// stays in bounds; nothing allocates.  Operands truncate to the adder's
/// 16-bit interface (inputs may carry a previous level's carry-out in
/// bit 16).
void batchAdd16Wide(circuit::BatchSimulator& sim, const std::uint32_t* a,
                    const std::uint32_t* b, std::uint32_t* out, std::size_t lanes,
                    std::span<circuit::CompiledNetlist::Word> inWords,
                    std::span<circuit::CompiledNetlist::Word> outWords);

}  // namespace axf::autoax
