#include "src/autoax/sobel.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "src/util/rng.hpp"
#include "src/util/thread_pool.hpp"

namespace axf::autoax {

using circuit::BatchSimulator;
using circuit::CompiledNetlist;
using Word = CompiledNetlist::Word;

namespace {

/// Pixel-loop tile and buffer sizing: the widest block any bound program
/// can choose.  `batchAdd16Wide` re-tiles internally to each simulator's
/// own width, so the lane arrays stay width-agnostic.
constexpr std::size_t kMaxWords = BatchSimulator::kMaxWordsPerBlock;
constexpr std::size_t kMaxLanes = BatchSimulator::kMaxLanesPerBlock;

/// Bias keeping both gradient operands non-negative on the unsigned adder
/// interface: |column/row sums| <= 1020 < 4096, and the biased operand
/// stays < 2^13, far inside the 16-bit datapath.
constexpr std::uint32_t kBias = 1u << 12;

}  // namespace

SobelAccelerator::SobelAccelerator(std::vector<Component> adderMenu)
    : adders_(std::move(adderMenu)) {
    if (adders_.empty()) throw std::invalid_argument("SobelAccelerator: empty adder menu");
    for (const Component& c : adders_)
        if (c.signature.op != circuit::ArithOp::Adder || c.signature.widthA != 16)
            throw std::invalid_argument("SobelAccelerator: adder menu needs 16-bit adders");
    space_.groups = {{"adder", kAdderSlots, static_cast<int>(adders_.size())}};

    adderCompiled_.resize(adders_.size());
    util::ThreadPool::global().parallelFor(adders_.size(), [&](std::size_t i) {
        adderCompiled_[i] = CompiledNetlist::compile(adders_[i].netlist);
    });
}

/// Per-thread scratch: one rebindable simulator workspace per datapath
/// adder plus the shared word blocks (same pattern as the Gaussian model).
struct SobelAccelerator::WorkspaceImpl : AcceleratorModel::Workspace {
    std::vector<BatchSimulator> sims;
    std::vector<Word> inWords;
    std::vector<Word> outWords;
};

std::unique_ptr<AcceleratorModel::Workspace> SobelAccelerator::makeWorkspace() const {
    auto ws = std::make_unique<WorkspaceImpl>();
    ws->inWords.resize(32 * kMaxWords);
    return ws;
}

img::Image SobelAccelerator::filter(const img::Image& input, const AcceleratorConfig& config,
                                    Workspace& workspace) const {
    space_.validate(config);
    auto& ws = dynamic_cast<WorkspaceImpl&>(workspace);

    std::size_t maxOutputs = 0;
    for (int slot = 0; slot < kAdderSlots; ++slot) {
        const auto& compiled =
            adderCompiled_[static_cast<std::size_t>(config.choice[static_cast<std::size_t>(slot)])];
        maxOutputs = std::max(maxOutputs, compiled.outputCount());
        if (ws.sims.size() <= static_cast<std::size_t>(slot))
            ws.sims.emplace_back(compiled);
        else
            ws.sims[static_cast<std::size_t>(slot)].rebind(compiled);
    }
    if (ws.outWords.size() < maxOutputs * kMaxWords) ws.outWords.resize(maxOutputs * kMaxWords);

    img::Image output(input.width(), input.height());
    const std::size_t total = input.pixelCount();

    std::array<std::uint32_t, kMaxLanes> ax{}, bx{}, gx{}, ay{}, by{}, gy{}, adx{}, ady{}, mag{};
    const auto add = [&](int slot, const std::array<std::uint32_t, kMaxLanes>& a,
                         const std::array<std::uint32_t, kMaxLanes>& b,
                         std::array<std::uint32_t, kMaxLanes>& out, std::size_t lanes) {
        BatchSimulator& sim = ws.sims[static_cast<std::size_t>(slot)];
        batchAdd16Wide(sim, a.data(), b.data(), out.data(), lanes, ws.inWords,
                       ws.outWords);
    };

    for (std::size_t base = 0; base < total; base += kMaxLanes) {
        const std::size_t lanes = std::min<std::size_t>(kMaxLanes, total - base);
        for (std::size_t lane = 0; lane < lanes; ++lane) {
            const std::size_t pixel = base + lane;
            const int x = static_cast<int>(pixel % static_cast<std::size_t>(input.width()));
            const int y = static_cast<int>(pixel / static_cast<std::size_t>(input.width()));
            const auto p = [&](int dx, int dy) {
                return static_cast<std::uint32_t>(input.atClamped(x + dx, y + dy));
            };
            // gx = (p(1,-1)+2p(1,0)+p(1,1)) - (p(-1,-1)+2p(-1,0)+p(-1,1));
            // the 1-2-1 accumulations are shift-adds (exact in hardware),
            // the wide subtraction is the approximate adder as
            // a + (~b) + 1 with the +1 folded into the bias term.
            ax[lane] = p(1, -1) + 2 * p(1, 0) + p(1, 1) + kBias;
            bx[lane] = (~(p(-1, -1) + 2 * p(-1, 0) + p(-1, 1)) + 1) & 0xFFFFu;
            ay[lane] = p(-1, 1) + 2 * p(0, 1) + p(1, 1) + kBias;
            by[lane] = (~(p(-1, -1) + 2 * p(0, -1) + p(1, -1)) + 1) & 0xFFFFu;
        }
        add(0, ax, bx, gx, lanes);
        add(1, ay, by, gy, lanes);
        for (std::size_t lane = 0; lane < lanes; ++lane) {
            const int dx = static_cast<int>(gx[lane] & 0xFFFFu) - static_cast<int>(kBias);
            const int dy = static_cast<int>(gy[lane] & 0xFFFFu) - static_cast<int>(kBias);
            adx[lane] = static_cast<std::uint32_t>(std::abs(dx)) & 0xFFFFu;
            ady[lane] = static_cast<std::uint32_t>(std::abs(dy)) & 0xFFFFu;
        }
        add(2, adx, ady, mag, lanes);
        for (std::size_t lane = 0; lane < lanes; ++lane) {
            const std::size_t pixel = base + lane;
            output.set(static_cast<int>(pixel % static_cast<std::size_t>(input.width())),
                       static_cast<int>(pixel / static_cast<std::size_t>(input.width())),
                       static_cast<std::uint8_t>(
                           std::min<std::uint32_t>(255u, (mag[lane] & 0xFFFFu) / 4)));
        }
    }
    return output;
}

img::Image SobelAccelerator::filterExact(const img::Image& input) const {
    img::Image output(input.width(), input.height());
    for (int y = 0; y < input.height(); ++y) {
        for (int x = 0; x < input.width(); ++x) {
            const auto p = [&](int dx, int dy) {
                return static_cast<int>(input.atClamped(x + dx, y + dy));
            };
            const int dx = (p(1, -1) + 2 * p(1, 0) + p(1, 1)) -
                           (p(-1, -1) + 2 * p(-1, 0) + p(-1, 1));
            const int dy = (p(-1, 1) + 2 * p(0, 1) + p(1, 1)) -
                           (p(-1, -1) + 2 * p(0, -1) + p(1, -1));
            output.set(x, y, static_cast<std::uint8_t>(
                                 std::min(255, (std::abs(dx) + std::abs(dy)) / 4)));
        }
    }
    return output;
}

AcceleratorCost SobelAccelerator::cost(const AcceleratorConfig& config) const {
    space_.validate(config);
    AcceleratorCost cost;
    std::array<double, kAdderSlots> latency{};
    for (int slot = 0; slot < kAdderSlots; ++slot) {
        const Component& c =
            adders_[static_cast<std::size_t>(config.choice[static_cast<std::size_t>(slot)])];
        cost.lutCount += c.fpga.lutCount;
        cost.powerMw += c.fpga.powerMw;
        cost.synthSeconds += 0.25 * c.fpga.synthSeconds;
        latency[static_cast<std::size_t>(slot)] = c.fpga.latencyNs;
    }
    // gx and gy run in parallel; the magnitude add is serial behind them.
    cost.latencyNs = std::max(latency[0], latency[1]) + latency[2];

    // Shift-add row/column sums, two's-complement negate, |.| units, line
    // buffers, and P&R variance.
    cost.lutCount += 46.0;
    cost.powerMw += 0.21;
    cost.latencyNs += 1.1;
    cost.synthSeconds += 60.0;
    util::Rng jitter(config.hash() ^ 0x50BE1ull);
    cost.lutCount *= 1.0 + jitter.uniformReal(-0.02, 0.02);
    cost.powerMw *= 1.0 + jitter.uniformReal(-0.03, 0.03);
    cost.latencyNs *= 1.0 + jitter.uniformReal(-0.03, 0.03);
    return cost;
}

std::vector<double> SobelAccelerator::features(const AcceleratorConfig& config) const {
    space_.validate(config);
    double medSum = 0, medMax = 0, wceSum = 0, lut = 0, pow = 0, latSum = 0, exactCount = 0;
    for (int slot = 0; slot < kAdderSlots; ++slot) {
        const Component& c =
            adders_[static_cast<std::size_t>(config.choice[static_cast<std::size_t>(slot)])];
        // The magnitude slot sees already-differenced operands: errors
        // there hit the output directly, so it carries full weight like
        // the gradient slots.
        medSum += c.error.med;
        medMax = std::max(medMax, c.error.med);
        wceSum += c.error.worstCaseError;
        lut += c.fpga.lutCount;
        pow += c.fpga.powerMw;
        latSum += c.fpga.latencyNs;
        if (c.error.observedExact()) exactCount += 1.0;
    }
    return {medSum, medMax, std::log1p(wceSum), lut, pow, latSum, exactCount};
}

}  // namespace axf::autoax
