#pragma once

#include <vector>

#include "src/circuit/netlist.hpp"

namespace axf::gen {

/// An ordered LSB-first list of netlist nodes forming a bit-vector signal.
using Bits = std::vector<circuit::NodeId>;

/// Sum/carry pair produced by adder cells.
struct SumCarry {
    circuit::NodeId sum;
    circuit::NodeId carry;
};

/// Appends `n` primary inputs and returns them LSB-first.
Bits addOperand(circuit::Netlist& net, int n);

/// Classic 5-gate full adder (2x XOR for sum, MAJ for carry).
SumCarry fullAdder(circuit::Netlist& net, circuit::NodeId a, circuit::NodeId b,
                   circuit::NodeId cin);

/// Half adder (XOR + AND).
SumCarry halfAdder(circuit::Netlist& net, circuit::NodeId a, circuit::NodeId b);

/// Ripple-carry sum of two equal-width vectors with optional carry-in.
/// Returns width+1 bits (carry-out as MSB).
Bits rippleSum(circuit::Netlist& net, const Bits& a, const Bits& b,
               circuit::NodeId cin = circuit::kInvalidNode);

/// Weight-indexed partial-product columns used by the multiplier builders.
/// `columns[w]` lists the bits of weight 2^w awaiting reduction.
class ColumnStack {
public:
    explicit ColumnStack(int width) : columns_(static_cast<std::size_t>(width)) {}

    void push(int weight, circuit::NodeId bit) {
        columns_.at(static_cast<std::size_t>(weight)).push_back(bit);
    }
    int width() const { return static_cast<int>(columns_.size()); }
    const std::vector<Bits>& columns() const { return columns_; }

    /// Wallace-style reduction: repeatedly applies full/half adders until
    /// every column holds at most two bits, then returns the final sum via
    /// a ripple carry-propagate adder.  Result is LSB-first, `width()` bits.
    Bits reduceAndSum(circuit::Netlist& net);

private:
    std::vector<Bits> columns_;
};

}  // namespace axf::gen
