#include "src/gen/bitvec.hpp"

#include <stdexcept>

namespace axf::gen {

using circuit::GateKind;
using circuit::kInvalidNode;
using circuit::Netlist;
using circuit::NodeId;

Bits addOperand(Netlist& net, int n) {
    Bits bits(static_cast<std::size_t>(n));
    for (auto& bit : bits) bit = net.addInput();
    return bits;
}

SumCarry fullAdder(Netlist& net, NodeId a, NodeId b, NodeId cin) {
    const NodeId axb = net.addGate(GateKind::Xor, a, b);
    const NodeId sum = net.addGate(GateKind::Xor, axb, cin);
    const NodeId carry = net.addGate(GateKind::Maj, a, b, cin);
    return {sum, carry};
}

SumCarry halfAdder(Netlist& net, NodeId a, NodeId b) {
    return {net.addGate(GateKind::Xor, a, b), net.addGate(GateKind::And, a, b)};
}

Bits rippleSum(Netlist& net, const Bits& a, const Bits& b, NodeId cin) {
    if (a.size() != b.size()) throw std::invalid_argument("rippleSum: width mismatch");
    Bits sum;
    sum.reserve(a.size() + 1);
    NodeId carry = cin;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (carry == kInvalidNode) {
            const SumCarry sc = halfAdder(net, a[i], b[i]);
            sum.push_back(sc.sum);
            carry = sc.carry;
        } else {
            const SumCarry sc = fullAdder(net, a[i], b[i], carry);
            sum.push_back(sc.sum);
            carry = sc.carry;
        }
    }
    sum.push_back(carry == kInvalidNode ? net.addConst(false) : carry);
    return sum;
}

Bits ColumnStack::reduceAndSum(Netlist& net) {
    // Phase 1: level-by-level Wallace compression.  Each round takes a
    // snapshot of every column and reduces groups of three in parallel, so
    // the tree depth stays logarithmic (consuming freshly produced bits in
    // the same round would serialize the reduction).
    bool anyTall = true;
    while (anyTall) {
        anyTall = false;
        std::vector<Bits> next(columns_.size());
        for (int w = 0; w < width(); ++w) {
            const Bits col = std::move(columns_[static_cast<std::size_t>(w)]);
            std::size_t i = 0;
            while (col.size() - i >= 3) {
                const SumCarry sc = fullAdder(net, col[i], col[i + 1], col[i + 2]);
                i += 3;
                next[static_cast<std::size_t>(w)].push_back(sc.sum);
                if (w + 1 < width()) next[static_cast<std::size_t>(w + 1)].push_back(sc.carry);
            }
            for (; i < col.size(); ++i) next[static_cast<std::size_t>(w)].push_back(col[i]);
        }
        columns_ = std::move(next);
        for (const Bits& col : columns_)
            if (col.size() > 2) anyTall = true;
    }
    // Phase 2: final carry-propagate over the remaining <=2 rows.
    Bits result(static_cast<std::size_t>(width()), kInvalidNode);
    NodeId carry = kInvalidNode;
    for (int w = 0; w < width(); ++w) {
        Bits& col = columns_[static_cast<std::size_t>(w)];
        const NodeId x = col.size() > 0 ? col[0] : net.addConst(false);
        const NodeId y = col.size() > 1 ? col[1] : net.addConst(false);
        if (carry == kInvalidNode) {
            const SumCarry sc = halfAdder(net, x, y);
            result[static_cast<std::size_t>(w)] = sc.sum;
            carry = sc.carry;
        } else {
            const SumCarry sc = fullAdder(net, x, y, carry);
            result[static_cast<std::size_t>(w)] = sc.sum;
            carry = sc.carry;
        }
    }
    return result;
}

}  // namespace axf::gen
