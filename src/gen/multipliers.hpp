#pragma once

#include "src/circuit/arith.hpp"
#include "src/circuit/netlist.hpp"

namespace axf::gen {

/// Generators for n x n unsigned multipliers.  Interface convention:
/// inputs a0..a(n-1), b0..b(n-1) LSB-first; outputs p0..p(2n-1) LSB-first.

// --- exact architectures ---------------------------------------------------
circuit::Netlist arrayMultiplier(int n);
circuit::Netlist wallaceMultiplier(int n);

// --- approximate architectures ----------------------------------------------

/// Truncated multiplier: partial products of weight < `truncatedColumns`
/// are dropped; the corresponding output bits are constant 0.
circuit::Netlist truncatedMultiplier(int n, int truncatedColumns);

/// Broken-array multiplier (BAM): omits all partial products a_i*b_j with
/// i + j < horizontalBreak, and additionally those with j < verticalBreak.
circuit::Netlist brokenArrayMultiplier(int n, int horizontalBreak, int verticalBreak);

/// Kulkarni-style multiplier: recursively composed from an approximate 2x2
/// block that mis-encodes 3*3 as 7 (saving the MSB), with exact composition
/// adders.  `n` must be a power of two >= 2.
circuit::Netlist kulkarniMultiplier(int n);

/// Wallace multiplier whose low `approxColumns` columns are compressed with
/// approximate 4:2 compressors (OR-based carry speculation).
circuit::Netlist approxCompressorMultiplier(int n, int approxColumns);

/// DRUM-style dynamic-range multiplier (Hashemi et al., ICCAD'15): each
/// operand is reduced to its `k` leading bits starting at the most
/// significant one (leading-one detector + mux tree), the k x k core
/// multiplies the reduced operands, and the result is shifted back.  The
/// LSB of each reduced operand is forced to 1 for unbiased expectation.
circuit::Netlist drumMultiplier(int n, int k);

/// Mitchell's logarithmic multiplier: log2(a) + log2(b) approximated by
/// leading-one position plus linear fraction, then the antilog shifter.
circuit::Netlist mitchellMultiplier(int n);

/// Signature shared by every n x n multiplier produced here.
inline circuit::ArithSignature multiplierSignature(int n) {
    return circuit::ArithSignature{circuit::ArithOp::Multiplier, n, n};
}

}  // namespace axf::gen
