#include "src/gen/cgp.hpp"

#include <stdexcept>
#include <unordered_set>

#include "src/circuit/transform.hpp"
#include "src/util/thread_pool.hpp"

namespace axf::gen {

using circuit::GateKind;
using circuit::Netlist;
using circuit::NodeId;

std::vector<GateKind> CgpParams::defaultFunctionSet() {
    // The EvoApproxLib function alphabet: wire, inversion, and the
    // two-input AND/OR/XOR family with complements.
    return {GateKind::Buf,  GateKind::Not,  GateKind::And,    GateKind::Or,
            GateKind::Xor,  GateKind::Nand, GateKind::Nor,    GateKind::Xnor,
            GateKind::AndNot, GateKind::OrNot};
}

CgpGenome::CgpGenome(CgpParams params, util::Rng& rng) : params_(std::move(params)) {
    if (params_.inputs <= 0 || params_.outputs <= 0 || params_.cells <= 0)
        throw std::invalid_argument("CgpGenome: empty geometry");
    if (params_.functions.empty()) throw std::invalid_argument("CgpGenome: empty function set");
    genes_.resize(static_cast<std::size_t>(params_.cells));
    for (int i = 0; i < params_.cells; ++i) {
        Gene& g = genes_[static_cast<std::size_t>(i)];
        g.function = static_cast<std::uint8_t>(rng.index(params_.functions.size()));
        g.a = randomOperand(i, rng);
        g.b = randomOperand(i, rng);
    }
    outputGenes_.resize(static_cast<std::size_t>(params_.outputs));
    for (auto& o : outputGenes_)
        o = static_cast<std::uint16_t>(rng.index(static_cast<std::size_t>(nodeSpace())));
}

std::uint16_t CgpGenome::randomOperand(int cellIndex, util::Rng& rng) const {
    // Full levels-back: any primary input or earlier cell.
    return static_cast<std::uint16_t>(
        rng.index(static_cast<std::size_t>(params_.inputs + cellIndex)));
}

CgpGenome CgpGenome::seedFromNetlist(const Netlist& netlist, int extraCells, util::Rng& rng) {
    const Netlist lowered = circuit::simplify(circuit::lowerToTwoInput(netlist));

    CgpParams params;
    params.inputs = static_cast<int>(lowered.inputCount());
    params.outputs = static_cast<int>(lowered.outputCount());

    // Map netlist node index -> genome node index.  Constants become cells
    // computing x^x / ~(x^x) over input 0 so the alphabet stays pure.
    std::vector<int> nodeToGenome(lowered.nodeCount(), -1);
    struct PlannedCell {
        GateKind kind;
        int a, b;
    };
    std::vector<PlannedCell> planned;
    int inputSeen = 0;
    for (std::size_t i = 0; i < lowered.nodeCount(); ++i) {
        const circuit::Node& n = lowered.node(static_cast<NodeId>(i));
        switch (n.kind) {
            case GateKind::Input: nodeToGenome[i] = inputSeen++; break;
            case GateKind::Const0:
                planned.push_back({GateKind::Xor, 0, 0});
                nodeToGenome[i] = params.inputs + static_cast<int>(planned.size()) - 1;
                break;
            case GateKind::Const1:
                planned.push_back({GateKind::Xnor, 0, 0});
                nodeToGenome[i] = params.inputs + static_cast<int>(planned.size()) - 1;
                break;
            default: {
                const int a = nodeToGenome[n.a];
                const int b = circuit::fanInCount(n.kind) >= 2 ? nodeToGenome[n.b] : a;
                planned.push_back({n.kind, a, b});
                nodeToGenome[i] = params.inputs + static_cast<int>(planned.size()) - 1;
                break;
            }
        }
    }
    params.cells = static_cast<int>(planned.size()) + extraCells;

    CgpGenome genome(params, rng);
    for (std::size_t i = 0; i < planned.size(); ++i) {
        const PlannedCell& cell = planned[i];
        std::uint8_t fn = 0;
        bool found = false;
        for (std::size_t f = 0; f < params.functions.size(); ++f) {
            if (params.functions[f] == cell.kind) {
                fn = static_cast<std::uint8_t>(f);
                found = true;
                break;
            }
        }
        if (!found) throw std::invalid_argument("seedFromNetlist: gate kind not in function set");
        genome.genes_[i] = Gene{fn, static_cast<std::uint16_t>(cell.a),
                                static_cast<std::uint16_t>(cell.b)};
    }
    for (std::size_t o = 0; o < lowered.outputs().size(); ++o)
        genome.outputGenes_[o] =
            static_cast<std::uint16_t>(nodeToGenome[lowered.outputs()[o]]);
    return genome;
}

CgpGenome CgpGenome::crossover(const CgpGenome& a, const CgpGenome& b, util::Rng& rng) {
    if (a.params_.inputs != b.params_.inputs || a.params_.outputs != b.params_.outputs ||
        a.genes_.size() != b.genes_.size() || a.outputGenes_.size() != b.outputGenes_.size() ||
        a.params_.functions != b.params_.functions)
        throw std::invalid_argument("CgpGenome::crossover: geometry mismatch");
    CgpGenome child = a;
    // Cut position over the flattened chromosome (cut == 0 clones b,
    // cut == chromosome length clones a).
    const std::size_t chromosome = child.genes_.size() + child.outputGenes_.size();
    const std::size_t cut = rng.index(chromosome + 1);
    for (std::size_t i = cut; i < chromosome; ++i) {
        if (i < child.genes_.size())
            child.genes_[i] = b.genes_[i];
        else
            child.outputGenes_[i - child.genes_.size()] = b.outputGenes_[i - child.genes_.size()];
    }
    return child;
}

void CgpGenome::serialize(util::ByteWriter& out) const {
    out.u32(static_cast<std::uint32_t>(genes_.size()));
    for (const Gene& g : genes_) {
        out.u8(g.function);
        out.u16(g.a);
        out.u16(g.b);
    }
    out.u32(static_cast<std::uint32_t>(outputGenes_.size()));
    for (std::uint16_t o : outputGenes_) out.u16(o);
}

std::optional<CgpGenome> CgpGenome::deserialize(util::ByteReader& in, const CgpParams& params) {
    std::uint32_t cellCount = 0;
    if (!in.u32(cellCount) || cellCount != static_cast<std::uint32_t>(params.cells))
        return std::nullopt;
    std::vector<Gene> genes(cellCount);
    for (std::uint32_t i = 0; i < cellCount; ++i) {
        Gene& g = genes[i];
        if (!in.u8(g.function) || !in.u16(g.a) || !in.u16(g.b)) return std::nullopt;
        // Enforce the representation invariants the operators rely on:
        // function inside the alphabet, operands respecting levels-back
        // order (cell i sees inputs and cells < i).  A checkpoint that
        // violates them is corrupt, not merely stale.
        if (g.function >= params.functions.size()) return std::nullopt;
        const std::uint32_t operandSpace = static_cast<std::uint32_t>(params.inputs) + i;
        if (g.a >= operandSpace || g.b >= operandSpace) return std::nullopt;
    }
    std::uint32_t outputCount = 0;
    if (!in.u32(outputCount) || outputCount != static_cast<std::uint32_t>(params.outputs))
        return std::nullopt;
    std::vector<std::uint16_t> outputs(outputCount);
    const std::uint32_t nodeSpace = static_cast<std::uint32_t>(params.inputs + params.cells);
    for (std::uint32_t o = 0; o < outputCount; ++o)
        if (!in.u16(outputs[o]) || outputs[o] >= nodeSpace) return std::nullopt;
    return CgpGenome(params, std::move(genes), std::move(outputs));
}

void CgpGenome::mutate(int count, util::Rng& rng) {
    // Gene space: per cell (function, a, b) plus the output genes.
    const std::size_t geneSpace = genes_.size() * 3 + outputGenes_.size();
    for (int m = 0; m < count; ++m) {
        const std::size_t pick = rng.index(geneSpace);
        if (pick < genes_.size() * 3) {
            const std::size_t cell = pick / 3;
            Gene& g = genes_[cell];
            switch (pick % 3) {
                case 0: g.function = static_cast<std::uint8_t>(rng.index(params_.functions.size())); break;
                case 1: g.a = randomOperand(static_cast<int>(cell), rng); break;
                default: g.b = randomOperand(static_cast<int>(cell), rng); break;
            }
        } else {
            outputGenes_[pick - genes_.size() * 3] =
                static_cast<std::uint16_t>(rng.index(static_cast<std::size_t>(nodeSpace())));
        }
    }
}

std::vector<bool> CgpGenome::activeMask() const {
    std::vector<bool> active(static_cast<std::size_t>(nodeSpace()), false);
    for (std::uint16_t out : outputGenes_) active[out] = true;
    for (int i = params_.cells - 1; i >= 0; --i) {
        const std::size_t node = static_cast<std::size_t>(params_.inputs + i);
        if (!active[node]) continue;
        const Gene& g = genes_[static_cast<std::size_t>(i)];
        active[g.a] = true;
        if (circuit::fanInCount(params_.functions[g.function]) >= 2) active[g.b] = true;
    }
    return active;
}

int CgpGenome::activeCells() const {
    const std::vector<bool> active = activeMask();
    int count = 0;
    for (int i = 0; i < params_.cells; ++i)
        if (active[static_cast<std::size_t>(params_.inputs + i)]) ++count;
    return count;
}

Netlist CgpGenome::decode() const {
    const std::vector<bool> active = activeMask();
    Netlist net("cgp");
    std::vector<NodeId> map(static_cast<std::size_t>(nodeSpace()), circuit::kInvalidNode);
    for (int i = 0; i < params_.inputs; ++i) map[static_cast<std::size_t>(i)] = net.addInput();
    for (int i = 0; i < params_.cells; ++i) {
        const std::size_t node = static_cast<std::size_t>(params_.inputs + i);
        if (!active[node]) continue;
        const Gene& g = genes_[static_cast<std::size_t>(i)];
        const GateKind kind = params_.functions[g.function];
        if (circuit::fanInCount(kind) >= 2)
            map[node] = net.addGate(kind, map[g.a], map[g.b]);
        else
            map[node] = net.addGate(kind, map[g.a]);
    }
    for (std::uint16_t out : outputGenes_) net.markOutput(map[out]);
    return net;
}

void CgpSearchProblem::evaluate(std::span<const CgpGenome> batch,
                                std::span<search::Objectives> out) const {
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const circuit::Netlist netlist = batch[i].decode();
        const error::ErrorReport report =
            error::analyzeError(netlist, signature_, fitnessConfig_);
        if (resilience_) {
            const fault::ResilienceReport rr =
                fault::analyzeResilience(netlist, signature_, *resilience_);
            out[i] = search::Objectives{report.med,
                                        static_cast<double>(batch[i].activeCells()),
                                        rr.meanMedUnderFault};
        } else {
            out[i] = search::Objectives{report.med,
                                        static_cast<double>(batch[i].activeCells())};
        }
    }
}

CgpEvolver::CgpEvolver(circuit::ArithSignature signature, Options options)
    : signature_(signature), options_(options) {}

std::vector<CgpHarvest> CgpEvolver::run(const Netlist& seedNetlist) {
    util::Rng rng(options_.seed);
    CgpGenome parent = CgpGenome::seedFromNetlist(
        seedNetlist, std::max(8, static_cast<int>(seedNetlist.gateCount()) / 5), rng);

    const auto fitness = [this](const CgpGenome& genome) {
        return error::analyzeError(genome.decode(), signature_, options_.fitnessConfig);
    };

    error::ErrorReport parentError = fitness(parent);
    int parentCost = parent.activeCells();

    std::vector<CgpHarvest> harvest;
    std::unordered_set<std::uint64_t> seen;
    const auto harvestIfNovel = [&](const CgpGenome& genome, int generation) {
        Netlist netlist = circuit::simplify(genome.decode());
        const std::uint64_t hash = netlist.structuralHash();
        if (!seen.insert(hash).second) return;
        // Harvested circuits get the accurate (reporting-grade) profile.
        error::ErrorReport report =
            error::analyzeError(netlist, signature_, options_.reportConfig);
        harvest.push_back(CgpHarvest{std::move(netlist), report, generation});
    };
    harvestIfNovel(parent, 0);

    std::vector<CgpGenome> children;
    std::vector<error::ErrorReport> childErrors;
    for (int gen = 1; gen <= options_.generations; ++gen) {
        // Mutation draws stay on the single generation RNG (serial, same
        // stream as a fully serial run); only the fitness evaluations —
        // the expensive, RNG-free part — fan out over the pool.
        children.clear();
        children.reserve(static_cast<std::size_t>(options_.lambda));
        for (int k = 0; k < options_.lambda; ++k) {
            CgpGenome child = parent;
            child.mutate(options_.mutatedGenes, rng);
            children.push_back(std::move(child));
        }
        childErrors.assign(children.size(), error::ErrorReport{});
        util::ThreadPool::global().parallelFor(
            children.size(), [&](std::size_t k) { childErrors[k] = fitness(children[k]); });

        // Selection scans offspring in index order, exactly as the serial
        // loop did, so results are independent of evaluation scheduling.
        CgpGenome bestChild = parent;
        error::ErrorReport bestChildError = parentError;
        int bestChildCost = parentCost;
        bool improved = false;
        for (std::size_t k = 0; k < children.size(); ++k) {
            const error::ErrorReport& err = childErrors[k];
            if (err.med > options_.medBudget) continue;
            const int cost = children[k].activeCells();
            // Neutral moves (equal cost) are accepted — they drive the walk
            // across plateaus and each novel plateau point is harvested.
            if (cost <= bestChildCost) {
                bestChild = std::move(children[k]);
                bestChildError = err;
                bestChildCost = cost;
                improved = true;
            }
        }
        if (improved) {
            parent = std::move(bestChild);
            parentError = bestChildError;
            parentCost = bestChildCost;
            harvestIfNovel(parent, gen);
        }
    }
    return harvest;
}

}  // namespace axf::gen
