#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include <span>

#include "src/circuit/arith.hpp"
#include "src/circuit/netlist.hpp"
#include "src/error/error_metrics.hpp"
#include "src/fault/fault.hpp"
#include "src/search/objectives.hpp"
#include "src/util/bytes.hpp"
#include "src/util/rng.hpp"

namespace axf::gen {

/// Cartesian Genetic Programming over the two-input gate alphabet — the
/// same representation EvoApproxLib was evolved with (single-row CGP,
/// unrestricted levels-back).  Used here to grow the heterogeneous library
/// of approximate adders/multipliers the ApproxFPGAs study explores.
struct CgpParams {
    int inputs = 0;
    int outputs = 0;
    int cells = 0;  ///< single-row grid length (function nodes)
    std::vector<circuit::GateKind> functions = defaultFunctionSet();

    static std::vector<circuit::GateKind> defaultFunctionSet();
};

/// Linear CGP chromosome.  Cell i may reference primary inputs or any cell
/// j < i (full levels-back), so decoding is a single forward sweep.
class CgpGenome {
public:
    struct Gene {
        std::uint8_t function = 0;  ///< index into params.functions
        std::uint16_t a = 0;        ///< operand node index
        std::uint16_t b = 0;

        friend bool operator==(const Gene&, const Gene&) = default;
    };

    CgpGenome(CgpParams params, util::Rng& rng);  ///< random individual

    /// Embeds an existing netlist (two-input gates only) as the genome
    /// prefix; remaining cells are randomized.  Throws if the netlist does
    /// not fit (too many gates / wrong interface / 3-input gates).
    static CgpGenome seedFromNetlist(const circuit::Netlist& netlist, int extraCells,
                                     util::Rng& rng);

    /// Point-mutates `count` uniformly chosen genes (function, operand or
    /// output gene, like classic CGP goldman mutation).
    void mutate(int count, util::Rng& rng);

    /// Single-point crossover over the flattened (cell genes + output
    /// genes) chromosome: the child takes `a`'s genes before a uniformly
    /// chosen cut and `b`'s from it on.  Both parents must share the same
    /// geometry AND function set (throws std::invalid_argument otherwise
    /// — gene.function indices are only meaningful within one alphabet);
    /// operand ranges are position-dependent only, so any cut stays
    /// structurally valid.
    static CgpGenome crossover(const CgpGenome& a, const CgpGenome& b, util::Rng& rng);

    /// Genome identity: same geometry, function alphabet and chromosome
    /// (the search archives deduplicate on this).
    friend bool operator==(const CgpGenome& a, const CgpGenome& b) {
        return a.genes_ == b.genes_ && a.outputGenes_ == b.outputGenes_ &&
               a.params_.inputs == b.params_.inputs &&
               a.params_.outputs == b.params_.outputs &&
               a.params_.functions == b.params_.functions;
    }

    /// Checkpoint encoding of the chromosome alone — geometry and function
    /// alphabet come from the owning problem's `CgpParams`, not the file
    /// (every genome of one search shares them).
    void serialize(util::ByteWriter& out) const;

    /// Decodes a chromosome written by `serialize` for the given geometry;
    /// nullopt on truncation or any constraint violation (function index
    /// outside the alphabet, operand breaking the levels-back order,
    /// output gene outside the node space).
    static std::optional<CgpGenome> deserialize(util::ByteReader& in, const CgpParams& params);

    /// Decodes the active cone into a netlist (inactive cells skipped).
    circuit::Netlist decode() const;

    /// Number of active (output-reachable) cells.
    int activeCells() const;

    const CgpParams& params() const { return params_; }

private:
    /// Checkpoint-restore path: adopts a validated chromosome verbatim.
    CgpGenome(CgpParams params, std::vector<Gene> genes, std::vector<std::uint16_t> outputGenes)
        : params_(std::move(params)), genes_(std::move(genes)),
          outputGenes_(std::move(outputGenes)) {}

    CgpParams params_;
    std::vector<Gene> genes_;
    std::vector<std::uint16_t> outputGenes_;

    int nodeSpace() const { return params_.inputs + params_.cells; }
    std::uint16_t randomOperand(int cellIndex, util::Rng& rng) const;
    std::vector<bool> activeMask() const;
};

/// One harvested point of an evolutionary run.
struct CgpHarvest {
    circuit::Netlist netlist;       ///< decoded, simplified
    error::ErrorReport error;       ///< against the run's signature
    int generation = 0;
};

/// (1 + lambda) evolution strategy minimizing active-cell count subject to
/// a MED budget.  Every accepted, structurally novel individual is
/// harvested, which is how a single run yields a whole family of library
/// circuits (mirroring how EvoApproxLib snapshots its Pareto archive).
class CgpEvolver {
public:
    struct Options {
        double medBudget = 0.01;   ///< accept offspring with MED <= budget
        int lambda = 4;
        int generations = 300;
        int mutatedGenes = 4;
        std::uint64_t seed = 1;
        /// Fitness-evaluation policy: sampled and cheap (evolution runs
        /// thousands of evaluations; sampling noise only perturbs the walk).
        error::ErrorAnalysisConfig fitnessConfig{/*exhaustiveLimit=*/1u << 12,
                                                 /*sampleCount=*/1u << 13,
                                                 /*seed=*/0xF17};
        /// Reporting policy applied once per harvested circuit.
        error::ErrorAnalysisConfig reportConfig{};
    };

    CgpEvolver(circuit::ArithSignature signature, Options options);

    /// Runs evolution from the seed netlist; returns all harvested circuits
    /// (deduplicated by structural hash) sorted by generation.
    std::vector<CgpHarvest> run(const circuit::Netlist& seedNetlist);

private:
    circuit::ArithSignature signature_;
    Options options_;
};

/// The CGP offspring loop adapted to the `search::Problem` concept — the
/// proof that the island engine is workload-agnostic: the same
/// `search::IslandSearch` that drives the accelerator DSE explores the
/// (MED, active-cell) trade-off of approximate circuits.  Objectives are
/// `{med, activeCells}` (both minimized), so the archive IS the
/// error/size Pareto family a library build harvests.  An optional
/// stuck-at campaign (`setResilienceObjective`) appends mean
/// error-under-fault as a third objective, turning the archive into a
/// quality x size x resilience front.  All genomes share this problem's
/// geometry (`params`); fitness evaluation uses the sampled, cheap
/// error-analysis profile exactly like `CgpEvolver` and is const,
/// RNG-free and thread-safe.
class CgpSearchProblem {
public:
    using Genome = CgpGenome;

    CgpSearchProblem(circuit::ArithSignature signature, CgpParams params,
                     error::ErrorAnalysisConfig fitnessConfig = {/*exhaustiveLimit=*/1u << 12,
                                                                /*sampleCount=*/1u << 13,
                                                                /*seed=*/0xF17},
                     int mutatedGenes = 4)
        : signature_(signature), params_(std::move(params)),
          fitnessConfig_(fitnessConfig), mutatedGenes_(mutatedGenes) {}

    std::size_t objectiveCount() const { return resilience_ ? 3 : 2; }

    /// Enables the resilience objective: every evaluation additionally
    /// runs a stuck-at campaign with this configuration and appends the
    /// circuit's `meanMedUnderFault`.  Keep the embedded analysis budget
    /// modest (campaign cost scales with fault-site count).
    void setResilienceObjective(fault::CampaignConfig campaign) {
        resilience_ = std::move(campaign);
    }

    CgpGenome random(util::Rng& rng) const { return CgpGenome(params_, rng); }

    CgpGenome mutate(const CgpGenome& genome, util::Rng& rng) const {
        CgpGenome child = genome;
        child.mutate(mutatedGenes_, rng);
        return child;
    }

    CgpGenome crossover(const CgpGenome& a, const CgpGenome& b, util::Rng& rng) const {
        return CgpGenome::crossover(a, b, rng);
    }

    void evaluate(std::span<const CgpGenome> batch, std::span<search::Objectives> out) const;

    /// Checkpoint hooks (`search::CheckpointableProblem`): the problem owns
    /// the shared geometry, so only the chromosome travels per genome.
    void serializeGenome(const CgpGenome& genome, util::ByteWriter& out) const {
        genome.serialize(out);
    }

    std::optional<CgpGenome> deserializeGenome(util::ByteReader& in) const {
        return CgpGenome::deserialize(in, params_);
    }

    const CgpParams& params() const { return params_; }

private:
    circuit::ArithSignature signature_;
    CgpParams params_;
    error::ErrorAnalysisConfig fitnessConfig_;
    int mutatedGenes_;
    std::optional<fault::CampaignConfig> resilience_;
};

}  // namespace axf::gen
