#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/circuit/arith.hpp"
#include "src/circuit/netlist.hpp"
#include "src/error/error_metrics.hpp"
#include "src/util/rng.hpp"

namespace axf::gen {

/// Cartesian Genetic Programming over the two-input gate alphabet — the
/// same representation EvoApproxLib was evolved with (single-row CGP,
/// unrestricted levels-back).  Used here to grow the heterogeneous library
/// of approximate adders/multipliers the ApproxFPGAs study explores.
struct CgpParams {
    int inputs = 0;
    int outputs = 0;
    int cells = 0;  ///< single-row grid length (function nodes)
    std::vector<circuit::GateKind> functions = defaultFunctionSet();

    static std::vector<circuit::GateKind> defaultFunctionSet();
};

/// Linear CGP chromosome.  Cell i may reference primary inputs or any cell
/// j < i (full levels-back), so decoding is a single forward sweep.
class CgpGenome {
public:
    struct Gene {
        std::uint8_t function = 0;  ///< index into params.functions
        std::uint16_t a = 0;        ///< operand node index
        std::uint16_t b = 0;
    };

    CgpGenome(CgpParams params, util::Rng& rng);  ///< random individual

    /// Embeds an existing netlist (two-input gates only) as the genome
    /// prefix; remaining cells are randomized.  Throws if the netlist does
    /// not fit (too many gates / wrong interface / 3-input gates).
    static CgpGenome seedFromNetlist(const circuit::Netlist& netlist, int extraCells,
                                     util::Rng& rng);

    /// Point-mutates `count` uniformly chosen genes (function, operand or
    /// output gene, like classic CGP goldman mutation).
    void mutate(int count, util::Rng& rng);

    /// Decodes the active cone into a netlist (inactive cells skipped).
    circuit::Netlist decode() const;

    /// Number of active (output-reachable) cells.
    int activeCells() const;

    const CgpParams& params() const { return params_; }

private:
    CgpParams params_;
    std::vector<Gene> genes_;
    std::vector<std::uint16_t> outputGenes_;

    int nodeSpace() const { return params_.inputs + params_.cells; }
    std::uint16_t randomOperand(int cellIndex, util::Rng& rng) const;
    std::vector<bool> activeMask() const;
};

/// One harvested point of an evolutionary run.
struct CgpHarvest {
    circuit::Netlist netlist;       ///< decoded, simplified
    error::ErrorReport error;       ///< against the run's signature
    int generation = 0;
};

/// (1 + lambda) evolution strategy minimizing active-cell count subject to
/// a MED budget.  Every accepted, structurally novel individual is
/// harvested, which is how a single run yields a whole family of library
/// circuits (mirroring how EvoApproxLib snapshots its Pareto archive).
class CgpEvolver {
public:
    struct Options {
        double medBudget = 0.01;   ///< accept offspring with MED <= budget
        int lambda = 4;
        int generations = 300;
        int mutatedGenes = 4;
        std::uint64_t seed = 1;
        /// Fitness-evaluation policy: sampled and cheap (evolution runs
        /// thousands of evaluations; sampling noise only perturbs the walk).
        error::ErrorAnalysisConfig fitnessConfig{/*exhaustiveLimit=*/1u << 12,
                                                 /*sampleCount=*/1u << 13,
                                                 /*seed=*/0xF17};
        /// Reporting policy applied once per harvested circuit.
        error::ErrorAnalysisConfig reportConfig{};
    };

    CgpEvolver(circuit::ArithSignature signature, Options options);

    /// Runs evolution from the seed netlist; returns all harvested circuits
    /// (deduplicated by structural hash) sorted by generation.
    std::vector<CgpHarvest> run(const circuit::Netlist& seedNetlist);

private:
    circuit::ArithSignature signature_;
    Options options_;
};

}  // namespace axf::gen
