#include "src/gen/adders.hpp"

#include <stdexcept>
#include <string>

#include "src/gen/bitvec.hpp"

namespace axf::gen {

using circuit::GateKind;
using circuit::kInvalidNode;
using circuit::Netlist;
using circuit::NodeId;

namespace {

void checkWidth(int n) {
    if (n < 2 || n > 30) throw std::invalid_argument("adder width must be in [2, 30]");
}

struct PG {
    Bits p;  ///< propagate a^b
    Bits g;  ///< generate a&b
};

PG propagateGenerate(Netlist& net, const Bits& a, const Bits& b) {
    PG pg;
    pg.p.reserve(a.size());
    pg.g.reserve(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        pg.p.push_back(net.addGate(GateKind::Xor, a[i], b[i]));
        pg.g.push_back(net.addGate(GateKind::And, a[i], b[i]));
    }
    return pg;
}

void markOutputs(Netlist& net, const Bits& bits) {
    for (NodeId bit : bits) net.markOutput(bit);
}

}  // namespace

circuit::Netlist rippleCarryAdder(int n) {
    checkWidth(n);
    Netlist net("add" + std::to_string(n) + "_rca");
    const Bits a = addOperand(net, n);
    const Bits b = addOperand(net, n);
    markOutputs(net, rippleSum(net, a, b));
    return net;
}

circuit::Netlist carryLookaheadAdder(int n, int groupSize) {
    checkWidth(n);
    if (groupSize < 2) throw std::invalid_argument("CLA group size must be >= 2");
    Netlist net("add" + std::to_string(n) + "_cla" + std::to_string(groupSize));
    const Bits a = addOperand(net, n);
    const Bits b = addOperand(net, n);
    const PG pg = propagateGenerate(net, a, b);

    Bits sum(static_cast<std::size_t>(n));
    NodeId carryIn = net.addConst(false);
    for (int base = 0; base < n; base += groupSize) {
        const int limit = std::min(n, base + groupSize);
        // Within the group, expand c_{i+1} = g_i | p_i (g_{i-1} | ... | p.. c_in)
        // as a flattened AND/OR tree anchored on the group carry-in.
        NodeId carry = carryIn;
        for (int i = base; i < limit; ++i) {
            sum[static_cast<std::size_t>(i)] =
                net.addGate(GateKind::Xor, pg.p[static_cast<std::size_t>(i)], carry);
            // c_{i+1} = g_i | (p_i & c_i), with the AND term expanded from
            // the group entry point so the carry tree is lookahead-shaped.
            NodeId term = net.addGate(GateKind::And, pg.p[static_cast<std::size_t>(i)], carry);
            carry = net.addGate(GateKind::Or, pg.g[static_cast<std::size_t>(i)], term);
        }
        carryIn = carry;
    }
    sum.push_back(carryIn);
    markOutputs(net, sum);
    return net;
}

circuit::Netlist carrySelectAdder(int n, int blockSize) {
    checkWidth(n);
    if (blockSize < 1) throw std::invalid_argument("carry-select block size must be >= 1");
    Netlist net("add" + std::to_string(n) + "_csel" + std::to_string(blockSize));
    const Bits a = addOperand(net, n);
    const Bits b = addOperand(net, n);

    Bits sum;
    sum.reserve(static_cast<std::size_t>(n) + 1);
    NodeId carry = net.addConst(false);
    for (int base = 0; base < n; base += blockSize) {
        const int limit = std::min(n, base + blockSize);
        const int len = limit - base;
        const Bits subA(a.begin() + base, a.begin() + limit);
        const Bits subB(b.begin() + base, b.begin() + limit);
        if (base == 0) {
            const Bits s = rippleSum(net, subA, subB);
            for (int i = 0; i < len; ++i) sum.push_back(s[static_cast<std::size_t>(i)]);
            carry = s.back();
        } else {
            const NodeId zero = net.addConst(false);
            const NodeId one = net.addConst(true);
            const Bits s0 = rippleSum(net, subA, subB, zero);
            const Bits s1 = rippleSum(net, subA, subB, one);
            for (int i = 0; i < len; ++i)
                sum.push_back(net.addGate(GateKind::Mux, s0[static_cast<std::size_t>(i)],
                                          s1[static_cast<std::size_t>(i)], carry));
            carry = net.addGate(GateKind::Mux, s0.back(), s1.back(), carry);
        }
    }
    sum.push_back(carry);
    markOutputs(net, sum);
    return net;
}

circuit::Netlist koggeStoneAdder(int n) {
    checkWidth(n);
    Netlist net("add" + std::to_string(n) + "_ks");
    const Bits a = addOperand(net, n);
    const Bits b = addOperand(net, n);
    const PG pg = propagateGenerate(net, a, b);

    // Parallel-prefix: after the sweep, G[i] is the carry out of bit i.
    Bits g = pg.g;
    Bits p = pg.p;
    for (int dist = 1; dist < n; dist *= 2) {
        Bits g2 = g;
        Bits p2 = p;
        for (int i = dist; i < n; ++i) {
            const auto idx = static_cast<std::size_t>(i);
            const auto prev = static_cast<std::size_t>(i - dist);
            const NodeId t = net.addGate(GateKind::And, p[idx], g[prev]);
            g2[idx] = net.addGate(GateKind::Or, g[idx], t);
            p2[idx] = net.addGate(GateKind::And, p[idx], p[prev]);
        }
        g = std::move(g2);
        p = std::move(p2);
    }

    Bits sum(static_cast<std::size_t>(n) + 1);
    sum[0] = pg.p[0];
    for (int i = 1; i < n; ++i)
        sum[static_cast<std::size_t>(i)] = net.addGate(
            GateKind::Xor, pg.p[static_cast<std::size_t>(i)], g[static_cast<std::size_t>(i - 1)]);
    sum[static_cast<std::size_t>(n)] = g[static_cast<std::size_t>(n - 1)];
    markOutputs(net, sum);
    return net;
}

namespace {

/// Shared shape of the "approximate low part + exact upper ripple" family.
/// `lowBit(i)` emits the approximate sum bit; `carrySeed` provides the carry
/// entering the exact upper part.
template <typename LowBitFn, typename CarrySeedFn>
Netlist splitAdder(const std::string& name, int n, int approxBits, LowBitFn lowBit,
                   CarrySeedFn carrySeed) {
    checkWidth(n);
    if (approxBits < 0 || approxBits > n)
        throw std::invalid_argument("approxBits out of range");
    Netlist net(name);
    const Bits a = addOperand(net, n);
    const Bits b = addOperand(net, n);

    Bits sum;
    sum.reserve(static_cast<std::size_t>(n) + 1);
    for (int i = 0; i < approxBits; ++i) sum.push_back(lowBit(net, a, b, i));

    const Bits subA(a.begin() + approxBits, a.end());
    const Bits subB(b.begin() + approxBits, b.end());
    if (subA.empty()) {
        sum.push_back(carrySeed(net, a, b));
    } else {
        const Bits upper = rippleSum(net, subA, subB, carrySeed(net, a, b));
        sum.insert(sum.end(), upper.begin(), upper.end());
    }
    markOutputs(net, sum);
    return net;
}

}  // namespace

circuit::Netlist loaAdder(int n, int approxBits) {
    const std::string name =
        "add" + std::to_string(n) + "_loa" + std::to_string(approxBits);
    return splitAdder(
        name, n, approxBits,
        [](Netlist& net, const Bits& a, const Bits& b, int i) {
            return net.addGate(GateKind::Or, a[static_cast<std::size_t>(i)],
                               b[static_cast<std::size_t>(i)]);
        },
        [approxBits](Netlist& net, const Bits& a, const Bits& b) -> NodeId {
            if (approxBits == 0) return net.addConst(false);
            // LOA seeds the exact part with the AND of the top approximate bits.
            const auto top = static_cast<std::size_t>(approxBits - 1);
            return net.addGate(GateKind::And, a[top], b[top]);
        });
}

circuit::Netlist truncatedAdder(int n, int approxBits) {
    const std::string name =
        "add" + std::to_string(n) + "_tru" + std::to_string(approxBits);
    return splitAdder(
        name, n, approxBits,
        [](Netlist& net, const Bits& a, const Bits&, int i) {
            return net.addGate(GateKind::Buf, a[static_cast<std::size_t>(i)]);
        },
        [](Netlist& net, const Bits&, const Bits&) { return net.addConst(false); });
}

circuit::Netlist etaAdder(int n, int approxBits) {
    const std::string name =
        "add" + std::to_string(n) + "_eta" + std::to_string(approxBits);
    return splitAdder(
        name, n, approxBits,
        [](Netlist& net, const Bits& a, const Bits& b, int i) {
            return net.addGate(GateKind::Xor, a[static_cast<std::size_t>(i)],
                               b[static_cast<std::size_t>(i)]);
        },
        [](Netlist& net, const Bits&, const Bits&) { return net.addConst(false); });
}

circuit::Netlist acaAdder(int n, int window) {
    checkWidth(n);
    if (window < 1) throw std::invalid_argument("ACA window must be >= 1");
    Netlist net("add" + std::to_string(n) + "_aca" + std::to_string(window));
    const Bits a = addOperand(net, n);
    const Bits b = addOperand(net, n);
    const PG pg = propagateGenerate(net, a, b);

    // Carry into bit i is speculated by rippling c = g | p&c over the last
    // `window` positions only, starting from zero.  Exact when window >= n.
    const auto speculativeCarry = [&](int i) -> NodeId {
        NodeId carry = net.addConst(false);
        for (int j = std::max(0, i - window); j < i; ++j) {
            const auto idx = static_cast<std::size_t>(j);
            const NodeId t = net.addGate(GateKind::And, pg.p[idx], carry);
            carry = net.addGate(GateKind::Or, pg.g[idx], t);
        }
        return carry;
    };

    Bits sum(static_cast<std::size_t>(n) + 1);
    for (int i = 0; i < n; ++i)
        sum[static_cast<std::size_t>(i)] =
            net.addGate(GateKind::Xor, pg.p[static_cast<std::size_t>(i)], speculativeCarry(i));
    sum[static_cast<std::size_t>(n)] = speculativeCarry(n);
    markOutputs(net, sum);
    return net;
}

circuit::Netlist gearAdder(int n, int resultBits, int predictionBits) {
    checkWidth(n);
    if (resultBits < 1 || predictionBits < 0 || resultBits + predictionBits > n)
        throw std::invalid_argument("gearAdder: need 1 <= R and R+P <= n");
    Netlist net("add" + std::to_string(n) + "_gear_r" + std::to_string(resultBits) + "p" +
                std::to_string(predictionBits));
    const Bits a = addOperand(net, n);
    const Bits b = addOperand(net, n);

    // Rippling a sub-window [base, limit) from carry 0; returns the window's
    // sum bits and carry-out.
    const auto subAdder = [&](int base, int limit) {
        const Bits subA(a.begin() + base, a.begin() + limit);
        const Bits subB(b.begin() + base, b.begin() + limit);
        return rippleSum(net, subA, subB);  // width (limit-base)+1
    };

    Bits sum(static_cast<std::size_t>(n) + 1, circuit::kInvalidNode);
    // First sub-adder yields result bits [0, R+P).
    const int first = std::min(n, resultBits + predictionBits);
    Bits window = subAdder(0, first);
    for (int i = 0; i < first; ++i) sum[static_cast<std::size_t>(i)] = window[static_cast<std::size_t>(i)];
    NodeId lastCarry = window.back();
    // Each further sub-adder re-computes P prediction bits and contributes R
    // new result bits.
    for (int pos = first; pos < n; pos += resultBits) {
        const int base = pos - predictionBits;
        const int limit = std::min(n, base + resultBits + predictionBits);
        window = subAdder(base, limit);
        for (int i = pos; i < limit; ++i)
            sum[static_cast<std::size_t>(i)] = window[static_cast<std::size_t>(i - base)];
        lastCarry = window.back();
    }
    sum[static_cast<std::size_t>(n)] = lastCarry;
    markOutputs(net, sum);
    return net;
}

circuit::Netlist etaIIAdder(int n, int blockSize) {
    checkWidth(n);
    if (blockSize < 1 || blockSize > n) throw std::invalid_argument("etaIIAdder: bad block size");
    Netlist net("add" + std::to_string(n) + "_eta2_b" + std::to_string(blockSize));
    const Bits a = addOperand(net, n);
    const Bits b = addOperand(net, n);

    // Carry-out of block [base, limit) assuming zero carry-in.
    const auto blockCarry = [&](int base, int limit) {
        NodeId carry = net.addConst(false);
        for (int i = base; i < limit; ++i)
            carry = net.addGate(GateKind::Maj, a[static_cast<std::size_t>(i)],
                                b[static_cast<std::size_t>(i)], carry);
        return carry;
    };

    Bits sum(static_cast<std::size_t>(n) + 1, circuit::kInvalidNode);
    NodeId carryIn = net.addConst(false);
    for (int base = 0; base < n; base += blockSize) {
        const int limit = std::min(n, base + blockSize);
        const Bits subA(a.begin() + base, a.begin() + limit);
        const Bits subB(b.begin() + base, b.begin() + limit);
        const Bits s = rippleSum(net, subA, subB, carryIn);
        for (int i = base; i < limit; ++i)
            sum[static_cast<std::size_t>(i)] = s[static_cast<std::size_t>(i - base)];
        if (limit == n) sum[static_cast<std::size_t>(n)] = s.back();
        // ETA-II: the next block sees only the carry *generated within this
        // block from zero carry-in* (the chain is cut at block boundaries).
        carryIn = blockCarry(base, limit);
    }
    markOutputs(net, sum);
    return net;
}

const char* approxFaKindName(ApproxFaKind kind) {
    switch (kind) {
        case ApproxFaKind::PassA: return "passa";
        case ApproxFaKind::OrSum: return "orsum";
        case ApproxFaKind::XorNoCarry: return "xornc";
        case ApproxFaKind::CarrySkip: return "cskip";
    }
    return "?";
}

circuit::Netlist approxCellAdder(int n, int approxBits, ApproxFaKind kind) {
    checkWidth(n);
    if (approxBits < 0 || approxBits > n)
        throw std::invalid_argument("approxBits out of range");
    Netlist net("add" + std::to_string(n) + "_afa_" + approxFaKindName(kind) + "_" +
                std::to_string(approxBits));
    const Bits a = addOperand(net, n);
    const Bits b = addOperand(net, n);

    Bits sum;
    sum.reserve(static_cast<std::size_t>(n) + 1);
    NodeId carry = net.addConst(false);
    for (int i = 0; i < approxBits; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        switch (kind) {
            case ApproxFaKind::PassA:
                sum.push_back(net.addGate(GateKind::Buf, a[idx]));
                carry = net.addGate(GateKind::Buf, b[idx]);
                break;
            case ApproxFaKind::OrSum: {
                const NodeId ab = net.addGate(GateKind::Or, a[idx], b[idx]);
                sum.push_back(net.addGate(GateKind::Or, ab, carry));
                carry = net.addGate(GateKind::And, a[idx], b[idx]);
                break;
            }
            case ApproxFaKind::XorNoCarry:
                sum.push_back(net.addGate(GateKind::Xor, a[idx], b[idx]));
                // carry passes through unchanged (chain bypass)
                break;
            case ApproxFaKind::CarrySkip: {
                const NodeId axb = net.addGate(GateKind::Xor, a[idx], b[idx]);
                sum.push_back(net.addGate(GateKind::Xor, axb, carry));
                carry = net.addGate(GateKind::Buf, a[idx]);
                break;
            }
        }
    }
    const Bits subA(a.begin() + approxBits, a.end());
    const Bits subB(b.begin() + approxBits, b.end());
    if (subA.empty()) {
        sum.push_back(carry);
    } else {
        const Bits upper = rippleSum(net, subA, subB, carry);
        sum.insert(sum.end(), upper.begin(), upper.end());
    }
    for (NodeId bit : sum) net.markOutput(bit);
    return net;
}

}  // namespace axf::gen
