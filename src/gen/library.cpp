#include "src/gen/library.hpp"

#include <algorithm>
#include <unordered_set>

#include "src/circuit/transform.hpp"
#include "src/gen/adders.hpp"
#include "src/gen/cgp.hpp"
#include "src/gen/multipliers.hpp"

namespace axf::gen {

using circuit::ArithOp;
using circuit::ArithSignature;
using circuit::Netlist;

circuit::ArithSignature librarySignature(const LibraryConfig& config) {
    return ArithSignature{config.op, config.width, config.width};
}

namespace {

/// Accumulates circuits, deduplicating by structural hash.
class LibraryAccumulator {
public:
    LibraryAccumulator(ArithSignature sig, const error::ErrorAnalysisConfig& errorConfig)
        : sig_(sig), errorConfig_(errorConfig) {}

    void add(Netlist netlist, const std::string& origin) {
        Netlist simplified = circuit::simplify(netlist);
        if (!seen_.insert(simplified.structuralHash()).second) return;
        LibraryCircuit entry;
        entry.name = simplified.name();
        entry.origin = origin;
        entry.error = error::analyzeError(simplified, sig_, errorConfig_);
        entry.netlist = std::move(simplified);
        entry.signature = sig_;
        library_.push_back(std::move(entry));
    }

    /// CGP harvests already carry simplified netlists and error reports.
    void addHarvest(CgpHarvest harvest, const std::string& name, const std::string& origin) {
        if (!seen_.insert(harvest.netlist.structuralHash()).second) return;
        LibraryCircuit entry;
        entry.name = name;
        entry.origin = origin;
        entry.netlist = std::move(harvest.netlist);
        entry.netlist.setName(entry.name);
        entry.signature = sig_;
        entry.error = harvest.error;
        library_.push_back(std::move(entry));
    }

    AcLibrary take() { return std::move(library_); }

private:
    ArithSignature sig_;
    error::ErrorAnalysisConfig errorConfig_;
    AcLibrary library_;
    std::unordered_set<std::uint64_t> seen_;
};

void addAdderFamilies(LibraryAccumulator& acc, int n) {
    acc.add(rippleCarryAdder(n), "exact_rca");
    acc.add(carryLookaheadAdder(n), "exact_cla");
    acc.add(carrySelectAdder(n, 2), "exact_csel");
    acc.add(carrySelectAdder(n, 4), "exact_csel");
    acc.add(koggeStoneAdder(n), "exact_ks");
    for (int k = 1; k < n; ++k) {
        acc.add(loaAdder(n, k), "loa");
        acc.add(truncatedAdder(n, k), "trunc");
        acc.add(etaAdder(n, k), "eta");
    }
    for (int w = 1; w < n; ++w) acc.add(acaAdder(n, w), "aca");
    for (int r = 1; r <= n / 2; ++r)
        for (int p = 0; p <= n / 2 && r + p <= n; p += 2) acc.add(gearAdder(n, r, p), "gear");
    for (int blk = 1; blk < n; ++blk) acc.add(etaIIAdder(n, blk), "eta2");
    for (const ApproxFaKind kind : {ApproxFaKind::PassA, ApproxFaKind::OrSum,
                                    ApproxFaKind::XorNoCarry, ApproxFaKind::CarrySkip})
        for (int k = 1; k < n; ++k) acc.add(approxCellAdder(n, k, kind), "afa");
}

void addMultiplierFamilies(LibraryAccumulator& acc, int n) {
    acc.add(arrayMultiplier(n), "exact_array");
    acc.add(wallaceMultiplier(n), "exact_wallace");
    for (int t = 1; t <= n; ++t) acc.add(truncatedMultiplier(n, t), "trunc");
    for (int h = 0; h <= n; h += 1)
        for (int v = 0; v <= n / 2; ++v)
            if (h + v > 0) acc.add(brokenArrayMultiplier(n, h, v), "bam");
    if ((n & (n - 1)) == 0) acc.add(kulkarniMultiplier(n), "kulkarni");
    for (int c = 1; c <= n; ++c) acc.add(approxCompressorMultiplier(n, c), "cmp");
    for (int k = 2; k < n; ++k) acc.add(drumMultiplier(n, k), "drum");
    if (n >= 3) acc.add(mitchellMultiplier(n), "mitchell");
}

Netlist cgpSeed(const LibraryConfig& config, int which) {
    if (config.op == ArithOp::Adder)
        return which == 0 ? rippleCarryAdder(config.width) : carryLookaheadAdder(config.width);
    return which == 0 ? wallaceMultiplier(config.width) : arrayMultiplier(config.width);
}

}  // namespace

AcLibrary buildStructuralFamilies(const LibraryConfig& config) {
    LibraryAccumulator acc(librarySignature(config), config.errorConfig);
    if (config.op == ArithOp::Adder)
        addAdderFamilies(acc, config.width);
    else
        addMultiplierFamilies(acc, config.width);
    return acc.take();
}

AcLibrary buildLibrary(const LibraryConfig& config) {
    const ArithSignature sig = librarySignature(config);
    LibraryAccumulator acc(sig, config.errorConfig);
    if (config.op == ArithOp::Adder)
        addAdderFamilies(acc, config.width);
    else
        addMultiplierFamilies(acc, config.width);

    if (!config.structuralOnly) {
        std::uint64_t runSeed = config.seed;
        for (std::size_t budgetIdx = 0; budgetIdx < config.medBudgets.size(); ++budgetIdx) {
            for (int seedArch = 0; seedArch < 2; ++seedArch) {
                CgpEvolver::Options options;
                options.medBudget = config.medBudgets[budgetIdx];
                options.lambda = config.cgpLambda;
                options.generations = config.cgpGenerations;
                options.seed = runSeed++;
                options.reportConfig = config.errorConfig;
                CgpEvolver evolver(sig, options);
                std::vector<CgpHarvest> harvests = evolver.run(cgpSeed(config, seedArch));
                int idx = 0;
                for (CgpHarvest& h : harvests) {
                    const std::string name =
                        (config.op == ArithOp::Adder ? "add" : "mul") +
                        std::to_string(config.width) + "_cgp_b" + std::to_string(budgetIdx) +
                        "_s" + std::to_string(seedArch) + "_" + std::to_string(idx++);
                    acc.addHarvest(std::move(h), name, "cgp");
                }
            }
        }
    }

    AcLibrary library = acc.take();
    if (config.maxCircuits != 0 && library.size() > config.maxCircuits) {
        // Deterministic uniform thinning over the error-sorted order keeps
        // the full MED spread while bounding the library size.
        std::sort(library.begin(), library.end(),
                  [](const LibraryCircuit& a, const LibraryCircuit& b) {
                      return a.error.med < b.error.med;
                  });
        AcLibrary thinned;
        thinned.reserve(config.maxCircuits);
        const double step =
            static_cast<double>(library.size()) / static_cast<double>(config.maxCircuits);
        for (std::size_t i = 0; i < config.maxCircuits; ++i)
            thinned.push_back(std::move(library[static_cast<std::size_t>(i * step)]));
        library = std::move(thinned);
    }
    return library;
}

}  // namespace axf::gen
