#include "src/gen/library.hpp"

#include <algorithm>
#include <optional>
#include <string_view>
#include <unordered_set>

#include "src/circuit/transform.hpp"
#include "src/gen/adders.hpp"
#include "src/gen/cgp.hpp"
#include "src/gen/multipliers.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/util/select.hpp"
#include "src/util/thread_pool.hpp"

namespace axf::gen {

using circuit::ArithOp;
using circuit::ArithSignature;
using circuit::Netlist;

circuit::ArithSignature librarySignature(const LibraryConfig& config) {
    return ArithSignature{config.op, config.width, config.width};
}

namespace {

/// Artifact-family tag of cached simplified netlists (bump on any change
/// to `circuit::simplify` semantics).
constexpr std::string_view kSimplifyTag = "simplified-netlist.v1";

/// Collects raw generator output, then characterizes it in a three-stage
/// pipeline: parallel simplify+hash, ordered dedup, parallel error
/// analysis, ordered append.  The dedup and append stages walk candidates
/// in submission order, so the resulting library is identical to the old
/// fully-serial accumulation no matter how many workers run.
///
/// With a characterization cache both parallel stages become
/// content-addressed: simplified netlists are keyed by the raw netlist's
/// structural hash, error reports by the simplified hash + signature +
/// analysis-config digest.  Hits skip the computation but produce the
/// same bits, so warm builds are identical to cold ones.
class CandidateSet {
public:
    void add(Netlist netlist, const std::string& origin) {
        candidates_.push_back({std::move(netlist), origin});
    }

    void characterizeInto(AcLibrary& library, std::unordered_set<std::uint64_t>& seen,
                          ArithSignature sig, const error::ErrorAnalysisConfig& errorConfig,
                          cache::CharacterizationCache* cache,
                          const util::CancellationToken* cancel = nullptr) {
        obs::Span span("characterize");
        static obs::Counter& characterized =
            obs::Registry::global().counter("gen.netlists_characterized");
        struct Prepared {
            Netlist simplified;
            std::uint64_t hash = 0;
        };
        std::vector<Prepared> prepared(candidates_.size());
        util::ThreadPool::global().parallelFor(
            candidates_.size(),
            [&](std::size_t i) {
                if (cache != nullptr && loadSimplified(*cache, candidates_[i].netlist,
                                                       prepared[i].simplified, prepared[i].hash))
                    return;
                prepared[i].simplified = circuit::simplify(candidates_[i].netlist);
                prepared[i].hash = prepared[i].simplified.structuralHash();
                if (cache != nullptr)
                    storeSimplified(*cache, candidates_[i].netlist, prepared[i].simplified,
                                    prepared[i].hash);
            },
            0, cancel);

        std::vector<std::size_t> unique;
        unique.reserve(prepared.size());
        for (std::size_t i = 0; i < prepared.size(); ++i)
            if (seen.insert(prepared[i].hash).second) unique.push_back(i);

        std::vector<error::ErrorReport> reports(unique.size());
        util::ThreadPool::global().parallelFor(
            unique.size(),
            [&](std::size_t u) {
                const Prepared& p = prepared[unique[u]];
                reports[u] =
                    cache::analyzeErrorCached(cache, p.hash, p.simplified, sig, errorConfig);
            },
            0, cancel);

        characterized.add(unique.size());
        for (std::size_t u = 0; u < unique.size(); ++u) {
            const std::size_t i = unique[u];
            LibraryCircuit entry;
            entry.name = prepared[i].simplified.name();
            entry.origin = candidates_[i].origin;
            entry.error = reports[u];
            entry.netlist = std::move(prepared[i].simplified);
            entry.signature = sig;
            library.push_back(std::move(entry));
        }
        candidates_.clear();
    }

private:
    struct Candidate {
        Netlist netlist;
        std::string origin;
    };

    /// Cached simplification via the cache's netlist interface (hash
    /// tamper check and, when the cache enables it, a static lint on
    /// load), keyed by the raw netlist's hash.
    static bool loadSimplified(cache::CharacterizationCache& cache, const Netlist& raw,
                               Netlist& simplified, std::uint64_t& hash) {
        const cache::CacheKey key =
            cache::CharacterizationCache::blobKey(raw.structuralHash(), kSimplifyTag);
        std::optional<Netlist> net = cache.findNetlist(key, &hash);
        if (!net) return false;
        simplified = std::move(*net);
        // The key hashes structure only, so same-structure candidates with
        // different names share this entry; `simplify` preserves its input
        // name, so restoring the caller's keeps warm == cold per candidate.
        simplified.setName(raw.name());
        return true;
    }

    static void storeSimplified(cache::CharacterizationCache& cache, const Netlist& raw,
                                const Netlist& simplified, std::uint64_t hash) {
        cache.putNetlist(
            cache::CharacterizationCache::blobKey(raw.structuralHash(), kSimplifyTag),
            simplified, hash);
    }

    std::vector<Candidate> candidates_;
};

void addAdderFamilies(CandidateSet& acc, int n) {
    acc.add(rippleCarryAdder(n), "exact_rca");
    acc.add(carryLookaheadAdder(n), "exact_cla");
    acc.add(carrySelectAdder(n, 2), "exact_csel");
    acc.add(carrySelectAdder(n, 4), "exact_csel");
    acc.add(koggeStoneAdder(n), "exact_ks");
    for (int k = 1; k < n; ++k) {
        acc.add(loaAdder(n, k), "loa");
        acc.add(truncatedAdder(n, k), "trunc");
        acc.add(etaAdder(n, k), "eta");
    }
    for (int w = 1; w < n; ++w) acc.add(acaAdder(n, w), "aca");
    for (int r = 1; r <= n / 2; ++r)
        for (int p = 0; p <= n / 2 && r + p <= n; p += 2) acc.add(gearAdder(n, r, p), "gear");
    for (int blk = 1; blk < n; ++blk) acc.add(etaIIAdder(n, blk), "eta2");
    for (const ApproxFaKind kind : {ApproxFaKind::PassA, ApproxFaKind::OrSum,
                                    ApproxFaKind::XorNoCarry, ApproxFaKind::CarrySkip})
        for (int k = 1; k < n; ++k) acc.add(approxCellAdder(n, k, kind), "afa");
}

void addMultiplierFamilies(CandidateSet& acc, int n) {
    acc.add(arrayMultiplier(n), "exact_array");
    acc.add(wallaceMultiplier(n), "exact_wallace");
    for (int t = 1; t <= n; ++t) acc.add(truncatedMultiplier(n, t), "trunc");
    for (int h = 0; h <= n; h += 1)
        for (int v = 0; v <= n / 2; ++v)
            if (h + v > 0) acc.add(brokenArrayMultiplier(n, h, v), "bam");
    if ((n & (n - 1)) == 0) acc.add(kulkarniMultiplier(n), "kulkarni");
    for (int c = 1; c <= n; ++c) acc.add(approxCompressorMultiplier(n, c), "cmp");
    for (int k = 2; k < n; ++k) acc.add(drumMultiplier(n, k), "drum");
    if (n >= 3) acc.add(mitchellMultiplier(n), "mitchell");
}

Netlist cgpSeed(const LibraryConfig& config, int which) {
    if (config.op == ArithOp::Adder)
        return which == 0 ? rippleCarryAdder(config.width) : carryLookaheadAdder(config.width);
    return which == 0 ? wallaceMultiplier(config.width) : arrayMultiplier(config.width);
}

void addStructural(CandidateSet& acc, const LibraryConfig& config) {
    if (config.op == ArithOp::Adder)
        addAdderFamilies(acc, config.width);
    else
        addMultiplierFamilies(acc, config.width);
}

}  // namespace

AcLibrary buildStructuralFamilies(const LibraryConfig& config) {
    AcLibrary library;
    std::unordered_set<std::uint64_t> seen;
    CandidateSet candidates;
    addStructural(candidates, config);
    error::ErrorAnalysisConfig errorConfig = config.errorConfig;
    if (errorConfig.cancel == nullptr) errorConfig.cancel = config.cancel;
    candidates.characterizeInto(library, seen, librarySignature(config), errorConfig,
                                config.cache, config.cancel);
    return library;
}

AcLibrary buildLibrary(const LibraryConfig& config) {
    obs::Span span("build_library");
    static obs::Histogram& buildSeconds =
        obs::Registry::global().histogram("gen.library_build_seconds");
    obs::ScopedTimer timer(buildSeconds);
    const ArithSignature sig = librarySignature(config);
    AcLibrary library;
    std::unordered_set<std::uint64_t> seen;

    // The build-level token also rides inside every per-netlist analysis,
    // so a stop request lands within a chunk's worth of work even when a
    // single exhaustive sweep dominates the wall clock.
    error::ErrorAnalysisConfig errorConfig = config.errorConfig;
    if (errorConfig.cancel == nullptr) errorConfig.cancel = config.cancel;

    CandidateSet candidates;
    addStructural(candidates, config);
    candidates.characterizeInto(library, seen, sig, errorConfig, config.cache, config.cancel);

    if (!config.structuralOnly) {
        // Every (MED budget, seed architecture) pair is an independent
        // evolutionary run with its own seed: fan the runs out over the
        // pool, then fold the harvests back in the serial loop order so
        // the library content and naming never depend on scheduling.
        struct RunSpec {
            std::size_t budgetIdx;
            int seedArch;
            std::uint64_t seed;
        };
        std::vector<RunSpec> runs;
        std::uint64_t runSeed = config.seed;
        for (std::size_t budgetIdx = 0; budgetIdx < config.medBudgets.size(); ++budgetIdx)
            for (int seedArch = 0; seedArch < 2; ++seedArch)
                runs.push_back({budgetIdx, seedArch, runSeed++});

        std::vector<std::vector<CgpHarvest>> harvests(runs.size());
        util::ThreadPool::global().parallelFor(
            runs.size(),
            [&](std::size_t r) {
                CgpEvolver::Options options;
                options.medBudget = config.medBudgets[runs[r].budgetIdx];
                options.lambda = config.cgpLambda;
                options.generations = config.cgpGenerations;
                options.seed = runs[r].seed;
                options.reportConfig = errorConfig;
                options.fitnessConfig.cancel = config.cancel;
                CgpEvolver evolver(sig, options);
                harvests[r] = evolver.run(cgpSeed(config, runs[r].seedArch));
            },
            0, config.cancel);

        for (std::size_t r = 0; r < runs.size(); ++r) {
            int idx = 0;
            for (CgpHarvest& h : harvests[r]) {
                const std::string name =
                    (config.op == ArithOp::Adder ? "add" : "mul") + std::to_string(config.width) +
                    "_cgp_b" + std::to_string(runs[r].budgetIdx) + "_s" +
                    std::to_string(runs[r].seedArch) + "_" + std::to_string(idx++);
                if (!seen.insert(h.netlist.structuralHash()).second) continue;
                LibraryCircuit entry;
                entry.name = name;
                entry.origin = "cgp";
                entry.netlist = std::move(h.netlist);
                entry.netlist.setName(entry.name);
                entry.signature = sig;
                entry.error = h.error;
                library.push_back(std::move(entry));
            }
        }
    }

    if (config.maxCircuits != 0 && library.size() > config.maxCircuits) {
        // Deterministic uniform thinning over the error-sorted order keeps
        // the full MED spread (both extremes) while bounding the size.
        std::sort(library.begin(), library.end(),
                  [](const LibraryCircuit& a, const LibraryCircuit& b) {
                      return a.error.med < b.error.med;
                  });
        util::thinUniform(library, config.maxCircuits);
    }
    return library;
}

}  // namespace axf::gen
