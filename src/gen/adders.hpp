#pragma once

#include <string>

#include "src/circuit/arith.hpp"
#include "src/circuit/netlist.hpp"

namespace axf::gen {

/// Generators for n-bit unsigned adders.  Interface convention (shared by
/// the whole library): inputs a0..a(n-1) then b0..b(n-1), LSB-first;
/// outputs s0..sn (n+1 bits, carry-out as MSB).

// --- exact architectures --------------------------------------------------
circuit::Netlist rippleCarryAdder(int n);
circuit::Netlist carryLookaheadAdder(int n, int groupSize = 4);
circuit::Netlist carrySelectAdder(int n, int blockSize = 4);
circuit::Netlist koggeStoneAdder(int n);

// --- approximate architectures ---------------------------------------------

/// Lower-part OR adder (LOA): the low `approxBits` sum bits are a_i | b_i;
/// a single AND of the top approximate bits seeds the exact upper part.
circuit::Netlist loaAdder(int n, int approxBits);

/// Truncated adder: the low `approxBits` sum bits pass operand A through
/// and inject no carry into the exact upper part.
circuit::Netlist truncatedAdder(int n, int approxBits);

/// Error-tolerant adder (ETA-I style): the low `approxBits` bits are the
/// carry-free XOR of the operands; upper part exact with zero carry-in.
circuit::Netlist etaAdder(int n, int approxBits);

/// Almost-correct adder (ACA): every carry is speculated from a sliding
/// window of `window` previous bit positions (exact when window >= n).
circuit::Netlist acaAdder(int n, int window);

/// Generic accuracy-configurable adder (GeAr-style): overlapping sub-adders
/// of `resultBits` result bits each, with `predictionBits` previous bits
/// used for carry prediction.  GeAr(n, R, P) generalizes ACA/ETAII.
circuit::Netlist gearAdder(int n, int resultBits, int predictionBits);

/// Error-tolerant adder II (ETA-II): the carry into each `blockSize` block
/// is generated only from the immediately preceding block.
circuit::Netlist etaIIAdder(int n, int blockSize);

/// Approximate full-adder-cell designs applied to the low `approxBits`
/// positions (the Gupta-style approximate mirror adder family).
enum class ApproxFaKind {
    PassA,       ///< sum = a, cout = b            (aggressively simplified)
    OrSum,       ///< sum = a | b | cin, cout = a & b
    XorNoCarry,  ///< sum = a ^ b, cout = cin      (carry chain bypass)
    CarrySkip,   ///< sum = a ^ b ^ cin, cout = a  (exact sum, skewed carry)
};
const char* approxFaKindName(ApproxFaKind kind);
circuit::Netlist approxCellAdder(int n, int approxBits, ApproxFaKind kind);

/// Signature shared by every n-bit adder produced here.
inline circuit::ArithSignature adderSignature(int n) {
    return circuit::ArithSignature{circuit::ArithOp::Adder, n, n};
}

}  // namespace axf::gen
